/// Quickstart: schedule and solve one sparse triangular system.
///
/// Builds a 2-D Poisson problem, takes its lower triangle (the SpTRSV
/// instance), analyzes it once with the GrowLocal scheduler, and then
/// solves repeatedly — the analyze-once / solve-many pattern the paper
/// targets (preconditioners, Gauss–Seidel, repeated FEM solves).
///
///   ./quickstart

#include <cstdio>

#include "datagen/grids.hpp"
#include "exec/solver.hpp"
#include "exec/verify.hpp"

int main() {
  using namespace sts;

  // 1. A 200x200 Poisson matrix; its lower triangle is our system L x = b.
  const sparse::CsrMatrix a = datagen::grid2dLaplacian5(200, 200);
  const sparse::CsrMatrix lower = a.lowerTriangle();
  std::printf("matrix: %s\n", lower.summary().c_str());

  // 2. Analysis phase: build the DAG, run GrowLocal, reorder for locality.
  exec::SolverOptions options;
  options.scheduler = exec::SchedulerKind::kGrowLocal;
  options.num_threads = 2;
  options.reorder = true;
  auto solver = exec::TriangularSolver::analyze(lower, options);

  const auto& stats = solver.stats();
  std::printf("schedule: %d supersteps, %d barriers (%.1fx fewer than the "
              "%d wavefronts)\n",
              stats.supersteps, stats.barriers, stats.wavefront_reduction,
              static_cast<int>(stats.wavefront_reduction *
                               static_cast<double>(stats.supersteps) + 0.5));
  std::printf("analysis took %.3f ms\n", solver.analysisSeconds() * 1e3);

  // 3. Solve phase: reuse the schedule for many right-hand sides.
  const auto x_true = exec::referenceSolution(lower.rows(), /*seed=*/1);
  const auto b = lower.multiply(x_true);
  std::vector<double> x(b.size(), 0.0);
  for (int sweep = 0; sweep < 10; ++sweep) solver.solve(b, x);

  // 4. Verify.
  const double err = exec::relMaxAbsDiff(x, x_true);
  const double res = exec::residualInf(lower, x, b);
  std::printf("relative error %.2e, residual %.2e -> %s\n", err, res,
              (err < 1e-10 ? "OK" : "FAILED"));
  return err < 1e-10 ? 0 : 1;
}
