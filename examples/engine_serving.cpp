/// Serving: one analyzed solver, many concurrent clients.
///
/// Analyzes a 2-D Poisson lower triangle once, registers it with an
/// engine::SolverEngine, and fires a backlog of single-RHS requests at it
/// from several client threads. The engine coalesces compatible queued
/// requests into multi-RHS batches (one schedule traversal per batch) and
/// worker concurrency is safe because every in-flight batch runs on its
/// own SolveContext. The engine runs the load-adaptive elasticity policy:
/// under a deep queue it folds solves onto shrunk OpenMP teams so more
/// batches execute concurrently (folding is bitwise-lossless). Prints the
/// per-solver serving statistics, including the realized team sizes.
///
///   ./engine_serving

#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "datagen/grids.hpp"
#include "engine/solver_engine.hpp"
#include "exec/solver.hpp"
#include "exec/verify.hpp"

int main() {
  using namespace sts;

  const sparse::CsrMatrix a = datagen::grid2dLaplacian5(120, 120);
  const sparse::CsrMatrix lower = a.lowerTriangle();
  std::printf("matrix: %s\n", lower.summary().c_str());

  exec::SolverOptions options;
  options.num_threads = 2;
  auto solver = std::make_shared<const exec::TriangularSolver>(
      exec::TriangularSolver::analyze(lower, options));
  std::printf("analyzed once: %d supersteps, %.3f ms\n",
              static_cast<int>(solver->schedule().numSupersteps()),
              solver->analysisSeconds() * 1e3);

  engine::EngineOptions engine_options;
  engine_options.num_workers = 2;
  engine_options.max_batch = 8;
  engine_options.elastic = true;  // deep queue => shrunk teams, more overlap
  engine::SolverEngine engine(engine_options);
  const auto id = engine.registerSolver(solver);

  // The ground truth every client's request is built from.
  const auto x_true = exec::referenceSolution(lower.rows(), /*seed=*/9);
  const auto b = lower.multiply(x_true);

  // Four clients, 16 requests each, all against the one analyzed solver.
  constexpr int kClients = 4;
  constexpr int kPerClient = 16;
  std::vector<std::future<double>> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(std::async(std::launch::async, [&] {
      double worst = 0.0;
      std::vector<std::future<std::vector<double>>> pending;
      pending.reserve(kPerClient);
      for (int r = 0; r < kPerClient; ++r) {
        pending.push_back(engine.submit(id, b));
      }
      for (auto& f : pending) {
        const std::vector<double> x = f.get();
        worst = std::max(worst, exec::relMaxAbsDiff(x, x_true));
      }
      return worst;
    }));
  }

  double worst = 0.0;
  for (auto& client : clients) worst = std::max(worst, client.get());
  engine.drain();

  const auto stats = engine.stats(id);
  std::printf("served %llu requests in %llu batches "
              "(mean %.1f RHS/batch, %llu RHS coalesced)\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.batches),
              stats.mean_batch_rhs,
              static_cast<unsigned long long>(stats.coalesced_rhs));
  std::printf("latency p50 %.3f ms, p95 %.3f ms, throughput %.0f rhs/s\n",
              stats.latency_p50_seconds * 1e3,
              stats.latency_p95_seconds * 1e3,
              stats.throughput_rhs_per_second);
  std::printf("elastic teams: mean %.2f threads/batch, %llu batches shrunk\n",
              stats.mean_team_size,
              static_cast<unsigned long long>(stats.shrunk_batches));
  std::printf("worst relative error %.2e -> %s\n", worst,
              worst < 1e-10 ? "OK" : "FAILED");
  return worst < 1e-10 ? 0 : 1;
}
