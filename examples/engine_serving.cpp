/// Serving: one analyzed solver, many concurrent clients.
///
/// Analyzes a 2-D Poisson lower triangle once, registers it with an
/// engine::SolverEngine, and fires a backlog of single-RHS requests at it
/// from several client threads. The engine coalesces compatible queued
/// requests into multi-RHS batches (one schedule traversal per batch) and
/// worker concurrency is safe because every in-flight batch runs on its
/// own SolveContext. The engine exercises the full adaptive option set
/// (see the interaction table in engine/types.hpp): the SLO-driven
/// elasticity controller (`target_p95`) sizes each batch's OpenMP team,
/// the shared CoreBudget (`core_budget` + auto-detected core set) leases
/// every team a disjoint set of CPU ids, and `pin_threads` pins team
/// members to their leased cores — all bitwise-lossless, so every client
/// still gets exact results. Prints the per-solver serving statistics,
/// including the realized team sizes and pin/migration counters, the
/// per-(team, storage) compute-vs-wait attribution rows, and the metrics
/// registry. Set STS_TRACE_OUT=<file> to also record the whole run as a
/// Perfetto/chrome trace_event JSON (load it at https://ui.perfetto.dev):
/// every request's queue-wait, the coalesce decision, the core-budget
/// lease, the pin outcome, plan/slab builds, and per-superstep
/// compute/barrier spans on every executor thread.
///
///   ./engine_serving
///   STS_TRACE_OUT=/tmp/serving_trace.json ./engine_serving

#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "datagen/grids.hpp"
#include "engine/solver_engine.hpp"
#include "exec/affinity.hpp"
#include "exec/solver.hpp"
#include "exec/verify.hpp"
#include "obs/trace.hpp"

int main() {
  using namespace sts;

  // Tracing is opt-in per run: no STS_TRACE_OUT, no session, and the
  // instrumentation points cost one predicted-false branch each.
  const char* trace_path = std::getenv("STS_TRACE_OUT");
  std::shared_ptr<obs::TraceSession> trace;
  if (trace_path != nullptr && trace_path[0] != '\0') {
    trace = obs::TraceSession::start();
    trace->nameCurrentThread("main");
  }

  const sparse::CsrMatrix a = datagen::grid2dLaplacian5(120, 120);
  const sparse::CsrMatrix lower = a.lowerTriangle();
  std::printf("matrix: %s\n", lower.summary().c_str());

  exec::SolverOptions options;
  options.num_threads = 2;
  auto solver = std::make_shared<const exec::TriangularSolver>(
      exec::TriangularSolver::analyze(lower, options));
  std::printf("analyzed once: %d supersteps, %.3f ms\n",
              static_cast<int>(solver->schedule().numSupersteps()),
              solver->analysisSeconds() * 1e3);

  // The current adaptive option set (PR 2-4); every knob is optional and
  // bitwise-lossless, so this block is safe to copy into production code.
  engine::EngineOptions engine_options;
  engine_options.num_workers = 2;     // dispatcher threads
  engine_options.max_batch = 8;       // coalescing budget (RHS per batch)
  engine_options.elastic = true;      // adapt team sizes to load
  engine_options.elastic_min_team = 1;
  engine_options.target_p95 = 0.050;  // SLO: p95 <= 50 ms drives the teams
  engine_options.adaptive_batch = true;  // deep queue raises the batch cap
  engine_options.core_budget = 0;     // aggregate team cap (0 = unlimited)
  engine_options.pin_threads = true;  // pin teams to leased, disjoint cores
  // engine_options.core_set = {0, 2, 4};  // or name the cores explicitly
  engine_options.storage = exec::StorageKind::kSlab;  // packed-record walk
  engine::SolverEngine engine(engine_options);
  const auto id = engine.registerSolver(solver);
  if (engine.coreBudget().hasCoreSet()) {
    std::printf("core set: %zu CPUs leased disjointly across batches\n",
                engine.coreBudget().coreSet().size());
  } else {
    std::printf("core set: none (affinity unsupported) — running unpinned\n");
  }

  // The ground truth every client's request is built from.
  const auto x_true = exec::referenceSolution(lower.rows(), /*seed=*/9);
  const auto b = lower.multiply(x_true);

  // Four clients, 16 requests each, all against the one analyzed solver.
  constexpr int kClients = 4;
  constexpr int kPerClient = 16;
  std::vector<std::future<double>> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(std::async(std::launch::async, [&] {
      double worst = 0.0;
      std::vector<std::future<std::vector<double>>> pending;
      pending.reserve(kPerClient);
      for (int r = 0; r < kPerClient; ++r) {
        pending.push_back(engine.submit(id, b));
      }
      for (auto& f : pending) {
        const std::vector<double> x = f.get();
        worst = std::max(worst, exec::relMaxAbsDiff(x, x_true));
      }
      return worst;
    }));
  }

  double worst = 0.0;
  for (auto& client : clients) worst = std::max(worst, client.get());
  engine.drain();

  const auto stats = engine.stats(id);
  std::printf("served %llu requests in %llu batches "
              "(mean %.1f RHS/batch, %llu RHS coalesced)\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.batches),
              stats.mean_batch_rhs,
              static_cast<unsigned long long>(stats.coalesced_rhs));
  std::printf("latency p50 %.3f ms, p95 %.3f ms, throughput %.0f rhs/s\n",
              stats.latency_p50_seconds * 1e3,
              stats.latency_p95_seconds * 1e3,
              stats.throughput_rhs_per_second);
  std::printf("elastic teams: mean %.2f threads/batch, %llu batches shrunk\n",
              stats.mean_team_size,
              static_cast<unsigned long long>(stats.shrunk_batches));
  std::printf("affinity: %llu batches pinned, %llu members pinned, "
              "%llu migrations corrected\n",
              static_cast<unsigned long long>(stats.pinned_batches),
              static_cast<unsigned long long>(stats.pinned_threads),
              static_cast<unsigned long long>(stats.migrated_threads));
  std::printf("slo controller: %llu proportional steps actuated\n",
              static_cast<unsigned long long>(stats.slo_steps));

  // Where did executor-thread time go? One attribution row per
  // (team size, storage layout) the engine actually ran.
  const auto rows = engine.traceSummary(id);
  if (!rows.empty()) {
    std::printf("attribution (compute vs wait per executor thread):\n");
    for (const auto& row : rows) {
      std::printf("  team %d %-7s %4llu batches  compute %8.3f ms  "
                  "wait %8.3f ms (%.1f%%, max %.3f ms)\n",
                  row.team,
                  row.storage == exec::StorageKind::kSlab ? "slab" : "csr",
                  static_cast<unsigned long long>(row.batches),
                  row.compute_seconds * 1e3, row.wait_seconds * 1e3,
                  row.wait_fraction * 100.0, row.max_wait_seconds * 1e3);
    }
  }
  std::printf("metrics registry:\n%s", engine.metrics().renderText().c_str());

  if (trace != nullptr) {
    trace->stop();
    if (trace->writeJson(trace_path)) {
      std::printf("trace: wrote %s (%llu events, %zu threads, "
                  "%llu dropped)\n",
                  trace_path,
                  static_cast<unsigned long long>(trace->totalEvents()),
                  trace->numThreads(),
                  static_cast<unsigned long long>(trace->droppedEvents()));
    } else {
      std::fprintf(stderr, "trace: failed to write %s\n", trace_path);
    }
  }

  std::printf("worst relative error %.2e -> %s\n", worst,
              worst < 1e-10 ? "OK" : "FAILED");
  return worst < 1e-10 ? 0 : 1;
}
