/// Gauss–Seidel smoothing with a scheduled triangular solve.
///
/// A Gauss–Seidel sweep solves (D + L_strict) x_{k+1} = b - U_strict x_k:
/// every sweep is one SpTRSV with the same sparsity pattern — the workload
/// class behind the paper's METIS data set (§6.2.2: "representative of
/// SpTRSV workloads in a Gauss–Seidel ... method").
///
///   ./gauss_seidel

#include <cmath>
#include <cstdio>
#include <vector>

#include "datagen/grids.hpp"
#include "exec/solver.hpp"

int main() {
  using namespace sts;

  const sparse::CsrMatrix a = datagen::grid2dLaplacian5(48, 48);
  const auto n = static_cast<size_t>(a.rows());
  std::printf("Gauss-Seidel on %s\n", a.summary().c_str());

  // Split A = (D + L_strict) + U_strict.
  const sparse::CsrMatrix lower = a.lowerTriangle(/*include_diagonal=*/true);
  const sparse::CsrMatrix upper_strict = a.upperTriangle(false);

  exec::SolverOptions opts;
  opts.scheduler = exec::SchedulerKind::kGrowLocal;
  opts.num_threads = 2;
  auto solver = exec::TriangularSolver::analyze(lower, opts);
  std::printf("schedule: %d supersteps for %d wavefronts, analysis %.2f ms\n",
              solver.stats().supersteps,
              static_cast<int>(solver.stats().wavefront_reduction *
                               solver.stats().supersteps + 0.5),
              solver.analysisSeconds() * 1e3);

  const std::vector<double> b(n, 1.0);
  std::vector<double> x(n, 0.0);
  std::vector<double> rhs(n, 0.0);

  auto residual = [&]() {
    const auto ax = a.multiply(x);
    double r = 0.0;
    for (size_t i = 0; i < n; ++i) r = std::max(r, std::abs(ax[i] - b[i]));
    return r;
  };

  const double r0 = residual();
  const int sweeps = 500;
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    // rhs = b - U_strict * x  (the values computed last sweep)
    const auto ux = upper_strict.multiply(x);
    for (size_t i = 0; i < n; ++i) rhs[i] = b[i] - ux[i];
    solver.solve(rhs, x);  // (D + L_strict) x = rhs
    if ((sweep + 1) % 100 == 0) {
      std::printf("  after %3d sweeps: residual %.3e\n", sweep + 1,
                  residual());
    }
  }
  const double rN = residual();
  std::printf("residual reduced %.1fx over %d sweeps (one SpTRSV each; the "
              "schedule was computed once)\n",
              r0 / rN, sweeps);
  return rN < 0.5 * r0 ? 0 : 1;
}
