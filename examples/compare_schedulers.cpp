/// Scheduler comparison CLI.
///
/// Compares every scheduler in the library on one matrix: supersteps,
/// barrier reduction, analysis time, solve time, speed-up over serial.
/// With a Matrix Market path, runs on a real matrix (e.g. a SuiteSparse
/// download); without arguments a narrow-band instance is generated —
/// the regime where scheduler quality differs most (paper Table 7.1).
///
///   ./compare_schedulers [matrix.mtx] [threads]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "datagen/random_matrices.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"
#include "sparse/mm_io.hpp"

int main(int argc, char** argv) {
  using namespace sts;
  using harness::Table;

  sparse::CsrMatrix lower;
  std::string name;
  if (argc > 1) {
    name = argv[1];
    const sparse::CsrMatrix m = sparse::readCsrFromMatrixMarketFile(argv[1]);
    lower = m.isLowerTriangular() ? m : m.lowerTriangle();
  } else {
    name = "narrow-band n=30000 (generated)";
    lower = datagen::narrowBandLower(
        {.n = 30000, .p = 0.14, .b = 10.0, .seed = 7});
  }
  const int threads = argc > 2 ? std::atoi(argv[2]) : 2;

  std::printf("matrix: %s (%s), threads: %d\n", name.c_str(),
              lower.summary().c_str(), threads);
  std::printf("average wavefront size: %.1f\n\n",
              harness::averageWavefrontSize(lower));

  harness::MeasureOptions opts;
  opts.num_threads = threads;
  const double serial = harness::measureSerial(lower, opts);

  Table table({"scheduler", "supersteps", "wf-reduction", "analysis[ms]",
               "solve[us]", "speedup"});
  for (const auto kind :
       {exec::SchedulerKind::kGrowLocal, exec::SchedulerKind::kFunnelGrowLocal,
        exec::SchedulerKind::kSpmp, exec::SchedulerKind::kHdagg,
        exec::SchedulerKind::kWavefront, exec::SchedulerKind::kBspList}) {
    const auto m = harness::measureSolver(name, lower, kind, opts, serial);
    table.addRow({m.scheduler, std::to_string(m.supersteps),
                  Table::fmt(m.wavefront_reduction, 2) + "x",
                  Table::fmt(m.schedule_seconds * 1e3, 2),
                  Table::fmt(m.parallel_seconds * 1e6, 1),
                  Table::fmt(m.speedup, 2) + "x"});
  }
  table.print(std::cout);
  return 0;
}
