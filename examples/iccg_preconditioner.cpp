/// Incomplete-Cholesky preconditioned conjugate gradient (ICCG).
///
/// The triangular-solve bottleneck of ICCG is the original motivation for
/// parallel SpTRSV scheduling (Rothberg–Gupta 1992, cited as [RG92] in the
/// paper). Each CG iteration applies the preconditioner M^{-1} = L^{-T}
/// L^{-1} — two triangular solves with a FIXED sparsity pattern, which is
/// exactly the analyze-once / solve-many regime where scheduling time
/// amortizes (paper §7.7).
///
///   ./iccg_preconditioner

#include <cmath>
#include <cstdio>
#include <vector>

#include "datagen/grids.hpp"
#include "exec/solver.hpp"
#include "sparse/ic0.hpp"

namespace {

using sts::sparse::CsrMatrix;

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace

int main() {
  using namespace sts;

  // SPD system: 3-D Poisson on a 24^3 grid.
  const CsrMatrix a = datagen::grid3dLaplacian7(24, 24, 24);
  const auto n = static_cast<size_t>(a.rows());
  std::printf("ICCG on %s\n", a.summary().c_str());

  // IC(0) factorization: A ~ L L^T.
  const auto ic = sparse::incompleteCholesky(a);
  std::printf("IC(0): shift %.1e after %d retries\n", ic.applied_shift,
              ic.retries);

  // Two scheduled solvers with the SAME schedule family: L (forward) and
  // L^T (backward).
  exec::SolverOptions opts;
  opts.scheduler = exec::SchedulerKind::kGrowLocal;
  opts.num_threads = 2;
  auto forward = exec::TriangularSolver::analyze(ic.lower, opts);
  auto backward = exec::TriangularSolver::analyze(ic.lower.transposed(), opts);
  std::printf("analysis: forward %.2f ms (%d supersteps), backward %.2f ms\n",
              forward.analysisSeconds() * 1e3,
              forward.schedule().numSupersteps(),
              backward.analysisSeconds() * 1e3);

  // CG with preconditioner M^{-1} r = L^{-T} (L^{-1} r).
  const std::vector<double> b(n, 1.0);
  std::vector<double> x(n, 0.0);
  std::vector<double> r = b;  // r = b - A*0
  std::vector<double> z(n, 0.0), tmp(n, 0.0), p(n, 0.0), ap(n, 0.0);

  auto apply_preconditioner = [&](const std::vector<double>& rhs,
                                  std::vector<double>& out) {
    forward.solve(rhs, tmp);
    backward.solve(tmp, out);
  };

  apply_preconditioner(r, z);
  p = z;
  double rz = dot(r, z);
  const double r0 = std::sqrt(dot(r, r));
  int iterations = 0;
  int solves = 2;
  for (; iterations < 500; ++iterations) {
    const auto av = a.multiply(p);
    std::copy(av.begin(), av.end(), ap.begin());
    const double alpha = rz / dot(p, ap);
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    const double rnorm = std::sqrt(dot(r, r));
    if (rnorm / r0 < 1e-8) break;
    apply_preconditioner(r, z);
    solves += 2;
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }

  const auto ax = a.multiply(x);
  double res = 0.0;
  for (size_t i = 0; i < n; ++i) res = std::max(res, std::abs(ax[i] - b[i]));
  std::printf("converged in %d iterations (%d triangular solves), "
              "residual %.2e\n",
              iterations + 1, solves, res);
  std::printf("each analysis amortizes over the %d solves of this single "
              "linear solve -- and the pattern is reused across time steps "
              "in practice\n", solves);
  return res < 1e-5 ? 0 : 1;
}
