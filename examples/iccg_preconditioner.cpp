/// Incomplete-Cholesky preconditioned conjugate gradient (ICCG).
///
/// The triangular-solve bottleneck of ICCG is the original motivation for
/// parallel SpTRSV scheduling (Rothberg–Gupta 1992, cited as [RG92] in the
/// paper). Each CG iteration applies the preconditioner M^{-1} = L^{-T}
/// L^{-1} — two triangular solves with a FIXED sparsity pattern, which is
/// exactly the analyze-once / solve-many regime where scheduling time
/// amortizes (paper §7.7).
///
/// A preconditioner apply is also the canonical consumer of the
/// bounded-staleness tier (exec/ssp.hpp, EngineOptions::tier): CG only
/// needs M^{-1} applied approximately but CONSISTENTLY, so the SSP
/// executor may relax superstep barriers and let residual-checked
/// refinement repair the dropped couplings to a modest tolerance. The
/// demo runs the same CG twice — exact tier, then bounded-stale — and
/// compares outer iteration counts: the relaxed tier must not derail CG.
///
///   ./iccg_preconditioner

#include <cmath>
#include <cstdio>
#include <functional>
#include <vector>

#include "datagen/grids.hpp"
#include "exec/solver.hpp"
#include "exec/ssp.hpp"
#include "sparse/ic0.hpp"

namespace {

using sts::sparse::CsrMatrix;

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

struct CgRun {
  int iterations = 0;        ///< outer CG iterations
  int solves = 0;            ///< triangular solves consumed
  double residual = 0.0;     ///< ||Ax - b||_inf at exit
  int ssp_refinements = 0;   ///< refinement sweeps summed over applies
};

using Apply = std::function<void(const std::vector<double>&,
                                 std::vector<double>&)>;

CgRun runCg(const CsrMatrix& a, const std::vector<double>& b,
            const Apply& apply_preconditioner) {
  const auto n = static_cast<size_t>(a.rows());
  std::vector<double> x(n, 0.0);
  std::vector<double> r = b;  // r = b - A*0
  std::vector<double> z(n, 0.0), p(n, 0.0), ap(n, 0.0);

  CgRun run;
  apply_preconditioner(r, z);
  p = z;
  double rz = dot(r, z);
  const double r0 = std::sqrt(dot(r, r));
  run.solves = 2;
  for (; run.iterations < 500; ++run.iterations) {
    const auto av = a.multiply(p);
    std::copy(av.begin(), av.end(), ap.begin());
    const double alpha = rz / dot(p, ap);
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    const double rnorm = std::sqrt(dot(r, r));
    if (rnorm / r0 < 1e-8) break;
    apply_preconditioner(r, z);
    run.solves += 2;
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  ++run.iterations;

  const auto ax = a.multiply(x);
  for (size_t i = 0; i < n; ++i) {
    run.residual = std::max(run.residual, std::abs(ax[i] - b[i]));
  }
  return run;
}

}  // namespace

int main() {
  using namespace sts;

  // SPD system: 3-D Poisson on a 24^3 grid.
  const CsrMatrix a = datagen::grid3dLaplacian7(24, 24, 24);
  const auto n = static_cast<size_t>(a.rows());
  std::printf("ICCG on %s\n", a.summary().c_str());

  // IC(0) factorization: A ~ L L^T.
  const auto ic = sparse::incompleteCholesky(a);
  std::printf("IC(0): shift %.1e after %d retries\n", ic.applied_shift,
              ic.retries);

  // Two scheduled solvers with the SAME schedule family: L (forward) and
  // L^T (backward).
  exec::SolverOptions opts;
  opts.scheduler = exec::SchedulerKind::kGrowLocal;
  opts.num_threads = 2;
  auto forward = exec::TriangularSolver::analyze(ic.lower, opts);
  auto backward = exec::TriangularSolver::analyze(ic.lower.transposed(), opts);
  std::printf("analysis: forward %.2f ms (%d supersteps), backward %.2f ms\n",
              forward.analysisSeconds() * 1e3,
              forward.schedule().numSupersteps(),
              backward.analysisSeconds() * 1e3);

  const std::vector<double> b(n, 1.0);
  std::vector<double> tmp(n, 0.0);

  // Exact tier: M^{-1} r = L^{-T} (L^{-1} r), bitwise-deterministic.
  const CgRun exact = runCg(a, b, [&](const std::vector<double>& rhs,
                                      std::vector<double>& out) {
    forward.solve(rhs, tmp);
    backward.solve(tmp, out);
  });
  std::printf("exact tier:         %d iterations (%d triangular solves), "
              "residual %.2e\n",
              exact.iterations, exact.solves, exact.residual);

  // Bounded-stale tier: each apply relaxes barriers to chunks of
  // staleness+1 supersteps and refines to a tolerance far looser than the
  // solver's — the preconditioner only steers CG, it need not be exact.
  exec::SspOptions ssp;
  ssp.staleness = 2;
  ssp.tolerance = 1e-6;
  int stale_refinements = 0;
  auto fctx = forward.createContext();
  auto bctx = backward.createContext();
  const CgRun stale = runCg(a, b, [&](const std::vector<double>& rhs,
                                      std::vector<double>& out) {
    stale_refinements += forward.solveBoundedStale(rhs, tmp, ssp, *fctx)
                             .refinements;
    stale_refinements += backward.solveBoundedStale(tmp, out, ssp, *bctx)
                             .refinements;
  });
  std::printf("bounded-stale tier: %d iterations (%d triangular solves, "
              "%d refinement sweeps), residual %.2e\n",
              stale.iterations, stale.solves, stale_refinements,
              stale.residual);

  std::printf("each analysis amortizes over the %d solves of this single "
              "linear solve -- and the pattern is reused across time steps "
              "in practice\n", exact.solves);
  const int drift = std::abs(stale.iterations - exact.iterations);
  std::printf("tier drift: %d outer iteration(s); the relaxed "
              "preconditioner steers CG to the same answer\n", drift);

  // Gate: both tiers converge, and the stale tier does not derail CG
  // (allow a small outer-iteration drift for the approximate applies).
  const bool ok = exact.residual < 1e-5 && stale.residual < 1e-5 &&
                  drift <= 5;
  return ok ? 0 : 1;
}
