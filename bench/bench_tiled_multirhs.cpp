/// Tiled multi-RHS bench: cache-sized column tiles vs the PR 5
/// column-blocked path across executor x storage x team x nrhs. The tile
/// layout (exec/tile.hpp) repacks the batch into per-tile row-major n x w
/// blocks sized to a per-thread L2 share, so each superstep's matrix pass
/// touches a working set that fits in cache, and the shared-CSR tile
/// kernel (computeRowMultiTiled) register-blocks across RHS columns. Both
/// paths must produce bitwise-identical solutions on every configuration
/// — a tile is an independent n x w sub-problem in exactly the untiled
/// kernels' layout, so each column's FP sequence is unchanged.
///
///   STS_BENCH_SCALE / STS_BENCH_REPS  dataset sizing as usual;
///   STS_TILED_WIDTH  (default 4)      analyzed schedule width C;
///   STS_TILED_REPS   (default 5)      timed passes per configuration;
///   STS_TILE_COLS                     overrides the tile width (tile.cpp).
///
/// Timing compares like with like: the tiled pass is timed on PRE-packed
/// buffers (solveTiles — the engine's zero-copy entry packs requests
/// directly into tiles, so steady-state serving never pays a separate
/// pack), against the untiled solveMultiRhs on the same team. Per-row
/// bytes_moved/flops feed tools/roofline.py. Exit code 0 iff tiled equals
/// untiled bitwise everywhere — deliberately NOT a speed gate, so the
/// bench stays robust on 1-core CI runners; the nrhs >= 8 geomean speedup
/// is reported for the trajectory snapshots (BENCH_8.json).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exec/solver.hpp"
#include "exec/tile.hpp"
#include "harness/datasets.hpp"
#include "harness/stats.hpp"

namespace {

using namespace sts;
using exec::SchedulerKind;
using exec::SolverOptions;
using exec::StorageKind;
using exec::TileLayout;
using exec::TriangularSolver;

using sts::bench::envInt;

struct Row {
  std::string dataset;
  std::string matrix;
  std::string executor;
  std::string storage;
  int team = 0;
  index_t nrhs = 1;
  index_t tile_cols = 0;
  index_t num_tiles = 0;
  long long rows_n = 0;
  long long nnz = 0;
  double untiled_seconds = 0.0;
  double tiled_seconds = 0.0;
  double tiled_speedup = 0.0;
  std::size_t bytes_moved = 0;
  std::size_t flops = 0;
};

double timeUntiled(const TriangularSolver& solver, exec::SolveContext& ctx,
                   std::span<const double> b, std::span<double> x,
                   index_t nrhs, int team, StorageKind storage, int reps) {
  using Clock = std::chrono::high_resolution_clock;
  std::vector<double> seconds;
  seconds.reserve(static_cast<size_t>(reps));
  for (int pass = 0; pass < reps; ++pass) {
    const auto t0 = Clock::now();
    solver.solveMultiRhs(b, x, nrhs, ctx, team,
                         solver.options().fold_policy, storage);
    seconds.push_back(
        std::chrono::duration<double>(Clock::now() - t0).count());
  }
  return harness::quantile(seconds, 0.5);
}

double timeTiled(const TriangularSolver& solver, exec::SolveContext& ctx,
                 std::span<const double> b_tiled, std::span<double> x_tiled,
                 const TileLayout& layout, int team, StorageKind storage,
                 int reps) {
  using Clock = std::chrono::high_resolution_clock;
  std::vector<double> seconds;
  seconds.reserve(static_cast<size_t>(reps));
  for (int pass = 0; pass < reps; ++pass) {
    const auto t0 = Clock::now();
    solver.solveTiles(b_tiled, x_tiled, layout, ctx, team,
                      solver.options().fold_policy, storage);
    seconds.push_back(
        std::chrono::duration<double>(Clock::now() - t0).count());
  }
  return harness::quantile(seconds, 0.5);
}

}  // namespace

int main() {
  const int width = envInt("STS_TILED_WIDTH", 4);
  const int reps = envInt("STS_TILED_REPS", 5);

  bench::banner("Tiled multi-RHS", "Steiner et al. (locality follow-up)",
                "Cache-sized RHS column tiles vs the column-blocked path, "
                "executor x storage x team x nrhs");
  std::printf("schedule width %d, %d timed reps per configuration\n\n", width,
              reps);

  std::vector<harness::DatasetEntry> entries;
  std::vector<std::string> entry_dataset;
  {
    auto narrow = harness::narrowBandSet();
    if (!narrow.empty()) {
      entry_dataset.push_back("narrow-band");
      entries.push_back(std::move(narrow.front()));
    }
    auto erdos = harness::erdosRenyiSet();
    if (!erdos.empty()) {
      entry_dataset.push_back("erdos-renyi");
      entries.push_back(std::move(erdos.front()));
    }
    auto real = harness::suiteSparseReal();
    auto standin = harness::suiteSparseStandin();
    if (!real.empty()) {
      entry_dataset.push_back("suitesparse");
      entries.push_back(std::move(real.front()));
    } else if (!standin.empty()) {
      entry_dataset.push_back("suitesparse-standin");
      entries.push_back(std::move(standin.front()));
    }
  }

  struct ExecConfig {
    std::string name;
    SolverOptions options;
  };
  std::vector<ExecConfig> configs;
  {
    SolverOptions opts;
    opts.num_threads = width;
    opts.validate = false;
    opts.reorder = true;
    configs.push_back({"contiguous", opts});
    opts.reorder = false;
    configs.push_back({"bsp", opts});
    opts.scheduler = SchedulerKind::kSpmp;
    configs.push_back({"p2p", opts});
  }

  const std::vector<std::pair<std::string, StorageKind>> storages = {
      {"shared-csr", StorageKind::kSharedCsr}, {"slab", StorageKind::kSlab}};

  std::vector<int> teams = {1, width};
  teams.erase(std::unique(teams.begin(), teams.end()), teams.end());
  const std::vector<index_t> nrhs_sweep = {1, 8, 16, 32};

  std::vector<Row> rows;
  bool bitwise_ok = true;
  for (size_t e = 0; e < entries.size(); ++e) {
    const auto& entry = entries[e];
    const auto n = static_cast<size_t>(entry.lower.rows());
    for (const auto& config : configs) {
      const auto solver = TriangularSolver::analyze(entry.lower,
                                                    config.options);
      auto ctx = solver.createContext();
      const auto perm = solver.permutation();
      const bool permuted = solver.isPermuted();
      for (const auto& [storage_name, storage] : storages) {
        for (const int team : teams) {
          for (const index_t nrhs : nrhs_sweep) {
            const auto r = static_cast<size_t>(nrhs);
            std::vector<double> b(n * r);
            for (size_t i = 0; i < b.size(); ++i) {
              b[i] = 1.0 + 0.25 * static_cast<double>((3 * i + e) % 17);
            }
            const TileLayout layout = solver.tileLayout(nrhs);

            // Reference: the column-blocked untiled path (warmup also pays
            // the one-time plan/slab builds outside the timed region).
            std::vector<double> x_ref(b.size());
            solver.solveMultiRhs(b, x_ref, nrhs, *ctx, team,
                                 solver.options().fold_policy, storage);

            // Full public tiled path (internal pack + permutation): the
            // bitwise gate checks the layer users actually call.
            std::vector<double> x_tiled_public(b.size());
            solver.solveMultiRhsTiled(b, x_tiled_public, nrhs, *ctx, team,
                                      solver.options().fold_policy, storage);
            if (x_ref != x_tiled_public) bitwise_ok = false;

            // Pre-packed buffers for the timed solveTiles passes: permute
            // into schedule order, then tile — exactly what the engine's
            // fused pack produces, paid once outside the timing.
            std::vector<double> b_perm(b.size());
            for (size_t i = 0; i < n; ++i) {
              const size_t row = permuted ? static_cast<size_t>(perm[i]) : i;
              for (size_t c = 0; c < r; ++c) {
                b_perm[i * r + c] = b[row * r + c];
              }
            }
            std::vector<double> b_tiled(layout.totalDoubles());
            std::vector<double> x_tiled(layout.totalDoubles());
            layout.pack(b_perm, b_tiled);

            Row row;
            row.dataset = entry_dataset[e];
            row.matrix = entry.name;
            row.executor = config.name;
            row.storage = storage_name;
            row.team = team;
            row.nrhs = nrhs;
            row.tile_cols = layout.tileCols();
            row.num_tiles = layout.numTiles();
            row.rows_n = static_cast<long long>(entry.lower.rows());
            row.nnz = static_cast<long long>(entry.lower.nnz());
            row.untiled_seconds = timeUntiled(solver, *ctx, b, x_ref, nrhs,
                                              team, storage, reps);
            row.tiled_seconds = timeTiled(solver, *ctx, b_tiled, x_tiled,
                                          layout, team, storage, reps);
            row.tiled_speedup = row.tiled_seconds > 0.0
                                    ? row.untiled_seconds / row.tiled_seconds
                                    : 0.0;
            // Byte model for tools/roofline.py: the matrix is streamed
            // once per tile (the tile loop replays the storage walk), the
            // RHS/solution doubles move once each way.
            row.bytes_moved =
                solver.storageBytesMoved(team, solver.options().fold_policy,
                                         storage) *
                    static_cast<std::size_t>(layout.numTiles()) +
                layout.bytesMoved();
            row.flops = 2 * static_cast<std::size_t>(entry.lower.nnz()) * r;

            // The pre-packed result must match the reference after
            // unpacking back to natural row order.
            std::vector<double> x_unpacked(b.size());
            layout.unpack(x_tiled, x_unpacked);
            std::vector<double> x_nat(b.size());
            for (size_t i = 0; i < n; ++i) {
              const size_t dst = permuted ? static_cast<size_t>(perm[i]) : i;
              for (size_t c = 0; c < r; ++c) {
                x_nat[dst * r + c] = x_unpacked[i * r + c];
              }
            }
            if (x_ref != x_nat) bitwise_ok = false;

            std::printf("%-14s %-10s %-10s team %2d nrhs %2d "
                        "(tile %2d x%2d): untiled %9.3f ms  tiled %9.3f ms "
                        " (%.2fx)\n",
                        entry.name.c_str(), config.name.c_str(),
                        storage_name.c_str(), team, static_cast<int>(nrhs),
                        static_cast<int>(row.tile_cols),
                        static_cast<int>(row.num_tiles),
                        row.untiled_seconds * 1e3, row.tiled_seconds * 1e3,
                        row.tiled_speedup);
            rows.push_back(std::move(row));
          }
        }
      }
    }
  }

  std::vector<double> multi_speedups;
  for (const auto& row : rows) {
    if (row.nrhs >= 8 && row.tiled_speedup > 0.0) {
      multi_speedups.push_back(row.tiled_speedup);
    }
  }
  const double multi_geomean =
      multi_speedups.empty() ? 0.0 : harness::geometricMean(multi_speedups);

  std::printf("\nJSON: {\"bench\":\"tiled_multirhs\",%s,"
              "\"schedule_width\":%d,\"reps\":%d,\"results\":[",
              bench::hostMetaJson().c_str(), width, reps);
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    std::printf("%s{\"dataset\":\"%s\",\"matrix\":\"%s\","
                "\"executor\":\"%s\",\"storage\":\"%s\",\"team\":%d,"
                "\"nrhs\":%d,\"tile_cols\":%d,\"num_tiles\":%d,"
                "\"rows\":%lld,\"nnz\":%lld,"
                "\"untiled_seconds\":%.6g,\"tiled_seconds\":%.6g,"
                "\"tiled_speedup\":%.4g,\"bytes_moved\":%zu,\"flops\":%zu}",
                i == 0 ? "" : ",", row.dataset.c_str(), row.matrix.c_str(),
                row.executor.c_str(), row.storage.c_str(), row.team,
                static_cast<int>(row.nrhs), static_cast<int>(row.tile_cols),
                static_cast<int>(row.num_tiles), row.rows_n, row.nnz,
                row.untiled_seconds, row.tiled_seconds, row.tiled_speedup,
                row.bytes_moved, row.flops);
  }
  std::printf("],\"multi_rhs_geomean_speedup\":%.4g,\"bitwise_equal\":%s}\n",
              multi_geomean, bitwise_ok ? "true" : "false");

  std::printf("\nclaim under test: the tiled walk is bitwise identical to "
              "the column-blocked walk on\nevery executor x storage x team "
              "x nrhs configuration (speed is reported, not gated).\n");
  std::printf("multi-RHS (nrhs >= 8) tiled geomean speedup: %.2fx\n",
              multi_geomean);
  std::printf(bitwise_ok ? "claim holds.\n" : "claim FAILED.\n");
  return bitwise_ok ? 0 : 1;
}
