/// Figure 1.2: geometric mean and interquartile range of the speed-up over
/// serial execution for GrowLocal, SpMP and HDagg on the SuiteSparse
/// stand-in data set.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "harness/runner.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"

int main() {
  using namespace sts;
  using harness::Table;

  bench::banner("Figure 1.2", "Fig. 1.2",
                "Speed-up over serial (geomean + IQR), SuiteSparse stand-in");
  const auto dataset = harness::suiteSparseStandin();
  bench::datasetSummary("SuiteSparse*", dataset);

  harness::MeasureOptions opts;
  const std::vector<exec::SchedulerKind> kinds = {
      exec::SchedulerKind::kGrowLocal, exec::SchedulerKind::kSpmp,
      exec::SchedulerKind::kHdagg};

  std::vector<double> serial;
  for (const auto& entry : dataset) {
    serial.push_back(harness::measureSerial(entry.lower, opts));
  }

  Table table({"scheduler", "geomean", "Q25", "median", "Q75"});
  for (const auto kind : kinds) {
    std::vector<double> speedups;
    for (size_t i = 0; i < dataset.size(); ++i) {
      const auto& entry = dataset[i];
      const auto m = harness::measureSolver(entry.name, entry.lower, kind,
                                            opts, serial[i]);
      speedups.push_back(m.speedup);
    }
    const auto q = harness::quartiles(speedups);
    table.addRow({exec::schedulerKindName(kind),
                  Table::fmt(harness::geometricMean(speedups)) + "x",
                  Table::fmt(q.q25) + "x", Table::fmt(q.median) + "x",
                  Table::fmt(q.q75) + "x"});
  }
  table.print(std::cout);
  std::printf("\npaper (22 cores): GrowLocal 10.79x, SpMP 7.60x, HDagg "
              "3.25x geomean -- absolute values scale with core count; the "
              "ordering is the reproduced claim.\n");
  return 0;
}
