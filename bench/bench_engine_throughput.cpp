/// Serving throughput: batched multi-RHS submission through the
/// engine::SolverEngine vs. the classic sequential single-RHS solve loop on
/// the same analyzed solver. The engine coalesces a staged backlog of
/// single-RHS requests into solveMultiRhs batches, so every superstep
/// barrier is paid once per batch instead of once per request — the Table
/// 7.7 block-parallel amortization applied to request serving. Runs on the
/// §6.2 stand-in datasets. The "pinned" columns repeat the batched pass
/// with EngineOptions::pin_threads (teams pinned to their leased core set;
/// "-" when the platform lacks affinity support).
///
///   STS_BENCH_SCALE / STS_BENCH_REPS control size and repetitions;
///   STS_SERVE_REQUESTS (default 32) the staged backlog per pass;
///   STS_SERVE_BATCH (default 16) the coalescing budget.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "harness/serving.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"

namespace {

using sts::bench::envInt;

}  // namespace

int main() {
  using namespace sts;
  using harness::Table;

  const int requests = envInt("STS_SERVE_REQUESTS", 32);
  const auto max_batch =
      static_cast<sts::index_t>(envInt("STS_SERVE_BATCH", 16));

  bench::banner("Engine throughput", "Table 7.7 (serving analogue)",
                "Batched request serving vs sequential single-RHS solves");
  std::printf("backlog %d requests/pass, coalescing budget %d RHS, "
              "1 engine worker\n\n",
              requests, static_cast<int>(max_batch));

  // STS_TRACE_OUT=<file> records the whole bench as a Perfetto trace.
  const auto trace = bench::maybeTraceFromEnv();

  harness::MeasureOptions opts;
  std::vector<harness::ServingMeasurement> all;
  Table table({"dataset", "matrix", "seq ms", "batched ms", "speedup",
               "mean batch", "seq rhs/s", "batched rhs/s", "wait%",
               "pinned ms", "pin speedup"});
  for (const auto& [dataset_name, dataset] :
       {std::pair<std::string, harness::Dataset>{
            "suitesparse-standin", harness::suiteSparseStandin()},
        std::pair<std::string, harness::Dataset>{"erdos-renyi",
                                                 harness::erdosRenyiSet()}}) {
    for (const auto& entry : dataset) {
      auto m = harness::measureServing(entry.name, entry.lower,
                                       exec::SchedulerKind::kGrowLocal, opts,
                                       requests, max_batch);
      table.addRow({dataset_name, m.matrix,
                    Table::fmt(m.sequential_seconds * 1e3),
                    Table::fmt(m.batched_seconds * 1e3),
                    Table::fmt(m.speedup), Table::fmt(m.mean_batch_rhs, 1),
                    Table::fmt(m.sequential_rhs_per_second, 0),
                    Table::fmt(m.batched_rhs_per_second, 0),
                    Table::fmt(m.batched_wait_fraction * 100.0, 1),
                    m.pinned_seconds > 0.0
                        ? Table::fmt(m.pinned_seconds * 1e3)
                        : "-",
                    m.pinned_seconds > 0.0 ? Table::fmt(m.pinned_speedup)
                                           : "-"});
      all.push_back(std::move(m));
    }
  }
  table.print(std::cout);
  bench::finishTrace(trace);
  std::printf("\ngeomean serving speedup (batched / sequential): %.2fx\n",
              harness::geomeanServingSpeedup(all));
  std::printf("claim under test: coalesced multi-RHS batches amortize the "
              "per-superstep barrier across the backlog,\nso aggregate "
              "serving throughput beats the one-solve-at-a-time loop.\n");
  return harness::geomeanServingSpeedup(all) > 1.0 ? 0 : 1;
}
