/// Table 7.1: geometric-mean speed-up over serial execution of GrowLocal,
/// Funnel+GL, SpMP and HDagg on all five data-set families. The extra BSPg
/// column reproduces the App. C.1 comparison.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "harness/runner.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"

int main() {
  using namespace sts;
  using harness::Table;

  bench::banner("Table 7.1", "Table 7.1 + App. C.1",
                "Geomean speed-up over serial, all five data sets");

  const std::vector<exec::SchedulerKind> kinds = {
      exec::SchedulerKind::kGrowLocal, exec::SchedulerKind::kFunnelGrowLocal,
      exec::SchedulerKind::kSpmp, exec::SchedulerKind::kHdagg,
      exec::SchedulerKind::kBspList};

  harness::MeasureOptions opts;
  Table table({"data set", "GrowLocal", "Funnel+GL", "SpMP", "HDagg",
               "BSPg"});
  for (const auto& [set_name, dataset] : harness::allDatasets()) {
    // One serial baseline per matrix, shared across all schedulers.
    std::vector<double> serial;
    for (const auto& entry : dataset) {
      serial.push_back(harness::measureSerial(entry.lower, opts));
    }
    std::vector<std::string> row = {set_name};
    for (const auto kind : kinds) {
      std::vector<harness::SolveMeasurement> ms;
      for (size_t i = 0; i < dataset.size(); ++i) {
        ms.push_back(harness::measureSolver(dataset[i].name, dataset[i].lower,
                                            kind, opts, serial[i]));
      }
      row.push_back(Table::fmt(harness::geomeanSpeedup(ms)));
    }
    table.addRow(std::move(row));
  }
  table.print(std::cout);
  std::printf(
      "\npaper (22 cores): SuiteSparse 10.79/10.19/7.60/3.25, METIS "
      "15.93/15.40/9.35/9.00, iChol 15.10/14.84/8.36/6.87,\n"
      "ER 12.75/12.66/9.38/8.44, NarrowBand 9.04/8.26/3.56/0.88; BSPg was "
      "8.31x slower than GrowLocal (App. C.1).\n");
  return 0;
}
