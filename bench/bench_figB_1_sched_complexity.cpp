/// Figure B.1: scheduling time versus number of nonzeros. Theorem 3.1 shows
/// GrowLocal runs in O(|E| log |V|); the printed normalized column
/// time / (|E| log2 |V|) should stay roughly constant across the sweep.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <iostream>

#include "bench_common.hpp"
#include "core/coarsen.hpp"
#include "core/growlocal.hpp"
#include "dag/dag.hpp"
#include "datagen/random_matrices.hpp"
#include "harness/table.hpp"

namespace {

double secondsOf(const std::function<void()>& fn) {
  using Clock = std::chrono::high_resolution_clock;
  const auto t0 = Clock::now();
  fn();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  using namespace sts;
  using harness::Table;

  bench::banner("Figure B.1", "Fig. B.1 / Thm 3.1",
                "Scheduling time vs nnz (normalized by |E| log2 |V|)");

  Table table({"n", "nnz", "GrowLocal[ms]", "GL/(E logV) [ns]",
               "Funnel+GL[ms]", "F+GL/(E logV) [ns]"});
  const double scale = harness::benchScale();
  for (const index_t base_n : {5000, 10000, 20000, 40000, 80000}) {
    const auto n = static_cast<index_t>(base_n * scale);
    const double p = std::min(1.0, 50.0 / static_cast<double>(n));
    const auto lower = datagen::erdosRenyiLower({.n = n, .p = p, .seed = 33});
    const auto dag = dag::Dag::fromLowerTriangular(lower);
    const double norm = static_cast<double>(dag.numEdges()) *
                        std::log2(static_cast<double>(dag.numVertices()));

    core::Schedule s_gl, s_fgl;
    const double t_gl = secondsOf(
        [&] { s_gl = core::growLocalSchedule(dag, {.num_cores = 2}); });
    const double t_fgl = secondsOf(
        [&] { s_fgl = core::funnelGrowLocalSchedule(dag, {.num_cores = 2}); });

    table.addRow({std::to_string(n),
                  std::to_string(static_cast<long long>(lower.nnz())),
                  Table::fmt(t_gl * 1e3), Table::fmt(t_gl / norm * 1e9, 3),
                  Table::fmt(t_fgl * 1e3),
                  Table::fmt(t_fgl / norm * 1e9, 3)});
  }
  table.print(std::cout);
  std::printf("\nreproduced claim: the normalized columns are flat "
              "(near-linear scheduling complexity, Fig. B.1's unit-slope "
              "log-log fit).\n");
  return 0;
}
