/// Figure 7.1: Dolan–Moré performance profiles of GrowLocal, Funnel+GL,
/// SpMP and HDagg on the SuiteSparse stand-in data set. For each threshold
/// tau, the printed fraction is the share of matrices on which the
/// algorithm's solve time is within tau times the fastest solve.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "harness/runner.hpp"
#include "harness/stats.hpp"

int main() {
  using namespace sts;

  bench::banner("Figure 7.1", "Fig. 7.1",
                "Performance profiles on the SuiteSparse stand-in");
  const auto dataset = harness::suiteSparseStandin();

  const std::vector<std::string> names = {"GrowLocal", "Funnel+GL", "SpMP",
                                          "HDagg"};
  const std::vector<exec::SchedulerKind> kinds = {
      exec::SchedulerKind::kGrowLocal, exec::SchedulerKind::kFunnelGrowLocal,
      exec::SchedulerKind::kSpmp, exec::SchedulerKind::kHdagg};

  harness::MeasureOptions opts;
  std::vector<double> serial;
  for (const auto& entry : dataset) {
    serial.push_back(harness::measureSerial(entry.lower, opts));
  }
  std::vector<std::vector<double>> times(kinds.size());
  for (size_t a = 0; a < kinds.size(); ++a) {
    for (size_t i = 0; i < dataset.size(); ++i) {
      times[a].push_back(harness::measureSolver(dataset[i].name,
                                                dataset[i].lower, kinds[a],
                                                opts, serial[i])
                             .parallel_seconds);
    }
  }

  std::vector<double> tau_grid;
  for (double tau = 1.0; tau <= 5.0 + 1e-9; tau += 0.25) {
    tau_grid.push_back(tau);
  }
  const auto curves = harness::performanceProfiles(names, times, tau_grid);

  std::printf("tau     ");
  for (const auto& c : curves) std::printf("%10s", c.name.c_str());
  std::printf("\n");
  for (size_t t = 0; t < tau_grid.size(); ++t) {
    std::printf("%-6.2f  ", tau_grid[t]);
    for (const auto& c : curves) std::printf("%10.2f", c.fraction[t]);
    std::printf("\n");
  }
  std::printf("\npaper: the GrowLocal curve dominates (closest to the top "
              "left corner) across the whole data set.\n");
  return 0;
}
