/// Fold-policy comparison: work-aware (bin-packing) vs. modulo rank
/// folding. Part 1 measures fold *quality*: for each dataset x scheduler x
/// target team size, the folded compute makespan (sum over supersteps of
/// the max per-slot load) and the per-superstep max/mean imbalance of both
/// core::FoldPolicy maps — the HDagg-style observation that balanced
/// merging beats naive grouping, applied to schedule re-targeting. Part 2
/// measures what that buys *served*: a SolverEngine under a machine-wide
/// CoreBudget drains a staged backlog with solvers analyzed under each
/// policy, so budget-throttled (shrunk) teams are exercised on every
/// batch. Part 3 closes the loop at schedule time: GrowLocal built with
/// fold_targets (fold-policy-aware acceptance) is compared against the
/// plain build on the summed folded BSP cost over the same targets —
/// schedule-time awareness must never lose to binpack-after-the-fact.
///
///   STS_BENCH_SCALE / STS_BENCH_REPS  dataset sizing as usual;
///   STS_FOLD_WIDTH    (default 8)     schedule width C;
///   STS_FOLD_WORKERS  (default 4)     engine dispatcher threads (part 2);
///   STS_FOLD_BUDGET   (default C/2)   aggregate core budget (part 2 —
///                                     below C so every grant is throttled
///                                     onto a folded team);
///   STS_FOLD_REPS     (default 5)     timed passes per configuration.
///
/// Emits JSON with host metadata. Exit code 0 iff the bin-pack fold's
/// makespan is never worse than modulo's on every measured configuration
/// (the foldRankMap guarantee, re-checked end to end here) AND the
/// fold-aware GrowLocal build never costs more than the plain build on the
/// summed folded metric (the growLocalSchedule keep-better-of-two
/// guarantee).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/schedule.hpp"
#include "dag/dag.hpp"
#include "engine/solver_engine.hpp"
#include "exec/solver.hpp"
#include "harness/datasets.hpp"
#include "harness/stats.hpp"

namespace {

using sts::bench::envInt;

struct FoldRow {
  std::string dataset;
  std::string matrix;
  std::string scheduler;
  int team = 0;
  long long modulo_makespan = 0;
  long long binpack_makespan = 0;
  double modulo_imbalance = 0.0;
  double binpack_imbalance = 0.0;
};

struct FoldAwareRow {
  std::string dataset;
  std::string matrix;
  double plain_cost = 0.0;
  double aware_cost = 0.0;
  long long plain_supersteps = 0;
  long long aware_supersteps = 0;
};

/// The selection metric growLocalSchedule uses for its keep-better-of-two:
/// summed over `targets`, the kBinPack-folded makespan at that team width
/// plus L per superstep. Recomputed here so the gate checks the public
/// contract end to end rather than trusting the scheduler's own arithmetic.
double summedFoldedCost(const sts::core::Schedule& schedule,
                        const std::vector<int>& targets, double sync_l,
                        std::span<const sts::dag::weight_t> weights) {
  double cost = 0.0;
  for (const int raw : targets) {
    const int t = std::clamp(raw, 1, schedule.numCores());
    cost += static_cast<double>(sts::core::foldedMakespanAt(
                schedule, t, sts::core::FoldPolicy::kBinPack, weights)) +
            sync_l * static_cast<double>(schedule.numSupersteps());
  }
  return cost;
}

struct ServeRow {
  std::string matrix;
  std::string policy;
  int backlog = 0;
  double median_seconds = 0.0;
  double rhs_per_second = 0.0;
  double mean_team_size = 0.0;
  std::uint64_t throttled = 0;
};

double measurePass(sts::engine::SolverEngine& engine,
                   sts::engine::SolverId id,
                   const std::vector<std::vector<double>>& rhs, int reps) {
  using Clock = std::chrono::high_resolution_clock;
  std::vector<double> seconds;
  for (int pass = 0; pass < reps + 1; ++pass) {
    engine.pause();
    std::vector<std::future<std::vector<double>>> futures;
    futures.reserve(rhs.size());
    for (const auto& b : rhs) futures.push_back(engine.submit(id, b));
    const auto t0 = Clock::now();
    engine.resume();
    for (auto& f : futures) f.get();
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    if (pass > 0) seconds.push_back(s);  // pass 0 is warmup
  }
  return sts::harness::quantile(seconds, 0.5);
}

}  // namespace

int main() {
  using namespace sts;
  using core::FoldPolicy;

  const int width = envInt("STS_FOLD_WIDTH", 8);
  const int workers = envInt("STS_FOLD_WORKERS", 4);
  const int budget = envInt("STS_FOLD_BUDGET", std::max(1, width / 2));
  const int reps = envInt("STS_FOLD_REPS", 5);

  bench::banner("Fold policies", "Steiner et al. (elasticity follow-up)",
                "Work-aware vs. modulo rank folding: makespan and serving");
  std::printf("schedule width %d, %d workers, core budget %d\n\n", width,
              workers, budget);

  // The imbalance-prone families the work-aware fold is for, plus one
  // SuiteSparse(-standin or real) representative.
  std::vector<harness::DatasetEntry> entries;
  std::vector<std::string> entry_dataset;
  {
    auto narrow = harness::narrowBandSet();
    if (!narrow.empty()) {
      entry_dataset.push_back("narrow-band");
      entries.push_back(std::move(narrow.front()));
    }
    auto erdos = harness::erdosRenyiSet();
    if (!erdos.empty()) {
      entry_dataset.push_back("erdos-renyi");
      entries.push_back(std::move(erdos.front()));
    }
    auto real = harness::suiteSparseReal();
    auto standin = harness::suiteSparseStandin();
    if (!real.empty()) {
      entry_dataset.push_back("suitesparse");
      entries.push_back(std::move(real.front()));
    } else if (!standin.empty()) {
      entry_dataset.push_back("suitesparse-standin");
      entries.push_back(std::move(standin.front()));
    }
  }

  const std::vector<std::pair<std::string, exec::SchedulerKind>> schedulers =
      {{"GrowLocal", exec::SchedulerKind::kGrowLocal},
       {"Wavefront", exec::SchedulerKind::kWavefront},
       {"HDagg", exec::SchedulerKind::kHdagg}};

  // ------------------------------------------------ part 1: fold quality
  std::vector<FoldRow> fold_rows;
  bool binpack_never_worse = true;
  for (size_t e = 0; e < entries.size(); ++e) {
    const auto& entry = entries[e];
    const dag::Dag dag = dag::Dag::fromLowerTriangular(entry.lower);
    for (const auto& [sched_name, kind] : schedulers) {
      exec::SolverOptions opts;
      opts.scheduler = kind;
      opts.num_threads = width;
      opts.reorder = false;
      opts.validate = false;
      const auto solver = exec::TriangularSolver::analyze(entry.lower, opts);
      const core::Schedule& schedule = solver.schedule();
      const auto loads = schedule.rankLoads(dag.weights());
      const auto steps = schedule.numSupersteps();
      const int cores = schedule.numCores();
      for (int t = 2; t < cores; t *= 2) {
        FoldRow row;
        row.dataset = entry_dataset[e];
        row.matrix = entry.name;
        row.scheduler = sched_name;
        row.team = t;
        const auto mod =
            core::foldRankMap(steps, cores, t, FoldPolicy::kModulo);
        const auto pack =
            core::foldRankMap(steps, cores, t, FoldPolicy::kBinPack, loads);
        row.modulo_makespan =
            core::foldedMakespan(loads, steps, cores, t, mod);
        row.binpack_makespan =
            core::foldedMakespan(loads, steps, cores, t, pack);
        row.modulo_imbalance =
            core::foldedImbalance(loads, steps, cores, t, mod);
        row.binpack_imbalance =
            core::foldedImbalance(loads, steps, cores, t, pack);
        if (row.binpack_makespan > row.modulo_makespan) {
          binpack_never_worse = false;
        }
        std::printf("%-14s %-10s team %2d: makespan modulo %10lld  "
                    "binpack %10lld  (%5.2fx -> %5.2fx imbalance)\n",
                    entry.name.c_str(), sched_name.c_str(), t,
                    row.modulo_makespan, row.binpack_makespan,
                    row.modulo_imbalance, row.binpack_imbalance);
        fold_rows.push_back(std::move(row));
      }
    }
  }

  // ---------------------- part 3: fold-aware scheduling never-loses gate
  // GrowLocal with fold_targets rejects trials whose per-core loads no
  // after-the-fact bin-packing can rebalance, then keeps the better of
  // {fold-aware, plain} by the summed folded BSP cost. Re-derive that cost
  // here from the public fold API and require aware <= plain on every
  // entry: schedule-time awareness must never lose to fixing it up later.
  std::vector<FoldAwareRow> fold_aware_rows;
  bool fold_aware_never_worse = true;
  {
    core::GrowLocalOptions gl_plain;
    gl_plain.num_cores = width;
    core::GrowLocalOptions gl_aware = gl_plain;
    gl_aware.fold_targets = {2, std::max(2, width / 2)};
    std::vector<int> targets = gl_aware.fold_targets;
    targets.push_back(width);
    for (size_t e = 0; e < entries.size(); ++e) {
      const auto& entry = entries[e];
      const dag::Dag dag = dag::Dag::fromLowerTriangular(entry.lower);
      const core::Schedule plain = core::growLocalSchedule(dag, gl_plain);
      const core::Schedule aware = core::growLocalSchedule(dag, gl_aware);
      FoldAwareRow row;
      row.dataset = entry_dataset[e];
      row.matrix = entry.name;
      row.plain_cost = summedFoldedCost(plain, targets, gl_plain.sync_cost_l,
                                        dag.weights());
      row.aware_cost = summedFoldedCost(aware, targets, gl_plain.sync_cost_l,
                                        dag.weights());
      row.plain_supersteps = static_cast<long long>(plain.numSupersteps());
      row.aware_supersteps = static_cast<long long>(aware.numSupersteps());
      if (row.aware_cost > row.plain_cost) fold_aware_never_worse = false;
      std::printf("%-14s fold-aware GrowLocal: cost plain %12.0f (%lld "
                  "steps)  aware %12.0f (%lld steps)  %s\n",
                  entry.name.c_str(), row.plain_cost, row.plain_supersteps,
                  row.aware_cost, row.aware_supersteps,
                  row.aware_cost <= row.plain_cost ? "ok" : "WORSE");
      fold_aware_rows.push_back(std::move(row));
    }
    std::printf("\n");
  }

  // --------------------------------- part 2: serving under a core budget
  // Workers outnumber the per-batch share of the budget, so every batch's
  // grant is throttled below the base width: the folded (shrunk) plans —
  // where the policies actually differ — carry all the traffic.
  std::vector<ServeRow> serve_rows;
  const std::vector<std::pair<std::string, FoldPolicy>> policies = {
      {"modulo", FoldPolicy::kModulo}, {"binpack", FoldPolicy::kBinPack}};
  for (size_t e = 0; e < entries.size() && e < 2; ++e) {
    const auto& entry = entries[e];
    const auto n = static_cast<size_t>(entry.lower.rows());
    const int backlog = 16 * workers;
    std::vector<std::vector<double>> rhs(static_cast<size_t>(backlog));
    for (size_t j = 0; j < rhs.size(); ++j) {
      rhs[j].resize(n);
      for (size_t i = 0; i < n; ++i) {
        rhs[j][i] = 1.0 + 0.25 * static_cast<double>((i + 7 * j) % 13);
      }
    }
    for (const auto& [policy_name, policy] : policies) {
      exec::SolverOptions solver_opts;
      solver_opts.scheduler = exec::SchedulerKind::kGrowLocal;
      solver_opts.num_threads = width;
      solver_opts.validate = false;
      solver_opts.fold_policy = policy;
      auto solver = std::make_shared<const exec::TriangularSolver>(
          exec::TriangularSolver::analyze(entry.lower, solver_opts));
      engine::EngineOptions opts;
      opts.num_workers = workers;
      opts.start_paused = true;
      opts.core_budget = budget;
      // Desire the full width on every batch: with several workers racing
      // for the shared budget the grants land anywhere in [1, width], so
      // the folded plans — where the two policies differ — carry the
      // traffic regardless of the host's core count.
      opts.team_size = width;
      engine::SolverEngine engine(opts);
      const auto id = engine.registerSolver(solver);
      ServeRow row;
      row.matrix = entry.name;
      row.policy = policy_name;
      row.backlog = backlog;
      row.median_seconds = measurePass(engine, id, rhs, reps);
      row.rhs_per_second =
          static_cast<double>(backlog) / row.median_seconds;
      const auto stats = engine.stats(id);
      row.mean_team_size = stats.mean_team_size;
      row.throttled = stats.budget_throttled_batches;
      std::printf("%-14s serve %-8s backlog %3d: %8.3f ms, %9.0f rhs/s, "
                  "mean team %.2f, %llu throttled\n",
                  entry.name.c_str(), policy_name.c_str(), backlog,
                  row.median_seconds * 1e3, row.rhs_per_second,
                  row.mean_team_size,
                  static_cast<unsigned long long>(row.throttled));
      serve_rows.push_back(std::move(row));
    }
  }

  std::printf("\nJSON: {\"bench\":\"fold_policies\",%s,"
              "\"schedule_width\":%d,\"workers\":%d,\"core_budget\":%d,"
              "\"fold\":[",
              bench::hostMetaJson().c_str(), width, workers, budget);
  for (size_t i = 0; i < fold_rows.size(); ++i) {
    const auto& r = fold_rows[i];
    std::printf("%s{\"dataset\":\"%s\",\"matrix\":\"%s\","
                "\"scheduler\":\"%s\",\"team\":%d,"
                "\"modulo_makespan\":%lld,\"binpack_makespan\":%lld,"
                "\"modulo_imbalance\":%.4g,\"binpack_imbalance\":%.4g}",
                i == 0 ? "" : ",", r.dataset.c_str(), r.matrix.c_str(),
                r.scheduler.c_str(), r.team, r.modulo_makespan,
                r.binpack_makespan, r.modulo_imbalance, r.binpack_imbalance);
  }
  std::printf("],\"fold_aware\":[");
  for (size_t i = 0; i < fold_aware_rows.size(); ++i) {
    const auto& r = fold_aware_rows[i];
    std::printf("%s{\"dataset\":\"%s\",\"matrix\":\"%s\","
                "\"plain_cost\":%.6g,\"aware_cost\":%.6g,"
                "\"plain_supersteps\":%lld,\"aware_supersteps\":%lld}",
                i == 0 ? "" : ",", r.dataset.c_str(), r.matrix.c_str(),
                r.plain_cost, r.aware_cost, r.plain_supersteps,
                r.aware_supersteps);
  }
  std::printf("],\"serving\":[");
  for (size_t i = 0; i < serve_rows.size(); ++i) {
    const auto& r = serve_rows[i];
    std::printf("%s{\"matrix\":\"%s\",\"fold_policy\":\"%s\","
                "\"backlog\":%d,\"median_seconds\":%.6g,"
                "\"rhs_per_second\":%.6g,\"mean_team_size\":%.3g,"
                "\"budget_throttled_batches\":%llu}",
                i == 0 ? "" : ",", r.matrix.c_str(), r.policy.c_str(),
                r.backlog, r.median_seconds, r.rhs_per_second,
                r.mean_team_size,
                static_cast<unsigned long long>(r.throttled));
  }
  std::printf("]}\n");

  std::printf("\nclaims under test: (1) bin-packing whole ranks by "
              "per-superstep load never folds\nworse than p mod t; (2) "
              "fold-aware GrowLocal never costs more than the plain build\n"
              "on the summed folded BSP metric.\n");
  std::printf(binpack_never_worse ? "binpack claim holds.\n"
                                  : "binpack claim FAILED.\n");
  std::printf(fold_aware_never_worse ? "fold-aware claim holds.\n"
                                     : "fold-aware claim FAILED.\n");
  return (binpack_never_worse && fold_aware_never_worse) ? 0 : 1;
}
