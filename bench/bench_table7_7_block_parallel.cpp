/// Table 7.7: block-parallel scheduling (§3.1) — splitting the matrix into
/// diagonal blocks and scheduling them in parallel trades a moderate solve
/// slowdown for much faster scheduling and a lower amortization threshold.
/// Columns match the paper: relative scheduling-time speed-up, relative
/// flops/s of the solve, relative superstep count, and the median
/// amortization threshold.

#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "harness/runner.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"

int main() {
  using namespace sts;
  using harness::Table;

  bench::banner("Table 7.7", "Table 7.7",
                "Block-parallel scheduling sweep (§3.1)");
  const auto dataset = harness::suiteSparseStandin();

  const std::vector<int> block_counts = {1, 2, 4, 6, 8, 16};
  harness::MeasureOptions base;

  // Per matrix, measurements for every block count; block 1 is the
  // normalization baseline.
  std::map<int, std::vector<harness::SolveMeasurement>> per_blocks;
  for (const auto& entry : dataset) {
    const double serial = harness::measureSerial(entry.lower, base);
    for (const int blocks : block_counts) {
      harness::MeasureOptions opts = base;
      opts.num_schedule_blocks = blocks;
      per_blocks[blocks].push_back(
          harness::measureSolver(entry.name, entry.lower,
                                 exec::SchedulerKind::kGrowLocal, opts,
                                 serial));
    }
  }

  Table table({"blocks", "sched time", "flops/s", "supersteps",
               "amort. thresh."});
  for (const int blocks : block_counts) {
    const auto& ms = per_blocks[blocks];
    const auto& base_ms = per_blocks[1];
    std::vector<double> sched_speedup, flops_ratio, steps_ratio, amortization;
    for (size_t i = 0; i < ms.size(); ++i) {
      sched_speedup.push_back(base_ms[i].schedule_seconds /
                              ms[i].schedule_seconds);
      flops_ratio.push_back(ms[i].gflops / base_ms[i].gflops);
      steps_ratio.push_back(static_cast<double>(ms[i].supersteps) /
                            static_cast<double>(base_ms[i].supersteps));
      amortization.push_back(ms[i].amortization);
    }
    table.addRow({std::to_string(blocks),
                  Table::fmt(harness::geometricMean(sched_speedup)),
                  Table::fmt(harness::geometricMean(flops_ratio)),
                  Table::fmt(harness::geometricMean(steps_ratio)),
                  Table::fmt(harness::quantile(amortization, 0.5), 1)});
  }
  table.print(std::cout);
  std::printf("\npaper (22 cores, blocks==scheduling threads): sched time "
              "1.00/2.01/4.11/6.28/8.34/17.06 (22: 23.43),\nflops "
              "1.00/0.89/0.79/0.74/0.70/0.57, supersteps "
              "1.00/1.47/1.99/2.35/2.66/3.84, amortization "
              "26.12/13.59/6.91/4.54/3.48/1.78.\nReproduced claims: "
              "super-linear scheduling speed-up, moderate solve slowdown, "
              "near-linear amortization drop.\nnote: block scheduling here "
              "runs on 2 OpenMP threads regardless of block count.\n");
  return 0;
}
