/// Table 7.2: geometric mean of the reduction in synchronization barriers
/// relative to the number of wavefronts, per data set, for GrowLocal,
/// Funnel+GL and HDagg. Purely structural — no timing, machine-independent,
/// which makes this the strongest reproduction target of the paper.

#include <cstdio>
#include <iostream>
#include <vector>

#include "baselines/hdagg.hpp"
#include "bench_common.hpp"
#include "core/coarsen.hpp"
#include "core/growlocal.hpp"
#include "dag/dag.hpp"
#include "dag/wavefronts.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"

int main() {
  using namespace sts;
  using harness::Table;

  bench::banner("Table 7.2", "Table 7.2",
                "Barrier reduction vs #wavefronts (geomean per data set)");

  const int cores = 2;
  Table table({"data set", "GrowLocal", "Funnel+GL", "HDagg", "(wavefronts)"});
  for (const auto& [set_name, dataset] : harness::allDatasets()) {
    std::vector<double> gl, fgl, hd;
    double wf_total = 0.0;
    for (const auto& entry : dataset) {
      const auto dag = dag::Dag::fromLowerTriangular(entry.lower);
      const double wavefronts =
          static_cast<double>(dag::criticalPathLength(dag));
      wf_total += wavefronts;
      const auto s_gl =
          core::growLocalSchedule(dag, {.num_cores = cores});
      const auto s_fgl =
          core::funnelGrowLocalSchedule(dag, {.num_cores = cores});
      baselines::HdaggOptions ho;
      ho.num_cores = cores;
      const auto s_hd = baselines::hdaggSchedule(dag, ho);
      gl.push_back(wavefronts / static_cast<double>(s_gl.numSupersteps()));
      fgl.push_back(wavefronts / static_cast<double>(s_fgl.numSupersteps()));
      hd.push_back(wavefronts / static_cast<double>(s_hd.numSupersteps()));
    }
    table.addRow({set_name, Table::fmt(harness::geometricMean(gl)),
                  Table::fmt(harness::geometricMean(fgl)),
                  Table::fmt(harness::geometricMean(hd)),
                  Table::fmt(wf_total / static_cast<double>(dataset.size()), 0)});
  }
  table.print(std::cout);
  std::printf(
      "\npaper (22 cores): SuiteSparse 14.99/17.09/1.24, METIS "
      "16.55/21.83/2.39, iChol 18.91/22.86/1.62,\nER 2.93/2.99/1.25, "
      "NarrowBand 51.12/42.00/1.10. Expected shape: GrowLocal and Funnel+GL "
      "one to two orders\nof magnitude above HDagg, largest on narrow-band, "
      "smallest on ER.\n");
  return 0;
}
