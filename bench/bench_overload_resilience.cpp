/// Overload resilience: open-loop serving at a multiple of the engine's
/// measured capacity, with the admission-control + degradation ladder
/// engaged (EngineOptions::overload_control) and — under -DSTS_FAULTS=ON —
/// deterministic fault injection active (superstep latency spikes plus a
/// stalling worker pop; src/fault/failpoint.hpp). Phase 1 measures
/// closed-loop capacity on the ladder-free engine; phase 2 replays the
/// same request mix open-loop at STS_OVERLOAD_MULT x that rate, ~25%
/// latency-class with deadlines, and checks the robustness contracts
/// docs/ROBUSTNESS.md states:
///
///   * every submitted future resolves — a value or a typed EngineError
///     (kRejected / kExpired); nothing is left hanging,
///   * admitted latency-class requests stay under a bounded p95,
///   * every degraded (precision-shed) response meets its reported
///     tolerance on the ORIGINAL system (recomputed ||b - Lx||_inf), and
///   * aggregate throughput stays within a factor of the unloaded
///     baseline — shedding degrades precision, not the pipeline.
///
///   STS_BENCH_SCALE / STS_BENCH_REPS   dataset sizing as usual;
///   STS_OVERLOAD_REQUESTS (default 96) open-loop arrivals;
///   STS_OVERLOAD_MULT     (default 2)  offered load / measured capacity;
///   STS_OVERLOAD_WIDTH    (default 4)  analyzed schedule width;
///   STS_OVERLOAD_WORKERS  (default 2)  engine dispatcher threads;
///   STS_OVERLOAD_DEPTH    (default 64) bounded queue depth;
///   STS_OVERLOAD_TARGET_MS (default 20) ladder target delay;
///   STS_OVERLOAD_DEADLINE_S (default 2) latency-class deadline;
///   STS_OVERLOAD_P95_S    (default 2x deadline) latency p95 gate;
///   STS_OVERLOAD_TPUT_FLOOR (default 0.25) throughput-ratio gate;
///   STS_OVERLOAD_FAULTS   (default 1)  arm failpoints (STS_FAULTS=ON).
///
/// Emits JSON with host metadata (schema in docs/BENCHMARKS.md). Exit
/// code 0 iff all four contracts hold.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "engine/solver_engine.hpp"
#include "exec/verify.hpp"
#include "fault/failpoint.hpp"
#include "harness/datasets.hpp"
#include "harness/stats.hpp"

namespace {

using namespace sts;
using engine::EngineError;
using engine::EngineErrorCode;
using engine::RequestPriority;
using engine::SolveResponse;
using engine::SubmitOptions;

using sts::bench::envInt;

double envDouble(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  return raw && *raw ? std::atof(raw) : fallback;
}

enum class Kind { kPending, kOk, kRejected, kExpired, kShutdown, kError };

struct Outcome {
  RequestPriority priority = RequestPriority::kThroughput;
  Kind kind = Kind::kPending;
  double submit_s = 0.0;  ///< seconds since open-loop start
  double done_s = 0.0;
  int rung = 0;
  bool degraded = false;
  double residual = 0.0;           ///< reported by DegradeInfo
  double tolerance = 0.0;          ///< reported by DegradeInfo
  double recomputed_residual = 0.0;  ///< ||b - Lx||_inf on the original system
};

}  // namespace

int main() {
  const int requests = envInt("STS_OVERLOAD_REQUESTS", 96);
  const double mult = envDouble("STS_OVERLOAD_MULT", 2.0);
  const int width = envInt("STS_OVERLOAD_WIDTH", 4);
  const int workers = envInt("STS_OVERLOAD_WORKERS", 2);
  const auto depth =
      static_cast<std::size_t>(envInt("STS_OVERLOAD_DEPTH", 64));
  const double target_delay =
      envDouble("STS_OVERLOAD_TARGET_MS", 20.0) / 1e3;
  const double deadline = envDouble("STS_OVERLOAD_DEADLINE_S", 2.0);
  const double p95_bound = envDouble("STS_OVERLOAD_P95_S", 2.0 * deadline);
  const double tput_floor = envDouble("STS_OVERLOAD_TPUT_FLOOR", 0.25);

  bench::banner("Overload resilience", "Robustness contracts",
                "Open-loop 2x overload with deadlines, ladder shedding and "
                "fault injection");
  std::printf("%d arrivals at %.1fx capacity, width %d, %d workers, queue "
              "depth %zu, target delay %.0f ms\n\n",
              requests, mult, width, workers, depth, target_delay * 1e3);

  auto standin = harness::suiteSparseStandin();
  if (standin.empty()) {
    std::printf("no dataset available; nothing to measure\n");
    return 1;
  }
  const auto entry = std::move(standin.front());
  const auto n = static_cast<size_t>(entry.lower.rows());

  exec::SolverOptions solver_opts;
  solver_opts.scheduler = exec::SchedulerKind::kGrowLocal;
  solver_opts.num_threads = width;
  solver_opts.validate = false;
  auto solver = std::make_shared<const exec::TriangularSolver>(
      exec::TriangularSolver::analyze(entry.lower, solver_opts));

  std::vector<std::vector<double>> rhs(static_cast<size_t>(requests));
  for (size_t j = 0; j < rhs.size(); ++j) {
    rhs[j].resize(n);
    for (size_t i = 0; i < n; ++i) {
      rhs[j][i] = 1.0 + 0.25 * static_cast<double>((i + 7 * j) % 13);
    }
  }

  using Clock = std::chrono::steady_clock;

  // ---- Phase 1: closed-loop capacity, ladder off. A staged backlog
  // through the plain engine measures what the host can actually serve;
  // the open-loop phase offers `mult` times that.
  double baseline_rps = 0.0;
  {
    engine::EngineOptions opts;
    opts.num_workers = workers;
    opts.coalesce = true;
    opts.start_paused = true;
    engine::SolverEngine eng(opts);
    const auto id = eng.registerSolver(solver);
    std::vector<std::future<std::vector<double>>> futures;
    futures.reserve(rhs.size());
    for (const auto& b : rhs) futures.push_back(eng.submit(id, b));
    const auto t0 = Clock::now();
    eng.resume();
    for (auto& f : futures) f.get();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - t0).count();
    baseline_rps = static_cast<double>(requests) / elapsed;
    std::printf("baseline (closed loop): %.3f s for %d requests = %.0f "
                "rhs/s\n",
                elapsed, requests, baseline_rps);
  }

  // ---- Fault arming (STS_FAULTS=ON builds only): rank-stable superstep
  // latency spikes plus a bounded run of 5 ms stalls on the worker pop —
  // the "straggler thread + hiccuping dispatcher" mix. Delay/stall
  // actions only, per the executor hook contract.
  bool faults_armed = false;
#if STS_FAULTS
  if (envInt("STS_OVERLOAD_FAULTS", 1) != 0) {
    fault::FailpointRegistry::global().configure(
        "exec.superstep=delay(200),p=0.05;"
        "engine.worker_pop=stall(5),p=0.25,limit=8",
        /*seed=*/42);
    faults_armed = true;
  }
#endif

  // ---- Phase 2: open loop at mult x capacity with the ladder engaged.
  std::vector<Outcome> outcomes(static_cast<size_t>(requests));
  std::size_t unresolved = 0;
  int max_rung_seen = 0;
  std::uint64_t rejected = 0, expired = 0, degraded_count = 0, ok_count = 0;
  double overload_rps = 0.0;
  engine::SolverServingStats overload_stats;
  {
    engine::EngineOptions opts;
    opts.num_workers = workers;
    opts.coalesce = true;
    opts.max_queue_depth = depth;
    opts.overload_control = true;
    opts.overload_target_delay = target_delay;
    engine::SolverEngine eng(opts);
    const auto id = eng.registerSolver(solver);

    const double interval = 1.0 / (mult * baseline_rps);
    std::vector<std::future<SolveResponse>> futures;
    futures.reserve(rhs.size());
    const auto start = Clock::now();
    for (int j = 0; j < requests; ++j) {
      std::this_thread::sleep_until(
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(interval * j)));
      SubmitOptions so;
      if (j % 4 == 0) {
        so.priority = RequestPriority::kLatency;
        so.deadline_seconds = deadline;
      }
      auto& out = outcomes[static_cast<size_t>(j)];
      out.priority = so.priority;
      out.submit_s =
          std::chrono::duration<double>(Clock::now() - start).count();
      futures.push_back(
          eng.submit(id, rhs[static_cast<size_t>(j)], so));
    }

    // Resolve every future by polling so per-request completion times are
    // observed when they happen, not in submission order. The 120 s cap
    // exists only so a wedged engine fails the gate instead of hanging
    // the bench.
    std::size_t pending = futures.size();
    const auto hard_stop = Clock::now() + std::chrono::seconds(120);
    double last_ok_s = 0.0;
    while (pending > 0 && Clock::now() < hard_stop) {
      for (size_t j = 0; j < futures.size(); ++j) {
        auto& out = outcomes[j];
        if (out.kind != Kind::kPending || !futures[j].valid()) continue;
        if (futures[j].wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready) {
          continue;
        }
        out.done_s =
            std::chrono::duration<double>(Clock::now() - start).count();
        try {
          SolveResponse response = futures[j].get();
          out.kind = Kind::kOk;
          out.rung = response.degrade.rung;
          out.degraded = response.degrade.degraded;
          out.residual = response.degrade.residual;
          out.tolerance = response.degrade.tolerance;
          if (out.degraded) {
            out.recomputed_residual =
                exec::residualInf(entry.lower, response.x, rhs[j]);
          }
        } catch (const EngineError& err) {
          out.kind = err.code() == EngineErrorCode::kRejected
                         ? Kind::kRejected
                         : err.code() == EngineErrorCode::kExpired
                               ? Kind::kExpired
                               : Kind::kShutdown;
        } catch (...) {
          out.kind = Kind::kError;
        }
      }
      pending = 0;
      for (const auto& out : outcomes) pending += out.kind == Kind::kPending;
      if (pending > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    unresolved = pending;

    for (const auto& out : outcomes) {
      max_rung_seen = std::max(max_rung_seen, out.rung);
      switch (out.kind) {
        case Kind::kOk:
          ++ok_count;
          last_ok_s = std::max(last_ok_s, out.done_s);
          if (out.degraded) ++degraded_count;
          break;
        case Kind::kRejected: ++rejected; break;
        case Kind::kExpired: ++expired; break;
        default: break;
      }
    }
    overload_rps =
        last_ok_s > 0.0 ? static_cast<double>(ok_count) / last_ok_s : 0.0;
    overload_stats = eng.stats(id);
  }
#if STS_FAULTS
  const std::uint64_t superstep_hits =
      fault::FailpointRegistry::global().hits("exec.superstep");
  const std::uint64_t worker_pop_hits =
      fault::FailpointRegistry::global().hits("engine.worker_pop");
#else
  const std::uint64_t superstep_hits = 0;
  const std::uint64_t worker_pop_hits = 0;
#endif
  if (faults_armed) fault::FailpointRegistry::global().reset();

  // ---- Contracts.
  std::vector<double> latency_latencies;
  for (const auto& out : outcomes) {
    if (out.kind == Kind::kOk && out.priority == RequestPriority::kLatency) {
      latency_latencies.push_back(out.done_s - out.submit_s);
    }
  }
  const double lat_p50 = latency_latencies.empty()
                             ? 0.0
                             : harness::quantile(latency_latencies, 0.5);
  const double lat_p95 = latency_latencies.empty()
                             ? 0.0
                             : harness::quantile(latency_latencies, 0.95);

  const bool gate_resolved = unresolved == 0;
  const bool gate_latency =
      !latency_latencies.empty() && lat_p95 <= p95_bound;
  bool gate_residual = true;
  for (const auto& out : outcomes) {
    if (out.kind == Kind::kOk && out.degraded) {
      if (out.residual > out.tolerance ||
          out.recomputed_residual > out.tolerance) {
        gate_residual = false;
      }
    }
  }
  const double tput_ratio =
      baseline_rps > 0.0 ? overload_rps / baseline_rps : 0.0;
  const bool gate_throughput = tput_ratio >= tput_floor;

  std::printf("\noverload (open loop%s): %llu ok (%llu degraded), %llu "
              "rejected, %llu expired, %zu unresolved; max rung %d\n",
              faults_armed ? ", faults armed" : "",
              static_cast<unsigned long long>(ok_count),
              static_cast<unsigned long long>(degraded_count),
              static_cast<unsigned long long>(rejected),
              static_cast<unsigned long long>(expired), unresolved,
              max_rung_seen);
  std::printf("latency-class admitted: %zu requests, p50 %.1f ms, p95 "
              "%.1f ms (bound %.1f ms)\n",
              latency_latencies.size(), lat_p50 * 1e3, lat_p95 * 1e3,
              p95_bound * 1e3);
  std::printf("throughput: %.0f rhs/s vs %.0f rhs/s baseline = %.2fx "
              "(floor %.2fx)\n",
              overload_rps, baseline_rps, tput_ratio, tput_floor);

  std::printf("JSON: {\"bench\":\"overload_resilience\",%s,"
              "\"requests\":%d,\"mult\":%.3g,\"width\":%d,\"workers\":%d,"
              "\"queue_depth\":%zu,\"target_delay_seconds\":%.6g,"
              "\"deadline_seconds\":%.6g,\"faults_armed\":%s,"
              "\"results\":[{\"matrix\":\"%s\","
              "\"baseline_rhs_per_second\":%.6g,"
              "\"overload_rhs_per_second\":%.6g,"
              "\"throughput_ratio\":%.4g,"
              "\"latency_p50_seconds\":%.6g,\"latency_p95_seconds\":%.6g,"
              "\"admitted\":%llu,\"degraded\":%llu,\"rejected\":%llu,"
              "\"expired\":%llu,\"unresolved\":%zu,\"max_rung\":%d,"
              "\"engine_degraded_batches\":%llu,"
              "\"superstep_hits\":%llu,\"worker_pop_hits\":%llu}],"
              "\"gates\":{\"all_resolved\":%s,\"latency_p95\":%s,"
              "\"degraded_residuals\":%s,\"throughput_floor\":%s}}\n",
              bench::hostMetaJson().c_str(), requests, mult, width, workers,
              depth, target_delay, deadline,
              faults_armed ? "true" : "false", entry.name.c_str(),
              baseline_rps, overload_rps, tput_ratio, lat_p50, lat_p95,
              static_cast<unsigned long long>(ok_count),
              static_cast<unsigned long long>(degraded_count),
              static_cast<unsigned long long>(rejected),
              static_cast<unsigned long long>(expired), unresolved,
              max_rung_seen,
              static_cast<unsigned long long>(
                  overload_stats.degraded_batches),
              static_cast<unsigned long long>(superstep_hits),
              static_cast<unsigned long long>(worker_pop_hits),
              gate_resolved ? "true" : "false",
              gate_latency ? "true" : "false",
              gate_residual ? "true" : "false",
              gate_throughput ? "true" : "false");

  std::printf("\nclaims under test: every future resolves (typed errors, "
              "never hangs); admitted latency-class\np95 stays bounded; "
              "degraded responses meet their reported tolerance on the "
              "original system;\nand overload throughput stays within "
              "%.2fx of the unloaded baseline.\n",
              tput_floor);
  const bool ok =
      gate_resolved && gate_latency && gate_residual && gate_throughput;
  std::printf(ok ? "claims hold.\n" : "claims FAILED.\n");
  if (!ok) {
    std::printf("  all_resolved=%d latency_p95=%d degraded_residuals=%d "
                "throughput_floor=%d\n",
                gate_resolved, gate_latency, gate_residual, gate_throughput);
  }
  return ok ? 0 : 1;
}
