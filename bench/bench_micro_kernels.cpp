/// Kernel microbenchmarks (google-benchmark): the executor hot paths, the
/// scheduler itself, and ablations of the design parameters DESIGN.md
/// calls out (sync cost L, utilization floor, funnel direction).

#include <benchmark/benchmark.h>

#include <memory>

#include "baselines/spmp.hpp"
#include "core/coarsen.hpp"
#include "core/growlocal.hpp"
#include "core/reorder.hpp"
#include "dag/dag.hpp"
#include "dag/transitive.hpp"
#include "dag/wavefronts.hpp"
#include "datagen/grids.hpp"
#include "datagen/random_matrices.hpp"
#include "exec/bsp.hpp"
#include "exec/p2p.hpp"
#include "exec/row_kernels.hpp"
#include "exec/serial.hpp"
#include "exec/solver.hpp"
#include "obs/trace.hpp"

namespace {

using namespace sts;
using sparse::CsrMatrix;

const CsrMatrix& benchMatrix() {
  static const CsrMatrix lower =
      datagen::grid2dLaplacian5(120, 120).lowerTriangle();
  return lower;
}

const dag::Dag& benchDag() {
  static const dag::Dag d = dag::Dag::fromLowerTriangular(benchMatrix());
  return d;
}

void BM_SerialSolve(benchmark::State& state) {
  const auto& lower = benchMatrix();
  const std::vector<double> b(static_cast<size_t>(lower.rows()), 1.0);
  std::vector<double> x(b.size(), 0.0);
  for (auto _ : state) {
    exec::solveLowerSerial(lower, b, x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * lower.nnz());
}
BENCHMARK(BM_SerialSolve);

void BM_BspSolve(benchmark::State& state) {
  const auto& lower = benchMatrix();
  const auto schedule = core::growLocalSchedule(
      benchDag(), {.num_cores = static_cast<int>(state.range(0))});
  const exec::BspExecutor executor(lower, schedule);
  const std::vector<double> b(static_cast<size_t>(lower.rows()), 1.0);
  std::vector<double> x(b.size(), 0.0);
  for (auto _ : state) {
    executor.solve(b, x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * lower.nnz());
}
BENCHMARK(BM_BspSolve)->Arg(1)->Arg(2);

/// Tracing-overhead guard rows (docs/OBSERVABILITY.md). All three run the
/// same 2-thread BSP solve as BM_BspSolve/2; the row names are identical
/// across STS_TRACING=ON and =OFF builds so tools/bench_diff.py can
/// compare them directly:
///   TraceIdle    — instrumentation compiled in (default build) but no
///                  session and no sink: the cost every untraced solve
///                  pays. Under -DSTS_TRACING=OFF this measures the
///                  compiled-out baseline; CI diffs the two and fails if
///                  enabled-but-idle regresses the solve by > 2%.
///   TraceArmed   — a SolveTrace attribution sink attached to the context
///                  (what EngineOptions::trace adds to every batch).
///   TraceSession — a live TraceSession: every superstep records ring
///                  events (the full pay-when-tracing cost).
void BM_BspSolveTraced(benchmark::State& state, bool armed, bool session) {
  const auto& lower = benchMatrix();
  const auto schedule = core::growLocalSchedule(benchDag(), {.num_cores = 2});
  const exec::BspExecutor executor(lower, schedule);
  auto ctx = executor.createContext();
  obs::SolveTrace sink;
  if (armed) ctx->setTrace(&sink);
  std::shared_ptr<obs::TraceSession> trace;
  if (session) trace = obs::TraceSession::start();
  const std::vector<double> b(static_cast<size_t>(lower.rows()), 1.0);
  std::vector<double> x(b.size(), 0.0);
  for (auto _ : state) {
    executor.solve(b, x, *ctx);
    benchmark::DoNotOptimize(x.data());
  }
  if (trace != nullptr) trace->stop();
  state.SetItemsProcessed(state.iterations() * lower.nnz());
}
void BM_BspSolveTraceIdle(benchmark::State& state) {
  BM_BspSolveTraced(state, /*armed=*/false, /*session=*/false);
}
void BM_BspSolveTraceArmed(benchmark::State& state) {
  BM_BspSolveTraced(state, /*armed=*/true, /*session=*/false);
}
void BM_BspSolveTraceSession(benchmark::State& state) {
  BM_BspSolveTraced(state, /*armed=*/true, /*session=*/true);
}
BENCHMARK(BM_BspSolveTraceIdle);
BENCHMARK(BM_BspSolveTraceArmed);
BENCHMARK(BM_BspSolveTraceSession);

/// Failpoint-overhead guard row (docs/ROBUSTNESS.md): the same 2-thread
/// BSP solve as BM_BspSolveTraceIdle, with every failpoint DISARMED. The
/// row name is identical across STS_FAULTS=ON and =OFF builds, so
/// tools/bench_diff.py can compare them directly: compiled-in-but-idle
/// failpoints (one static ref + one relaxed load per superstep per
/// thread) must not regress the solve by > 2% vs the compiled-out build.
void BM_BspSolveFaultIdle(benchmark::State& state) {
  BM_BspSolveTraced(state, /*armed=*/false, /*session=*/false);
}
BENCHMARK(BM_BspSolveFaultIdle);

void BM_ContiguousSolve(benchmark::State& state) {
  const auto& lower = benchMatrix();
  const auto schedule = core::growLocalSchedule(benchDag(), {.num_cores = 2});
  auto problem = core::reorderForLocality(lower, schedule);
  const exec::ContiguousBspExecutor executor(problem.matrix,
                                             problem.num_supersteps,
                                             problem.num_cores,
                                             problem.group_ptr);
  const std::vector<double> b(static_cast<size_t>(lower.rows()), 1.0);
  std::vector<double> x(b.size(), 0.0);
  for (auto _ : state) {
    executor.solve(b, x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * lower.nnz());
}
BENCHMARK(BM_ContiguousSolve);

void BM_P2pSolve(benchmark::State& state) {
  const auto& lower = benchMatrix();
  const auto spmp = baselines::spmpSchedule(benchDag(), {.num_cores = 2});
  exec::P2pExecutor executor(lower, spmp.schedule, spmp.reduced_dag);
  const std::vector<double> b(static_cast<size_t>(lower.rows()), 1.0);
  std::vector<double> x(b.size(), 0.0);
  for (auto _ : state) {
    executor.solve(b, x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * lower.nnz());
}
BENCHMARK(BM_P2pSolve);

/// Scalar multi-RHS row kernel (computeRowMulti: the shared-CSR walk's
/// column loop, variable width) over every row serially; Arg = nrhs.
void BM_MultiRhsKernelScalar(benchmark::State& state) {
  const auto& lower = benchMatrix();
  const auto r = static_cast<size_t>(state.range(0));
  const auto n = static_cast<size_t>(lower.rows());
  const std::vector<double> b(n * r, 1.0);
  std::vector<double> x(b.size(), 0.0);
  for (auto _ : state) {
    for (index_t i = 0; i < lower.rows(); ++i) {
      exec::detail::computeRowMulti(lower.rowPtr(), lower.colIdx(),
                                    lower.values(), b, x, i,
                                    static_cast<index_t>(r));
    }
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * lower.nnz() *
                          static_cast<int64_t>(r));
}
BENCHMARK(BM_MultiRhsKernelScalar)->Arg(4)->Arg(8);

/// Column-blocked multi-RHS row kernel (computeRowMultiPacked: fixed
/// 8/4-wide register blocks + tail — the slab walk's kernel) on the SAME
/// CSR memory, isolating the kernel effect from the layout effect.
void BM_MultiRhsKernelBlocked(benchmark::State& state) {
  const auto& lower = benchMatrix();
  const auto r = static_cast<size_t>(state.range(0));
  const auto n = static_cast<size_t>(lower.rows());
  const std::vector<double> b(n * r, 1.0);
  std::vector<double> x(b.size(), 0.0);
  const auto row_ptr = lower.rowPtr();
  const auto col_idx = lower.colIdx();
  const auto values = lower.values();
  for (auto _ : state) {
    for (index_t i = 0; i < lower.rows(); ++i) {
      const auto begin = static_cast<size_t>(row_ptr[static_cast<size_t>(i)]);
      const auto diag =
          static_cast<size_t>(row_ptr[static_cast<size_t>(i) + 1]) - 1;
      exec::detail::computeRowMultiPacked(col_idx.data() + begin,
                                          values.data() + begin,
                                          diag - begin, values[diag], b, x,
                                          i, r);
    }
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * lower.nnz() *
                          static_cast<int64_t>(r));
}
BENCHMARK(BM_MultiRhsKernelBlocked)->Arg(4)->Arg(8);

/// End-to-end storage ablation on one executor: the full multi-RHS solve
/// through the shared CSR vs the thread-local slab (layout + blocked
/// kernel + prefetch); Arg = nrhs.
void BM_BspSolveMultiStorage(benchmark::State& state,
                             exec::StorageKind storage) {
  const auto& lower = benchMatrix();
  const auto schedule = core::growLocalSchedule(benchDag(), {.num_cores = 2});
  const exec::BspExecutor executor(lower, schedule);
  auto ctx = executor.createContext();
  const auto r = static_cast<index_t>(state.range(0));
  const std::vector<double> b(
      static_cast<size_t>(lower.rows()) * static_cast<size_t>(r), 1.0);
  std::vector<double> x(b.size(), 0.0);
  for (auto _ : state) {
    executor.solveMultiRhs(b, x, r, *ctx, executor.numThreads(),
                           core::FoldPolicy::kModulo, storage);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * lower.nnz() *
                          static_cast<int64_t>(r));
}
void BM_BspSolveMultiShared(benchmark::State& state) {
  BM_BspSolveMultiStorage(state, exec::StorageKind::kSharedCsr);
}
void BM_BspSolveMultiSlab(benchmark::State& state) {
  BM_BspSolveMultiStorage(state, exec::StorageKind::kSlab);
}
BENCHMARK(BM_BspSolveMultiShared)->Arg(4)->Arg(8);
BENCHMARK(BM_BspSolveMultiSlab)->Arg(4)->Arg(8);

void BM_GrowLocalSchedule(benchmark::State& state) {
  const auto& d = benchDag();
  for (auto _ : state) {
    auto s = core::growLocalSchedule(d, {.num_cores = 2});
    benchmark::DoNotOptimize(s.numSupersteps());
  }
  state.SetItemsProcessed(state.iterations() * d.numEdges());
}
BENCHMARK(BM_GrowLocalSchedule);

void BM_FunnelPartition(benchmark::State& state) {
  const auto& d = benchDag();
  for (auto _ : state) {
    auto p = core::funnelPartition(d, {});
    benchmark::DoNotOptimize(p.num_parts);
  }
  state.SetItemsProcessed(state.iterations() * d.numEdges());
}
BENCHMARK(BM_FunnelPartition);

void BM_TransitiveReduction(benchmark::State& state) {
  const auto lower =
      datagen::erdosRenyiLower({.n = 5000, .p = 4e-3, .seed = 3});
  const auto d = dag::Dag::fromLowerTriangular(lower);
  for (auto _ : state) {
    auto r = dag::approximateTransitiveReduction(d);
    benchmark::DoNotOptimize(r.removed_edges);
  }
  state.SetItemsProcessed(state.iterations() * d.numEdges());
}
BENCHMARK(BM_TransitiveReduction);

void BM_Wavefronts(benchmark::State& state) {
  const auto& d = benchDag();
  for (auto _ : state) {
    auto wf = dag::computeWavefronts(d);
    benchmark::DoNotOptimize(wf.num_levels);
  }
  state.SetItemsProcessed(state.iterations() * d.numEdges());
}
BENCHMARK(BM_Wavefronts);

/// Ablation: the sync-cost parameter L (§C.2). Reports the superstep count
/// as a counter — larger L glues more wavefronts per superstep.
void BM_AblationSyncCostL(benchmark::State& state) {
  const auto& d = benchDag();
  core::GrowLocalOptions opts;
  opts.num_cores = 2;
  opts.sync_cost_l = static_cast<double>(state.range(0));
  index_t supersteps = 0;
  for (auto _ : state) {
    auto s = core::growLocalSchedule(d, opts);
    supersteps = s.numSupersteps();
  }
  state.counters["supersteps"] = static_cast<double>(supersteps);
}
BENCHMARK(BM_AblationSyncCostL)->Arg(50)->Arg(500)->Arg(5000);

/// Ablation: the utilization floor (our interpretation of the paper's
/// "sufficient parallelization" test; see growlocal.hpp).
void BM_AblationUtilizationFloor(benchmark::State& state) {
  const auto& d = benchDag();
  core::GrowLocalOptions opts;
  opts.num_cores = 2;
  opts.min_utilization = static_cast<double>(state.range(0)) / 100.0;
  index_t supersteps = 0;
  double imbalance = 0.0;
  for (auto _ : state) {
    auto s = core::growLocalSchedule(d, opts);
    supersteps = s.numSupersteps();
    imbalance = core::computeScheduleStats(d, s).imbalance;
  }
  state.counters["supersteps"] = static_cast<double>(supersteps);
  state.counters["imbalance"] = imbalance;
}
BENCHMARK(BM_AblationUtilizationFloor)->Arg(0)->Arg(60)->Arg(85)->Arg(95);

}  // namespace

BENCHMARK_MAIN();
