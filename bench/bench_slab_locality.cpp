/// Slab-storage locality bench: shared-CSR vs slab matrix layout across
/// executor x team x nrhs. The slab layout (exec/slab.hpp) packs each
/// thread's rows, in execution order, into a private cache-line-aligned
/// record stream — zero row_ptr indirection, no cross-thread sharing of
/// matrix data — and its multi-RHS kernel is vectorized across RHS
/// columns (row_kernels.hpp). This bench measures what that buys on the
/// hot path and re-checks the storage contract end to end: both layouts
/// must produce bitwise-identical solutions on every configuration.
///
///   STS_BENCH_SCALE / STS_BENCH_REPS  dataset sizing as usual;
///   STS_SLAB_WIDTH  (default 4)       analyzed schedule width C;
///   STS_SLAB_REPS   (default 5)       timed passes per configuration.
///
/// Emits JSON with host metadata (schema in docs/BENCHMARKS.md). Exit
/// code 0 iff the slab results are bitwise equal to the shared-CSR
/// results everywhere — deliberately NOT a speed gate, so the bench stays
/// robust on 1-core CI runners; the timings and the multi-RHS geomean
/// speedup are reported for the trajectory snapshots (BENCH_5.json).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exec/solver.hpp"
#include "harness/datasets.hpp"
#include "harness/stats.hpp"

namespace {

using namespace sts;
using exec::SchedulerKind;
using exec::SolverOptions;
using exec::StorageKind;
using exec::TriangularSolver;

using sts::bench::envInt;

struct Row {
  std::string dataset;
  std::string matrix;
  std::string executor;
  int team = 0;
  index_t nrhs = 1;
  double shared_seconds = 0.0;
  double slab_seconds = 0.0;
  double slab_speedup = 0.0;
};

double timeSolves(const TriangularSolver& solver, exec::SolveContext& ctx,
                  std::span<const double> b, std::span<double> x,
                  index_t nrhs, int team, StorageKind storage, int reps) {
  using Clock = std::chrono::high_resolution_clock;
  std::vector<double> seconds;
  seconds.reserve(static_cast<size_t>(reps));
  for (int pass = 0; pass < reps; ++pass) {
    const auto t0 = Clock::now();
    solver.solveMultiRhs(b, x, nrhs, ctx, team,
                         solver.options().fold_policy, storage);
    seconds.push_back(
        std::chrono::duration<double>(Clock::now() - t0).count());
  }
  return harness::quantile(seconds, 0.5);
}

}  // namespace

int main() {
  const int width = envInt("STS_SLAB_WIDTH", 4);
  const int reps = envInt("STS_SLAB_REPS", 5);

  bench::banner("Slab storage locality", "Steiner et al. (locality follow-up)",
                "Shared-CSR vs thread-local slab layout, executor x team x "
                "nrhs");
  std::printf("schedule width %d, %d timed reps per configuration\n\n", width,
              reps);

  std::vector<harness::DatasetEntry> entries;
  std::vector<std::string> entry_dataset;
  {
    auto narrow = harness::narrowBandSet();
    if (!narrow.empty()) {
      entry_dataset.push_back("narrow-band");
      entries.push_back(std::move(narrow.front()));
    }
    auto erdos = harness::erdosRenyiSet();
    if (!erdos.empty()) {
      entry_dataset.push_back("erdos-renyi");
      entries.push_back(std::move(erdos.front()));
    }
    auto real = harness::suiteSparseReal();
    auto standin = harness::suiteSparseStandin();
    if (!real.empty()) {
      entry_dataset.push_back("suitesparse");
      entries.push_back(std::move(real.front()));
    } else if (!standin.empty()) {
      entry_dataset.push_back("suitesparse-standin");
      entries.push_back(std::move(standin.front()));
    }
  }

  struct ExecConfig {
    std::string name;
    SolverOptions options;
  };
  std::vector<ExecConfig> configs;
  {
    SolverOptions opts;
    opts.num_threads = width;
    opts.validate = false;
    opts.reorder = true;
    configs.push_back({"contiguous", opts});
    opts.reorder = false;
    configs.push_back({"bsp", opts});
    opts.scheduler = SchedulerKind::kSpmp;
    configs.push_back({"p2p", opts});
  }

  std::vector<int> teams = {1, width};
  teams.erase(std::unique(teams.begin(), teams.end()), teams.end());
  const std::vector<index_t> nrhs_sweep = {1, 4, 8};

  std::vector<Row> rows;
  bool bitwise_ok = true;
  for (size_t e = 0; e < entries.size(); ++e) {
    const auto& entry = entries[e];
    const auto n = static_cast<size_t>(entry.lower.rows());
    for (const auto& config : configs) {
      const auto solver = TriangularSolver::analyze(entry.lower,
                                                    config.options);
      auto ctx = solver.createContext();
      for (const int team : teams) {
        for (const index_t nrhs : nrhs_sweep) {
          const auto r = static_cast<size_t>(nrhs);
          std::vector<double> b(n * r);
          for (size_t i = 0; i < b.size(); ++i) {
            b[i] = 1.0 + 0.25 * static_cast<double>((3 * i + e) % 17);
          }
          std::vector<double> x_shared(b.size());
          std::vector<double> x_slab(b.size());
          // Warmup pass per storage also pays the one-time plan/slab
          // builds outside the timed region (the amortized regime).
          solver.solveMultiRhs(b, x_shared, nrhs, *ctx, team,
                               solver.options().fold_policy,
                               StorageKind::kSharedCsr);
          solver.solveMultiRhs(b, x_slab, nrhs, *ctx, team,
                               solver.options().fold_policy,
                               StorageKind::kSlab);
          if (x_shared != x_slab) bitwise_ok = false;

          Row row;
          row.dataset = entry_dataset[e];
          row.matrix = entry.name;
          row.executor = config.name;
          row.team = team;
          row.nrhs = nrhs;
          row.shared_seconds = timeSolves(solver, *ctx, b, x_shared, nrhs,
                                          team, StorageKind::kSharedCsr,
                                          reps);
          row.slab_seconds = timeSolves(solver, *ctx, b, x_slab, nrhs, team,
                                        StorageKind::kSlab, reps);
          if (x_shared != x_slab) bitwise_ok = false;
          row.slab_speedup = row.slab_seconds > 0.0
                                 ? row.shared_seconds / row.slab_seconds
                                 : 0.0;
          std::printf("%-14s %-10s team %2d nrhs %2d: shared %9.3f ms  "
                      "slab %9.3f ms  (%.2fx)\n",
                      entry.name.c_str(), config.name.c_str(), team,
                      static_cast<int>(nrhs), row.shared_seconds * 1e3,
                      row.slab_seconds * 1e3, row.slab_speedup);
          rows.push_back(std::move(row));
        }
      }
    }
  }

  std::vector<double> multi_speedups;
  for (const auto& row : rows) {
    if (row.nrhs > 1 && row.slab_speedup > 0.0) {
      multi_speedups.push_back(row.slab_speedup);
    }
  }
  const double multi_geomean =
      multi_speedups.empty() ? 0.0 : harness::geometricMean(multi_speedups);

  std::printf("\nJSON: {\"bench\":\"slab_locality\",%s,"
              "\"schedule_width\":%d,\"reps\":%d,\"results\":[",
              bench::hostMetaJson().c_str(), width, reps);
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::printf("%s{\"dataset\":\"%s\",\"matrix\":\"%s\","
                "\"executor\":\"%s\",\"team\":%d,\"nrhs\":%d,"
                "\"shared_seconds\":%.6g,\"slab_seconds\":%.6g,"
                "\"slab_speedup\":%.4g}",
                i == 0 ? "" : ",", r.dataset.c_str(), r.matrix.c_str(),
                r.executor.c_str(), r.team, static_cast<int>(r.nrhs),
                r.shared_seconds, r.slab_seconds, r.slab_speedup);
  }
  std::printf("],\"multi_rhs_geomean_speedup\":%.4g,\"bitwise_equal\":%s}\n",
              multi_geomean, bitwise_ok ? "true" : "false");

  std::printf("\nclaim under test: the slab walk is bitwise identical to the "
              "shared-CSR walk on every\nexecutor x team x nrhs "
              "configuration (speed is reported, not gated).\n");
  std::printf("multi-RHS slab geomean speedup: %.2fx\n", multi_geomean);
  std::printf(bitwise_ok ? "claim holds.\n" : "claim FAILED.\n");
  return bitwise_ok ? 0 : 1;
}
