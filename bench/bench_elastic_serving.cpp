/// Elastic serving: the concurrency/parallelism trade-off of load-adaptive
/// team sizing. An analyzed schedule of width C is re-targetable to any
/// team t <= C (Schedule::foldTo; bitwise-lossless), so under deep backlog
/// the engine can shrink per-solve teams and run more batches concurrently
/// instead of spending every core on one solve — the elasticity gap
/// Steiner et al. identify for the source paper's schedules. This bench
/// sweeps offered load (staged backlog depth) and per-batch team size and
/// emits JSON: team size vs. aggregate throughput per dataset. Every
/// configuration is measured twice — unpinned, and with
/// EngineOptions::pin_threads so each batch's team runs pinned to its
/// disjoint leased core set (the core-set-affinity configuration; the
/// pinned columns print "-" when the platform lacks affinity support).
///
///   STS_BENCH_SCALE / STS_BENCH_REPS control dataset sizing as usual;
///   STS_ELASTIC_WIDTH    (default 4)  schedule width C;
///   STS_ELASTIC_WORKERS  (default C)  engine dispatcher threads;
///   STS_ELASTIC_BATCH    (default 8)  coalescing budget;
///   STS_ELASTIC_REPS     (default 5)  timed passes per configuration.
///
/// Exit code 0 iff, under the deepest backlog, some fixed team t < C beats
/// the full-width-only configuration on at least one dataset (the unpinned
/// sweep — pinning is reported, not gated, because its benefit depends on
/// the host's cache topology).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "engine/solver_engine.hpp"
#include "exec/affinity.hpp"
#include "harness/datasets.hpp"
#include "harness/serving.hpp"
#include "harness/stats.hpp"

namespace {

using sts::bench::envInt;

struct Config {
  std::string name;
  int team = 0;          ///< fixed team; 0 = adaptive elastic policy
};

struct Result {
  std::string dataset;
  std::string matrix;
  std::string config;
  int team = 0;          ///< 0 = adaptive
  int backlog = 0;
  double median_seconds = 0.0;
  double rhs_per_second = 0.0;
  double mean_team_size = 0.0;
  std::uint64_t shrunk_batches = 0;
  /// Same configuration with pin_threads: teams pinned to disjoint leased
  /// core sets. 0 when affinity is unsupported.
  double pinned_median_seconds = 0.0;
  double pinned_rhs_per_second = 0.0;
  double pinned_mean_team_size = 0.0;
  std::uint64_t migrated_threads = 0;  ///< migrations the pins corrected
};

/// Median resume()-to-drain seconds for a staged backlog of single-RHS
/// requests, over `reps` timed passes after one warmup (the shared
/// harness staging methodology).
double measurePass(sts::engine::SolverEngine& engine,
                   sts::engine::SolverId id,
                   const std::vector<std::vector<double>>& rhs, int reps) {
  return sts::harness::measureStagedPasses(engine, id, rhs, /*warmup=*/1,
                                           reps);
}

}  // namespace

int main() {
  using namespace sts;

  const int width = envInt("STS_ELASTIC_WIDTH", 4);
  const int workers = envInt("STS_ELASTIC_WORKERS", width);
  const auto max_batch =
      static_cast<index_t>(envInt("STS_ELASTIC_BATCH", 8));
  const int reps = envInt("STS_ELASTIC_REPS", 5);
  const std::vector<int> backlogs = {workers, 4 * workers, 16 * workers};

  bench::banner("Elastic serving", "Steiner et al. (elasticity follow-up)",
                "Team size vs. aggregate throughput under offered load");
  std::printf("schedule width %d, %d workers, coalescing budget %d, "
              "%u hardware cores\n\n",
              width, workers, static_cast<int>(max_batch),
              std::thread::hardware_concurrency());

  std::vector<Config> configs;
  configs.push_back({"full", width});
  for (int t = 1; t < width; ++t) {
    configs.push_back({"team=" + std::to_string(t), t});
  }
  configs.push_back({"adaptive", 0});

  std::vector<harness::DatasetEntry> entries;
  std::vector<std::string> entry_dataset;
  {
    auto standin = harness::suiteSparseStandin();
    for (size_t i = 0; i < standin.size() && i < 2; ++i) {
      entry_dataset.push_back("suitesparse-standin");
      entries.push_back(std::move(standin[i]));
    }
    auto erdos = harness::erdosRenyiSet();
    if (!erdos.empty()) {
      entry_dataset.push_back("erdos-renyi");
      entries.push_back(std::move(erdos.front()));
    }
  }

  std::vector<Result> results;
  bool shrunk_wins = false;
  for (size_t e = 0; e < entries.size(); ++e) {
    const auto& entry = entries[e];
    exec::SolverOptions solver_opts;
    solver_opts.scheduler = exec::SchedulerKind::kGrowLocal;
    solver_opts.num_threads = width;
    solver_opts.validate = false;
    auto solver = std::make_shared<const exec::TriangularSolver>(
        exec::TriangularSolver::analyze(entry.lower, solver_opts));
    const auto n = static_cast<size_t>(entry.lower.rows());

    const int deepest = backlogs.back();
    std::vector<std::vector<double>> rhs(static_cast<size_t>(deepest));
    for (size_t j = 0; j < rhs.size(); ++j) {
      rhs[j].resize(n);
      for (size_t i = 0; i < n; ++i) {
        rhs[j][i] = 1.0 + 0.25 * static_cast<double>((i + 7 * j) % 13);
      }
    }

    double full_deep_rhs_per_s = 0.0;
    double best_shrunk_deep = 0.0;
    std::string best_shrunk_name;
    for (const auto& config : configs) {
      for (const int backlog : backlogs) {
        // One engine per (config, backlog) row so the reported stats —
        // especially mean_team_size under the adaptive policy — describe
        // exactly this offered-load level, not the sweep so far.
        engine::EngineOptions opts;
        opts.num_workers = workers;
        opts.max_batch = max_batch;
        opts.coalesce = true;
        opts.start_paused = true;
        if (config.team > 0) {
          opts.team_size = config.team;
        } else {
          opts.elastic = true;
        }
        const std::vector<std::vector<double>> slice(
            rhs.begin(), rhs.begin() + backlog);
        Result r;
        r.dataset = entry_dataset[e];
        r.matrix = entry.name;
        r.config = config.name;
        r.team = config.team;
        r.backlog = backlog;
        {
          engine::SolverEngine engine(opts);
          const auto id = engine.registerSolver(solver);
          r.median_seconds = measurePass(engine, id, slice, reps);
          r.rhs_per_second =
              static_cast<double>(backlog) / r.median_seconds;
          const auto stats = engine.stats(id);
          r.mean_team_size = stats.mean_team_size;
          r.shrunk_batches = stats.shrunk_batches;
        }
        // The pinned twin: identical load, but every batch's team pins to
        // its leased core set (disjoint across concurrent batches). The
        // budget caps teams at the detected core count, so the pinned
        // column doubles as the never-oversubscribe configuration.
        if (sts::exec::affinitySupported() &&
            !sts::exec::systemCoreSet().empty()) {
          engine::EngineOptions pinned_opts = opts;
          pinned_opts.pin_threads = true;
          engine::SolverEngine engine(pinned_opts);
          const auto id = engine.registerSolver(solver);
          r.pinned_median_seconds = measurePass(engine, id, slice, reps);
          r.pinned_rhs_per_second =
              static_cast<double>(backlog) / r.pinned_median_seconds;
          const auto stats = engine.stats(id);
          r.pinned_mean_team_size = stats.mean_team_size;
          r.migrated_threads = stats.migrated_threads;
        }
        if (r.pinned_median_seconds > 0.0) {
          std::printf("%-20s %-12s backlog %4d: %8.3f ms, %9.0f rhs/s | "
                      "pinned %8.3f ms, %9.0f rhs/s\n",
                      entry.name.c_str(), config.name.c_str(), backlog,
                      r.median_seconds * 1e3, r.rhs_per_second,
                      r.pinned_median_seconds * 1e3, r.pinned_rhs_per_second);
        } else {
          std::printf("%-20s %-12s backlog %4d: %8.3f ms, %9.0f rhs/s | "
                      "pinned -\n",
                      entry.name.c_str(), config.name.c_str(), backlog,
                      r.median_seconds * 1e3, r.rhs_per_second);
        }
        if (backlog == deepest) {
          if (config.name == "full") {
            full_deep_rhs_per_s = r.rhs_per_second;
          } else if (config.team > 0 && config.team < width &&
                     r.rhs_per_second > best_shrunk_deep) {
            best_shrunk_deep = r.rhs_per_second;
            best_shrunk_name = config.name;
          }
        }
        results.push_back(std::move(r));
      }
    }
    if (best_shrunk_deep > full_deep_rhs_per_s) shrunk_wins = true;
    std::printf("  -> deep backlog on %s: full %0.0f rhs/s vs best shrunk "
                "(%s) %0.0f rhs/s\n\n",
                entry.name.c_str(), full_deep_rhs_per_s,
                best_shrunk_name.c_str(), best_shrunk_deep);
  }

  // Machine-readable output: team size vs. aggregate throughput.
  std::printf("JSON: {\"bench\":\"elastic_serving\",%s,"
              "\"schedule_width\":%d,\"workers\":%d,\"max_batch\":%d,"
              "\"results\":[",
              bench::hostMetaJson().c_str(), width, workers,
              static_cast<int>(max_batch));
  for (size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::printf("%s{\"dataset\":\"%s\",\"matrix\":\"%s\",\"config\":\"%s\","
                "\"team\":%d,\"backlog\":%d,\"median_seconds\":%.6g,"
                "\"rhs_per_second\":%.6g,\"mean_team_size\":%.3g,"
                "\"shrunk_batches\":%llu,\"pinned_median_seconds\":%.6g,"
                "\"pinned_rhs_per_second\":%.6g,"
                "\"pinned_mean_team_size\":%.3g,\"migrated_threads\":%llu}",
                i == 0 ? "" : ",", r.dataset.c_str(), r.matrix.c_str(),
                r.config.c_str(), r.team, r.backlog, r.median_seconds,
                r.rhs_per_second, r.mean_team_size,
                static_cast<unsigned long long>(r.shrunk_batches),
                r.pinned_median_seconds, r.pinned_rhs_per_second,
                r.pinned_mean_team_size,
                static_cast<unsigned long long>(r.migrated_threads));
  }
  std::printf("]}\n");

  std::printf("\nclaim under test: under deep backlog, folding solves onto "
              "shrunk teams buys more aggregate\nthroughput than full-width "
              "solves — the elasticity trade-off.\n");
  std::printf(shrunk_wins ? "claim holds.\n" : "claim FAILED.\n");
  return shrunk_wins ? 0 : 1;
}
