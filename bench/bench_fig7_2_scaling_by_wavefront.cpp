/// Figure 7.2: GrowLocal core scaling grouped by average wavefront size —
/// matrices with more available parallelism scale to more cores.

#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "harness/runner.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"

int main() {
  using namespace sts;
  using harness::Table;

  bench::banner("Figure 7.2", "Fig. 7.2",
                "GrowLocal scaling grouped by average wavefront size");
  // Mix the SuiteSparse stand-in with the random families so that all three
  // of the paper's wavefront buckets are populated.
  auto dataset = harness::suiteSparseStandin();
  for (auto& [name, set] : harness::allDatasets()) {
    if (name == "Narrow bandw." || name == "Erdos-Renyi") {
      for (auto& entry : set) dataset.push_back(std::move(entry));
    }
  }

  auto bucketOf = [](double avg_wf) {
    if (avg_wf < 128.0) return std::string("wf < 128");
    if (avg_wf <= 1200.0) return std::string("wf 128-1200");
    return std::string("wf > 1200");
  };

  std::map<std::string, std::map<int, std::vector<double>>> by_bucket;
  for (const auto& entry : dataset) {
    const std::string bucket =
        bucketOf(harness::averageWavefrontSize(entry.lower));
    harness::MeasureOptions base;
    const double serial = harness::measureSerial(entry.lower, base);
    for (const int threads : {1, 2, 4}) {
      harness::MeasureOptions opts;
      opts.num_threads = threads;
      const auto m = harness::measureSolver(entry.name, entry.lower,
                                            exec::SchedulerKind::kGrowLocal,
                                            opts, serial);
      by_bucket[bucket][threads].push_back(m.speedup);
    }
  }

  Table table({"avg wavefront", "matrices", "1 thread", "2 threads",
               "4 threads*"});
  for (const auto& [bucket, per_threads] : by_bucket) {
    std::vector<std::string> row = {bucket,
                                    std::to_string(
                                        per_threads.begin()->second.size())};
    for (const int threads : {1, 2, 4}) {
      const auto it = per_threads.find(threads);
      row.push_back(it == per_threads.end()
                        ? "-"
                        : Table::fmt(harness::geometricMean(it->second)));
    }
    table.addRow(std::move(row));
  }
  table.print(std::cout);
  std::printf("\n* oversubscribed (2 hardware threads).\npaper: the >50000 "
              "bucket keeps scaling to 64 cores, the 44-127 bucket saturates "
              "early.\nReproduced claim: larger average wavefronts scale "
              "further.\n");
  return 0;
}
