/// Table 7.6: amortization threshold (Eq. 7.1) — how many solves must reuse
/// a schedule before the scheduling time pays for itself. Quartiles over
/// the SuiteSparse stand-in.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "harness/runner.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"

int main() {
  using namespace sts;
  using harness::Table;

  bench::banner("Table 7.6", "Table 7.6",
                "Amortization threshold quartiles (Eq. 7.1)");
  const auto dataset = harness::suiteSparseStandin();

  const std::vector<exec::SchedulerKind> kinds = {
      exec::SchedulerKind::kGrowLocal, exec::SchedulerKind::kFunnelGrowLocal,
      exec::SchedulerKind::kSpmp, exec::SchedulerKind::kHdagg};

  harness::MeasureOptions opts;
  std::vector<double> serial;
  for (const auto& entry : dataset) {
    serial.push_back(harness::measureSerial(entry.lower, opts));
  }

  Table table({"algorithm", "Q25", "median", "Q75"});
  for (const auto kind : kinds) {
    std::vector<double> thresholds;
    for (size_t i = 0; i < dataset.size(); ++i) {
      const auto m = harness::measureSolver(dataset[i].name, dataset[i].lower,
                                            kind, opts, serial[i]);
      thresholds.push_back(m.amortization);
    }
    const auto q = harness::quartiles(thresholds);
    table.addRow({exec::schedulerKindName(kind), Table::fmt(q.q25, 1),
                  Table::fmt(q.median, 1), Table::fmt(q.q75, 1)});
  }
  table.print(std::cout);
  std::printf("\npaper (22 cores): GrowLocal 23.78/26.12/30.28, Funnel+GL "
              "17.78/21.74/27.78, SpMP 3.65/5.51/8.41,\nHDagg "
              "311.23/961.39/1848.80. Reproduced claim: SpMP amortizes "
              "fastest, GrowLocal within one order of it,\nHDagg orders of "
              "magnitude later.\n");
  return 0;
}
