#pragma once

#include <cstdio>
#include <string>

#include "harness/datasets.hpp"

/// \file bench_common.hpp
/// Shared banner/format helpers for the per-table bench binaries.

namespace sts::bench {

inline void banner(const std::string& experiment, const std::string& paper_ref,
                   const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s  (reproduces %s)\n", experiment.c_str(), paper_ref.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("host substitution: single container, %d hardware threads; "
              "scale=%.2f reps=%d (STS_BENCH_SCALE / STS_BENCH_REPS)\n",
              2, harness::benchScale(), harness::benchReps());
  std::printf("==============================================================\n\n");
}

inline void datasetSummary(const std::string& name,
                           const harness::Dataset& set) {
  std::printf("[%s] %zu matrices:\n", name.c_str(), set.size());
  for (const auto& entry : set) {
    std::printf("  %-16s %9d rows %10lld nnz  avg-wavefront %8.1f\n",
                entry.name.c_str(), entry.lower.rows(),
                static_cast<long long>(entry.lower.nnz()),
                harness::averageWavefrontSize(entry.lower));
  }
  std::printf("\n");
}

}  // namespace sts::bench
