#pragma once

#include <omp.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "exec/tile.hpp"
#include "harness/datasets.hpp"
#include "obs/trace.hpp"

/// \file bench_common.hpp
/// Shared banner/format helpers for the per-table bench binaries.

namespace sts::bench {

/// Positive-integer environment knob: `name`'s value when it parses to a
/// positive int, `fallback` otherwise (the shared convention of every
/// STS_*_WIDTH/REPS/... bench knob).
inline int envInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const int parsed = std::atoi(value);
  return parsed > 0 ? parsed : fallback;
}

/// Host metadata fields for the machine-readable bench outputs (no braces,
/// ready to splice into a JSON object): core count, OpenMP width, and the
/// detected cache geometry (exec::cacheGeometry — sysfs with conservative
/// fallbacks, `cache_detected` telling the two apart). The geometry is what
/// sized the tile path on this host and what tools/roofline.py uses to
/// explain cache-resident >100% roofline fractions.
inline std::string hostMetaJson() {
  const exec::CacheGeometry& geo = exec::cacheGeometry();
  return "\"hardware_cores\":" +
         std::to_string(std::thread::hardware_concurrency()) +
         ",\"omp_max_threads\":" + std::to_string(omp_get_max_threads()) +
         ",\"cache_detected\":" + (geo.detected ? "true" : "false") +
         ",\"l1d_bytes\":" + std::to_string(geo.l1d_bytes) +
         ",\"l2_bytes\":" + std::to_string(geo.l2_bytes) +
         ",\"l3_bytes\":" + std::to_string(geo.l3_bytes) +
         ",\"cache_line_bytes\":" + std::to_string(geo.line_bytes) +
         ",\"l1d_shared_cpus\":" + std::to_string(geo.l1d_shared_cpus) +
         ",\"l2_shared_cpus\":" + std::to_string(geo.l2_shared_cpus) +
         ",\"l3_shared_cpus\":" + std::to_string(geo.l3_shared_cpus);
}

inline void banner(const std::string& experiment, const std::string& paper_ref,
                   const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s  (reproduces %s)\n", experiment.c_str(), paper_ref.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("host substitution: single container, %d hardware threads; "
              "scale=%.2f reps=%d (STS_BENCH_SCALE / STS_BENCH_REPS)\n",
              2, harness::benchScale(), harness::benchReps());
  std::printf("==============================================================\n\n");
}

/// Starts a solve-path trace session when `STS_TRACE_OUT` names an output
/// file, and returns it (nullptr otherwise — the zero-cost default). Every
/// bench/example main() calls this once before the measured work; pair it
/// with finishTrace() after the last solve. Under -DSTS_TRACING=OFF the
/// session still starts but records nothing (the instrumentation points
/// compiled away), so the written JSON is an empty-but-valid trace.
inline std::shared_ptr<obs::TraceSession> maybeTraceFromEnv() {
  const char* path = std::getenv("STS_TRACE_OUT");
  if (path == nullptr || path[0] == '\0') return nullptr;
  auto session = obs::TraceSession::start();
  session->nameCurrentThread("main");
  return session;
}

/// Stops `session` (no-op on nullptr) and writes the Perfetto/chrome
/// trace_event JSON to the STS_TRACE_OUT path, reporting span and drop
/// counts so truncated rings are visible at the console.
inline void finishTrace(const std::shared_ptr<obs::TraceSession>& session) {
  if (session == nullptr) return;
  session->stop();
  const char* path = std::getenv("STS_TRACE_OUT");
  if (path == nullptr || path[0] == '\0') return;
  if (!session->writeJson(path)) {
    std::fprintf(stderr, "trace: failed to write %s\n", path);
    return;
  }
  std::printf("trace: wrote %s (%llu events, %zu threads, %llu dropped)\n",
              path, static_cast<unsigned long long>(session->totalEvents()),
              session->numThreads(),
              static_cast<unsigned long long>(session->droppedEvents()));
}

inline void datasetSummary(const std::string& name,
                           const harness::Dataset& set) {
  std::printf("[%s] %zu matrices:\n", name.c_str(), set.size());
  for (const auto& entry : set) {
    std::printf("  %-16s %9d rows %10lld nnz  avg-wavefront %8.1f\n",
                entry.name.c_str(), entry.lower.rows(),
                static_cast<long long>(entry.lower.nnz()),
                harness::averageWavefrontSize(entry.lower));
  }
  std::printf("\n");
}

}  // namespace sts::bench
