#pragma once

#include <omp.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "harness/datasets.hpp"

/// \file bench_common.hpp
/// Shared banner/format helpers for the per-table bench binaries.

namespace sts::bench {

/// Positive-integer environment knob: `name`'s value when it parses to a
/// positive int, `fallback` otherwise (the shared convention of every
/// STS_*_WIDTH/REPS/... bench knob).
inline int envInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const int parsed = std::atoi(value);
  return parsed > 0 ? parsed : fallback;
}

/// Host metadata fields for the machine-readable bench outputs (no braces,
/// ready to splice into a JSON object): core count and OpenMP width make
/// cross-run and cross-host comparisons meaningful.
inline std::string hostMetaJson() {
  return "\"hardware_cores\":" +
         std::to_string(std::thread::hardware_concurrency()) +
         ",\"omp_max_threads\":" + std::to_string(omp_get_max_threads());
}

inline void banner(const std::string& experiment, const std::string& paper_ref,
                   const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s  (reproduces %s)\n", experiment.c_str(), paper_ref.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("host substitution: single container, %d hardware threads; "
              "scale=%.2f reps=%d (STS_BENCH_SCALE / STS_BENCH_REPS)\n",
              2, harness::benchScale(), harness::benchReps());
  std::printf("==============================================================\n\n");
}

inline void datasetSummary(const std::string& name,
                           const harness::Dataset& set) {
  std::printf("[%s] %zu matrices:\n", name.c_str(), set.size());
  for (const auto& entry : set) {
    std::printf("  %-16s %9d rows %10lld nnz  avg-wavefront %8.1f\n",
                entry.name.c_str(), entry.lower.rows(),
                static_cast<long long>(entry.lower.nnz()),
                harness::averageWavefrontSize(entry.lower));
  }
  std::printf("\n");
}

}  // namespace sts::bench
