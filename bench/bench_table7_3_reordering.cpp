/// Table 7.3: ablation of the §5 locality reordering — geometric-mean
/// speed-up of GrowLocal with and without permuting the matrix according to
/// the computed schedule.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"

int main() {
  using namespace sts;
  using harness::Table;

  bench::banner("Table 7.3", "Table 7.3",
                "GrowLocal speed-up with / without locality reordering");

  Table table({"data set", "Reordering", "No Reordering"});
  for (const auto& [set_name, dataset] : harness::allDatasets()) {
    std::vector<harness::SolveMeasurement> with, without;
    for (const auto& entry : dataset) {
      harness::MeasureOptions opts;
      const double serial = harness::measureSerial(entry.lower, opts);
      opts.reorder = true;
      with.push_back(harness::measureSolver(entry.name, entry.lower,
                                            exec::SchedulerKind::kGrowLocal,
                                            opts, serial));
      opts.reorder = false;
      without.push_back(harness::measureSolver(entry.name, entry.lower,
                                               exec::SchedulerKind::kGrowLocal,
                                               opts, serial));
    }
    table.addRow({set_name, Table::fmt(harness::geomeanSpeedup(with)),
                  Table::fmt(harness::geomeanSpeedup(without))});
  }
  table.print(std::cout);
  std::printf("\npaper (22 cores): SuiteSparse 10.79/8.62, METIS 15.93/15.21, "
              "iChol 15.10/15.02, ER 12.75/7.87, NarrowBand 9.04/6.96.\n"
              "Expected shape: reordering helps most on ER and natural "
              "SuiteSparse orderings, least on already-reordered sets.\n");
  return 0;
}
