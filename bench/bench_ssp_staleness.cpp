/// Bounded-staleness (SSP) sweep: exact executor vs SSP executor across
/// staleness x team x dataset. The SSP executor (exec/ssp.hpp) folds
/// chunks of staleness+1 supersteps between barriers, drops same-chunk
/// cross-thread operands, and repairs the sparsification with
/// residual-checked refinement sweeps until ||b - Lx||_inf is at or
/// below the tolerance (exact fallback past the cap). This bench
/// measures what relaxed synchronization buys per staleness level and
/// re-checks the tier contract end to end:
///
///   * staleness 0 must be bitwise identical to the exact solve, and
///   * every staleness > 0 result must meet the residual tolerance on
///     the ORIGINAL (unpermuted) system.
///
///   STS_BENCH_SCALE / STS_BENCH_REPS  dataset sizing as usual;
///   STS_SSP_WIDTH  (default 4)        analyzed schedule width C;
///   STS_SSP_REPS   (default 5)        timed passes per configuration;
///   STS_SSP_TOL    (default 1e-8)     refinement tolerance.
///
/// Emits JSON with host metadata (schema in docs/BENCHMARKS.md). Exit
/// code 0 iff both contract checks hold everywhere — deliberately NOT a
/// speed gate, so the bench stays robust on 1-core CI runners; timings
/// and refinement counts are reported for the trajectory snapshots.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exec/solver.hpp"
#include "exec/ssp.hpp"
#include "exec/verify.hpp"
#include "harness/datasets.hpp"
#include "harness/stats.hpp"

namespace {

using namespace sts;
using exec::SchedulerKind;
using exec::SolverOptions;
using exec::SspOptions;
using exec::SspResult;
using exec::StorageKind;
using exec::TriangularSolver;

using sts::bench::envInt;

double envDouble(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  return raw && *raw ? std::atof(raw) : fallback;
}

struct Row {
  std::string dataset;
  std::string matrix;
  std::string executor;
  int team = 0;
  index_t staleness = 0;
  double exact_seconds = 0.0;
  double ssp_seconds = 0.0;
  double ssp_speedup = 0.0;
  int refinements = 0;
  double residual = 0.0;
  bool fell_back = false;
};

}  // namespace

int main() {
  const int width = envInt("STS_SSP_WIDTH", 4);
  const int reps = envInt("STS_SSP_REPS", 5);
  const double tol = envDouble("STS_SSP_TOL", 1e-8);

  bench::banner("SSP staleness sweep", "Bounded-staleness executor tier",
                "Exact vs SSP solve, staleness x team x dataset; "
                "residual-gated");
  std::printf("schedule width %d, %d timed reps, tolerance %.1e\n\n", width,
              reps, tol);

  std::vector<harness::DatasetEntry> entries;
  std::vector<std::string> entry_dataset;
  {
    auto narrow = harness::narrowBandSet();
    if (!narrow.empty()) {
      entry_dataset.push_back("narrow-band");
      entries.push_back(std::move(narrow.front()));
    }
    auto erdos = harness::erdosRenyiSet();
    if (!erdos.empty()) {
      entry_dataset.push_back("erdos-renyi");
      entries.push_back(std::move(erdos.front()));
    }
    auto real = harness::suiteSparseReal();
    auto standin = harness::suiteSparseStandin();
    if (!real.empty()) {
      entry_dataset.push_back("suitesparse");
      entries.push_back(std::move(real.front()));
    } else if (!standin.empty()) {
      entry_dataset.push_back("suitesparse-standin");
      entries.push_back(std::move(standin.front()));
    }
  }

  struct ExecConfig {
    std::string name;
    SolverOptions options;
  };
  std::vector<ExecConfig> configs;
  {
    SolverOptions opts;
    opts.num_threads = width;
    opts.validate = false;
    opts.reorder = true;
    configs.push_back({"contiguous", opts});
    opts.reorder = false;
    configs.push_back({"bsp", opts});
  }

  std::vector<int> teams = {1, width};
  teams.erase(std::unique(teams.begin(), teams.end()), teams.end());
  const std::vector<index_t> staleness_sweep = {0, 1, 2, 4};

  using Clock = std::chrono::high_resolution_clock;
  std::vector<Row> rows;
  bool bitwise_ok = true;
  bool residual_ok = true;
  for (size_t e = 0; e < entries.size(); ++e) {
    const auto& entry = entries[e];
    const auto n = static_cast<size_t>(entry.lower.rows());
    std::vector<double> b(n);
    for (size_t i = 0; i < n; ++i) {
      b[i] = 1.0 + 0.25 * static_cast<double>((3 * i + e) % 17);
    }
    for (const auto& config : configs) {
      const auto solver = TriangularSolver::analyze(entry.lower,
                                                    config.options);
      auto ctx = solver.createContext();
      for (const int team : teams) {
        std::vector<double> x_exact(n);
        // Warmup also pays the one-time plan builds outside the timing.
        solver.solve(b, x_exact, *ctx, team, solver.options().fold_policy,
                     StorageKind::kSharedCsr);
        std::vector<double> exact_times;
        for (int pass = 0; pass < reps; ++pass) {
          const auto t0 = Clock::now();
          solver.solve(b, x_exact, *ctx, team, solver.options().fold_policy,
                       StorageKind::kSharedCsr);
          exact_times.push_back(
              std::chrono::duration<double>(Clock::now() - t0).count());
        }
        const double exact_seconds = harness::quantile(exact_times, 0.5);

        for (const index_t staleness : staleness_sweep) {
          SspOptions ssp;
          ssp.staleness = staleness;
          ssp.tolerance = staleness == 0 ? 1e-6 : tol;
          std::vector<double> x(n);
          SspResult result = solver.solveBoundedStale(
              b, x, ssp, *ctx, team, solver.options().fold_policy,
              StorageKind::kSharedCsr);
          if (staleness == 0 && x != x_exact) bitwise_ok = false;
          if (staleness > 0 &&
              exec::residualInf(entry.lower, x, b) > tol) {
            residual_ok = false;
          }
          std::vector<double> ssp_times;
          for (int pass = 0; pass < reps; ++pass) {
            const auto t0 = Clock::now();
            result = solver.solveBoundedStale(
                b, x, ssp, *ctx, team, solver.options().fold_policy,
                StorageKind::kSharedCsr);
            ssp_times.push_back(
                std::chrono::duration<double>(Clock::now() - t0).count());
          }

          Row row;
          row.dataset = entry_dataset[e];
          row.matrix = entry.name;
          row.executor = config.name;
          row.team = team;
          row.staleness = staleness;
          row.exact_seconds = exact_seconds;
          row.ssp_seconds = harness::quantile(ssp_times, 0.5);
          row.ssp_speedup = row.ssp_seconds > 0.0
                                ? exact_seconds / row.ssp_seconds
                                : 0.0;
          row.refinements = result.refinements;
          row.residual = result.residual;
          row.fell_back = result.fell_back;
          std::printf("%-14s %-10s team %2d s=%d: exact %9.3f ms  "
                      "ssp %9.3f ms  (%.2fx, %d refine%s)\n",
                      entry.name.c_str(), config.name.c_str(), team,
                      static_cast<int>(staleness), exact_seconds * 1e3,
                      row.ssp_seconds * 1e3, row.ssp_speedup,
                      row.refinements, row.fell_back ? ", fell back" : "");
          rows.push_back(std::move(row));
        }
      }
    }
  }

  std::vector<double> stale_speedups;
  for (const auto& row : rows) {
    if (row.staleness > 0 && row.team > 1 && row.ssp_speedup > 0.0) {
      stale_speedups.push_back(row.ssp_speedup);
    }
  }
  const double stale_geomean =
      stale_speedups.empty() ? 0.0 : harness::geometricMean(stale_speedups);

  std::printf("\nJSON: {\"bench\":\"ssp_staleness\",%s,"
              "\"schedule_width\":%d,\"reps\":%d,\"tolerance\":%.3g,"
              "\"results\":[",
              bench::hostMetaJson().c_str(), width, reps, tol);
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::printf("%s{\"dataset\":\"%s\",\"matrix\":\"%s\","
                "\"executor\":\"%s\",\"team\":%d,\"staleness\":%d,"
                "\"exact_seconds\":%.6g,\"ssp_seconds\":%.6g,"
                "\"ssp_speedup\":%.4g,\"refinements\":%d,"
                "\"residual\":%.6g,\"fell_back\":%s}",
                i == 0 ? "" : ",", r.dataset.c_str(), r.matrix.c_str(),
                r.executor.c_str(), r.team, static_cast<int>(r.staleness),
                r.exact_seconds, r.ssp_seconds, r.ssp_speedup,
                r.refinements, r.residual, r.fell_back ? "true" : "false");
  }
  std::printf("],\"stale_geomean_speedup\":%.4g,"
              "\"bitwise_equal_s0\":%s,\"residual_within_tol\":%s}\n",
              stale_geomean, bitwise_ok ? "true" : "false",
              residual_ok ? "true" : "false");

  std::printf("\nclaims under test: staleness 0 is bitwise identical to the "
              "exact solve, and every\nstaleness > 0 result meets the "
              "%.1e residual tolerance (speed reported, not gated).\n",
              tol);
  std::printf("stale (s>0, team>1) geomean speedup vs exact: %.2fx\n",
              stale_geomean);
  std::printf(bitwise_ok && residual_ok ? "claims hold.\n"
                                        : "claims FAILED.\n");
  return bitwise_ok && residual_ok ? 0 : 1;
}
