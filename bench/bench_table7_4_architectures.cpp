/// Table 7.4: consistency across processor architectures.
///
/// SUBSTITUTION (DESIGN.md): the paper runs the same experiment on Intel
/// x86, AMD x86 and Kunpeng ARM hosts; this container exposes one
/// architecture. We report the one host at its native thread count plus a
/// single-thread configuration as a second "machine", and record that the
/// paper's cross-architecture claim (same ordering everywhere) can only be
/// spot-checked on one architecture here.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"

int main() {
  using namespace sts;
  using harness::Table;

  bench::banner("Table 7.4", "Table 7.4",
                "Scheduler ordering per machine configuration (substituted)");
  const auto dataset = harness::suiteSparseStandin();

  const std::vector<exec::SchedulerKind> kinds = {
      exec::SchedulerKind::kGrowLocal, exec::SchedulerKind::kSpmp,
      exec::SchedulerKind::kHdagg};

  harness::MeasureOptions base;
  std::vector<double> serial;
  for (const auto& entry : dataset) {
    serial.push_back(harness::measureSerial(entry.lower, base));
  }

  Table table({"machine", "GrowLocal", "SpMP", "HDagg"});
  for (const int threads : {2, 1}) {
    std::vector<std::string> row = {"container-x86 (" +
                                    std::to_string(threads) + " threads)"};
    for (const auto kind : kinds) {
      std::vector<harness::SolveMeasurement> ms;
      harness::MeasureOptions opts;
      opts.num_threads = threads;
      for (size_t i = 0; i < dataset.size(); ++i) {
        ms.push_back(harness::measureSolver(dataset[i].name, dataset[i].lower,
                                            kind, opts, serial[i]));
      }
      row.push_back(Table::fmt(harness::geomeanSpeedup(ms)));
    }
    table.addRow(std::move(row));
  }
  table.print(std::cout);
  std::printf("\npaper: Intel x86 10.79/7.60/3.25, AMD x86 5.20/3.65/1.98, "
              "Kunpeng ARM 9.27/n-a/2.16 (22 cores each).\n"
              "Reproduced claim: the GrowLocal >= SpMP >= HDagg ordering is "
              "configuration-independent.\n");
  return 0;
}
