/// Table 7.5: scaling of GrowLocal with the number of cores (the paper
/// sweeps 4..64 cores on a 64-core AMD host; this container has 2 hardware
/// threads, so 4 is an oversubscribed data point and is flagged as such).

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"

int main() {
  using namespace sts;
  using harness::Table;

  bench::banner("Table 7.5", "Table 7.5",
                "GrowLocal speed-up vs thread count, SuiteSparse stand-in");
  const auto dataset = harness::suiteSparseStandin();

  harness::MeasureOptions base;
  std::vector<double> serial;
  for (const auto& entry : dataset) {
    serial.push_back(harness::measureSerial(entry.lower, base));
  }

  Table table({"threads", "geomean speed-up", "note"});
  for (const int threads : {1, 2, 4}) {
    std::vector<harness::SolveMeasurement> ms;
    harness::MeasureOptions opts;
    opts.num_threads = threads;
    for (size_t i = 0; i < dataset.size(); ++i) {
      ms.push_back(harness::measureSolver(dataset[i].name, dataset[i].lower,
                                          exec::SchedulerKind::kGrowLocal,
                                          opts, serial[i]));
    }
    table.addRow({std::to_string(threads),
                  Table::fmt(harness::geomeanSpeedup(ms)),
                  threads > 2 ? "oversubscribed (2 hw threads)" : ""});
  }
  table.print(std::cout);
  std::printf("\npaper (AMD, 64 cores): 4->2.63x, 16->4.15x, 32->5.34x, "
              "48->5.70x, 56->5.76x, 64->5.85x.\nReproduced claim: speed-up "
              "grows with cores until the parallelism (or the machine) runs "
              "out.\n");
  return 0;
}
