#include <gtest/gtest.h>

#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/bsplist.hpp"
#include "baselines/hdagg.hpp"
#include "baselines/spmp.hpp"
#include "baselines/wavefront.hpp"
#include "core/coarsen.hpp"
#include "core/growlocal.hpp"
#include "core/schedule.hpp"
#include "dag/dag.hpp"
#include "engine/request_queue.hpp"
#include "engine/solver_engine.hpp"
#include "exec/bsp.hpp"
#include "exec/serial.hpp"
#include "exec/solver.hpp"
#include "exec/verify.hpp"
#include "test_util.hpp"

/// \file test_elastic.cpp
/// The elasticity contract: schedules fold to any smaller team
/// (Schedule::foldTo) with validity preserved, folded solves are bitwise
/// equal to full-width solves for every scheduler kind and every team
/// size, mixed team sizes are safe concurrently on one solver (the lazy
/// folded-plan cache is exercised under TSan in CI), the analyze-time
/// thread-count clamp is surfaced and lossless, and the engine's elastic
/// policy shrinks teams exactly under deep backlog.

namespace sts {
namespace {

using core::Schedule;
using core::validateSchedule;
using dag::Dag;
using exec::SchedulerKind;
using exec::SolverOptions;
using exec::TriangularSolver;

using SchedulerFn = std::function<Schedule(const Dag&, int cores)>;

struct SchedulerCase {
  std::string name;
  SchedulerFn run;
};

std::vector<SchedulerCase> schedulerCases() {
  return {
      {"GrowLocal",
       [](const Dag& d, int cores) {
         return core::growLocalSchedule(d, {.num_cores = cores});
       }},
      {"FunnelGrowLocal",
       [](const Dag& d, int cores) {
         return core::funnelGrowLocalSchedule(d, {.num_cores = cores});
       }},
      {"Wavefront",
       [](const Dag& d, int cores) {
         return baselines::wavefrontSchedule(d, {.num_cores = cores});
       }},
      {"HDagg",
       [](const Dag& d, int cores) {
         baselines::HdaggOptions opts;
         opts.num_cores = cores;
         return baselines::hdaggSchedule(d, opts);
       }},
      {"SpMP",
       [](const Dag& d, int cores) {
         baselines::SpmpOptions opts;
         opts.num_cores = cores;
         return baselines::spmpSchedule(d, opts).schedule;
       }},
      {"BSPg",
       [](const Dag& d, int cores) {
         return baselines::bspListSchedule(d, {.num_cores = cores});
       }},
  };
}

TEST(ScheduleFold, PreservesValidityForEverySchedulerAndTeam) {
  const auto matrices = {datagen::bandedLower(300, 8, 0.5, 11),
                         datagen::erdosRenyiLower({.n = 400, .p = 8e-3,
                                                   .seed = 12}),
                         datagen::grid2dLaplacian5(12, 18).lowerTriangle()};
  for (const auto& lower : matrices) {
    const Dag d = Dag::fromLowerTriangular(lower);
    for (const auto& scheduler : schedulerCases()) {
      for (const int cores : {3, 4}) {
        const Schedule full = scheduler.run(d, cores);
        ASSERT_TRUE(validateSchedule(d, full).ok) << scheduler.name;
        for (int t = 1; t <= full.numCores(); ++t) {
          const Schedule folded = full.foldTo(t);
          EXPECT_EQ(folded.numCores(), t);
          EXPECT_EQ(folded.numSupersteps(), full.numSupersteps())
              << scheduler.name << " fold to " << t
              << " must preserve superstep structure";
          EXPECT_EQ(folded.numVertices(), full.numVertices());
          const auto validation = validateSchedule(d, folded);
          EXPECT_TRUE(validation.ok)
              << scheduler.name << " folded to " << t << " cores: "
              << validation.message;
          // Rank map is p -> p mod t.
          for (index_t v = 0; v < full.numVertices(); ++v) {
            ASSERT_EQ(folded.coreOf(v), full.coreOf(v) % t);
            ASSERT_EQ(folded.superstepOf(v), full.superstepOf(v));
          }
        }
      }
    }
  }
}

/// Pins the executor-side fold (elastic.hpp foldThreadLists) to
/// core::Schedule::foldTo: an executor constructed from the folded
/// schedule must agree bitwise with the full-width executor solving
/// elastically at the same team size.
TEST(ScheduleFold, ExecutorFoldMatchesScheduleFold) {
  const auto lower = datagen::erdosRenyiLower({.n = 400, .p = 8e-3,
                                               .seed = 71});
  const Dag d = Dag::fromLowerTriangular(lower);
  const Schedule full = core::growLocalSchedule(d, {.num_cores = 4});
  const exec::BspExecutor exec_full(lower, full);
  const auto x_true = exec::referenceSolution(lower.rows(), 72);
  const auto b = lower.multiply(x_true);
  const auto n = static_cast<size_t>(lower.rows());
  for (int t = 1; t <= full.numCores(); ++t) {
    const Schedule folded = full.foldTo(t);
    const exec::BspExecutor exec_folded(lower, folded);
    std::vector<double> x_elastic(n, 0.0);
    std::vector<double> x_refolded(n, 1.0);
    auto ctx = exec_full.createContext();
    exec_full.solve(b, x_elastic, *ctx, t);
    exec_folded.solve(b, x_refolded);
    EXPECT_EQ(x_elastic, x_refolded) << "team " << t;
  }
}

TEST(ScheduleFold, RejectsBadTargets) {
  const auto lower = datagen::bandedLower(100, 4, 0.5, 13);
  const Dag d = Dag::fromLowerTriangular(lower);
  const Schedule s = core::growLocalSchedule(d, {.num_cores = 4});
  EXPECT_THROW(s.foldTo(0), std::invalid_argument);
  EXPECT_THROW(s.foldTo(-1), std::invalid_argument);
  EXPECT_THROW(s.foldTo(5), std::invalid_argument);
  const Schedule same = s.foldTo(4);
  EXPECT_EQ(same.numCores(), 4);
}

/// The acceptance criterion: folded solves bitwise equal to full-width
/// solves for every scheduler kind and every t <= numThreads(), across
/// all three executor families (contiguous via reorder, plain BSP, P2P).
TEST(ElasticSolve, FoldedBitwiseEqualsFullWidthEveryKindEveryTeam) {
  struct KindCase {
    SchedulerKind kind;
    bool reorder;
  };
  const std::vector<KindCase> kinds = {
      {SchedulerKind::kGrowLocal, true},
      {SchedulerKind::kGrowLocal, false},
      {SchedulerKind::kFunnelGrowLocal, true},
      {SchedulerKind::kWavefront, false},
      {SchedulerKind::kHdagg, false},
      {SchedulerKind::kSpmp, false},
      {SchedulerKind::kBspList, false},
      {SchedulerKind::kSerial, false},
  };
  const auto lower = datagen::erdosRenyiLower({.n = 500, .p = 6e-3,
                                               .seed = 21});
  const auto x_true = exec::referenceSolution(lower.rows(), 22);
  const auto b = lower.multiply(x_true);
  const auto n = static_cast<size_t>(lower.rows());

  constexpr index_t kNrhs = 3;
  std::vector<double> b_multi(n * kNrhs);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < kNrhs; ++c) b_multi[i * kNrhs + c] = b[i] + static_cast<double>(c);
  }

  for (const auto& kc : kinds) {
    SolverOptions opts;
    opts.scheduler = kc.kind;
    opts.reorder = kc.reorder;
    opts.num_threads = 4;
    const auto solver = TriangularSolver::analyze(lower, opts);
    const int width = solver.numThreads();
    auto ctx = solver.createContext();

    std::vector<double> x_full(n, 0.0);
    solver.solve(b, x_full, *ctx, width);
    std::vector<double> x_multi_full(n * kNrhs, 0.0);
    solver.solveMultiRhs(b_multi, x_multi_full, kNrhs, *ctx, width);

    for (int t = 1; t <= width; ++t) {
      std::vector<double> x_t(n, 1e300);
      solver.solve(b, x_t, *ctx, t);
      EXPECT_EQ(x_t, x_full)
          << exec::schedulerKindName(kc.kind) << " reorder=" << kc.reorder
          << " team " << t << " not bitwise equal to full width";
      std::vector<double> x_multi_t(n * kNrhs, 1e300);
      solver.solveMultiRhs(b_multi, x_multi_t, kNrhs, *ctx, t);
      EXPECT_EQ(x_multi_t, x_multi_full)
          << exec::schedulerKindName(kc.kind) << " multiRhs team " << t;
    }
    // Teams above the width clamp losslessly; zero throws.
    std::vector<double> x_clamped(n, 0.0);
    solver.solve(b, x_clamped, *ctx, width + 7);
    EXPECT_EQ(x_clamped, x_full);
    EXPECT_THROW(solver.solve(b, x_clamped, *ctx, 0), std::invalid_argument);
  }
}

/// Mixed team sizes on one solver, concurrently, each solve on its own
/// context — the folded-plan caches are built lazily under contention.
/// Runs under TSan in CI ("Concurrent" filter).
TEST(ElasticSolve, ConcurrentMixedTeamSolves) {
  struct SolverCase {
    SchedulerKind kind;
    bool reorder;
  };
  const std::vector<SolverCase> cases = {
      {SchedulerKind::kGrowLocal, true},   // contiguous executor
      {SchedulerKind::kGrowLocal, false},  // plain BSP executor
      {SchedulerKind::kSpmp, false},       // P2P executor
  };
  const auto lower = datagen::bandedLower(250, 8, 0.5, 31);
  const auto x_true = exec::referenceSolution(lower.rows(), 32);
  const auto b = lower.multiply(x_true);
  const auto n = static_cast<size_t>(lower.rows());

  for (const auto& sc : cases) {
    SolverOptions opts;
    opts.scheduler = sc.kind;
    opts.reorder = sc.reorder;
    opts.num_threads = 4;
    const auto solver = TriangularSolver::analyze(lower, opts);
    const int width = solver.numThreads();

    std::vector<double> expected(n, 0.0);
    {
      auto ctx = solver.createContext();
      solver.solve(b, expected, *ctx, width);
    }

    constexpr int kThreads = 4;
    constexpr int kSolvesPerThread = 4;
    std::vector<int> failures(kThreads, 0);
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        const auto ctx = solver.createContext();
        std::vector<double> x(n, 0.0);
        for (int r = 0; r < kSolvesPerThread; ++r) {
          // Every thread cycles through all team sizes, so plan builds for
          // each size race on first use.
          const int team = 1 + (i + r) % width;
          solver.solve(b, x, *ctx, team);
          if (x != expected) ++failures[static_cast<size_t>(i)];
        }
      });
    }
    for (auto& th : threads) th.join();
    for (int i = 0; i < kThreads; ++i) {
      EXPECT_EQ(failures[static_cast<size_t>(i)], 0)
          << exec::schedulerKindName(sc.kind) << " reorder=" << sc.reorder
          << " thread " << i;
    }
  }
}

/// The lossless clamp: analyzing for far more threads than the host has
/// keeps the schedule at the requested width but caps the default team at
/// hardware_concurrency(), so default solves never oversubscribe — and the
/// folded execution still matches the serial reference bitwise.
TEST(ElasticSolve, OversubscribedAnalyzeClampsDefaultTeam) {
  const auto lower = datagen::bandedLower(200, 6, 0.5, 41);
  SolverOptions opts;
  opts.num_threads = 64;
  opts.reorder = false;
  const auto solver = TriangularSolver::analyze(lower, opts);
  EXPECT_EQ(solver.numThreads(), 64);
  EXPECT_EQ(solver.schedule().numCores(), 64);

  const auto hw = static_cast<int>(std::thread::hardware_concurrency());
  EXPECT_GE(solver.defaultTeam(), 1);
  if (hw > 0) {
    EXPECT_LE(solver.defaultTeam(), hw);
  }
  EXPECT_LE(solver.defaultTeam(), solver.numThreads());

  const auto x_true = exec::referenceSolution(lower.rows(), 42);
  const auto b = lower.multiply(x_true);
  std::vector<double> expected(b.size(), 0.0);
  exec::solveLowerSerial(lower, b, expected);
  std::vector<double> x(b.size(), 0.0);
  solver.solve(b, x);  // default team: clamped, folded, lossless
  EXPECT_EQ(x, expected);
}

std::shared_ptr<const TriangularSolver> analyzeWide(
    const sparse::CsrMatrix& lower, int width) {
  SolverOptions opts;
  opts.num_threads = width;
  opts.reorder = false;
  return std::make_shared<const TriangularSolver>(
      TriangularSolver::analyze(lower, opts));
}

TEST(ElasticEngine, FixedTeamServesBitwise) {
  const auto lower = datagen::bandedLower(300, 8, 0.5, 51);
  auto solver = analyzeWide(lower, 4);
  const auto x_true = exec::referenceSolution(lower.rows(), 52);
  const auto b = lower.multiply(x_true);
  std::vector<double> expected(b.size(), 0.0);
  {
    auto ctx = solver->createContext();
    solver->solve(b, expected, *ctx, solver->numThreads());
  }

  engine::EngineOptions options;
  options.num_workers = 2;
  options.team_size = 1;  // pinned shrunk team; folding keeps it bitwise
  engine::SolverEngine engine(options);
  const auto id = engine.registerSolver(solver);
  std::vector<std::future<std::vector<double>>> futures;
  for (int r = 0; r < 8; ++r) futures.push_back(engine.submit(id, b));
  for (auto& f : futures) EXPECT_EQ(f.get(), expected);
  engine.drain();

  const auto stats = engine.stats(id);
  EXPECT_DOUBLE_EQ(stats.mean_team_size, 1.0);
  EXPECT_EQ(stats.shrunk_batches, 0u);  // fixed team is the base itself
}

TEST(ElasticEngine, AdaptivePolicyShrinksUnderDeepBacklogOnly) {
  const auto lower = datagen::bandedLower(300, 8, 0.5, 61);
  auto solver = analyzeWide(lower, 4);
  const auto x_true = exec::referenceSolution(lower.rows(), 62);
  const auto b = lower.multiply(x_true);
  std::vector<double> expected(b.size(), 0.0);
  {
    auto ctx = solver->createContext();
    solver->solve(b, expected, *ctx, solver->numThreads());
  }

  engine::EngineOptions options;
  options.num_workers = 2;
  options.coalesce = false;  // one batch per request: many team decisions
  options.start_paused = true;
  options.elastic = true;
  options.team_size = 4;  // elastic base width (host-independent)
  options.elastic_deep_queue = 1;
  engine::SolverEngine engine(options);
  const auto id = engine.registerSolver(solver);

  constexpr int kRequests = 16;
  std::vector<std::future<std::vector<double>>> futures;
  for (int r = 0; r < kRequests; ++r) futures.push_back(engine.submit(id, b));
  engine.resume();
  for (auto& f : futures) EXPECT_EQ(f.get(), expected);
  engine.drain();

  const auto stats = engine.stats(id);
  EXPECT_EQ(stats.rhs_solved, static_cast<std::uint64_t>(kRequests));
  // A staged backlog of 16 guarantees deep-queue pops: at least the first
  // pop leaves 15 pending, so some batches must have run shrunk
  // (ceil(4 / 2 workers) = 2 < base 4).
  EXPECT_GT(stats.shrunk_batches, 0u);
  EXPECT_LT(stats.mean_team_size, 4.0);
  EXPECT_GE(stats.mean_team_size, 1.0);
}

TEST(ElasticEngine, MinTeamIsValidatedAndNeverWidensPastBase) {
  engine::EngineOptions bad;
  bad.elastic_min_team = 0;
  EXPECT_THROW(engine::SolverEngine{bad}, std::invalid_argument);

  const auto lower = datagen::bandedLower(200, 6, 0.5, 71);
  auto solver = analyzeWide(lower, 4);
  const auto x_true = exec::referenceSolution(lower.rows(), 72);
  const auto b = lower.multiply(x_true);
  std::vector<double> expected(b.size(), 0.0);
  {
    auto ctx = solver->createContext();
    solver->solve(b, expected, *ctx, solver->numThreads());
  }

  engine::EngineOptions options;
  options.num_workers = 2;
  options.coalesce = false;
  options.start_paused = true;
  options.elastic = true;
  options.team_size = 2;        // base width
  options.elastic_min_team = 8; // above the base: must cap, not widen
  options.elastic_deep_queue = 1;
  engine::SolverEngine engine(options);
  const auto id = engine.registerSolver(solver);
  std::vector<std::future<std::vector<double>>> futures;
  for (int r = 0; r < 8; ++r) futures.push_back(engine.submit(id, b));
  engine.resume();
  for (auto& f : futures) EXPECT_EQ(f.get(), expected);
  engine.drain();
  const auto stats = engine.stats(id);
  EXPECT_LE(stats.mean_team_size, 2.0);
  EXPECT_GE(stats.mean_team_size, 1.0);
}

engine::SolveRequest makeRequest(engine::SolverId solver, index_t nrhs) {
  engine::SolveRequest r;
  r.solver = solver;
  r.nrhs = nrhs;
  return r;
}

TEST(RequestQueueCompaction, CoalescesInOnePassPreservingFifo) {
  engine::RequestQueue queue;
  // A B A A B A — coalescing A must take the A's in order and leave B B A'
  // (budget 4 stops before the last A).
  for (const auto& [solver, nrhs] :
       std::vector<std::pair<engine::SolverId, index_t>>{
           {0, 1}, {1, 1}, {0, 1}, {0, 1}, {1, 1}, {0, 1}}) {
    queue.push(makeRequest(solver, nrhs));
  }
  std::size_t backlog = 99;
  auto batch = queue.popBatch(/*max_rhs=*/4, /*coalesce=*/true, &backlog);
  ASSERT_EQ(batch.size(), 4u);
  for (const auto& r : batch) EXPECT_EQ(r.solver, 0u);
  EXPECT_EQ(backlog, 2u);
  EXPECT_EQ(queue.size(), 2u);

  // Remaining: B B — pops as one coalesced batch.
  batch = queue.popBatch(4, true, &backlog);
  ASSERT_EQ(batch.size(), 2u);
  for (const auto& r : batch) EXPECT_EQ(r.solver, 1u);
  EXPECT_EQ(backlog, 0u);
}

TEST(RequestQueueCompaction, EarlyBudgetStopLeavesTailUntouched) {
  engine::RequestQueue queue;
  // A A A A: budget 2 takes the head plus one — the matching prefix means
  // the compaction pass stops early with the tail already in place.
  for (int i = 0; i < 4; ++i) queue.push(makeRequest(0, 1));
  auto batch = queue.popBatch(/*max_rhs=*/2, /*coalesce=*/true);
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(queue.size(), 2u);
  batch = queue.popBatch(/*max_rhs=*/8, /*coalesce=*/true);
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(RequestQueueCompaction, MultiRhsRequestsNeverCoalesce) {
  engine::RequestQueue queue;
  queue.push(makeRequest(0, 1));
  queue.push(makeRequest(0, 2));  // multi-RHS: must stay alone
  queue.push(makeRequest(0, 1));
  auto batch = queue.popBatch(8, true);
  ASSERT_EQ(batch.size(), 2u);  // the two nrhs==1 requests
  EXPECT_EQ(batch[0].nrhs, 1);
  EXPECT_EQ(batch[1].nrhs, 1);
  batch = queue.popBatch(8, true);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].nrhs, 2);
}

}  // namespace
}  // namespace sts
