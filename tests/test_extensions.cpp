#include <gtest/gtest.h>

#include <omp.h>

#include <thread>

#include "core/growlocal.hpp"
#include "core/schedule.hpp"
#include "dag/dag.hpp"
#include "datagen/random_matrices.hpp"
#include "exec/bsp.hpp"
#include "exec/serial.hpp"
#include "exec/solver.hpp"
#include "exec/spin_barrier.hpp"
#include "exec/verify.hpp"
#include "sparse/permute.hpp"
#include "test_util.hpp"

namespace sts {
namespace {

using core::Schedule;
using dag::Dag;
using dag::Edge;

TEST(CoalesceSupersteps, MergesSameCoreRuns) {
  // A chain scheduled as three consecutive supersteps on one core: all
  // barriers synchronize nothing and must fold into one superstep.
  const Dag d = Dag::fromEdges(3, std::vector<Edge>{{0, 1}, {1, 2}});
  const std::vector<int> core = {0, 0, 0};
  const std::vector<index_t> superstep = {0, 1, 2};
  const Schedule s = Schedule::fromAssignment(d, 2, core, superstep);
  const Schedule merged = core::coalesceSupersteps(d, s);
  EXPECT_EQ(merged.numSupersteps(), 1);
  EXPECT_TRUE(core::validateSchedule(d, merged).ok);
}

TEST(CoalesceSupersteps, KeepsNecessaryBarriers) {
  // Edge 0 -> 1 crosses cores: the barrier between supersteps must stay.
  const Dag d = Dag::fromEdges(2, std::vector<Edge>{{0, 1}});
  const std::vector<int> core = {0, 1};
  const std::vector<index_t> superstep = {0, 1};
  const Schedule s = Schedule::fromAssignment(d, 2, core, superstep);
  const Schedule merged = core::coalesceSupersteps(d, s);
  EXPECT_EQ(merged.numSupersteps(), 2);
}

TEST(CoalesceSupersteps, RespectsSkippingCrossEdges) {
  // Cross-core edge from superstep 0 to superstep 2: folding 0..2 into one
  // run would break it even though steps 0-1 and 1-2 are individually
  // mergeable. Vertices: 0 (s0, c0), 1 (s1, c0), 2 (s2, c1 child of 0).
  const Dag d = Dag::fromEdges(3, std::vector<Edge>{{0, 2}});
  const std::vector<int> core = {0, 0, 1};
  const std::vector<index_t> superstep = {0, 1, 2};
  const Schedule s = Schedule::fromAssignment(d, 2, core, superstep);
  const Schedule merged = core::coalesceSupersteps(d, s);
  EXPECT_TRUE(core::validateSchedule(d, merged).ok);
  // 0 and 2 must stay separated by a barrier.
  EXPECT_LT(merged.superstepOf(0), merged.superstepOf(2));
}

TEST(CoalesceSupersteps, PreservesValidityOnZoo) {
  for (const auto& [name, lower] : testutil::lowerTriangularZoo()) {
    const Dag d = Dag::fromLowerTriangular(lower);
    core::GrowLocalOptions opts;
    opts.num_cores = 2;
    opts.coalesce_supersteps = false;
    const Schedule raw = core::growLocalSchedule(d, opts);
    const Schedule merged = core::coalesceSupersteps(d, raw);
    const auto v = core::validateSchedule(d, merged);
    EXPECT_TRUE(v.ok) << name << ": " << v.message;
    EXPECT_LE(merged.numSupersteps(), raw.numSupersteps()) << name;
  }
}

TEST(SpinBarrier, SynchronizesCounters) {
  // Each thread increments a per-phase counter; after the barrier, every
  // thread must observe all increments of the phase.
  const int threads = 2;
  const int phases = 2000;
  exec::SpinBarrier barrier(threads);
  std::vector<int> counter(static_cast<size_t>(phases), 0);
  bool ok = true;
#pragma omp parallel num_threads(threads) reduction(&& : ok)
  {
    int sense = barrier.initialSense();
    for (int p = 0; p < phases; ++p) {
#pragma omp atomic
      ++counter[static_cast<size_t>(p)];
      barrier.wait(sense);
      int seen = 0;
#pragma omp atomic read
      seen = counter[static_cast<size_t>(p)];
      ok = ok && (seen == threads);
      barrier.wait(sense);
    }
  }
  EXPECT_TRUE(ok);
}

TEST(SpinBarrier, SingleThreadNoop) {
  exec::SpinBarrier barrier(1);
  int sense = barrier.initialSense();
  for (int i = 0; i < 10; ++i) barrier.wait(sense);
  SUCCEED();
}

TEST(SolvePermuted, ConsistentWithTransparentSolve) {
  const auto lower = datagen::erdosRenyiLower({.n = 700, .p = 4e-3, .seed = 61});
  exec::SolverOptions opts;
  opts.num_threads = 2;
  opts.reorder = true;
  auto solver = exec::TriangularSolver::analyze(lower, opts);
  ASSERT_TRUE(solver.isPermuted());

  const auto x_true = exec::referenceSolution(lower.rows(), 62);
  const auto b = lower.multiply(x_true);

  std::vector<double> x(b.size(), 0.0);
  solver.solve(b, x);

  const auto perm = solver.permutation();
  const auto b_perm = sparse::permuteVector(b, perm);
  std::vector<double> x_perm(b.size(), 0.0);
  solver.solvePermuted(b_perm, x_perm);
  const auto x_back = sparse::unpermuteVector(x_perm, perm);
  EXPECT_EQ(x, x_back);  // identical code path underneath
}

TEST(SolvePermuted, IdentityWhenNotPermuted) {
  const auto lower = datagen::bandedLower(300, 8, 0.5, 63);
  exec::SolverOptions opts;
  opts.num_threads = 2;
  opts.reorder = false;
  auto solver = exec::TriangularSolver::analyze(lower, opts);
  EXPECT_FALSE(solver.isPermuted());
  const auto x_true = exec::referenceSolution(lower.rows(), 64);
  const auto b = lower.multiply(x_true);
  std::vector<double> x1(b.size(), 0.0), x2(b.size(), 0.0);
  solver.solve(b, x1);
  solver.solvePermuted(b, x2);
  EXPECT_EQ(x1, x2);
}

TEST(MultiRhs, SerialMatchesSingleRhsColumns) {
  const auto lower = datagen::bandedLower(250, 6, 0.5, 65);
  const index_t n = lower.rows();
  const index_t nrhs = 4;
  // B columns = distinct reference solutions.
  std::vector<double> b(static_cast<size_t>(n) * nrhs);
  std::vector<std::vector<double>> b_cols(static_cast<size_t>(nrhs));
  for (index_t c = 0; c < nrhs; ++c) {
    const auto x_true = exec::referenceSolution(n, 100 + c);
    b_cols[static_cast<size_t>(c)] = lower.multiply(x_true);
    for (index_t i = 0; i < n; ++i) {
      b[static_cast<size_t>(i) * nrhs + c] =
          b_cols[static_cast<size_t>(c)][static_cast<size_t>(i)];
    }
  }
  std::vector<double> x(b.size(), 0.0);
  exec::solveLowerSerialMultiRhs(lower, b, x, nrhs);
  for (index_t c = 0; c < nrhs; ++c) {
    std::vector<double> x_single(static_cast<size_t>(n), 0.0);
    exec::solveLowerSerial(lower, b_cols[static_cast<size_t>(c)], x_single);
    for (index_t i = 0; i < n; ++i) {
      EXPECT_DOUBLE_EQ(x[static_cast<size_t>(i) * nrhs + c],
                       x_single[static_cast<size_t>(i)])
          << "rhs " << c << " row " << i;
    }
  }
}

TEST(MultiRhs, BspExecutorMatchesSerial) {
  for (const auto& [name, lower] : testutil::lowerTriangularZoo()) {
    const Dag d = Dag::fromLowerTriangular(lower);
    const Schedule s = core::growLocalSchedule(d, {.num_cores = 2});
    const exec::BspExecutor executor(lower, s);
    const index_t nrhs = 3;
    const auto n = static_cast<size_t>(lower.rows());
    std::vector<double> b(n * nrhs);
    for (size_t i = 0; i < b.size(); ++i) {
      b[i] = 0.1 + static_cast<double>(i % 17);
    }
    std::vector<double> x_serial(b.size(), 0.0), x_par(b.size(), 0.0);
    exec::solveLowerSerialMultiRhs(lower, b, x_serial, nrhs);
    executor.solveMultiRhs(b, x_par, nrhs);
    EXPECT_EQ(x_serial, x_par) << name;
  }
}

TEST(MultiRhs, RejectsBadArguments) {
  const auto lower = datagen::diagonalMatrix(10);
  std::vector<double> b(20, 1.0), x(20, 0.0);
  EXPECT_THROW(exec::solveLowerSerialMultiRhs(lower, b, x, 0),
               std::invalid_argument);
  EXPECT_THROW(exec::solveLowerSerialMultiRhs(lower, b, x, 3),
               std::invalid_argument);
}

}  // namespace
}  // namespace sts
