#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <tuple>

#include "baselines/bsplist.hpp"
#include "baselines/hdagg.hpp"
#include "baselines/spmp.hpp"
#include "baselines/wavefront.hpp"
#include "core/coarsen.hpp"
#include "core/growlocal.hpp"
#include "core/schedule.hpp"
#include "dag/dag.hpp"
#include "test_util.hpp"

/// Property sweep: every scheduler must produce a valid schedule (Def. 2.1
/// + in-group order + exact cover) on every matrix of the structural zoo,
/// for several core counts. This is the central safety net for the whole
/// scheduling stack.

namespace sts {
namespace {

using core::Schedule;
using core::validateSchedule;
using dag::Dag;

using SchedulerFn = std::function<Schedule(const Dag&, int cores)>;

struct SchedulerCase {
  std::string name;
  SchedulerFn run;
};

std::vector<SchedulerCase> schedulerCases() {
  return {
      {"GrowLocal",
       [](const Dag& d, int cores) {
         return core::growLocalSchedule(d, {.num_cores = cores});
       }},
      {"FunnelGrowLocal",
       [](const Dag& d, int cores) {
         return core::funnelGrowLocalSchedule(d, {.num_cores = cores});
       }},
      {"Wavefront",
       [](const Dag& d, int cores) {
         return baselines::wavefrontSchedule(d, {.num_cores = cores});
       }},
      {"HDagg",
       [](const Dag& d, int cores) {
         baselines::HdaggOptions opts;
         opts.num_cores = cores;
         return baselines::hdaggSchedule(d, opts);
       }},
      {"HDaggNoCoarsen",
       [](const Dag& d, int cores) {
         baselines::HdaggOptions opts;
         opts.num_cores = cores;
         opts.coarsen = false;
         return baselines::hdaggSchedule(d, opts);
       }},
      {"SpMP",
       [](const Dag& d, int cores) {
         baselines::SpmpOptions opts;
         opts.num_cores = cores;
         return baselines::spmpSchedule(d, opts).schedule;
       }},
      {"BSPg",
       [](const Dag& d, int cores) {
         return baselines::bspListSchedule(d, {.num_cores = cores});
       }},
  };
}

class SchedulerProperty
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, int>> {};

TEST_P(SchedulerProperty, ProducesValidSchedule) {
  const auto [scheduler_idx, matrix_idx, cores] = GetParam();
  const auto cases = schedulerCases();
  const auto zoo = testutil::lowerTriangularZoo();
  const auto& sched = cases[scheduler_idx];
  const auto& entry = zoo[matrix_idx];

  const Dag d = Dag::fromLowerTriangular(entry.lower);
  const Schedule s = sched.run(d, cores);
  EXPECT_EQ(s.numCores(), cores);
  const auto validation = validateSchedule(d, s);
  EXPECT_TRUE(validation.ok)
      << sched.name << " on " << entry.name << " with " << cores
      << " cores: " << validation.message;
  // Exact cover is part of validation; also check assignment totals.
  EXPECT_EQ(s.numVertices(), d.numVertices());
}

std::string propertyName(
    const ::testing::TestParamInfo<std::tuple<size_t, size_t, int>>& info) {
  const auto [scheduler_idx, matrix_idx, cores] = info.param;
  const auto cases = schedulerCases();
  const auto zoo = testutil::lowerTriangularZoo();
  std::string name = cases[scheduler_idx].name + "_" +
                     zoo[matrix_idx].name + "_c" + std::to_string(cores);
  for (auto& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulersAllMatrices, SchedulerProperty,
    ::testing::Combine(::testing::Range<size_t>(0, 7),
                       ::testing::Range<size_t>(0, 11),
                       ::testing::Values(1, 2, 4)),
    propertyName);

}  // namespace
}  // namespace sts
