#include <gtest/gtest.h>

#include "core/block.hpp"
#include "core/growlocal.hpp"
#include "core/reorder.hpp"
#include "dag/dag.hpp"
#include "dag/toposort.hpp"
#include "datagen/random_matrices.hpp"
#include "sparse/permute.hpp"
#include "test_util.hpp"

namespace sts::core {
namespace {

using dag::Dag;
using sparse::CsrMatrix;

TEST(Reorder, PermutationIsTopological) {
  for (const auto& [name, lower] : testutil::lowerTriangularZoo()) {
    const Dag d = Dag::fromLowerTriangular(lower);
    const Schedule s = growLocalSchedule(d, {.num_cores = 2});
    for (const auto order : {InGroupOrder::kById, InGroupOrder::kByExecution}) {
      const auto perm = schedulePermutation(s, order);
      EXPECT_TRUE(dag::isTopologicalOrder(d, perm)) << name;
    }
  }
}

TEST(Reorder, PermutedMatrixStaysLowerTriangular) {
  for (const auto& [name, lower] : testutil::lowerTriangularZoo()) {
    const Dag d = Dag::fromLowerTriangular(lower);
    const Schedule s = growLocalSchedule(d, {.num_cores = 2});
    const ReorderedProblem problem = reorderForLocality(lower, s);
    EXPECT_TRUE(problem.matrix.isLowerTriangular()) << name;
    EXPECT_EQ(problem.matrix.nnz(), lower.nnz()) << name;
    EXPECT_TRUE(sparse::isPermutation(problem.new_to_old)) << name;
  }
}

TEST(Reorder, GroupsBecomeContiguousRowRanges) {
  const auto lower = datagen::erdosRenyiLower({.n = 500, .p = 4e-3, .seed = 91});
  const Dag d = Dag::fromLowerTriangular(lower);
  const Schedule s = growLocalSchedule(d, {.num_cores = 2});
  const ReorderedProblem problem = reorderForLocality(lower, s);
  // Row i of the permuted matrix is old row new_to_old[i]; the rows of
  // group g must be exactly positions [group_ptr[g], group_ptr[g+1]).
  const auto inv = sparse::inversePermutation(problem.new_to_old);
  for (index_t ss = 0; ss < s.numSupersteps(); ++ss) {
    for (int p = 0; p < s.numCores(); ++p) {
      const size_t g = static_cast<size_t>(ss) * 2 + static_cast<size_t>(p);
      for (const index_t v : s.group(ss, p)) {
        const index_t pos = inv[static_cast<size_t>(v)];
        EXPECT_GE(pos, problem.group_ptr[g]);
        EXPECT_LT(pos, problem.group_ptr[g + 1]);
      }
    }
  }
}

TEST(Reorder, RejectsMismatchedDimensions) {
  const auto lower = datagen::diagonalMatrix(10);
  const Dag d = Dag::fromLowerTriangular(datagen::diagonalMatrix(5));
  const Schedule s = growLocalSchedule(d, {.num_cores = 2});
  EXPECT_THROW(reorderForLocality(lower, s), std::invalid_argument);
}

TEST(BlockSchedule, BoundariesCoverAndBalance) {
  const auto lower = datagen::erdosRenyiLower({.n = 1000, .p = 2e-3, .seed = 92});
  const Dag d = Dag::fromLowerTriangular(lower);
  const auto bounds = computeBlockBoundaries(d, 4);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_EQ(bounds.front(), 0);
  EXPECT_EQ(bounds.back(), d.numVertices());
  for (size_t i = 0; i + 1 < bounds.size(); ++i) {
    EXPECT_LE(bounds[i], bounds[i + 1]);
  }
  // Each block's weight should be within 2x of the ideal share.
  const auto total = d.totalWeight();
  for (size_t blk = 0; blk + 1 < bounds.size(); ++blk) {
    dag::weight_t w = 0;
    for (index_t v = bounds[blk]; v < bounds[blk + 1]; ++v) w += d.weight(v);
    EXPECT_LT(w, total / 2) << "block " << blk;
  }
}

TEST(BlockSchedule, ValidAcrossBlockCounts) {
  for (const auto& [name, lower] : testutil::lowerTriangularZoo()) {
    const Dag d = Dag::fromLowerTriangular(lower);
    for (const int blocks : {1, 2, 3, 8}) {
      BlockScheduleOptions opts;
      opts.num_blocks = blocks;
      opts.growlocal.num_cores = 2;
      const Schedule s = blockGrowLocalSchedule(d, opts);
      const auto v = validateSchedule(d, s);
      EXPECT_TRUE(v.ok) << name << " blocks=" << blocks << ": " << v.message;
    }
  }
}

TEST(BlockSchedule, OneBlockMatchesPlainGrowLocal) {
  const auto lower = datagen::bandedLower(800, 10, 0.5, 93);
  const Dag d = Dag::fromLowerTriangular(lower);
  BlockScheduleOptions opts;
  opts.num_blocks = 1;
  opts.growlocal.num_cores = 2;
  const Schedule blocked = blockGrowLocalSchedule(d, opts);
  const Schedule plain = growLocalSchedule(d, opts.growlocal);
  ASSERT_EQ(blocked.numSupersteps(), plain.numSupersteps());
  for (index_t v = 0; v < d.numVertices(); ++v) {
    EXPECT_EQ(blocked.coreOf(v), plain.coreOf(v));
    EXPECT_EQ(blocked.superstepOf(v), plain.superstepOf(v));
  }
}

TEST(BlockSchedule, MoreBlocksMoreSupersteps) {
  // Table 7.7: the superstep count grows with the number of blocks.
  const auto lower = datagen::erdosRenyiLower({.n = 3000, .p = 2e-3, .seed = 94});
  const Dag d = Dag::fromLowerTriangular(lower);
  BlockScheduleOptions one, many;
  one.num_blocks = 1;
  one.growlocal.num_cores = 2;
  many.num_blocks = 8;
  many.growlocal.num_cores = 2;
  const Schedule s1 = blockGrowLocalSchedule(d, one);
  const Schedule s8 = blockGrowLocalSchedule(d, many);
  EXPECT_GE(s8.numSupersteps(), s1.numSupersteps());
}

TEST(BlockSchedule, SequentialAndParallelSchedulingAgree) {
  const auto lower = datagen::erdosRenyiLower({.n = 1500, .p = 2e-3, .seed = 95});
  const Dag d = Dag::fromLowerTriangular(lower);
  BlockScheduleOptions seq, par;
  seq.num_blocks = par.num_blocks = 4;
  seq.parallel = false;
  par.parallel = true;
  seq.growlocal.num_cores = par.growlocal.num_cores = 2;
  const Schedule a = blockGrowLocalSchedule(d, seq);
  const Schedule b = blockGrowLocalSchedule(d, par);
  ASSERT_EQ(a.numSupersteps(), b.numSupersteps());
  for (index_t v = 0; v < d.numVertices(); ++v) {
    EXPECT_EQ(a.coreOf(v), b.coreOf(v));
    EXPECT_EQ(a.superstepOf(v), b.superstepOf(v));
  }
}

TEST(BlockSchedule, RejectsBadBlockCount) {
  const Dag d = Dag::fromLowerTriangular(datagen::diagonalMatrix(10));
  EXPECT_THROW(computeBlockBoundaries(d, 0), std::invalid_argument);
}

}  // namespace
}  // namespace sts::core
