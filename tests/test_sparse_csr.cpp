#include "sparse/csr.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sts::sparse {
namespace {

TEST(CsrMatrix, EmptyMatrix) {
  const CsrMatrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_EQ(m.nnz(), 0);
}

TEST(CsrMatrix, FromTripletsBasic) {
  const std::vector<Triplet> t = {
      {0, 0, 1.0}, {1, 0, 2.0}, {1, 1, 3.0}, {2, 2, 4.0}};
  const CsrMatrix m = CsrMatrix::fromTriplets(3, 3, t);
  EXPECT_EQ(m.nnz(), 4);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(m.at(2, 2), 4.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 0.0);
  EXPECT_TRUE(m.hasEntry(1, 0));
  EXPECT_FALSE(m.hasEntry(0, 1));
}

TEST(CsrMatrix, FromTripletsUnsortedInput) {
  const std::vector<Triplet> t = {
      {2, 1, 5.0}, {0, 0, 1.0}, {2, 0, 4.0}, {1, 1, 2.0}};
  const CsrMatrix m = CsrMatrix::fromTriplets(3, 3, t);
  const auto cols = m.rowCols(2);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], 0);
  EXPECT_EQ(cols[1], 1);
  EXPECT_DOUBLE_EQ(m.at(2, 0), 4.0);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 5.0);
}

TEST(CsrMatrix, FromTripletsMergesDuplicates) {
  const std::vector<Triplet> t = {{0, 0, 1.0}, {0, 0, 2.5}, {1, 0, -1.0},
                                  {1, 0, 1.0}};
  const CsrMatrix m = CsrMatrix::fromTriplets(2, 2, t);
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 0.0);  // stored explicit zero
  EXPECT_TRUE(m.hasEntry(1, 0));
}

TEST(CsrMatrix, FromTripletsRejectsOutOfRange) {
  const std::vector<Triplet> t = {{0, 3, 1.0}};
  EXPECT_THROW(CsrMatrix::fromTriplets(2, 2, t), std::invalid_argument);
  const std::vector<Triplet> t2 = {{-1, 0, 1.0}};
  EXPECT_THROW(CsrMatrix::fromTriplets(2, 2, t2), std::invalid_argument);
}

TEST(CsrMatrix, Identity) {
  const CsrMatrix id = CsrMatrix::identity(4);
  EXPECT_EQ(id.nnz(), 4);
  for (index_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(id.at(i, i), 1.0);
  EXPECT_TRUE(id.isLowerTriangular());
  EXPECT_TRUE(id.isUpperTriangular());
  EXPECT_TRUE(id.hasFullDiagonal());
}

TEST(CsrMatrix, TransposeRoundTrip) {
  const std::vector<Triplet> t = {
      {0, 0, 1.0}, {1, 0, 2.0}, {2, 1, 3.0}, {2, 2, 4.0}, {0, 2, 5.0}};
  const CsrMatrix m = CsrMatrix::fromTriplets(3, 3, t);
  const CsrMatrix mt = m.transposed();
  EXPECT_DOUBLE_EQ(mt.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(mt.at(2, 0), 5.0);
  EXPECT_TRUE(m.transposed().transposed().structureEquals(m));
  EXPECT_TRUE(m.transposed().transposed().almostEquals(m, 0.0));
}

TEST(CsrMatrix, TransposeRectangular) {
  const std::vector<Triplet> t = {{0, 3, 1.0}, {1, 1, 2.0}};
  const CsrMatrix m = CsrMatrix::fromTriplets(2, 4, t);
  const CsrMatrix mt = m.transposed();
  EXPECT_EQ(mt.rows(), 4);
  EXPECT_EQ(mt.cols(), 2);
  EXPECT_DOUBLE_EQ(mt.at(3, 0), 1.0);
}

TEST(CsrMatrix, TriangleExtraction) {
  const std::vector<Triplet> t = {{0, 0, 1.0}, {0, 1, 2.0}, {1, 0, 3.0},
                                  {1, 1, 4.0}};
  const CsrMatrix m = CsrMatrix::fromTriplets(2, 2, t);
  const CsrMatrix lo = m.lowerTriangle();
  EXPECT_EQ(lo.nnz(), 3);
  EXPECT_TRUE(lo.isLowerTriangular());
  const CsrMatrix lo_strict = m.lowerTriangle(false);
  EXPECT_EQ(lo_strict.nnz(), 1);
  const CsrMatrix up = m.upperTriangle();
  EXPECT_EQ(up.nnz(), 3);
  EXPECT_TRUE(up.isUpperTriangular());
}

TEST(CsrMatrix, DiagonalExtraction) {
  const std::vector<Triplet> t = {{0, 0, 2.0}, {1, 0, 1.0}, {2, 2, -3.0}};
  const CsrMatrix m = CsrMatrix::fromTriplets(3, 3, t);
  const auto d = m.diagonal();
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[1], 0.0);
  EXPECT_DOUBLE_EQ(d[2], -3.0);
  EXPECT_FALSE(m.hasFullDiagonal());
}

TEST(CsrMatrix, SymmetricPermutation) {
  // A = [[1, 0, 0], [2, 3, 0], [0, 4, 5]]; permute with new_to_old=[2,0,1].
  const std::vector<Triplet> t = {
      {0, 0, 1.0}, {1, 0, 2.0}, {1, 1, 3.0}, {2, 1, 4.0}, {2, 2, 5.0}};
  const CsrMatrix m = CsrMatrix::fromTriplets(3, 3, t);
  const std::vector<index_t> perm = {2, 0, 1};
  const CsrMatrix p = m.symmetricPermuted(perm);
  // B[i][j] = A[perm[i]][perm[j]].
  for (index_t i = 0; i < 3; ++i) {
    for (index_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(p.at(i, j),
                       m.at(perm[static_cast<size_t>(i)],
                            perm[static_cast<size_t>(j)]))
          << "mismatch at (" << i << "," << j << ")";
    }
  }
}

TEST(CsrMatrix, SymmetricPermutationIdentityIsNoop) {
  const std::vector<Triplet> t = {{0, 0, 1.0}, {1, 0, 2.0}, {1, 1, 3.0}};
  const CsrMatrix m = CsrMatrix::fromTriplets(2, 2, t);
  const std::vector<index_t> id = {0, 1};
  EXPECT_TRUE(m.symmetricPermuted(id).almostEquals(m, 0.0));
}

TEST(CsrMatrix, SymmetricPermutationRejectsBadInput) {
  const CsrMatrix m = CsrMatrix::identity(3);
  const std::vector<index_t> bad = {0, 0, 1};
  EXPECT_THROW(m.symmetricPermuted(bad), std::invalid_argument);
  const std::vector<index_t> short_perm = {0, 1};
  EXPECT_THROW(m.symmetricPermuted(short_perm), std::invalid_argument);
}

TEST(CsrMatrix, Multiply) {
  const std::vector<Triplet> t = {
      {0, 0, 1.0}, {1, 0, 2.0}, {1, 1, 3.0}, {2, 1, 4.0}};
  const CsrMatrix m = CsrMatrix::fromTriplets(3, 3, t);
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const auto y = m.multiply(x);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 8.0);
  EXPECT_DOUBLE_EQ(y[2], 8.0);
}

TEST(CsrMatrix, ConstructorRejectsMalformed) {
  EXPECT_THROW(CsrMatrix(2, 2, {0, 1}, {0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(CsrMatrix(1, 1, {0, 2}, {0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(CsrMatrix(2, 2, {0, 2, 1}, {0, 1}, {1.0, 1.0}),
               std::invalid_argument);  // non-monotone rowPtr
  // Duplicate column in a row is caught by validate().
  EXPECT_THROW(CsrMatrix(1, 3, {0, 2}, {1, 1}, {1.0, 2.0}), std::logic_error);
}

TEST(CsrMatrix, ConstructorSortsRows) {
  const CsrMatrix m(1, 3, {0, 2}, {2, 0}, {5.0, 1.0});
  const auto cols = m.rowCols(0);
  EXPECT_EQ(cols[0], 0);
  EXPECT_EQ(cols[1], 2);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 5.0);
}

TEST(CsrMatrix, RowAccessors) {
  const std::vector<Triplet> t = {{0, 0, 1.0}, {2, 0, 2.0}, {2, 1, 3.0}};
  const CsrMatrix m = CsrMatrix::fromTriplets(3, 2, t);
  EXPECT_EQ(m.rowNnz(0), 1);
  EXPECT_EQ(m.rowNnz(1), 0);
  EXPECT_EQ(m.rowNnz(2), 2);
  EXPECT_TRUE(m.rowCols(1).empty());
}

}  // namespace
}  // namespace sts::sparse
