#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "baselines/bsplist.hpp"
#include "baselines/hdagg.hpp"
#include "baselines/spmp.hpp"
#include "baselines/wavefront.hpp"
#include "core/growlocal.hpp"
#include "core/schedule.hpp"
#include "dag/dag.hpp"
#include "engine/core_budget.hpp"
#include "engine/solver_engine.hpp"
#include "exec/solver.hpp"
#include "exec/verify.hpp"
#include "test_util.hpp"

/// \file test_fold_policies.cpp
/// The work-aware elasticity refactor: kBinPack folds are valid schedules
/// and bitwise-lossless for every scheduler kind and team size; their
/// makespan never exceeds the kModulo fold's (and strictly beats it on the
/// imbalanced stand-ins); the CoreBudget arbiter bounds aggregate granted
/// teams across concurrent batches (run under TSan in CI); the SLO
/// controller shrinks under slack and holds the base under violation; the
/// adaptive coalescing cap expands batches only under a deep queue.

namespace sts {
namespace {

using core::FoldPolicy;
using core::Schedule;
using core::validateSchedule;
using dag::Dag;
using exec::SchedulerKind;
using exec::SolverOptions;
using exec::TriangularSolver;

TEST(FoldRankMap, ModuloMapAndValidation) {
  const auto map = core::foldRankMap(3, 7, 3, FoldPolicy::kModulo);
  ASSERT_EQ(map.size(), 7u);
  for (int p = 0; p < 7; ++p) EXPECT_EQ(map[static_cast<size_t>(p)], p % 3);

  EXPECT_THROW(core::foldRankMap(3, 7, 0, FoldPolicy::kModulo),
               std::invalid_argument);
  EXPECT_THROW(core::foldRankMap(3, 7, 8, FoldPolicy::kModulo),
               std::invalid_argument);
  // kBinPack needs the load table (except for the identity fold).
  EXPECT_THROW(core::foldRankMap(3, 7, 3, FoldPolicy::kBinPack),
               std::invalid_argument);
  const auto identity = core::foldRankMap(3, 7, 7, FoldPolicy::kBinPack);
  for (int p = 0; p < 7; ++p) {
    EXPECT_EQ(identity[static_cast<size_t>(p)], p);
  }
}

TEST(FoldRankMap, BinPackNeverWorseThanModuloOnRandomLoads) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const int width = 2 + static_cast<int>(rng() % 15);
    const index_t steps = 1 + static_cast<index_t>(rng() % 30);
    std::vector<dag::weight_t> loads(static_cast<size_t>(steps) *
                                     static_cast<size_t>(width));
    // Heavy-tailed loads: squaring a uniform draw makes a few ranks
    // dominate, the regime where modulo folds collide heavy ranks.
    for (auto& load : loads) {
      const auto u = static_cast<dag::weight_t>(rng() % 100);
      load = u * u;
    }
    for (int target = 1; target <= width; ++target) {
      const auto mod =
          core::foldRankMap(steps, width, target, FoldPolicy::kModulo);
      const auto pack =
          core::foldRankMap(steps, width, target, FoldPolicy::kBinPack,
                            loads);
      // Valid slot assignment.
      for (const int q : pack) {
        ASSERT_GE(q, 0);
        ASSERT_LT(q, target);
      }
      EXPECT_LE(core::foldedMakespan(loads, steps, width, target, pack),
                core::foldedMakespan(loads, steps, width, target, mod))
          << "width " << width << " target " << target;
    }
  }
}

TEST(FoldRankMap, RankLoadsMatchGroupWeights) {
  const auto lower = datagen::bandedLower(300, 8, 0.5, 11);
  const Dag d = Dag::fromLowerTriangular(lower);
  const Schedule s = core::growLocalSchedule(d, {.num_cores = 4});
  const auto loads = s.rankLoads(d.weights());
  ASSERT_EQ(loads.size(), static_cast<size_t>(s.numSupersteps()) * 4u);
  for (index_t step = 0; step < s.numSupersteps(); ++step) {
    for (int p = 0; p < 4; ++p) {
      dag::weight_t expected = 0;
      for (const index_t v : s.group(step, p)) expected += d.weight(v);
      EXPECT_EQ(loads[static_cast<size_t>(step) * 4u +
                      static_cast<size_t>(p)],
                expected);
    }
  }
  // Unit weights count group sizes.
  const auto unit = s.rankLoads();
  for (index_t step = 0; step < s.numSupersteps(); ++step) {
    for (int p = 0; p < 4; ++p) {
      EXPECT_EQ(unit[static_cast<size_t>(step) * 4u + static_cast<size_t>(p)],
                static_cast<dag::weight_t>(s.group(step, p).size()));
    }
  }
}

using SchedulerFn = std::function<Schedule(const Dag&, int cores)>;

struct SchedulerCase {
  std::string name;
  SchedulerFn run;
};

std::vector<SchedulerCase> schedulerCases() {
  return {
      {"GrowLocal",
       [](const Dag& d, int cores) {
         return core::growLocalSchedule(d, {.num_cores = cores});
       }},
      {"Wavefront",
       [](const Dag& d, int cores) {
         return baselines::wavefrontSchedule(d, {.num_cores = cores});
       }},
      {"HDagg",
       [](const Dag& d, int cores) {
         baselines::HdaggOptions opts;
         opts.num_cores = cores;
         return baselines::hdaggSchedule(d, opts);
       }},
      {"SpMP",
       [](const Dag& d, int cores) {
         baselines::SpmpOptions opts;
         opts.num_cores = cores;
         return baselines::spmpSchedule(d, opts).schedule;
       }},
      {"BSPg",
       [](const Dag& d, int cores) {
         return baselines::bspListSchedule(d, {.num_cores = cores});
       }},
  };
}

TEST(BinPackFold, ValidAndNeverWorseForEverySchedulerAndTeam) {
  const auto matrices = {datagen::bandedLower(300, 8, 0.5, 11),
                         datagen::narrowBandLower(
                             {.n = 500, .p = 0.14, .b = 10.0, .seed = 13})};
  for (const auto& lower : matrices) {
    const Dag d = Dag::fromLowerTriangular(lower);
    for (const auto& scheduler : schedulerCases()) {
      const Schedule full = scheduler.run(d, 4);
      ASSERT_TRUE(validateSchedule(d, full).ok) << scheduler.name;
      const auto loads = full.rankLoads(d.weights());
      for (int t = 1; t <= full.numCores(); ++t) {
        const Schedule folded =
            full.foldTo(t, FoldPolicy::kBinPack, d.weights());
        EXPECT_EQ(folded.numCores(), t);
        EXPECT_EQ(folded.numSupersteps(), full.numSupersteps())
            << scheduler.name << " binpack fold to " << t
            << " must preserve superstep structure";
        const auto validation = validateSchedule(d, folded);
        EXPECT_TRUE(validation.ok)
            << scheduler.name << " binpack folded to " << t << ": "
            << validation.message;
        // Whole-rank granularity: two vertices of one original rank stay
        // together, and the folded makespan never exceeds modulo's.
        const auto folded_loads = folded.rankLoads(d.weights());
        dag::weight_t folded_makespan = 0;
        for (index_t s = 0; s < folded.numSupersteps(); ++s) {
          dag::weight_t max_load = 0;
          for (int q = 0; q < t; ++q) {
            max_load = std::max(
                max_load, folded_loads[static_cast<size_t>(s) *
                                           static_cast<size_t>(t) +
                                       static_cast<size_t>(q)]);
          }
          folded_makespan += max_load;
        }
        const auto mod = core::foldRankMap(full.numSupersteps(),
                                           full.numCores(), t,
                                           FoldPolicy::kModulo);
        EXPECT_LE(folded_makespan,
                  core::foldedMakespan(loads, full.numSupersteps(),
                                       full.numCores(), t, mod))
            << scheduler.name << " team " << t;
      }
    }
  }
}

/// The acceptance criterion: on the imbalance-prone §6.2 stand-ins the
/// bin-pack fold's per-superstep max/mean imbalance is at most modulo's
/// for every scheduler kind and target width.
TEST(BinPackFold, ImbalanceAtMostModuloOnImbalancedStandins) {
  const std::vector<std::pair<std::string, sparse::CsrMatrix>> standins = {
      {"narrow-band", datagen::narrowBandLower(
                          {.n = 2000, .p = 0.14, .b = 10.0, .seed = 21})},
      {"erdos-renyi",
       datagen::erdosRenyiLower({.n = 2000, .p = 5e-3, .seed = 22})}};
  for (const auto& [name, lower] : standins) {
    const Dag d = Dag::fromLowerTriangular(lower);
    for (const auto& scheduler : schedulerCases()) {
      const Schedule full = scheduler.run(d, 8);
      const auto loads = full.rankLoads(d.weights());
      for (const int t : {2, 3, 4, 6}) {
        const auto mod = core::foldRankMap(full.numSupersteps(),
                                           full.numCores(), t,
                                           FoldPolicy::kModulo);
        const auto pack =
            core::foldRankMap(full.numSupersteps(), full.numCores(), t,
                              FoldPolicy::kBinPack, loads);
        EXPECT_LE(core::foldedImbalance(loads, full.numSupersteps(),
                                        full.numCores(), t, pack),
                  core::foldedImbalance(loads, full.numSupersteps(),
                                        full.numCores(), t, mod))
            << name << " " << scheduler.name << " team " << t;
      }
    }
  }
}

/// Bitwise losslessness of the bin-pack fold across all three executor
/// families, every scheduler kind, and every team size — both through the
/// explicit-policy overloads and through a solver analyzed with
/// fold_policy = kBinPack.
TEST(BinPackFold, ElasticSolveBitwiseEqualsFullWidthEveryKindEveryTeam) {
  struct KindCase {
    SchedulerKind kind;
    bool reorder;
  };
  const std::vector<KindCase> kinds = {
      {SchedulerKind::kGrowLocal, true},
      {SchedulerKind::kGrowLocal, false},
      {SchedulerKind::kFunnelGrowLocal, true},
      {SchedulerKind::kWavefront, false},
      {SchedulerKind::kHdagg, false},
      {SchedulerKind::kSpmp, false},
      {SchedulerKind::kBspList, false},
      {SchedulerKind::kSerial, false},
  };
  const auto lower = datagen::erdosRenyiLower({.n = 500, .p = 6e-3,
                                               .seed = 31});
  const auto x_true = exec::referenceSolution(lower.rows(), 32);
  const auto b = lower.multiply(x_true);
  const auto n = static_cast<size_t>(lower.rows());

  constexpr index_t kNrhs = 3;
  std::vector<double> b_multi(n * kNrhs);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < kNrhs; ++c) {
      b_multi[i * kNrhs + c] = b[i] + static_cast<double>(c);
    }
  }

  for (const auto& kc : kinds) {
    SolverOptions opts;
    opts.scheduler = kc.kind;
    opts.reorder = kc.reorder;
    opts.num_threads = 4;
    opts.fold_policy = FoldPolicy::kBinPack;  // the default-path policy
    const auto solver = TriangularSolver::analyze(lower, opts);
    const int width = solver.numThreads();
    auto ctx = solver.createContext();

    std::vector<double> x_full(n, 0.0);
    solver.solve(b, x_full, *ctx, width);
    std::vector<double> x_multi_full(n * kNrhs, 0.0);
    solver.solveMultiRhs(b_multi, x_multi_full, kNrhs, *ctx, width);

    for (int t = 1; t <= width; ++t) {
      for (const FoldPolicy policy :
           {FoldPolicy::kModulo, FoldPolicy::kBinPack}) {
        std::vector<double> x_t(n, 1e300);
        solver.solve(b, x_t, *ctx, t, policy);
        EXPECT_EQ(x_t, x_full)
            << exec::schedulerKindName(kc.kind) << " reorder=" << kc.reorder
            << " team " << t << " policy "
            << core::foldPolicyName(policy);
        std::vector<double> x_multi_t(n * kNrhs, 1e300);
        solver.solveMultiRhs(b_multi, x_multi_t, kNrhs, *ctx, t, policy);
        EXPECT_EQ(x_multi_t, x_multi_full)
            << exec::schedulerKindName(kc.kind) << " multiRhs team " << t
            << " policy " << core::foldPolicyName(policy);
      }
      // The solver-default path (options().fold_policy == kBinPack).
      std::vector<double> x_default(n, 1e300);
      solver.solve(b, x_default, *ctx, t);
      EXPECT_EQ(x_default, x_full)
          << exec::schedulerKindName(kc.kind) << " default-policy team "
          << t;
    }
  }
}

/// Fold-to-self shares the payload instead of deep-copying the arrays —
/// the PR 2 foldTo(numCores()) fix.
TEST(BinPackFold, FoldToSelfSharesPayload) {
  const auto lower = datagen::bandedLower(200, 6, 0.5, 41);
  const Dag d = Dag::fromLowerTriangular(lower);
  const Schedule s = core::growLocalSchedule(d, {.num_cores = 4});
  const Schedule same = s.foldTo(4);
  EXPECT_EQ(same.executionOrder().data(), s.executionOrder().data())
      << "fold to numCores() must alias the original payload";
  const Schedule same_packed = s.foldTo(4, FoldPolicy::kBinPack, d.weights());
  EXPECT_EQ(same_packed.executionOrder().data(), s.executionOrder().data());
  const Schedule copy = s;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(copy.cores().data(), s.cores().data());
}

// ---------------------------------------------------------------- budget --

TEST(CoreBudget, ValidatesAndTracksPeak) {
  engine::CoreBudget budget(4);
  EXPECT_TRUE(budget.limited());
  EXPECT_FALSE(budget.hasCoreSet());
  EXPECT_THROW(budget.acquire(0), std::invalid_argument);
  EXPECT_THROW(budget.acquire(2, 0), std::invalid_argument);
  auto a = budget.acquire(3);
  EXPECT_EQ(a.count, 3);
  EXPECT_TRUE(a.ids.empty());  // counting mode: anonymous grants
  // Partial grant: only 1 of 4 is free.
  auto partial = budget.acquire(3);
  EXPECT_EQ(partial.count, 1);
  EXPECT_EQ(budget.inUse(), 4);
  EXPECT_EQ(budget.peakInUse(), 4);
  EXPECT_EQ(budget.throttledAcquires(), 1u);
  budget.release(std::move(a));
  budget.release(std::move(partial));
  EXPECT_EQ(budget.inUse(), 0);
  EXPECT_EQ(budget.peakInUse(), 4);

  engine::CoreBudget unlimited(0);
  EXPECT_FALSE(unlimited.limited());
  EXPECT_EQ(unlimited.acquire(64).count, 64);
  EXPECT_EQ(unlimited.inUse(), 0);
}

TEST(CoreBudget, MinNeededBlocksUntilAvailable) {
  engine::CoreBudget budget(4);
  auto held = budget.acquire(3);
  ASSERT_EQ(held.count, 3);
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    // min_needed 2 > 1 free: must block until the release below.
    auto got = budget.acquire(2, 2);
    granted.store(true);
    budget.release(std::move(got));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(granted.load());
  budget.release(std::move(held));
  waiter.join();
  EXPECT_TRUE(granted.load());
  EXPECT_EQ(budget.inUse(), 0);
}

/// The oversubscription invariant under contention: aggregate outstanding
/// grants never exceed the budget at any instant, checked from the outside
/// with an independent counter. Runs under TSan in CI.
TEST(CoreBudget, ConcurrentGrantsNeverExceedTotal) {
  constexpr int kTotal = 3;
  constexpr int kThreads = 8;
  constexpr int kIterations = 200;
  engine::CoreBudget budget(kTotal);
  std::atomic<int> outstanding{0};
  std::atomic<int> violations{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      std::mt19937 rng(static_cast<unsigned>(i));
      for (int it = 0; it < kIterations; ++it) {
        const int desired = 1 + static_cast<int>(rng() % 4);
        engine::CoreBudget::Lease lease(budget, desired, 1);
        const int now =
            outstanding.fetch_add(lease.granted()) + lease.granted();
        if (now > kTotal) violations.fetch_add(1);
        outstanding.fetch_sub(lease.granted());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(budget.inUse(), 0);
  EXPECT_LE(budget.peakInUse(), kTotal);
}

std::shared_ptr<const TriangularSolver> analyzeWide(
    const sparse::CsrMatrix& lower, int width) {
  SolverOptions opts;
  opts.num_threads = width;
  opts.reorder = false;
  return std::make_shared<const TriangularSolver>(
      TriangularSolver::analyze(lower, opts));
}

/// Concurrent engine batches lease their teams from the shared budget:
/// results stay bitwise, the peak never exceeds the budget, and a budget
/// below workers * base provably throttles. Runs under TSan in CI.
TEST(CoreBudgetEngine, ConcurrentBatchesRespectBudget) {
  const auto lower = datagen::bandedLower(300, 8, 0.5, 51);
  auto solver = analyzeWide(lower, 4);
  const auto x_true = exec::referenceSolution(lower.rows(), 52);
  const auto b = lower.multiply(x_true);
  std::vector<double> expected(b.size(), 0.0);
  {
    auto ctx = solver->createContext();
    solver->solve(b, expected, *ctx, solver->numThreads());
  }

  engine::EngineOptions options;
  options.num_workers = 4;
  options.coalesce = false;   // one batch per request: maximal contention
  options.start_paused = true;
  options.team_size = 4;      // every batch desires the full width
  options.core_budget = 6;    // < workers * base: grants must throttle
  engine::SolverEngine engine(options);
  const auto id = engine.registerSolver(solver);

  constexpr int kRequests = 32;
  std::vector<std::future<std::vector<double>>> futures;
  for (int r = 0; r < kRequests; ++r) futures.push_back(engine.submit(id, b));
  engine.resume();
  for (auto& f : futures) EXPECT_EQ(f.get(), expected);
  engine.drain();

  EXPECT_LE(engine.coreBudget().peakInUse(), 6);
  EXPECT_EQ(engine.coreBudget().inUse(), 0);
  const auto stats = engine.stats(id);
  EXPECT_EQ(stats.rhs_solved, static_cast<std::uint64_t>(kRequests));
  // 4 workers wanting 4 cores each against a budget of 6 cannot all get
  // full grants while batches overlap; the staged backlog guarantees
  // overlap, so some batch must have been throttled.
  EXPECT_GT(stats.budget_throttled_batches, 0u);
  EXPECT_LT(stats.mean_team_size, 4.0);
}

// ------------------------------------------------------- SLO controller --

TEST(SloElastic, UnreachableTargetHoldsBaseWidth) {
  const auto lower = datagen::bandedLower(300, 8, 0.5, 61);
  auto solver = analyzeWide(lower, 4);
  const auto x_true = exec::referenceSolution(lower.rows(), 62);
  const auto b = lower.multiply(x_true);
  std::vector<double> expected(b.size(), 0.0);
  {
    auto ctx = solver->createContext();
    solver->solve(b, expected, *ctx, solver->numThreads());
  }

  engine::EngineOptions options;
  options.num_workers = 2;
  options.coalesce = false;
  options.start_paused = true;
  options.elastic = true;
  options.team_size = 4;
  options.elastic_deep_queue = 1;
  options.target_p95 = 1e-12;  // always violating: never shrink
  engine::SolverEngine engine(options);
  const auto id = engine.registerSolver(solver);
  std::vector<std::future<std::vector<double>>> futures;
  for (int r = 0; r < 16; ++r) futures.push_back(engine.submit(id, b));
  engine.resume();
  for (auto& f : futures) EXPECT_EQ(f.get(), expected);
  engine.drain();

  const auto stats = engine.stats(id);
  EXPECT_EQ(stats.shrunk_batches, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_team_size, 4.0);
}

TEST(SloElastic, SlackTargetShrinksUnderBacklog) {
  const auto lower = datagen::bandedLower(300, 8, 0.5, 71);
  auto solver = analyzeWide(lower, 4);
  const auto x_true = exec::referenceSolution(lower.rows(), 72);
  const auto b = lower.multiply(x_true);
  std::vector<double> expected(b.size(), 0.0);
  {
    auto ctx = solver->createContext();
    solver->solve(b, expected, *ctx, solver->numThreads());
  }

  engine::EngineOptions options;
  options.num_workers = 2;
  options.coalesce = false;  // one batch per request: many controller steps
  options.start_paused = true;
  options.elastic = true;
  options.team_size = 4;
  options.elastic_deep_queue = 1;
  options.target_p95 = 3600.0;  // always under target: shrink when deep
  engine::SolverEngine engine(options);
  const auto id = engine.registerSolver(solver);

  constexpr int kRequests = 24;
  std::vector<std::future<std::vector<double>>> futures;
  for (int r = 0; r < kRequests; ++r) futures.push_back(engine.submit(id, b));
  engine.resume();
  for (auto& f : futures) EXPECT_EQ(f.get(), expected);
  engine.drain();

  const auto stats = engine.stats(id);
  EXPECT_EQ(stats.rhs_solved, static_cast<std::uint64_t>(kRequests));
  // The staged backlog keeps the queue deep while the window p95 sits far
  // under target, so the controller must have shrunk teams.
  EXPECT_GT(stats.shrunk_batches, 0u);
  EXPECT_LT(stats.mean_team_size, 4.0);
  EXPECT_GE(stats.mean_team_size, 1.0);
}

// --------------------------------------------------- adaptive coalescing --

TEST(AdaptiveBatch, DeepQueueExpandsBatchesShallowDoesNot) {
  const auto lower = datagen::bandedLower(250, 6, 0.5, 81);
  auto solver = analyzeWide(lower, 4);
  const auto x_true = exec::referenceSolution(lower.rows(), 82);
  const auto b = lower.multiply(x_true);
  std::vector<double> expected(b.size(), 0.0);
  {
    auto ctx = solver->createContext();
    solver->solve(b, expected, *ctx, solver->numThreads());
  }

  auto run = [&](bool adaptive) {
    engine::EngineOptions options;
    options.num_workers = 1;  // deterministic pops
    options.max_batch = 4;
    options.start_paused = true;
    options.elastic = true;
    options.team_size = 1;
    options.elastic_deep_queue = 2;
    options.adaptive_batch = adaptive;
    engine::SolverEngine engine(options);
    const auto id = engine.registerSolver(solver);
    std::vector<std::future<std::vector<double>>> futures;
    for (int r = 0; r < 24; ++r) futures.push_back(engine.submit(id, b));
    engine.resume();
    for (auto& f : futures) EXPECT_EQ(f.get(), expected);
    engine.drain();
    return engine.stats(id);
  };

  const auto adaptive = run(true);
  // Depth 24 >= 2 * deep at the first pops: the cap doubles to 8, so some
  // batch must carry more than max_batch columns.
  EXPECT_GT(adaptive.expanded_batches, 0u);
  EXPECT_EQ(adaptive.rhs_solved, 24u);

  const auto fixed = run(false);
  EXPECT_EQ(fixed.expanded_batches, 0u);
  EXPECT_EQ(fixed.rhs_solved, 24u);
}

}  // namespace
}  // namespace sts
