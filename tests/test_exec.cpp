#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <thread>

#include "baselines/spmp.hpp"
#include "baselines/wavefront.hpp"
#include "core/growlocal.hpp"
#include "core/reorder.hpp"
#include "dag/dag.hpp"
#include "exec/bsp.hpp"
#include "exec/p2p.hpp"
#include "exec/serial.hpp"
#include "exec/verify.hpp"
#include "datagen/random_matrices.hpp"
#include "sparse/permute.hpp"
#include "test_util.hpp"

/// Test-only access to SolveContext's private epoch counter (befriended in
/// solve_context.hpp) so the uint32 wraparound path is testable without
/// 2^32 solves.
class SolveContextTestPeer {
 public:
  static void setEpoch(sts::exec::SolveContext& ctx, std::uint32_t epoch) {
    ctx.epoch_ = epoch;
  }
};

namespace sts::exec {
namespace {

using core::Schedule;
using dag::Dag;
using sparse::CsrMatrix;

std::vector<double> rhsFor(const CsrMatrix& lower,
                           const std::vector<double>& x_true) {
  return lower.multiply(x_true);
}

TEST(SerialSolve, RoundTripOnZoo) {
  for (const auto& [name, lower] : testutil::lowerTriangularZoo()) {
    const auto x_true = referenceSolution(lower.rows(), 77);
    const auto b = rhsFor(lower, x_true);
    std::vector<double> x(static_cast<size_t>(lower.rows()), 0.0);
    solveLowerSerial(lower, b, x);
    EXPECT_LT(relMaxAbsDiff(x, x_true), 1e-9) << name;
    EXPECT_LT(residualInf(lower, x, b), 1e-9) << name;
  }
}

TEST(SerialSolve, UpperRoundTrip) {
  const auto lower = datagen::bandedLower(300, 6, 0.5, 31);
  const CsrMatrix upper = lower.transposed();
  const auto x_true = referenceSolution(300, 78);
  const auto b = upper.multiply(x_true);
  std::vector<double> x(300, 0.0);
  solveUpperSerial(upper, b, x);
  EXPECT_LT(relMaxAbsDiff(x, x_true), 1e-9);
}

TEST(SerialSolve, RejectsMissingDiagonal) {
  // Row 1 has no diagonal entry.
  const std::vector<Triplet> t = {{0, 0, 1.0}, {1, 0, 1.0}};
  const CsrMatrix bad = CsrMatrix::fromTriplets(2, 2, t);
  EXPECT_THROW(requireSolvableLower(bad), std::invalid_argument);
}

TEST(SerialSolve, RejectsZeroDiagonal) {
  const std::vector<Triplet> t = {{0, 0, 0.0}, {1, 1, 1.0}};
  const CsrMatrix bad = CsrMatrix::fromTriplets(2, 2, t);
  EXPECT_THROW(requireSolvableLower(bad), std::invalid_argument);
}

TEST(SerialSolve, RejectsNonTriangular) {
  const std::vector<Triplet> t = {{0, 0, 1.0}, {0, 1, 1.0}, {1, 1, 1.0}};
  const CsrMatrix bad = CsrMatrix::fromTriplets(2, 2, t);
  EXPECT_THROW(requireSolvableLower(bad), std::invalid_argument);
}

TEST(SerialSolve, SizeMismatchThrows) {
  const CsrMatrix id = CsrMatrix::identity(3);
  std::vector<double> b(2, 1.0), x(3, 0.0);
  EXPECT_THROW(solveLowerSerial(id, b, x), std::invalid_argument);
}

/// Parallel executors must reproduce the serial result bit-for-bit: each
/// row sums its CSR entries in the same order regardless of the schedule.
TEST(BspExecutor, BitIdenticalToSerialOnZoo) {
  for (const auto& [name, lower] : testutil::lowerTriangularZoo()) {
    const Dag d = Dag::fromLowerTriangular(lower);
    const Schedule s = core::growLocalSchedule(d, {.num_cores = 2});
    const BspExecutor exec(lower, s);
    const auto x_true = referenceSolution(lower.rows(), 80);
    const auto b = rhsFor(lower, x_true);
    std::vector<double> x_serial(b.size(), 0.0), x_par(b.size(), 0.0);
    solveLowerSerial(lower, b, x_serial);
    exec.solve(b, x_par);
    EXPECT_EQ(x_serial, x_par) << name;
  }
}

TEST(BspExecutor, RepeatedSolvesAreStable) {
  const auto lower = datagen::erdosRenyiLower({.n = 600, .p = 5e-3, .seed = 82});
  const Dag d = Dag::fromLowerTriangular(lower);
  const Schedule s = core::growLocalSchedule(d, {.num_cores = 2});
  const BspExecutor exec(lower, s);
  const auto x_true = referenceSolution(lower.rows(), 83);
  const auto b = rhsFor(lower, x_true);
  std::vector<double> x1(b.size(), 0.0), x2(b.size(), 1.0);
  exec.solve(b, x1);
  exec.solve(b, x2);
  EXPECT_EQ(x1, x2);
}

TEST(P2pExecutor, MatchesSerialWithFullSyncDag) {
  for (const auto& [name, lower] : testutil::lowerTriangularZoo()) {
    const Dag d = Dag::fromLowerTriangular(lower);
    const auto spmp = baselines::spmpSchedule(d, {.num_cores = 2});
    P2pExecutor exec(lower, spmp.schedule, d);  // full DAG: conservative sync
    const auto x_true = referenceSolution(lower.rows(), 85);
    const auto b = rhsFor(lower, x_true);
    std::vector<double> x_serial(b.size(), 0.0), x_par(b.size(), 0.0);
    solveLowerSerial(lower, b, x_serial);
    exec.solve(b, x_par);
    EXPECT_EQ(x_serial, x_par) << name;
  }
}

TEST(P2pExecutor, MatchesSerialWithReducedSyncDag) {
  for (const auto& [name, lower] : testutil::lowerTriangularZoo()) {
    const Dag d = Dag::fromLowerTriangular(lower);
    const auto spmp = baselines::spmpSchedule(d, {.num_cores = 2});
    P2pExecutor exec(lower, spmp.schedule, spmp.reduced_dag);
    const auto x_true = referenceSolution(lower.rows(), 86);
    const auto b = rhsFor(lower, x_true);
    std::vector<double> x_serial(b.size(), 0.0), x_par(b.size(), 0.0);
    solveLowerSerial(lower, b, x_serial);
    // Repeated solves exercise the epoch mechanism.
    for (int rep = 0; rep < 3; ++rep) {
      std::fill(x_par.begin(), x_par.end(), 0.0);
      exec.solve(b, x_par);
      EXPECT_EQ(x_serial, x_par) << name << " rep " << rep;
    }
  }
}

/// Epoch wraparound: when the per-context uint32 epoch overflows, the
/// completion flags are cleared and the counter restarts at 1 — a stale
/// flag can never alias a reissued epoch and release a waiter before its
/// dependency is computed.
TEST(P2pExecutor, EpochWraparoundResetsCompletionFlags) {
  const auto lower = datagen::erdosRenyiLower({.n = 300, .p = 1e-2, .seed = 98});
  const Dag d = Dag::fromLowerTriangular(lower);
  const auto spmp = baselines::spmpSchedule(d, {.num_cores = 2});
  const P2pExecutor exec(lower, spmp.schedule, spmp.reduced_dag);
  const auto ctx = exec.createContext();
  const auto x_true = referenceSolution(lower.rows(), 99);
  const auto b = rhsFor(lower, x_true);
  std::vector<double> expected(b.size(), 0.0), x(b.size(), 0.0);
  solveLowerSerial(lower, b, expected);

  exec.solve(b, x, *ctx);
  EXPECT_EQ(x, expected);
  EXPECT_EQ(ctx->currentEpoch(), 1u);

  // Jump to the last representable epoch: the next solve overflows, must
  // clear the stale flags (all stamped 1) and restart at epoch 1 rather
  // than hand out an epoch a stale flag could equal.
  SolveContextTestPeer::setEpoch(
      *ctx, std::numeric_limits<std::uint32_t>::max());
  for (int rep = 1; rep <= 3; ++rep) {
    std::fill(x.begin(), x.end(), -1.0);
    exec.solve(b, x, *ctx);
    EXPECT_EQ(x, expected) << "rep " << rep;
    EXPECT_EQ(ctx->currentEpoch(), static_cast<std::uint32_t>(rep));
  }
}

TEST(P2pExecutor, ConcurrentSolvesWithDistinctContexts) {
  const auto lower = datagen::erdosRenyiLower({.n = 400, .p = 8e-3, .seed = 89});
  const Dag d = Dag::fromLowerTriangular(lower);
  const auto spmp = baselines::spmpSchedule(d, {.num_cores = 2});
  const P2pExecutor exec(lower, spmp.schedule, spmp.reduced_dag);
  const auto x_true = referenceSolution(lower.rows(), 84);
  const auto b = rhsFor(lower, x_true);
  std::vector<double> expected(b.size(), 0.0);
  solveLowerSerial(lower, b, expected);

  constexpr int kThreads = 3;
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto ctx = exec.createContext();
      std::vector<double> x(b.size(), 0.0);
      for (int rep = 0; rep < 3; ++rep) {
        std::fill(x.begin(), x.end(), -1.0);
        exec.solve(b, x, *ctx);
        if (x != expected) failures[static_cast<size_t>(t)] += 1;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[static_cast<size_t>(t)], 0) << "thread " << t;
  }
}

TEST(P2pExecutor, ReductionShrinksCrossDependencies) {
  const auto lower = datagen::erdosRenyiLower({.n = 800, .p = 8e-3, .seed = 87});
  const Dag d = Dag::fromLowerTriangular(lower);
  const auto spmp = baselines::spmpSchedule(d, {.num_cores = 2});
  P2pExecutor full(lower, spmp.schedule, d);
  P2pExecutor reduced(lower, spmp.schedule, spmp.reduced_dag);
  EXPECT_LT(reduced.numCrossDependencies(), full.numCrossDependencies());
}

TEST(ContiguousExecutor, MatchesSerialWithinTolerance) {
  // The permuted matrix reorders row entries, so the sums can differ by
  // rounding; compare with a norm-wise tolerance.
  for (const auto& [name, lower] : testutil::lowerTriangularZoo()) {
    const Dag d = Dag::fromLowerTriangular(lower);
    const Schedule s = core::growLocalSchedule(d, {.num_cores = 2});
    core::ReorderedProblem problem = core::reorderForLocality(lower, s);
    const ContiguousBspExecutor exec(problem.matrix, problem.num_supersteps,
                                     problem.num_cores, problem.group_ptr);
    const auto x_true = referenceSolution(lower.rows(), 88);
    const auto b = rhsFor(lower, x_true);
    const auto b_perm = sparse::permuteVector(b, problem.new_to_old);
    std::vector<double> x_perm(b.size(), 0.0);
    exec.solve(b_perm, x_perm);
    const auto x = sparse::unpermuteVector(x_perm, problem.new_to_old);
    EXPECT_LT(relMaxAbsDiff(x, x_true), 1e-8) << name;
  }
}

/// Distinct contexts allow simultaneous solves on one executor; results
/// stay bit-identical to serial regardless of interleaving.
TEST(BspExecutor, ConcurrentSolvesWithDistinctContexts) {
  const auto lower = datagen::erdosRenyiLower({.n = 500, .p = 6e-3, .seed = 90});
  const Dag d = Dag::fromLowerTriangular(lower);
  const Schedule s = core::growLocalSchedule(d, {.num_cores = 2});
  const BspExecutor exec(lower, s);
  const auto x_true = referenceSolution(lower.rows(), 91);
  const auto b = rhsFor(lower, x_true);
  std::vector<double> expected(b.size(), 0.0);
  solveLowerSerial(lower, b, expected);

  constexpr int kThreads = 3;
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto ctx = exec.createContext();
      std::vector<double> x(b.size(), 0.0);
      for (int rep = 0; rep < 3; ++rep) {
        std::fill(x.begin(), x.end(), -1.0);
        exec.solve(b, x, *ctx);
        if (x != expected) failures[static_cast<size_t>(t)] += 1;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[static_cast<size_t>(t)], 0) << "thread " << t;
  }
}

TEST(BspExecutor, MultiRhsMatchesSingleSolvesBitwise) {
  const auto lower = datagen::bandedLower(300, 7, 0.5, 92);
  const Dag d = Dag::fromLowerTriangular(lower);
  const Schedule s = core::growLocalSchedule(d, {.num_cores = 2});
  const BspExecutor exec(lower, s);
  const auto n = static_cast<size_t>(lower.rows());
  constexpr index_t kNrhs = 3;
  std::vector<double> b_multi(n * kNrhs), x_multi(n * kNrhs, 0.0);
  std::vector<std::vector<double>> expected;
  for (index_t c = 0; c < kNrhs; ++c) {
    const auto x_true = referenceSolution(lower.rows(), 93 + c);
    const auto b = rhsFor(lower, x_true);
    for (size_t i = 0; i < n; ++i) {
      b_multi[i * kNrhs + static_cast<size_t>(c)] = b[i];
    }
    expected.emplace_back(n, 0.0);
    exec.solve(b, expected.back());
  }
  exec.solveMultiRhs(b_multi, x_multi, kNrhs);
  for (index_t c = 0; c < kNrhs; ++c) {
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(x_multi[i * kNrhs + static_cast<size_t>(c)],
                expected[static_cast<size_t>(c)][i]);
    }
  }
}

TEST(ContiguousExecutor, MultiRhsMatchesSingleSolvesBitwise) {
  const auto lower = datagen::bandedLower(300, 7, 0.5, 94);
  const Dag d = Dag::fromLowerTriangular(lower);
  const Schedule s = core::growLocalSchedule(d, {.num_cores = 2});
  core::ReorderedProblem problem = core::reorderForLocality(lower, s);
  const ContiguousBspExecutor exec(problem.matrix, problem.num_supersteps,
                                   problem.num_cores, problem.group_ptr);
  const auto n = static_cast<size_t>(lower.rows());
  constexpr index_t kNrhs = 3;
  std::vector<double> b_multi(n * kNrhs), x_multi(n * kNrhs, 0.0);
  std::vector<std::vector<double>> expected;
  for (index_t c = 0; c < kNrhs; ++c) {
    const auto x_true = referenceSolution(lower.rows(), 95 + c);
    const auto b_perm =
        sparse::permuteVector(rhsFor(lower, x_true), problem.new_to_old);
    for (size_t i = 0; i < n; ++i) {
      b_multi[i * kNrhs + static_cast<size_t>(c)] = b_perm[i];
    }
    expected.emplace_back(n, 0.0);
    exec.solve(b_perm, expected.back());
  }
  exec.solveMultiRhs(b_multi, x_multi, kNrhs);
  for (index_t c = 0; c < kNrhs; ++c) {
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(x_multi[i * kNrhs + static_cast<size_t>(c)],
                expected[static_cast<size_t>(c)][i]);
    }
  }
}

TEST(P2pExecutor, MultiRhsMatchesSerial) {
  const auto lower = datagen::erdosRenyiLower({.n = 400, .p = 8e-3, .seed = 96});
  const Dag d = Dag::fromLowerTriangular(lower);
  const auto spmp = baselines::spmpSchedule(d, {.num_cores = 2});
  const P2pExecutor exec(lower, spmp.schedule, spmp.reduced_dag);
  const auto n = static_cast<size_t>(lower.rows());
  constexpr index_t kNrhs = 3;
  std::vector<double> b_multi(n * kNrhs), x_multi(n * kNrhs, 0.0);
  std::vector<std::vector<double>> expected;
  for (index_t c = 0; c < kNrhs; ++c) {
    const auto x_true = referenceSolution(lower.rows(), 97 + c);
    const auto b = rhsFor(lower, x_true);
    for (size_t i = 0; i < n; ++i) {
      b_multi[i * kNrhs + static_cast<size_t>(c)] = b[i];
    }
    expected.emplace_back(n, 0.0);
    solveLowerSerial(lower, b, expected.back());
  }
  exec.solveMultiRhs(b_multi, x_multi, kNrhs);
  for (index_t c = 0; c < kNrhs; ++c) {
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(x_multi[i * kNrhs + static_cast<size_t>(c)],
                expected[static_cast<size_t>(c)][i]);
    }
  }
}

TEST(VerifyHelpers, Norms) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {1.0, 2.5, 3.0};
  EXPECT_DOUBLE_EQ(maxAbsDiff(a, b), 0.5);
  EXPECT_DOUBLE_EQ(relMaxAbsDiff(a, b), 0.5 / 3.0);
  EXPECT_THROW(maxAbsDiff(a, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(VerifyHelpers, ReferenceSolutionDeterministicNonZero) {
  const auto x1 = referenceSolution(100, 5);
  const auto x2 = referenceSolution(100, 5);
  EXPECT_EQ(x1, x2);
  for (const double v : x1) {
    EXPECT_GE(std::abs(v), 0.1);
    EXPECT_LE(std::abs(v), 1.0);
  }
}

}  // namespace
}  // namespace sts::exec
