#include "core/coarsen.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/growlocal.hpp"
#include "dag/dag.hpp"
#include "dag/toposort.hpp"
#include "datagen/random_matrices.hpp"
#include "test_util.hpp"

namespace sts::core {
namespace {

using dag::Dag;
using dag::Edge;

TEST(Partition, FromPartOfCanonicalizes) {
  // Labels 7 and 3 should be relabeled by first appearance: 7 -> 0, 3 -> 1.
  const std::vector<index_t> part_of = {7, 3, 7, 3};
  const Partition p = Partition::fromPartOf(4, part_of);
  EXPECT_EQ(p.num_parts, 2);
  EXPECT_EQ(p.part_of[0], 0);
  EXPECT_EQ(p.part_of[1], 1);
  EXPECT_EQ(p.part_of[2], 0);
  EXPECT_EQ(p.part_of[3], 1);
  const auto m0 = p.members(0);
  EXPECT_EQ(std::vector<index_t>(m0.begin(), m0.end()),
            (std::vector<index_t>{0, 2}));
}

TEST(Partition, Singletons) {
  const Partition p = Partition::singletons(5);
  EXPECT_EQ(p.num_parts, 5);
  for (index_t v = 0; v < 5; ++v) EXPECT_EQ(p.part_of[v], v);
}

TEST(FunnelPartition, InTreeCollapsesToOnePart) {
  // A binary in-tree: every vertex funnels into the root (vertex 6).
  //   0 1 2 3 -> 4 5 -> 6
  const std::vector<Edge> edges = {{0, 4}, {1, 4}, {2, 5},
                                   {3, 5}, {4, 6}, {5, 6}};
  const Dag d = Dag::fromEdges(7, edges);
  const Partition p = funnelPartition(d, {});
  EXPECT_EQ(p.num_parts, 1);
  EXPECT_TRUE(isCascade(d, p.members(0)));
}

TEST(FunnelPartition, RespectsSizeCap) {
  const std::vector<Edge> edges = {{0, 4}, {1, 4}, {2, 5},
                                   {3, 5}, {4, 6}, {5, 6}};
  const Dag d = Dag::fromEdges(7, edges);
  FunnelOptions opts;
  opts.max_part_size = 3;
  const Partition p = funnelPartition(d, opts);
  EXPECT_GT(p.num_parts, 1);
  for (index_t part = 0; part < p.num_parts; ++part) {
    EXPECT_LE(static_cast<index_t>(p.members(part).size()), 3);
  }
}

TEST(FunnelPartition, RespectsWeightCap) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}};
  const std::vector<dag::weight_t> weights = {10, 10, 10, 10};
  const Dag d = Dag::fromEdges(4, edges, weights);
  FunnelOptions opts;
  opts.max_part_weight = 20;
  const Partition p = funnelPartition(d, opts);
  for (index_t part = 0; part < p.num_parts; ++part) {
    dag::weight_t w = 0;
    for (const index_t v : p.members(part)) w += d.weight(v);
    EXPECT_LE(w, 20);
  }
}

TEST(FunnelPartition, PartsAreFunnelsOnZoo) {
  // The funnel property is guaranteed on the graph the search ran on; with
  // the default pre-reduction the parts are funnels of the REDUCED graph
  // (removed transitive edges can add cut vertices in the original, which
  // is safe for coarsening — see Coarsen.ProducesAcyclicQuotientOnZoo).
  // Disable the reduction to check the property on the original graph.
  for (const auto& [name, lower] : testutil::lowerTriangularZoo()) {
    const Dag d = Dag::fromLowerTriangular(lower);
    for (const auto direction :
         {FunnelOptions::Direction::kIn, FunnelOptions::Direction::kOut}) {
      FunnelOptions opts;
      opts.direction = direction;
      opts.pre_transitive_reduction = false;
      const Partition p = funnelPartition(d, opts);
      // Partition covers all vertices exactly once.
      index_t covered = 0;
      for (index_t part = 0; part < p.num_parts; ++part) {
        covered += static_cast<index_t>(p.members(part).size());
      }
      EXPECT_EQ(covered, d.numVertices()) << name;
      // Funnel definition: at most one out-cut (in) / in-cut (out) vertex.
      std::vector<char> in_part(static_cast<size_t>(d.numVertices()), 0);
      for (index_t part = 0; part < p.num_parts && part < 200; ++part) {
        const auto members = p.members(part);
        for (const index_t v : members) in_part[v] = 1;
        index_t cut_vertices = 0;
        for (const index_t v : members) {
          const auto nbrs = direction == FunnelOptions::Direction::kIn
                                ? d.children(v)
                                : d.parents(v);
          for (const index_t u : nbrs) {
            if (!in_part[u]) {
              ++cut_vertices;
              break;
            }
          }
        }
        EXPECT_LE(cut_vertices, 1)
            << name << " part " << part << " direction "
            << (direction == FunnelOptions::Direction::kIn ? "in" : "out");
        for (const index_t v : members) in_part[v] = 0;
      }
    }
  }
}

TEST(FunnelPartition, PartsAreCascadesOnSmallGraphs) {
  for (const auto& [name, lower] : testutil::lowerTriangularZoo()) {
    const Dag d = Dag::fromLowerTriangular(lower);
    if (d.numVertices() > 150) continue;  // isCascade is quadratic
    FunnelOptions opts;
    opts.pre_transitive_reduction = false;  // check Def. 4.2 on the original
    const Partition p = funnelPartition(d, opts);
    for (index_t part = 0; part < p.num_parts; ++part) {
      EXPECT_TRUE(isCascade(d, p.members(part))) << name << " part " << part;
    }
  }
}

TEST(Coarsen, ProducesAcyclicQuotientOnZoo) {
  // Proposition 4.3 (plus the transitive-reduction safety argument).
  for (const auto& [name, lower] : testutil::lowerTriangularZoo()) {
    const Dag d = Dag::fromLowerTriangular(lower);
    const Partition p = funnelPartition(d, {});
    const Dag coarse = coarsen(d, p);
    EXPECT_TRUE(coarse.isAcyclic()) << name;
    EXPECT_EQ(coarse.numVertices(), p.num_parts) << name;
    EXPECT_EQ(coarse.totalWeight(), d.totalWeight()) << name;
  }
}

TEST(Coarsen, QuotientEdgesMatchDefinition) {
  // Definition 4.1 on a hand-checked graph.
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {0, 3}, {3, 2}};
  const Dag d = Dag::fromEdges(4, edges);
  const std::vector<index_t> part_of = {0, 0, 1, 1};
  const Partition p = Partition::fromPartOf(4, part_of);
  const Dag coarse = coarsen(d, p);
  EXPECT_EQ(coarse.numVertices(), 2);
  EXPECT_EQ(coarse.numEdges(), 1);  // parallel edges collapse, no self-loops
  EXPECT_TRUE(coarse.hasEdge(0, 1));
}

TEST(Coarsen, SingletonPartitionIsIdentity) {
  const Dag d = Dag::fromLowerTriangular(datagen::chainLower(20));
  const Dag coarse = coarsen(d, Partition::singletons(20));
  EXPECT_EQ(coarse.numVertices(), d.numVertices());
  EXPECT_EQ(coarse.numEdges(), d.numEdges());
}

TEST(PullBack, ProducesValidFineSchedule) {
  for (const auto& [name, lower] : testutil::lowerTriangularZoo()) {
    const Dag d = Dag::fromLowerTriangular(lower);
    const Partition p = funnelPartition(d, {});
    const Dag coarse = coarsen(d, p);
    const Schedule coarse_schedule =
        growLocalSchedule(coarse, {.num_cores = 2});
    ASSERT_TRUE(validateSchedule(coarse, coarse_schedule).ok) << name;
    const Schedule fine = pullBackSchedule(d, p, coarse_schedule);
    const auto v = validateSchedule(d, fine);
    EXPECT_TRUE(v.ok) << name << ": " << v.message;
    EXPECT_EQ(fine.numSupersteps(), coarse_schedule.numSupersteps()) << name;
  }
}

TEST(FunnelGrowLocal, ValidAndCoarserThanWavefronts) {
  const auto lower =
      datagen::narrowBandLower({.n = 2000, .p = 0.14, .b = 10.0, .seed = 21});
  const Dag d = Dag::fromLowerTriangular(lower);
  const Schedule s = funnelGrowLocalSchedule(d, {.num_cores = 2});
  const auto v = validateSchedule(d, s);
  EXPECT_TRUE(v.ok) << v.message;
}

TEST(IsCascade, DetectsNonCascade) {
  // U = {0, 3} in 0->1->3, 0->2->3 (1 and 2 outside): vertex 3 has an
  // incoming cut edge, vertex 0 an outgoing one, but no walk 3 -> 0.
  const std::vector<Edge> edges = {{0, 1}, {1, 3}, {0, 2}, {2, 3}};
  const Dag d = Dag::fromEdges(4, edges);
  const std::vector<index_t> bad = {0, 3};
  EXPECT_FALSE(isCascade(d, bad));
  const std::vector<index_t> whole = {0, 1, 2, 3};
  EXPECT_TRUE(isCascade(d, whole));
}

}  // namespace
}  // namespace sts::core
