#include "engine/solver_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "datagen/grids.hpp"
#include "datagen/random_matrices.hpp"
#include "exec/serial.hpp"
#include "exec/verify.hpp"
#include "test_util.hpp"

namespace sts::engine {
namespace {

using exec::SchedulerKind;
using exec::SolverOptions;
using exec::TriangularSolver;
using sparse::CsrMatrix;

std::shared_ptr<const TriangularSolver> analyzeShared(const CsrMatrix& lower,
                                                      bool reorder,
                                                      SchedulerKind kind =
                                                          SchedulerKind::kGrowLocal) {
  SolverOptions opts;
  opts.scheduler = kind;
  opts.num_threads = 2;
  opts.reorder = reorder;
  return std::make_shared<const TriangularSolver>(
      TriangularSolver::analyze(lower, opts));
}

TEST(SolverEngine, ServesSingleRequests) {
  const auto lower = datagen::bandedLower(300, 8, 0.5, 11);
  auto solver = analyzeShared(lower, /*reorder=*/true);
  const auto x_true = exec::referenceSolution(lower.rows(), 12);
  const auto b = lower.multiply(x_true);

  std::vector<double> expected(b.size(), 0.0);
  solver->solve(b, expected);

  SolverEngine engine({.num_workers = 2});
  const auto id = engine.registerSolver(solver);
  std::vector<std::future<std::vector<double>>> futures;
  for (int r = 0; r < 6; ++r) futures.push_back(engine.submit(id, b));
  for (auto& f : futures) EXPECT_EQ(f.get(), expected);
}

TEST(SolverEngine, CoalescesStagedBacklogBitwise) {
  const auto lower = datagen::erdosRenyiLower({.n = 500, .p = 6e-3, .seed = 13});
  auto solver = analyzeShared(lower, /*reorder=*/true);
  const auto n = static_cast<size_t>(lower.rows());

  // Distinct RHS per request so coalesced columns are distinguishable.
  constexpr int kRequests = 12;
  std::vector<std::vector<double>> rhs;
  std::vector<std::vector<double>> expected;
  for (int r = 0; r < kRequests; ++r) {
    const auto x = exec::referenceSolution(lower.rows(), 100 + r);
    rhs.push_back(lower.multiply(x));
    expected.emplace_back(n, 0.0);
    solver->solve(rhs.back(), expected.back());
  }

  EngineOptions options;
  options.num_workers = 1;
  options.max_batch = 4;
  options.start_paused = true;
  SolverEngine engine(options);
  const auto id = engine.registerSolver(solver);

  std::vector<std::future<std::vector<double>>> futures;
  for (const auto& b : rhs) futures.push_back(engine.submit(id, b));
  engine.resume();
  // Coalesced batch columns must be bitwise equal to individual solves.
  for (int r = 0; r < kRequests; ++r) {
    EXPECT_EQ(futures[static_cast<size_t>(r)].get(),
              expected[static_cast<size_t>(r)]) << "request " << r;
  }
  engine.drain();

  const auto stats = engine.stats(id);
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.rhs_solved, static_cast<std::uint64_t>(kRequests));
  // The staged backlog must actually coalesce: 12 requests, batch budget 4.
  EXPECT_EQ(stats.batches, 3u);
  EXPECT_EQ(stats.coalesced_rhs, static_cast<std::uint64_t>(kRequests));
  EXPECT_DOUBLE_EQ(stats.mean_batch_rhs, 4.0);
  EXPECT_GT(stats.latency_p50_seconds, 0.0);
  EXPECT_GT(stats.throughput_rhs_per_second, 0.0);
}

/// The ISSUE acceptance stress: >= 8 concurrent solves through one engine
/// on a single analyzed solver, all bitwise-correct. coalesce=false forces
/// every request into its own batch, so 8 workers run 8 simultaneous
/// solves, each on its own pooled SolveContext. reorder=false keeps the
/// BspExecutor path, which is bit-identical to the serial kernel.
TEST(SolverEngine, ConcurrentSolvesStress) {
  const auto lower = datagen::bandedLower(400, 10, 0.5, 14);
  auto solver = analyzeShared(lower, /*reorder=*/false);
  const auto n = static_cast<size_t>(lower.rows());

  constexpr int kDistinctRhs = 4;
  constexpr int kRequests = 32;
  std::vector<std::vector<double>> rhs;
  std::vector<std::vector<double>> expected;
  for (int r = 0; r < kDistinctRhs; ++r) {
    const auto x = exec::referenceSolution(lower.rows(), 200 + r);
    rhs.push_back(lower.multiply(x));
    expected.emplace_back(n, 0.0);
    exec::solveLowerSerial(lower, rhs.back(), expected.back());
  }

  EngineOptions options;
  options.num_workers = 8;
  options.coalesce = false;
  options.start_paused = true;  // stage the backlog, then release all at once
  SolverEngine engine(options);
  const auto id = engine.registerSolver(solver);

  std::vector<std::future<std::vector<double>>> futures;
  for (int r = 0; r < kRequests; ++r) {
    futures.push_back(engine.submit(id, rhs[static_cast<size_t>(r % kDistinctRhs)]));
  }
  engine.resume();
  for (int r = 0; r < kRequests; ++r) {
    EXPECT_EQ(futures[static_cast<size_t>(r)].get(),
              expected[static_cast<size_t>(r % kDistinctRhs)])
        << "request " << r;
  }
  engine.drain();

  const auto stats = engine.stats(id);
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.rhs_solved, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.batches, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.coalesced_rhs, 0u);
}

TEST(SolverEngine, MultiRhsRequestMatchesSingleSolves) {
  const auto lower = datagen::bandedLower(250, 6, 0.5, 15);
  auto solver = analyzeShared(lower, /*reorder=*/true);
  const auto n = static_cast<size_t>(lower.rows());
  constexpr index_t kNrhs = 3;

  std::vector<double> b_multi(n * kNrhs);
  std::vector<std::vector<double>> expected;
  for (index_t c = 0; c < kNrhs; ++c) {
    const auto x = exec::referenceSolution(lower.rows(), 300 + c);
    const auto b = lower.multiply(x);
    for (size_t i = 0; i < n; ++i) {
      b_multi[i * static_cast<size_t>(kNrhs) + static_cast<size_t>(c)] = b[i];
    }
    expected.emplace_back(n, 0.0);
    solver->solve(b, expected.back());
  }

  SolverEngine engine({.num_workers = 1});
  const auto id = engine.registerSolver(solver);
  const std::vector<double> x_multi =
      engine.submitMulti(id, b_multi, kNrhs).get();
  ASSERT_EQ(x_multi.size(), n * kNrhs);
  for (index_t c = 0; c < kNrhs; ++c) {
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(x_multi[i * static_cast<size_t>(kNrhs) + static_cast<size_t>(c)],
                expected[static_cast<size_t>(c)][i])
          << "rhs " << c << " row " << i;
    }
  }
}

TEST(SolverEngine, MultipleSolversServeIndependently) {
  const auto lower_a = datagen::bandedLower(200, 5, 0.5, 16);
  const auto lower_b = datagen::chainLower(150);
  auto solver_a = analyzeShared(lower_a, /*reorder=*/true);
  auto solver_b = analyzeShared(lower_b, /*reorder=*/false);

  const auto xa = exec::referenceSolution(lower_a.rows(), 17);
  const auto xb = exec::referenceSolution(lower_b.rows(), 18);
  const auto ba = lower_a.multiply(xa);
  const auto bb = lower_b.multiply(xb);
  std::vector<double> ea(ba.size(), 0.0), eb(bb.size(), 0.0);
  solver_a->solve(ba, ea);
  solver_b->solve(bb, eb);

  EngineOptions options;
  options.num_workers = 2;
  options.start_paused = true;  // interleaved backlog exercises per-solver
                                // coalescing compatibility checks
  SolverEngine engine(options);
  const auto id_a = engine.registerSolver(solver_a);
  const auto id_b = engine.registerSolver(solver_b);

  std::vector<std::future<std::vector<double>>> fa, fb;
  for (int r = 0; r < 5; ++r) {
    fa.push_back(engine.submit(id_a, ba));
    fb.push_back(engine.submit(id_b, bb));
  }
  engine.resume();
  for (auto& f : fa) EXPECT_EQ(f.get(), ea);
  for (auto& f : fb) EXPECT_EQ(f.get(), eb);
}

TEST(SolverEngine, ConcurrentSubmittersAndP2pSolver) {
  // The SpMP/P2P path exercises the epoch-stamped flags in pooled contexts.
  const auto lower = datagen::erdosRenyiLower({.n = 400, .p = 8e-3, .seed = 19});
  auto solver = analyzeShared(lower, /*reorder=*/false, SchedulerKind::kSpmp);
  const auto x_true = exec::referenceSolution(lower.rows(), 20);
  const auto b = lower.multiply(x_true);
  std::vector<double> expected(b.size(), 0.0);
  exec::solveLowerSerial(lower, b, expected);

  SolverEngine engine({.num_workers = 4});
  const auto id = engine.registerSolver(solver);

  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 6;
  std::vector<std::future<bool>> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.push_back(std::async(std::launch::async, [&] {
      bool all_ok = true;
      std::vector<std::future<std::vector<double>>> pending;
      for (int r = 0; r < kPerSubmitter; ++r) {
        pending.push_back(engine.submit(id, b));
      }
      for (auto& f : pending) all_ok = all_ok && (f.get() == expected);
      return all_ok;
    }));
  }
  for (auto& s : submitters) EXPECT_TRUE(s.get());
  engine.drain();
  EXPECT_EQ(engine.stats(id).rhs_solved,
            static_cast<std::uint64_t>(kSubmitters * kPerSubmitter));
}

TEST(SolverEngine, RejectsBadSubmissions) {
  const CsrMatrix id_matrix = CsrMatrix::identity(4);
  auto solver = analyzeShared(id_matrix, /*reorder=*/false);
  SolverEngine engine({.num_workers = 1});
  const auto id = engine.registerSolver(solver);

  EXPECT_THROW(engine.submit(id, std::vector<double>(3, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(engine.submit(id + 1, std::vector<double>(4, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(engine.submitMulti(id, std::vector<double>(8, 1.0), 3),
               std::invalid_argument);
  EXPECT_THROW(engine.registerSolver(nullptr), std::invalid_argument);
  EXPECT_THROW(SolverEngine({.num_workers = 0}), std::invalid_argument);

  EXPECT_NO_THROW(engine.submit(id, std::vector<double>(4, 1.0)).get());
  engine.shutdown();
  EXPECT_THROW(engine.submit(id, std::vector<double>(4, 1.0)),
               std::runtime_error);
}

TEST(SolverEngine, StopFailsFastQueuedRequestsWithTypedShutdown) {
  const auto lower = datagen::bandedLower(300, 8, 0.5, 23);
  auto solver = analyzeShared(lower, /*reorder=*/true);
  const auto b = lower.multiply(exec::referenceSolution(lower.rows(), 24));

  EngineOptions options;
  options.num_workers = 1;
  options.start_paused = true;  // workers parked: everything stays queued
  SolverEngine engine(options);
  const auto id = engine.registerSolver(solver);
  std::vector<std::future<std::vector<double>>> futures;
  for (int r = 0; r < 6; ++r) futures.push_back(engine.submit(id, b));

  engine.stop();  // fail-fast: must not wait for (paused) dispatch
  for (auto& f : futures) {
    // Every queued future resolves promptly — nothing blocks forever.
    ASSERT_EQ(f.wait_for(std::chrono::seconds(5)),
              std::future_status::ready);
    try {
      f.get();
      FAIL() << "expected EngineError{kShutdown}";
    } catch (const EngineError& error) {
      EXPECT_EQ(error.code(), EngineErrorCode::kShutdown);
    }
  }
  EXPECT_THROW(engine.submit(id, b), EngineError);  // closed for business
}

TEST(SolverEngine, DestructionWithInFlightAndQueuedWorkNeverHangs) {
  // The shutdown-ordering regression this pins: destroying an engine while
  // workers hold in-flight batches AND requests are still queued must
  // drain gracefully — every accepted future resolves with a value. Runs
  // under TSan in CI (full-suite tsan job), which is where the original
  // ordering races would surface.
  const auto lower = datagen::bandedLower(400, 10, 0.5, 25);
  auto solver = analyzeShared(lower, /*reorder=*/true);
  const auto x_true = exec::referenceSolution(lower.rows(), 26);
  const auto b = lower.multiply(x_true);

  for (int round = 0; round < 3; ++round) {
    std::vector<std::future<std::vector<double>>> futures;
    {
      SolverEngine engine({.num_workers = 3, .max_batch = 2});
      const auto id = engine.registerSolver(solver);
      for (int r = 0; r < 24; ++r) futures.push_back(engine.submit(id, b));
      // Destructor runs here with most requests still queued or solving.
    }
    for (auto& f : futures) {
      ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
                std::future_status::ready);
      EXPECT_LT(exec::relMaxAbsDiff(f.get(), x_true), 1e-10);
    }
  }
}

TEST(SolverEngine, DrainWaitsForBacklog) {
  const auto lower = datagen::bandedLower(300, 8, 0.5, 21);
  auto solver = analyzeShared(lower, /*reorder=*/true);
  const auto x_true = exec::referenceSolution(lower.rows(), 22);
  const auto b = lower.multiply(x_true);

  SolverEngine engine({.num_workers = 2});
  const auto id = engine.registerSolver(solver);
  std::vector<std::future<std::vector<double>>> futures;
  for (int r = 0; r < 10; ++r) futures.push_back(engine.submit(id, b));
  engine.drain();
  for (auto& f : futures) {
    // Everything must already be done: get() cannot block after drain().
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_LT(exec::relMaxAbsDiff(f.get(), x_true), 1e-10);
  }
}

}  // namespace
}  // namespace sts::engine
