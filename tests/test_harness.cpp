#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <sstream>

#include "harness/datasets.hpp"
#include "harness/runner.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"
#include "sparse/mm_io.hpp"

namespace sts::harness {
namespace {

TEST(Stats, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometricMean(std::vector<double>{4.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(geometricMean(std::vector<double>{8.0}), 8.0);
  // Empty input throws like quantile — a silent 0.0 used to poison
  // downstream speedup aggregates.
  EXPECT_THROW(geometricMean(std::vector<double>{}), std::invalid_argument);
  EXPECT_NEAR(geometricMean(std::vector<double>{1.0, 10.0, 100.0}), 10.0,
              1e-12);
  EXPECT_THROW(geometricMean(std::vector<double>{1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(geometricMean(std::vector<double>{-1.0}),
               std::invalid_argument);
}

TEST(Stats, QuantileInterpolation) {
  const std::vector<double> v = {3.0, 1.0, 2.0, 4.0};  // sorted: 1 2 3 4
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 1.75);
  EXPECT_THROW(quantile(std::vector<double>{}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile(v, 1.5), std::invalid_argument);
}

TEST(Stats, QuartilesOrdered) {
  const std::vector<double> v = {5.0, 9.0, 1.0, 7.0, 3.0};
  const auto q = quartiles(v);
  EXPECT_LE(q.q25, q.median);
  EXPECT_LE(q.median, q.q75);
  EXPECT_DOUBLE_EQ(q.median, 5.0);
}

TEST(Stats, PerformanceProfiles) {
  // Two algorithms, three matrices: A wins twice, B once.
  const std::vector<std::string> names = {"A", "B"};
  const std::vector<std::vector<double>> times = {
      {1.0, 1.0, 2.0},   // A
      {2.0, 2.0, 1.0}};  // B
  const std::vector<double> taus = {1.0, 2.0};
  const auto curves = performanceProfiles(names, times, taus);
  ASSERT_EQ(curves.size(), 2u);
  // tau = 1: A is fastest on 2/3, B on 1/3.
  EXPECT_NEAR(curves[0].fraction[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(curves[1].fraction[0], 1.0 / 3.0, 1e-12);
  // tau = 2: both within 2x of best everywhere.
  EXPECT_DOUBLE_EQ(curves[0].fraction[1], 1.0);
  EXPECT_DOUBLE_EQ(curves[1].fraction[1], 1.0);
}

TEST(Stats, PerformanceProfilesRejectsRagged) {
  const std::vector<std::string> names = {"A", "B"};
  const std::vector<std::vector<double>> ragged = {{1.0, 2.0}, {1.0}};
  const std::vector<double> taus = {1.0};
  EXPECT_THROW(performanceProfiles(names, ragged, taus),
               std::invalid_argument);
}

TEST(Stats, AmortizationThreshold) {
  // 10 units of scheduling, serial 3, parallel 1: pays off after 5 solves.
  EXPECT_DOUBLE_EQ(amortizationThreshold(10.0, 3.0, 1.0), 5.0);
  // Parallel slower than serial: never amortizes (Eq. 7.1 footnote).
  EXPECT_TRUE(std::isinf(amortizationThreshold(10.0, 1.0, 2.0)));
}

TEST(Table, AlignedOutput) {
  Table t({"name", "value"});
  t.addRow({"alpha", "1.50"});
  t.addRow({"b", "10.25"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("10.25"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
}

TEST(Table, FormatsDoubles) {
  EXPECT_EQ(Table::fmt(1.236, 2), "1.24");
  EXPECT_EQ(Table::fmt(std::numeric_limits<double>::infinity()), "inf");
}

TEST(Datasets, AllFamiliesNonEmptyAndLowerTriangular) {
  // Small scale keeps this test fast; every entry must be a solvable
  // SpTRSV instance.
  for (const auto& [name, set] : allDatasets(0.05)) {
    EXPECT_FALSE(set.empty()) << name;
    for (const auto& entry : set) {
      EXPECT_TRUE(entry.lower.isLowerTriangular()) << name << entry.name;
      EXPECT_TRUE(entry.lower.hasFullDiagonal()) << name << entry.name;
      EXPECT_GT(entry.lower.rows(), 0) << name << entry.name;
    }
  }
}

TEST(Datasets, MetisVariantChangesPattern) {
  const auto natural = suiteSparseStandin(0.05);
  const auto metis = metisStandin(0.05);
  ASSERT_EQ(natural.size(), metis.size());
  // Same size, permuted pattern.
  EXPECT_EQ(natural[0].lower.rows(), metis[0].lower.rows());
  EXPECT_FALSE(natural[0].lower.structureEquals(metis[0].lower));
}

TEST(Datasets, SuiteSparseRealLoadsFromMmDir) {
  // Without STS_MM_DIR the family is silently absent.
  unsetenv("STS_MM_DIR");
  EXPECT_TRUE(suiteSparseReal().empty());

  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "sts_mm_dir_test";
  fs::create_directories(dir);
  // A general square matrix with a zero diagonal entry (row 2): loading
  // must lower-triangularize and normalize the diagonal. An upper entry
  // (0, 2) must be dropped by the triangularization.
  const std::vector<sts::Triplet> triplets = {
      {0, 0, 2.0}, {0, 2, 5.0}, {1, 0, -1.0}, {1, 1, 3.0}, {2, 1, 4.0}};
  sparse::writeMatrixMarketFile(
      (dir / "tiny.mtx").string(),
      sparse::CsrMatrix::fromTriplets(3, 3, triplets));
  // A non-square file must be skipped, not fail the whole family.
  sparse::writeMatrixMarketFile(
      (dir / "rect.mtx").string(),
      sparse::CsrMatrix::fromTriplets(2, 3, {{{0, 0, 1.0}, {1, 2, 1.0}}}));

  setenv("STS_MM_DIR", dir.string().c_str(), 1);
  const auto set = suiteSparseReal();
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set[0].name, "tiny");
  EXPECT_TRUE(set[0].lower.isLowerTriangular());
  EXPECT_TRUE(set[0].lower.hasFullDiagonal());
  EXPECT_DOUBLE_EQ(set[0].lower.at(2, 2), 1.0);   // normalized diagonal
  EXPECT_DOUBLE_EQ(set[0].lower.at(1, 0), -1.0);  // lower entries kept
  EXPECT_FALSE(set[0].lower.hasEntry(0, 2));      // upper entries dropped

  // allDatasets picks the family up under the "suitesparse" label.
  const auto all = allDatasets(0.05);
  EXPECT_EQ(all.back().first, "suitesparse");
  EXPECT_EQ(all.back().second.size(), 1u);

  unsetenv("STS_MM_DIR");
  EXPECT_TRUE(suiteSparseReal().empty());
  fs::remove_all(dir);
}

TEST(Datasets, AverageWavefrontMatchesDefinition) {
  // A diagonal matrix has one wavefront: avg wavefront == n.
  const auto diag = sparse::CsrMatrix::identity(32);
  EXPECT_DOUBLE_EQ(averageWavefrontSize(diag), 32.0);
}

TEST(Runner, MedianSecondsCountsCalls) {
  int calls = 0;
  const double t = medianSeconds([&calls] { ++calls; }, 2, 5);
  EXPECT_EQ(calls, 7);  // warmup + reps
  EXPECT_GE(t, 0.0);
}

TEST(Runner, MeasureSolverProducesConsistentRecord) {
  const auto set = suiteSparseStandin(0.05);
  MeasureOptions opts;
  opts.reps = 5;
  opts.warmup = 1;
  const auto m = measureSolver(set[0].name, set[0].lower,
                               exec::SchedulerKind::kGrowLocal, opts);
  EXPECT_GT(m.serial_seconds, 0.0);
  EXPECT_GT(m.parallel_seconds, 0.0);
  EXPECT_NEAR(m.speedup, m.serial_seconds / m.parallel_seconds, 1e-12);
  EXPECT_GT(m.supersteps, 0);
  EXPECT_GE(m.wavefront_reduction, 1.0);
  EXPECT_EQ(m.scheduler, "GrowLocal");
}

}  // namespace
}  // namespace sts::harness
