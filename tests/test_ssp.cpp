#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "datagen/grids.hpp"
#include "datagen/random_matrices.hpp"
#include "engine/solver_engine.hpp"
#include "exec/solver.hpp"
#include "exec/ssp.hpp"
#include "exec/verify.hpp"
#include "test_util.hpp"

/// \file test_ssp.cpp
/// The differential test layer hardening the bounded-staleness (SSP)
/// executor. The invariants pinned here (see docs/TESTING.md):
///
///  * DEGENERACY: staleness 0 is bitwise identical to the exact solve for
///    every scheduler kind x team x storage, with zero refinements.
///  * RESIDUAL: for staleness > 0 the refinement loop drives
///    ||b - L x||_inf at or below the configured tolerance on every
///    harness dataset (zoo matrices), single and multi RHS.
///  * FALLBACK: an unreachable tolerance trips the iteration cap and the
///    exact fallback returns the bitwise exact solution.
///  * REENTRANCY: concurrent mixed exact/SSP solves on one analyzed
///    solver (distinct contexts) are race-free — TSan covers this in CI.
///  * PROPERTY (randomized, seeds logged via SCOPED_TRACE): forward error
///    is bounded by tolerance x a condition bound from the Ostrowski
///    comparison matrix, and refinement counts are monotone
///    NON-DECREASING in staleness (up to slack 1) over nested chunk
///    widths — wider chunks drop more operands, so they need more
///    correction, not less.
///  * PLAN VALIDITY: check::validateSspPlan accepts every shipped plan
///    and rejects hand-crafted violations of the stream-order /
///    strictly-earlier-superstep preconditions.

namespace sts {
namespace {

using exec::SchedulerKind;
using exec::SolverOptions;
using exec::SspOptions;
using exec::SspResult;
using exec::StorageKind;
using exec::TriangularSolver;

/// Loose tolerance for the bitwise tests: the staleness-0 first sweep is
/// already backward stable, so the residual check passes with ZERO
/// refinements and nothing perturbs the bitwise result.
constexpr double kLooseTol = 1e-6;

std::vector<double> makeRhs(size_t n, index_t nrhs, unsigned salt = 0) {
  std::vector<double> b(n * static_cast<size_t>(nrhs));
  for (size_t i = 0; i < b.size(); ++i) {
    b[i] = 1.0 + 0.125 * static_cast<double>((i * 7 + salt) % 23) -
           0.5 * static_cast<double>((i + salt) % 3);
  }
  return b;
}

std::vector<SchedulerKind> allSchedulerKinds() {
  return {SchedulerKind::kGrowLocal, SchedulerKind::kFunnelGrowLocal,
          SchedulerKind::kWavefront, SchedulerKind::kHdagg,
          SchedulerKind::kSpmp,      SchedulerKind::kBspList,
          SchedulerKind::kSerial};
}

/// ||M(L)^{-1} 1||_inf for the Ostrowski comparison matrix M(L)
/// (|diagonal| on the diagonal, -|off-diagonal| elsewhere). M(L) is an
/// M-matrix with M(L)^{-1} >= |L^{-1}| elementwise, so this bounds
/// ||L^{-1}||_inf — the condition factor scaling residual into forward
/// error. One forward substitution computes it.
double comparisonConditionBound(const sparse::CsrMatrix& lower) {
  const auto n = static_cast<size_t>(lower.rows());
  std::vector<double> z(n, 0.0);
  double bound = 0.0;
  for (index_t i = 0; i < lower.rows(); ++i) {
    const auto cols = lower.rowCols(i);
    const auto vals = lower.rowValues(i);
    double acc = 1.0;
    for (size_t k = 0; k + 1 < cols.size(); ++k) {
      acc += std::abs(vals[k]) * z[static_cast<size_t>(cols[k])];
    }
    const double zi = acc / std::abs(vals.back());
    z[static_cast<size_t>(i)] = zi;
    bound = std::max(bound, zi);
  }
  return bound;
}

TEST(SspDifferential, S0BitwiseMatchesExactForEveryConfig) {
  const int width = 4;
  const auto matrices = {
      datagen::grid2dLaplacian5(12, 14).lowerTriangle(),
      datagen::erdosRenyiLower({.n = 300, .p = 1e-2, .seed = 7}),
  };
  SspOptions s0;
  s0.staleness = 0;
  s0.tolerance = kLooseTol;
  for (const auto& lower : matrices) {
    const auto n = static_cast<size_t>(lower.rows());
    for (const SchedulerKind kind : allSchedulerKinds()) {
      SolverOptions opts;
      opts.scheduler = kind;
      opts.num_threads = width;
      const auto solver = TriangularSolver::analyze(lower, opts);
      auto ctx = solver.createContext();
      for (const int team : {1, 2, width}) {
        for (const StorageKind storage :
             {StorageKind::kSharedCsr, StorageKind::kSlab}) {
          const std::string where = exec::schedulerKindName(kind) +
                                    " team " + std::to_string(team) +
                                    " storage " +
                                    std::string(exec::storageKindName(storage));
          const auto policy = core::FoldPolicy::kModulo;
          const auto b = makeRhs(n, 1);
          std::vector<double> x_exact(n);
          std::vector<double> x_ssp(n);
          solver.solve(b, x_exact, *ctx, team, policy, storage);
          const SspResult result = solver.solveBoundedStale(
              b, x_ssp, s0, *ctx, team, policy, storage);
          EXPECT_EQ(result.refinements, 0) << where;
          EXPECT_TRUE(result.converged) << where;
          EXPECT_FALSE(result.fell_back) << where;
          ASSERT_EQ(exec::maxAbsDiff(x_ssp, x_exact), 0.0) << where;

          const index_t nrhs = 3;
          const auto bm = makeRhs(n, nrhs);
          std::vector<double> xm_exact(bm.size());
          std::vector<double> xm_ssp(bm.size());
          solver.solveMultiRhs(bm, xm_exact, nrhs, *ctx, team, policy,
                               storage);
          const SspResult multi = solver.solveBoundedStaleMultiRhs(
              bm, xm_ssp, nrhs, s0, *ctx, team, policy, storage);
          EXPECT_EQ(multi.refinements, 0) << where;
          ASSERT_EQ(exec::maxAbsDiff(xm_ssp, xm_exact), 0.0) << where;
        }
      }
    }
  }
}

TEST(SspDifferential, StalenessResidualBelowToleranceOnZoo) {
  const double tol = 1e-8;
  for (const auto& entry : testutil::lowerTriangularZoo()) {
    SCOPED_TRACE(entry.name);
    const auto& lower = entry.lower;
    const auto n = static_cast<size_t>(lower.rows());
    SolverOptions opts;
    opts.num_threads = 4;
    const auto solver = TriangularSolver::analyze(lower, opts);
    auto ctx = solver.createContext();
    for (const index_t staleness : {1, 3}) {
      for (const StorageKind storage :
           {StorageKind::kSharedCsr, StorageKind::kSlab}) {
        SspOptions ssp;
        ssp.staleness = staleness;
        ssp.tolerance = tol;
        const auto b = makeRhs(n, 1);
        std::vector<double> x(n);
        const SspResult result = solver.solveBoundedStale(
            b, x, ssp, *ctx, solver.defaultTeam(), core::FoldPolicy::kModulo,
            storage);
        EXPECT_TRUE(result.converged)
            << "staleness " << staleness << " residual " << result.residual;
        EXPECT_LE(result.residual, tol);
        EXPECT_GE(result.refinements, 0);
        // The reported residual is measured on the permuted system; the
        // contract is about the ORIGINAL one (inf-norms agree — verify).
        EXPECT_LE(exec::residualInf(lower, x, b), tol);
      }
    }
    // Multi-RHS: the bound holds for every column at once.
    SspOptions ssp;
    ssp.staleness = 2;
    ssp.tolerance = tol;
    const index_t nrhs = 4;
    const auto bm = makeRhs(n, nrhs);
    std::vector<double> xm(bm.size());
    const SspResult multi =
        solver.solveBoundedStaleMultiRhs(bm, xm, nrhs, ssp, *ctx);
    EXPECT_TRUE(multi.converged);
    EXPECT_LE(multi.residual, tol);
    for (index_t c = 0; c < nrhs; ++c) {
      std::vector<double> bc(n), xc(n);
      for (size_t i = 0; i < n; ++i) {
        bc[i] = bm[i * static_cast<size_t>(nrhs) + static_cast<size_t>(c)];
        xc[i] = xm[i * static_cast<size_t>(nrhs) + static_cast<size_t>(c)];
      }
      EXPECT_LE(exec::residualInf(lower, xc, bc), tol) << "column " << c;
    }
  }
}

TEST(SspDifferential, TeamOfOneIsExactForAnyStaleness) {
  // With one thread every operand is same-thread, the guard never drops,
  // and even huge staleness converges on the first sweep.
  const auto lower = datagen::narrowBandLower({.n = 400, .seed = 9});
  const auto n = static_cast<size_t>(lower.rows());
  SolverOptions opts;
  opts.num_threads = 4;
  const auto solver = TriangularSolver::analyze(lower, opts);
  auto ctx = solver.createContext();
  const auto b = makeRhs(n, 1);
  std::vector<double> x_exact(n);
  solver.solve(b, x_exact, *ctx, 1, core::FoldPolicy::kModulo,
               StorageKind::kSharedCsr);
  SspOptions ssp;
  ssp.staleness = 1000;
  ssp.tolerance = kLooseTol;
  std::vector<double> x(n);
  const SspResult result = solver.solveBoundedStale(
      b, x, ssp, *ctx, 1, core::FoldPolicy::kModulo, StorageKind::kSharedCsr);
  EXPECT_EQ(result.refinements, 0);
  EXPECT_EQ(exec::maxAbsDiff(x, x_exact), 0.0);
}

TEST(SspDifferential, CapFallbackReturnsExactSolution) {
  const auto lower = datagen::erdosRenyiLower({.n = 400, .p = 8e-3,
                                               .seed = 11});
  const auto n = static_cast<size_t>(lower.rows());
  SolverOptions opts;
  opts.num_threads = 4;
  opts.reorder = false;
  const auto solver = TriangularSolver::analyze(lower, opts);
  auto ctx = solver.createContext();
  const auto b = makeRhs(n, 1);
  std::vector<double> x_exact(n);
  solver.solve(b, x_exact, *ctx, solver.numThreads(),
               core::FoldPolicy::kModulo, StorageKind::kSharedCsr);

  // An unreachable tolerance must trip the cap and fall back to the exact
  // sweep — whose result is bitwise the exact executor's.
  SspOptions ssp;
  ssp.staleness = 2;
  ssp.tolerance = 0.0;
  ssp.max_refinements = 2;
  std::vector<double> x(n);
  const SspResult result = solver.solveBoundedStale(
      b, x, ssp, *ctx, solver.numThreads(), core::FoldPolicy::kModulo,
      StorageKind::kSharedCsr);
  EXPECT_TRUE(result.fell_back);
  EXPECT_EQ(result.refinements, 2);
  EXPECT_EQ(exec::maxAbsDiff(x, x_exact), 0.0);

  // max_refinements == 0 skips the loop entirely and still lands exact.
  SspOptions none = ssp;
  none.max_refinements = 0;
  std::vector<double> x0(n);
  const SspResult zero = solver.solveBoundedStale(
      b, x0, none, *ctx, solver.numThreads(), core::FoldPolicy::kModulo,
      StorageKind::kSharedCsr);
  EXPECT_TRUE(zero.fell_back);
  EXPECT_EQ(zero.refinements, 0);
  EXPECT_EQ(exec::maxAbsDiff(x0, x_exact), 0.0);
}

TEST(SspDifferential, RejectsBadOptions) {
  const auto lower = datagen::diagonalMatrix(16);
  SolverOptions small;
  small.num_threads = 2;
  const auto solver = TriangularSolver::analyze(lower, small);
  auto ctx = solver.createContext();
  std::vector<double> b(16, 1.0), x(16);
  SspOptions bad;
  bad.staleness = -1;
  EXPECT_THROW(solver.solveBoundedStale(b, x, bad, *ctx),
               std::invalid_argument);
  bad.staleness = 0;
  bad.max_refinements = -1;
  EXPECT_THROW(solver.solveBoundedStale(b, x, bad, *ctx),
               std::invalid_argument);
  std::vector<double> short_b(8, 1.0);
  EXPECT_THROW(solver.solveBoundedStale(short_b, x, SspOptions{}, *ctx),
               std::invalid_argument);
}

TEST(SspConcurrent, MixedExactAndSspSolvesAreSafe) {
  // Concurrent exact and bounded-stale solves on one analyzed solver,
  // each on its own context — the reentrancy contract under the new
  // executor, TSan-covered in CI.
  const auto lower = datagen::erdosRenyiLower({.n = 400, .p = 6e-3,
                                               .seed = 13});
  const auto n = static_cast<size_t>(lower.rows());
  SolverOptions opts;
  opts.num_threads = 4;
  const auto solver = TriangularSolver::analyze(lower, opts);
  const auto b = makeRhs(n, 1);
  std::vector<double> expected(n);
  {
    auto ctx = solver.createContext();
    solver.solve(b, expected, *ctx);
  }
  constexpr int kWorkers = 8;
  std::vector<std::future<double>> residuals;
  for (int w = 0; w < kWorkers; ++w) {
    residuals.push_back(std::async(std::launch::async, [&, w] {
      auto ctx = solver.createContext();
      std::vector<double> x(n);
      const int team = 1 + w % solver.numThreads();
      const auto storage =
          w % 2 == 0 ? StorageKind::kSharedCsr : StorageKind::kSlab;
      double worst = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        if (w % 2 == 0) {
          solver.solve(b, x, *ctx, team, core::FoldPolicy::kModulo, storage);
          worst = std::max(worst, exec::maxAbsDiff(x, expected));
        } else {
          SspOptions ssp;
          ssp.staleness = 1 + w % 3;
          const SspResult result = solver.solveBoundedStale(
              b, x, ssp, *ctx, team, core::FoldPolicy::kModulo, storage);
          worst = std::max(worst, result.residual);
        }
      }
      return worst;
    }));
  }
  for (int w = 0; w < kWorkers; ++w) {
    const double worst = residuals[static_cast<size_t>(w)].get();
    if (w % 2 == 0) {
      EXPECT_EQ(worst, 0.0) << "exact worker " << w;
    } else {
      EXPECT_LE(worst, 1e-8) << "ssp worker " << w;
    }
  }
}

TEST(SspProperty, RandomizedForwardErrorAndMonotonicity) {
  // Randomized lower-triangular systems; on failure the SCOPED_TRACE
  // lines identify the generator and seed to replay.
  const double tol = 1e-9;
  for (const std::uint64_t seed : {101, 102, 103, 104}) {
    for (const bool banded : {false, true}) {
      SCOPED_TRACE("seed " + std::to_string(seed) +
                   (banded ? " narrowBandLower" : " erdosRenyiLower"));
      const auto lower =
          banded ? datagen::narrowBandLower({.n = 250, .seed = seed})
                 : datagen::erdosRenyiLower({.n = 250, .p = 2e-2,
                                             .seed = seed});
      const auto n = static_cast<size_t>(lower.rows());
      SolverOptions opts;
      opts.num_threads = 4;
      opts.reorder = false;
      const auto solver = TriangularSolver::analyze(lower, opts);
      auto ctx = solver.createContext();
      const auto b = makeRhs(n, 1, static_cast<unsigned>(seed));
      std::vector<double> x_exact(n);
      solver.solve(b, x_exact, *ctx, solver.numThreads(),
                   core::FoldPolicy::kModulo, StorageKind::kSharedCsr);
      const double kappa = comparisonConditionBound(lower);

      // Nested chunk widths (1, 2, 4, 8): every operand dropped at
      // staleness s is also dropped at the next wider chunk, so the
      // refinement count cannot meaningfully DECREASE as s grows.
      std::vector<int> refinements;
      for (const index_t staleness : {0, 1, 3, 7}) {
        SspOptions ssp;
        ssp.staleness = staleness;
        ssp.tolerance = tol;
        ssp.max_refinements = 50;
        std::vector<double> x(n);
        const SspResult result = solver.solveBoundedStale(
            b, x, ssp, *ctx, solver.numThreads(), core::FoldPolicy::kModulo,
            StorageKind::kSharedCsr);
        EXPECT_TRUE(result.converged) << "staleness " << staleness;
        // Forward error <= ||L^{-1}||_inf * ||r||_inf, with the Ostrowski
        // comparison bound standing in for ||L^{-1}||_inf and a small
        // absolute floor for rounding in the comparison itself.
        EXPECT_LE(exec::maxAbsDiff(x, x_exact), kappa * tol + 1e-12)
            << "staleness " << staleness << " kappa " << kappa;
        refinements.push_back(result.refinements);
      }
      EXPECT_EQ(refinements.front(), 0);
      for (size_t k = 0; k + 1 < refinements.size(); ++k) {
        EXPECT_LE(refinements[k], refinements[k + 1] + 1)
            << "refinement count dropped from staleness index " << k;
      }
    }
  }
}

TEST(SspPlanChecks, ValidatorAcceptsShippedPlansAndRejectsViolations) {
  // Shipped path: the executor's own lists must validate clean.
  const auto lower = datagen::erdosRenyiLower({.n = 200, .p = 1.5e-2,
                                               .seed = 17});
  const auto dag = dag::Dag::fromLowerTriangular(lower);
  const auto schedule = core::growLocalSchedule(dag, {.num_cores = 3});
  exec::detail::FoldedLists lists;
  lists.verts.resize(3);
  lists.step_ptr.resize(3);
  for (int t = 0; t < 3; ++t) {
    auto& ptr = lists.step_ptr[static_cast<size_t>(t)];
    ptr.push_back(0);
    for (index_t s = 0; s < schedule.numSupersteps(); ++s) {
      const auto group = schedule.group(s, t);
      auto& verts = lists.verts[static_cast<size_t>(t)];
      verts.insert(verts.end(), group.begin(), group.end());
      ptr.push_back(static_cast<offset_t>(verts.size()));
    }
  }
  EXPECT_TRUE(
      check::validateSspPlan(lower, lists, schedule.numSupersteps()).ok);

  // A cross-thread dependency in the SAME superstep breaks the s=0
  // degeneracy precondition and must be rejected.
  const auto chain = datagen::chainLower(2);
  exec::detail::FoldedLists cross;
  cross.verts = {{1}, {0}};
  cross.step_ptr = {{0, 1}, {0, 1}};
  const auto bad_cross = check::validateSspPlan(chain, cross, 1);
  EXPECT_FALSE(bad_cross.ok);
  EXPECT_NE(bad_cross.message.find("cross-thread"), std::string::npos);

  // A same-thread dependency AGAINST the stream order is invalid however
  // wide the chunk is.
  exec::detail::FoldedLists backwards;
  backwards.verts = {{1, 0}};
  backwards.step_ptr = {{0, 2}};
  const auto bad_order = check::validateSspPlan(chain, backwards, 1);
  EXPECT_FALSE(bad_order.ok);
  EXPECT_NE(bad_order.message.find("stream order"), std::string::npos);

  // Ordered on one thread: fine (chunk width is irrelevant same-thread).
  exec::detail::FoldedLists serial;
  serial.verts = {{0, 1}};
  serial.step_ptr = {{0, 2}};
  EXPECT_TRUE(check::validateSspPlan(chain, serial, 1).ok);

  // Cross-thread in STRICTLY earlier supersteps: fine.
  exec::detail::FoldedLists staged;
  staged.verts = {{0}, {1}};
  staged.step_ptr = {{0, 1, 1}, {0, 0, 1}};
  EXPECT_TRUE(check::validateSspPlan(chain, staged, 2).ok);
}

TEST(SspExecutorShape, CtorValidationAndChunkArithmetic) {
  const auto lower = datagen::diagonalMatrix(6);
  exec::detail::FoldedLists lists;
  lists.verts = {{0, 1, 2}, {3, 4, 5}};
  lists.step_ptr = {{0, 2, 3}, {0, 2, 3}};
  const exec::SspExecutor ssp(lower, 2, lists);
  EXPECT_EQ(ssp.numThreads(), 2);
  EXPECT_EQ(ssp.numSupersteps(), 2);
  EXPECT_EQ(ssp.numChunks(0), 2);
  EXPECT_EQ(ssp.numChunks(1), 1);
  EXPECT_EQ(ssp.numChunks(100), 1);

  exec::detail::FoldedLists incomplete = lists;
  incomplete.verts[1].pop_back();
  EXPECT_THROW(exec::SspExecutor(lower, 2, incomplete),
               std::invalid_argument);
  exec::detail::FoldedLists bad_bounds = lists;
  bad_bounds.step_ptr[0] = {0, 3};
  EXPECT_THROW(exec::SspExecutor(lower, 2, bad_bounds),
               std::invalid_argument);
}

TEST(SspEngine, BoundedStaleTierServesResidualsAndCounts) {
  const auto lower = datagen::erdosRenyiLower({.n = 300, .p = 1e-2,
                                               .seed = 19});
  const auto n = static_cast<size_t>(lower.rows());
  SolverOptions solver_opts;
  solver_opts.num_threads = 2;
  auto solver = std::make_shared<const TriangularSolver>(
      TriangularSolver::analyze(lower, solver_opts));

  engine::EngineOptions opts;
  opts.num_workers = 2;
  opts.max_batch = 4;
  opts.tier = engine::ServiceTier::kBoundedStale;
  opts.stale_supersteps = 2;
  opts.stale_tolerance = 1e-8;
  engine::SolverEngine engine(opts);
  const auto id = engine.registerSolver(solver);

  std::vector<std::vector<double>> rhs;
  for (unsigned j = 0; j < 12; ++j) rhs.push_back(makeRhs(n, 1, j));
  std::vector<std::future<std::vector<double>>> futures;
  for (const auto& b : rhs) futures.push_back(engine.submit(id, b));
  // One multi-RHS request exercises the bounded-stale multi path too.
  futures.push_back(engine.submitMulti(id, makeRhs(n, 2, 99), 2));
  for (size_t j = 0; j < rhs.size(); ++j) {
    const auto x = futures[j].get();
    EXPECT_LE(exec::residualInf(lower, x, rhs[j]), opts.stale_tolerance)
        << "request " << j;
  }
  futures.back().get();
  engine.drain();

  const auto stats = engine.stats(id);
  EXPECT_GT(stats.batches, 0u);
  EXPECT_EQ(stats.batches_failed, 0u);
  EXPECT_EQ(stats.ssp_batches, stats.batches);
  EXPECT_LE(stats.last_residual, opts.stale_tolerance);
  EXPECT_EQ(stats.tiled_batches, 0u);  // tiled stays an exact-tier layout
  // Refinement counts are exported through the metrics registry.
  const auto text = engine.metrics().renderText();
  EXPECT_NE(text.find("sts.solver0.refine_iterations_count"),
            std::string::npos);

  // An exact-tier engine never reports SSP activity.
  engine::SolverEngine exact_engine({.num_workers = 1});
  const auto exact_id = exact_engine.registerSolver(solver);
  exact_engine.submit(exact_id, makeRhs(n, 1)).get();
  exact_engine.drain();
  EXPECT_EQ(exact_engine.stats(exact_id).ssp_batches, 0u);
  EXPECT_EQ(exact_engine.stats(exact_id).ssp_fallbacks, 0u);

  EXPECT_THROW(engine::SolverEngine({.stale_supersteps = -1}),
               std::invalid_argument);
  EXPECT_THROW(engine::SolverEngine({.stale_max_refine = -1}),
               std::invalid_argument);
}

TEST(SspEngine, StalenessZeroTierIsBitwiseExact) {
  const auto lower = datagen::grid2dLaplacian5(12, 12).lowerTriangle();
  const auto n = static_cast<size_t>(lower.rows());
  SolverOptions solver_opts;
  solver_opts.num_threads = 2;
  auto solver = std::make_shared<const TriangularSolver>(
      TriangularSolver::analyze(lower, solver_opts));
  engine::EngineOptions opts;
  opts.num_workers = 1;
  opts.tier = engine::ServiceTier::kBoundedStale;
  opts.stale_supersteps = 0;
  opts.stale_tolerance = kLooseTol;
  engine::SolverEngine engine(opts);
  const auto id = engine.registerSolver(solver);
  const auto b = makeRhs(n, 1);
  std::vector<double> expected(n);
  {
    auto ctx = solver->createContext();
    solver->solve(b, expected, *ctx);
  }
  EXPECT_EQ(engine.submit(id, b).get(), expected);
  engine.drain();
  const auto stats = engine.stats(id);
  EXPECT_EQ(stats.ssp_batches, stats.batches);
  EXPECT_EQ(stats.refine_iterations, 0u);
  EXPECT_EQ(stats.ssp_fallbacks, 0u);
}

}  // namespace
}  // namespace sts
