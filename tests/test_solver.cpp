#include "exec/solver.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <tuple>

#include "exec/serial.hpp"
#include "exec/verify.hpp"
#include "datagen/random_matrices.hpp"
#include "test_util.hpp"

namespace sts::exec {
namespace {

using sparse::CsrMatrix;

const std::vector<SchedulerKind> kAllKinds = {
    SchedulerKind::kGrowLocal, SchedulerKind::kFunnelGrowLocal,
    SchedulerKind::kWavefront, SchedulerKind::kHdagg,
    SchedulerKind::kSpmp,      SchedulerKind::kBspList,
    SchedulerKind::kSerial,
};

TEST(TriangularSolver, AllSchedulersSolveCorrectly) {
  const auto lower = datagen::erdosRenyiLower({.n = 800, .p = 4e-3, .seed = 50});
  const auto x_true = referenceSolution(lower.rows(), 51);
  const auto b = lower.multiply(x_true);
  for (const SchedulerKind kind : kAllKinds) {
    SolverOptions opts;
    opts.scheduler = kind;
    opts.num_threads = 2;
    auto solver = TriangularSolver::analyze(lower, opts);
    std::vector<double> x(b.size(), 0.0);
    solver.solve(b, x);
    EXPECT_LT(relMaxAbsDiff(x, x_true), 1e-8) << schedulerKindName(kind);
  }
}

/// Property sweep: (scheduler, reorder) x zoo must reproduce the serial
/// solution for every structural extreme.
class SolverProperty
    : public ::testing::TestWithParam<std::tuple<size_t, bool, size_t>> {};

TEST_P(SolverProperty, MatchesSerialSolve) {
  const auto [kind_idx, reorder, matrix_idx] = GetParam();
  const auto zoo = testutil::lowerTriangularZoo();
  const auto& entry = zoo[matrix_idx];
  SolverOptions opts;
  opts.scheduler = kAllKinds[kind_idx];
  opts.num_threads = 2;
  opts.reorder = reorder;
  auto solver = TriangularSolver::analyze(entry.lower, opts);
  const auto x_true = referenceSolution(entry.lower.rows(), 52);
  const auto b = entry.lower.multiply(x_true);
  std::vector<double> x(b.size(), 0.0), x_serial(b.size(), 0.0);
  solveLowerSerial(entry.lower, b, x_serial);
  for (int rep = 0; rep < 2; ++rep) {
    std::fill(x.begin(), x.end(), -1.0);
    solver.solve(b, x);
    EXPECT_LT(relMaxAbsDiff(x, x_serial), 1e-8)
        << schedulerKindName(opts.scheduler) << " reorder=" << reorder
        << " on " << entry.name;
  }
}

std::string solverPropertyName(
    const ::testing::TestParamInfo<std::tuple<size_t, bool, size_t>>& info) {
  const auto [kind_idx, reorder, matrix_idx] = info.param;
  const auto zoo = testutil::lowerTriangularZoo();
  std::string name = schedulerKindName(kAllKinds[kind_idx]) +
                     std::string(reorder ? "_reorder_" : "_plain_") +
                     zoo[matrix_idx].name;
  for (auto& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, SolverProperty,
    ::testing::Combine(::testing::Range<size_t>(0, 7), ::testing::Bool(),
                       ::testing::Range<size_t>(0, 11)),
    solverPropertyName);

TEST(TriangularSolver, UpperTriangularInput) {
  const auto lower = datagen::bandedLower(400, 8, 0.5, 53);
  const CsrMatrix upper = lower.transposed();
  const auto x_true = referenceSolution(400, 54);
  const auto b = upper.multiply(x_true);
  for (const bool reorder : {false, true}) {
    SolverOptions opts;
    opts.num_threads = 2;
    opts.reorder = reorder;
    auto solver = TriangularSolver::analyze(upper, opts);
    std::vector<double> x(b.size(), 0.0);
    solver.solve(b, x);
    EXPECT_LT(relMaxAbsDiff(x, x_true), 1e-8) << "reorder=" << reorder;
  }
}

TEST(TriangularSolver, BlockScheduledAnalysis) {
  const auto lower = datagen::erdosRenyiLower({.n = 1500, .p = 2e-3, .seed = 55});
  const auto x_true = referenceSolution(lower.rows(), 56);
  const auto b = lower.multiply(x_true);
  for (const int blocks : {2, 4}) {
    SolverOptions opts;
    opts.num_threads = 2;
    opts.num_schedule_blocks = blocks;
    auto solver = TriangularSolver::analyze(lower, opts);
    std::vector<double> x(b.size(), 0.0);
    solver.solve(b, x);
    EXPECT_LT(relMaxAbsDiff(x, x_true), 1e-8) << "blocks=" << blocks;
  }
}

TEST(TriangularSolver, RejectsNonTriangular) {
  const std::vector<Triplet> t = {{0, 0, 1.0}, {0, 1, 1.0}, {1, 0, 1.0},
                                  {1, 1, 1.0}};
  const CsrMatrix full = CsrMatrix::fromTriplets(2, 2, t);
  EXPECT_THROW(TriangularSolver::analyze(full), std::invalid_argument);
}

TEST(TriangularSolver, RejectsSingularDiagonal) {
  const std::vector<Triplet> t = {{0, 0, 1.0}, {1, 0, 1.0}};  // no (1,1)
  const CsrMatrix bad = CsrMatrix::fromTriplets(2, 2, t);
  EXPECT_THROW(TriangularSolver::analyze(bad), std::invalid_argument);
}

TEST(TriangularSolver, RejectsBadThreadCount) {
  const CsrMatrix id = CsrMatrix::identity(4);
  SolverOptions opts;
  opts.num_threads = 0;
  EXPECT_THROW(TriangularSolver::analyze(id, opts), std::invalid_argument);
}

TEST(TriangularSolver, ExposesScheduleAndStats) {
  const auto lower = datagen::bandedLower(600, 10, 0.5, 57);
  SolverOptions opts;
  opts.num_threads = 2;
  auto solver = TriangularSolver::analyze(lower, opts);
  EXPECT_EQ(solver.numRows(), 600);
  EXPECT_GT(solver.schedule().numSupersteps(), 0);
  EXPECT_GT(solver.stats().total_work, 0);
  EXPECT_GE(solver.analysisSeconds(), 0.0);
  EXPECT_GT(solver.stats().wavefront_reduction, 1.0);
}

/// solveMultiRhs must reproduce nrhs independent solve() calls bitwise:
/// the multi-RHS kernels run the identical arithmetic sequence per column.
TEST(TriangularSolver, SolveMultiRhsMatchesIndependentSolves) {
  const auto lower = datagen::erdosRenyiLower({.n = 600, .p = 5e-3, .seed = 60});
  constexpr index_t kNrhs = 4;
  const auto n = static_cast<size_t>(lower.rows());
  const struct {
    SchedulerKind kind;
    bool reorder;
  } configs[] = {{SchedulerKind::kGrowLocal, true},
                 {SchedulerKind::kGrowLocal, false},
                 {SchedulerKind::kSpmp, false}};
  for (const auto& config : configs) {
    SolverOptions opts;
    opts.scheduler = config.kind;
    opts.num_threads = 2;
    opts.reorder = config.reorder;
    auto solver = TriangularSolver::analyze(lower, opts);

    std::vector<double> b_multi(n * kNrhs), x_multi(n * kNrhs, 0.0);
    std::vector<std::vector<double>> expected;
    for (index_t c = 0; c < kNrhs; ++c) {
      const auto x_true = referenceSolution(lower.rows(), 61 + c);
      const auto b = lower.multiply(x_true);
      for (size_t i = 0; i < n; ++i) {
        b_multi[i * kNrhs + static_cast<size_t>(c)] = b[i];
      }
      expected.emplace_back(n, 0.0);
      solver.solve(b, expected.back());
    }
    solver.solveMultiRhs(b_multi, x_multi, kNrhs);
    for (index_t c = 0; c < kNrhs; ++c) {
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(x_multi[i * kNrhs + static_cast<size_t>(c)],
                  expected[static_cast<size_t>(c)][i])
            << schedulerKindName(config.kind) << " reorder="
            << config.reorder << " rhs " << c << " row " << i;
      }
    }
  }
}

/// solvePermuted on manually permuted vectors must round-trip to exactly
/// what solve() produces (solve() is the permute -> solvePermuted ->
/// unpermute composition).
TEST(TriangularSolver, SolvePermutedRoundTripMatchesSolve) {
  const auto lower = datagen::bandedLower(500, 9, 0.5, 62);
  SolverOptions opts;
  opts.num_threads = 2;
  opts.reorder = true;
  auto solver = TriangularSolver::analyze(lower, opts);
  ASSERT_TRUE(solver.isPermuted());
  const auto perm = solver.permutation();
  const auto n = static_cast<size_t>(lower.rows());

  const auto x_true = referenceSolution(lower.rows(), 63);
  const auto b = lower.multiply(x_true);
  std::vector<double> x_direct(n, 0.0);
  solver.solve(b, x_direct);

  std::vector<double> b_perm(n), x_perm(n, 0.0), x_round(n, 0.0);
  for (size_t i = 0; i < n; ++i) b_perm[i] = b[static_cast<size_t>(perm[i])];
  solver.solvePermuted(b_perm, x_perm);
  for (size_t i = 0; i < n; ++i) {
    x_round[static_cast<size_t>(perm[i])] = x_perm[i];
  }
  EXPECT_EQ(x_direct, x_round);
}

/// The SolveContext reentrancy contract at the facade level: concurrent
/// solves with distinct contexts on one analyzed solver are safe and
/// bitwise-deterministic.
TEST(TriangularSolver, ConcurrentContextsSolveIndependently) {
  const auto lower = datagen::erdosRenyiLower({.n = 500, .p = 6e-3, .seed = 64});
  SolverOptions opts;
  opts.num_threads = 2;
  opts.reorder = false;  // BspExecutor path: bit-identical to serial
  const auto solver = TriangularSolver::analyze(lower, opts);

  constexpr int kThreads = 4;
  std::vector<std::vector<double>> rhs, expected;
  for (int t = 0; t < kThreads; ++t) {
    const auto x_true = referenceSolution(lower.rows(), 65 + t);
    rhs.push_back(lower.multiply(x_true));
    expected.emplace_back(rhs.back().size(), 0.0);
    solveLowerSerial(lower, rhs.back(), expected.back());
  }

  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto ctx = solver.createContext();
      std::vector<double> x(rhs[static_cast<size_t>(t)].size(), 0.0);
      for (int rep = 0; rep < 3; ++rep) {
        std::fill(x.begin(), x.end(), -1.0);
        solver.solve(rhs[static_cast<size_t>(t)], x, *ctx);
        if (x != expected[static_cast<size_t>(t)]) {
          failures[static_cast<size_t>(t)] += 1;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[static_cast<size_t>(t)], 0) << "thread " << t;
  }
}

TEST(TriangularSolver, ContextShapeMismatchThrows) {
  const auto lower_a = datagen::bandedLower(100, 4, 0.5, 66);
  const auto lower_b = datagen::bandedLower(120, 4, 0.5, 67);
  SolverOptions opts;
  opts.num_threads = 2;
  auto solver_a = TriangularSolver::analyze(lower_a, opts);
  auto solver_b = TriangularSolver::analyze(lower_b, opts);
  auto ctx_b = solver_b.createContext();
  std::vector<double> b(100, 1.0), x(100, 0.0);
  EXPECT_THROW(solver_a.solve(b, x, *ctx_b), std::invalid_argument);
}

TEST(TriangularSolver, SolveSizeMismatchThrows) {
  const CsrMatrix id = CsrMatrix::identity(4);
  auto solver = TriangularSolver::analyze(id);
  std::vector<double> b(3, 1.0), x(4, 0.0);
  EXPECT_THROW(solver.solve(b, x), std::invalid_argument);
}

}  // namespace
}  // namespace sts::exec
