#include "exec/solver.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "exec/serial.hpp"
#include "exec/verify.hpp"
#include "datagen/random_matrices.hpp"
#include "test_util.hpp"

namespace sts::exec {
namespace {

using sparse::CsrMatrix;

const std::vector<SchedulerKind> kAllKinds = {
    SchedulerKind::kGrowLocal, SchedulerKind::kFunnelGrowLocal,
    SchedulerKind::kWavefront, SchedulerKind::kHdagg,
    SchedulerKind::kSpmp,      SchedulerKind::kBspList,
    SchedulerKind::kSerial,
};

TEST(TriangularSolver, AllSchedulersSolveCorrectly) {
  const auto lower = datagen::erdosRenyiLower({.n = 800, .p = 4e-3, .seed = 50});
  const auto x_true = referenceSolution(lower.rows(), 51);
  const auto b = lower.multiply(x_true);
  for (const SchedulerKind kind : kAllKinds) {
    SolverOptions opts;
    opts.scheduler = kind;
    opts.num_threads = 2;
    auto solver = TriangularSolver::analyze(lower, opts);
    std::vector<double> x(b.size(), 0.0);
    solver.solve(b, x);
    EXPECT_LT(relMaxAbsDiff(x, x_true), 1e-8) << schedulerKindName(kind);
  }
}

/// Property sweep: (scheduler, reorder) x zoo must reproduce the serial
/// solution for every structural extreme.
class SolverProperty
    : public ::testing::TestWithParam<std::tuple<size_t, bool, size_t>> {};

TEST_P(SolverProperty, MatchesSerialSolve) {
  const auto [kind_idx, reorder, matrix_idx] = GetParam();
  const auto zoo = testutil::lowerTriangularZoo();
  const auto& entry = zoo[matrix_idx];
  SolverOptions opts;
  opts.scheduler = kAllKinds[kind_idx];
  opts.num_threads = 2;
  opts.reorder = reorder;
  auto solver = TriangularSolver::analyze(entry.lower, opts);
  const auto x_true = referenceSolution(entry.lower.rows(), 52);
  const auto b = entry.lower.multiply(x_true);
  std::vector<double> x(b.size(), 0.0), x_serial(b.size(), 0.0);
  solveLowerSerial(entry.lower, b, x_serial);
  for (int rep = 0; rep < 2; ++rep) {
    std::fill(x.begin(), x.end(), -1.0);
    solver.solve(b, x);
    EXPECT_LT(relMaxAbsDiff(x, x_serial), 1e-8)
        << schedulerKindName(opts.scheduler) << " reorder=" << reorder
        << " on " << entry.name;
  }
}

std::string solverPropertyName(
    const ::testing::TestParamInfo<std::tuple<size_t, bool, size_t>>& info) {
  const auto [kind_idx, reorder, matrix_idx] = info.param;
  const auto zoo = testutil::lowerTriangularZoo();
  std::string name = schedulerKindName(kAllKinds[kind_idx]) +
                     std::string(reorder ? "_reorder_" : "_plain_") +
                     zoo[matrix_idx].name;
  for (auto& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, SolverProperty,
    ::testing::Combine(::testing::Range<size_t>(0, 7), ::testing::Bool(),
                       ::testing::Range<size_t>(0, 11)),
    solverPropertyName);

TEST(TriangularSolver, UpperTriangularInput) {
  const auto lower = datagen::bandedLower(400, 8, 0.5, 53);
  const CsrMatrix upper = lower.transposed();
  const auto x_true = referenceSolution(400, 54);
  const auto b = upper.multiply(x_true);
  for (const bool reorder : {false, true}) {
    SolverOptions opts;
    opts.num_threads = 2;
    opts.reorder = reorder;
    auto solver = TriangularSolver::analyze(upper, opts);
    std::vector<double> x(b.size(), 0.0);
    solver.solve(b, x);
    EXPECT_LT(relMaxAbsDiff(x, x_true), 1e-8) << "reorder=" << reorder;
  }
}

TEST(TriangularSolver, BlockScheduledAnalysis) {
  const auto lower = datagen::erdosRenyiLower({.n = 1500, .p = 2e-3, .seed = 55});
  const auto x_true = referenceSolution(lower.rows(), 56);
  const auto b = lower.multiply(x_true);
  for (const int blocks : {2, 4}) {
    SolverOptions opts;
    opts.num_threads = 2;
    opts.num_schedule_blocks = blocks;
    auto solver = TriangularSolver::analyze(lower, opts);
    std::vector<double> x(b.size(), 0.0);
    solver.solve(b, x);
    EXPECT_LT(relMaxAbsDiff(x, x_true), 1e-8) << "blocks=" << blocks;
  }
}

TEST(TriangularSolver, RejectsNonTriangular) {
  const std::vector<Triplet> t = {{0, 0, 1.0}, {0, 1, 1.0}, {1, 0, 1.0},
                                  {1, 1, 1.0}};
  const CsrMatrix full = CsrMatrix::fromTriplets(2, 2, t);
  EXPECT_THROW(TriangularSolver::analyze(full), std::invalid_argument);
}

TEST(TriangularSolver, RejectsSingularDiagonal) {
  const std::vector<Triplet> t = {{0, 0, 1.0}, {1, 0, 1.0}};  // no (1,1)
  const CsrMatrix bad = CsrMatrix::fromTriplets(2, 2, t);
  EXPECT_THROW(TriangularSolver::analyze(bad), std::invalid_argument);
}

TEST(TriangularSolver, RejectsBadThreadCount) {
  const CsrMatrix id = CsrMatrix::identity(4);
  SolverOptions opts;
  opts.num_threads = 0;
  EXPECT_THROW(TriangularSolver::analyze(id, opts), std::invalid_argument);
}

TEST(TriangularSolver, ExposesScheduleAndStats) {
  const auto lower = datagen::bandedLower(600, 10, 0.5, 57);
  SolverOptions opts;
  opts.num_threads = 2;
  auto solver = TriangularSolver::analyze(lower, opts);
  EXPECT_EQ(solver.numRows(), 600);
  EXPECT_GT(solver.schedule().numSupersteps(), 0);
  EXPECT_GT(solver.stats().total_work, 0);
  EXPECT_GE(solver.analysisSeconds(), 0.0);
  EXPECT_GT(solver.stats().wavefront_reduction, 1.0);
}

TEST(TriangularSolver, SolveSizeMismatchThrows) {
  const CsrMatrix id = CsrMatrix::identity(4);
  auto solver = TriangularSolver::analyze(id);
  std::vector<double> b(3, 1.0), x(4, 0.0);
  EXPECT_THROW(solver.solve(b, x), std::invalid_argument);
}

}  // namespace
}  // namespace sts::exec
