#include <gtest/gtest.h>

#include <sstream>

#include "sparse/mm_io.hpp"
#include "sparse/permute.hpp"
#include "datagen/random_matrices.hpp"

namespace sts::sparse {
namespace {

TEST(Permute, IsPermutation) {
  EXPECT_TRUE(isPermutation(std::vector<index_t>{}));
  EXPECT_TRUE(isPermutation(std::vector<index_t>{0}));
  EXPECT_TRUE(isPermutation(std::vector<index_t>{2, 0, 1}));
  EXPECT_FALSE(isPermutation(std::vector<index_t>{0, 0}));
  EXPECT_FALSE(isPermutation(std::vector<index_t>{1, 2}));
  EXPECT_FALSE(isPermutation(std::vector<index_t>{-1, 0}));
}

TEST(Permute, InverseRoundTrip) {
  const std::vector<index_t> p = {3, 1, 0, 2};
  const auto inv = inversePermutation(p);
  EXPECT_EQ(inv, (std::vector<index_t>{2, 1, 3, 0}));
  EXPECT_EQ(inversePermutation(inv), p);
  EXPECT_THROW(inversePermutation(std::vector<index_t>{0, 0}),
               std::invalid_argument);
}

TEST(Permute, VectorRoundTrip) {
  const std::vector<index_t> p = {2, 0, 1};
  const std::vector<double> v = {10.0, 20.0, 30.0};
  const auto permuted = permuteVector(v, p);
  EXPECT_EQ(permuted, (std::vector<double>{30.0, 10.0, 20.0}));
  EXPECT_EQ(unpermuteVector(permuted, p), v);
}

TEST(Permute, Composition) {
  // c = a after b: c[i] = a[b[i]].
  const std::vector<index_t> a = {1, 2, 0};
  const std::vector<index_t> b = {2, 0, 1};
  const auto c = composePermutations(a, b);
  EXPECT_EQ(c, (std::vector<index_t>{0, 1, 2}));
  // Permuting twice equals permuting by the composition.
  const std::vector<double> v = {5.0, 7.0, 9.0};
  const auto two_step = permuteVector(permuteVector(v, a), b);
  EXPECT_EQ(two_step, permuteVector(v, c));
}

TEST(MatrixMarket, WriteReadRoundTrip) {
  const auto m = datagen::erdosRenyiLower({.n = 60, .p = 0.05, .seed = 60});
  std::stringstream buf;
  writeMatrixMarket(buf, m);
  const auto data = readMatrixMarket(buf);
  EXPECT_EQ(data.rows, 60);
  EXPECT_EQ(data.cols, 60);
  const auto m2 = CsrMatrix::fromTriplets(data.rows, data.cols, data.entries);
  EXPECT_TRUE(m2.structureEquals(m));
  EXPECT_TRUE(m2.almostEquals(m, 0.0));  // 17 digits: lossless
}

TEST(MatrixMarket, ReadsSymmetric) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% comment line\n"
      "3 3 3\n"
      "1 1 2.0\n"
      "2 1 -1.0\n"
      "3 3 5.0\n");
  const auto data = readMatrixMarket(in);
  EXPECT_TRUE(data.symmetric);
  const auto m = CsrMatrix::fromTriplets(data.rows, data.cols, data.entries);
  EXPECT_DOUBLE_EQ(m.at(0, 1), -1.0);  // mirrored
  EXPECT_DOUBLE_EQ(m.at(1, 0), -1.0);
  EXPECT_EQ(m.nnz(), 4);  // diagonal not duplicated
}

TEST(MatrixMarket, ReadsPattern) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 1\n");
  const auto data = readMatrixMarket(in);
  EXPECT_TRUE(data.pattern);
  const auto m = CsrMatrix::fromTriplets(data.rows, data.cols, data.entries);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 1.0);
}

TEST(MatrixMarket, ReadsInteger) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 1\n"
      "2 2 7\n");
  const auto data = readMatrixMarket(in);
  const auto m = CsrMatrix::fromTriplets(data.rows, data.cols, data.entries);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 7.0);
}

TEST(MatrixMarket, RejectsBadBanner) {
  std::stringstream in("%%NotMatrixMarket matrix coordinate real general\n");
  EXPECT_THROW(readMatrixMarket(in), std::runtime_error);
  std::stringstream in2("%%MatrixMarket matrix array real general\n2 2\n");
  EXPECT_THROW(readMatrixMarket(in2), std::runtime_error);
}

TEST(MatrixMarket, RejectsCountMismatch) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.0\n");
  EXPECT_THROW(readMatrixMarket(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsOutOfRangeEntry) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n");
  EXPECT_THROW(readMatrixMarket(in), std::runtime_error);
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW(readMatrixMarketFile("/nonexistent/matrix.mtx"),
               std::runtime_error);
}

}  // namespace
}  // namespace sts::sparse
