#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <random>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "datagen/random_matrices.hpp"
#include "engine/core_budget.hpp"
#include "engine/solver_engine.hpp"
#include "exec/affinity.hpp"
#include "exec/solver.hpp"
#include "exec/verify.hpp"
#include "test_util.hpp"

/// \file test_affinity.cpp
/// The core-set affinity layer: CoreBudget's core-set mode hands out
/// provably DISJOINT CPU-id sets under concurrent acquire/release (the
/// TSan-covered "never overlap" invariant), the exec affinity helpers pin
/// and restore correctly (and degrade to no-ops without platform support),
/// pinned solves are bitwise identical to unpinned ones for every executor
/// kind, and a pin_threads engine serves bitwise results while reporting
/// its pin/migration counters.

namespace sts {
namespace {

using engine::CoreBudget;
using exec::SchedulerKind;
using exec::SolverOptions;
using exec::TriangularSolver;

// ------------------------------------------------------- core-set budget --

TEST(CoreSetBudget, GrantsExplicitDisjointIds) {
  CoreBudget budget(std::vector<int>{2, 4, 6, 8});
  EXPECT_TRUE(budget.limited());
  EXPECT_TRUE(budget.hasCoreSet());
  EXPECT_EQ(budget.total(), 4);
  ASSERT_EQ(budget.coreSet().size(), 4u);
  EXPECT_EQ(budget.coreSet()[0], 2);  // stored sorted

  auto a = budget.acquire(3);
  EXPECT_EQ(a.count, 3);
  ASSERT_EQ(a.ids.size(), 3u);
  // Lowest free ids first: repeated bursts land on the same cores.
  EXPECT_EQ(a.ids, (std::vector<int>{2, 4, 6}));

  // Partial grant: the one remaining id, disjoint from the first grant.
  auto partial = budget.acquire(3);
  EXPECT_EQ(partial.count, 1);
  ASSERT_EQ(partial.ids.size(), 1u);
  EXPECT_EQ(partial.ids.front(), 8);
  EXPECT_EQ(budget.inUse(), 4);
  EXPECT_EQ(budget.throttledAcquires(), 1u);

  // Release returns those exact ids; the next grant sees them again.
  budget.release(std::move(a));
  auto b = budget.acquire(2);
  EXPECT_EQ(b.ids, (std::vector<int>{2, 4}));
  budget.release(std::move(b));
  budget.release(std::move(partial));
  EXPECT_EQ(budget.inUse(), 0);
  EXPECT_EQ(budget.peakInUse(), 4);
}

TEST(CoreSetBudget, RejectsBadSetsAndMismatchedReleases) {
  EXPECT_THROW(CoreBudget(std::vector<int>{}), std::invalid_argument);
  EXPECT_THROW(CoreBudget(std::vector<int>{0, 1, 1}), std::invalid_argument);
  EXPECT_THROW(CoreBudget(std::vector<int>{-1, 0}), std::invalid_argument);

  CoreBudget budget(std::vector<int>{0, 1});
  auto grant = budget.acquire(1);
  CoreBudget::Grant sliced;
  sliced.count = grant.count;  // ids lost: release must refuse
  EXPECT_THROW(budget.release(std::move(sliced)), std::invalid_argument);
  budget.release(std::move(grant));
  EXPECT_EQ(budget.inUse(), 0);
}

TEST(CoreSetBudget, LeaseExposesCores) {
  CoreBudget budget(std::vector<int>{3, 5});
  {
    CoreBudget::Lease lease(budget, 2, 1);
    EXPECT_EQ(lease.granted(), 2);
    ASSERT_EQ(lease.cores().size(), 2u);
    EXPECT_EQ(lease.cores()[0], 3);
    EXPECT_EQ(lease.cores()[1], 5);
    EXPECT_EQ(budget.inUse(), 2);
  }
  EXPECT_EQ(budget.inUse(), 0);

  // Counting-mode leases stay anonymous.
  CoreBudget counting(2);
  CoreBudget::Lease lease(counting, 2, 1);
  EXPECT_EQ(lease.granted(), 2);
  EXPECT_TRUE(lease.cores().empty());
}

/// The tentpole invariant, checked from the outside: under concurrent
/// acquire/release no CPU id is ever leased to two grants at once, and the
/// aggregate never exceeds the set size. Runs under TSan in CI.
TEST(CoreSetBudget, ConcurrentLeasesAreDisjoint) {
  constexpr int kCores = 6;
  constexpr int kThreads = 8;
  constexpr int kIterations = 200;
  std::vector<int> set(kCores);
  for (int c = 0; c < kCores; ++c) set[static_cast<size_t>(c)] = c;
  CoreBudget budget{std::vector<int>(set)};

  std::array<std::atomic<int>, kCores> owners{};
  std::atomic<int> outstanding{0};
  std::atomic<int> violations{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      std::mt19937 rng(static_cast<unsigned>(i));
      for (int it = 0; it < kIterations; ++it) {
        const int desired = 1 + static_cast<int>(rng() % 4);
        CoreBudget::Lease lease(budget, desired, 1);
        if (static_cast<int>(lease.cores().size()) != lease.granted()) {
          violations.fetch_add(1);
        }
        for (const int id : lease.cores()) {
          // fetch_add returning nonzero = some other live lease holds id.
          if (owners[static_cast<size_t>(id)].fetch_add(1) != 0) {
            violations.fetch_add(1);
          }
        }
        const int now =
            outstanding.fetch_add(lease.granted()) + lease.granted();
        if (now > kCores) violations.fetch_add(1);
        outstanding.fetch_sub(lease.granted());
        for (const int id : lease.cores()) {
          owners[static_cast<size_t>(id)].fetch_sub(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(budget.inUse(), 0);
  EXPECT_LE(budget.peakInUse(), kCores);
}

// ------------------------------------------------------ affinity helpers --

TEST(Affinity, QueriesMatchSupport) {
  if (!exec::affinitySupported()) {
    EXPECT_TRUE(exec::systemCoreSet().empty());
    EXPECT_TRUE(exec::threadAffinity().empty());
    EXPECT_EQ(exec::currentCpu(), -1);
    return;
  }
  const auto set = exec::systemCoreSet();
  ASSERT_FALSE(set.empty());
  EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
  const int cpu = exec::currentCpu();
  EXPECT_NE(std::find(set.begin(), set.end(), cpu), set.end())
      << "running CPU must be in the process core set";
  EXPECT_FALSE(exec::threadAffinity().empty());
}

TEST(Affinity, ScopedPinPinsAndRestores) {
  const auto set = exec::systemCoreSet();
  if (!exec::affinitySupported()) {
    const std::vector<int> fake{0};
    const exec::ScopedPin pin(fake, 0);
    EXPECT_FALSE(pin.pinned());  // portable fallback: documented no-op
    EXPECT_FALSE(pin.migrated());
    return;
  }
  ASSERT_FALSE(set.empty());
  const auto before = exec::threadAffinity();
  {
    const exec::ScopedPin pin(set, 0);
    ASSERT_TRUE(pin.pinned());
    EXPECT_EQ(pin.cpu(), set.front());
    EXPECT_EQ(exec::threadAffinity(), std::vector<int>{set.front()})
        << "while pinned the thread mask is exactly the target core";
    EXPECT_EQ(exec::currentCpu(), set.front());
  }
  EXPECT_EQ(exec::threadAffinity(), before)
      << "destruction must restore the previous mask";

  // Rank wraps around the set: rank == size pins to the first core again.
  const exec::ScopedPin wrapped(set, static_cast<int>(set.size()));
  EXPECT_TRUE(wrapped.pinned());
  EXPECT_EQ(wrapped.cpu(), set.front());

  // Empty set: inactive by contract.
  const exec::ScopedPin idle(std::vector<int>{}, 0);
  EXPECT_FALSE(idle.pinned());
}

// -------------------------------------------------- pinned solve bitwise --

struct KindConfig {
  SchedulerKind kind;
  bool reorder;  ///< true exercises ContiguousBspExecutor for GrowLocal
};

/// Pinning is placement only: for every executor kind (BSP, contiguous
/// BSP, P2P — and serial) a solve on a pinned context is bitwise identical
/// to the unpinned solve, at full width and folded.
TEST(Affinity, PinnedSolveBitwiseMatchesUnpinned) {
  const auto lower = datagen::bandedLower(240, 7, 0.5, 91);
  const auto x_true = exec::referenceSolution(lower.rows(), 92);
  const auto b = lower.multiply(x_true);
  const int width = 4;

  std::vector<int> pin_set = exec::systemCoreSet();
  if (pin_set.empty()) pin_set = {0};  // unsupported: ScopedPin no-ops

  const std::vector<KindConfig> kinds = {
      {SchedulerKind::kGrowLocal, true},   // ContiguousBspExecutor
      {SchedulerKind::kGrowLocal, false},  // BspExecutor
      {SchedulerKind::kFunnelGrowLocal, true},
      {SchedulerKind::kWavefront, false},
      {SchedulerKind::kHdagg, false},
      {SchedulerKind::kBspList, false},
      {SchedulerKind::kSpmp, false},  // P2pExecutor
      {SchedulerKind::kSerial, false},
  };
  for (const auto& kc : kinds) {
    SolverOptions opts;
    opts.scheduler = kc.kind;
    opts.num_threads = width;
    opts.reorder = kc.reorder;
    const auto solver = TriangularSolver::analyze(lower, opts);

    for (int team = 1; team <= solver.numThreads(); ++team) {
      std::vector<double> x_plain(b.size(), 0.0);
      std::vector<double> x_pinned(b.size(), 1.0);
      {
        auto ctx = solver.createContext();
        solver.solve(b, x_plain, *ctx, team);
      }
      {
        auto ctx = solver.createContext();
        ctx->setPinnedCores(pin_set);
        solver.solve(b, x_pinned, *ctx, team);
        if (exec::affinitySupported()) {
          EXPECT_GT(ctx->pinnedThreads(), 0u)
              << exec::schedulerKindName(kc.kind) << " team " << team;
        }
        ctx->clearPinnedCores();
        EXPECT_EQ(ctx->pinnedThreads(), 0u);  // clear resets the counters
      }
      EXPECT_EQ(x_pinned, x_plain)
          << exec::schedulerKindName(kc.kind) << " reorder " << kc.reorder
          << " team " << team;
    }
  }
}

// --------------------------------------------------------- pinned engine --

std::shared_ptr<const TriangularSolver> analyzeWidth(
    const sparse::CsrMatrix& lower, int width) {
  SolverOptions opts;
  opts.num_threads = width;
  opts.reorder = false;
  return std::make_shared<const TriangularSolver>(
      TriangularSolver::analyze(lower, opts));
}

/// pin_threads end to end: results stay bitwise, every batch is pinned
/// (when the platform supports it), and the budget's core-set invariants
/// hold across concurrent workers. Runs under TSan in CI.
TEST(AffinityEngine, PinnedServingIsBitwiseAndCounted) {
  const auto lower = datagen::bandedLower(300, 8, 0.5, 93);
  auto solver = analyzeWidth(lower, 4);
  const auto x_true = exec::referenceSolution(lower.rows(), 94);
  const auto b = lower.multiply(x_true);
  std::vector<double> expected(b.size(), 0.0);
  {
    auto ctx = solver->createContext();
    solver->solve(b, expected, *ctx, solver->numThreads());
  }

  engine::EngineOptions options;
  options.num_workers = 4;
  options.coalesce = false;  // one batch per request: maximal contention
  options.start_paused = true;
  options.team_size = 4;
  options.pin_threads = true;  // core set auto-detected from the process
  engine::SolverEngine engine(options);
  const auto id = engine.registerSolver(solver);

  constexpr int kRequests = 32;
  std::vector<std::future<std::vector<double>>> futures;
  for (int r = 0; r < kRequests; ++r) futures.push_back(engine.submit(id, b));
  engine.resume();
  for (auto& f : futures) EXPECT_EQ(f.get(), expected);
  engine.drain();

  const auto stats = engine.stats(id);
  EXPECT_EQ(stats.rhs_solved, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(engine.coreBudget().inUse(), 0);
  if (exec::affinitySupported()) {
    const int cores = static_cast<int>(exec::systemCoreSet().size());
    EXPECT_TRUE(engine.coreBudget().hasCoreSet());
    EXPECT_EQ(engine.coreBudget().total(), cores);
    EXPECT_LE(engine.coreBudget().peakInUse(), cores);
    EXPECT_EQ(stats.pinned_batches, stats.batches)
        << "every batch must execute on a pinned team";
    EXPECT_GE(stats.pinned_threads, stats.pinned_batches)
        << "each pinned batch pins at least one team member";
    // Teams never exceed the disjoint core set they leased.
    EXPECT_LE(stats.mean_team_size, static_cast<double>(cores));
  } else {
    EXPECT_FALSE(engine.coreBudget().hasCoreSet());
    EXPECT_EQ(stats.pinned_batches, 0u);
    EXPECT_EQ(stats.pinned_threads, 0u);
  }
}

/// core_budget caps how much of an explicit core_set is usable (the
/// option-interaction table in engine/types.hpp).
TEST(AffinityEngine, CoreBudgetTruncatesCoreSet) {
  const auto lower = datagen::bandedLower(200, 6, 0.5, 95);
  auto solver = analyzeWidth(lower, 4);
  const auto x_true = exec::referenceSolution(lower.rows(), 96);
  const auto b = lower.multiply(x_true);
  std::vector<double> expected(b.size(), 0.0);
  {
    auto ctx = solver->createContext();
    solver->solve(b, expected, *ctx, solver->numThreads());
  }

  std::vector<int> set = exec::systemCoreSet();
  if (set.empty()) set = {0};  // explicit sets work without pinning too

  engine::EngineOptions options;
  options.num_workers = 2;
  options.start_paused = true;
  options.core_set = set;
  options.core_budget = 1;  // usable slice of the set: exactly one id
  engine::SolverEngine engine(options);
  EXPECT_TRUE(engine.coreBudget().hasCoreSet());
  EXPECT_EQ(engine.coreBudget().total(), 1);
  ASSERT_EQ(engine.coreBudget().coreSet().size(), 1u);
  EXPECT_EQ(engine.coreBudget().coreSet()[0],
            *std::min_element(set.begin(), set.end()));

  const auto id = engine.registerSolver(solver);
  std::vector<std::future<std::vector<double>>> futures;
  for (int r = 0; r < 8; ++r) futures.push_back(engine.submit(id, b));
  engine.resume();
  for (auto& f : futures) EXPECT_EQ(f.get(), expected);
  engine.drain();

  const auto stats = engine.stats(id);
  EXPECT_LE(engine.coreBudget().peakInUse(), 1);
  EXPECT_DOUBLE_EQ(stats.mean_team_size, 1.0)
      << "a one-core budget admits only one-thread teams";
}

}  // namespace
}  // namespace sts
