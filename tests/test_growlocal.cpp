#include "core/growlocal.hpp"

#include <gtest/gtest.h>

#include "baselines/wavefront.hpp"
#include "dag/dag.hpp"
#include "dag/wavefronts.hpp"
#include "datagen/random_matrices.hpp"
#include "test_util.hpp"

namespace sts::core {
namespace {

using dag::Dag;

TEST(GrowLocal, EmptyDag) {
  const Dag d;
  const Schedule s = growLocalSchedule(d, {.num_cores = 2});
  EXPECT_EQ(s.numSupersteps(), 0);
  EXPECT_TRUE(validateSchedule(d, s).ok);
}

TEST(GrowLocal, SingleVertex) {
  const Dag d = Dag::fromLowerTriangular(datagen::diagonalMatrix(1));
  const Schedule s = growLocalSchedule(d, {.num_cores = 4});
  EXPECT_EQ(s.numSupersteps(), 1);
  EXPECT_TRUE(validateSchedule(d, s).ok);
}

TEST(GrowLocal, SingleCoreProducesOneSuperstep) {
  // With one core there is never a reason to insert a barrier.
  const Dag d = Dag::fromLowerTriangular(
      datagen::erdosRenyiLower({.n = 400, .p = 5e-3, .seed = 2}));
  const Schedule s = growLocalSchedule(d, {.num_cores = 1});
  EXPECT_EQ(s.numSupersteps(), 1);
  EXPECT_TRUE(validateSchedule(d, s).ok);
}

TEST(GrowLocal, ChainStaysOnOneCoreInOneSuperstep) {
  // A pure chain has no parallelism; GrowLocal must not split it across
  // cores (that would only add barriers).
  const Dag d = Dag::fromLowerTriangular(datagen::chainLower(500));
  const Schedule s = growLocalSchedule(d, {.num_cores = 2});
  EXPECT_TRUE(validateSchedule(d, s).ok);
  EXPECT_EQ(s.numSupersteps(), 1);
  // All vertices on one core.
  for (index_t v = 1; v < d.numVertices(); ++v) {
    EXPECT_EQ(s.coreOf(v), s.coreOf(0));
  }
}

TEST(GrowLocal, DiagonalMatrixBalancesAcrossCores) {
  const Dag d = Dag::fromLowerTriangular(datagen::diagonalMatrix(1000));
  const Schedule s = growLocalSchedule(d, {.num_cores = 4});
  EXPECT_TRUE(validateSchedule(d, s).ok);
  // The geometric alpha growth can leave a small remainder superstep, but
  // a fully parallel workload must not fragment beyond that.
  EXPECT_LE(s.numSupersteps(), 2);
  // Perfectly parallel work: every core gets a share.
  std::vector<int> counts(4, 0);
  for (index_t v = 0; v < d.numVertices(); ++v) ++counts[s.coreOf(v)];
  for (int p = 0; p < 4; ++p) EXPECT_GT(counts[p], 0) << "core " << p;
}

TEST(GrowLocal, ValidOnZooAcrossCoreCounts) {
  for (const auto& [name, lower] : testutil::lowerTriangularZoo()) {
    const Dag d = Dag::fromLowerTriangular(lower);
    for (const int cores : {1, 2, 3, 5}) {
      const Schedule s = growLocalSchedule(d, {.num_cores = cores});
      const auto v = validateSchedule(d, s);
      EXPECT_TRUE(v.ok) << name << " cores=" << cores << ": " << v.message;
    }
  }
}

TEST(GrowLocal, FarFewerBarriersThanWavefronts) {
  // The headline structural claim (Table 7.2): supersteps << wavefronts on
  // SuiteSparse-like and narrow-band inputs.
  const auto lower = datagen::narrowBandLower(
      {.n = 4000, .p = 0.14, .b = 10.0, .seed = 3});
  const Dag d = Dag::fromLowerTriangular(lower);
  const index_t wavefronts = dag::criticalPathLength(d);
  const Schedule s = growLocalSchedule(d, {.num_cores = 2});
  EXPECT_TRUE(validateSchedule(d, s).ok);
  EXPECT_LT(s.numSupersteps() * 5, wavefronts)
      << "supersteps=" << s.numSupersteps() << " wavefronts=" << wavefronts;
}

TEST(GrowLocal, FewerBarriersThanWavefrontScheduler) {
  const auto lower = datagen::erdosRenyiLower({.n = 3000, .p = 2e-3, .seed = 4});
  const Dag d = Dag::fromLowerTriangular(lower);
  const Schedule gl = growLocalSchedule(d, {.num_cores = 2});
  const Schedule wf = baselines::wavefrontSchedule(d, {.num_cores = 2});
  EXPECT_LE(gl.numSupersteps(), wf.numSupersteps());
}

TEST(GrowLocal, DeterministicAcrossRuns) {
  const auto lower = datagen::erdosRenyiLower({.n = 800, .p = 4e-3, .seed = 9});
  const Dag d = Dag::fromLowerTriangular(lower);
  const Schedule a = growLocalSchedule(d, {.num_cores = 3});
  const Schedule b = growLocalSchedule(d, {.num_cores = 3});
  ASSERT_EQ(a.numSupersteps(), b.numSupersteps());
  for (index_t v = 0; v < d.numVertices(); ++v) {
    EXPECT_EQ(a.coreOf(v), b.coreOf(v));
    EXPECT_EQ(a.superstepOf(v), b.superstepOf(v));
  }
}

TEST(GrowLocal, LocalityOfAssignment) {
  // The ID-based rule should keep most same-core vertices near-consecutive
  // on a banded matrix: measure the fraction of consecutive-ID pairs that
  // share a core; it should be well above 1/num_cores (random assignment).
  const auto lower = datagen::bandedLower(2000, 8, 0.6, 10);
  const Dag d = Dag::fromLowerTriangular(lower);
  const Schedule s = growLocalSchedule(d, {.num_cores = 2});
  ASSERT_TRUE(validateSchedule(d, s).ok);
  index_t same = 0;
  for (index_t v = 0; v + 1 < d.numVertices(); ++v) {
    same += (s.coreOf(v) == s.coreOf(v + 1)) ? 1 : 0;
  }
  const double frac = static_cast<double>(same) /
                      static_cast<double>(d.numVertices() - 1);
  EXPECT_GT(frac, 0.8) << "same-core consecutive fraction " << frac;
}

TEST(GrowLocal, RespectsAlphaGrowthTermination) {
  // Regression guard: a maximal trial (ready pool drained before alpha) must
  // terminate the growth loop. A star DAG (one source, many children)
  // exercises this: after the source, everything is ready at once.
  std::vector<dag::Edge> edges;
  for (index_t v = 1; v < 200; ++v) edges.emplace_back(0, v);
  const Dag d = Dag::fromEdges(200, edges);
  const Schedule s = growLocalSchedule(d, {.num_cores = 2});
  EXPECT_TRUE(validateSchedule(d, s).ok);
  EXPECT_LE(s.numSupersteps(), 3);
}

TEST(GrowLocal, OptionValidation) {
  const Dag d = Dag::fromLowerTriangular(datagen::diagonalMatrix(4));
  GrowLocalOptions bad;
  bad.num_cores = 0;
  EXPECT_THROW(growLocalSchedule(d, bad), std::invalid_argument);
  bad = {};
  bad.growth_factor = 1.0;
  EXPECT_THROW(growLocalSchedule(d, bad), std::invalid_argument);
  bad = {};
  bad.worthy_factor = 1.5;
  EXPECT_THROW(growLocalSchedule(d, bad), std::invalid_argument);
  bad = {};
  bad.min_superstep_size = 0;
  EXPECT_THROW(growLocalSchedule(d, bad), std::invalid_argument);
}

TEST(GrowLocal, SyncCostLScaling) {
  // Larger L penalizes barriers more, so superstep count must not increase.
  const auto lower = datagen::erdosRenyiLower({.n = 2000, .p = 2e-3, .seed = 12});
  const Dag d = Dag::fromLowerTriangular(lower);
  GrowLocalOptions small_l{.num_cores = 2, .sync_cost_l = 10.0};
  GrowLocalOptions large_l{.num_cores = 2, .sync_cost_l = 5000.0};
  const Schedule s_small = growLocalSchedule(d, small_l);
  const Schedule s_large = growLocalSchedule(d, large_l);
  EXPECT_TRUE(validateSchedule(d, s_small).ok);
  EXPECT_TRUE(validateSchedule(d, s_large).ok);
  EXPECT_LE(s_large.numSupersteps(), s_small.numSupersteps() + 1);
}

}  // namespace
}  // namespace sts::core
