#!/usr/bin/env python3
"""Unit tests for the repo's Python bench tooling (stdlib unittest only).

Covers tools/bench_diff.py and tools/roofline.py end to end — as
subprocesses against fixture JSONs, exactly how CI invokes them — so the
exit-code contracts the workflows gate on (0 ok / 1 regression or drift /
2 usage-schema error) are themselves under test, including the
ssp_staleness flattening added with the bounded-staleness tier.

Run directly (python3 tests/test_tools.py) or via ctest (test_tools).
"""

import copy
import json
import os
import subprocess
import sys
import tempfile
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_DIFF = os.path.join(REPO, "tools", "bench_diff.py")
ROOFLINE = os.path.join(REPO, "tools", "roofline.py")


def run_tool(script, *args):
    """Run a tool script; return (exit code, stdout, stderr)."""
    proc = subprocess.run([sys.executable, script, *args],
                          capture_output=True, text=True)
    return proc.returncode, proc.stdout, proc.stderr


def snapshot_fixture():
    """A minimal but schema-complete bench_snapshot.py snapshot."""
    return {
        "snapshot": "BENCH_TEST",
        "benches": {
            "fold_policies": {
                "fold": [{
                    "matrix": "nb_A", "scheduler": "GrowLocal", "team": 2,
                    "modulo_makespan": 10.0, "binpack_makespan": 9.0,
                }],
                "serving": [],
                "fold_aware": [],
            },
            "slab_locality": {
                "results": [{
                    "matrix": "nb_A", "executor": "contiguous", "team": 2,
                    "nrhs": 4, "shared_seconds": 2.0e-3,
                    "slab_seconds": 1.0e-3, "slab_speedup": 2.0,
                }],
            },
            "tiled_multirhs": {
                "l3_bytes": 0,
                "cache_detected": False,
                "results": [{
                    "dataset": "narrow-band", "matrix": "nb_A",
                    "executor": "contiguous", "storage": "shared",
                    "team": 2, "nrhs": 4, "tile_cols": 4, "num_tiles": 1,
                    "rows": 100, "nnz": 500,
                    "untiled_seconds": 2.0e-3, "tiled_seconds": 1.0e-3,
                    "tiled_speedup": 2.0,
                    "bytes_moved": 1.0e6, "flops": 1.0e6,
                }],
            },
            "ssp_staleness": {
                "tolerance": 1e-8,
                "results": [
                    {
                        "dataset": "narrow-band", "matrix": "nb_A",
                        "executor": "contiguous", "team": 2, "staleness": 0,
                        "exact_seconds": 1.0e-3, "ssp_seconds": 1.0e-3,
                        "ssp_speedup": 1.0, "refinements": 0,
                        "residual": 0.0, "fell_back": False,
                    },
                    {
                        "dataset": "narrow-band", "matrix": "nb_A",
                        "executor": "contiguous", "team": 2, "staleness": 2,
                        "exact_seconds": 1.0e-3, "ssp_seconds": 1.5e-3,
                        "ssp_speedup": 0.67, "refinements": 3,
                        "residual": 1e-12, "fell_back": False,
                    },
                ],
            },
        },
    }


class ToolTestCase(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def write_json(self, name, payload):
        path = os.path.join(self._dir.name, name)
        with open(path, "w") as f:
            json.dump(payload, f)
        return path


class BenchDiffTest(ToolTestCase):
    def test_identical_snapshots_pass(self):
        base = self.write_json("base.json", snapshot_fixture())
        code, out, _ = run_tool(BENCH_DIFF, base, base)
        self.assertEqual(code, 0, out)
        self.assertIn("0 regression(s)", out)

    def test_ssp_seconds_regression_gates(self):
        base = self.write_json("base.json", snapshot_fixture())
        worse = snapshot_fixture()
        row = worse["benches"]["ssp_staleness"]["results"][1]
        row["ssp_seconds"] *= 1.5
        cand = self.write_json("cand.json", worse)
        code, out, _ = run_tool(BENCH_DIFF, base, cand)
        self.assertEqual(code, 1, out)
        self.assertIn("ssp_staleness/nb_A/contiguous/team2/s2/ssp_seconds",
                      out)
        self.assertIn("REGRESSED", out)

    def test_speedup_direction_is_higher_better(self):
        base = self.write_json("base.json", snapshot_fixture())
        worse = snapshot_fixture()
        worse["benches"]["ssp_staleness"]["results"][1]["ssp_speedup"] = 0.4
        cand = self.write_json("cand.json", worse)
        code, out, _ = run_tool(BENCH_DIFF, base, cand)
        self.assertEqual(code, 1, out)
        self.assertIn("ssp_speedup", out)

    def test_refinement_counts_are_informational_not_gated(self):
        base = self.write_json("base.json", snapshot_fixture())
        more = snapshot_fixture()
        row = more["benches"]["ssp_staleness"]["results"][1]
        row["refinements"] = 10 * row["refinements"]
        row["residual"] = 1e-9
        cand = self.write_json("cand.json", more)
        code, out, _ = run_tool(BENCH_DIFF, base, cand)
        self.assertEqual(code, 0, out)

    def test_filter_scopes_the_gate(self):
        base = self.write_json("base.json", snapshot_fixture())
        worse = snapshot_fixture()
        worse["benches"]["ssp_staleness"]["results"][1]["ssp_seconds"] *= 2.0
        cand = self.write_json("cand.json", worse)
        code, out, _ = run_tool(BENCH_DIFF, base, cand,
                                "--filter", "slab_locality/")
        self.assertEqual(code, 0, out)

    def test_threshold_tolerates_small_drift(self):
        base = self.write_json("base.json", snapshot_fixture())
        drift = snapshot_fixture()
        drift["benches"]["ssp_staleness"]["results"][1]["ssp_seconds"] *= 1.05
        cand = self.write_json("cand.json", drift)
        code, out, _ = run_tool(BENCH_DIFF, base, cand, "--threshold", "0.10")
        self.assertEqual(code, 0, out)
        code, out, _ = run_tool(BENCH_DIFF, base, cand, "--threshold", "0.01")
        self.assertEqual(code, 1, out)

    def test_google_benchmark_report_compares(self):
        report = {"benchmarks": [
            {"name": "BM_BspSolve/2", "run_type": "iteration",
             "real_time": 100.0, "cpu_time": 90.0},
            {"name": "BM_BspSolve/2", "run_type": "aggregate",
             "real_time": 1.0},
        ]}
        base = self.write_json("base.json", report)
        worse = copy.deepcopy(report)
        worse["benchmarks"][0]["real_time"] = 150.0
        cand = self.write_json("cand.json", worse)
        code, out, _ = run_tool(BENCH_DIFF, base, cand)
        self.assertEqual(code, 1, out)
        self.assertIn("micro_kernels/BM_BspSolve/2/real_time", out)

    def test_unrecognized_json_is_usage_error(self):
        bad = self.write_json("bad.json", {"something": "else"})
        code, _, err = run_tool(BENCH_DIFF, bad, bad)
        self.assertEqual(code, 2, err)
        self.assertIn("unrecognized", err)

    def test_missing_file_is_usage_error(self):
        base = self.write_json("base.json", snapshot_fixture())
        code, _, err = run_tool(
            BENCH_DIFF, base, os.path.join(self._dir.name, "absent.json"))
        self.assertEqual(code, 2, err)

    def test_no_overlap_is_usage_error(self):
        base = self.write_json("base.json", snapshot_fixture())
        empty = self.write_json("empty.json", {"benches": {}})
        code, _, err = run_tool(BENCH_DIFF, base, empty)
        self.assertEqual(code, 2, err)
        self.assertIn("no overlapping metrics", err)


class RooflineTest(ToolTestCase):
    def test_valid_snapshot_passes(self):
        snap = self.write_json("snap.json", snapshot_fixture())
        code, out, _ = run_tool(ROOFLINE, snap)
        self.assertEqual(code, 0, out)
        self.assertIn("no unexplained >100% entries", out)

    def test_quiet_suppresses_rows(self):
        snap = self.write_json("snap.json", snapshot_fixture())
        code, out, _ = run_tool(ROOFLINE, snap, "--quiet")
        self.assertEqual(code, 0, out)
        self.assertNotIn("of roofline", out)
        self.assertIn("achieved-vs-roofline", out)

    def test_missing_tiled_payload_is_schema_error(self):
        broken = snapshot_fixture()
        broken["benches"]["tiled_multirhs"] = None
        snap = self.write_json("snap.json", broken)
        code, _, err = run_tool(ROOFLINE, snap)
        self.assertEqual(code, 2, err)
        self.assertIn("tiled_multirhs", err)

    def test_missing_row_field_is_schema_error(self):
        broken = snapshot_fixture()
        del broken["benches"]["tiled_multirhs"]["results"][0]["flops"]
        snap = self.write_json("snap.json", broken)
        code, _, err = run_tool(ROOFLINE, snap)
        self.assertEqual(code, 2, err)
        self.assertIn("missing fields", err)
        self.assertIn("flops", err)

    def test_not_a_snapshot_is_schema_error(self):
        snap = self.write_json("snap.json", {"benchmarks": []})
        code, _, err = run_tool(ROOFLINE, snap)
        self.assertEqual(code, 2, err)

    def _with_low_micro_peak(self, l3_bytes, cache_detected):
        """A snapshot whose embedded micro peak is BELOW the tiled rows'
        achieved FLOP rate, pushing the row past 100% of the model."""
        snap = snapshot_fixture()
        snap["benches"]["micro_kernels"] = {"benchmarks": [
            {"name": "BM_MultiRhsKernel/8", "run_type": "iteration",
             "items_per_second": 1.0e8},
        ]}
        tiled = snap["benches"]["tiled_multirhs"]
        tiled["l3_bytes"] = l3_bytes
        tiled["cache_detected"] = cache_detected
        return snap

    def test_unexplained_over_100_percent_fails(self):
        snap = self.write_json(
            "snap.json", self._with_low_micro_peak(0, False))
        code, out, err = run_tool(ROOFLINE, snap)
        self.assertEqual(code, 1, out + err)
        self.assertIn("UNEXPLAINED", out)

    def test_cache_resident_over_100_percent_is_explained(self):
        snap = self.write_json(
            "snap.json", self._with_low_micro_peak(10**9, True))
        code, out, _ = run_tool(ROOFLINE, snap)
        self.assertEqual(code, 0, out)
        self.assertIn("cache-resident", out)


if __name__ == "__main__":
    unittest.main()
