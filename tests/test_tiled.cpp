#include <gtest/gtest.h>

#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "datagen/grids.hpp"
#include "datagen/random_matrices.hpp"
#include "engine/solver_engine.hpp"
#include "exec/solver.hpp"
#include "exec/tile.hpp"
#include "test_util.hpp"

/// \file test_tiled.cpp
/// The tiled multi-RHS contract (exec/tile.hpp): column tiles are
/// independent n x w sub-problems in exactly the untiled kernels' layout,
/// so the tiled walk is bitwise indistinguishable from the untiled walk
/// for every executor kind, storage, team size, and RHS count — including
/// degenerate single-tile batches and explicit narrow tiles that force
/// multi-tile execution. Plus the layout/pack/unpack arithmetic, sysfs
/// cache-geometry detection fallbacks, the STS_TILE_COLS override,
/// concurrent mixed-layout solves (TSan-covered in CI), the engine's
/// direct-into-tiles pack path with its pack/unpack stats attribution,
/// and the fold-aware GrowLocal never-loses guarantee.

namespace sts {
namespace {

using exec::SchedulerKind;
using exec::SolverOptions;
using exec::StorageKind;
using exec::TileLayout;
using exec::TriangularSolver;

struct ExecutorConfig {
  std::string name;
  SolverOptions options;
};

std::vector<ExecutorConfig> executorConfigs(int width) {
  std::vector<ExecutorConfig> configs;
  {
    SolverOptions opts;
    opts.scheduler = SchedulerKind::kGrowLocal;
    opts.num_threads = width;
    opts.reorder = true;
    configs.push_back({"contiguous", opts});
  }
  {
    SolverOptions opts;
    opts.scheduler = SchedulerKind::kGrowLocal;
    opts.num_threads = width;
    opts.reorder = false;
    configs.push_back({"bsp", opts});
  }
  {
    SolverOptions opts;
    opts.scheduler = SchedulerKind::kWavefront;
    opts.num_threads = width;
    opts.reorder = false;
    configs.push_back({"bsp-wavefront", opts});
  }
  {
    SolverOptions opts;
    opts.scheduler = SchedulerKind::kSpmp;
    opts.num_threads = width;
    configs.push_back({"p2p", opts});
  }
  return configs;
}

std::vector<double> makeRhs(size_t n, index_t nrhs, unsigned salt = 0) {
  std::vector<double> b(n * static_cast<size_t>(nrhs));
  for (size_t i = 0; i < b.size(); ++i) {
    b[i] = 1.0 + 0.125 * static_cast<double>((i * 7 + salt) % 23) -
           0.5 * static_cast<double>((i + salt) % 3);
  }
  return b;
}

TEST(TileLayout, GeometryPackUnpackRoundtrip) {
  const TileLayout layout(5, 11, 4);
  EXPECT_EQ(layout.rows(), 5);
  EXPECT_EQ(layout.cols(), 11);
  EXPECT_EQ(layout.tileCols(), 4);
  EXPECT_EQ(layout.numTiles(), 3);
  EXPECT_EQ(layout.tileBegin(2), 8);
  EXPECT_EQ(layout.tileWidth(0), 4);
  EXPECT_EQ(layout.tileWidth(2), 3);  // ragged tail tile
  EXPECT_EQ(layout.tileOfCol(9), 2);
  EXPECT_EQ(layout.colInTile(9), 1);
  EXPECT_EQ(layout.tileOffset(1), 5u * 4u);
  EXPECT_EQ(layout.tileDoubles(2), 5u * 3u);
  EXPECT_EQ(layout.totalDoubles(), 5u * 11u);
  EXPECT_EQ(layout.bytesMoved(), 2u * 55u * sizeof(double));

  const auto b = makeRhs(5, 11, 3);
  std::vector<double> tiled(layout.totalDoubles());
  std::vector<double> back(b.size());
  layout.pack(b, tiled);
  // Spot-check the tiled addressing: element (row i, col c) lives at
  // tileOffset(t) + i*w + colInTile(c).
  for (index_t i = 0; i < 5; ++i) {
    for (index_t c = 0; c < 11; ++c) {
      const auto t = layout.tileOfCol(c);
      const auto w = static_cast<size_t>(layout.tileWidth(t));
      const auto at = layout.tileOffset(t) + static_cast<size_t>(i) * w +
                      static_cast<size_t>(layout.colInTile(c));
      EXPECT_EQ(tiled[at], b[static_cast<size_t>(i) * 11 +
                             static_cast<size_t>(c)]);
    }
  }
  layout.unpack(tiled, back);
  EXPECT_EQ(back, b);
}

TEST(TileLayout, CapsAtNrhsAndValidates) {
  // tile_cols wider than the batch degrades to one full-width tile.
  const TileLayout wide(7, 3, 64);
  EXPECT_EQ(wide.tileCols(), 3);
  EXPECT_EQ(wide.numTiles(), 1);
  EXPECT_EQ(wide.tileWidth(0), 3);

  EXPECT_THROW(TileLayout(-1, 2, 2), std::invalid_argument);
  EXPECT_THROW(TileLayout(5, 0, 2), std::invalid_argument);
  EXPECT_THROW(TileLayout(5, 2, 0), std::invalid_argument);

  const TileLayout layout(4, 6, 2);
  std::vector<double> wrong(5);
  std::vector<double> right(layout.totalDoubles());
  EXPECT_THROW(layout.pack(wrong, right), std::invalid_argument);
  EXPECT_THROW(layout.unpack(right, wrong), std::invalid_argument);
}

TEST(TileGeometry, CacheDetectionHasSaneValuesAndFallbacks) {
  const exec::CacheGeometry& geo = exec::cacheGeometry();
  // Detected or fallback, the fields the tile sizing divides by must be
  // positive and ordered sanely.
  EXPECT_GT(geo.l1d_bytes, 0u);
  EXPECT_GT(geo.l2_bytes, 0u);
  EXPECT_GT(geo.l3_bytes, 0u);
  EXPECT_GE(geo.line_bytes, 8u);
  EXPECT_LE(geo.l1d_bytes, geo.l3_bytes);
  EXPECT_GE(geo.l2_shared_cpus, 1);
  // The process-wide snapshot is cached: same object every call.
  EXPECT_EQ(&geo, &exec::cacheGeometry());
}

TEST(TileGeometry, PickTileColsRespectsEnvOverride) {
  ASSERT_EQ(setenv("STS_TILE_COLS", "5", 1), 0);
  EXPECT_EQ(exec::pickTileCols(1000), 5);
  ASSERT_EQ(setenv("STS_TILE_COLS", "0", 1), 0);  // invalid: ignored
  const index_t auto_cols = exec::pickTileCols(1000);
  ASSERT_EQ(unsetenv("STS_TILE_COLS"), 0);
  EXPECT_EQ(exec::pickTileCols(1000), auto_cols);
  // The auto heuristic clamps to [16, 128] in multiples of 8.
  EXPECT_GE(auto_cols, 16);
  EXPECT_LE(auto_cols, 128);
  EXPECT_EQ(auto_cols % 8, 0);
}

TEST(TiledSolve, BitwiseMatchesUntiledForEveryConfig) {
  const int width = 4;
  const auto matrices = {
      datagen::grid2dLaplacian5(14, 17).lowerTriangle(),
      datagen::erdosRenyiLower({.n = 350, .p = 8e-3, .seed = 21}),
      datagen::narrowBandLower({.n = 300, .p = 0.2, .b = 8.0, .seed = 22}),
  };
  for (const auto& lower : matrices) {
    const auto n = static_cast<size_t>(lower.rows());
    for (const auto& config : executorConfigs(width)) {
      // tile_cols = 3 forces multi-tile execution (with ragged tails at
      // nrhs 8 and 17); 0 exercises the auto heuristic, whose floor of 16
      // degenerates every nrhs here but 17 to a single tile.
      for (const index_t tile_cols : {3, 0}) {
        SolverOptions opts = config.options;
        opts.tile_cols = tile_cols;
        const auto solver = TriangularSolver::analyze(lower, opts);
        auto ctx = solver.createContext();
        for (const int team : {1, width}) {
          for (const auto storage :
               {StorageKind::kSharedCsr, StorageKind::kSlab}) {
            for (const index_t nrhs : {1, 3, 8, 17}) {
              const auto b = makeRhs(n, nrhs);
              std::vector<double> x_untiled(b.size());
              std::vector<double> x_tiled(b.size());
              solver.solveMultiRhs(b, x_untiled, nrhs, *ctx, team,
                                   solver.options().fold_policy, storage);
              solver.solveMultiRhsTiled(b, x_tiled, nrhs, *ctx, team,
                                        solver.options().fold_policy,
                                        storage);
              ASSERT_EQ(x_tiled, x_untiled)
                  << config.name << " tile_cols " << tile_cols << " team "
                  << team << " storage " << static_cast<int>(storage)
                  << " nrhs " << nrhs;
            }
          }
        }
      }
    }
  }
}

TEST(TiledSolve, SolveTilesMatchesOnPrePackedBuffers) {
  // The zero-copy entry: pack in schedule order outside, solve, unpack —
  // exactly the engine's fused path, checked against the reference walk.
  const auto lower = datagen::bandedLower(280, 10, 0.6, 31);
  const auto n = static_cast<size_t>(lower.rows());
  SolverOptions opts;
  opts.num_threads = 4;
  opts.reorder = true;  // exercises the permutation composition
  opts.tile_cols = 4;
  const auto solver = TriangularSolver::analyze(lower, opts);
  auto ctx = solver.createContext();
  const index_t nrhs = 10;
  const auto r = static_cast<size_t>(nrhs);
  const auto b = makeRhs(n, nrhs, 9);

  std::vector<double> x_ref(b.size());
  solver.solveMultiRhs(b, x_ref, nrhs, *ctx);

  const TileLayout layout = solver.tileLayout(nrhs);
  EXPECT_EQ(layout.tileCols(), 4);
  EXPECT_EQ(layout.numTiles(), 3);
  const auto perm = solver.permutation();
  std::vector<double> b_perm(b.size());
  for (size_t i = 0; i < n; ++i) {
    const size_t row = solver.isPermuted() ? static_cast<size_t>(perm[i]) : i;
    for (size_t c = 0; c < r; ++c) b_perm[i * r + c] = b[row * r + c];
  }
  std::vector<double> b_tiled(layout.totalDoubles());
  std::vector<double> x_tiled(layout.totalDoubles());
  layout.pack(b_perm, b_tiled);
  solver.solveTiles(b_tiled, x_tiled, layout, *ctx, solver.numThreads(),
                    solver.options().fold_policy, solver.options().storage);
  std::vector<double> x_perm(b.size());
  layout.unpack(x_tiled, x_perm);
  std::vector<double> x(b.size());
  for (size_t i = 0; i < n; ++i) {
    const size_t row = solver.isPermuted() ? static_cast<size_t>(perm[i]) : i;
    for (size_t c = 0; c < r; ++c) x[row * r + c] = x_perm[i * r + c];
  }
  EXPECT_EQ(x, x_ref);

  // Shape mismatches must throw, not corrupt.
  std::vector<double> short_buf(layout.totalDoubles() - 1);
  EXPECT_THROW(solver.solveTiles(short_buf, x_tiled, layout, *ctx,
                                 solver.numThreads(),
                                 solver.options().fold_policy,
                                 solver.options().storage),
               std::invalid_argument);
}

TEST(TiledSolve, BytesMovedAccountingIsConsistent) {
  const auto lower = datagen::erdosRenyiLower({.n = 250, .p = 1e-2,
                                               .seed = 17});
  SolverOptions opts;
  opts.num_threads = 2;
  const auto solver = TriangularSolver::analyze(lower, opts);
  const auto csr = solver.storageBytesMoved(2, core::FoldPolicy::kModulo,
                                            StorageKind::kSharedCsr);
  EXPECT_EQ(csr, exec::csrBytesMoved(lower.rows(), lower.nnz()));
  const auto slab = solver.storageBytesMoved(2, core::FoldPolicy::kModulo,
                                             StorageKind::kSlab);
  // Slabs duplicate the row/col data into padded per-thread records:
  // at least the CSR value+index payload, never less.
  EXPECT_GE(slab, static_cast<size_t>(lower.nnz()) * sizeof(double));
}

TEST(TiledSolveConcurrent, MixedLayoutSolvesAreSafe) {
  // Tiled and untiled solves race on one solver with distinct contexts,
  // mixing teams and storage: the lazy slab/fold caches and the tiled
  // scratch buffers must not interfere — TSan covers this in CI.
  const auto lower = datagen::erdosRenyiLower({.n = 400, .p = 6e-3,
                                               .seed = 41});
  const auto n = static_cast<size_t>(lower.rows());
  SolverOptions opts;
  opts.num_threads = 4;
  opts.reorder = false;
  opts.tile_cols = 3;
  const auto solver = TriangularSolver::analyze(lower, opts);

  const index_t nrhs = 7;
  const auto b = makeRhs(n, nrhs);
  std::vector<double> expected(b.size());
  {
    auto ctx = solver.createContext();
    solver.solveMultiRhs(b, expected, nrhs, *ctx, solver.numThreads(),
                         core::FoldPolicy::kModulo, StorageKind::kSharedCsr);
  }

  constexpr int kWorkers = 8;
  std::vector<std::future<std::vector<double>>> results;
  for (int w = 0; w < kWorkers; ++w) {
    results.push_back(std::async(std::launch::async, [&, w] {
      auto ctx = solver.createContext();
      std::vector<double> x(b.size());
      const int team = 1 + w % solver.numThreads();
      const auto storage =
          w % 3 == 0 ? StorageKind::kSharedCsr : StorageKind::kSlab;
      for (int rep = 0; rep < 3; ++rep) {
        if (w % 2 == 0) {
          solver.solveMultiRhsTiled(b, x, nrhs, *ctx, team,
                                    core::FoldPolicy::kModulo, storage);
        } else {
          solver.solveMultiRhs(b, x, nrhs, *ctx, team,
                               core::FoldPolicy::kModulo, storage);
        }
      }
      return x;
    }));
  }
  for (auto& f : results) {
    EXPECT_EQ(f.get(), expected);
  }
}

TEST(TiledEngine, PacksBatchesIntoTilesBitwiseWithStats) {
  const auto lower = datagen::grid2dLaplacian5(13, 13).lowerTriangle();
  const auto n = static_cast<size_t>(lower.rows());
  SolverOptions solver_opts;
  solver_opts.num_threads = 2;
  auto solver = std::make_shared<const TriangularSolver>(
      TriangularSolver::analyze(lower, solver_opts));

  std::vector<std::vector<double>> rhs;
  for (unsigned j = 0; j < 12; ++j) rhs.push_back(makeRhs(n, 1, j));
  std::vector<std::vector<double>> expected;
  for (const auto& b : rhs) {
    auto ctx = solver->createContext();
    std::vector<double> x(n);
    solver->solve(b, x, *ctx);
    expected.push_back(std::move(x));
  }

  engine::EngineOptions opts;
  opts.num_workers = 2;
  opts.max_batch = 4;
  opts.start_paused = true;  // coalesce: batches arrive with k > 1
  ASSERT_TRUE(opts.tiled);   // the default path under test
  engine::SolverEngine engine(opts);
  const auto id = engine.registerSolver(solver);
  std::vector<std::future<std::vector<double>>> futures;
  for (const auto& b : rhs) futures.push_back(engine.submit(id, b));
  engine.resume();
  for (size_t j = 0; j < futures.size(); ++j) {
    EXPECT_EQ(futures[j].get(), expected[j]) << "request " << j;
  }
  engine.drain();
  const auto stats = engine.stats(id);
  EXPECT_GT(stats.batches, 0u);
  EXPECT_EQ(stats.batches_failed, 0u);
  EXPECT_GT(stats.tiled_batches, 0u);
  EXPECT_GE(stats.pack_seconds, 0.0);
  EXPECT_GE(stats.unpack_seconds, 0.0);

  // An explicit multi-RHS submission routes through the tiled path too.
  const index_t nrhs = 5;
  const auto bm = makeRhs(n, nrhs, 99);
  std::vector<double> xm_ref(bm.size());
  {
    auto ctx = solver->createContext();
    solver->solveMultiRhs(bm, xm_ref, nrhs, *ctx);
  }
  const auto before = engine.stats(id).tiled_batches;
  auto fut = engine.submitMulti(id, bm, nrhs);
  EXPECT_EQ(fut.get(), xm_ref);
  engine.drain();
  EXPECT_GT(engine.stats(id).tiled_batches, before);

  // Opting out serves the same bits through the legacy scatter path.
  engine::EngineOptions untiled_opts = opts;
  untiled_opts.tiled = false;
  engine::SolverEngine untiled_engine(untiled_opts);
  const auto uid = untiled_engine.registerSolver(solver);
  std::vector<std::future<std::vector<double>>> ufutures;
  for (const auto& b : rhs) ufutures.push_back(untiled_engine.submit(uid, b));
  untiled_engine.resume();
  for (size_t j = 0; j < ufutures.size(); ++j) {
    EXPECT_EQ(ufutures[j].get(), expected[j]) << "request " << j;
  }
  untiled_engine.drain();
  EXPECT_EQ(untiled_engine.stats(uid).tiled_batches, 0u);
}

TEST(TiledCore, FoldAwareGrowLocalNeverLosesOnFoldedCost) {
  const auto matrices = {
      datagen::erdosRenyiLower({.n = 300, .p = 8e-3, .seed = 61}),
      datagen::narrowBandLower({.n = 280, .p = 0.2, .b = 8.0, .seed = 62}),
  };
  for (const auto& lower : matrices) {
    const auto dag = dag::Dag::fromLowerTriangular(lower);
    core::GrowLocalOptions plain;
    plain.num_cores = 8;
    core::GrowLocalOptions aware = plain;
    aware.fold_targets = {2, 4};
    const auto base = core::growLocalSchedule(dag, plain);
    const auto tuned = core::growLocalSchedule(dag, aware);
    std::vector<int> targets = {2, 4, 8};
    double base_cost = 0.0;
    double tuned_cost = 0.0;
    for (const int t : targets) {
      base_cost += static_cast<double>(core::foldedMakespanAt(
                       base, t, core::FoldPolicy::kBinPack, dag.weights())) +
                   plain.sync_cost_l *
                       static_cast<double>(base.numSupersteps());
      tuned_cost += static_cast<double>(core::foldedMakespanAt(
                        tuned, t, core::FoldPolicy::kBinPack,
                        dag.weights())) +
                    plain.sync_cost_l *
                        static_cast<double>(tuned.numSupersteps());
    }
    EXPECT_LE(tuned_cost, base_cost);
  }

  const auto lower = datagen::bandedLower(100, 6, 0.5, 63);
  const auto dag = dag::Dag::fromLowerTriangular(lower);
  core::GrowLocalOptions bad;
  bad.num_cores = 4;
  bad.fold_targets = {0};
  EXPECT_THROW(core::growLocalSchedule(dag, bad), std::invalid_argument);
}

}  // namespace
}  // namespace sts
