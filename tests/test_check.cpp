#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <vector>

#include "check/check.hpp"
#include "core/schedule.hpp"
#include "dag/dag.hpp"
#include "datagen/grids.hpp"
#include "datagen/random_matrices.hpp"
#include "exec/elastic.hpp"
#include "exec/slab.hpp"
#include "exec/solver.hpp"

/// \file test_check.cpp
/// The invariant validators (src/check/) from both sides of the contract:
/// every shipped construction path — all schedulers, both fold policies,
/// both storage artifacts (folded work lists for shared-CSR, slab plans
/// for slab storage) — validates clean, and hand-crafted violations of
/// each invariant are rejected with a diagnostic naming the offender.
/// The rejection tests are the interesting half: a validator that accepts
/// everything also "passes" the clean sweep.

namespace sts {
namespace {

using core::FoldPolicy;
using core::Schedule;
using dag::Dag;
using exec::SchedulerKind;
using exec::SolverOptions;
using exec::TriangularSolver;
using exec::detail::FoldedLists;

/// 0 -> 1 -> 2 chain, the smallest DAG where every ordering invariant
/// (superstep order, same-core in-group order) can be violated.
Dag chainDag3() {
  std::vector<dag::Edge> edges;
  edges.emplace_back(0, 1);
  edges.emplace_back(1, 2);
  return Dag::fromEdges(3, edges);
}

/// Full-width per-rank work lists of `sched`, in the schedule's execution
/// order — the same shape executors build before folding.
FoldedLists fullLists(const Schedule& sched) {
  const int width = sched.numCores();
  FoldedLists lists;
  lists.verts.resize(static_cast<size_t>(width));
  lists.step_ptr.resize(static_cast<size_t>(width));
  for (int p = 0; p < width; ++p) {
    lists.step_ptr[static_cast<size_t>(p)].push_back(0);
  }
  for (index_t s = 0; s < sched.numSupersteps(); ++s) {
    for (int p = 0; p < width; ++p) {
      auto& verts = lists.verts[static_cast<size_t>(p)];
      const auto group = sched.group(s, p);
      verts.insert(verts.end(), group.begin(), group.end());
      lists.step_ptr[static_cast<size_t>(p)].push_back(
          static_cast<offset_t>(verts.size()));
    }
  }
  return lists;
}

// ------------------------------------------------------------------ enforce

TEST(CheckEnforce, ThrowsLogicErrorNamingTheCaller) {
  EXPECT_NO_THROW(check::enforce(check::CheckResult{}, "here"));
  try {
    check::enforce(check::CheckResult::failure("row 7 twice"), "slab");
    FAIL() << "enforce accepted a failed CheckResult";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("slab"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("row 7 twice"), std::string::npos);
  }
}

// ----------------------------------------------------------- schedule audit

TEST(CheckSchedule, RejectsEdgeAgainstSuperstepOrder) {
  // Vertex 1 scheduled a superstep BEFORE its parent 0.
  const Dag dag = chainDag3();
  const Schedule sched(3, 1, 2,
                       /*core=*/{0, 0, 0}, /*superstep=*/{1, 0, 1},
                       /*order=*/{1, 0, 2}, /*group_ptr=*/{0, 1, 3});
  const auto result = check::validateSchedule(dag, sched);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.message.find("edge"), std::string::npos) << result.message;
}

TEST(CheckSchedule, RejectsSameSuperstepCrossCoreEdge) {
  // 0 -> 1 in the same superstep on DIFFERENT cores: no barrier between
  // them, so nothing orders the dependency.
  const Dag dag = chainDag3();
  const Schedule sched(3, 2, 2,
                       /*core=*/{0, 1, 0}, /*superstep=*/{0, 0, 1},
                       /*order=*/{0, 1, 2}, /*group_ptr=*/{0, 1, 2, 3, 3});
  EXPECT_FALSE(check::validateSchedule(dag, sched).ok);
}

TEST(CheckSchedule, RejectsInGroupOrderViolation) {
  // Same core, same superstep, but the group's execution order lists the
  // child before the parent.
  const Dag dag = chainDag3();
  const Schedule sched(3, 1, 1,
                       /*core=*/{0, 0, 0}, /*superstep=*/{0, 0, 0},
                       /*order=*/{1, 0, 2}, /*group_ptr=*/{0, 3});
  EXPECT_FALSE(check::validateSchedule(dag, sched).ok);
}

TEST(CheckSchedule, RejectsDuplicatedVertexInExecutionOrder) {
  const Dag dag = chainDag3();
  const Schedule sched(3, 1, 1,
                       /*core=*/{0, 0, 0}, /*superstep=*/{0, 0, 0},
                       /*order=*/{0, 1, 1}, /*group_ptr=*/{0, 3});
  EXPECT_FALSE(check::validateSchedule(dag, sched).ok);
}

TEST(CheckSchedule, AcceptsAValidHandBuiltSchedule) {
  const Dag dag = chainDag3();
  const Schedule sched(3, 1, 1,
                       /*core=*/{0, 0, 0}, /*superstep=*/{0, 0, 0},
                       /*order=*/{0, 1, 2}, /*group_ptr=*/{0, 3});
  const auto result = check::validateSchedule(dag, sched);
  EXPECT_TRUE(result.ok) << result.message;
}

// ----------------------------------------------------------- rank-map audit

TEST(CheckRankMap, RejectsCraftedViolations) {
  const std::vector<int> wrong_size = {0};
  EXPECT_FALSE(check::validateRankMap(2, 2, wrong_size).ok);

  const std::vector<int> out_of_range = {0, 2};
  EXPECT_FALSE(check::validateRankMap(2, 2, out_of_range).ok);

  const std::vector<int> negative = {0, -1};
  EXPECT_FALSE(check::validateRankMap(2, 2, negative).ok);

  // Non-surjective: slot 1 never hit, so the folded execution would idle
  // one of its granted cores forever.
  const std::vector<int> not_onto = {0, 0};
  const auto result = check::validateRankMap(2, 2, not_onto);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.message.find("slot 1"), std::string::npos)
      << result.message;
}

// -------------------------------------------------------- folded-list audit

/// Even/odd rows on two threads, two supersteps — a valid baseline each
/// corruption test below perturbs.
FoldedLists evenOddLists(index_t num_rows) {
  FoldedLists lists;
  lists.verts.resize(2);
  lists.step_ptr.resize(2);
  for (index_t i = 0; i < num_rows; ++i) {
    lists.verts[static_cast<size_t>(i % 2)].push_back(i);
  }
  for (int t = 0; t < 2; ++t) {
    const auto total =
        static_cast<offset_t>(lists.verts[static_cast<size_t>(t)].size());
    lists.step_ptr[static_cast<size_t>(t)] = {0, total / 2, total};
  }
  return lists;
}

TEST(CheckFoldedLists, AcceptsTheEvenOddBaseline) {
  const auto result = check::validateFoldedLists(evenOddLists(20), 2, 20);
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(CheckFoldedLists, RejectsDuplicatedRow) {
  FoldedLists lists = evenOddLists(20);
  lists.verts[1][0] = lists.verts[0][0];  // row 0 now appears twice
  const auto result = check::validateFoldedLists(lists, 2, 20);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.message.find("twice"), std::string::npos)
      << result.message;
}

TEST(CheckFoldedLists, RejectsRowOutOfRange) {
  FoldedLists lists = evenOddLists(20);
  lists.verts[0][3] = 99;
  EXPECT_FALSE(check::validateFoldedLists(lists, 2, 20).ok);
}

TEST(CheckFoldedLists, RejectsBadStepBoundaries) {
  {
    FoldedLists lists = evenOddLists(20);
    lists.step_ptr[0].pop_back();  // wrong boundary count
    EXPECT_FALSE(check::validateFoldedLists(lists, 2, 20).ok);
  }
  {
    FoldedLists lists = evenOddLists(20);
    lists.step_ptr[0].back() -= 1;  // last boundary short of the list
    EXPECT_FALSE(check::validateFoldedLists(lists, 2, 20).ok);
  }
  {
    FoldedLists lists = evenOddLists(20);
    std::swap(lists.step_ptr[0][1], lists.step_ptr[0][2]);  // non-monotone
    EXPECT_FALSE(check::validateFoldedLists(lists, 2, 20).ok);
  }
}

// --------------------------------------------------------- slab-plan audit

TEST(CheckSlabPlan, AcceptsAFreshBuildThenRejectsCorruption) {
  const auto lower = datagen::erdosRenyiLower({.n = 120, .p = 4e-2,
                                               .seed = 5});
  const FoldedLists lists = evenOddLists(lower.rows());
  auto plan = exec::detail::buildSlabPlan(lower, lists);
  {
    const auto result = check::validateSlabPlan(lower, lists, plan);
    ASSERT_TRUE(result.ok) << result.message;
  }

  {
    // Corrupt the first record's header in place: the slab now claims to
    // solve a different row than the execution order's.
    auto corrupted = exec::detail::buildSlabPlan(lower, lists);
    exec::detail::SlabRecordHeader header;
    std::memcpy(&header, corrupted.threads[0].bytes.data(), sizeof(header));
    header.row += 1;
    std::memcpy(corrupted.threads[0].bytes.data(), &header, sizeof(header));
    const auto result = check::validateSlabPlan(lower, lists, corrupted);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.message.find("record 0"), std::string::npos)
        << result.message;
  }

  {
    // Superstep boundaries diverging from the work list's.
    auto diverged = exec::detail::buildSlabPlan(lower, lists);
    diverged.threads[1].step_ptr[1] += 1;
    EXPECT_FALSE(check::validateSlabPlan(lower, lists, diverged).ok);
  }

  {
    // A duplicated slab row: the execution order and the packed records
    // disagree from the duplicate onward.
    FoldedLists duplicated = lists;
    duplicated.verts[0][1] = duplicated.verts[0][0];
    EXPECT_FALSE(check::validateSlabPlan(lower, duplicated, plan).ok);
  }
}

// --------------------------------------------------------- core-grant audit

TEST(CheckCoreGrants, RejectsOverlapForeignAndDuplicateCores) {
  const std::vector<int> universe = {0, 1, 2, 3};

  const std::vector<std::vector<int>> disjoint = {{0, 1}, {2}};
  EXPECT_TRUE(check::auditCoreGrants(universe, disjoint).ok);

  const std::vector<std::vector<int>> overlapping = {{0, 1}, {1, 2}};
  const auto overlap = check::auditCoreGrants(universe, overlapping);
  EXPECT_FALSE(overlap.ok);
  EXPECT_NE(overlap.message.find("core 1"), std::string::npos)
      << overlap.message;

  const std::vector<std::vector<int>> foreign = {{0}, {7}};
  EXPECT_FALSE(check::auditCoreGrants(universe, foreign).ok);

  const std::vector<std::vector<int>> self_dup = {{2, 2}};
  EXPECT_FALSE(check::auditCoreGrants(universe, self_dup).ok);
}

// ------------------------------------------------------------- clean sweep

/// Every shipped scheduler × both fold policies × every team size, audited
/// at every pipeline stage: the analyzed schedule (Def. 2.1), the folded
/// schedule, the fold rank map (bijectivity), the folded work lists (the
/// shared-CSR execution artifact), and the slab plan (the slab-storage
/// artifact). This is the positive half of the contract; STS_CHECKS=ON
/// builds run the same validators inside the construction paths.
TEST(CheckCleanSweep, AllSchedulersFoldPoliciesAndStorageArtifacts) {
  const std::vector<sparse::CsrMatrix> matrices = {
      datagen::grid2dLaplacian5(8, 8).lowerTriangle(),
      datagen::erdosRenyiLower({.n = 160, .p = 3e-2, .seed = 11}),
  };
  const SchedulerKind kinds[] = {
      SchedulerKind::kGrowLocal, SchedulerKind::kFunnelGrowLocal,
      SchedulerKind::kWavefront, SchedulerKind::kHdagg,
      SchedulerKind::kSpmp,      SchedulerKind::kBspList,
      SchedulerKind::kSerial,
  };
  const FoldPolicy policies[] = {FoldPolicy::kModulo, FoldPolicy::kBinPack};

  for (const auto& lower : matrices) {
    const Dag dag = Dag::fromLowerTriangular(lower);
    for (const SchedulerKind kind : kinds) {
      SolverOptions opts;
      opts.scheduler = kind;
      opts.num_threads = 4;
      opts.reorder = false;
      const auto solver = TriangularSolver::analyze(lower, opts);
      const Schedule& sched = solver.schedule();
      const std::string where = exec::schedulerKindName(kind);

      {
        const auto result = check::validateSchedule(dag, sched);
        ASSERT_TRUE(result.ok) << where << ": " << result.message;
      }

      const int width = sched.numCores();
      const auto loads = sched.rankLoads();
      const FoldedLists lists = fullLists(sched);
      for (const FoldPolicy policy : policies) {
        for (int team = 1; team <= width; ++team) {
          const auto rank_map = core::foldRankMap(
              sched.numSupersteps(), width, team, policy, loads);
          auto result = check::validateRankMap(width, team, rank_map);
          ASSERT_TRUE(result.ok) << where << ": " << result.message;

          const Schedule folded = sched.foldTo(team, policy);
          result = check::validateSchedule(dag, folded);
          ASSERT_TRUE(result.ok) << where << " folded to " << team << ": "
                                 << result.message;

          const FoldedLists folded_lists = exec::detail::foldThreadLists(
              lists.verts, lists.step_ptr, sched.numSupersteps(), team,
              rank_map);
          result = check::validateFoldedLists(
              folded_lists, sched.numSupersteps(), lower.rows());
          ASSERT_TRUE(result.ok) << where << ": " << result.message;

          const auto plan = exec::detail::buildSlabPlan(lower, folded_lists);
          result = check::validateSlabPlan(lower, folded_lists, plan);
          ASSERT_TRUE(result.ok) << where << ": " << result.message;
        }
      }
    }
  }
}

}  // namespace
}  // namespace sts
