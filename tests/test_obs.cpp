#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "datagen/random_matrices.hpp"
#include "engine/solver_engine.hpp"
#include "exec/solver.hpp"
#include "exec/verify.hpp"
#include "harness/stats.hpp"
#include "obs/registry.hpp"

/// \file test_obs.cpp
/// The observability layer: trace rings (wraparound, dropped accounting,
/// concurrent emit — run under TSan in CI), session JSON export (span
/// nesting), the metrics registry (histogram quantiles vs the exact
/// harness::quantile), the proportional SLO step function, and the
/// serving-stats API contract. Every test here also compiles (and the
/// non-ring-emission subset passes identically) under -DSTS_TRACING=OFF,
/// which CI builds as a separate job.

namespace sts::obs {
namespace {

TraceEvent spanEvent(std::uint64_t ts, std::uint64_t dur, const char* name) {
  TraceEvent e;
  e.ts_ns = ts;
  e.dur_ns = dur;
  e.cat = "test";
  e.name = name;
  return e;
}

TEST(TraceRing, RoundsCapacityUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(1).capacity(), 2u);  // floor of 2 slots
  EXPECT_EQ(TraceRing(3).capacity(), 4u);
  EXPECT_EQ(TraceRing(1000).capacity(), 1024u);
  EXPECT_EQ(TraceRing(1024).capacity(), 1024u);
}

TEST(TraceRing, RetainsEverythingBelowCapacity) {
  TraceRing ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ring.emit(spanEvent(i, 1, "e"));
  }
  EXPECT_EQ(ring.emitted(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].ts_ns, i);  // oldest first
  }
}

TEST(TraceRing, WraparoundDropsOldestAndCountsDrops) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 11; ++i) {
    ring.emit(spanEvent(i, 1, "e"));
  }
  EXPECT_EQ(ring.emitted(), 11u);
  EXPECT_EQ(ring.dropped(), 7u);  // 11 emitted, 4 retained
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The retained window is the newest 4, still oldest first.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].ts_ns, 7 + i);
  }
}

#if STS_TRACING
TEST(TraceSession, StartStopTogglesTheProcessSwitch) {
  EXPECT_EQ(TraceSession::current(), nullptr);
  EXPECT_FALSE(tracingActive());
  auto session = TraceSession::start();
  ASSERT_NE(session, nullptr);
  EXPECT_TRUE(tracingActive());
  EXPECT_EQ(TraceSession::start(), session);  // idempotent while active
  session->stop();
  EXPECT_FALSE(tracingActive());
  EXPECT_EQ(TraceSession::current(), nullptr);
}

/// Extracts the `"ts"` and `"dur"` microsecond values of the (single)
/// event named `name` from a trace_event JSON string.
void extractSpan(const std::string& json, const std::string& name,
                 double* ts_us, double* dur_us) {
  const std::size_t at = json.find("\"name\":\"" + name + "\"");
  ASSERT_NE(at, std::string::npos) << name << " missing from " << json;
  const std::size_t ts_at = json.find("\"ts\":", at);
  ASSERT_NE(ts_at, std::string::npos);
  *ts_us = std::strtod(json.c_str() + ts_at + 5, nullptr);
  const std::size_t dur_at = json.find("\"dur\":", at);
  ASSERT_NE(dur_at, std::string::npos);
  *dur_us = std::strtod(json.c_str() + dur_at + 6, nullptr);
}

TEST(TraceSession, NestedSpansNestInTheExportedJson) {
  auto session = TraceSession::start();
  {
    ScopedSpan outer("test", "outer");
    {
      ScopedSpan inner("test", "inner", "depth", 1);
    }
  }
  emitInstant("test", "marker", "k", 7);
  session->stop();
  EXPECT_EQ(session->numThreads(), 1u);
  EXPECT_EQ(session->totalEvents(), 3u);
  EXPECT_EQ(session->droppedEvents(), 0u);

  const std::string json = session->toJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"depth\":1"), std::string::npos);
  EXPECT_NE(json.find("\"k\":7"), std::string::npos);

  // The outer scope strictly contains the inner one on the timeline.
  double outer_ts = 0, outer_dur = 0, inner_ts = 0, inner_dur = 0;
  extractSpan(json, "outer", &outer_ts, &outer_dur);
  extractSpan(json, "inner", &inner_ts, &inner_dur);
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_ts + inner_dur, outer_ts + outer_dur + 1e-3);
}

TEST(TraceSession, ConcurrentEmittersEachGetTheirOwnRing) {
  auto session = TraceSession::start();
  constexpr int kThreads = 4;
  constexpr int kEventsPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kEventsPerThread; ++i) {
        ScopedSpan span("test", "work", "thread", static_cast<std::uint64_t>(t));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  session->stop();
  EXPECT_EQ(session->numThreads(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(session->totalEvents(),
            static_cast<std::uint64_t>(kThreads) * kEventsPerThread);
  EXPECT_EQ(session->droppedEvents(), 0u);
  // The export must serialize all rings without touching freed memory
  // (TSan job); spot-check it is parseable-looking JSON.
  const std::string json = session->toJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(TraceSession, RingCapacityDropsAreReported) {
  TraceSessionOptions options;
  options.ring_capacity = 16;
  auto session = TraceSession::start(options);
  for (int i = 0; i < 100; ++i) {
    emitInstant("test", "flood");
  }
  session->stop();
  // totalEvents reports what the export retains; the rest are dropped.
  EXPECT_EQ(session->totalEvents(), 16u);
  EXPECT_EQ(session->droppedEvents(), 100u - 16u);
}
#endif  // STS_TRACING

TEST(SolveTrace, AccumulatesAcrossThreadsAndTracksMaxWait) {
  SolveTrace trace;
  std::thread a([&] { trace.add(100, 10, 2, 10); });
  std::thread b([&] { trace.add(200, 30, 2, 25); });
  a.join();
  b.join();
  trace.add(1, 1, 1, 5);
  EXPECT_EQ(trace.compute_ns.load(), 301u);
  EXPECT_EQ(trace.wait_ns.load(), 41u);
  EXPECT_EQ(trace.thread_steps.load(), 5u);
  EXPECT_EQ(trace.max_wait_ns.load(), 25u);  // max, not sum
}

#if STS_TRACING
TEST(StepTracer, SplitsComputeFromWaitIntoTheSink) {
  SolveTrace sink;
  {
    StepTracer tracer(&sink);
    tracer.computeDone(0);
    tracer.waitDone(0);
    tracer.computeDone(1);
    tracer.waitDone(1);
  }
  EXPECT_EQ(sink.thread_steps.load(), 2u);
  // Both segments measured something (monotonic clock, possibly 0 on a
  // coarse clock — the invariant is accumulation, not magnitude).
  EXPECT_GE(sink.compute_ns.load() + sink.wait_ns.load(), 0u);
}

TEST(StepTracer, DisabledWithoutSinkOrSession) {
  SolveTrace sink;
  {
    StepTracer tracer(nullptr);
    tracer.computeDone(0);
    tracer.waitDone(0);
  }
  EXPECT_EQ(sink.thread_steps.load(), 0u);
}
#endif  // STS_TRACING

TEST(Histogram, QuantilesMatchExactQuantileWithinBucketError) {
  Histogram hist;
  std::mt19937_64 rng(42);
  std::lognormal_distribution<double> dist(-6.0, 1.2);  // latency-shaped
  std::vector<double> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const double v = dist(rng);
    values.push_back(v);
    hist.record(v);
  }
  EXPECT_EQ(hist.count(), 20000u);
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    const double exact = harness::quantile(values, q);
    const double approx = hist.quantile(q);
    // Log-bucketed with 8 sub-buckets/octave: one sub-bucket width
    // (2^(1/8)-1 ~ 9%) of bucketing error, plus the nearest-rank vs
    // sample-quantile definitional gap — 12% covers both.
    EXPECT_NEAR(approx, exact, exact * 0.12)
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
}

TEST(Histogram, HandlesExtremesAndEmpty) {
  Histogram hist;
  EXPECT_EQ(hist.quantile(0.5), 0.0);  // empty histogram
  hist.record(0.0);                    // underflow bucket
  hist.record(1e300);                  // overflow bucket
  hist.record(-1.0);                   // negative: clamps with zero/underflow
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_GE(hist.quantile(1.0), hist.quantile(0.01));
}

TEST(Registry, GetOrCreateReturnsStableInstruments) {
  Registry registry;
  Counter& c1 = registry.counter("test.requests");
  Counter& c2 = registry.counter("test.requests");
  EXPECT_EQ(&c1, &c2);
  c1.inc();
  c2.add(4);
  EXPECT_EQ(c1.value(), 5u);
  registry.gauge("test.width").set(3.5);
  registry.histogram("test.latency").record(0.25);
  const std::string text = registry.renderText();
  EXPECT_NE(text.find("test.requests 5"), std::string::npos);
  EXPECT_NE(text.find("test.width 3.5"), std::string::npos);
  EXPECT_NE(text.find("test.latency_count 1"), std::string::npos);
  const std::string json = registry.renderJson();
  EXPECT_NE(json.find("\"test.requests\":5"), std::string::npos);
}

}  // namespace
}  // namespace sts::obs

namespace sts::engine {
namespace {

TEST(SloStep, HoldsInsideTheDeadband) {
  // p95 exactly at target, and within +-10% of it: no actuation.
  EXPECT_EQ(sloStep(0.050, 0.050, 4, 8, 1, false), 4);
  EXPECT_EQ(sloStep(0.054, 0.050, 4, 8, 1, true), 4);
  EXPECT_EQ(sloStep(0.046, 0.050, 4, 8, 1, true), 4);
}

TEST(SloStep, GrowsProportionallyToTheViolation) {
  // 50% over target at width 4: step = round(0.5 * 0.5 * 4) = 1.
  EXPECT_EQ(sloStep(0.075, 0.050, 4, 8, 1, false), 5);
  // 200% over target at width 2: step = round(0.5 * 2.0 * 2) = 2.
  EXPECT_EQ(sloStep(0.150, 0.050, 2, 8, 1, false), 4);
  // Unreachable target saturates at base without overflowing.
  EXPECT_EQ(sloStep(10.0, 1e-12, 2, 8, 1, false), 8);
}

TEST(SloStep, ShrinksOnlyUnderDeepBacklog) {
  // 60% under target but shallow queue: latency slack is not spent.
  EXPECT_EQ(sloStep(0.020, 0.050, 4, 8, 1, false), 4);
  // Same slack with deep backlog: step = round(0.5 * 0.6 * 4) = 1.
  EXPECT_EQ(sloStep(0.020, 0.050, 4, 8, 1, true), 3);
  // Never below min_team.
  EXPECT_EQ(sloStep(0.001, 0.050, 2, 8, 2, true), 2);
}

TEST(ServingStats, ApiStaysBackCompatibleWithHistogramQuantiles) {
  const auto lower = datagen::bandedLower(400, 8, 0.5, 13);
  exec::SolverOptions solver_opts;
  solver_opts.num_threads = 2;
  auto solver = std::make_shared<const exec::TriangularSolver>(
      exec::TriangularSolver::analyze(lower, solver_opts));

  EngineOptions options;
  options.num_workers = 1;
  options.max_batch = 4;
  SolverEngine engine(options);
  const auto id = engine.registerSolver(solver);

  const auto x_true = exec::referenceSolution(lower.rows(), /*seed=*/5);
  const auto b = lower.multiply(x_true);
  std::vector<std::future<std::vector<double>>> futures;
  for (int i = 0; i < 12; ++i) futures.push_back(engine.submit(id, b));
  for (auto& f : futures) {
    EXPECT_LT(exec::relMaxAbsDiff(f.get(), x_true), 1e-10);
  }
  engine.drain();

  const SolverServingStats stats = engine.stats(id);
  EXPECT_EQ(stats.requests, 12u);
  EXPECT_GE(stats.batches, 3u);  // max_batch 4 caps coalescing
  EXPECT_EQ(stats.rhs_solved, 12u);
  EXPECT_GT(stats.latency_p50_seconds, 0.0);
  // Histogram quantiles are monotone in q by construction.
  EXPECT_GE(stats.latency_p95_seconds, stats.latency_p50_seconds);
  EXPECT_GT(stats.throughput_rhs_per_second, 0.0);
  EXPECT_EQ(stats.slo_steps, 0u);  // elasticity off: no controller steps

  // The metrics registry mirrors the counters the snapshot reports.
  const std::string text = engine.metrics().renderText();
  EXPECT_NE(text.find("sts.solver0.requests 12"), std::string::npos);
  EXPECT_NE(text.find("sts.solver0.latency_seconds_count 12"),
            std::string::npos);
}

TEST(TraceSummary, AttributesComputePerTeamAndStorage) {
  const auto lower = datagen::bandedLower(500, 10, 0.6, 17);
  exec::SolverOptions solver_opts;
  solver_opts.num_threads = 2;
  auto solver = std::make_shared<const exec::TriangularSolver>(
      exec::TriangularSolver::analyze(lower, solver_opts));

  EngineOptions options;
  options.num_workers = 1;
  options.max_batch = 4;
  options.trace = true;
  SolverEngine engine(options);
  const auto id = engine.registerSolver(solver);

  const auto x_true = exec::referenceSolution(lower.rows(), /*seed=*/7);
  const auto b = lower.multiply(x_true);
  std::vector<std::future<std::vector<double>>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(engine.submit(id, b));
  for (auto& f : futures) f.get();
  engine.drain();

  const auto rows = engine.traceSummary(id);
#if STS_TRACING
  ASSERT_FALSE(rows.empty());
  std::uint64_t batches = 0;
  for (const auto& row : rows) {
    batches += row.batches;
    EXPECT_GT(row.thread_steps, 0u);
    EXPECT_GT(row.compute_seconds + row.wait_seconds, 0.0);
    EXPECT_GE(row.wait_fraction, 0.0);
    EXPECT_LE(row.wait_fraction, 1.0);
    EXPECT_GE(row.max_wait_seconds, 0.0);
  }
  EXPECT_EQ(batches, engine.stats(id).batches);
#else
  // Compiled out: attribution is empty but the API stays callable.
  EXPECT_TRUE(rows.empty());
#endif
}

#if STS_TRACING
TEST(TraceSummary, SolvesAreBitwiseIdenticalWithTracingOnAndOff) {
  const auto lower = datagen::bandedLower(600, 12, 0.5, 23);
  exec::SolverOptions solver_opts;
  solver_opts.num_threads = 2;
  const auto solver = exec::TriangularSolver::analyze(lower, solver_opts);
  const auto x_true = exec::referenceSolution(lower.rows(), /*seed=*/3);
  const auto b = lower.multiply(x_true);

  auto ctx = solver.createContext();
  std::vector<double> x_plain(b.size(), 0.0);
  solver.solve(b, x_plain, *ctx, solver.numThreads());

  auto session = obs::TraceSession::start();
  obs::SolveTrace sink;
  ctx->setTrace(&sink);
  std::vector<double> x_traced(b.size(), 0.0);
  solver.solve(b, x_traced, *ctx, solver.numThreads());
  session->stop();
  ctx->setTrace(nullptr);

  ASSERT_EQ(x_plain.size(), x_traced.size());
  for (std::size_t i = 0; i < x_plain.size(); ++i) {
    EXPECT_EQ(x_plain[i], x_traced[i]) << "row " << i;  // bitwise
  }
  EXPECT_GT(sink.thread_steps.load(), 0u);
  EXPECT_GT(session->totalEvents(), 0u);
}
#endif  // STS_TRACING

}  // namespace
}  // namespace sts::engine
