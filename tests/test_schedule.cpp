#include "core/schedule.hpp"

#include <gtest/gtest.h>

#include "dag/dag.hpp"
#include "datagen/random_matrices.hpp"
#include "test_util.hpp"

namespace sts::core {
namespace {

using dag::Dag;
using dag::Edge;

Dag smallDag() {
  // 0 -> 1 -> 3, 0 -> 2, 2 -> 3.
  return Dag::fromEdges(4, std::vector<Edge>{{0, 1}, {1, 3}, {0, 2}, {2, 3}});
}

TEST(Schedule, SerialScheduleIsValid) {
  const Dag d = smallDag();
  const Schedule s = Schedule::serial(d);
  EXPECT_EQ(s.numCores(), 1);
  EXPECT_EQ(s.numSupersteps(), 1);
  EXPECT_EQ(s.numBarriers(), 0);
  EXPECT_TRUE(validateSchedule(d, s).ok);
}

TEST(Schedule, FromAssignmentCompactsSupersteps) {
  const Dag d = smallDag();
  const std::vector<int> core = {0, 0, 0, 0};
  const std::vector<index_t> superstep = {0, 5, 5, 9};  // gaps
  const Schedule s = Schedule::fromAssignment(d, 2, core, superstep);
  EXPECT_EQ(s.numSupersteps(), 3);
  EXPECT_EQ(s.superstepOf(0), 0);
  EXPECT_EQ(s.superstepOf(1), 1);
  EXPECT_EQ(s.superstepOf(3), 2);
  EXPECT_TRUE(validateSchedule(d, s).ok);
}

TEST(Schedule, GroupsPartitionVertices) {
  const Dag d = smallDag();
  const std::vector<int> core = {0, 1, 0, 1};
  const std::vector<index_t> superstep = {0, 1, 1, 2};
  const Schedule s = Schedule::fromAssignment(d, 2, core, superstep);
  size_t total = 0;
  for (index_t ss = 0; ss < s.numSupersteps(); ++ss) {
    for (int p = 0; p < s.numCores(); ++p) total += s.group(ss, p).size();
  }
  EXPECT_EQ(total, 4u);
  EXPECT_TRUE(validateSchedule(d, s).ok);
}

TEST(ScheduleValidation, DetectsBackwardsSuperstep) {
  const Dag d = smallDag();
  const std::vector<int> core = {0, 0, 0, 0};
  const std::vector<index_t> superstep = {1, 0, 1, 2};  // child before parent
  const Schedule s = Schedule::fromAssignment(d, 1, core, superstep);
  const auto v = validateSchedule(d, s);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.message.find("backwards"), std::string::npos);
}

TEST(ScheduleValidation, DetectsCrossCoreWithoutBarrier) {
  const Dag d = smallDag();
  const std::vector<int> core = {0, 1, 0, 0};  // edge 0->1 crosses cores
  const std::vector<index_t> superstep = {0, 0, 1, 2};
  const Schedule s = Schedule::fromAssignment(d, 2, core, superstep);
  const auto v = validateSchedule(d, s);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.message.find("crosses cores"), std::string::npos);
}

TEST(ScheduleValidation, AcceptsSameCoreChainInOneSuperstep) {
  const Dag d = smallDag();
  const std::vector<int> core = {0, 0, 0, 0};
  const std::vector<index_t> superstep = {0, 0, 0, 0};
  const Schedule s = Schedule::fromAssignment(d, 1, core, superstep);
  EXPECT_TRUE(validateSchedule(d, s).ok);
}

TEST(ScheduleValidation, DetectsBadInGroupOrder) {
  const Dag d = smallDag();
  // Hand-build a schedule whose in-group order lists a child before its
  // parent on the same core and superstep.
  const Schedule s(4, 1, 1, {0, 0, 0, 0}, {0, 0, 0, 0}, {3, 2, 1, 0},
                   {0, 4});
  const auto v = validateSchedule(d, s);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.message.find("execution order"), std::string::npos);
}

TEST(ScheduleValidation, DetectsDuplicateVertexInOrder) {
  const Schedule s(4, 1, 1, {0, 0, 0, 0}, {0, 0, 0, 0}, {0, 1, 2, 2},
                   {0, 4});
  const auto v = validateSchedule(smallDag(), s);
  EXPECT_FALSE(v.ok);
}

TEST(ScheduleStats, SerialBaseline) {
  const Dag d = smallDag();
  const Schedule s = Schedule::serial(d);
  const ScheduleStats stats = computeScheduleStats(d, s, 500.0);
  EXPECT_EQ(stats.supersteps, 1);
  EXPECT_EQ(stats.barriers, 0);
  EXPECT_EQ(stats.total_work, d.totalWeight());
  EXPECT_EQ(stats.makespan_work, d.totalWeight());
  EXPECT_DOUBLE_EQ(stats.bsp_cost, static_cast<double>(d.totalWeight()));
  // Serial on a 3-wavefront DAG: reduction factor = 3 / 1.
  EXPECT_DOUBLE_EQ(stats.wavefront_reduction, 3.0);
}

TEST(ScheduleStats, BalancedTwoCoreSchedule) {
  // Two independent chains on two cores: perfectly balanced.
  const Dag d = Dag::fromEdges(4, std::vector<Edge>{{0, 2}, {1, 3}});
  const std::vector<int> core = {0, 1, 0, 1};
  const std::vector<index_t> superstep = {0, 0, 0, 0};
  const Schedule s = Schedule::fromAssignment(d, 2, core, superstep);
  ASSERT_TRUE(validateSchedule(d, s).ok);
  const ScheduleStats stats = computeScheduleStats(d, s, 500.0);
  EXPECT_EQ(stats.makespan_work, 2);
  EXPECT_DOUBLE_EQ(stats.imbalance, 1.0);
}

TEST(Schedule, ConstructorRejectsMalformedGroupPtr) {
  EXPECT_THROW(Schedule(2, 1, 1, {0, 0}, {0, 0}, {0, 1}, {0, 1}),
               std::invalid_argument);
  EXPECT_THROW(Schedule(2, 0, 1, {0, 0}, {0, 0}, {0, 1}, {0, 2}),
               std::invalid_argument);
}

TEST(Schedule, EmptyDag) {
  const Dag d;
  const Schedule s = Schedule::serial(d);
  EXPECT_EQ(s.numSupersteps(), 0);
  EXPECT_TRUE(validateSchedule(d, s).ok);
}

}  // namespace
}  // namespace sts::core
