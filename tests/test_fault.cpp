#include "fault/failpoint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <new>
#include <stdexcept>
#include <string>

#include "datagen/random_matrices.hpp"
#include "engine/solver_engine.hpp"
#include "exec/solver.hpp"
#include "exec/verify.hpp"

namespace sts::fault {
namespace {

/// The library API (registry, parser, deterministic trigger hash) compiles
/// in EVERY build; only the STS_FAILPOINT call-site macros are conditional
/// on STS_FAULTS. These tests therefore run under both configurations —
/// the site-integration cases at the bottom are the only #if-gated part.

class FailpointTest : public ::testing::Test {
 protected:
  // Every test starts and ends with a disarmed registry: failpoints are
  // process-global, and a leaked armed point would bleed into whichever
  // test the runner schedules next.
  void SetUp() override { FailpointRegistry::global().reset(); }
  void TearDown() override { FailpointRegistry::global().reset(); }
};

TEST_F(FailpointTest, RegistryIsIdempotentAndPointerStable) {
  auto& registry = FailpointRegistry::global();
  Failpoint& a = registry.failpoint("test.some_point");
  Failpoint& b = registry.failpoint("test.some_point");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.name(), "test.some_point");
  EXPECT_FALSE(a.armed());
}

TEST_F(FailpointTest, ConfigureArmsAndResetDisarms) {
  auto& registry = FailpointRegistry::global();
  registry.configure("test.a=delay(1),p=0.5;test.b=fail,limit=2");
  EXPECT_TRUE(registry.failpoint("test.a").armed());
  EXPECT_TRUE(registry.failpoint("test.b").armed());
  registry.reset();
  EXPECT_FALSE(registry.failpoint("test.a").armed());
  EXPECT_FALSE(registry.failpoint("test.b").armed());
  EXPECT_EQ(registry.hits("test.a"), 0u);
}

TEST_F(FailpointTest, MalformedSpecsThrowAndArmNothing) {
  auto& registry = FailpointRegistry::global();
  EXPECT_THROW(registry.configure("noequals"), std::invalid_argument);
  EXPECT_THROW(registry.configure("p=delay(1)x"), std::invalid_argument);
  EXPECT_THROW(registry.configure("x=unknown_action"), std::invalid_argument);
  EXPECT_THROW(registry.configure("x=delay(1),p=2.5"), std::invalid_argument);
  EXPECT_THROW(registry.configure("x=delay(1),frequency=3"),
               std::invalid_argument);
  EXPECT_THROW(registry.configure("x=delay"), std::invalid_argument);
  // All-clauses-first parsing: one bad clause must not half-arm the good
  // one before it.
  EXPECT_THROW(registry.configure("test.good=delay(1);test.bad="),
               std::invalid_argument);
  EXPECT_FALSE(registry.failpoint("test.good").armed());
}

TEST_F(FailpointTest, TriggerDecisionIsDeterministic) {
  // Same (seed, name, rank, arrival) -> same decision, every time: the
  // property that makes a fault run replayable.
  for (std::uint64_t i = 0; i < 200; ++i) {
    const bool first = wouldTrigger(42, "test.det", 3, i, 0.3);
    EXPECT_EQ(first, wouldTrigger(42, "test.det", 3, i, 0.3));
  }
  // And the decision stream actually depends on each coordinate.
  int diff_seed = 0;
  int diff_rank = 0;
  int diff_name = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    diff_seed += wouldTrigger(1, "test.det", 0, i, 0.5) !=
                 wouldTrigger(2, "test.det", 0, i, 0.5);
    diff_rank += wouldTrigger(1, "test.det", 0, i, 0.5) !=
                 wouldTrigger(1, "test.det", 1, i, 0.5);
    diff_name += wouldTrigger(1, "test.det", 0, i, 0.5) !=
                 wouldTrigger(1, "test.other", 0, i, 0.5);
  }
  EXPECT_GT(diff_seed, 0);
  EXPECT_GT(diff_rank, 0);
  EXPECT_GT(diff_name, 0);
}

TEST_F(FailpointTest, ProbabilityEdgesAreExact) {
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_TRUE(wouldTrigger(7, "test.p", 0, i, 1.0));
    EXPECT_FALSE(wouldTrigger(7, "test.p", 0, i, 0.0));
  }
}

TEST_F(FailpointTest, FireCountsHitsAndHonorsRankFilter) {
  auto& registry = FailpointRegistry::global();
  registry.configure("test.rank=delay(0),rank=1");
  Failpoint& point = registry.failpoint("test.rank");
  for (int i = 0; i < 5; ++i) point.fire(/*rank=*/0);  // filtered out
  EXPECT_EQ(point.hits(), 5u);
  EXPECT_EQ(point.triggers(), 0u);
  for (int i = 0; i < 3; ++i) point.fire(/*rank=*/1);
  EXPECT_EQ(point.hits(), 8u);
  EXPECT_EQ(point.triggers(), 3u);
}

TEST_F(FailpointTest, LimitSelfDisarms) {
  auto& registry = FailpointRegistry::global();
  registry.configure("test.limit=delay(0),limit=2");
  Failpoint& point = registry.failpoint("test.limit");
  for (int i = 0; i < 10 && point.armed(); ++i) point.fire(0);
  EXPECT_EQ(point.triggers(), 2u);
  EXPECT_FALSE(point.armed());
}

TEST_F(FailpointTest, FailActionThrowsInjectedFault) {
  auto& registry = FailpointRegistry::global();
  registry.configure("test.fail=fail");
  EXPECT_THROW(registry.failpoint("test.fail").fire(0), InjectedFault);
  registry.configure("test.alloc=badalloc");
  EXPECT_THROW(registry.failpoint("test.alloc").fire(0), std::bad_alloc);
  // The injected message names the point — the debuggability contract.
  try {
    registry.failpoint("test.fail").fire(0);
    FAIL() << "expected InjectedFault";
  } catch (const InjectedFault& fault) {
    EXPECT_NE(std::string(fault.what()).find("test.fail"), std::string::npos);
  }
}

TEST_F(FailpointTest, RearmResetsTheDeterministicSchedule) {
  auto& registry = FailpointRegistry::global();
  registry.configure("test.replay=delay(0),p=0.4", /*seed=*/9);
  Failpoint& point = registry.failpoint("test.replay");
  for (int i = 0; i < 100; ++i) point.fire(0);
  const std::uint64_t first_run = point.triggers();
  registry.configure("test.replay=delay(0),p=0.4", /*seed=*/9);
  for (int i = 0; i < 100; ++i) point.fire(0);
  EXPECT_EQ(point.triggers(), first_run);  // identical replay
}

#if STS_FAULTS
// Site integration: with the macros compiled in, an armed failpoint in the
// engine's batch path must surface through the normal error machinery —
// promises resolve with the injected exception, stats count a failed
// batch, and the engine keeps serving afterwards.
TEST_F(FailpointTest, InjectedBatchFailureResolvesPromises) {
  const auto lower = datagen::bandedLower(200, 6, 0.5, 21);
  exec::SolverOptions solver_opts;
  solver_opts.num_threads = 2;
  auto solver = std::make_shared<const exec::TriangularSolver>(
      exec::TriangularSolver::analyze(lower, solver_opts));
  const auto x_true = exec::referenceSolution(lower.rows(), 5);
  const auto b = lower.multiply(x_true);

  engine::SolverEngine engine({.num_workers = 1});
  const auto id = engine.registerSolver(solver);

  FailpointRegistry::global().configure("engine.batch_execute=fail,limit=1");
  auto failed = engine.submit(id, b);
  EXPECT_THROW(failed.get(), InjectedFault);
  EXPECT_GE(FailpointRegistry::global().triggers("engine.batch_execute"), 1u);

  // limit=1 disarmed the point: the engine serves normally again.
  auto ok = engine.submit(id, b);
  std::vector<double> expected(b.size(), 0.0);
  solver->solve(b, expected);
  EXPECT_EQ(ok.get(), expected);
  EXPECT_GE(engine.stats(id).batches_failed, 1u);
}

// A rank-filtered superstep delay perturbs timing but never results: the
// executor hooks are delay-only by contract, and the solve stays exact.
TEST_F(FailpointTest, SuperstepDelayKeepsResultsBitwise) {
  const auto lower = datagen::bandedLower(300, 8, 0.5, 23);
  exec::SolverOptions solver_opts;
  solver_opts.num_threads = 2;
  const auto solver =
      exec::TriangularSolver::analyze(lower, solver_opts);
  const auto x_true = exec::referenceSolution(lower.rows(), 6);
  const auto b = lower.multiply(x_true);

  std::vector<double> clean(b.size(), 0.0);
  solver.solve(b, clean);

  FailpointRegistry::global().configure(
      "exec.superstep=delay(50),p=0.25,rank=1");
  std::vector<double> faulted(b.size(), 0.0);
  solver.solve(b, faulted);
  EXPECT_GT(FailpointRegistry::global().hits("exec.superstep"), 0u);
  EXPECT_EQ(faulted, clean);
}
#endif  // STS_FAULTS

}  // namespace
}  // namespace sts::fault
