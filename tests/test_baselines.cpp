#include <gtest/gtest.h>

#include "baselines/bsplist.hpp"
#include "baselines/hdagg.hpp"
#include "baselines/spmp.hpp"
#include "baselines/wavefront.hpp"
#include "dag/dag.hpp"
#include "dag/wavefronts.hpp"
#include "datagen/random_matrices.hpp"
#include "test_util.hpp"

namespace sts::baselines {
namespace {

using core::validateSchedule;
using dag::Dag;
using dag::Edge;

TEST(Wavefront, OneSuperstepPerLevel) {
  for (const auto& [name, lower] : testutil::lowerTriangularZoo()) {
    const Dag d = Dag::fromLowerTriangular(lower);
    const Schedule s = wavefrontSchedule(d, {.num_cores = 2});
    EXPECT_EQ(s.numSupersteps(), dag::criticalPathLength(d)) << name;
    EXPECT_TRUE(validateSchedule(d, s).ok) << name;
  }
}

TEST(Wavefront, ChunksAreContiguousAndBalanced) {
  const Dag d = Dag::fromLowerTriangular(datagen::diagonalMatrix(100));
  const Schedule s = wavefrontSchedule(d, {.num_cores = 4});
  EXPECT_EQ(s.numSupersteps(), 1);
  // Contiguity: core index must be monotone over vertex IDs in one level.
  for (index_t v = 1; v < 100; ++v) {
    EXPECT_GE(s.coreOf(v), s.coreOf(v - 1));
  }
  // Balance: 25 vertices per core.
  std::vector<int> counts(4, 0);
  for (index_t v = 0; v < 100; ++v) ++counts[s.coreOf(v)];
  for (int p = 0; p < 4; ++p) EXPECT_EQ(counts[p], 25);
}

TEST(BalancedChunks, WeightAwareSplit) {
  // One heavy vertex should get its own chunk under weight balancing.
  std::vector<Edge> no_edges;
  const std::vector<dag::weight_t> w = {100, 1, 1, 1};
  const Dag d = Dag::fromEdges(4, no_edges, w);
  const std::vector<index_t> verts = {0, 1, 2, 3};
  const auto bounds = balancedContiguousChunks(d, verts, 2);
  EXPECT_EQ(bounds[0], 0u);
  EXPECT_EQ(bounds[1], 1u);  // heavy vertex alone
  EXPECT_EQ(bounds[2], 4u);
}

TEST(Hdagg, GluesIndependentChainsIntoOneSuperstep) {
  // Two disjoint equal chains: components pack perfectly onto 2 cores, so
  // HDagg should glue ALL wavefronts into a single superstep.
  std::vector<Edge> edges;
  const index_t len = 50;
  for (index_t i = 1; i < len; ++i) {
    edges.emplace_back(i - 1, i);                      // chain A: 0..len-1
    edges.emplace_back(len + i - 1, len + i);          // chain B
  }
  const Dag d = Dag::fromEdges(2 * len, edges);
  HdaggOptions opts;
  opts.num_cores = 2;
  opts.coarsen = false;
  const Schedule s = hdaggSchedule(d, opts);
  EXPECT_TRUE(validateSchedule(d, s).ok);
  EXPECT_EQ(s.numSupersteps(), 1);
  // The two chains must land on different cores.
  EXPECT_NE(s.coreOf(0), s.coreOf(len));
}

TEST(Hdagg, SingleChainFallsBackToOneSuperstepPerCore) {
  // One chain cannot be balanced across 2 cores; single-level windows are
  // accepted unconditionally, and every level extension keeps the single
  // component, which always fails the balance test. With coarsening the
  // funnel collapses the chain instead.
  const Dag d = Dag::fromLowerTriangular(datagen::chainLower(40));
  HdaggOptions opts;
  opts.num_cores = 2;
  const Schedule s = hdaggSchedule(d, opts);
  EXPECT_TRUE(validateSchedule(d, s).ok);
  EXPECT_LE(s.numSupersteps(), 40);
}

TEST(Hdagg, NeverWorseThanWavefrontsInSuperstepCount) {
  for (const auto& [name, lower] : testutil::lowerTriangularZoo()) {
    const Dag d = Dag::fromLowerTriangular(lower);
    HdaggOptions opts;
    opts.num_cores = 2;
    opts.coarsen = false;
    const Schedule s = hdaggSchedule(d, opts);
    EXPECT_LE(s.numSupersteps(), dag::criticalPathLength(d)) << name;
  }
}

TEST(Hdagg, ImbalanceThetaControlsGluing) {
  // A permissive theta must glue at least as aggressively as a strict one.
  const auto lower = datagen::erdosRenyiLower({.n = 1500, .p = 3e-3, .seed = 70});
  const Dag d = Dag::fromLowerTriangular(lower);
  HdaggOptions strict, loose;
  strict.num_cores = loose.num_cores = 2;
  strict.coarsen = loose.coarsen = false;
  strict.imbalance_theta = 1.01;
  loose.imbalance_theta = 2.0;
  const Schedule s_strict = hdaggSchedule(d, strict);
  const Schedule s_loose = hdaggSchedule(d, loose);
  EXPECT_LE(s_loose.numSupersteps(), s_strict.numSupersteps());
}

TEST(Spmp, TransitiveReductionReportedAndSound) {
  const auto lower = datagen::erdosRenyiLower({.n = 600, .p = 8e-3, .seed = 71});
  const Dag d = Dag::fromLowerTriangular(lower);
  const auto result = spmpSchedule(d, {.num_cores = 2});
  EXPECT_GT(result.removed_edges, 0);
  EXPECT_EQ(result.reduced_dag.numEdges() + result.removed_edges,
            d.numEdges());
  EXPECT_TRUE(validateSchedule(d, result.schedule).ok);
}

TEST(Spmp, NoReductionOption) {
  const auto lower = datagen::erdosRenyiLower({.n = 300, .p = 8e-3, .seed = 72});
  const Dag d = Dag::fromLowerTriangular(lower);
  SpmpOptions opts;
  opts.num_cores = 2;
  opts.transitive_reduction = false;
  const auto result = spmpSchedule(d, opts);
  EXPECT_EQ(result.removed_edges, 0);
  EXPECT_EQ(result.reduced_dag.numEdges(), d.numEdges());
}

TEST(BspList, BottomLevelsKnownValues) {
  // 0 -> 1 -> 2, 0 -> 3.
  const Dag d =
      Dag::fromEdges(4, std::vector<Edge>{{0, 1}, {1, 2}, {0, 3}});
  const auto bottom = computeBottomLevels(d);
  EXPECT_EQ(bottom[2], 1);
  EXPECT_EQ(bottom[3], 1);
  EXPECT_EQ(bottom[1], 2);
  EXPECT_EQ(bottom[0], 3);
}

TEST(BspList, SchedulesReadySetPerSuperstep) {
  const Dag d = Dag::fromLowerTriangular(datagen::diagonalMatrix(10));
  const Schedule s = bspListSchedule(d, {.num_cores = 2});
  EXPECT_EQ(s.numSupersteps(), 1);
  EXPECT_TRUE(validateSchedule(d, s).ok);
}

TEST(BspList, CriticalPathPriorityPicksDeepVerticesFirst) {
  // Vertices on the long chain should be scheduled as soon as ready even
  // when many shallow vertices compete.
  std::vector<Edge> edges;
  for (index_t i = 1; i < 20; ++i) edges.emplace_back(i - 1, i);  // chain
  // 50 shallow independent vertices 20..69.
  const Dag d = Dag::fromEdges(70, edges);
  const Schedule s = bspListSchedule(d, {.num_cores = 2});
  EXPECT_TRUE(validateSchedule(d, s).ok);
  // The chain forces at least 20 supersteps; shallow work fills them.
  EXPECT_GE(s.numSupersteps(), 20);
}

}  // namespace
}  // namespace sts::baselines
