#include "dag/dag.hpp"

#include <gtest/gtest.h>

#include "dag/toposort.hpp"
#include "dag/transitive.hpp"
#include "dag/wavefronts.hpp"
#include "datagen/random_matrices.hpp"
#include "sparse/csr.hpp"
#include "test_util.hpp"

namespace sts::dag {
namespace {

using sparse::CsrMatrix;
using sts::Triplet;

/// The paper's Figure 1.1 example: 6x6 lower triangular with
/// rows a..f = 0..5; edges a->b, a->c, b->d, c->d(?) etc. We use a concrete
/// small matrix with known structure.
CsrMatrix figureMatrix() {
  // Row 0: diag.  Row 1: (1,0).  Row 2: (2,0).  Row 3: (3,1), (3,2).
  // Row 4: (4,3).  Row 5: (5,0).
  std::vector<Triplet> t = {{0, 0, 1.0}, {1, 0, 1.0}, {1, 1, 1.0},
                            {2, 0, 1.0}, {2, 2, 1.0}, {3, 1, 1.0},
                            {3, 2, 1.0}, {3, 3, 1.0}, {4, 3, 1.0},
                            {4, 4, 1.0}, {5, 0, 1.0}, {5, 5, 1.0}};
  return CsrMatrix::fromTriplets(6, 6, t);
}

TEST(Dag, FromLowerTriangularStructure) {
  const Dag d = Dag::fromLowerTriangular(figureMatrix());
  d.validate();
  EXPECT_EQ(d.numVertices(), 6);
  EXPECT_EQ(d.numEdges(), 6);
  EXPECT_TRUE(d.hasEdge(0, 1));
  EXPECT_TRUE(d.hasEdge(0, 2));
  EXPECT_TRUE(d.hasEdge(1, 3));
  EXPECT_TRUE(d.hasEdge(2, 3));
  EXPECT_TRUE(d.hasEdge(3, 4));
  EXPECT_TRUE(d.hasEdge(0, 5));
  EXPECT_FALSE(d.hasEdge(1, 2));
  // Weights are row nnz counts.
  EXPECT_EQ(d.weight(0), 1);
  EXPECT_EQ(d.weight(3), 3);
  EXPECT_EQ(d.totalWeight(), 12);
  EXPECT_TRUE(d.isAcyclic());
}

TEST(Dag, SourcesAndSinks) {
  const Dag d = Dag::fromLowerTriangular(figureMatrix());
  EXPECT_EQ(d.sources(), (std::vector<index_t>{0}));
  EXPECT_EQ(d.sinks(), (std::vector<index_t>{4, 5}));
}

TEST(Dag, FromEdgesDeduplicates) {
  const std::vector<Edge> edges = {{0, 1}, {0, 1}, {1, 2}};
  const Dag d = Dag::fromEdges(3, edges);
  EXPECT_EQ(d.numEdges(), 2);
}

TEST(Dag, FromEdgesRejectsSelfLoopAndRange) {
  EXPECT_THROW(Dag::fromEdges(2, std::vector<Edge>{{0, 0}}),
               std::invalid_argument);
  EXPECT_THROW(Dag::fromEdges(2, std::vector<Edge>{{0, 2}}),
               std::invalid_argument);
}

TEST(Dag, FromEdgesRejectsNonPositiveWeights) {
  const std::vector<Edge> edges = {{0, 1}};
  const std::vector<weight_t> w = {1, 0};
  EXPECT_THROW(Dag::fromEdges(2, edges, w), std::invalid_argument);
}

TEST(Dag, CycleDetection) {
  const std::vector<Edge> cycle = {{0, 1}, {1, 2}, {2, 0}};
  const Dag d = Dag::fromEdges(3, cycle);
  EXPECT_FALSE(d.isAcyclic());
}

TEST(Dag, UpperTriangularMirrorsLower) {
  // U = L^T: the backward DAG of U (with relabeling k = n-1-i) must match
  // the forward DAG of L with IDs reversed.
  const CsrMatrix lower = figureMatrix();
  const CsrMatrix upper = lower.transposed();
  const Dag dl = Dag::fromLowerTriangular(lower);
  const Dag du = Dag::fromUpperTriangular(upper);
  const index_t n = dl.numVertices();
  EXPECT_EQ(du.numEdges(), dl.numEdges());
  for (index_t v = 0; v < n; ++v) {
    // Vertex n-1-i of the backward DAG is row i of U; its weight is the
    // row's entry count (the work of the backward substitution step).
    EXPECT_EQ(du.weight(n - 1 - v),
              std::max<weight_t>(1, upper.rowNnz(v)));
    // Edge (v, c) in the forward DAG of L corresponds to U(v, c) != 0 with
    // c > v, which yields edge (n-1-c, n-1-v) in the backward DAG.
    for (const index_t c : dl.children(v)) {
      EXPECT_TRUE(du.hasEdge(n - 1 - c, n - 1 - v));
    }
  }
  EXPECT_TRUE(du.isAcyclic());
}

TEST(Dag, RangeSubgraph) {
  const Dag d = Dag::fromLowerTriangular(figureMatrix());
  const Dag sub = d.rangeSubgraph(1, 4);  // vertices 1,2,3 -> 0,1,2
  EXPECT_EQ(sub.numVertices(), 3);
  // Surviving edges: (1,3) -> (0,2); (2,3) -> (1,2).
  EXPECT_EQ(sub.numEdges(), 2);
  EXPECT_TRUE(sub.hasEdge(0, 2));
  EXPECT_TRUE(sub.hasEdge(1, 2));
  // Weights preserved from the full matrix (block scheduling, §3.1).
  EXPECT_EQ(sub.weight(0), d.weight(1));
  EXPECT_EQ(sub.weight(2), d.weight(3));
}

TEST(Wavefronts, FigureExample) {
  const Dag d = Dag::fromLowerTriangular(figureMatrix());
  const Wavefronts wf = computeWavefronts(d);
  EXPECT_EQ(wf.num_levels, 4);
  EXPECT_EQ(wf.level[0], 0);
  EXPECT_EQ(wf.level[1], 1);
  EXPECT_EQ(wf.level[2], 1);
  EXPECT_EQ(wf.level[5], 1);
  EXPECT_EQ(wf.level[3], 2);
  EXPECT_EQ(wf.level[4], 3);
  EXPECT_EQ(wf.levelSize(1), 3);
  EXPECT_DOUBLE_EQ(wf.averageWavefrontSize(), 6.0 / 4.0);
  EXPECT_EQ(criticalPathLength(d), 4);
}

TEST(Wavefronts, ChainAndDiagonalExtremes) {
  const Dag chain =
      Dag::fromLowerTriangular(datagen::chainLower(50));
  EXPECT_EQ(computeWavefronts(chain).num_levels, 50);
  const Dag diag =
      Dag::fromLowerTriangular(datagen::diagonalMatrix(50));
  EXPECT_EQ(computeWavefronts(diag).num_levels, 1);
}

TEST(Wavefronts, LevelsAreMonotoneAlongEdges) {
  for (const auto& [name, lower] : testutil::lowerTriangularZoo()) {
    const Dag d = Dag::fromLowerTriangular(lower);
    const Wavefronts wf = computeWavefronts(d);
    for (index_t v = 0; v < d.numVertices(); ++v) {
      for (const index_t c : d.children(v)) {
        EXPECT_LT(wf.level[static_cast<size_t>(v)],
                  wf.level[static_cast<size_t>(c)])
            << name;
      }
    }
  }
}

TEST(Toposort, ValidOrderOnZoo) {
  for (const auto& [name, lower] : testutil::lowerTriangularZoo()) {
    const Dag d = Dag::fromLowerTriangular(lower);
    const auto order = topologicalOrder(d);
    ASSERT_TRUE(order.has_value()) << name;
    EXPECT_TRUE(isTopologicalOrder(d, *order)) << name;
    const auto rev = reverseTopologicalOrder(d);
    ASSERT_TRUE(rev.has_value()) << name;
    EXPECT_FALSE(isTopologicalOrder(d, *rev) && d.numEdges() > 0) << name;
  }
}

TEST(Toposort, DetectsCycle) {
  const Dag d = Dag::fromEdges(2, std::vector<Edge>{{0, 1}, {1, 0}});
  EXPECT_FALSE(topologicalOrder(d).has_value());
}

TEST(Toposort, IsTopologicalOrderRejectsBadInputs) {
  const Dag d = Dag::fromEdges(3, std::vector<Edge>{{0, 1}, {1, 2}});
  EXPECT_TRUE(isTopologicalOrder(d, std::vector<index_t>{0, 1, 2}));
  EXPECT_FALSE(isTopologicalOrder(d, std::vector<index_t>{1, 0, 2}));
  EXPECT_FALSE(isTopologicalOrder(d, std::vector<index_t>{0, 1}));
  EXPECT_FALSE(isTopologicalOrder(d, std::vector<index_t>{0, 0, 2}));
}

TEST(TransitiveReduction, RemovesTriangleEdge) {
  // 0->1, 1->2, 0->2 (redundant).
  const Dag d =
      Dag::fromEdges(3, std::vector<Edge>{{0, 1}, {1, 2}, {0, 2}});
  const auto result = approximateTransitiveReduction(d);
  EXPECT_EQ(result.removed_edges, 1);
  EXPECT_FALSE(result.dag.hasEdge(0, 2));
  EXPECT_TRUE(result.dag.hasEdge(0, 1));
  EXPECT_TRUE(result.dag.hasEdge(1, 2));
}

TEST(TransitiveReduction, PreservesReachabilityOnZoo) {
  for (const auto& [name, lower] : testutil::lowerTriangularZoo()) {
    const Dag d = Dag::fromLowerTriangular(lower);
    if (d.numVertices() > 200) continue;  // exact check is O(V*E)
    const auto result = approximateTransitiveReduction(d);
    for (index_t v = 0; v < d.numVertices(); ++v) {
      for (const index_t c : d.children(v)) {
        EXPECT_TRUE(isReachable(result.dag, v, c))
            << name << ": lost edge (" << v << ", " << c << ")";
      }
    }
  }
}

TEST(TransitiveReduction, KeepsWeightsAndVertices) {
  const Dag d = Dag::fromLowerTriangular(
      datagen::erdosRenyiLower({.n = 300, .p = 0.02, .seed = 5}));
  const auto result = approximateTransitiveReduction(d);
  EXPECT_EQ(result.dag.numVertices(), d.numVertices());
  for (index_t v = 0; v < d.numVertices(); ++v) {
    EXPECT_EQ(result.dag.weight(v), d.weight(v));
  }
  EXPECT_EQ(result.dag.numEdges() + result.removed_edges, d.numEdges());
}

TEST(TransitiveReduction, BudgetStopsEarlyButStaysSound) {
  const Dag d = Dag::fromLowerTriangular(
      datagen::erdosRenyiLower({.n = 200, .p = 0.05, .seed = 6}));
  TransitiveReductionOptions opts;
  opts.max_inspections = 50;
  const auto result = approximateTransitiveReduction(d, opts);
  EXPECT_TRUE(result.exhausted_budget);
  for (index_t v = 0; v < d.numVertices(); ++v) {
    for (const index_t c : d.children(v)) {
      EXPECT_TRUE(isReachable(result.dag, v, c));
    }
  }
}

TEST(TransitiveReduction, NoEffectOnChain) {
  const Dag d = Dag::fromLowerTriangular(datagen::chainLower(30));
  const auto result = approximateTransitiveReduction(d);
  EXPECT_EQ(result.removed_edges, 0);
  EXPECT_EQ(result.dag.numEdges(), d.numEdges());
}

}  // namespace
}  // namespace sts::dag
