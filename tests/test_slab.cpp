#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/schedule.hpp"
#include "datagen/grids.hpp"
#include "datagen/random_matrices.hpp"
#include "engine/solver_engine.hpp"
#include "exec/slab.hpp"
#include "exec/solver.hpp"
#include "exec/storage.hpp"
#include "test_util.hpp"

/// \file test_slab.cpp
/// The storage contract (exec/storage.hpp): the slab layout — per-thread
/// packed row records built per (team, fold policy) — is bitwise
/// indistinguishable from the shared-CSR walk for every executor kind,
/// team size, fold policy, and RHS count; slab construction packs exactly
/// the CSR row data (ASan-covered in CI); rebuilding slabs across refolds
/// is consistent; concurrent mixed-storage solves are safe (TSan-covered
/// in CI); and the engine's storage passthrough serves bitwise-identical
/// batches. Plus the SLO cold-start seeding satellite: registerSolver
/// seeds the controller from the analyze-time cost model.

namespace sts {
namespace {

using exec::SchedulerKind;
using exec::SolverOptions;
using exec::StorageKind;
using exec::TriangularSolver;

struct ExecutorConfig {
  std::string name;
  SolverOptions options;
};

/// One configuration per executor class: contiguous BSP (the reordered
/// §5 path), plain BSP, and the asynchronous P2P executor, plus a
/// wavefront-scheduled BSP for a structurally different schedule.
std::vector<ExecutorConfig> executorConfigs(int width) {
  std::vector<ExecutorConfig> configs;
  {
    SolverOptions opts;
    opts.scheduler = SchedulerKind::kGrowLocal;
    opts.num_threads = width;
    opts.reorder = true;
    configs.push_back({"contiguous", opts});
  }
  {
    SolverOptions opts;
    opts.scheduler = SchedulerKind::kGrowLocal;
    opts.num_threads = width;
    opts.reorder = false;
    configs.push_back({"bsp", opts});
  }
  {
    SolverOptions opts;
    opts.scheduler = SchedulerKind::kWavefront;
    opts.num_threads = width;
    opts.reorder = false;
    configs.push_back({"bsp-wavefront", opts});
  }
  {
    SolverOptions opts;
    opts.scheduler = SchedulerKind::kSpmp;
    opts.num_threads = width;
    configs.push_back({"p2p", opts});
  }
  return configs;
}

std::vector<double> makeRhs(size_t n, index_t nrhs, unsigned salt = 0) {
  std::vector<double> b(n * static_cast<size_t>(nrhs));
  for (size_t i = 0; i < b.size(); ++i) {
    b[i] = 1.0 + 0.125 * static_cast<double>((i * 7 + salt) % 23) -
           0.5 * static_cast<double>((i + salt) % 3);
  }
  return b;
}

TEST(SlabRecords, PackExactRowDataAligned) {
  const auto lower = datagen::erdosRenyiLower({.n = 120, .p = 4e-2,
                                               .seed = 5});
  // Two threads, two supersteps, rows interleaved: thread 0 gets even
  // rows, thread 1 odd rows, split halfway into two steps.
  exec::detail::FoldedLists lists;
  lists.verts.resize(2);
  lists.step_ptr.resize(2);
  for (index_t i = 0; i < lower.rows(); ++i) {
    lists.verts[static_cast<size_t>(i % 2)].push_back(i);
  }
  for (int t = 0; t < 2; ++t) {
    const auto total = static_cast<offset_t>(lists.verts[static_cast<size_t>(t)].size());
    lists.step_ptr[static_cast<size_t>(t)] = {0, total / 2, total};
  }

  const auto plan = exec::detail::buildSlabPlan(lower, lists);
  ASSERT_EQ(plan.threads.size(), 2u);
  for (int t = 0; t < 2; ++t) {
    const auto& slab = plan.threads[static_cast<size_t>(t)];
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(slab.bytes.data()) %
                  exec::detail::kSlabAlignment,
              0u);
    EXPECT_EQ(slab.step_ptr, lists.step_ptr[static_cast<size_t>(t)]);
    const std::byte* p = slab.bytes.data();
    for (const index_t v : lists.verts[static_cast<size_t>(t)]) {
      const auto rec = exec::detail::slabRecordAt(p);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(rec.vals) % 8, 0u);
      ASSERT_EQ(rec.row, v);
      const auto cols = lower.rowCols(v);
      const auto vals = lower.rowValues(v);
      ASSERT_EQ(rec.nnz, cols.size() - 1) << "row " << v;
      for (size_t k = 0; k < rec.nnz; ++k) {
        EXPECT_EQ(rec.cols[k], cols[k]);
        EXPECT_EQ(rec.vals[k], vals[k]);
      }
      EXPECT_EQ(rec.diag, vals.back());
      p = rec.next;
    }
    EXPECT_EQ(p, slab.bytes.data() + slab.bytes.size());
  }
}

TEST(SlabSolve, BitwiseMatchesSharedCsrForEveryConfig) {
  const int width = 4;
  const auto matrices = {
      datagen::grid2dLaplacian5(14, 17).lowerTriangle(),
      datagen::erdosRenyiLower({.n = 350, .p = 8e-3, .seed = 21}),
      datagen::narrowBandLower({.n = 300, .p = 0.2, .b = 8.0, .seed = 22}),
  };
  for (const auto& lower : matrices) {
    const auto n = static_cast<size_t>(lower.rows());
    for (const auto& config : executorConfigs(width)) {
      const auto solver = TriangularSolver::analyze(lower, config.options);
      auto ctx = solver.createContext();
      for (int team = 1; team <= solver.numThreads(); ++team) {
        for (const auto policy :
             {core::FoldPolicy::kModulo, core::FoldPolicy::kBinPack}) {
          for (const index_t nrhs : {1, 3, 8}) {
            const auto b = makeRhs(n, nrhs);
            std::vector<double> x_shared(b.size());
            std::vector<double> x_slab(b.size());
            solver.solveMultiRhs(b, x_shared, nrhs, *ctx, team, policy,
                                 StorageKind::kSharedCsr);
            solver.solveMultiRhs(b, x_slab, nrhs, *ctx, team, policy,
                                 StorageKind::kSlab);
            ASSERT_EQ(x_slab, x_shared)
                << config.name << " team " << team << " policy "
                << core::foldPolicyName(policy) << " nrhs " << nrhs;
            if (nrhs == 1) {
              std::vector<double> x1_shared(n);
              std::vector<double> x1_slab(n);
              solver.solve(b, x1_shared, *ctx, team, policy,
                           StorageKind::kSharedCsr);
              solver.solve(b, x1_slab, *ctx, team, policy,
                           StorageKind::kSlab);
              ASSERT_EQ(x1_slab, x1_shared) << config.name << " team "
                                            << team;
            }
          }
        }
      }
    }
  }
}

TEST(SlabSolve, RebuildOnRefoldStaysBitwise) {
  // Alternating team sizes and policies forces slab (re)builds at every
  // new (team, policy) key and cache reuse on revisits; each must agree
  // with the shared-CSR walk of the same fold.
  const auto lower = datagen::bandedLower(280, 10, 0.6, 31);
  const auto n = static_cast<size_t>(lower.rows());
  SolverOptions opts;
  opts.num_threads = 4;
  const auto solver = TriangularSolver::analyze(lower, opts);
  auto ctx = solver.createContext();
  const auto b = makeRhs(n, 3);
  const int sequence[] = {4, 1, 3, 4, 2, 1, 3};
  for (int round = 0; round < 2; ++round) {
    for (const int team : sequence) {
      const auto policy = (round + team) % 2 == 0
                              ? core::FoldPolicy::kModulo
                              : core::FoldPolicy::kBinPack;
      std::vector<double> x_shared(b.size());
      std::vector<double> x_slab(b.size());
      solver.solveMultiRhs(b, x_shared, 3, *ctx, team, policy,
                           StorageKind::kSharedCsr);
      solver.solveMultiRhs(b, x_slab, 3, *ctx, team, policy,
                           StorageKind::kSlab);
      ASSERT_EQ(x_slab, x_shared) << "team " << team << " round " << round;
    }
  }
}

TEST(SlabSolve, UpperTriangularAndOptionDefaultPaths) {
  // The reversal-normalized (upper-triangular) path and the
  // SolverOptions::storage default both route through slabs.
  const auto lower = datagen::grid2dLaplacian5(12, 12).lowerTriangle();
  const auto upper = lower.transposed();
  const auto n = static_cast<size_t>(upper.rows());
  SolverOptions shared_opts;
  shared_opts.num_threads = 3;
  SolverOptions slab_opts = shared_opts;
  slab_opts.storage = StorageKind::kSlab;
  const auto shared_solver = TriangularSolver::analyze(upper, shared_opts);
  const auto slab_solver = TriangularSolver::analyze(upper, slab_opts);
  EXPECT_EQ(slab_solver.options().storage, StorageKind::kSlab);
  const auto b = makeRhs(n, 1);
  std::vector<double> x_shared(n);
  std::vector<double> x_slab(n);
  shared_solver.solve(b, x_shared);
  slab_solver.solve(b, x_slab);
  EXPECT_EQ(x_slab, x_shared);

  const auto bm = makeRhs(n, 5);
  std::vector<double> xm_shared(bm.size());
  std::vector<double> xm_slab(bm.size());
  shared_solver.solveMultiRhs(bm, xm_shared, 5);
  slab_solver.solveMultiRhs(bm, xm_slab, 5);
  EXPECT_EQ(xm_slab, xm_shared);
}

TEST(SlabSolveConcurrent, MixedStorageAndTeamsAreSafe) {
  // Concurrent solves on one solver with distinct contexts, mixing teams,
  // policies, and storage kinds: exercises the lazy slab cache under
  // contention (first touch of each key races the builders) — TSan covers
  // this in CI.
  const auto lower = datagen::erdosRenyiLower({.n = 400, .p = 6e-3,
                                               .seed = 41});
  const auto n = static_cast<size_t>(lower.rows());
  SolverOptions opts;
  opts.num_threads = 4;
  opts.reorder = false;
  const auto solver = TriangularSolver::analyze(lower, opts);

  const auto b = makeRhs(n, 2);
  std::vector<double> expected(b.size());
  {
    auto ctx = solver.createContext();
    solver.solveMultiRhs(b, expected, 2, *ctx, solver.numThreads(),
                         core::FoldPolicy::kModulo, StorageKind::kSharedCsr);
  }

  constexpr int kWorkers = 8;
  std::vector<std::future<std::vector<double>>> results;
  for (int w = 0; w < kWorkers; ++w) {
    results.push_back(std::async(std::launch::async, [&, w] {
      auto ctx = solver.createContext();
      std::vector<double> x(b.size());
      const int team = 1 + w % solver.numThreads();
      const auto policy = w % 2 == 0 ? core::FoldPolicy::kModulo
                                     : core::FoldPolicy::kBinPack;
      const auto storage =
          w % 3 == 0 ? StorageKind::kSharedCsr : StorageKind::kSlab;
      for (int rep = 0; rep < 3; ++rep) {
        solver.solveMultiRhs(b, x, 2, *ctx, team, policy, storage);
      }
      return x;
    }));
  }
  for (auto& f : results) {
    EXPECT_EQ(f.get(), expected);
  }
}

TEST(SlabEngine, StoragePassthroughServesBitwiseAndCounts) {
  const auto lower = datagen::grid2dLaplacian5(13, 13).lowerTriangle();
  const auto n = static_cast<size_t>(lower.rows());
  SolverOptions solver_opts;
  solver_opts.num_threads = 2;
  auto solver = std::make_shared<const TriangularSolver>(
      TriangularSolver::analyze(lower, solver_opts));

  std::vector<std::vector<double>> rhs;
  for (unsigned j = 0; j < 12; ++j) rhs.push_back(makeRhs(n, 1, j));
  std::vector<std::vector<double>> expected;
  for (const auto& b : rhs) {
    auto ctx = solver->createContext();
    std::vector<double> x(n);
    solver->solve(b, x, *ctx);
    expected.push_back(std::move(x));
  }

  engine::EngineOptions opts;
  opts.num_workers = 2;
  opts.max_batch = 4;
  opts.storage = StorageKind::kSlab;
  engine::SolverEngine engine(opts);
  const auto id = engine.registerSolver(solver);
  std::vector<std::future<std::vector<double>>> futures;
  for (const auto& b : rhs) futures.push_back(engine.submit(id, b));
  for (size_t j = 0; j < futures.size(); ++j) {
    EXPECT_EQ(futures[j].get(), expected[j]) << "request " << j;
  }
  engine.drain();  // stats post after the promises resolve
  const auto stats = engine.stats(id);
  EXPECT_GT(stats.batches, 0u);
  EXPECT_EQ(stats.slab_batches, stats.batches - stats.batches_failed);
  EXPECT_EQ(stats.batches_failed, 0u);
}

TEST(SlabEngine, SloColdStartSeedsFromCostModel) {
  const auto lower = datagen::grid2dLaplacian5(12, 12).lowerTriangle();
  const auto n = static_cast<size_t>(lower.rows());
  SolverOptions solver_opts;
  solver_opts.num_threads = 4;
  auto solver = std::make_shared<const TriangularSolver>(
      TriangularSolver::analyze(lower, solver_opts));
  const int base = 4;

  // Generous target: the cost model must conclude the minimum team still
  // meets it and seed the controller below the base width. team_size pins
  // the base at the analyzed width so the test is host-independent (the
  // default team clamps to the machine's cores).
  engine::EngineOptions opts;
  opts.num_workers = 1;
  opts.team_size = base;
  opts.elastic = true;
  opts.target_p95 = 30.0;  // far above any solve on this matrix
  opts.start_paused = true;
  engine::SolverEngine engine(opts);
  const auto id = engine.registerSolver(solver);
  const auto seeded = engine.stats(id).seeded_team;
  EXPECT_GE(seeded, 1);
  EXPECT_LT(seeded, base);

  // The first window must be served at the seeded width, not the base.
  std::vector<std::future<std::vector<double>>> futures;
  for (unsigned j = 0; j < 4; ++j) {
    futures.push_back(engine.submit(id, makeRhs(n, 1, j)));
  }
  engine.resume();
  for (auto& f : futures) f.get();
  // Futures resolve before the worker posts its stats; drain() returns
  // only after the batch fully retires, so the snapshot below is stable.
  engine.drain();
  const auto stats = engine.stats(id);
  EXPECT_GT(stats.batches, 0u);
  EXPECT_LE(stats.mean_team_size, static_cast<double>(seeded) + 1e-9);

  // Unreachable target: the model must keep the base width (no seed).
  engine::EngineOptions tight = opts;
  tight.target_p95 = 1e-12;
  engine::SolverEngine tight_engine(tight);
  const auto tight_id = tight_engine.registerSolver(solver);
  EXPECT_EQ(tight_engine.stats(tight_id).seeded_team, 0);
}

TEST(SlabCore, FoldedMakespanAtMatchesManualComposition) {
  const auto lower = datagen::erdosRenyiLower({.n = 200, .p = 1e-2,
                                               .seed = 51});
  const auto dag = dag::Dag::fromLowerTriangular(lower);
  const auto schedule = core::growLocalSchedule(dag, {.num_cores = 4});
  for (const auto policy :
       {core::FoldPolicy::kModulo, core::FoldPolicy::kBinPack}) {
    for (int t = 1; t <= schedule.numCores(); ++t) {
      const auto loads = schedule.rankLoads();
      const auto map = core::foldRankMap(schedule.numSupersteps(),
                                         schedule.numCores(), t, policy,
                                         loads);
      const auto expected = core::foldedMakespan(
          loads, schedule.numSupersteps(), schedule.numCores(), t, map);
      EXPECT_EQ(core::foldedMakespanAt(schedule, t, policy), expected);
    }
  }
  EXPECT_THROW(core::foldedMakespanAt(schedule, 0, core::FoldPolicy::kModulo),
               std::invalid_argument);
  EXPECT_THROW(core::foldedMakespanAt(schedule, schedule.numCores() + 1,
                                      core::FoldPolicy::kModulo),
               std::invalid_argument);
}

}  // namespace
}  // namespace sts
