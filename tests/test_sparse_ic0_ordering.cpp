#include <gtest/gtest.h>

#include <cmath>

#include "datagen/grids.hpp"
#include "sparse/ic0.hpp"
#include "sparse/ordering.hpp"
#include "sparse/permute.hpp"

namespace sts::sparse {
namespace {

TEST(Ic0, ExactOnDiagonalMatrix) {
  // IC(0) of a diagonal matrix is the exact Cholesky factor sqrt(D).
  std::vector<Triplet> t;
  for (index_t i = 0; i < 5; ++i) {
    t.push_back({i, i, static_cast<double>(i + 1)});
  }
  const CsrMatrix a = CsrMatrix::fromTriplets(5, 5, t);
  const auto result = incompleteCholesky(a);
  EXPECT_EQ(result.retries, 0);
  EXPECT_DOUBLE_EQ(result.applied_shift, 0.0);
  for (index_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(result.lower.at(i, i), std::sqrt(i + 1.0), 1e-14);
  }
}

TEST(Ic0, ExactOnTridiagonalSpd) {
  // For a tridiagonal SPD matrix, IC(0) equals the full Cholesky factor
  // (no fill-in exists), so L L^T must reproduce A exactly.
  const index_t n = 50;
  std::vector<Triplet> t;
  for (index_t i = 0; i < n; ++i) {
    t.push_back({i, i, 4.0});
    if (i > 0) {
      t.push_back({i, i - 1, -1.0});
      t.push_back({i - 1, i, -1.0});
    }
  }
  const CsrMatrix a = CsrMatrix::fromTriplets(n, n, t);
  const auto result = incompleteCholesky(a);
  const CsrMatrix& l = result.lower;
  // Verify (L L^T)(i, j) == A(i, j) on the pattern.
  for (index_t i = 0; i < n; ++i) {
    for (const index_t j : a.rowCols(i)) {
      if (j > i) continue;
      double dot = 0.0;
      for (index_t k = 0; k <= j; ++k) dot += l.at(i, k) * l.at(j, k);
      EXPECT_NEAR(dot, a.at(i, j), 1e-12) << "(" << i << ", " << j << ")";
    }
  }
}

TEST(Ic0, GridLaplacianFactorIsUsable) {
  const CsrMatrix a = datagen::grid2dLaplacian5(20, 20);
  const auto result = incompleteCholesky(a);
  EXPECT_TRUE(result.lower.isLowerTriangular());
  EXPECT_TRUE(result.lower.hasFullDiagonal());
  EXPECT_EQ(result.lower.nnz(), a.lowerTriangle().nnz());
  for (const double d : result.lower.diagonal()) EXPECT_GT(d, 0.0);
}

TEST(Ic0, ShiftRecoveryOnIndefiniteDiagonal) {
  // A matrix that is not positive definite triggers the shift path.
  std::vector<Triplet> t = {{0, 0, 1.0},  {1, 0, 2.0}, {0, 1, 2.0},
                            {1, 1, 1.0}};  // eigenvalues -1 and 3
  const CsrMatrix a = CsrMatrix::fromTriplets(2, 2, t);
  const auto result = incompleteCholesky(a);
  EXPECT_GT(result.retries, 0);
  EXPECT_GT(result.applied_shift, 0.0);
  for (const double d : result.lower.diagonal()) EXPECT_GT(d, 0.0);
}

TEST(Ic0, RejectsMissingDiagonal) {
  const std::vector<Triplet> t = {{1, 0, 1.0}, {0, 0, 1.0}};
  const CsrMatrix a = CsrMatrix::fromTriplets(2, 2, t);
  EXPECT_THROW(incompleteCholesky(a), std::invalid_argument);
}

TEST(AdjacencyGraph, SymmetrizesAndDropsDiagonal) {
  const std::vector<Triplet> t = {{0, 0, 1.0}, {1, 0, 1.0}, {2, 2, 1.0},
                                  {0, 2, 1.0}};
  const CsrMatrix a = CsrMatrix::fromTriplets(3, 3, t);
  const auto g = AdjacencyGraph::fromMatrixPattern(a);
  EXPECT_EQ(g.degree(0), 2);  // neighbors 1 (mirrored) and 2
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_EQ(g.degree(2), 1);
}

TEST(Rcm, ReducesBandwidthOnShuffledGrid) {
  const CsrMatrix a = datagen::grid2dLaplacian5(16, 16);
  const auto shuffle = randomOrdering(a.rows(), 123);
  const CsrMatrix shuffled = a.symmetricPermuted(shuffle);
  const auto rcm = reverseCuthillMcKee(shuffled);
  ASSERT_TRUE(isPermutation(rcm));
  const CsrMatrix restored = shuffled.symmetricPermuted(rcm);
  EXPECT_LT(matrixBandwidth(restored), matrixBandwidth(shuffled) / 2);
}

TEST(Rcm, HandlesDisconnectedGraph) {
  // Two disjoint chains.
  std::vector<Triplet> t;
  for (index_t i = 0; i < 6; ++i) t.push_back({i, i, 1.0});
  t.push_back({1, 0, 1.0});
  t.push_back({0, 1, 1.0});
  t.push_back({4, 3, 1.0});
  t.push_back({3, 4, 1.0});
  const CsrMatrix a = CsrMatrix::fromTriplets(6, 6, t);
  const auto p = reverseCuthillMcKee(a);
  EXPECT_TRUE(isPermutation(p));
}

TEST(NestedDissection, ProducesPermutation) {
  const CsrMatrix a = datagen::grid2dLaplacian5(24, 24);
  const auto nd = nestedDissection(a);
  EXPECT_TRUE(isPermutation(nd));
}

TEST(NestedDissection, ScattersLocality) {
  // ND increases bandwidth relative to the natural grid ordering — that is
  // the defining property of the METIS data set (§6.2.2).
  const CsrMatrix a = datagen::grid2dLaplacian5(32, 32);
  const auto nd = nestedDissection(a);
  const CsrMatrix permuted = a.symmetricPermuted(nd);
  EXPECT_GT(matrixBandwidth(permuted), matrixBandwidth(a));
}

TEST(NestedDissection, SmallGraphFallsBackGracefully) {
  const CsrMatrix a = datagen::grid2dLaplacian5(3, 3);
  const auto nd = nestedDissection(a);
  EXPECT_TRUE(isPermutation(nd));
}

TEST(RandomOrdering, DeterministicPermutation) {
  const auto a = randomOrdering(100, 7);
  const auto b = randomOrdering(100, 7);
  const auto c = randomOrdering(100, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(isPermutation(a));
}

TEST(MatrixBandwidth, KnownValues) {
  EXPECT_EQ(matrixBandwidth(CsrMatrix::identity(5)), 0);
  const std::vector<Triplet> t = {{0, 0, 1.0}, {3, 0, 1.0}, {3, 3, 1.0}};
  EXPECT_EQ(matrixBandwidth(CsrMatrix::fromTriplets(4, 4, t)), 3);
}

}  // namespace
}  // namespace sts::sparse
