#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "datagen/random_matrices.hpp"
#include "engine/overload.hpp"
#include "engine/request_queue.hpp"
#include "engine/solver_engine.hpp"
#include "exec/solver.hpp"
#include "exec/verify.hpp"

namespace sts::engine {
namespace {

using exec::SolverOptions;
using exec::TriangularSolver;

std::shared_ptr<const TriangularSolver> analyzeShared(
    const sparse::CsrMatrix& lower) {
  SolverOptions opts;
  opts.num_threads = 2;
  opts.reorder = true;
  return std::make_shared<const TriangularSolver>(
      TriangularSolver::analyze(lower, opts));
}

// ---------------------------------------------------------------- ladder

TEST(OverloadStep, MonotoneInPressureAndOneRungPerStep) {
  constexpr int kMaxRung = 4;
  for (int current = 0; current <= kMaxRung; ++current) {
    int prev = -1;
    for (double pressure = 0.0; pressure <= 8.0; pressure += 0.05) {
      const int next = overloadStep(pressure, 0.5, current, kMaxRung);
      // Never more than one rung of movement, always inside the ladder.
      EXPECT_LE(std::abs(next - current), 1);
      EXPECT_GE(next, 0);
      EXPECT_LE(next, kMaxRung);
      // Monotone in pressure for a fixed current rung.
      if (prev >= 0) {
        EXPECT_GE(next, prev);
      }
      prev = next;
    }
  }
}

TEST(OverloadStep, EscalatesByFlooredPressure) {
  // Pressure in [r, r+1) asks for rung r; movement is one rung at a time.
  EXPECT_EQ(overloadStep(0.5, 0.5, 0, 3), 0);
  EXPECT_EQ(overloadStep(1.2, 0.5, 0, 3), 1);
  EXPECT_EQ(overloadStep(7.0, 0.5, 0, 3), 1);  // no jumps, however hard
  EXPECT_EQ(overloadStep(7.0, 0.5, 1, 3), 2);
  EXPECT_EQ(overloadStep(7.0, 0.5, 3, 3), 3);  // saturates at the top
}

TEST(OverloadStep, StepsDownOnlyPastHysteresis) {
  // At rung 2 with h = 0.5 the de-escalation boundary is pressure 1.5.
  EXPECT_EQ(overloadStep(1.9, 0.5, 2, 3), 2);  // inside the band: hold
  EXPECT_EQ(overloadStep(1.5, 0.5, 2, 3), 1);  // clears it: one rung down
  EXPECT_EQ(overloadStep(0.0, 0.5, 1, 3), 0);
  EXPECT_EQ(overloadStep(0.0, 0.5, 0, 3), 0);  // floor
}

TEST(OverloadController, WalksTheLadderOneUpdateAtATime) {
  OverloadController controller(/*target_delay=*/0.1, /*hysteresis=*/0.5,
                                /*max_rung=*/3);
  EXPECT_EQ(controller.rung(), 0);
  // Sustained 10x-target pressure: up exactly one rung per update.
  for (int expected = 1; expected <= 3; ++expected) {
    const auto step = controller.update(/*est_delay_seconds=*/1.0);
    EXPECT_TRUE(step.moved());
    EXPECT_EQ(step.to, expected);
  }
  EXPECT_EQ(controller.update(1.0).to, 3);  // saturated: hold
  // Pressure gone: down one rung per update, through the hysteresis band.
  for (int expected = 2; expected >= 0; --expected) {
    EXPECT_EQ(controller.update(0.0).to, expected);
  }
  EXPECT_FALSE(controller.update(0.0).moved());
}

// ----------------------------------------------------------------- queue

SolveRequest makeRequest(RequestPriority priority,
                         std::chrono::steady_clock::time_point expires_at =
                             std::chrono::steady_clock::time_point::max()) {
  SolveRequest request;
  request.solver = 0;
  request.nrhs = 1;
  request.b = {1.0};
  request.submitted = std::chrono::steady_clock::now();
  request.priority = priority;
  request.expires_at = expires_at;
  return request;
}

TEST(RequestQueue, AgingBoundsLatencyClassBypass) {
  RequestQueue queue;
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(queue.push(makeRequest(RequestPriority::kLatency)),
              RequestQueue::PushResult::kAccepted);
  }
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(queue.push(makeRequest(RequestPriority::kThroughput)),
              RequestQueue::PushResult::kAccepted);
  }
  // kAgingEvery latency pops may bypass waiting throughput work; the next
  // pop must serve the aged throughput head — bounded starvation, not
  // strict priority.
  std::vector<RequestPriority> order;
  while (queue.size() > 0) {
    auto batch = queue.popBatch(/*max_rhs=*/1, /*coalesce=*/false);
    ASSERT_EQ(batch.size(), 1u);
    order.push_back(batch.front().priority);
  }
  const std::vector<RequestPriority> expected = {
      RequestPriority::kLatency,    RequestPriority::kLatency,
      RequestPriority::kLatency,    RequestPriority::kLatency,
      RequestPriority::kThroughput,  // aged in after kAgingEvery bypasses
      RequestPriority::kLatency,    RequestPriority::kLatency,
      RequestPriority::kThroughput};
  EXPECT_EQ(order, expected);
}

TEST(RequestQueue, CoalescingNeverCrossesTheClassBoundary) {
  RequestQueue queue;
  ASSERT_EQ(queue.push(makeRequest(RequestPriority::kLatency)),
            RequestQueue::PushResult::kAccepted);
  ASSERT_EQ(queue.push(makeRequest(RequestPriority::kThroughput)),
            RequestQueue::PushResult::kAccepted);
  ASSERT_EQ(queue.push(makeRequest(RequestPriority::kThroughput)),
            RequestQueue::PushResult::kAccepted);
  ASSERT_EQ(queue.push(makeRequest(RequestPriority::kLatency)),
            RequestQueue::PushResult::kAccepted);
  // First pop: the latency class only — a latency request is never merged
  // into (or behind) a throughput batch, however much budget remains.
  auto first = queue.popBatch(/*max_rhs=*/16, /*coalesce=*/true);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].priority, RequestPriority::kLatency);
  EXPECT_EQ(first[1].priority, RequestPriority::kLatency);
  auto second = queue.popBatch(/*max_rhs=*/16, /*coalesce=*/true);
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(second[0].priority, RequestPriority::kThroughput);
  EXPECT_EQ(second.size() + first.size(), 4u);
}

TEST(RequestQueue, BoundedDepthReportsFullAndClosedReportsClosed) {
  RequestQueue queue(/*max_depth=*/2);
  EXPECT_EQ(queue.push(makeRequest(RequestPriority::kThroughput)),
            RequestQueue::PushResult::kAccepted);
  EXPECT_EQ(queue.push(makeRequest(RequestPriority::kLatency)),
            RequestQueue::PushResult::kAccepted);
  EXPECT_EQ(queue.push(makeRequest(RequestPriority::kLatency)),
            RequestQueue::PushResult::kFull);
  queue.close();
  EXPECT_EQ(queue.push(makeRequest(RequestPriority::kLatency)),
            RequestQueue::PushResult::kClosed);
}

TEST(RequestQueue, LazyExpirySweepsDeadRequestsIntoTheCallerList) {
  RequestQueue queue;
  const auto past =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(5);
  ASSERT_EQ(queue.push(makeRequest(RequestPriority::kThroughput, past)),
            RequestQueue::PushResult::kAccepted);
  ASSERT_EQ(queue.push(makeRequest(RequestPriority::kThroughput)),
            RequestQueue::PushResult::kAccepted);
  std::vector<SolveRequest> expired;
  auto batch = queue.popBatch(/*max_rhs=*/1, /*coalesce=*/false,
                              /*backlog=*/nullptr, &expired);
  // The live request comes back as the batch; the dead one via `expired`.
  ASSERT_EQ(batch.size(), 1u);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired.front().expires_at, past);
  EXPECT_EQ(queue.size(), 0u);
}

// ---------------------------------------------------------------- engine

TEST(OverloadEngine, IdleLadderServesExactBitwise) {
  const auto lower =
      datagen::erdosRenyiLower({.n = 400, .p = 8e-3, .seed = 31});
  auto solver = analyzeShared(lower);
  const auto x_true = exec::referenceSolution(lower.rows(), 7);
  const auto b = lower.multiply(x_true);
  std::vector<double> expected(b.size(), 0.0);
  solver->solve(b, expected);

  EngineOptions options;
  options.num_workers = 2;
  options.overload_control = true;
  options.overload_target_delay = 1e6;  // unreachable: the ladder is idle
  SolverEngine engine(options);
  const auto id = engine.registerSolver(solver);

  std::vector<std::future<SolveResponse>> futures;
  for (int r = 0; r < 8; ++r) {
    futures.push_back(engine.submit(id, b, SubmitOptions{}));
  }
  for (auto& f : futures) {
    SolveResponse response = f.get();
    // Rung 0 = the configured (exact) tier, bitwise — an idle ladder is
    // indistinguishable from overload_control off.
    EXPECT_EQ(response.degrade.rung, 0);
    EXPECT_FALSE(response.degrade.degraded);
    EXPECT_EQ(response.degrade.tier, ServiceTier::kExact);
    EXPECT_EQ(response.degrade.staleness, 0);
    EXPECT_EQ(response.x, expected);
  }
  EXPECT_EQ(engine.overloadRung(), 0);
  EXPECT_EQ(engine.stats(id).degraded_batches, 0u);
}

TEST(OverloadEngine, PressureShedsPrecisionAndReportsDegradeInfo) {
  const auto lower =
      datagen::erdosRenyiLower({.n = 600, .p = 6e-3, .seed = 37});
  auto solver = analyzeShared(lower);
  const auto x_true = exec::referenceSolution(lower.rows(), 9);
  const auto b = lower.multiply(x_true);

  EngineOptions options;
  options.num_workers = 1;
  options.start_paused = true;
  options.overload_control = true;
  options.overload_target_delay = 1e-6;  // any real wait saturates pressure
  options.overload_max_rung = 3;
  options.stale_tolerance = 1e-8;
  SolverEngine engine(options);
  const auto id = engine.registerSolver(solver);

  // Stage latency-class work while paused; each submit feeds the ladder
  // and the aging head wait drives pressure far past target, so the rung
  // climbs one submit at a time to the top.
  SubmitOptions latency;
  latency.priority = RequestPriority::kLatency;
  std::vector<std::future<SolveResponse>> futures;
  for (int r = 0; r < 8; ++r) {
    futures.push_back(engine.submit(id, b, latency));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(engine.overloadRung(), options.overload_max_rung);

  // At the top rung new THROUGHPUT-class work is refused with a typed
  // error; the staged latency work above was all admitted.
  auto refused = engine.submit(id, b);
  try {
    refused.get();
    FAIL() << "expected EngineError{kRejected}";
  } catch (const EngineError& error) {
    EXPECT_EQ(error.code(), EngineErrorCode::kRejected);
  }

  engine.resume();
  int degraded = 0;
  for (auto& f : futures) {
    SolveResponse response = f.get();
    if (!response.degrade.degraded) continue;
    ++degraded;
    // DegradeInfo accuracy: a shed batch on a kExact engine runs the
    // bounded-stale tier with staleness == rung, below the reject rung,
    // at the configured tolerance (growth defaults to 1.0) — and the
    // refinement contract holds on the RETURNED solution, not just the
    // reported residual.
    EXPECT_EQ(response.degrade.tier, ServiceTier::kBoundedStale);
    EXPECT_GE(response.degrade.rung, 1);
    EXPECT_LT(response.degrade.rung, options.overload_max_rung);
    EXPECT_EQ(response.degrade.staleness,
              static_cast<sts::index_t>(response.degrade.rung));
    EXPECT_DOUBLE_EQ(response.degrade.tolerance, options.stale_tolerance);
    EXPECT_LE(response.degrade.residual, response.degrade.tolerance);
    EXPECT_LE(exec::residualInf(lower, response.x, b),
              response.degrade.tolerance);
  }
  EXPECT_GT(degraded, 0);
  const auto stats = engine.stats(id);
  EXPECT_GT(stats.degraded_batches, 0u);
  EXPECT_EQ(stats.rejected_requests, 1u);
}

TEST(OverloadEngine, BoundedQueueRejectsBeyondDepthWithTypedError) {
  const auto lower = datagen::bandedLower(200, 6, 0.5, 41);
  auto solver = analyzeShared(lower);
  const auto b = lower.multiply(exec::referenceSolution(lower.rows(), 11));

  EngineOptions options;
  options.num_workers = 1;
  options.start_paused = true;
  options.max_queue_depth = 2;
  SolverEngine engine(options);
  const auto id = engine.registerSolver(solver);

  std::vector<std::future<std::vector<double>>> futures;
  for (int r = 0; r < 5; ++r) futures.push_back(engine.submit(id, b));
  int rejected = 0;
  engine.resume();
  for (auto& f : futures) {
    try {
      f.get();
    } catch (const EngineError& error) {
      EXPECT_EQ(error.code(), EngineErrorCode::kRejected);
      ++rejected;
    }
  }
  // Depth 2: the first two queued, the other three were refused — and
  // every refused future resolved (nothing blocks forever).
  EXPECT_EQ(rejected, 3);
  EXPECT_EQ(engine.stats(id).rejected_requests, 3u);
  engine.drain();
}

TEST(OverloadEngine, DeadlinesExpireLazilyWithTypedError) {
  const auto lower = datagen::bandedLower(200, 6, 0.5, 43);
  auto solver = analyzeShared(lower);
  const auto b = lower.multiply(exec::referenceSolution(lower.rows(), 13));

  EngineOptions options;
  options.num_workers = 1;
  options.start_paused = true;
  SolverEngine engine(options);
  const auto id = engine.registerSolver(solver);

  SubmitOptions strict;
  strict.max_queue_wait_seconds = 0.005;
  auto doomed = engine.submit(id, b, strict);
  auto patient = engine.submit(id, b, SubmitOptions{});
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  engine.resume();

  try {
    doomed.get();
    FAIL() << "expected EngineError{kExpired}";
  } catch (const EngineError& error) {
    EXPECT_EQ(error.code(), EngineErrorCode::kExpired);
  }
  EXPECT_FALSE(patient.get().x.empty());  // the undeadlined one solved
  EXPECT_EQ(engine.stats(id).expired_requests, 1u);
  engine.drain();
}

TEST(OverloadEngine, ValidatesOverloadOptions) {
  EngineOptions bad_target;
  bad_target.overload_control = true;
  bad_target.overload_target_delay = 0.0;
  EXPECT_THROW(SolverEngine{bad_target}, std::invalid_argument);
  EngineOptions bad_rung;
  bad_rung.overload_max_rung = 0;
  EXPECT_THROW(SolverEngine{bad_rung}, std::invalid_argument);
  EngineOptions bad_growth;
  bad_growth.overload_tolerance_growth = 0.5;
  EXPECT_THROW(SolverEngine{bad_growth}, std::invalid_argument);
  EngineOptions bad_deadline_engine;
  SolverEngine engine(bad_deadline_engine);
  const auto lower = datagen::bandedLower(50, 4, 0.5, 3);
  const auto id = engine.registerSolver(analyzeShared(lower));
  SubmitOptions negative;
  negative.deadline_seconds = -1.0;
  EXPECT_THROW(
      engine.submit(id, std::vector<double>(50, 1.0), negative),
      std::invalid_argument);
}

}  // namespace
}  // namespace sts::engine
