#pragma once

#include <string>
#include <vector>

#include "datagen/grids.hpp"
#include "datagen/random_matrices.hpp"
#include "sparse/csr.hpp"

/// \file test_util.hpp
/// Shared fixtures: a small zoo of lower triangular matrices covering the
/// structural extremes the schedulers must handle (chains, diagonals, dense
/// rows, random, grid-based).

namespace sts::testutil {

using sparse::CsrMatrix;

struct NamedMatrix {
  std::string name;
  CsrMatrix lower;
};

/// Matrices for property sweeps: every entry is lower triangular with a
/// full nonzero diagonal.
inline std::vector<NamedMatrix> lowerTriangularZoo() {
  using namespace datagen;
  std::vector<NamedMatrix> zoo;
  zoo.push_back({"single", diagonalMatrix(1)});
  zoo.push_back({"diag_64", diagonalMatrix(64)});
  zoo.push_back({"chain_100", chainLower(100)});
  zoo.push_back({"dense_40", denseLower(40)});
  zoo.push_back({"er_500_sparse",
                 erdosRenyiLower({.n = 500, .p = 2e-3, .seed = 42})});
  zoo.push_back({"er_500_dense",
                 erdosRenyiLower({.n = 500, .p = 2e-2, .seed = 43})});
  zoo.push_back({"nb_600", narrowBandLower({.n = 600, .p = 0.14, .b = 10.0,
                                            .seed = 44})});
  zoo.push_back({"banded_400", bandedLower(400, 12, 0.5, 45)});
  zoo.push_back({"grid2d_16x24",
                 grid2dLaplacian5(16, 24).lowerTriangle()});
  zoo.push_back({"grid3d_8",
                 grid3dLaplacian7(8, 8, 8).lowerTriangle()});
  zoo.push_back({"grid2d9_12x12",
                 grid2dLaplacian9(12, 12).lowerTriangle()});
  return zoo;
}

}  // namespace sts::testutil
