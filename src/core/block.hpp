#pragma once

#include <functional>
#include <vector>

#include "core/growlocal.hpp"
#include "core/schedule.hpp"

/// \file block.hpp
/// Block-parallel scheduling (paper §3.1): subdivide the lower triangular
/// matrix into diagonal blocks, schedule each block's sub-DAG independently
/// (in parallel across scheduling threads), and concatenate the per-block
/// schedules with superstep offsets. Cross-block edges always point from an
/// earlier block to a later one, so sequencing the blocks preserves
/// validity; scheduling time drops super-linearly because long cross-block
/// edges are never examined, while the solve pays a moderate superstep
/// increase (Table 7.7).

namespace sts::core {

struct BlockScheduleOptions {
  /// Number of diagonal blocks (== scheduling threads in the paper's
  /// experiment). 1 reduces to plain GrowLocal.
  int num_blocks = 1;
  /// Schedule the blocks concurrently with OpenMP.
  bool parallel = true;
  GrowLocalOptions growlocal;
};

/// Weight-balanced contiguous split of [0, n) into `num_blocks` ranges.
/// Returned vector has num_blocks+1 boundaries; empty ranges are possible
/// when num_blocks > n.
std::vector<index_t> computeBlockBoundaries(const Dag& dag, int num_blocks);

/// GrowLocal applied per diagonal block (§3.1). Vertex weights inside each
/// block remain the full-matrix row weights, matching the paper's kernel.
Schedule blockGrowLocalSchedule(const Dag& dag,
                                const BlockScheduleOptions& opts);

/// Generalization used by benches: schedules each block sub-DAG with an
/// arbitrary scheduler and concatenates the results.
using BlockScheduler = std::function<Schedule(const Dag& block_dag)>;
Schedule blockSchedule(const Dag& dag, int num_blocks, bool parallel,
                       int num_cores, const BlockScheduler& scheduler);

}  // namespace sts::core
