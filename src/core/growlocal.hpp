#pragma once

#include <vector>

#include "core/schedule.hpp"
#include "dag/dag.hpp"

/// \file growlocal.hpp
/// The GrowLocal scheduler (paper §3, Algorithm 3.1).
///
/// A superstep is formed by repeated *trial iterations*: a trial assigns up
/// to α vertices to core 1 and weight-matched batches to the remaining
/// cores, prioritizing (Rule I) vertices that became executable exclusively
/// on a core within the current superstep, then smallest vertex ID. The
/// parallelization score β = ΣΩp / (maxΩp + L) decides whether the grown
/// superstep is "worthy" (β ≥ worthy_factor × best β seen this superstep,
/// App. B); if not, the last worthy assignment becomes the superstep and a
/// barrier is inserted. α starts at min_superstep_size and grows by
/// growth_factor per iteration, which keeps the total speculative work
/// linear in the final superstep size (Theorem 3.1: O(|E| log |V|)).

namespace sts::core {

struct GrowLocalOptions {
  int num_cores = 2;

  /// Synchronization-barrier cost L in vertex-weight units (§C.2; the paper
  /// uses 500 based on barrier latency vs double-precision FLOP cost).
  double sync_cost_l = 500.0;

  /// α₀: vertices given to core 1 in the first trial of each superstep.
  index_t min_superstep_size = 20;

  /// Multiplier applied to α between trials.
  double growth_factor = 1.5;

  /// A trial is worthy if β ≥ worthy_factor × best β so far this superstep.
  double worthy_factor = 0.97;

  /// Interpretation note (see DESIGN.md): the paper requires growth to
  /// continue only "while ensuring a sufficient amount of parallelization
  /// between the cores" (§3) but leaves the absolute test unspecified —
  /// with the App. B relative rule alone, a single-source DAG (e.g. a
  /// naturally ordered stencil matrix) would collapse into one serial
  /// superstep, contradicting the paper's own barrier counts (Table 7.2).
  /// We therefore require, from the second iteration on, a work balance of
  /// ΣΩp / (cores · maxΩp) ≥ min_utilization. 0 disables the floor and
  /// recovers the pure relative rule.
  double min_utilization = 0.85;

  /// Merge consecutive supersteps with no cross-core edges between them
  /// (a barrier that synchronizes nothing); keeps serial regions such as
  /// dependency chains in a single superstep.
  bool coalesce_supersteps = true;

  /// Fold-policy-aware acceptance: team widths the schedule is expected to
  /// be folded onto at solve time (the elastic-serving contract,
  /// exec/elastic.hpp). When non-empty, each trial's worthiness
  /// additionally requires the trial's per-core loads to stay balanced
  /// AFTER kBinPack folding onto every listed target — foldedMakespan on
  /// the trial's one-superstep load table — so imbalance that no
  /// after-the-fact rank packing can repair is rejected at schedule time.
  /// The final schedule is then the better of {fold-aware, plain} by the
  /// summed folded BSP cost Σ_t (foldedMakespanAt(·, t, kBinPack) +
  /// L · numSupersteps) over targets ∪ {num_cores}, so enabling targets
  /// never loses to binpack-after-the-fact on that metric (the
  /// bench_fold_policies gate). Entries must be >= 1; values above
  /// num_cores clamp to it. Empty (default) keeps the original test.
  std::vector<int> fold_targets = {};
};

/// Runs GrowLocal on `dag`. Deterministic. Throws std::invalid_argument on
/// bad options. The returned schedule is always valid (validateSchedule).
Schedule growLocalSchedule(const Dag& dag, const GrowLocalOptions& opts = {});

}  // namespace sts::core
