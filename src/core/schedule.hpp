#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dag/dag.hpp"

/// \file schedule.hpp
/// The parallel schedule of Definition 2.1: assignments π (core) and σ
/// (superstep) plus an explicit execution order within each
/// (superstep, core) group. The order matters: vertices scheduled on the
/// same core in the same superstep may depend on each other and must be
/// executed in a dependency-respecting sequence.
///
/// Schedules are immutable after construction and share their assignment
/// arrays through a const payload, so copying a Schedule — including
/// foldTo(numCores()), which returns *this — is O(1) and allocation-free.
///
/// A schedule's "core" is a RANK, not a physical CPU: execution may fold
/// any schedule onto a smaller team (foldTo / the FoldPolicy machinery
/// below — the elasticity contract in docs/ARCHITECTURE.md), and the
/// serving engine maps the resulting team onto concrete CPU ids via
/// engine::CoreBudget's core-set mode (the affinity contract). Nothing in
/// this layer knows about either; it only promises that whole-rank merges
/// preserve validity.

namespace sts::core {

using dag::Dag;
using dag::weight_t;
using sts::index_t;
using sts::offset_t;

/// How ranks map onto a smaller execution width when a schedule is folded
/// (Schedule::foldTo and the executor-side plan folds in exec/elastic.hpp).
/// Either policy merges *whole* ranks, which keeps the fold always-valid:
/// same-superstep edges are intra-core by Definition 2.1 and therefore stay
/// intra-core under any rank-granularity map.
enum class FoldPolicy {
  /// p -> p mod t. Oblivious to load; can compound per-rank imbalance when
  /// heavy ranks collide on one slot.
  kModulo = 0,
  /// LPT bin packing of whole ranks onto the t target slots by their
  /// per-superstep work (heaviest total first, each placed on the slot that
  /// grows the folded makespan least). Never worse than kModulo: the packer
  /// keeps whichever of {greedy, modulo} has the smaller folded makespan.
  kBinPack = 1,
};

/// Number of FoldPolicy values (sizes the executor plan caches).
inline constexpr int kNumFoldPolicies = 2;

std::string foldPolicyName(FoldPolicy policy);

/// Builds the rank -> slot map folding `width` ranks onto `target` slots.
/// `rank_loads` is the superstep-major per-(superstep, rank) work table
/// (size num_supersteps * width, e.g. Schedule::rankLoads); kModulo ignores
/// it, kBinPack requires it. Throws std::invalid_argument on bad sizes.
std::vector<int> foldRankMap(index_t num_supersteps, int width, int target,
                             FoldPolicy policy,
                             std::span<const weight_t> rank_loads = {});

/// Folded compute makespan of a candidate rank map: sum over supersteps of
/// the maximum per-slot load — the BSP compute term the fold policies
/// compete on. `rank_map` has `width` entries in [0, target).
weight_t foldedMakespan(std::span<const weight_t> rank_loads,
                        index_t num_supersteps, int width, int target,
                        std::span<const int> rank_map);

/// Whole-fold load imbalance: foldedMakespan over the perfectly balanced
/// ideal ceil(total_work / target) (1.0 = every superstep perfectly
/// balanced across the target slots — the same makespan/ideal ratio as
/// ScheduleStats::imbalance, evaluated at the folded width). The
/// harness-table imbalance metric for fold comparisons; compare values
/// only between folds of the same schedule.
double foldedImbalance(std::span<const weight_t> rank_loads,
                       index_t num_supersteps, int width, int target,
                       std::span<const int> rank_map);

class Schedule;

/// Convenience composition of rankLoads + foldRankMap + foldedMakespan:
/// the folded compute makespan of `schedule` re-targeted to `target` slots
/// under `policy` (empty `vertex_weights` = unit weights). This is the
/// analyze-time cost model the serving engine's SLO cold start queries per
/// candidate team: makespan ratios between targets predict how a solve's
/// compute time scales with team size before any latency samples exist.
/// Throws std::invalid_argument unless 1 <= target <= numCores().
weight_t foldedMakespanAt(const Schedule& schedule, int target,
                          FoldPolicy policy,
                          std::span<const weight_t> vertex_weights = {});

/// An immutable (π, σ, order) triple over a DAG's vertices: coreOf(v) is
/// the rank executing v, superstepOf(v) the barrier-delimited phase, and
/// group(s, p) the dependency-respecting execution order of rank p's work
/// in superstep s. Construction validates nothing by itself —
/// validateSchedule is the opt-in Def. 2.1 check the solver facade runs
/// during analysis. Copies are O(1) (shared payload).
class Schedule {
 public:
  Schedule();

  /// Builds from π/σ plus an explicit in-group execution order: `order`
  /// lists all vertices grouped by superstep-major, core-minor; group g =
  /// superstep * num_cores + core; `group_ptr` has S*P+1 boundaries.
  Schedule(index_t n, int num_cores, index_t num_supersteps,
           std::vector<int> core, std::vector<index_t> superstep,
           std::vector<index_t> order, std::vector<offset_t> group_ptr);

  /// Builds from π/σ only; the in-group order is derived by sorting each
  /// group by (wavefront level, vertex ID), which always yields a valid
  /// execution order. Supersteps are compacted (empty ones removed).
  static Schedule fromAssignment(const Dag& dag, int num_cores,
                                 std::span<const int> core,
                                 std::span<const index_t> superstep);

  /// All of the DAG on one core in one superstep, in topological (ID) order
  /// for ID-ascending DAGs; used as the serial reference schedule.
  static Schedule serial(const Dag& dag);

  index_t numVertices() const { return n_; }
  int numCores() const { return num_cores_; }
  index_t numSupersteps() const { return num_supersteps_; }
  /// Barriers during execution: one between consecutive supersteps.
  index_t numBarriers() const {
    return num_supersteps_ > 0 ? num_supersteps_ - 1 : 0;
  }

  int coreOf(index_t v) const { return payload_->core[static_cast<size_t>(v)]; }
  index_t superstepOf(index_t v) const {
    return payload_->superstep[static_cast<size_t>(v)];
  }
  std::span<const int> cores() const { return payload_->core; }
  std::span<const index_t> supersteps() const { return payload_->superstep; }

  /// Vertices of (superstep s, core p) in execution order.
  std::span<const index_t> group(index_t s, int p) const;

  /// Re-targets the schedule to `num_cores` <= numCores() processors by
  /// folding whole ranks onto the smaller width under `policy` (the default
  /// keeps PR 2's p -> p mod num_cores map). Superstep structure is
  /// preserved exactly; the folded group (s, q) concatenates the old groups
  /// (s, p) for every rank p mapped to q, in ascending p, each keeping its
  /// internal order. Validity is preserved for any rank-granularity map:
  /// within a superstep every edge is intra-core (Def. 2.1 forbids
  /// same-superstep cross-core edges), so merging cores cannot break the
  /// in-group execution order, and cross-superstep edges only ever become
  /// intra-core, which is strictly weaker to satisfy. `vertex_weights`
  /// (empty = unit weights) feeds FoldPolicy::kBinPack, which packs ranks
  /// by per-superstep load instead of blindly by index. Folding to
  /// numCores() shares this schedule's payload (an O(1) copy, identical
  /// under every policy); widening throws std::invalid_argument.
  Schedule foldTo(int num_cores) const;
  Schedule foldTo(int num_cores, FoldPolicy policy,
                  std::span<const weight_t> vertex_weights = {}) const;

  /// The fold workhorse: merges ranks by an explicit `rank_map` (numCores()
  /// entries in [0, num_cores)). Policies above are map constructions plus
  /// this.
  Schedule foldWith(std::span<const int> rank_map, int num_cores) const;

  /// Per-(superstep, rank) work table, superstep-major (size
  /// numSupersteps() * numCores()): entry [s * numCores() + p] sums the
  /// weights of group(s, p). Empty `vertex_weights` means unit weights
  /// (group sizes). Feeds foldRankMap / the harness fold-quality tables.
  std::vector<weight_t> rankLoads(
      std::span<const weight_t> vertex_weights = {}) const;

  /// The flat execution order (superstep-major, core-minor).
  std::span<const index_t> executionOrder() const { return payload_->order; }
  std::span<const offset_t> groupPtr() const { return payload_->group_ptr; }

 private:
  /// The assignment arrays, shared immutable between copies (Schedule
  /// copies — solver facades, fold-to-self — are shallow).
  struct Payload {
    std::vector<int> core;
    std::vector<index_t> superstep;
    std::vector<index_t> order;
    std::vector<offset_t> group_ptr = {0};
  };
  static std::shared_ptr<const Payload> emptyPayload();

  index_t n_ = 0;
  int num_cores_ = 0;
  index_t num_supersteps_ = 0;
  std::shared_ptr<const Payload> payload_;
};

/// Outcome of validateSchedule; `ok` iff the schedule satisfies Def. 2.1,
/// covers every vertex exactly once, and every group's execution order
/// respects intra-group dependencies.
struct ScheduleValidation {
  bool ok = true;
  std::string message;
};

ScheduleValidation validateSchedule(const Dag& dag, const Schedule& schedule);

/// Aggregate schedule quality metrics (§2.2 cost discussion).
struct ScheduleStats {
  index_t supersteps = 0;
  index_t barriers = 0;
  weight_t total_work = 0;
  /// sum over supersteps of the maximum per-core load: the compute term of
  /// the BSP cost.
  weight_t makespan_work = 0;
  /// makespan_work / ceil(total/P): 1.0 is a perfectly balanced schedule.
  double imbalance = 0.0;
  /// makespan_work + L * barriers.
  double bsp_cost = 0.0;
  /// #wavefronts / #supersteps: the Table 7.2 barrier-reduction metric.
  double wavefront_reduction = 0.0;
};

ScheduleStats computeScheduleStats(const Dag& dag, const Schedule& schedule,
                                   double sync_cost_l = 500.0);

/// Removes barriers that synchronize nothing: merges consecutive supersteps
/// s, s+1 whenever every edge from s to s+1 stays on one core. Pure cost
/// reduction — the result is valid whenever the input is. Execution order
/// within a merged (core, superstep) group is the concatenation of the old
/// groups, which preserves all intra-core orderings.
Schedule coalesceSupersteps(const Dag& dag, const Schedule& schedule);

}  // namespace sts::core
