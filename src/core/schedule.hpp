#pragma once

#include <span>
#include <string>
#include <vector>

#include "dag/dag.hpp"

/// \file schedule.hpp
/// The parallel schedule of Definition 2.1: assignments π (core) and σ
/// (superstep) plus an explicit execution order within each
/// (superstep, core) group. The order matters: vertices scheduled on the
/// same core in the same superstep may depend on each other and must be
/// executed in a dependency-respecting sequence.

namespace sts::core {

using dag::Dag;
using dag::weight_t;
using sts::index_t;
using sts::offset_t;

class Schedule {
 public:
  Schedule() = default;

  /// Builds from π/σ plus an explicit in-group execution order: `order`
  /// lists all vertices grouped by superstep-major, core-minor; group g =
  /// superstep * num_cores + core; `group_ptr` has S*P+1 boundaries.
  Schedule(index_t n, int num_cores, index_t num_supersteps,
           std::vector<int> core, std::vector<index_t> superstep,
           std::vector<index_t> order, std::vector<offset_t> group_ptr);

  /// Builds from π/σ only; the in-group order is derived by sorting each
  /// group by (wavefront level, vertex ID), which always yields a valid
  /// execution order. Supersteps are compacted (empty ones removed).
  static Schedule fromAssignment(const Dag& dag, int num_cores,
                                 std::span<const int> core,
                                 std::span<const index_t> superstep);

  /// All of the DAG on one core in one superstep, in topological (ID) order
  /// for ID-ascending DAGs; used as the serial reference schedule.
  static Schedule serial(const Dag& dag);

  index_t numVertices() const { return n_; }
  int numCores() const { return num_cores_; }
  index_t numSupersteps() const { return num_supersteps_; }
  /// Barriers during execution: one between consecutive supersteps.
  index_t numBarriers() const {
    return num_supersteps_ > 0 ? num_supersteps_ - 1 : 0;
  }

  int coreOf(index_t v) const { return core_[static_cast<size_t>(v)]; }
  index_t superstepOf(index_t v) const {
    return superstep_[static_cast<size_t>(v)];
  }
  std::span<const int> cores() const { return core_; }
  std::span<const index_t> supersteps() const { return superstep_; }

  /// Vertices of (superstep s, core p) in execution order.
  std::span<const index_t> group(index_t s, int p) const;

  /// Re-targets the schedule to `num_cores` <= numCores() processors by
  /// folding ranks p -> p mod num_cores. Superstep structure is preserved
  /// exactly; the folded group (s, q) concatenates the old groups (s, p)
  /// for p ≡ q (mod num_cores) in ascending p, each keeping its internal
  /// order. Validity is preserved: within a superstep every edge is
  /// intra-core (Def. 2.1 forbids same-superstep cross-core edges), so
  /// merging cores cannot break the in-group execution order, and
  /// cross-superstep edges only ever become intra-core, which is strictly
  /// weaker to satisfy. Folding to numCores() returns a copy; widening
  /// throws std::invalid_argument.
  Schedule foldTo(int num_cores) const;

  /// The flat execution order (superstep-major, core-minor).
  std::span<const index_t> executionOrder() const { return order_; }
  std::span<const offset_t> groupPtr() const { return group_ptr_; }

 private:
  index_t n_ = 0;
  int num_cores_ = 0;
  index_t num_supersteps_ = 0;
  std::vector<int> core_;
  std::vector<index_t> superstep_;
  std::vector<index_t> order_;
  std::vector<offset_t> group_ptr_ = {0};
};

/// Outcome of validateSchedule; `ok` iff the schedule satisfies Def. 2.1,
/// covers every vertex exactly once, and every group's execution order
/// respects intra-group dependencies.
struct ScheduleValidation {
  bool ok = true;
  std::string message;
};

ScheduleValidation validateSchedule(const Dag& dag, const Schedule& schedule);

/// Aggregate schedule quality metrics (§2.2 cost discussion).
struct ScheduleStats {
  index_t supersteps = 0;
  index_t barriers = 0;
  weight_t total_work = 0;
  /// sum over supersteps of the maximum per-core load: the compute term of
  /// the BSP cost.
  weight_t makespan_work = 0;
  /// makespan_work / ceil(total/P): 1.0 is a perfectly balanced schedule.
  double imbalance = 0.0;
  /// makespan_work + L * barriers.
  double bsp_cost = 0.0;
  /// #wavefronts / #supersteps: the Table 7.2 barrier-reduction metric.
  double wavefront_reduction = 0.0;
};

ScheduleStats computeScheduleStats(const Dag& dag, const Schedule& schedule,
                                   double sync_cost_l = 500.0);

/// Removes barriers that synchronize nothing: merges consecutive supersteps
/// s, s+1 whenever every edge from s to s+1 stays on one core. Pure cost
/// reduction — the result is valid whenever the input is. Execution order
/// within a merged (core, superstep) group is the concatenation of the old
/// groups, which preserves all intra-core orderings.
Schedule coalesceSupersteps(const Dag& dag, const Schedule& schedule);

}  // namespace sts::core
