#include "core/growlocal.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

namespace sts::core {

namespace {

/// Min-heap of vertex IDs with an explicit clear (std::priority_queue
/// cannot be reset cheaply between trials).
class MinIdHeap {
 public:
  void push(index_t v) {
    data_.push_back(v);
    std::push_heap(data_.begin(), data_.end(), std::greater<>{});
  }
  index_t pop() {
    std::pop_heap(data_.begin(), data_.end(), std::greater<>{});
    const index_t v = data_.back();
    data_.pop_back();
    return v;
  }
  bool empty() const { return data_.empty(); }
  void clear() { data_.clear(); }

 private:
  std::vector<index_t> data_;
};

/// All mutable scheduler state. A trial journals its effects so that it can
/// be rolled back to the last barrier in O(trial size).
class GrowLocalState {
 public:
  GrowLocalState(const Dag& dag, const GrowLocalOptions& opts)
      : dag_(dag),
        opts_(opts),
        n_(dag.numVertices()),
        parents_left_(static_cast<size_t>(n_)),
        committed_(static_cast<size_t>(n_), 0),
        trial_assigned_(static_cast<size_t>(n_), 0),
        ready_epoch_(static_cast<size_t>(n_), 0),
        first_core_(static_cast<size_t>(n_), 0),
        multi_core_(static_cast<size_t>(n_), 0),
        excl_heap_(static_cast<size_t>(opts.num_cores)),
        omega_(static_cast<size_t>(opts.num_cores), 0) {
    for (index_t v = 0; v < n_; ++v) {
      parents_left_[static_cast<size_t>(v)] = dag.inDegree(v);
      if (parents_left_[static_cast<size_t>(v)] == 0) free_heap_.push(v);
    }
  }

  /// Runs one trial with parameter `alpha`. Returns false if nothing could
  /// be assigned (only possible when the DAG is exhausted).
  bool runTrial(index_t alpha) {
    ++epoch_;
    assigned_.clear();
    decremented_.clear();
    popped_free_.clear();
    for (auto& h : excl_heap_) h.clear();
    std::fill(omega_.begin(), omega_.end(), weight_t{0});
    core1_hit_alpha_ = false;

    // I. Core 1 (index 0): up to alpha vertices by Rule I.
    index_t count = 0;
    while (count < alpha) {
      const index_t v = popBest(0);
      if (v < 0) break;
      assign(v, 0);
      ++count;
    }
    core1_hit_alpha_ = (count == alpha);
    const weight_t omega1 = omega_[0];

    // Cores 2..k: assign until the core's weight reaches Ω1 (the last
    // vertex may overshoot, realizing Ωp ≤ μΩ1 of App. B).
    for (int p = 1; p < opts_.num_cores; ++p) {
      while (omega_[static_cast<size_t>(p)] < omega1) {
        const index_t v = popBest(p);
        if (v < 0) break;
        assign(v, p);
      }
    }
    return !assigned_.empty();
  }

  double parallelizationScore() const {
    const weight_t sum = std::accumulate(omega_.begin(), omega_.end(), weight_t{0});
    const weight_t max = *std::max_element(omega_.begin(), omega_.end());
    return static_cast<double>(sum) /
           (static_cast<double>(max) + opts_.sync_cost_l);
  }

  /// Work balance of the trial, ΣΩp / (cores · maxΩp) in (0, 1]; the
  /// "sufficient parallelization" floor is tested against this (it must be
  /// independent of L, or small supersteps could never pass).
  double utilization() const {
    const weight_t sum = std::accumulate(omega_.begin(), omega_.end(), weight_t{0});
    const weight_t max = *std::max_element(omega_.begin(), omega_.end());
    if (max == 0) return 1.0;
    return static_cast<double>(sum) /
           (static_cast<double>(opts_.num_cores) * static_cast<double>(max));
  }

  /// utilization() evaluated AFTER kBinPack-folding the trial's Ω vector
  /// onto `target` slots (a one-superstep load table): the balance an
  /// elastic solve at that width would actually see. A trial can look
  /// balanced at full width yet fold into one overloaded slot — this is
  /// the quantity the fold-aware acceptance tests against.
  double foldedUtilization(int target) const {
    if (target >= opts_.num_cores) return utilization();
    const weight_t sum =
        std::accumulate(omega_.begin(), omega_.end(), weight_t{0});
    const auto map = foldRankMap(1, opts_.num_cores, target,
                                 FoldPolicy::kBinPack, omega_);
    const weight_t max =
        foldedMakespan(omega_, 1, opts_.num_cores, target, map);
    if (max == 0) return 1.0;
    return static_cast<double>(sum) /
           (static_cast<double>(target) * static_cast<double>(max));
  }

  /// Undo the last trial completely (back to the last barrier).
  void rollback() {
    for (const index_t u : decremented_) {
      ++parents_left_[static_cast<size_t>(u)];
    }
    for (const auto& [v, p] : assigned_) {
      (void)p;
      trial_assigned_[static_cast<size_t>(v)] = 0;
    }
    for (const index_t v : popped_free_) free_heap_.push(v);
  }

  /// Apply a saved assignment list as superstep `s`. Must be called with
  /// the state rolled back to the barrier the list was formed from.
  void commit(const std::vector<std::pair<index_t, int>>& saved, index_t s) {
    for (const auto& [v, p] : saved) {
      committed_[static_cast<size_t>(v)] = 1;
      core_[static_cast<size_t>(v)] = p;
      superstep_[static_cast<size_t>(v)] = s;
      order_records_.push_back(v);
      for (const index_t u : dag_.children(v)) {
        if (--parents_left_[static_cast<size_t>(u)] == 0) free_heap_.push(u);
      }
    }
    committed_count_ += static_cast<index_t>(saved.size());
  }

  const std::vector<std::pair<index_t, int>>& trialAssignments() const {
    return assigned_;
  }
  bool core1HitAlpha() const { return core1_hit_alpha_; }
  index_t committedCount() const { return committed_count_; }

  void prepareOutput() {
    core_.assign(static_cast<size_t>(n_), 0);
    superstep_.assign(static_cast<size_t>(n_), 0);
    order_records_.reserve(static_cast<size_t>(n_));
  }

  Schedule buildSchedule(index_t num_supersteps) const {
    // order_records_ is already superstep-major (commits are sequential)
    // and core-major within a superstep (trials assign core 0 first).
    const size_t groups = static_cast<size_t>(num_supersteps) *
                          static_cast<size_t>(opts_.num_cores);
    std::vector<offset_t> group_ptr(groups + 1, 0);
    auto group_of = [&](index_t v) {
      return static_cast<size_t>(superstep_[static_cast<size_t>(v)]) *
                 static_cast<size_t>(opts_.num_cores) +
             static_cast<size_t>(core_[static_cast<size_t>(v)]);
    };
    for (const index_t v : order_records_) ++group_ptr[group_of(v) + 1];
    std::partial_sum(group_ptr.begin(), group_ptr.end(), group_ptr.begin());
    std::vector<index_t> order(static_cast<size_t>(n_));
    std::vector<offset_t> cursor(group_ptr.begin(), group_ptr.end() - 1);
    for (const index_t v : order_records_) {
      order[static_cast<size_t>(cursor[group_of(v)]++)] = v;
    }
    return Schedule(n_, opts_.num_cores, num_supersteps,
                    std::vector<int>(core_), std::vector<index_t>(superstep_),
                    std::move(order), std::move(group_ptr));
  }

 private:
  /// Rule I: exclusive-to-p vertices first (smallest ID), then the free
  /// ready pool (smallest ID). Returns -1 when nothing is assignable to p.
  index_t popBest(int p) {
    auto& excl = excl_heap_[static_cast<size_t>(p)];
    if (!excl.empty()) return excl.pop();
    while (!free_heap_.empty()) {
      const index_t v = free_heap_.pop();
      if (committed_[static_cast<size_t>(v)] ||
          trial_assigned_[static_cast<size_t>(v)]) {
        continue;  // permanently stale entry
      }
      popped_free_.push_back(v);
      return v;
    }
    return -1;
  }

  void assign(index_t v, int p) {
    trial_assigned_[static_cast<size_t>(v)] = 1;
    assigned_.emplace_back(v, p);
    omega_[static_cast<size_t>(p)] += dag_.weight(v);
    for (const index_t u : dag_.children(v)) {
      --parents_left_[static_cast<size_t>(u)];
      decremented_.push_back(u);
      // Track which cores computed parents of u this superstep.
      if (ready_epoch_[static_cast<size_t>(u)] != epoch_) {
        ready_epoch_[static_cast<size_t>(u)] = epoch_;
        first_core_[static_cast<size_t>(u)] = p;
        multi_core_[static_cast<size_t>(u)] = 0;
      } else if (first_core_[static_cast<size_t>(u)] != p) {
        multi_core_[static_cast<size_t>(u)] = 1;
      }
      if (parents_left_[static_cast<size_t>(u)] == 0 &&
          !multi_core_[static_cast<size_t>(u)]) {
        // Became ready with all same-superstep parents on one core:
        // executable exclusively there before the next barrier.
        excl_heap_[static_cast<size_t>(first_core_[static_cast<size_t>(u)])]
            .push(u);
      }
      // If multi_core_: ready but blocked until the barrier; the commit
      // replay re-discovers it and feeds the free heap.
    }
  }

  const Dag& dag_;
  const GrowLocalOptions& opts_;
  index_t n_;

  std::vector<index_t> parents_left_;
  std::vector<char> committed_;
  std::vector<char> trial_assigned_;
  std::vector<std::uint32_t> ready_epoch_;
  std::vector<int> first_core_;
  std::vector<char> multi_core_;

  MinIdHeap free_heap_;
  std::vector<MinIdHeap> excl_heap_;
  std::vector<weight_t> omega_;

  // Trial journal.
  std::vector<std::pair<index_t, int>> assigned_;
  std::vector<index_t> decremented_;
  std::vector<index_t> popped_free_;
  std::uint32_t epoch_ = 0;
  bool core1_hit_alpha_ = false;

  // Committed schedule.
  std::vector<int> core_;
  std::vector<index_t> superstep_;
  std::vector<index_t> order_records_;
  index_t committed_count_ = 0;
};

/// True iff the trial's loads stay balanced after kBinPack-folding onto
/// every requested target (vacuously true with no targets).
bool foldBalanced(const GrowLocalState& state, const GrowLocalOptions& opts) {
  for (const int target : opts.fold_targets) {
    const int t = std::min(target, opts.num_cores);
    if (state.foldedUtilization(t) < opts.min_utilization) return false;
  }
  return true;
}

/// The metric fold-aware scheduling competes on: summed folded BSP cost
/// (compute makespan under kBinPack + L per barrier) across the requested
/// targets plus the full width. The keep-better-of-two selection below
/// makes fold-aware never lose to binpack-after-the-fact on this quantity
/// by construction (the bench_fold_policies gate).
double foldedBspCost(const Schedule& schedule, const GrowLocalOptions& opts,
                     std::span<const weight_t> weights) {
  std::vector<int> targets = opts.fold_targets;
  targets.push_back(opts.num_cores);
  double cost = 0.0;
  for (const int raw : targets) {
    const int t = std::clamp(raw, 1, schedule.numCores());
    cost += static_cast<double>(
                foldedMakespanAt(schedule, t, FoldPolicy::kBinPack, weights)) +
            opts.sync_cost_l * static_cast<double>(schedule.numSupersteps());
  }
  return cost;
}

Schedule growLocalScheduleImpl(const Dag& dag, const GrowLocalOptions& opts) {
  if (opts.num_cores <= 0) {
    throw std::invalid_argument("growLocalSchedule: num_cores must be positive");
  }
  if (opts.min_superstep_size <= 0 || opts.growth_factor <= 1.0 ||
      opts.worthy_factor <= 0.0 || opts.worthy_factor > 1.0 ||
      opts.sync_cost_l < 0.0 || opts.min_utilization < 0.0 ||
      opts.min_utilization > 1.0) {
    throw std::invalid_argument("growLocalSchedule: bad options");
  }
  const index_t n = dag.numVertices();
  if (n == 0) {
    return Schedule(0, opts.num_cores, 0, {}, {}, {},
                    std::vector<offset_t>{0});
  }

  GrowLocalState state(dag, opts);
  state.prepareOutput();

  index_t superstep = 0;
  std::vector<std::pair<index_t, int>> saved;
  while (state.committedCount() < n) {
    double alpha = static_cast<double>(opts.min_superstep_size);
    double best_beta = -1.0;
    saved.clear();
    while (true) {
      const bool any = state.runTrial(static_cast<index_t>(alpha));
      if (!any) {
        // No ready vertex: impossible for an acyclic graph with work left.
        throw std::logic_error(
            "growLocalSchedule: no ready vertices but work remains (cyclic "
            "input?)");
      }
      const double beta = state.parallelizationScore();
      const bool worthy =
          saved.empty() ||
          (beta >= opts.worthy_factor * best_beta &&
           state.utilization() >= opts.min_utilization &&
           foldBalanced(state, opts));
      if (worthy) {
        saved = state.trialAssignments();
        best_beta = std::max(best_beta, beta);
        const bool exhausted_dag =
            state.committedCount() +
                static_cast<index_t>(saved.size()) == n;
        const bool maximal_trial = !state.core1HitAlpha();
        state.rollback();
        if (exhausted_dag || maximal_trial) break;
        alpha *= opts.growth_factor;
      } else {
        state.rollback();
        break;
      }
    }
    state.commit(saved, superstep);
    ++superstep;
  }
  Schedule schedule = state.buildSchedule(superstep);
  if (opts.coalesce_supersteps) {
    schedule = coalesceSupersteps(dag, schedule);
  }
  return schedule;
}

}  // namespace

Schedule growLocalSchedule(const Dag& dag, const GrowLocalOptions& opts) {
  if (opts.fold_targets.empty()) return growLocalScheduleImpl(dag, opts);
  for (const int target : opts.fold_targets) {
    if (target < 1) {
      throw std::invalid_argument(
          "growLocalSchedule: fold_targets entries must be >= 1");
    }
  }
  // Keep the better of {fold-aware, plain} under the summed folded BSP
  // cost: the fold-aware acceptance can only reject trials, which may cost
  // extra barriers; this selection guarantees the feature never loses to
  // plain scheduling + after-the-fact bin packing on the metric it targets.
  GrowLocalOptions plain = opts;
  plain.fold_targets.clear();
  Schedule base = growLocalScheduleImpl(dag, plain);
  Schedule aware = growLocalScheduleImpl(dag, opts);
  return foldedBspCost(aware, opts, dag.weights()) <=
                 foldedBspCost(base, opts, dag.weights())
             ? std::move(aware)
             : std::move(base);
}

}  // namespace sts::core
