#include "core/reorder.hpp"

#include <algorithm>
#include <stdexcept>

namespace sts::core {

std::vector<index_t> schedulePermutation(const Schedule& schedule,
                                         InGroupOrder in_group) {
  const auto order = schedule.executionOrder();
  std::vector<index_t> perm(order.begin(), order.end());
  if (in_group == InGroupOrder::kById) {
    const auto ptr = schedule.groupPtr();
    for (size_t g = 0; g + 1 < ptr.size(); ++g) {
      std::sort(perm.begin() + static_cast<std::ptrdiff_t>(ptr[g]),
                perm.begin() + static_cast<std::ptrdiff_t>(ptr[g + 1]));
    }
  }
  return perm;
}

ReorderedProblem reorderForLocality(const sparse::CsrMatrix& lower,
                                    const Schedule& schedule,
                                    InGroupOrder in_group) {
  if (lower.rows() != schedule.numVertices()) {
    throw std::invalid_argument("reorderForLocality: dimension mismatch");
  }
  ReorderedProblem problem;
  problem.new_to_old = schedulePermutation(schedule, in_group);
  problem.matrix = lower.symmetricPermuted(problem.new_to_old);
  if (!problem.matrix.isLowerTriangular()) {
    throw std::invalid_argument(
        "reorderForLocality: permutation is not topological (schedule "
        "invalid for this matrix)");
  }
  problem.num_supersteps = schedule.numSupersteps();
  problem.num_cores = schedule.numCores();
  problem.group_ptr.assign(schedule.groupPtr().begin(),
                           schedule.groupPtr().end());
  return problem;
}

}  // namespace sts::core
