#include "core/schedule.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "check/check.hpp"
#include "dag/wavefronts.hpp"

namespace sts::core {

std::string foldPolicyName(FoldPolicy policy) {
  switch (policy) {
    case FoldPolicy::kModulo: return "modulo";
    case FoldPolicy::kBinPack: return "binpack";
  }
  return "?";
}

namespace {

void requireFoldShape(index_t num_supersteps, int width, int target,
                      const char* who) {
  if (width <= 0 || num_supersteps < 0) {
    throw std::invalid_argument(std::string(who) + ": malformed shape");
  }
  if (target <= 0 || target > width) {
    throw std::invalid_argument(std::string(who) + ": target " +
                                std::to_string(target) + " outside [1, " +
                                std::to_string(width) + "]");
  }
}

/// LPT vector packing: ranks in descending total-load order, each placed on
/// the slot whose per-superstep loads grow the folded makespan least.
std::vector<int> binPackRankMap(index_t num_supersteps, int width, int target,
                                std::span<const weight_t> rank_loads) {
  const auto steps = static_cast<size_t>(num_supersteps);
  std::vector<weight_t> totals(static_cast<size_t>(width), 0);
  for (size_t s = 0; s < steps; ++s) {
    for (int p = 0; p < width; ++p) {
      totals[static_cast<size_t>(p)] +=
          rank_loads[s * static_cast<size_t>(width) + static_cast<size_t>(p)];
    }
  }
  std::vector<int> ranks(static_cast<size_t>(width));
  std::iota(ranks.begin(), ranks.end(), 0);
  std::sort(ranks.begin(), ranks.end(), [&totals](int a, int b) {
    const weight_t ta = totals[static_cast<size_t>(a)];
    const weight_t tb = totals[static_cast<size_t>(b)];
    return ta != tb ? ta > tb : a < b;
  });

  // slot_load[q * steps + s]: per-superstep load of target slot q so far;
  // step_max[s]: the current per-superstep maximum across slots.
  std::vector<weight_t> slot_load(static_cast<size_t>(target) * steps, 0);
  std::vector<weight_t> slot_total(static_cast<size_t>(target), 0);
  std::vector<weight_t> step_max(steps, 0);
  std::vector<int> map(static_cast<size_t>(width), 0);
  for (const int p : ranks) {
    const weight_t* r =
        rank_loads.data() + static_cast<size_t>(p);  // stride `width`
    int best_q = 0;
    weight_t best_delta = std::numeric_limits<weight_t>::max();
    for (int q = 0; q < target; ++q) {
      const weight_t* load = slot_load.data() + static_cast<size_t>(q) * steps;
      weight_t delta = 0;
      for (size_t s = 0; s < steps; ++s) {
        const weight_t grown = load[s] + r[s * static_cast<size_t>(width)];
        if (grown > step_max[s]) delta += grown - step_max[s];
      }
      if (delta < best_delta ||
          (delta == best_delta && slot_total[static_cast<size_t>(q)] <
                                      slot_total[static_cast<size_t>(best_q)])) {
        best_delta = delta;
        best_q = q;
      }
    }
    map[static_cast<size_t>(p)] = best_q;
    weight_t* load = slot_load.data() + static_cast<size_t>(best_q) * steps;
    for (size_t s = 0; s < steps; ++s) {
      load[s] += r[s * static_cast<size_t>(width)];
      step_max[s] = std::max(step_max[s], load[s]);
    }
    slot_total[static_cast<size_t>(best_q)] += totals[static_cast<size_t>(p)];
  }

  // Surjectivity repair. The greedy can starve a slot: zero-load ranks all
  // tie at delta 0 and the slot_total tie-break keeps sending them to the
  // same (still zero-total) slot, so e.g. loads {a, 0, 0, 0} folded 4 -> 3
  // pack as {0, 1, 1, 1} and slot 2 would idle forever. Every slot must
  // own at least one rank (check::validateRankMap pins this): give each
  // empty slot the lightest rank of a multi-rank slot. Moving a rank out
  // of a shared slot onto an empty one never increases any per-superstep
  // load, so the repair keeps the makespan bound (and with it the
  // never-worse-than-modulo property).
  std::vector<int> slot_ranks(static_cast<size_t>(target), 0);
  for (const int q : map) ++slot_ranks[static_cast<size_t>(q)];
  for (int q = 0; q < target; ++q) {
    if (slot_ranks[static_cast<size_t>(q)] != 0) continue;
    int donor = -1;
    for (int p = 0; p < width; ++p) {
      const int from = map[static_cast<size_t>(p)];
      if (slot_ranks[static_cast<size_t>(from)] < 2) continue;
      if (donor < 0 || totals[static_cast<size_t>(p)] <
                           totals[static_cast<size_t>(donor)]) {
        donor = p;
      }
    }
    // width >= target guarantees a multi-rank donor while any slot is
    // empty (pigeonhole).
    --slot_ranks[static_cast<size_t>(map[static_cast<size_t>(donor)])];
    map[static_cast<size_t>(donor)] = q;
    ++slot_ranks[static_cast<size_t>(q)];
  }
  return map;
}

}  // namespace

std::vector<int> foldRankMap(index_t num_supersteps, int width, int target,
                             FoldPolicy policy,
                             std::span<const weight_t> rank_loads) {
  requireFoldShape(num_supersteps, width, target, "foldRankMap");
  std::vector<int> modulo(static_cast<size_t>(width));
  for (int p = 0; p < width; ++p) modulo[static_cast<size_t>(p)] = p % target;
  if (policy == FoldPolicy::kModulo || target == width) return modulo;

  if (rank_loads.size() != static_cast<size_t>(num_supersteps) *
                               static_cast<size_t>(width)) {
    throw std::invalid_argument(
        "foldRankMap: kBinPack needs a num_supersteps * width load table");
  }
  std::vector<int> packed =
      binPackRankMap(num_supersteps, width, target, rank_loads);
  // The greedy packing is near-optimal in practice but carries no guarantee;
  // keeping the better of {greedy, modulo} makes kBinPack never worse than
  // kModulo by construction (the property the tests pin).
  const weight_t packed_makespan =
      foldedMakespan(rank_loads, num_supersteps, width, target, packed);
  const weight_t modulo_makespan =
      foldedMakespan(rank_loads, num_supersteps, width, target, modulo);
  return packed_makespan <= modulo_makespan ? packed : modulo;
}

weight_t foldedMakespan(std::span<const weight_t> rank_loads,
                        index_t num_supersteps, int width, int target,
                        std::span<const int> rank_map) {
  requireFoldShape(num_supersteps, width, target, "foldedMakespan");
  if (rank_loads.size() != static_cast<size_t>(num_supersteps) *
                               static_cast<size_t>(width) ||
      rank_map.size() != static_cast<size_t>(width)) {
    throw std::invalid_argument("foldedMakespan: size mismatch");
  }
  std::vector<weight_t> slot(static_cast<size_t>(target), 0);
  weight_t makespan = 0;
  for (index_t s = 0; s < num_supersteps; ++s) {
    std::fill(slot.begin(), slot.end(), 0);
    for (int p = 0; p < width; ++p) {
      slot[static_cast<size_t>(rank_map[static_cast<size_t>(p)])] +=
          rank_loads[static_cast<size_t>(s) * static_cast<size_t>(width) +
                     static_cast<size_t>(p)];
    }
    makespan += *std::max_element(slot.begin(), slot.end());
  }
  return makespan;
}

double foldedImbalance(std::span<const weight_t> rank_loads,
                       index_t num_supersteps, int width, int target,
                       std::span<const int> rank_map) {
  const weight_t makespan =
      foldedMakespan(rank_loads, num_supersteps, width, target, rank_map);
  weight_t total = 0;
  for (const weight_t load : rank_loads) total += load;
  const weight_t ideal = (total + target - 1) / target;
  return ideal > 0 ? static_cast<double>(makespan) /
                         static_cast<double>(ideal)
                   : 1.0;
}

weight_t foldedMakespanAt(const Schedule& schedule, int target,
                          FoldPolicy policy,
                          std::span<const weight_t> vertex_weights) {
  if (target < 1 || target > schedule.numCores()) {
    throw std::invalid_argument("foldedMakespanAt: target out of range");
  }
  const auto loads = schedule.rankLoads(vertex_weights);
  const auto map = foldRankMap(schedule.numSupersteps(), schedule.numCores(),
                               target, policy, loads);
  return foldedMakespan(loads, schedule.numSupersteps(), schedule.numCores(),
                        target, map);
}

std::shared_ptr<const Schedule::Payload> Schedule::emptyPayload() {
  static const std::shared_ptr<const Payload> empty =
      std::make_shared<const Payload>();
  return empty;
}

Schedule::Schedule() : payload_(emptyPayload()) {}

Schedule::Schedule(index_t n, int num_cores, index_t num_supersteps,
                   std::vector<int> core, std::vector<index_t> superstep,
                   std::vector<index_t> order,
                   std::vector<offset_t> group_ptr)
    : n_(n), num_cores_(num_cores), num_supersteps_(num_supersteps) {
  if (num_cores_ <= 0) {
    throw std::invalid_argument("Schedule: num_cores must be positive");
  }
  if (core.size() != static_cast<size_t>(n_) ||
      superstep.size() != static_cast<size_t>(n_) ||
      order.size() != static_cast<size_t>(n_)) {
    throw std::invalid_argument("Schedule: assignment array size mismatch");
  }
  const size_t groups =
      static_cast<size_t>(num_supersteps_) * static_cast<size_t>(num_cores_);
  if (group_ptr.size() != groups + 1 || group_ptr.front() != 0 ||
      group_ptr.back() != static_cast<offset_t>(n_)) {
    throw std::invalid_argument("Schedule: group_ptr malformed");
  }
  payload_ = std::make_shared<const Payload>(
      Payload{std::move(core), std::move(superstep), std::move(order),
              std::move(group_ptr)});
}

Schedule Schedule::fromAssignment(const Dag& dag, int num_cores,
                                  std::span<const int> core,
                                  std::span<const index_t> superstep) {
  const index_t n = dag.numVertices();
  if (num_cores <= 0) {
    throw std::invalid_argument("fromAssignment: num_cores must be positive");
  }
  if (static_cast<index_t>(core.size()) != n ||
      static_cast<index_t>(superstep.size()) != n) {
    throw std::invalid_argument("fromAssignment: array size mismatch");
  }
  for (index_t v = 0; v < n; ++v) {
    if (core[static_cast<size_t>(v)] < 0 ||
        core[static_cast<size_t>(v)] >= num_cores) {
      throw std::invalid_argument("fromAssignment: core out of range");
    }
    if (superstep[static_cast<size_t>(v)] < 0) {
      throw std::invalid_argument("fromAssignment: negative superstep");
    }
  }

  // Compact superstep numbering: drop empty supersteps.
  std::vector<index_t> used(superstep.begin(), superstep.end());
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  std::vector<index_t> compact(n == 0 ? 0 : static_cast<size_t>(used.empty() ? 0 : used.back() + 1));
  for (size_t i = 0; i < used.size(); ++i) {
    compact[static_cast<size_t>(used[i])] = static_cast<index_t>(i);
  }
  const auto num_supersteps = static_cast<index_t>(used.size());

  std::vector<index_t> sigma(static_cast<size_t>(n));
  for (index_t v = 0; v < n; ++v) {
    sigma[static_cast<size_t>(v)] =
        compact[static_cast<size_t>(superstep[static_cast<size_t>(v)])];
  }

  // Order each group by (level, id): valid because any edge increases the
  // wavefront level.
  const dag::Wavefronts wf = dag::computeWavefronts(dag);
  const size_t groups =
      static_cast<size_t>(num_supersteps) * static_cast<size_t>(num_cores);
  std::vector<offset_t> group_ptr(groups + 1, 0);
  auto group_of = [&](index_t v) {
    return static_cast<size_t>(sigma[static_cast<size_t>(v)]) *
               static_cast<size_t>(num_cores) +
           static_cast<size_t>(core[static_cast<size_t>(v)]);
  };
  for (index_t v = 0; v < n; ++v) ++group_ptr[group_of(v) + 1];
  std::partial_sum(group_ptr.begin(), group_ptr.end(), group_ptr.begin());

  std::vector<index_t> order(static_cast<size_t>(n));
  std::vector<offset_t> cursor(group_ptr.begin(), group_ptr.end() - 1);
  for (index_t v = 0; v < n; ++v) {
    order[static_cast<size_t>(cursor[group_of(v)]++)] = v;
  }
  for (size_t g = 0; g < groups; ++g) {
    std::sort(order.begin() + static_cast<std::ptrdiff_t>(group_ptr[g]),
              order.begin() + static_cast<std::ptrdiff_t>(group_ptr[g + 1]),
              [&wf](index_t a, index_t b) {
                const index_t la = wf.level[static_cast<size_t>(a)];
                const index_t lb = wf.level[static_cast<size_t>(b)];
                return la != lb ? la < lb : a < b;
              });
  }
  return Schedule(n, num_cores, num_supersteps,
                  std::vector<int>(core.begin(), core.end()),
                  std::move(sigma), std::move(order), std::move(group_ptr));
}

Schedule Schedule::serial(const Dag& dag) {
  const index_t n = dag.numVertices();
  const std::vector<int> core(static_cast<size_t>(n), 0);
  const std::vector<index_t> superstep(static_cast<size_t>(n), 0);
  return fromAssignment(dag, 1, core, superstep);
}

std::span<const index_t> Schedule::group(index_t s, int p) const {
  const size_t g = static_cast<size_t>(s) * static_cast<size_t>(num_cores_) +
                   static_cast<size_t>(p);
  const auto& group_ptr = payload_->group_ptr;
  return std::span<const index_t>(payload_->order)
      .subspan(static_cast<size_t>(group_ptr[g]),
               static_cast<size_t>(group_ptr[g + 1] - group_ptr[g]));
}

Schedule Schedule::foldTo(int num_cores) const {
  return foldTo(num_cores, FoldPolicy::kModulo);
}

Schedule Schedule::foldTo(int num_cores, FoldPolicy policy,
                          std::span<const weight_t> vertex_weights) const {
  if (num_cores <= 0) {
    throw std::invalid_argument("Schedule::foldTo: num_cores must be positive");
  }
  if (num_cores > num_cores_) {
    throw std::invalid_argument(
        "Schedule::foldTo: cannot widen a schedule (requested " +
        std::to_string(num_cores) + " > " + std::to_string(num_cores_) + ")");
  }
  // Shared payload makes the fold-to-self an O(1) shallow copy (identical
  // for every policy: folding onto the full width merges nothing).
  if (num_cores == num_cores_) return *this;

  std::vector<weight_t> loads;
  if (policy != FoldPolicy::kModulo) loads = rankLoads(vertex_weights);
  const std::vector<int> map =
      foldRankMap(num_supersteps_, num_cores_, num_cores, policy, loads);
  return foldWith(map, num_cores);
}

Schedule Schedule::foldWith(std::span<const int> rank_map,
                            int num_cores) const {
  if (num_cores <= 0 || num_cores > num_cores_ ||
      rank_map.size() != static_cast<size_t>(num_cores_)) {
    throw std::invalid_argument("Schedule::foldWith: malformed rank map");
  }
  for (const int q : rank_map) {
    if (q < 0 || q >= num_cores) {
      throw std::invalid_argument("Schedule::foldWith: slot out of range");
    }
  }
#if STS_CHECKS
  // Beyond the range check above: the fold must reach every target slot
  // (an unreached slot would idle a granted core for the whole solve).
  check::enforce(check::validateRankMap(num_cores_, num_cores, rank_map),
                 "Schedule::foldWith");
#endif
  std::vector<int> core(static_cast<size_t>(n_));
  for (index_t v = 0; v < n_; ++v) {
    core[static_cast<size_t>(v)] = rank_map[static_cast<size_t>(
        payload_->core[static_cast<size_t>(v)])];
  }
  // Invert the map once (ascending p within each slot) so the fold walks
  // each superstep's groups O(numCores()) instead of O(t * numCores()).
  std::vector<std::vector<int>> slot_ranks(static_cast<size_t>(num_cores));
  for (int p = 0; p < num_cores_; ++p) {
    slot_ranks[static_cast<size_t>(rank_map[static_cast<size_t>(p)])]
        .push_back(p);
  }
  std::vector<index_t> order;
  order.reserve(static_cast<size_t>(n_));
  std::vector<offset_t> group_ptr = {0};
  group_ptr.reserve(static_cast<size_t>(num_supersteps_) *
                        static_cast<size_t>(num_cores) + 1);
  for (index_t s = 0; s < num_supersteps_; ++s) {
    for (int q = 0; q < num_cores; ++q) {
      for (const int p : slot_ranks[static_cast<size_t>(q)]) {
        const auto g = group(s, p);
        order.insert(order.end(), g.begin(), g.end());
      }
      group_ptr.push_back(static_cast<offset_t>(order.size()));
    }
  }
  return Schedule(n_, num_cores, num_supersteps_, std::move(core),
                  std::vector<index_t>(payload_->superstep), std::move(order),
                  std::move(group_ptr));
}

std::vector<weight_t> Schedule::rankLoads(
    std::span<const weight_t> vertex_weights) const {
  if (!vertex_weights.empty() &&
      vertex_weights.size() != static_cast<size_t>(n_)) {
    throw std::invalid_argument("Schedule::rankLoads: weight size mismatch");
  }
  std::vector<weight_t> loads(static_cast<size_t>(num_supersteps_) *
                                  static_cast<size_t>(num_cores_),
                              0);
  for (index_t v = 0; v < n_; ++v) {
    const size_t g =
        static_cast<size_t>(payload_->superstep[static_cast<size_t>(v)]) *
            static_cast<size_t>(num_cores_) +
        static_cast<size_t>(payload_->core[static_cast<size_t>(v)]);
    loads[g] += vertex_weights.empty()
                    ? 1
                    : vertex_weights[static_cast<size_t>(v)];
  }
  return loads;
}

ScheduleValidation validateSchedule(const Dag& dag, const Schedule& schedule) {
  const index_t n = dag.numVertices();
  auto fail = [](const std::string& msg) {
    return ScheduleValidation{false, msg};
  };
  if (schedule.numVertices() != n) {
    return fail("schedule covers a different number of vertices");
  }

  // Every vertex appears exactly once in the execution order, inside the
  // group its (σ, π) assignment points to.
  std::vector<offset_t> position(static_cast<size_t>(n), -1);
  const auto order = schedule.executionOrder();
  for (size_t i = 0; i < order.size(); ++i) {
    const index_t v = order[i];
    if (v < 0 || v >= n) return fail("execution order contains a bad vertex");
    if (position[static_cast<size_t>(v)] != -1) {
      std::ostringstream os;
      os << "vertex " << v << " appears twice in the execution order";
      return fail(os.str());
    }
    position[static_cast<size_t>(v)] = static_cast<offset_t>(i);
  }
  if (order.size() != static_cast<size_t>(n)) {
    return fail("execution order does not cover all vertices");
  }
  for (index_t s = 0; s < schedule.numSupersteps(); ++s) {
    for (int p = 0; p < schedule.numCores(); ++p) {
      for (const index_t v : schedule.group(s, p)) {
        if (schedule.superstepOf(v) != s || schedule.coreOf(v) != p) {
          std::ostringstream os;
          os << "vertex " << v << " listed in group (" << s << ", " << p
             << ") but assigned to (" << schedule.superstepOf(v) << ", "
             << schedule.coreOf(v) << ")";
          return fail(os.str());
        }
      }
    }
  }

  // Definition 2.1 plus intra-group execution order.
  for (index_t u = 0; u < n; ++u) {
    for (const index_t v : dag.children(u)) {
      const index_t su = schedule.superstepOf(u);
      const index_t sv = schedule.superstepOf(v);
      if (su > sv) {
        std::ostringstream os;
        os << "edge (" << u << ", " << v << ") goes backwards in supersteps ("
           << su << " > " << sv << ")";
        return fail(os.str());
      }
      if (schedule.coreOf(u) != schedule.coreOf(v) && su >= sv) {
        std::ostringstream os;
        os << "edge (" << u << ", " << v
           << ") crosses cores without a barrier (superstep " << su << ")";
        return fail(os.str());
      }
      if (schedule.coreOf(u) == schedule.coreOf(v) && su == sv &&
          position[static_cast<size_t>(u)] >= position[static_cast<size_t>(v)]) {
        std::ostringstream os;
        os << "edge (" << u << ", " << v
           << ") violates the in-group execution order";
        return fail(os.str());
      }
    }
  }
  return ScheduleValidation{};
}

ScheduleStats computeScheduleStats(const Dag& dag, const Schedule& schedule,
                                   double sync_cost_l) {
  ScheduleStats stats;
  stats.supersteps = schedule.numSupersteps();
  stats.barriers = schedule.numBarriers();
  stats.total_work = dag.totalWeight();

  for (index_t s = 0; s < schedule.numSupersteps(); ++s) {
    weight_t max_load = 0;
    for (int p = 0; p < schedule.numCores(); ++p) {
      weight_t load = 0;
      for (const index_t v : schedule.group(s, p)) load += dag.weight(v);
      max_load = std::max(max_load, load);
    }
    stats.makespan_work += max_load;
  }
  const weight_t ideal =
      (stats.total_work + schedule.numCores() - 1) / schedule.numCores();
  stats.imbalance = ideal > 0 ? static_cast<double>(stats.makespan_work) /
                                    static_cast<double>(ideal)
                              : 1.0;
  stats.bsp_cost = static_cast<double>(stats.makespan_work) +
                   sync_cost_l * static_cast<double>(stats.barriers);
  const index_t wavefronts = dag::criticalPathLength(dag);
  stats.wavefront_reduction =
      stats.supersteps > 0
          ? static_cast<double>(wavefronts) / static_cast<double>(stats.supersteps)
          : 0.0;
  return stats;
}

Schedule coalesceSupersteps(const Dag& dag, const Schedule& schedule) {
  const index_t n = dag.numVertices();
  const index_t steps = schedule.numSupersteps();
  if (steps <= 1) return schedule;

  // cross_max_src[t] = latest superstep with a cross-core edge into t
  // (-1 if none). Folding supersteps [a..t] into one group is valid iff no
  // cross-core edge lands in t from within [a..t-1], i.e.
  // cross_max_src[t] < a.
  std::vector<index_t> cross_max_src(static_cast<size_t>(steps), -1);
  for (index_t u = 0; u < n; ++u) {
    for (const index_t v : dag.children(u)) {
      if (schedule.coreOf(u) != schedule.coreOf(v)) {
        auto& src = cross_max_src[static_cast<size_t>(schedule.superstepOf(v))];
        src = std::max(src, schedule.superstepOf(u));
      }
    }
  }
  // Greedy left-to-right folding into maximal valid runs.
  std::vector<index_t> new_step(static_cast<size_t>(steps), 0);
  index_t run_start = 0;
  index_t run_index = 0;
  for (index_t s = 1; s < steps; ++s) {
    if (cross_max_src[static_cast<size_t>(s)] >= run_start) {
      run_start = s;
      ++run_index;
    }
    new_step[static_cast<size_t>(s)] = run_index;
  }
  const index_t merged_steps = run_index + 1;
  if (merged_steps == steps) return schedule;

  std::vector<int> core(schedule.cores().begin(), schedule.cores().end());
  std::vector<index_t> superstep(static_cast<size_t>(n));
  for (index_t v = 0; v < n; ++v) {
    superstep[static_cast<size_t>(v)] =
        new_step[static_cast<size_t>(schedule.superstepOf(v))];
  }
  // Rebuild the execution order by concatenating old groups per new group;
  // old-group order is preserved, so intra-core orderings survive.
  std::vector<index_t> order;
  order.reserve(static_cast<size_t>(n));
  std::vector<offset_t> group_ptr = {0};
  index_t old_s = 0;
  for (index_t s = 0; s < merged_steps; ++s) {
    index_t old_end = old_s;
    while (old_end < steps && new_step[static_cast<size_t>(old_end)] == s) {
      ++old_end;
    }
    for (int p = 0; p < schedule.numCores(); ++p) {
      for (index_t o = old_s; o < old_end; ++o) {
        const auto group = schedule.group(o, p);
        order.insert(order.end(), group.begin(), group.end());
      }
      group_ptr.push_back(static_cast<offset_t>(order.size()));
    }
    old_s = old_end;
  }
  return Schedule(n, schedule.numCores(), merged_steps, std::move(core),
                  std::move(superstep), std::move(order),
                  std::move(group_ptr));
}

}  // namespace sts::core
