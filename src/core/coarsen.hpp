#pragma once

#include <span>
#include <vector>

#include "core/schedule.hpp"
#include "dag/dag.hpp"

/// \file coarsen.hpp
/// Acyclicity-preserving DAG coarsening (paper §4): partitions the DAG into
/// *funnels* — a special case of *cascades* (Def. 4.2) — and quotients the
/// graph along the partition (Def. 4.1). Proposition 4.3 guarantees the
/// coarse graph is acyclic; we additionally exploit that a partition found
/// on the transitively-reduced graph stays safe on the original: reduction
/// preserves the transitive closure, so every quotient edge of the original
/// graph is a shortcut of a coarse path that already exists in the reduced
/// quotient, and shortcuts of an acyclic reachability relation cannot close
/// a cycle.

namespace sts::core {

/// A partition of the vertex set with parts relabeled canonically by their
/// minimum member ID (so coarse vertex IDs inherit the original ordering's
/// locality, which GrowLocal's smallest-ID rule depends on).
struct Partition {
  index_t num_parts = 0;
  std::vector<index_t> part_of;       ///< part of each vertex
  std::vector<offset_t> part_ptr;     ///< boundaries into part_members
  std::vector<index_t> part_members;  ///< grouped by part, ascending inside

  std::span<const index_t> members(index_t part) const {
    return std::span<const index_t>(part_members)
        .subspan(static_cast<size_t>(part_ptr[static_cast<size_t>(part)]),
                 static_cast<size_t>(part_ptr[static_cast<size_t>(part) + 1] -
                                     part_ptr[static_cast<size_t>(part)]));
  }

  /// Canonicalizes an arbitrary part_of labeling (relabels by min member).
  static Partition fromPartOf(index_t n, std::span<const index_t> part_of);

  /// Every vertex in its own part.
  static Partition singletons(index_t n);
};

struct FunnelOptions {
  enum class Direction {
    kIn,   ///< in-funnels: at most one member has an outgoing cut edge
    kOut,  ///< out-funnels: at most one member has an incoming cut edge
  };
  Direction direction = Direction::kIn;

  /// Hard cap on part cardinality (the paper adds a size/weight constraint
  /// so a single-sink DAG does not collapse into one vertex).
  index_t max_part_size = 64;

  /// Hard cap on the summed weight of a part; 0 disables the cap.
  weight_t max_part_weight = 0;

  /// Remove "long edges in triangles" before searching for funnels (§4.2);
  /// larger components are found on the reduced graph.
  bool pre_transitive_reduction = true;
};

/// Algorithm 4.1 (plus the out-funnel mirror): greedy funnel growth from
/// seeds in reverse topological order. O(|V| + |E|) after the optional
/// reduction pass.
Partition funnelPartition(const Dag& dag, const FunnelOptions& opts = {});

/// The coarsened graph G//P of Definition 4.1: part weights are summed,
/// parallel edges collapsed, self-loops dropped.
Dag coarsen(const Dag& dag, const Partition& partition);

/// Expands a schedule of coarsen(dag, partition) back to `dag`: every
/// member inherits its part's (core, superstep); within a coarse group,
/// parts expand in the coarse execution order and members execute in
/// (wavefront level, ID) order. The result is always a valid fine schedule.
Schedule pullBackSchedule(const Dag& fine_dag, const Partition& partition,
                          const Schedule& coarse_schedule);

/// Test/diagnostic helper: checks Definition 4.2 directly (walks evaluated
/// in the full graph). Quadratic in the part size; intended for tests.
bool isCascade(const Dag& dag, std::span<const index_t> members);

/// The paper's "Funnel+GL" configuration: coarsen along funnels, schedule
/// the coarse DAG with GrowLocal, pull the schedule back (§7.3).
Schedule funnelGrowLocalSchedule(const Dag& dag,
                                 const struct GrowLocalOptions& gl_opts,
                                 const FunnelOptions& funnel_opts = {});

}  // namespace sts::core
