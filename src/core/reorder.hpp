#pragma once

#include <span>
#include <vector>

#include "core/schedule.hpp"
#include "sparse/csr.hpp"

/// \file reorder.hpp
/// Schedule-driven reordering for locality (paper §5): after scheduling,
/// relabel the vertices so that values computed consecutively on the same
/// core are adjacent in memory — iterate supersteps in order, cores within
/// a superstep in order, and vertices within a (core, superstep) group in
/// their original order. The symmetric permutation of the matrix stays
/// lower triangular because the new order is a topological order of the
/// DAG, and each (superstep, core) group becomes a contiguous row range.

namespace sts::core {

/// How vertices inside one (superstep, core) group are laid out.
enum class InGroupOrder {
  /// Original (ascending ID) order — the paper's choice; valid whenever the
  /// DAG's edges ascend IDs, which holds for every matrix-derived DAG.
  kById,
  /// The schedule's execution order — valid for arbitrary DAGs.
  kByExecution,
};

/// The new_to_old permutation induced by the schedule.
std::vector<index_t> schedulePermutation(
    const Schedule& schedule, InGroupOrder in_group = InGroupOrder::kById);

/// A fully reordered SpTRSV problem: permuted matrix, the permutation, and
/// the contiguous row range of every (superstep, core) group. The executor
/// for this form needs no per-vertex indirection at all.
struct ReorderedProblem {
  sparse::CsrMatrix matrix;          ///< P L P^T
  std::vector<index_t> new_to_old;   ///< row i of `matrix` is old row new_to_old[i]
  index_t num_supersteps = 0;
  int num_cores = 0;
  /// group g = superstep * num_cores + core covers rows
  /// [group_ptr[g], group_ptr[g+1]).
  std::vector<offset_t> group_ptr;
};

/// Builds the permuted problem from a validated schedule of dag(L).
/// Throws std::invalid_argument if the permutation does not keep the matrix
/// lower triangular (i.e., the schedule order was not topological).
ReorderedProblem reorderForLocality(const sparse::CsrMatrix& lower,
                                    const Schedule& schedule,
                                    InGroupOrder in_group = InGroupOrder::kById);

}  // namespace sts::core
