#include "core/block.hpp"

#include <omp.h>

#include <numeric>
#include <stdexcept>

namespace sts::core {

std::vector<index_t> computeBlockBoundaries(const Dag& dag, int num_blocks) {
  if (num_blocks <= 0) {
    throw std::invalid_argument("computeBlockBoundaries: need >= 1 block");
  }
  const index_t n = dag.numVertices();
  const weight_t total = dag.totalWeight();
  std::vector<index_t> bounds(static_cast<size_t>(num_blocks) + 1, n);
  bounds[0] = 0;
  weight_t prefix = 0;
  int next_block = 1;
  for (index_t v = 0; v < n && next_block < num_blocks; ++v) {
    prefix += dag.weight(v);
    // Cut once the prefix crosses the next equal-weight target.
    while (next_block < num_blocks &&
           prefix >= (total * next_block) / num_blocks) {
      bounds[static_cast<size_t>(next_block++)] = v + 1;
    }
  }
  return bounds;
}

Schedule blockSchedule(const Dag& dag, int num_blocks, bool parallel,
                       int num_cores, const BlockScheduler& scheduler) {
  const index_t n = dag.numVertices();
  const std::vector<index_t> bounds = computeBlockBoundaries(dag, num_blocks);

  std::vector<Schedule> block_schedules(static_cast<size_t>(num_blocks));
  std::vector<Dag> block_dags(static_cast<size_t>(num_blocks));

#pragma omp parallel for schedule(dynamic, 1) if (parallel)
  for (int b = 0; b < num_blocks; ++b) {
    const index_t lo = bounds[static_cast<size_t>(b)];
    const index_t hi = bounds[static_cast<size_t>(b) + 1];
    block_dags[static_cast<size_t>(b)] = dag.rangeSubgraph(lo, hi);
    block_schedules[static_cast<size_t>(b)] =
        scheduler(block_dags[static_cast<size_t>(b)]);
  }

  // Concatenate: superstep offsets accumulate block by block.
  std::vector<int> core(static_cast<size_t>(n), 0);
  std::vector<index_t> superstep(static_cast<size_t>(n), 0);
  std::vector<index_t> order;
  order.reserve(static_cast<size_t>(n));
  std::vector<offset_t> group_ptr = {0};
  index_t superstep_offset = 0;
  for (int b = 0; b < num_blocks; ++b) {
    const index_t lo = bounds[static_cast<size_t>(b)];
    const Schedule& s = block_schedules[static_cast<size_t>(b)];
    if (s.numCores() != num_cores) {
      throw std::invalid_argument(
          "blockSchedule: block scheduler used a different core count");
    }
    for (index_t v = 0; v < s.numVertices(); ++v) {
      core[static_cast<size_t>(lo + v)] = s.coreOf(v);
      superstep[static_cast<size_t>(lo + v)] =
          superstep_offset + s.superstepOf(v);
    }
    for (index_t ss = 0; ss < s.numSupersteps(); ++ss) {
      for (int p = 0; p < num_cores; ++p) {
        for (const index_t v : s.group(ss, p)) {
          order.push_back(lo + v);
        }
        group_ptr.push_back(static_cast<offset_t>(order.size()));
      }
    }
    superstep_offset += s.numSupersteps();
  }
  return Schedule(n, num_cores, superstep_offset, std::move(core),
                  std::move(superstep), std::move(order),
                  std::move(group_ptr));
}

Schedule blockGrowLocalSchedule(const Dag& dag,
                                const BlockScheduleOptions& opts) {
  return blockSchedule(dag, opts.num_blocks, opts.parallel,
                       opts.growlocal.num_cores, [&opts](const Dag& block) {
                         return growLocalSchedule(block, opts.growlocal);
                       });
}

}  // namespace sts::core
