#include "core/coarsen.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/growlocal.hpp"
#include "dag/toposort.hpp"
#include "dag/transitive.hpp"
#include "dag/wavefronts.hpp"

namespace sts::core {

namespace {

/// Max-heap of vertex IDs: Algorithm 4.1 processes candidates roughly in
/// reverse topological (descending-ID) order, which keeps funnel members
/// contiguous in the original ordering.
class MaxIdHeap {
 public:
  void push(index_t v) {
    data_.push_back(v);
    std::push_heap(data_.begin(), data_.end());
  }
  index_t pop() {
    std::pop_heap(data_.begin(), data_.end());
    const index_t v = data_.back();
    data_.pop_back();
    return v;
  }
  bool empty() const { return data_.empty(); }
  void clear() { data_.clear(); }

 private:
  std::vector<index_t> data_;
};

Dag reversedDag(const Dag& dag) {
  std::vector<dag::Edge> edges = dag.edgeList();
  for (auto& [u, v] : edges) std::swap(u, v);
  return Dag::fromEdges(dag.numVertices(), edges, dag.weights());
}

/// In-funnel partition of `g` (Algorithm 4.1) with size/weight caps.
std::vector<index_t> inFunnelPartOf(const Dag& g, index_t max_size,
                                    weight_t max_weight) {
  const index_t n = g.numVertices();
  std::vector<index_t> part_of(static_cast<size_t>(n), -1);
  const auto rev_topo = dag::reverseTopologicalOrder(g);
  if (!rev_topo) {
    throw std::invalid_argument("funnelPartition: input graph has a cycle");
  }

  std::vector<index_t> children_count(static_cast<size_t>(n), 0);
  std::vector<index_t> touched;
  MaxIdHeap queue;
  index_t next_part = 0;

  for (const index_t seed : *rev_topo) {
    if (part_of[static_cast<size_t>(seed)] != -1) continue;
    touched.clear();
    queue.clear();
    queue.push(seed);
    index_t size = 0;
    weight_t weight = 0;
    while (!queue.empty()) {
      if (size >= max_size) break;
      const index_t w = queue.pop();
      if (max_weight > 0 && weight + g.weight(w) > max_weight && size > 0) {
        break;
      }
      part_of[static_cast<size_t>(w)] = next_part;
      ++size;
      weight += g.weight(w);
      for (const index_t u : g.parents(w)) {
        if (part_of[static_cast<size_t>(u)] != -1) continue;
        if (children_count[static_cast<size_t>(u)] == 0) touched.push_back(u);
        ++children_count[static_cast<size_t>(u)];
        if (children_count[static_cast<size_t>(u)] == g.outDegree(u)) {
          // All children of u are in the current part: adding u keeps the
          // in-funnel property (its only cut children would be none).
          queue.push(u);
        }
      }
    }
    for (const index_t u : touched) children_count[static_cast<size_t>(u)] = 0;
    ++next_part;
  }
  return part_of;
}

}  // namespace

Partition Partition::fromPartOf(index_t n, std::span<const index_t> part_of) {
  if (static_cast<index_t>(part_of.size()) != n) {
    throw std::invalid_argument("Partition::fromPartOf: size mismatch");
  }
  index_t max_label = -1;
  for (const index_t p : part_of) {
    if (p < 0) throw std::invalid_argument("Partition::fromPartOf: negative label");
    max_label = std::max(max_label, p);
  }
  // Relabel parts by their minimum member (first occurrence when scanning
  // ascending vertex IDs).
  std::vector<index_t> relabel(static_cast<size_t>(max_label) + 1, -1);
  index_t next = 0;
  for (index_t v = 0; v < n; ++v) {
    auto& r = relabel[static_cast<size_t>(part_of[static_cast<size_t>(v)])];
    if (r == -1) r = next++;
  }

  Partition result;
  result.num_parts = next;
  result.part_of.resize(static_cast<size_t>(n));
  for (index_t v = 0; v < n; ++v) {
    result.part_of[static_cast<size_t>(v)] =
        relabel[static_cast<size_t>(part_of[static_cast<size_t>(v)])];
  }
  result.part_ptr.assign(static_cast<size_t>(next) + 1, 0);
  for (index_t v = 0; v < n; ++v) {
    ++result.part_ptr[static_cast<size_t>(result.part_of[static_cast<size_t>(v)]) + 1];
  }
  std::partial_sum(result.part_ptr.begin(), result.part_ptr.end(),
                   result.part_ptr.begin());
  result.part_members.resize(static_cast<size_t>(n));
  std::vector<offset_t> cursor(result.part_ptr.begin(),
                               result.part_ptr.end() - 1);
  for (index_t v = 0; v < n; ++v) {
    const auto p = static_cast<size_t>(result.part_of[static_cast<size_t>(v)]);
    result.part_members[static_cast<size_t>(cursor[p]++)] = v;
  }
  return result;
}

Partition Partition::singletons(index_t n) {
  std::vector<index_t> part_of(static_cast<size_t>(n));
  std::iota(part_of.begin(), part_of.end(), index_t{0});
  return fromPartOf(n, part_of);
}

Partition funnelPartition(const Dag& dag, const FunnelOptions& opts) {
  if (opts.max_part_size <= 0) {
    throw std::invalid_argument("funnelPartition: max_part_size must be positive");
  }
  const Dag* work = &dag;
  Dag reduced;
  if (opts.pre_transitive_reduction) {
    reduced = dag::approximateTransitiveReduction(dag).dag;
    work = &reduced;
  }
  std::vector<index_t> part_of;
  if (opts.direction == FunnelOptions::Direction::kIn) {
    part_of = inFunnelPartOf(*work, opts.max_part_size, opts.max_part_weight);
  } else {
    // Out-funnels are in-funnels of the reversed graph.
    const Dag rev = reversedDag(*work);
    part_of = inFunnelPartOf(rev, opts.max_part_size, opts.max_part_weight);
  }
  return Partition::fromPartOf(dag.numVertices(), part_of);
}

Dag coarsen(const Dag& dag, const Partition& partition) {
  if (static_cast<index_t>(partition.part_of.size()) != dag.numVertices()) {
    throw std::invalid_argument("coarsen: partition size mismatch");
  }
  std::vector<weight_t> weights(static_cast<size_t>(partition.num_parts), 0);
  for (index_t v = 0; v < dag.numVertices(); ++v) {
    weights[static_cast<size_t>(partition.part_of[static_cast<size_t>(v)])] +=
        dag.weight(v);
  }
  std::vector<dag::Edge> coarse_edges;
  for (index_t u = 0; u < dag.numVertices(); ++u) {
    const index_t pu = partition.part_of[static_cast<size_t>(u)];
    for (const index_t v : dag.children(u)) {
      const index_t pv = partition.part_of[static_cast<size_t>(v)];
      if (pu != pv) coarse_edges.emplace_back(pu, pv);
    }
  }
  return Dag::fromEdges(partition.num_parts, coarse_edges, weights);
}

Schedule pullBackSchedule(const Dag& fine_dag, const Partition& partition,
                          const Schedule& coarse_schedule) {
  const index_t n = fine_dag.numVertices();
  if (coarse_schedule.numVertices() != partition.num_parts) {
    throw std::invalid_argument("pullBackSchedule: schedule/partition mismatch");
  }
  const dag::Wavefronts wf = dag::computeWavefronts(fine_dag);

  std::vector<int> core(static_cast<size_t>(n));
  std::vector<index_t> superstep(static_cast<size_t>(n));
  for (index_t v = 0; v < n; ++v) {
    const index_t part = partition.part_of[static_cast<size_t>(v)];
    core[static_cast<size_t>(v)] = coarse_schedule.coreOf(part);
    superstep[static_cast<size_t>(v)] = coarse_schedule.superstepOf(part);
  }

  // Expand the coarse execution order part by part; inside a part, order by
  // (level, ID) which respects every intra-part edge.
  std::vector<index_t> order;
  order.reserve(static_cast<size_t>(n));
  const size_t groups = static_cast<size_t>(coarse_schedule.numSupersteps()) *
                        static_cast<size_t>(coarse_schedule.numCores());
  std::vector<offset_t> group_ptr(groups + 1, 0);
  std::vector<index_t> buf;
  for (index_t s = 0; s < coarse_schedule.numSupersteps(); ++s) {
    for (int p = 0; p < coarse_schedule.numCores(); ++p) {
      for (const index_t part : coarse_schedule.group(s, p)) {
        const auto members = partition.members(part);
        buf.assign(members.begin(), members.end());
        std::sort(buf.begin(), buf.end(), [&wf](index_t a, index_t b) {
          const index_t la = wf.level[static_cast<size_t>(a)];
          const index_t lb = wf.level[static_cast<size_t>(b)];
          return la != lb ? la < lb : a < b;
        });
        order.insert(order.end(), buf.begin(), buf.end());
      }
      const size_t g = static_cast<size_t>(s) *
                           static_cast<size_t>(coarse_schedule.numCores()) +
                       static_cast<size_t>(p);
      group_ptr[g + 1] = static_cast<offset_t>(order.size());
    }
  }
  return Schedule(n, coarse_schedule.numCores(),
                  coarse_schedule.numSupersteps(), std::move(core),
                  std::move(superstep), std::move(order),
                  std::move(group_ptr));
}

bool isCascade(const Dag& dag, std::span<const index_t> members) {
  std::vector<char> in_set(static_cast<size_t>(dag.numVertices()), 0);
  for (const index_t v : members) in_set[static_cast<size_t>(v)] = 1;

  std::vector<index_t> in_cut_targets;   // v in U with an incoming cut edge
  std::vector<index_t> out_cut_sources;  // u in U with an outgoing cut edge
  for (const index_t v : members) {
    for (const index_t w : dag.parents(v)) {
      if (!in_set[static_cast<size_t>(w)]) {
        in_cut_targets.push_back(v);
        break;
      }
    }
    for (const index_t w : dag.children(v)) {
      if (!in_set[static_cast<size_t>(w)]) {
        out_cut_sources.push_back(v);
        break;
      }
    }
  }
  for (const index_t v : in_cut_targets) {
    for (const index_t u : out_cut_sources) {
      if (!dag::isReachable(dag, v, u)) return false;
    }
  }
  return true;
}

Schedule funnelGrowLocalSchedule(const Dag& dag,
                                 const GrowLocalOptions& gl_opts,
                                 const FunnelOptions& funnel_opts) {
  const Partition partition = funnelPartition(dag, funnel_opts);
  const Dag coarse = coarsen(dag, partition);
  const Schedule coarse_schedule = growLocalSchedule(coarse, gl_opts);
  return pullBackSchedule(dag, partition, coarse_schedule);
}

}  // namespace sts::core
