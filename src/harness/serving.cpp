#include "harness/serving.hpp"

#include <chrono>
#include <memory>

#include "exec/affinity.hpp"
#include "harness/stats.hpp"

namespace sts::harness {

double waitFraction(const std::vector<engine::TraceSummaryRow>& rows) {
  double compute = 0.0;
  double wait = 0.0;
  for (const auto& row : rows) {
    compute += row.compute_seconds;
    wait += row.wait_seconds;
  }
  const double total = compute + wait;
  return total > 0.0 ? wait / total : 0.0;
}

double measureStagedPasses(engine::SolverEngine& engine,
                           engine::SolverId id,
                           const std::vector<std::vector<double>>& rhs,
                           int warmup, int reps) {
  using Clock = std::chrono::high_resolution_clock;
  std::vector<double> pass_seconds;
  const int passes = warmup + reps;
  for (int pass = 0; pass < passes; ++pass) {
    engine.pause();
    std::vector<std::future<std::vector<double>>> futures;
    futures.reserve(rhs.size());
    for (const auto& b : rhs) futures.push_back(engine.submit(id, b));
    const auto t0 = Clock::now();
    engine.resume();
    for (auto& f : futures) f.get();
    const double seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (pass >= warmup) pass_seconds.push_back(seconds);
  }
  return quantile(pass_seconds, 0.5);
}

ServingMeasurement measureServing(const std::string& matrix_name,
                                  const CsrMatrix& lower, SchedulerKind kind,
                                  const MeasureOptions& opts,
                                  int num_requests, sts::index_t max_batch) {
  ServingMeasurement m;
  m.matrix = matrix_name;
  m.scheduler = exec::schedulerKindName(kind);
  m.requests = num_requests;
  m.max_batch = max_batch;

  exec::SolverOptions solver_opts;
  solver_opts.scheduler = kind;
  solver_opts.num_threads = opts.num_threads;
  solver_opts.reorder = opts.reorder &&
                        (kind == SchedulerKind::kGrowLocal ||
                         kind == SchedulerKind::kFunnelGrowLocal);
  solver_opts.num_schedule_blocks = opts.num_schedule_blocks;
  solver_opts.validate = false;
  auto solver = std::make_shared<const exec::TriangularSolver>(
      exec::TriangularSolver::analyze(lower, solver_opts));
  const auto n = static_cast<size_t>(lower.rows());

  // Distinct right-hand sides per request, deterministic across passes.
  std::vector<std::vector<double>> rhs(static_cast<size_t>(num_requests));
  for (size_t j = 0; j < rhs.size(); ++j) {
    auto& b = rhs[j];
    b.resize(n);
    for (size_t i = 0; i < n; ++i) {
      b[i] = 1.0 + 0.25 * static_cast<double>((i + 7 * j) % 13);
    }
  }

  // Baseline: the pre-engine serving loop — one request at a time through
  // one context, paying the full barrier bill per right-hand side. Both
  // sides pin the full analyzed width (not the clamped default team) so
  // the measurement isolates batch amortization from elasticity, which
  // bench_elastic_serving measures separately.
  const int width = solver->numThreads();
  {
    auto ctx = solver->createContext();
    std::vector<double> x(n, 0.0);
    m.sequential_seconds = medianSeconds(
        [&] {
          for (const auto& b : rhs) solver->solve(b, x, *ctx, width);
        },
        opts.warmup, opts.reps);
  }

  // Engine: stage the same backlog while paused (deterministic coalescing),
  // then time resume-to-drain. One worker isolates the batching effect.
  engine::EngineOptions engine_opts;
  engine_opts.num_workers = 1;
  engine_opts.max_batch = max_batch;
  engine_opts.coalesce = true;
  engine_opts.start_paused = true;
  engine_opts.team_size = width;
  {
    engine::SolverEngine engine(engine_opts);
    const auto id = engine.registerSolver(solver);
    m.batched_seconds =
        measureStagedPasses(engine, id, rhs, opts.warmup, opts.reps);
    m.mean_batch_rhs = engine.stats(id).mean_batch_rhs;
    m.batched_wait_fraction = waitFraction(engine.traceSummary(id));
  }

  // Pinned engine: identical staged passes, but every batch's team is
  // pinned to its leased core set (the core-set-affinity configuration).
  // The budget caps teams at the detected core count, so an analyzed width
  // beyond the machine runs narrower pinned teams — by design.
  if (exec::affinitySupported() && !exec::systemCoreSet().empty()) {
    engine::EngineOptions pinned_opts = engine_opts;
    pinned_opts.pin_threads = true;
    engine::SolverEngine engine(pinned_opts);
    const auto id = engine.registerSolver(solver);
    m.pinned_seconds =
        measureStagedPasses(engine, id, rhs, opts.warmup, opts.reps);
    const auto stats = engine.stats(id);
    m.pinned_batches = stats.pinned_batches;
    m.migrated_threads = stats.migrated_threads;
    m.pinned_wait_fraction = waitFraction(engine.traceSummary(id));
  }

  m.speedup = m.sequential_seconds / m.batched_seconds;
  m.sequential_rhs_per_second =
      static_cast<double>(num_requests) / m.sequential_seconds;
  m.batched_rhs_per_second =
      static_cast<double>(num_requests) / m.batched_seconds;
  if (m.pinned_seconds > 0.0) {
    m.pinned_speedup = m.batched_seconds / m.pinned_seconds;
    m.pinned_rhs_per_second =
        static_cast<double>(num_requests) / m.pinned_seconds;
  }
  return m;
}

double geomeanServingSpeedup(const std::vector<ServingMeasurement>& ms) {
  // Explicit 0.0 for "no measurements" keeps bench summaries printable
  // (geometricMean itself throws on empty input).
  if (ms.empty()) return 0.0;
  std::vector<double> speedups;
  speedups.reserve(ms.size());
  for (const auto& m : ms) speedups.push_back(m.speedup);
  return geometricMean(speedups);
}

}  // namespace sts::harness
