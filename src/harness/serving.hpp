#pragma once

#include <string>
#include <vector>

#include "engine/solver_engine.hpp"
#include "exec/solver.hpp"
#include "harness/runner.hpp"

/// \file serving.hpp
/// Measurement harness for the request-serving subsystem: how much
/// aggregate throughput does batched multi-RHS submission through
/// engine::SolverEngine buy over the classic sequential single-RHS solve
/// loop on the same analyzed solver? This is the serving-side counterpart
/// of the Table 7.7 block-parallel experiment: the win is barrier/flag
/// amortization across the coalesced right-hand sides. A third pass runs
/// the same staged backlog with EngineOptions::pin_threads — the
/// core-set-affinity configuration — so the pinned-vs-unpinned placement
/// effect is measured beside the batching effect.

namespace sts::harness {

struct ServingMeasurement {
  std::string matrix;
  std::string scheduler;
  int requests = 0;            ///< right-hand sides served per pass
  sts::index_t max_batch = 0;  ///< engine coalescing budget
  double sequential_seconds = 0.0;  ///< median: solve() loop, one context
  double batched_seconds = 0.0;     ///< median: staged engine pass
  double speedup = 0.0;             ///< sequential / batched
  double mean_batch_rhs = 0.0;      ///< realized engine batch size
  double sequential_rhs_per_second = 0.0;
  double batched_rhs_per_second = 0.0;
  /// Median staged pass with pin_threads (teams pinned to leased cores;
  /// the budget caps teams at the core-set size, so oversubscribed hosts
  /// run narrower pinned teams by design). 0 when affinity is unsupported.
  double pinned_seconds = 0.0;
  double pinned_rhs_per_second = 0.0;
  double pinned_speedup = 0.0;  ///< batched (unpinned) / pinned seconds
  std::uint64_t pinned_batches = 0;    ///< engine stat: batches pinned
  std::uint64_t migrated_threads = 0;  ///< engine stat: migrations corrected
  /// Barrier/flag wait share of the batched pass's executor-thread time,
  /// from SolverEngine::traceSummary() (batch-weighted mean over the
  /// per-(team,storage) attribution rows). 0 when EngineOptions::trace is
  /// off or the build compiled tracing out — attribution is the always-on
  /// accumulator path, so in practice 0 only under -DSTS_TRACING=OFF.
  double batched_wait_fraction = 0.0;
  double pinned_wait_fraction = 0.0;  ///< same, for the pinned pass
};

/// Batch-weighted mean wait fraction over attribution rows (0 if empty or
/// no time was attributed). Shared by measureServing and the serving
/// benches so "wait share" means the same thing everywhere it is printed.
double waitFraction(const std::vector<engine::TraceSummaryRow>& rows);

/// Median resume()-to-completion seconds of a staged backlog: each pass
/// pauses the engine, submits every `rhs` entry (deterministic
/// coalescing), then times resume() to the last future. The first
/// `warmup` of `warmup + reps` passes are discarded. Shared by
/// measureServing and the serving benches so every configuration —
/// sequential, batched, pinned, elastic — is timed identically.
double measureStagedPasses(engine::SolverEngine& engine, engine::SolverId id,
                           const std::vector<std::vector<double>>& rhs,
                           int warmup, int reps);

/// Measures one (matrix, scheduler) serving configuration. All sides
/// solve the same `num_requests` right-hand sides per pass:
///   sequential — a solve() loop on one context (the pre-engine baseline);
///   batched    — a single-worker SolverEngine, requests staged while
///                dispatch is paused so coalescing is deterministic, timed
///                from resume() to drain();
///   pinned     — the batched engine again with pin_threads (skipped —
///                zeros — when the platform lacks affinity support).
/// One worker isolates the batching effect from multi-worker overlap.
/// Passes repeat warmup + reps times (median, runner.hpp methodology).
ServingMeasurement measureServing(const std::string& matrix_name,
                                  const CsrMatrix& lower, SchedulerKind kind,
                                  const MeasureOptions& opts,
                                  int num_requests, sts::index_t max_batch);

/// Geometric mean of the serving speedup over measurements.
double geomeanServingSpeedup(const std::vector<ServingMeasurement>& ms);

}  // namespace sts::harness
