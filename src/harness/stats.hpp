#pragma once

#include <span>
#include <string>
#include <vector>

/// \file stats.hpp
/// Statistics used throughout the evaluation: geometric means (the paper's
/// aggregate of choice), quartiles (Table 7.6, Fig 1.2) and Dolan–Moré
/// performance profiles (Fig 7.1).

namespace sts::harness {

/// exp(mean(log x)); requires all values > 0 and a non-empty input (throws
/// std::invalid_argument otherwise, like quantile — a silent 0.0 for an
/// empty set poisoned downstream speedup aggregates).
double geometricMean(std::span<const double> values);

/// Linear-interpolation quantile, q in [0, 1]. Input need not be sorted.
double quantile(std::span<const double> values, double q);

struct Quartiles {
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
};
Quartiles quartiles(std::span<const double> values);

/// One algorithm's performance-profile curve (Dolan–Moré 2002).
struct ProfileCurve {
  std::string name;
  std::vector<double> fraction;  ///< aligned with the shared tau grid
};

/// Builds performance profiles from a time matrix: times[a][m] = time of
/// algorithm a on matrix m (must be > 0). Returns one curve per algorithm
/// over the tau grid; fraction[t] = share of matrices where
/// times[a][m] <= tau * min_a' times[a'][m].
std::vector<ProfileCurve> performanceProfiles(
    std::span<const std::string> names,
    const std::vector<std::vector<double>>& times,
    std::span<const double> tau_grid);

/// The amortization threshold of Eq. 7.1: how many solves pay for the
/// scheduling time. +inf when the parallel solve is not faster.
double amortizationThreshold(double schedule_seconds, double serial_seconds,
                             double parallel_seconds);

}  // namespace sts::harness
