#include "harness/runner.hpp"

#include <algorithm>
#include <chrono>

#include "dag/dag.hpp"
#include "dag/wavefronts.hpp"
#include "exec/serial.hpp"
#include "harness/stats.hpp"

namespace sts::harness {

namespace {
using Clock = std::chrono::high_resolution_clock;
}

double medianSeconds(const std::function<void()>& fn, int warmup, int reps) {
  for (int i = 0; i < warmup; ++i) fn();
  std::vector<double> times;
  times.reserve(static_cast<size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const auto t0 = Clock::now();
    fn();
    times.push_back(std::chrono::duration<double>(Clock::now() - t0).count());
  }
  return quantile(times, 0.5);
}

double measureSerial(const CsrMatrix& lower, const MeasureOptions& opts) {
  const std::vector<double> b(static_cast<size_t>(lower.rows()), 1.0);
  std::vector<double> x(b.size(), 0.0);
  return medianSeconds([&] { exec::solveLowerSerial(lower, b, x); },
                       opts.warmup, opts.reps);
}

SolveMeasurement measureSolver(const std::string& matrix_name,
                               const CsrMatrix& lower, SchedulerKind kind,
                               const MeasureOptions& opts,
                               double serial_seconds) {
  SolveMeasurement m;
  m.matrix = matrix_name;
  m.scheduler = exec::schedulerKindName(kind);
  m.serial_seconds =
      serial_seconds > 0.0 ? serial_seconds : measureSerial(lower, opts);

  exec::SolverOptions solver_opts;
  solver_opts.scheduler = kind;
  solver_opts.num_threads = opts.num_threads;
  // The §5 reordering is part of the paper's contribution and is NOT
  // applied to the baselines there ("it has not been applied in modern
  // SpTRSV baselines", §1.1.3); the harness mirrors that, even though the
  // library supports reordering any scheduler's output.
  solver_opts.reorder = opts.reorder &&
                        (kind == SchedulerKind::kGrowLocal ||
                         kind == SchedulerKind::kFunnelGrowLocal);
  solver_opts.num_schedule_blocks = opts.num_schedule_blocks;
  solver_opts.validate = false;  // timed path: schedulers are property-tested
  auto solver = exec::TriangularSolver::analyze(lower, solver_opts);

  // The paper's methodology keeps the problem in permuted space (§5): b is
  // permuted once outside the timed region (all-ones is permutation
  // invariant anyway) and the timed call skips the per-solve vector
  // remapping of the transparent solve().
  const std::vector<double> b(static_cast<size_t>(lower.rows()), 1.0);
  std::vector<double> x(b.size(), 0.0);
  m.parallel_seconds = medianSeconds([&] { solver.solvePermuted(b, x); },
                                     opts.warmup, opts.reps);
  m.speedup = m.serial_seconds / m.parallel_seconds;
  m.schedule_seconds = solver.analysisSeconds();
  m.amortization = amortizationThreshold(m.schedule_seconds, m.serial_seconds,
                                         m.parallel_seconds);
  const double flops =
      2.0 * static_cast<double>(lower.nnz()) - static_cast<double>(lower.rows());
  m.gflops = flops / m.parallel_seconds / 1e9;
  m.supersteps = solver.schedule().numSupersteps();
  m.wavefront_reduction = solver.stats().wavefront_reduction;
  m.wavefronts = static_cast<sts::index_t>(
      m.wavefront_reduction * static_cast<double>(m.supersteps) + 0.5);
  return m;
}

double geomeanSpeedup(const std::vector<SolveMeasurement>& ms) {
  // Explicit 0.0 for "no measurements" keeps bench summary rows printable
  // (geometricMean itself throws on empty input).
  if (ms.empty()) return 0.0;
  std::vector<double> values;
  values.reserve(ms.size());
  for (const auto& m : ms) values.push_back(m.speedup);
  return geometricMean(values);
}

double geomeanWavefrontReduction(const std::vector<SolveMeasurement>& ms) {
  if (ms.empty()) return 0.0;
  std::vector<double> values;
  values.reserve(ms.size());
  for (const auto& m : ms) values.push_back(m.wavefront_reduction);
  return geometricMean(values);
}

}  // namespace sts::harness
