#pragma once

#include <string>
#include <vector>

#include "sparse/csr.hpp"

/// \file datasets.hpp
/// The five data-set families of §6.2, sized for a laptop-class host (see
/// DESIGN.md substitutions for how the SuiteSparse-based families are
/// replaced by synthetic equivalents):
///
///   suiteSparseStandin  — grid Laplacians + banded SPD (§6.2.1 stand-in)
///   metisStandin        — same matrices, nested-dissection-permuted (§6.2.2)
///   icholStandin        — RCM-ordered IC(0) factors of the same (§6.2.3)
///   erdosRenyiSet       — the paper's own generator (§6.2.4)
///   narrowBandSet       — the paper's own generator (§6.2.5)
///
/// All entries are lower triangular SpTRSV instances. Sizes scale with
/// STS_BENCH_SCALE (default 1.0; e.g. 0.25 for smoke runs).

namespace sts::harness {

using sparse::CsrMatrix;
using sts::index_t;

struct DatasetEntry {
  std::string name;
  CsrMatrix lower;
};

using Dataset = std::vector<DatasetEntry>;

/// Scale factor from the STS_BENCH_SCALE environment variable (clamped to
/// [0.05, 10]); linear dimensions scale by sqrt/cbrt so that vertex counts
/// scale roughly linearly.
double benchScale();

/// Repetitions for timed solves from STS_BENCH_REPS (default 50).
int benchReps();

Dataset suiteSparseStandin(double scale = benchScale());
Dataset metisStandin(double scale = benchScale());
Dataset icholStandin(double scale = benchScale());
Dataset erdosRenyiSet(double scale = benchScale());
Dataset narrowBandSet(double scale = benchScale());

/// All five families in §6.2 order with their display names.
std::vector<std::pair<std::string, Dataset>> allDatasets(
    double scale = benchScale());

/// n / #wavefronts of the DAG of `lower` (§6.2's parallelizability metric).
double averageWavefrontSize(const CsrMatrix& lower);

}  // namespace sts::harness
