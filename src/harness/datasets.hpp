#pragma once

#include <string>
#include <vector>

#include "sparse/csr.hpp"

/// \file datasets.hpp
/// The five data-set families of §6.2, sized for a laptop-class host (see
/// DESIGN.md substitutions for how the SuiteSparse-based families are
/// replaced by synthetic equivalents):
///
///   suiteSparseStandin  — grid Laplacians + banded SPD (§6.2.1 stand-in)
///   metisStandin        — same matrices, nested-dissection-permuted (§6.2.2)
///   icholStandin        — RCM-ordered IC(0) factors of the same (§6.2.3)
///   erdosRenyiSet       — the paper's own generator (§6.2.4)
///   narrowBandSet       — the paper's own generator (§6.2.5)
///
/// plus, when the STS_MM_DIR environment variable points at a directory of
/// Matrix Market files, a "suitesparse" family of real collection matrices
/// (suiteSparseReal) — the §6.2.1 inputs proper instead of stand-ins.
///
/// All entries are lower triangular SpTRSV instances. Synthetic sizes
/// scale with STS_BENCH_SCALE (default 1.0; e.g. 0.25 for smoke runs).

namespace sts::harness {

using sparse::CsrMatrix;
using sts::index_t;

struct DatasetEntry {
  std::string name;
  CsrMatrix lower;
};

using Dataset = std::vector<DatasetEntry>;

/// Scale factor from the STS_BENCH_SCALE environment variable (clamped to
/// [0.05, 10]); linear dimensions scale by sqrt/cbrt so that vertex counts
/// scale roughly linearly.
double benchScale();

/// Repetitions for timed solves from STS_BENCH_REPS (default 50).
int benchReps();

Dataset suiteSparseStandin(double scale = benchScale());
Dataset metisStandin(double scale = benchScale());
Dataset icholStandin(double scale = benchScale());
Dataset erdosRenyiSet(double scale = benchScale());
Dataset narrowBandSet(double scale = benchScale());

/// Real Matrix Market matrices from the directory named by STS_MM_DIR
/// (every *.mtx file, sorted by name). Each matrix is lower-triangularized
/// on load and its diagonal normalized to be fully stored and nonzero, so
/// every entry is a solvable SpTRSV instance; non-square or unparseable
/// files are skipped with a note on stderr. Returns an empty dataset —
/// silently — when the variable is unset or names no usable file.
Dataset suiteSparseReal();

/// All §6.2 families in order with their display names, plus the real
/// "suitesparse" family when STS_MM_DIR yields one (see suiteSparseReal).
std::vector<std::pair<std::string, Dataset>> allDatasets(
    double scale = benchScale());

/// n / #wavefronts of the DAG of `lower` (§6.2's parallelizability metric).
double averageWavefrontSize(const CsrMatrix& lower);

}  // namespace sts::harness
