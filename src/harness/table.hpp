#pragma once

#include <iosfwd>
#include <string>
#include <vector>

/// \file table.hpp
/// Column-aligned ASCII tables: every bench binary prints its results in
/// the same row/column layout as the paper's tables.

namespace sts::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void addRow(std::vector<std::string> cells);

  /// Renders with column alignment, a header underline, and right-aligned
  /// numeric-looking cells.
  void print(std::ostream& out) const;

  static std::string fmt(double value, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sts::harness
