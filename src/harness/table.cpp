#include "harness/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sts::harness {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::addRow(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table::addRow: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

namespace {

bool looksNumeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end != s.c_str() && (*end == '\0' || *end == 'x' || *end == '%');
}

}  // namespace

void Table::print(std::ostream& out) const {
  std::vector<size_t> width(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto printRow = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << "  ";
      if (looksNumeric(row[c]) && c > 0) {
        out << std::setw(static_cast<int>(width[c])) << std::right << row[c];
      } else {
        out << std::setw(static_cast<int>(width[c])) << std::left << row[c];
      }
    }
    out << "\n";
  };
  printRow(header_);
  size_t total = 0;
  for (const size_t w : width) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) printRow(row);
}

std::string Table::fmt(double value, int precision) {
  if (std::isinf(value)) return "inf";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace sts::harness
