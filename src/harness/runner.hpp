#pragma once

#include <string>
#include <vector>

#include "exec/solver.hpp"
#include "harness/datasets.hpp"

/// \file runner.hpp
/// The measurement core shared by all bench binaries. Reproduces the
/// paper's methodology (§6.1): a "hot" system (warm-up runs precede timed
/// ones), one hundred timed single-SpTRSV executions with the right-hand
/// side reset between runs, median per-solve time, geometric-mean
/// aggregation across matrices.

namespace sts::harness {

using exec::SchedulerKind;

struct MeasureOptions {
  int num_threads = 2;
  int warmup = 2;
  int reps = benchReps();
  bool reorder = true;
  int num_schedule_blocks = 1;
};

struct SolveMeasurement {
  std::string matrix;
  std::string scheduler;
  double serial_seconds = 0.0;    ///< median serial solve time
  double parallel_seconds = 0.0;  ///< median scheduled solve time
  double speedup = 0.0;           ///< serial / parallel
  double schedule_seconds = 0.0;  ///< analysis time (scheduling + reorder)
  double amortization = 0.0;      ///< Eq. 7.1
  double gflops = 0.0;            ///< (2 nnz - n) / parallel time
  sts::index_t supersteps = 0;
  sts::index_t wavefronts = 0;
  double wavefront_reduction = 0.0;  ///< wavefronts / supersteps
};

/// Median time of `reps` single executions of `fn` after `warmup` untimed
/// runs (chrono high-resolution clock, §6.1).
double medianSeconds(const std::function<void()>& fn, int warmup, int reps);

/// Times the serial reference kernel on `lower` (b = ones, §6.1).
double measureSerial(const CsrMatrix& lower, const MeasureOptions& opts);

/// Full measurement of one (matrix, scheduler) pair. `serial_seconds` can
/// be passed in to share the baseline across schedulers; <= 0 re-measures.
SolveMeasurement measureSolver(const std::string& matrix_name,
                               const CsrMatrix& lower, SchedulerKind kind,
                               const MeasureOptions& opts,
                               double serial_seconds = -1.0);

/// Geometric mean of a field over measurements.
double geomeanSpeedup(const std::vector<SolveMeasurement>& ms);
double geomeanWavefrontReduction(const std::vector<SolveMeasurement>& ms);

}  // namespace sts::harness
