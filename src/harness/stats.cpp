#include "harness/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace sts::harness {

double geometricMean(std::span<const double> values) {
  if (values.empty()) {
    throw std::invalid_argument("geometricMean: empty input");
  }
  double log_sum = 0.0;
  for (const double v : values) {
    if (v <= 0.0) {
      throw std::invalid_argument("geometricMean: values must be positive");
    }
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double quantile(std::span<const double> values, double q) {
  if (values.empty()) {
    throw std::invalid_argument("quantile: empty input");
  }
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("quantile: q out of [0, 1]");
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<size_t>(std::floor(pos));
  const auto hi = static_cast<size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Quartiles quartiles(std::span<const double> values) {
  return Quartiles{quantile(values, 0.25), quantile(values, 0.5),
                   quantile(values, 0.75)};
}

std::vector<ProfileCurve> performanceProfiles(
    std::span<const std::string> names,
    const std::vector<std::vector<double>>& times,
    std::span<const double> tau_grid) {
  if (names.size() != times.size()) {
    throw std::invalid_argument("performanceProfiles: names/times mismatch");
  }
  if (times.empty() || times.front().empty()) return {};
  const size_t num_matrices = times.front().size();
  for (const auto& row : times) {
    if (row.size() != num_matrices) {
      throw std::invalid_argument("performanceProfiles: ragged time matrix");
    }
  }
  // best[m] = fastest algorithm on matrix m.
  std::vector<double> best(num_matrices,
                           std::numeric_limits<double>::infinity());
  for (const auto& row : times) {
    for (size_t m = 0; m < num_matrices; ++m) {
      best[m] = std::min(best[m], row[m]);
    }
  }
  std::vector<ProfileCurve> curves;
  curves.reserve(names.size());
  for (size_t a = 0; a < names.size(); ++a) {
    ProfileCurve curve;
    curve.name = names[a];
    curve.fraction.reserve(tau_grid.size());
    for (const double tau : tau_grid) {
      size_t within = 0;
      for (size_t m = 0; m < num_matrices; ++m) {
        if (times[a][m] <= tau * best[m]) ++within;
      }
      curve.fraction.push_back(static_cast<double>(within) /
                               static_cast<double>(num_matrices));
    }
    curves.push_back(std::move(curve));
  }
  return curves;
}

double amortizationThreshold(double schedule_seconds, double serial_seconds,
                             double parallel_seconds) {
  const double gain = serial_seconds - parallel_seconds;
  if (gain <= 0.0) return std::numeric_limits<double>::infinity();
  return schedule_seconds / gain;
}

}  // namespace sts::harness
