#include "harness/datasets.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>

#include "dag/dag.hpp"
#include "dag/wavefronts.hpp"
#include "datagen/grids.hpp"
#include "datagen/random_matrices.hpp"
#include "sparse/ic0.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/ordering.hpp"

namespace sts::harness {

namespace {

double envDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return (end != value && parsed > 0.0) ? parsed : fallback;
}

index_t scaled(index_t base, double scale) {
  return std::max<index_t>(4, static_cast<index_t>(
                                  std::lround(base * scale)));
}

/// The full symmetric SPD matrices behind the SuiteSparse stand-in; shared
/// by the natural / METIS / iChol variants so the three data sets differ
/// exactly as in the paper (only by preprocessing).
std::vector<std::pair<std::string, CsrMatrix>> spdFamily(double scale) {
  using namespace datagen;
  const double lin2 = std::sqrt(scale);  // 2D side scaling
  const double lin3 = std::cbrt(scale);  // 3D side scaling
  // Sizes chosen so that solve times clearly dominate per-solve parallel
  // runtime overhead (the paper's matrices are 80k-4M rows; barrier and
  // OpenMP-region costs are fixed, so matrices must not be tiny).
  std::vector<std::pair<std::string, CsrMatrix>> family;
  family.emplace_back("grid2d_5pt",
                      grid2dLaplacian5(scaled(280, lin2), scaled(280, lin2)));
  family.emplace_back("grid2d_9pt",
                      grid2dLaplacian9(scaled(200, lin2), scaled(200, lin2)));
  family.emplace_back("grid3d_7pt",
                      grid3dLaplacian7(scaled(42, lin3), scaled(42, lin3),
                                       scaled(42, lin3)));
  family.emplace_back("grid3d_27pt",
                      grid3dLaplacian27(scaled(30, lin3), scaled(30, lin3),
                                        scaled(30, lin3)));
  family.emplace_back("aniso_2d",
                      grid2dAnisotropic(scaled(320, lin2), scaled(160, lin2),
                                        0.1));
  // Sparse wide band: average wavefront comfortably above the paper's
  // >= 2x cores admission filter (§6.2.1), unlike a dense narrow band.
  family.emplace_back("banded_spd",
                      bandedSpd(scaled(60000, scale), 48, 0.05, 1001));
  return family;
}

/// Lower-triangularizes a general square matrix into a solvable SpTRSV
/// instance: keep the lower triangle and make sure every diagonal entry is
/// stored and nonzero (absent or explicitly-zero diagonals get 1.0, the
/// usual unit-diagonal convention for pattern-ish inputs).
CsrMatrix toSolvableLower(const CsrMatrix& m) {
  std::vector<sts::Triplet> triplets;
  triplets.reserve(static_cast<size_t>(m.nnz()));
  for (index_t i = 0; i < m.rows(); ++i) {
    const auto cols = m.rowCols(i);
    const auto vals = m.rowValues(i);
    bool has_diag = false;
    for (size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] > i) break;  // columns sorted ascending
      double value = vals[k];
      if (cols[k] == i) {
        has_diag = true;
        if (value == 0.0) value = 1.0;
      }
      triplets.push_back({i, cols[k], value});
    }
    if (!has_diag) triplets.push_back({i, i, 1.0});
  }
  return CsrMatrix::fromTriplets(m.rows(), m.rows(), triplets);
}

}  // namespace

Dataset suiteSparseReal() {
  const char* dir = std::getenv("STS_MM_DIR");
  if (dir == nullptr || *dir == '\0') return {};
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  std::error_code ec;
  // Non-throwing iteration end to end: one unreadable entry (racing
  // delete, permission hole) must skip, not abort the whole harness.
  fs::directory_iterator it(dir, ec);
  if (ec) {
    std::fprintf(stderr, "STS_MM_DIR: cannot read %s: %s\n", dir,
                 ec.message().c_str());
    return {};
  }
  for (const fs::directory_iterator end; it != end; it.increment(ec)) {
    if (ec) {
      std::fprintf(stderr, "STS_MM_DIR: stopped reading %s: %s\n", dir,
                   ec.message().c_str());
      break;
    }
    std::error_code type_ec;
    if (it->is_regular_file(type_ec) && !type_ec &&
        it->path().extension() == ".mtx") {
      files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());
  Dataset set;
  for (const auto& path : files) {
    try {
      const CsrMatrix m =
          sparse::readCsrFromMatrixMarketFile(path.string());
      if (m.rows() != m.cols()) {
        std::fprintf(stderr, "STS_MM_DIR: skipping non-square %s\n",
                     path.filename().string().c_str());
        continue;
      }
      set.push_back({path.stem().string(), toSolvableLower(m)});
    } catch (const std::exception& e) {
      std::fprintf(stderr, "STS_MM_DIR: skipping %s: %s\n",
                   path.filename().string().c_str(), e.what());
    }
  }
  return set;
}

double benchScale() {
  return std::clamp(envDouble("STS_BENCH_SCALE", 1.0), 0.05, 10.0);
}

int benchReps() {
  return static_cast<int>(
      std::clamp(envDouble("STS_BENCH_REPS", 30.0), 3.0, 1000.0));
}

Dataset suiteSparseStandin(double scale) {
  Dataset set;
  for (auto& [name, spd] : spdFamily(scale)) {
    set.push_back({name, spd.lowerTriangle()});
  }
  return set;
}

Dataset metisStandin(double scale) {
  Dataset set;
  for (auto& [name, spd] : spdFamily(scale)) {
    const auto nd = sparse::nestedDissection(spd);
    set.push_back({name + "_nd", spd.symmetricPermuted(nd).lowerTriangle()});
  }
  return set;
}

Dataset icholStandin(double scale) {
  Dataset set;
  for (auto& [name, spd] : spdFamily(scale)) {
    // RCM stands in for Eigen's AMDOrdering fill-reducing preprocessing.
    const auto rcm = sparse::reverseCuthillMcKee(spd);
    const auto permuted = spd.symmetricPermuted(rcm);
    set.push_back({name + "_ic0", sparse::incompleteCholesky(permuted).lower});
  }
  return set;
}

Dataset erdosRenyiSet(double scale) {
  using namespace datagen;
  // The paper uses N = 100k with p in {1e-4, 5e-4, 2e-3}; the expected
  // off-diagonal row degree p*N/2 in {5, 25, 100} is preserved here at the
  // scaled N so the DAG shape class is unchanged.
  const index_t n = scaled(40000, scale);
  const double nd = static_cast<double>(n);
  Dataset set;
  int tag = 0;
  for (const double degree : {5.0, 25.0, 100.0}) {
    const double p = std::min(1.0, 2.0 * degree / nd);
    for (const std::uint64_t seed : {11u, 12u}) {
      set.push_back(
          {"er_d" + std::to_string(static_cast<int>(degree)) + "_" +
               static_cast<char>('A' + (tag % 2)),
           erdosRenyiLower({.n = n, .p = p, .seed = seed})});
      ++tag;
    }
  }
  return set;
}

Dataset narrowBandSet(double scale) {
  using namespace datagen;
  const index_t n = scaled(40000, scale);
  Dataset set;
  const std::pair<double, double> params[] = {
      {0.14, 10.0}, {0.05, 20.0}, {0.03, 42.0}};  // the paper's (p, B)
  for (const auto& [p, b] : params) {
    int tag = 0;
    for (const std::uint64_t seed : {21u, 22u}) {
      set.push_back({"nb_p" + std::to_string(static_cast<int>(p * 100)) +
                         "_b" + std::to_string(static_cast<int>(b)) + "_" +
                         static_cast<char>('A' + tag),
                     narrowBandLower({.n = n, .p = p, .b = b, .seed = seed})});
      ++tag;
    }
  }
  return set;
}

std::vector<std::pair<std::string, Dataset>> allDatasets(double scale) {
  std::vector<std::pair<std::string, Dataset>> all;
  all.emplace_back("SuiteSparse*", suiteSparseStandin(scale));
  all.emplace_back("METIS*", metisStandin(scale));
  all.emplace_back("iChol*", icholStandin(scale));
  all.emplace_back("Erdos-Renyi", erdosRenyiSet(scale));
  all.emplace_back("Narrow bandw.", narrowBandSet(scale));
  // Real SuiteSparse matrices ride along whenever STS_MM_DIR provides
  // them; unset means the synthetic families above stand alone.
  Dataset real = suiteSparseReal();
  if (!real.empty()) all.emplace_back("suitesparse", std::move(real));
  return all;
}

double averageWavefrontSize(const CsrMatrix& lower) {
  const auto dag = dag::Dag::fromLowerTriangular(lower);
  const auto wf = dag::computeWavefronts(dag);
  return wf.averageWavefrontSize();
}

}  // namespace sts::harness
