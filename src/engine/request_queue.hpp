#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <vector>

#include "base/sync.hpp"
#include "engine/types.hpp"

/// \file request_queue.hpp
/// The engine's submission queue. Lock-light by construction: the single
/// mutex is held only to move request records in or out (no allocation of
/// RHS data, no solving, no promise fulfillment happens under it), so the
/// critical sections are a few pointer moves long. Workers pop *batches*:
/// the head request plus — when coalescing is on — every other queued
/// single-RHS request for the same solver AND the same priority class, up
/// to a column budget. That is where the serving throughput comes from:
/// one schedule traversal then serves the whole batch.
///
/// ## Lifecycle semantics (PR 10, docs/ROBUSTNESS.md)
///
///  * Two priority classes (RequestPriority): latency-class requests are
///    dispatched ahead of throughput-class ones, and coalescing never
///    crosses the class boundary — a latency request is never merged
///    behind a deep throughput batch.
///  * Anti-starvation aging: after kAgingEvery consecutive latency-class
///    pops while throughput work waited, the next pop serves the
///    throughput head regardless — bounded bypass, so bulk work always
///    ages into batches under continuous high-priority arrivals.
///  * Bounded depth: push reports kFull beyond `max_depth` (0 =
///    unbounded); the caller owns the rejection (typed EngineError).
///  * Lazy expiry: requests whose `expires_at` passed are swept out at pop
///    time into the caller's `expired` vector — the queue never resolves
///    promises itself (that would run client continuations under no
///    particular thread contract); the popping worker fails them.

namespace sts::engine {

class RequestQueue {
 public:
  /// Consecutive latency-class pops allowed to bypass waiting
  /// throughput-class work before one throughput head is force-served.
  static constexpr int kAgingEvery = 4;

  enum class PushResult {
    kAccepted,
    kFull,    ///< bounded depth reached; request left untouched
    kClosed,  ///< queue closed; request left untouched
  };

  /// `max_depth` bounds queued (latency + throughput) requests; 0 =
  /// unbounded (the legacy behavior).
  explicit RequestQueue(std::size_t max_depth = 0) : max_depth_(max_depth) {}

  /// Enqueue into the request's priority class and wake one worker. On
  /// kFull/kClosed the request is left untouched so the caller can fail
  /// it with the right typed error.
  PushResult push(SolveRequest&& request);

  /// Blocks until there is something to hand back, then returns one of:
  ///   * a non-empty batch (plus possibly expired requests swept on the
  ///     way) — the head of the highest-priority non-starved class, plus
  ///     coalesced same-solver same-class nrhs==1 requests up to the
  ///     column budget chosen by `max_rhs_for_depth` (called under the
  ///     lock with the pre-pop live depth);
  ///   * an empty batch with non-empty `*expired` — everything queued had
  ///     expired; the caller fails them and pops again;
  ///   * empty batch, empty expired — closed and drained: worker shutdown.
  /// When `backlog` is non-null it receives the live depth left behind —
  /// the popping worker's load signal, captured under the same lock as
  /// the pop itself. `expired` may be null only if no request carries an
  /// expiry (the engine always passes one).
  std::vector<SolveRequest> popBatch(
      const std::function<sts::index_t(std::size_t)>& max_rhs_for_depth,
      bool coalesce, std::size_t* backlog = nullptr,
      std::vector<SolveRequest>* expired = nullptr);

  /// Fixed-budget convenience overload.
  std::vector<SolveRequest> popBatch(sts::index_t max_rhs, bool coalesce,
                                     std::size_t* backlog = nullptr,
                                     std::vector<SolveRequest>* expired =
                                         nullptr);

  /// Stop dispatch: popBatch blocks even when requests are queued.
  void pause();
  /// Resume dispatch and wake all workers.
  void resume();

  /// Closing is one-way; queued requests still drain through popBatch.
  void close();
  bool closed() const;

  /// Remove and return EVERYTHING still queued (both classes, FIFO within
  /// class, latency first). The fail-fast shutdown path: the caller
  /// resolves the futures with EngineError{kShutdown}.
  std::vector<SolveRequest> drainAll();

  std::size_t size() const;

  /// Seconds the oldest queued request (either class) has waited as of
  /// `now`; 0 when empty. A controller input: under a stalled worker the
  /// depth alone can look static while the head age keeps growing.
  double oldestWaitSeconds(std::chrono::steady_clock::time_point now) const;

 private:
  /// Sweep expired requests out of `q` into `*expired` (single compaction
  /// pass, order-preserving). No-op when `expired` is null.
  static void sweepExpired(std::deque<SolveRequest>& q,
                           std::chrono::steady_clock::time_point now,
                           std::vector<SolveRequest>* expired);

  /// The one queue lock (see the file comment: held only to move request
  /// records, never across solving or promise fulfillment). The guarded
  /// members below are compiler-enforced under Clang `-Wthread-safety`.
  mutable base::Mutex mu_;
  std::condition_variable cv_;
  std::deque<SolveRequest> latency_q_ STS_GUARDED_BY(mu_);
  std::deque<SolveRequest> throughput_q_ STS_GUARDED_BY(mu_);
  /// Consecutive latency-class pops that bypassed waiting throughput
  /// work; at kAgingEvery the next pop serves the throughput head.
  int starve_credit_ STS_GUARDED_BY(mu_) = 0;
  std::size_t max_depth_;
  bool paused_ STS_GUARDED_BY(mu_) = false;
  bool closed_ STS_GUARDED_BY(mu_) = false;
};

}  // namespace sts::engine
