#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <vector>

#include "base/sync.hpp"
#include "engine/types.hpp"

/// \file request_queue.hpp
/// The engine's submission queue. Lock-light by construction: the single
/// mutex is held only to move request records in or out (no allocation of
/// RHS data, no solving, no promise fulfillment happens under it), so the
/// critical sections are a few pointer moves long. Workers pop *batches*:
/// the head request plus — when coalescing is on — every other queued
/// single-RHS request for the same solver, up to a column budget. That is
/// where the serving throughput comes from: one schedule traversal then
/// serves the whole batch.

namespace sts::engine {

class RequestQueue {
 public:
  /// Enqueue and wake one worker. Returns false iff the queue was closed
  /// (the request is left untouched so the caller can fail it).
  bool push(SolveRequest&& request);

  /// Blocks until a request is available (and the queue is not paused) or
  /// the queue is closed and empty — then returns an empty vector, the
  /// worker-shutdown signal. Otherwise returns the head request plus, when
  /// `coalesce`, all other queued nrhs==1 requests for the same solver
  /// until the batch reaches `max_rhs` columns (FIFO order preserved;
  /// requests for other solvers are left in place). Coalescing is a single
  /// compaction pass over the deque, O(depth) total regardless of how many
  /// requests move into the batch. When `backlog` is non-null it receives
  /// the queue depth left behind — the popping worker's load signal,
  /// captured under the same lock as the pop itself.
  std::vector<SolveRequest> popBatch(sts::index_t max_rhs, bool coalesce,
                                     std::size_t* backlog = nullptr);

  /// As above, but the column budget is chosen by `max_rhs_for_depth`,
  /// called under the queue lock with the pre-pop depth — so a
  /// depth-adaptive cap (EngineOptions::adaptive_batch) sees the actual
  /// backlog the batch will be cut from, not a stale pre-block snapshot.
  std::vector<SolveRequest> popBatch(
      const std::function<sts::index_t(std::size_t)>& max_rhs_for_depth,
      bool coalesce, std::size_t* backlog = nullptr);

  /// Stop dispatch: popBatch blocks even when requests are queued.
  void pause();
  /// Resume dispatch and wake all workers.
  void resume();

  /// Closing is one-way; queued requests still drain through popBatch.
  void close();
  bool closed() const;

  std::size_t size() const;

 private:
  /// The one queue lock (see the file comment: held only to move request
  /// records, never across solving or promise fulfillment). The guarded
  /// members below are compiler-enforced under Clang `-Wthread-safety`.
  mutable base::Mutex mu_;
  std::condition_variable cv_;
  std::deque<SolveRequest> queue_ STS_GUARDED_BY(mu_);
  bool paused_ STS_GUARDED_BY(mu_) = false;
  bool closed_ STS_GUARDED_BY(mu_) = false;
};

}  // namespace sts::engine
