#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "base/sync.hpp"
#include "check/check.hpp"

/// \file core_budget.hpp
/// The machine-wide core allocator of the serving subsystem. Each engine
/// worker sizes its batch team independently, so without coordination N
/// concurrent batches can oversubscribe the machine by up to
/// N * num_threads threads in aggregate — and even a correctly *counted*
/// set of teams tramples caches when the OS migrates anonymous threads
/// across cores between batches.
///
/// A CoreBudget runs in one of two modes:
///
///   * COUNTING mode (`CoreBudget(total)`): the PR 3 lease counter. A
///     batch acquires up to its desired team size (blocking until at least
///     a minimum is free), executes on exactly the granted width — folding
///     makes any width bitwise-lossless — and releases on completion. The
///     invariant: the sum of outstanding grants never exceeds the budget.
///
///   * CORE-SET mode (`CoreBudget(core_ids)`): the counter becomes an
///     allocator. The budget owns an explicit set of logical CPU ids
///     (user-supplied via EngineOptions::core_set, or detected from the
///     process affinity mask), and every Grant carries the concrete ids it
///     leased, always the lowest free ids. Outstanding grants are DISJOINT
///     id sets by construction — the stronger invariant "never overlap"
///     that placement needs — and releasing returns exactly those ids to
///     the free pool. The engine pins each batch's OpenMP team members to
///     their leased ids (exec::ScopedPin via SolveContext), which upgrades
///     the PR 3 guarantee "never oversubscribe" to "never overlap, never
///     migrate".
///
/// Both modes share the blocking/partial-grant semantics, the peak /
/// throttle telemetry, and the TSan-covered invariant tests
/// (tests/test_fold_policies.cpp, tests/test_affinity.cpp).

namespace sts::engine {

class CoreBudget {
 public:
  /// One outstanding lease. `count` is the granted width; `ids` are the
  /// leased logical CPUs (size == count in core-set mode, empty in
  /// counting/unlimited mode — an anonymous grant). Obtain from acquire(),
  /// return with release() exactly once.
  struct Grant {
    int count = 0;
    std::vector<int> ids;
  };

  /// Counting mode. `total` <= 0 means unlimited: acquire() grants every
  /// desired width immediately and tracks nothing.
  explicit CoreBudget(int total) : total_(total) {}

  /// Core-set mode over explicit logical CPU ids. Throws
  /// std::invalid_argument on an empty set, a negative id, or duplicates
  /// (a duplicated id would let two "disjoint" grants share a core).
  explicit CoreBudget(std::vector<int> core_ids)
      : total_(static_cast<int>(core_ids.size())),
        core_set_(std::move(core_ids)),
        free_ids_(core_set_) {
    if (core_set_.empty()) {
      throw std::invalid_argument("CoreBudget: empty core set");
    }
    std::sort(free_ids_.begin(), free_ids_.end());
    if (free_ids_.front() < 0) {
      throw std::invalid_argument("CoreBudget: negative core id");
    }
    if (std::adjacent_find(free_ids_.begin(), free_ids_.end()) !=
        free_ids_.end()) {
      throw std::invalid_argument("CoreBudget: duplicate core id");
    }
    std::sort(core_set_.begin(), core_set_.end());
  }

  CoreBudget(const CoreBudget&) = delete;
  CoreBudget& operator=(const CoreBudget&) = delete;

  /// Leases up to `desired` cores, blocking until at least
  /// min(min_needed, desired, total) are free, then granting as many free
  /// cores as possible (never more than `desired`). In core-set mode the
  /// grant names the lowest free ids, disjoint from every other
  /// outstanding grant. The caller must release() the grant exactly once.
  /// Throws std::invalid_argument unless 1 <= min_needed and 1 <= desired.
  Grant acquire(int desired, int min_needed = 1) {
    if (desired < 1 || min_needed < 1) {
      throw std::invalid_argument("CoreBudget::acquire: bad widths");
    }
    if (total_ <= 0) return Grant{desired, {}};
    const int need = std::min({min_needed, desired, total_});
    base::MutexLock lock(mu_);
    // Explicit wait loop so the guarded read of in_use_ stays in this
    // (analyzed) scope — see base/sync.hpp.
    while (total_ - in_use_ < need) cv_.wait(lock.native());
    Grant grant;
    grant.count = std::min(desired, total_ - in_use_);
    if (!core_set_.empty()) {
      // Lowest free ids first: repeated bursts land on the same cores,
      // which is exactly the cross-batch cache stability pinning buys.
      const auto take = static_cast<std::size_t>(grant.count);
      grant.ids.assign(free_ids_.begin(),
                       free_ids_.begin() + static_cast<std::ptrdiff_t>(take));
      free_ids_.erase(free_ids_.begin(),
                      free_ids_.begin() + static_cast<std::ptrdiff_t>(take));
    }
    in_use_ += grant.count;
    peak_ = std::max(peak_, in_use_);
    if (grant.count < desired) ++throttled_;
#if STS_CHECKS
    // Checked builds audit disjointness across every live grant on each
    // lease — the "never overlap" invariant placement relies on.
    if (!core_set_.empty()) {
      live_grants_.push_back(grant.ids);
      check::enforce(check::auditCoreGrants(core_set_, live_grants_),
                     "CoreBudget::acquire");
    }
#endif
    return grant;
  }

  /// Returns a grant to the pool — in core-set mode the exact leased ids
  /// rejoin the free set — and wakes waiters. Throws std::invalid_argument
  /// if a core-set grant's ids do not match its count (a sliced or
  /// double-released grant).
  void release(Grant grant) {
    if (total_ <= 0 || grant.count <= 0) return;
    {
      base::MutexLock lock(mu_);
      if (!core_set_.empty()) {
        if (static_cast<int>(grant.ids.size()) != grant.count) {
          throw std::invalid_argument(
              "CoreBudget::release: grant ids do not match its count");
        }
        for (const int id : grant.ids) {
          free_ids_.insert(
              std::lower_bound(free_ids_.begin(), free_ids_.end(), id), id);
        }
#if STS_CHECKS
        const auto live = std::find(live_grants_.begin(), live_grants_.end(),
                                    grant.ids);
        check::enforce(
            live != live_grants_.end()
                ? check::CheckResult{}
                : check::CheckResult::failure(
                      "released a grant that was never live"),
            "CoreBudget::release");
        live_grants_.erase(live);
#endif
      }
      in_use_ -= grant.count;
    }
    cv_.notify_all();
  }

  /// RAII lease for exception-safe batch execution. `cores()` exposes the
  /// leased ids for pinning (empty in counting/unlimited mode).
  class Lease {
   public:
    Lease(CoreBudget& budget, int desired, int min_needed)
        : budget_(&budget), grant_(budget.acquire(desired, min_needed)) {}
    ~Lease() { budget_->release(std::move(grant_)); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    int granted() const { return grant_.count; }
    std::span<const int> cores() const { return grant_.ids; }

   private:
    CoreBudget* budget_;
    Grant grant_;
  };

  bool limited() const { return total_ > 0; }
  int total() const { return total_; }
  /// Core-set mode: grants carry explicit disjoint CPU ids.
  bool hasCoreSet() const { return !core_set_.empty(); }
  /// The full core universe (sorted; empty in counting mode).
  std::span<const int> coreSet() const { return core_set_; }

  int inUse() const {
    base::MutexLock lock(mu_);
    return in_use_;
  }
  /// High-water mark of concurrently leased cores; never exceeds total()
  /// when limited — the invariant the TSan-covered budget tests pin.
  int peakInUse() const {
    base::MutexLock lock(mu_);
    return peak_;
  }
  /// Acquires granted less than they desired (the contention signal).
  std::uint64_t throttledAcquires() const {
    base::MutexLock lock(mu_);
    return throttled_;
  }

 private:
  const int total_;
  /// Immutable after construction (sorted); empty in counting mode.
  std::vector<int> core_set_;
  mutable base::Mutex mu_;
  std::condition_variable cv_;
  /// Free ids, kept sorted so grants take the lowest first.
  std::vector<int> free_ids_ STS_GUARDED_BY(mu_);
  int in_use_ STS_GUARDED_BY(mu_) = 0;
  int peak_ STS_GUARDED_BY(mu_) = 0;
  std::uint64_t throttled_ STS_GUARDED_BY(mu_) = 0;
#if STS_CHECKS
  /// Checked builds only: the id set of every outstanding core-set grant,
  /// audited for pairwise disjointness on each acquire/release.
  std::vector<std::vector<int>> live_grants_ STS_GUARDED_BY(mu_);
#endif
};

}  // namespace sts::engine
