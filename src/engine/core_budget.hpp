#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <stdexcept>

/// \file core_budget.hpp
/// The machine-wide core arbiter of the serving subsystem. Each engine
/// worker sizes its batch team independently, so without coordination N
/// concurrent batches can oversubscribe the machine by up to
/// N * num_threads threads in aggregate. A CoreBudget is a shared lease
/// counter workers draw their OpenMP teams from: a batch acquires up to
/// its desired team size (blocking until at least a minimum is free),
/// executes on exactly the granted width — folding makes any width
/// bitwise-lossless — and releases on completion. The invariant is that
/// the sum of outstanding grants never exceeds the budget, which bounds
/// the engine's aggregate OpenMP thread footprint regardless of worker
/// count or request mix.

namespace sts::engine {

class CoreBudget {
 public:
  /// `total` <= 0 means unlimited: acquire() grants every desired width
  /// immediately and tracks nothing.
  explicit CoreBudget(int total) : total_(total) {}

  CoreBudget(const CoreBudget&) = delete;
  CoreBudget& operator=(const CoreBudget&) = delete;

  /// Leases up to `desired` cores, blocking until at least
  /// min(min_needed, desired, total) are free, then granting as many free
  /// cores as possible (never more than `desired`). Returns the grant,
  /// which the caller must release() exactly once. Throws
  /// std::invalid_argument unless 1 <= min_needed and 1 <= desired.
  int acquire(int desired, int min_needed = 1) {
    if (desired < 1 || min_needed < 1) {
      throw std::invalid_argument("CoreBudget::acquire: bad widths");
    }
    if (total_ <= 0) return desired;
    const int need = std::min({min_needed, desired, total_});
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return total_ - in_use_ >= need; });
    const int granted = std::min(desired, total_ - in_use_);
    in_use_ += granted;
    peak_ = std::max(peak_, in_use_);
    if (granted < desired) ++throttled_;
    return granted;
  }

  /// Returns `granted` cores to the pool and wakes waiters.
  void release(int granted) {
    if (total_ <= 0 || granted <= 0) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      in_use_ -= granted;
    }
    cv_.notify_all();
  }

  /// RAII lease for exception-safe batch execution.
  class Lease {
   public:
    Lease(CoreBudget& budget, int desired, int min_needed)
        : budget_(&budget), granted_(budget.acquire(desired, min_needed)) {}
    ~Lease() { budget_->release(granted_); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    int granted() const { return granted_; }

   private:
    CoreBudget* budget_;
    int granted_ = 0;
  };

  bool limited() const { return total_ > 0; }
  int total() const { return total_; }

  int inUse() const {
    std::lock_guard<std::mutex> lock(mu_);
    return in_use_;
  }
  /// High-water mark of concurrently leased cores; never exceeds total()
  /// when limited — the invariant the TSan-covered budget tests pin.
  int peakInUse() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_;
  }
  /// Acquires granted less than they desired (the contention signal).
  std::uint64_t throttledAcquires() const {
    std::lock_guard<std::mutex> lock(mu_);
    return throttled_;
  }

 private:
  const int total_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int in_use_ = 0;
  int peak_ = 0;
  std::uint64_t throttled_ = 0;
};

}  // namespace sts::engine
