#pragma once

#include <atomic>

#include "base/sync.hpp"

/// \file overload.hpp
/// Admission control + the graceful-degradation ladder (docs/ROBUSTNESS.md).
///
/// The controller watches one scalar — the estimated queue delay, fed by
/// the engine from queue depth x the registry's batch-latency histogram
/// and the oldest queued wait — and maps it onto a LADDER of rungs:
///
///   rung 0                      exact: the engine's configured tier
///   rung 1..max_rung-1          precision shed: bounded-stale SSP with
///                               staleness raised by the rung (tolerance
///                               optionally relaxed per rung)
///   rung max_rung               admission: new throughput-class work is
///                               rejected (latency-class still admitted)
///
/// Pressure = est_delay / target_delay, so rung r is "appropriate" while
/// pressure sits in [r, r+1). Rungs move ONE step per decision (no jumps)
/// and step DOWN only once pressure clears the current rung by the
/// hysteresis margin — the same dither-proofing asymmetry as the SLO
/// controller's deadband (engine::sloStep). The engine sheds precision
/// before it sheds requests: the reject rung is the ladder's last resort,
/// exactly the ROADMAP contract ("reject/degrade instead of queue
/// collapse").

namespace sts::engine {

/// One ladder decision, pure and unit-testable (the overload analogue of
/// engine::sloStep): given the current pressure (est_delay / target),
/// the hysteresis margin, and the current rung, return the next rung in
/// [0, max_rung]. Monotone in pressure for any fixed current rung, and
/// never moves more than one rung per call.
int overloadStep(double pressure, double hysteresis, int current,
                 int max_rung);

/// Thread-safe ladder state around overloadStep. update() is called from
/// the submit path and from batch completions; rung() is a lock-free read
/// for per-batch decisions.
class OverloadController {
 public:
  /// `target_delay` > 0 seconds per rung; `hysteresis` >= 0 in rung
  /// units; `max_rung` >= 1 (the reject rung).
  OverloadController(double target_delay, double hysteresis, int max_rung)
      : target_delay_(target_delay),
        hysteresis_(hysteresis),
        max_rung_(max_rung) {}

  /// Feed a fresh queue-delay estimate; returns {previous, next} rung so
  /// the caller can account the transition (trace instant + counters).
  struct Step {
    int from = 0;
    int to = 0;
    bool moved() const { return from != to; }
  };
  Step update(double est_delay_seconds) {
    // Serialized: two concurrent updates must not both step from the same
    // rung (the ladder would jump two rungs off one pressure reading).
    base::MutexLock lock(mu_);
    const int current = rung_.load(std::memory_order_relaxed);
    const int next = overloadStep(est_delay_seconds / target_delay_,
                                  hysteresis_, current, max_rung_);
    rung_.store(next, std::memory_order_relaxed);
    return {current, next};
  }

  /// The current rung (lock-free; per-batch and per-submit reads).
  int rung() const { return rung_.load(std::memory_order_relaxed); }
  int maxRung() const { return max_rung_; }
  double targetDelay() const { return target_delay_; }

 private:
  const double target_delay_;
  const double hysteresis_;
  const int max_rung_;
  /// update() serializer; the rung itself stays an atomic so readers
  /// never take the lock.
  base::Mutex mu_;
  std::atomic<int> rung_{0};
};

}  // namespace sts::engine
