#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "base/sync.hpp"
#include "engine/context_pool.hpp"
#include "engine/core_budget.hpp"
#include "engine/overload.hpp"
#include "engine/request_queue.hpp"
#include "engine/types.hpp"
#include "exec/solver.hpp"
#include "obs/registry.hpp"

/// \file solver_engine.hpp
/// The batched request-serving subsystem: turns analyzed TriangularSolvers
/// into a concurrent solve service — the analyze-once / solve-many premise
/// (§1) promoted from a library call to a long-lived server, in the spirit
/// of treating the executor as a service whose execution adapts to load.
///
///   engine::SolverEngine engine({.num_workers = 2, .max_batch = 16});
///   const auto id = engine.registerSolver(
///       std::make_shared<const exec::TriangularSolver>(
///           exec::TriangularSolver::analyze(L)));
///   auto future = engine.submit(id, b);        // b in original ordering
///   std::vector<double> x = future.get();
///
/// Design:
///  * A persistent pool of `num_workers` dispatcher threads drains a
///    lock-light RequestQueue; each batch execution runs the solver's own
///    OpenMP team, so distinct workers can solve concurrently against the
///    same analyzed schedule.
///  * Compatible queued single-RHS requests for one solver coalesce into a
///    single solveMultiRhs batch of up to `max_batch` columns: one
///    schedule traversal — one barrier crossing per superstep — serves the
///    whole batch (the Table 7.7 block-parallel amortization applied to
///    serving). Column results are bitwise equal to individual solve()
///    calls, so coalescing is invisible to clients.
///  * Reentrancy comes from the SolveContext contract (solve_context.hpp):
///    every in-flight batch leases a context from a per-solver
///    ContextPool; the solver itself is shared immutable state.
///  * Elasticity (EngineOptions::elastic): the per-batch OpenMP team size
///    adapts to load. A deep queue shrinks teams — schedule folding makes
///    any team size t <= numThreads() bitwise-lossless — so the engine
///    trades per-solve parallelism for cross-solve concurrency exactly
///    when the backlog can use it; a shallow queue keeps full-width solves
///    for latency. With EngineOptions::target_p95 the choice is SLO-driven
///    instead of depth-only: each solver's controller grows its team while
///    the recent-window p95 latency violates the target and shrinks it
///    while under target with backlog. Team choices are reported in
///    SolverServingStats.
///  * Cross-solver budgeting (EngineOptions::core_budget): every batch
///    leases its team from a shared CoreBudget, so aggregate granted team
///    sizes across concurrent batches never exceed the machine-wide
///    budget; the grant (not the desire) is the executed width, which
///    folding keeps bitwise-lossless.
///  * Core-set affinity (EngineOptions::core_set / pin_threads): the
///    budget can allocate WHICH cores, not just how many — grants become
///    explicit disjoint CPU-id sets (user-supplied or detected from the
///    process mask), and with pin_threads each batch's OpenMP team members
///    pin themselves to their leased ids for the solve region, so
///    concurrent batches never overlap cores and folded ranks stop
///    migrating across caches. Placement only — results stay bitwise;
///    unsupported platforms silently run unpinned (STS_HAS_AFFINITY).
///    See the option-interaction table in engine/types.hpp.
///  * Adaptive coalescing (EngineOptions::adaptive_batch): under a deep
///    queue the effective coalescing cap rises toward 2 * max_batch while
///    teams shrink, so the barrier amortization grows exactly when the
///    backlog can feed it.
///  * Service tiers (EngineOptions::tier): the exact tier (default) serves
///    bitwise-deterministic direct solves; the bounded-stale tier routes
///    every batch through TriangularSolver::solveBoundedStale* — SSP
///    sweeps with relaxed barriers plus residual-checked refinement to
///    `stale_tolerance` (exec/ssp.hpp) — for preconditioner-application
///    serving, where the surrounding Krylov loop absorbs a bounded
///    residual. Refinement counts, fallbacks, and the last residual land
///    in SolverServingStats and the metrics registry. Tiers compose with
///    elasticity, budgeting, pinning, and storage; `tiled` stays an
///    exact-tier layout (bounded-stale batches run row-major).
///  * Per-solver throughput/latency statistics aggregate via the
///    harness::stats quantile helpers (SolverServingStats).
///  * Request lifecycle (PR 10, docs/ROBUSTNESS.md): the SubmitOptions
///    overloads attach a priority class and deadlines to each request;
///    admission control (EngineOptions::max_queue_depth,
///    overload_control) resolves refused work with typed EngineErrors;
///    the overload ladder (engine/overload.hpp) sheds precision —
///    bounded-stale batches with raised staleness, visible per-response
///    as DegradeInfo — before it sheds requests. Every accepted future
///    resolves, whatever happens to the engine.

namespace sts::engine {

/// One SLO controller decision, pure and unit-testable: given the recent
/// window p95 and the target, return the next team width. Steps are
/// proportional to the relative error — err = (p95 - target) / target —
/// instead of the former power-of-two grow/halve: width moves by
/// max(1, round(0.5 * |err| * current)) per decision, so a 2x violation
/// jumps straight toward base while a 10% one creeps, and small errors
/// inside the ±10% deadband hold (no oscillation at the target). Growth
/// needs only a violation; shrinking additionally needs a deep backlog
/// (cores freed must have queued work to serve, same asymmetry as before).
/// The result is clamped to [min_team, base].
int sloStep(double p95, double target, int current, int base, int min_team,
            bool deep_backlog);

/// The serving facade: register analyzed solvers, submit right-hand
/// sides, get futures. Construction spawns the workers; destruction
/// drains and joins them. All public methods are thread-safe. The
/// adaptive behavior is entirely options-driven — see the interaction
/// table in engine/types.hpp and docs/ARCHITECTURE.md.
class SolverEngine {
 public:
  explicit SolverEngine(EngineOptions options = {});
  /// Drains outstanding work, then stops the workers.
  ~SolverEngine();

  SolverEngine(const SolverEngine&) = delete;
  SolverEngine& operator=(const SolverEngine&) = delete;

  /// Registers an analyzed solver for serving. The engine shares ownership;
  /// callers may keep using the solver directly (context overloads only, if
  /// concurrent with serving). Thread-safe.
  SolverId registerSolver(std::shared_ptr<const exec::TriangularSolver> solver);

  /// Queue x = T^{-1} b (original row ordering). Throws std::invalid_argument
  /// on size mismatch or unknown id, std::runtime_error after shutdown.
  std::future<std::vector<double>> submit(SolverId id, std::vector<double> b);

  /// Queue an explicit multi-RHS solve, b row-major n x nrhs; the future
  /// carries x in the same layout. Multi-RHS requests are never coalesced
  /// with others — they already amortize internally.
  std::future<std::vector<double>> submitMulti(SolverId id,
                                               std::vector<double> b,
                                               sts::index_t nrhs);

  /// Lifecycle-aware submission: priority class plus optional deadlines
  /// (SubmitOptions). The future carries the solution AND its DegradeInfo;
  /// refused or expired requests resolve it with a typed EngineError
  /// (kRejected / kExpired / kShutdown) — it NEVER blocks forever. Throws
  /// EngineError{kShutdown} after shutdown, std::invalid_argument on bad
  /// sizes or negative deadlines.
  std::future<SolveResponse> submit(SolverId id, std::vector<double> b,
                                    const SubmitOptions& submit_options);
  std::future<SolveResponse> submitMulti(SolverId id, std::vector<double> b,
                                         sts::index_t nrhs,
                                         const SubmitOptions& submit_options);

  /// Pause/resume dispatch (submissions still enqueue while paused).
  void pause();
  void resume();

  /// Blocks until every accepted submission has completed. Do not call
  /// concurrently with pause(); a paused engine cannot drain.
  void drain();

  /// Drains, then joins the workers. Idempotent; implied by destruction.
  /// Subsequent submissions throw.
  void shutdown();

  /// Fail-fast shutdown: queued (not yet popped) requests resolve their
  /// futures with EngineError{kShutdown} instead of executing; in-flight
  /// batches still finish (the executor is not preemptible). Idempotent,
  /// and safe to race with shutdown()/destruction — every queued request
  /// goes exactly one way (served, or failed-fast here).
  void stop();

  /// Snapshot of one solver's serving statistics. Thread-safe.
  SolverServingStats stats(SolverId id) const;

  /// Per-(team, storage) compute-vs-wait attribution of one solver's
  /// batches (EngineOptions::trace; empty when tracing is off or compiled
  /// out). Rows are sorted by (team, storage). Thread-safe.
  std::vector<TraceSummaryRow> traceSummary(SolverId id) const;

  /// The engine's metric registry: per-solver latency histograms
  /// (`sts.solver<id>.latency_seconds`), request/batch counters, and the
  /// SLO controller's actuation counters, exportable via renderText() /
  /// renderJson(). Engine-private (not Registry::global()) so concurrent
  /// engines in one process never collide on names. Thread-safe.
  const obs::Registry& metrics() const { return metrics_; }

  const exec::TriangularSolver& solver(SolverId id) const;
  int numWorkers() const { return static_cast<int>(workers_.size()); }
  const EngineOptions& options() const { return options_; }
  /// Requests queued but not yet popped into a batch (load signal).
  std::size_t queueDepth() const { return queue_.size(); }
  /// The shared cross-batch core arbiter (limited() iff
  /// options().core_budget > 0). peakInUse() <= options().core_budget is
  /// the oversubscription invariant the tests pin.
  const CoreBudget& coreBudget() const { return budget_; }
  /// The degradation ladder's current rung (0 when overload_control is
  /// off or the ladder is idle). Observability for tests and benches.
  int overloadRung() const { return overload_ ? overload_->rung() : 0; }

 private:
  /// Sliding window of recent request latencies feeding the SLO
  /// controller's p95 (the registry histogram is cumulative — right for
  /// stats quantiles, wrong for a controller that must react to the
  /// current regime within one window).
  struct SloWindow {
    static constexpr std::size_t kSize = 64;
    std::array<double, kSize> samples{};
    std::size_t count = 0;  ///< total recorded (caps the valid prefix)
    std::size_t next = 0;   ///< ring cursor
  };

  /// Accumulated SolveTrace totals of one (team, storage) configuration.
  struct TraceAccum {
    std::uint64_t batches = 0;
    std::uint64_t thread_steps = 0;
    std::uint64_t compute_ns = 0;
    std::uint64_t wait_ns = 0;
    std::uint64_t max_wait_ns = 0;
    double pack_seconds = 0.0;
    double unpack_seconds = 0.0;
  };

  struct Registered {
    std::shared_ptr<const exec::TriangularSolver> solver;
    std::unique_ptr<ContextPool> contexts;

    /// Registry-backed instruments (owned by the engine's metrics_; set
    /// once at registration, updated lock-free thereafter).
    obs::Histogram* latency_hist = nullptr;
    obs::Counter* requests_counter = nullptr;
    obs::Counter* rhs_solved_counter = nullptr;
    obs::Counter* batches_counter = nullptr;
    obs::Counter* slo_steps_counter = nullptr;
    /// Bounded-stale tier instruments: refinement-sweep distribution per
    /// batch plus fallback count (zero on exact-tier engines).
    obs::Histogram* refine_hist = nullptr;
    obs::Counter* ssp_fallbacks_counter = nullptr;

    /// The SLO controller's current team choice (0 = unset, meaning the
    /// base width). Cold-started by seedTeam at registration when
    /// target_p95 is set; thereafter written under stats_mu by the
    /// batch-completion controller step; read lock-free by chooseTeam.
    std::atomic<int> elastic_team{0};
    /// seedTeam's cold-start choice, for stats (0 = unseeded). Written
    /// once before the solver is published; never mutated after.
    int seeded_team = 0;

    /// Guards every serving statistic below (the submit and
    /// batch-completion paths both write them); compiler-enforced under
    /// Clang `-Wthread-safety`.
    mutable base::Mutex stats_mu;
    std::uint64_t requests STS_GUARDED_BY(stats_mu) = 0;
    std::uint64_t rhs_submitted STS_GUARDED_BY(stats_mu) = 0;
    std::uint64_t batches STS_GUARDED_BY(stats_mu) = 0;
    std::uint64_t batches_failed STS_GUARDED_BY(stats_mu) = 0;
    std::uint64_t rhs_solved STS_GUARDED_BY(stats_mu) = 0;
    std::uint64_t coalesced_rhs STS_GUARDED_BY(stats_mu) = 0;
    std::uint64_t shrunk_batches STS_GUARDED_BY(stats_mu) = 0;
    std::uint64_t budget_throttled_batches STS_GUARDED_BY(stats_mu) = 0;
    std::uint64_t expanded_batches STS_GUARDED_BY(stats_mu) = 0;
    std::uint64_t pinned_batches STS_GUARDED_BY(stats_mu) = 0;
    std::uint64_t pinned_threads STS_GUARDED_BY(stats_mu) = 0;
    std::uint64_t migrated_threads STS_GUARDED_BY(stats_mu) = 0;
    std::uint64_t slab_batches STS_GUARDED_BY(stats_mu) = 0;
    std::uint64_t tiled_batches STS_GUARDED_BY(stats_mu) = 0;
    std::uint64_t team_size_accum STS_GUARDED_BY(stats_mu) = 0;
    std::uint64_t slo_steps STS_GUARDED_BY(stats_mu) = 0;
    std::uint64_t ssp_batches STS_GUARDED_BY(stats_mu) = 0;
    std::uint64_t refine_iterations STS_GUARDED_BY(stats_mu) = 0;
    std::uint64_t ssp_fallbacks STS_GUARDED_BY(stats_mu) = 0;
    std::uint64_t rejected_requests STS_GUARDED_BY(stats_mu) = 0;
    std::uint64_t expired_requests STS_GUARDED_BY(stats_mu) = 0;
    std::uint64_t degraded_batches STS_GUARDED_BY(stats_mu) = 0;
    double last_residual STS_GUARDED_BY(stats_mu) = 0.0;
    double busy_seconds STS_GUARDED_BY(stats_mu) = 0.0;
    double pack_seconds STS_GUARDED_BY(stats_mu) = 0.0;
    double unpack_seconds STS_GUARDED_BY(stats_mu) = 0.0;
    /// Controller input: recent latencies only (stats quantiles come from
    /// latency_hist, which never forgets — see obs/registry.hpp).
    SloWindow slo_window STS_GUARDED_BY(stats_mu);
    /// traceSummary() rows, keyed (team, storage); fed by each batch's
    /// armed SolveTrace when EngineOptions::trace is on.
    std::map<std::pair<int, int>, TraceAccum> trace_rows
        STS_GUARDED_BY(stats_mu);
    std::chrono::steady_clock::time_point first_submit STS_GUARDED_BY(stats_mu){};
    std::chrono::steady_clock::time_point last_complete STS_GUARDED_BY(stats_mu){};
    bool saw_submit STS_GUARDED_BY(stats_mu) = false;
    bool saw_complete STS_GUARDED_BY(stats_mu) = false;
  };

  void workerLoop();
  void executeBatch(std::vector<SolveRequest>& batch, std::size_t backlog);
  /// The base (shallow-queue) team width for one solver: team_size when
  /// pinned, else the solver's defaultTeam().
  int baseTeam(const exec::TriangularSolver& solver) const;
  /// Queue depth at or above which the elastic policies engage.
  std::size_t deepThreshold() const;
  /// The elasticity policy: per-batch OpenMP team size. Depth-only mode
  /// (target_p95 == 0) shrinks toward base/num_workers under a deep queue;
  /// SLO mode returns the controller's current per-solver choice. Folding
  /// keeps every choice bitwise-lossless (solver.hpp contract).
  int chooseTeam(const Registered& reg, std::size_t backlog) const;
  /// One SLO controller step after a batch completes: p95 over the recent
  /// latency window vs. target_p95 decides grow / shrink / hold, with
  /// proportional error-sized steps (see engine::sloStep). Caller holds
  /// reg.stats_mu — compiler-enforced via STS_REQUIRES under Clang.
  void updateController(Registered& reg, int base, std::size_t backlog)
      STS_REQUIRES(reg.stats_mu);
  /// SLO cold start (elastic + target_p95 only): estimate the per-solve
  /// cost at registration — one warmed probe solve on a budget-leased
  /// team (never oversubscribing concurrent batches) with the storage and
  /// policy the engine will serve, scaled to other teams by the
  /// schedule's folded-makespan ratios (core::foldedMakespanAt) — and
  /// return the smallest power-of-two step of the controller's lattice
  /// whose estimate still fits inside half the p95 target (headroom for
  /// queueing). The first window is then served at a width the target can
  /// afford instead of always at base.
  int seedTeam(const exec::TriangularSolver& solver);
  /// Coalescing cap for the next pop: max_batch, raised toward
  /// 2 * max_batch under a deep queue when adaptive_batch is on.
  sts::index_t effectiveBatchCap(std::size_t depth) const;
  /// Retires `count` in-flight submissions; wakes drain() on zero. Every
  /// in_flight_ decrement must go through here or drain() can sleep
  /// through the last completion.
  void noteRetired(std::int64_t count);
  /// Resolves EngineOptions::{core_budget,core_set,pin_threads} into the
  /// engine's CoreBudget: core-set mode when ids are given or detectable
  /// (truncated to the first core_budget ids when both are set), counting
  /// mode otherwise.
  static CoreBudget makeBudget(const EngineOptions& options);
  Registered& registered(SolverId id) const;
  /// Validate sizes/deadlines and build the internal request record (the
  /// promise is still unarmed — the caller picks legacy vs extended).
  SolveRequest buildRequest(SolverId id, std::vector<double> b,
                            sts::index_t nrhs, const SubmitOptions& opts,
                            Registered** reg_out);
  /// Admission control + enqueue: either the request lands in the queue
  /// (admitted) or its future resolves with a typed EngineError right here
  /// (kRejected on a full queue / ladder-top throughput work); throws
  /// EngineError{kShutdown} when the queue is closed. Feeds the overload
  /// controller on every accepted submission.
  void dispatch(SolveRequest&& request, Registered& reg);
  /// Resolve `request` with EngineError{kRejected} and account it.
  void rejectRequest(SolveRequest&& request, Registered& reg,
                     const char* why);
  /// Resolve lazily-expired requests (swept out by popBatch) with
  /// EngineError{kExpired} and retire them from in_flight_.
  void failExpired(std::vector<SolveRequest>& expired);
  /// The overload controller's input: estimated queue delay, the max of
  /// (depth x p50 batch seconds / workers) and the oldest queued wait —
  /// the latter keeps a stalled worker visible when depth alone is static.
  double estQueueDelay(std::chrono::steady_clock::time_point now) const;
  /// One ladder decision off a fresh delay estimate; transitions emit an
  /// `overload_step` trace instant and count in sts.engine.overload_steps.
  void overloadUpdate(std::chrono::steady_clock::time_point now);

  EngineOptions options_;
  RequestQueue queue_;
  CoreBudget budget_;
  /// Engine-private metric registry (see metrics()).
  obs::Registry metrics_;
  /// pin_threads requested AND the budget carries a core set AND the
  /// platform has affinity syscalls — the three conditions under which
  /// executeBatch arms per-batch pinning.
  bool pin_enabled_ = false;
  /// The degradation ladder (EngineOptions::overload_control; null = off).
  std::unique_ptr<OverloadController> overload_;
  /// Engine-wide lifecycle instruments (owned by metrics_, set in the
  /// ctor, updated lock-free).
  obs::Histogram* batch_seconds_hist_ = nullptr;
  obs::Counter* admitted_counter_ = nullptr;
  obs::Counter* degraded_counter_ = nullptr;
  obs::Counter* rejected_counter_ = nullptr;
  obs::Counter* expired_counter_ = nullptr;
  obs::Counter* overload_steps_counter_ = nullptr;
  /// Cached p50 of sts.engine.batch_seconds, refreshed at each batch
  /// completion so the submit-path delay estimate never walks histogram
  /// buckets.
  std::atomic<double> batch_p50_{0.0};
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};

  mutable base::Mutex solvers_mu_;
  std::vector<std::unique_ptr<Registered>> solvers_ STS_GUARDED_BY(solvers_mu_);

  /// Accepted-but-incomplete submissions; drain() waits for zero.
  std::atomic<std::int64_t> in_flight_{0};
  /// Pairs with drain_cv_ only: the waited-on state (in_flight_) is an
  /// atomic, so the mutex carries no guarded data — it exists to make the
  /// sleep/notify race-free.
  base::Mutex drain_mu_;
  std::condition_variable drain_cv_;
};

}  // namespace sts::engine
