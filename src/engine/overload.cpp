#include "engine/overload.hpp"

#include <algorithm>

namespace sts::engine {

int overloadStep(double pressure, double hysteresis, int current,
                 int max_rung) {
  current = std::clamp(current, 0, max_rung);
  // The rung pressure asks for, ignoring hysteresis: floor(pressure),
  // capped by the ladder top. Negative/NaN-free inputs are the caller's
  // contract (delay estimates are >= 0).
  const int asked =
      pressure <= 0.0 ? 0
                      : std::min(max_rung, static_cast<int>(pressure));
  if (asked > current) return current + 1;  // escalate one rung per step
  // De-escalate only once pressure clears the CURRENT rung by the
  // hysteresis margin: at rung r the boundary back down is r - h, not r,
  // so a load hovering at a rung boundary holds instead of dithering.
  if (current > 0 && pressure <= static_cast<double>(current) - hysteresis) {
    return current - 1;
  }
  return current;
}

}  // namespace sts::engine
