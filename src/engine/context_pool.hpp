#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "base/sync.hpp"
#include "exec/solver.hpp"

/// \file context_pool.hpp
/// Free list of SolveContexts for one registered solver. Acquiring leases
/// a context for exactly one solve (the SolveContext reentrancy contract);
/// the pool grows on demand, so N concurrent batches simply end up with N
/// pooled contexts that are reused once the burst subsides. Contexts keep
/// their lazily grown scratch/flag allocations across reuses, which is the
/// point: steady-state serving does no per-solve allocation beyond the
/// request/result vectors themselves.

namespace sts::engine {

class ContextPool {
 public:
  explicit ContextPool(const exec::TriangularSolver& solver)
      : solver_(solver) {}

  /// RAII lease; returns the context to the pool on destruction.
  class Lease {
   public:
    Lease(ContextPool& pool, std::unique_ptr<exec::SolveContext> ctx)
        : pool_(&pool), ctx_(std::move(ctx)) {}
    ~Lease() {
      if (ctx_) pool_->release(std::move(ctx_));
    }
    Lease(Lease&&) = default;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;

    exec::SolveContext& context() { return *ctx_; }

   private:
    ContextPool* pool_;
    std::unique_ptr<exec::SolveContext> ctx_;
  };

  Lease acquire() {
    {
      base::MutexLock lock(mu_);
      if (!free_.empty()) {
        auto ctx = std::move(free_.back());
        free_.pop_back();
        return Lease(*this, std::move(ctx));
      }
    }
    return Lease(*this, solver_.createContext());
  }

  std::size_t pooled() const {
    base::MutexLock lock(mu_);
    return free_.size();
  }

 private:
  void release(std::unique_ptr<exec::SolveContext> ctx) {
    // Pooled contexts carry no placement or attribution sink: a batch's
    // pinned core set (or its stack-local SolveTrace) must not leak into
    // whichever batch leases this context next (including after an
    // exception unwound past the solve).
    ctx->clearPinnedCores();
    ctx->setTrace(nullptr);
    base::MutexLock lock(mu_);
    free_.push_back(std::move(ctx));
  }

  const exec::TriangularSolver& solver_;
  mutable base::Mutex mu_;
  std::vector<std::unique_ptr<exec::SolveContext>> free_ STS_GUARDED_BY(mu_);
};

}  // namespace sts::engine
