#include "engine/request_queue.hpp"

namespace sts::engine {

bool RequestQueue::push(SolveRequest&& request) {
  {
    base::MutexLock lock(mu_);
    if (closed_) return false;
    queue_.push_back(std::move(request));
  }
  cv_.notify_one();
  return true;
}

std::vector<SolveRequest> RequestQueue::popBatch(sts::index_t max_rhs,
                                                 bool coalesce,
                                                 std::size_t* backlog) {
  return popBatch([max_rhs](std::size_t) { return max_rhs; }, coalesce,
                  backlog);
}

std::vector<SolveRequest> RequestQueue::popBatch(
    const std::function<sts::index_t(std::size_t)>& max_rhs_for_depth,
    bool coalesce, std::size_t* backlog) {
  base::MutexLock lock(mu_);
  // A closed queue ignores pause so shutdown always drains. Spelled as an
  // explicit loop (not a predicate lambda) so the thread-safety analysis
  // sees the guarded reads under mu_ — see base/sync.hpp.
  while (!closed_ && (paused_ || queue_.empty())) {
    cv_.wait(lock.native());
  }
  if (queue_.empty()) {
    if (backlog) *backlog = 0;
    return {};  // closed and drained
  }
  const sts::index_t max_rhs = max_rhs_for_depth(queue_.size());

  std::vector<SolveRequest> batch;
  batch.push_back(std::move(queue_.front()));
  queue_.pop_front();
  if (coalesce && batch.front().nrhs == 1) {
    // Single compaction pass: coalescable requests move into the batch,
    // survivors slide left into the holes. Erasing per match would be
    // O(depth) *per coalesced request* — quadratic in exactly the
    // deep-backlog regime coalescing exists for.
    const SolverId solver = batch.front().solver;
    sts::index_t rhs = 1;
    auto write = queue_.begin();
    auto read = queue_.begin();
    for (; read != queue_.end(); ++read) {
      if (rhs == max_rhs && write == read) break;  // no holes: tail in place
      if (rhs < max_rhs && read->solver == solver && read->nrhs == 1) {
        batch.push_back(std::move(*read));
        ++rhs;
      } else {
        if (write != read) *write = std::move(*read);
        ++write;
      }
    }
    // Only a completed pass leaves holes at the tail; an early break means
    // every survivor is already in place.
    if (read == queue_.end()) queue_.erase(write, queue_.end());
  }
  if (backlog) *backlog = queue_.size();
  return batch;
}

void RequestQueue::pause() {
  base::MutexLock lock(mu_);
  paused_ = true;
}

void RequestQueue::resume() {
  {
    base::MutexLock lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void RequestQueue::close() {
  {
    base::MutexLock lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  base::MutexLock lock(mu_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  base::MutexLock lock(mu_);
  return queue_.size();
}

}  // namespace sts::engine
