#include "engine/request_queue.hpp"

namespace sts::engine {

bool RequestQueue::push(SolveRequest&& request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    queue_.push_back(std::move(request));
  }
  cv_.notify_one();
  return true;
}

std::vector<SolveRequest> RequestQueue::popBatch(sts::index_t max_rhs,
                                                 bool coalesce) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    // A closed queue ignores pause so shutdown always drains.
    return closed_ ? true : (!paused_ && !queue_.empty());
  });
  if (queue_.empty()) return {};  // closed and drained

  std::vector<SolveRequest> batch;
  batch.push_back(std::move(queue_.front()));
  queue_.pop_front();
  if (coalesce && batch.front().nrhs == 1) {
    const SolverId solver = batch.front().solver;
    sts::index_t rhs = 1;
    for (auto it = queue_.begin(); it != queue_.end() && rhs < max_rhs;) {
      if (it->solver == solver && it->nrhs == 1) {
        batch.push_back(std::move(*it));
        it = queue_.erase(it);
        ++rhs;
      } else {
        ++it;
      }
    }
  }
  return batch;
}

void RequestQueue::pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void RequestQueue::resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace sts::engine
