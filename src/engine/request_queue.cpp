#include "engine/request_queue.hpp"

#include <algorithm>
#include <utility>

#include "fault/failpoint.hpp"

namespace sts::engine {

RequestQueue::PushResult RequestQueue::push(SolveRequest&& request) {
  // Queue-stall failpoint: sits BEFORE the lock so an armed stall models a
  // slow producer path without serializing the whole queue behind it.
  STS_FAILPOINT("engine.queue_push");
  {
    base::MutexLock lock(mu_);
    if (closed_) return PushResult::kClosed;
    if (max_depth_ > 0 &&
        latency_q_.size() + throughput_q_.size() >= max_depth_) {
      return PushResult::kFull;
    }
    (request.priority == RequestPriority::kLatency ? latency_q_
                                                   : throughput_q_)
        .push_back(std::move(request));
  }
  cv_.notify_one();
  return PushResult::kAccepted;
}

std::vector<SolveRequest> RequestQueue::popBatch(
    sts::index_t max_rhs, bool coalesce, std::size_t* backlog,
    std::vector<SolveRequest>* expired) {
  return popBatch([max_rhs](std::size_t) { return max_rhs; }, coalesce,
                  backlog, expired);
}

void RequestQueue::sweepExpired(std::deque<SolveRequest>& q,
                                std::chrono::steady_clock::time_point now,
                                std::vector<SolveRequest>* expired) {
  if (expired == nullptr) return;
  // Same single-compaction-pass shape as coalescing: expired requests move
  // out, survivors slide left, one O(depth) sweep regardless of hits.
  auto write = q.begin();
  bool moved = false;
  for (auto read = q.begin(); read != q.end(); ++read) {
    if (read->expires_at <= now) {
      expired->push_back(std::move(*read));
      moved = true;
    } else {
      if (write != read) *write = std::move(*read);
      ++write;
    }
  }
  if (moved) q.erase(write, q.end());
}

std::vector<SolveRequest> RequestQueue::popBatch(
    const std::function<sts::index_t(std::size_t)>& max_rhs_for_depth,
    bool coalesce, std::size_t* backlog, std::vector<SolveRequest>* expired) {
  base::MutexLock lock(mu_);
  for (;;) {
    // A closed queue ignores pause so shutdown always drains. Spelled as
    // an explicit loop (not a predicate lambda) so the thread-safety
    // analysis sees the guarded reads under mu_ — see base/sync.hpp.
    while (!closed_ &&
           (paused_ || (latency_q_.empty() && throughput_q_.empty()))) {
      cv_.wait(lock.native());
    }
    if (latency_q_.empty() && throughput_q_.empty()) {
      if (backlog) *backlog = 0;
      return {};  // closed and drained
    }
    // Lazy expiry: dead requests leave the queue exactly when a worker
    // looks at it, never by a background timer (no extra thread, no
    // promise resolution under the lock — the caller fails them).
    sweepExpired(latency_q_, std::chrono::steady_clock::now(), expired);
    sweepExpired(throughput_q_, std::chrono::steady_clock::now(), expired);
    if (latency_q_.empty() && throughput_q_.empty()) {
      if (backlog) *backlog = 0;
      if (expired != nullptr && !expired->empty()) {
        return {};  // only expired work: caller fails it and pops again
      }
      continue;  // everything queued expired and nobody to tell: re-wait
    }

    // Class selection with anti-starvation aging: latency first, except
    // after kAgingEvery consecutive bypasses of waiting throughput work.
    const bool force_throughput =
        !throughput_q_.empty() && starve_credit_ >= kAgingEvery;
    const bool take_latency = !latency_q_.empty() && !force_throughput;
    if (take_latency && !throughput_q_.empty()) {
      starve_credit_ += 1;
    } else {
      starve_credit_ = 0;
    }
    std::deque<SolveRequest>& q = take_latency ? latency_q_ : throughput_q_;

    const sts::index_t max_rhs =
        max_rhs_for_depth(latency_q_.size() + throughput_q_.size());
    std::vector<SolveRequest> batch;
    batch.push_back(std::move(q.front()));
    q.pop_front();
    if (coalesce && batch.front().nrhs == 1) {
      // Single compaction pass over the SAME-CLASS deque only: coalescable
      // requests move into the batch, survivors slide left into the holes.
      // Erasing per match would be O(depth) *per coalesced request* —
      // quadratic in exactly the deep-backlog regime coalescing exists
      // for. Class-local coalescing is the deadline-aware rule: a
      // latency-class request can never be merged behind (or into) a deep
      // throughput batch, and vice versa.
      const SolverId solver = batch.front().solver;
      sts::index_t rhs = 1;
      auto write = q.begin();
      auto read = q.begin();
      for (; read != q.end(); ++read) {
        if (rhs == max_rhs && write == read) break;  // no holes: tail in place
        if (rhs < max_rhs && read->solver == solver && read->nrhs == 1) {
          batch.push_back(std::move(*read));
          ++rhs;
        } else {
          if (write != read) *write = std::move(*read);
          ++write;
        }
      }
      // Only a completed pass leaves holes at the tail; an early break
      // means every survivor is already in place.
      if (read == q.end()) q.erase(write, q.end());
    }
    if (backlog) *backlog = latency_q_.size() + throughput_q_.size();
    return batch;
  }
}

void RequestQueue::pause() {
  base::MutexLock lock(mu_);
  paused_ = true;
}

void RequestQueue::resume() {
  {
    base::MutexLock lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void RequestQueue::close() {
  {
    base::MutexLock lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  base::MutexLock lock(mu_);
  return closed_;
}

std::vector<SolveRequest> RequestQueue::drainAll() {
  std::vector<SolveRequest> out;
  base::MutexLock lock(mu_);
  out.reserve(latency_q_.size() + throughput_q_.size());
  for (auto& request : latency_q_) out.push_back(std::move(request));
  for (auto& request : throughput_q_) out.push_back(std::move(request));
  latency_q_.clear();
  throughput_q_.clear();
  return out;
}

std::size_t RequestQueue::size() const {
  base::MutexLock lock(mu_);
  return latency_q_.size() + throughput_q_.size();
}

double RequestQueue::oldestWaitSeconds(
    std::chrono::steady_clock::time_point now) const {
  base::MutexLock lock(mu_);
  double oldest = 0.0;
  if (!latency_q_.empty()) {
    oldest = std::chrono::duration<double>(now - latency_q_.front().submitted)
                 .count();
  }
  if (!throughput_q_.empty()) {
    oldest = std::max(
        oldest,
        std::chrono::duration<double>(now - throughput_q_.front().submitted)
            .count());
  }
  return oldest;
}

}  // namespace sts::engine
