#include "engine/solver_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "exec/affinity.hpp"
#include "harness/stats.hpp"

namespace sts::engine {

namespace {
/// Latency ring-buffer capacity: quantiles are computed over the most
/// recent this-many completions, so a long-lived server's p50/p95 track
/// current behavior instead of freezing at warm-up values.
constexpr std::size_t kMaxLatencySamples = 1 << 16;
/// Sliding window of the SLO controller: its grow/shrink decisions react
/// to the p95 of this many most-recent completions, so a step in offered
/// load shows up within one window instead of being averaged away.
constexpr std::size_t kSloWindow = 64;
}  // namespace

CoreBudget SolverEngine::makeBudget(const EngineOptions& options) {
  std::vector<int> ids = options.core_set;
  if (ids.empty() && options.pin_threads) {
    // Auto-detect: the CPUs this process may use become the core universe.
    // Empty on platforms without affinity support — counting mode below.
    ids = exec::systemCoreSet();
  }
  if (!ids.empty()) {
    if (options.core_budget > 0 &&
        static_cast<int>(ids.size()) > options.core_budget) {
      // Both knobs set: the budget caps how much of the set is usable.
      std::sort(ids.begin(), ids.end());
      ids.resize(static_cast<std::size_t>(options.core_budget));
    }
    return CoreBudget(std::move(ids));
  }
  return CoreBudget(options.core_budget);
}

SolverEngine::SolverEngine(EngineOptions options)
    : options_(std::move(options)),
      budget_(makeBudget(options_)),
      pin_enabled_(options_.pin_threads && budget_.hasCoreSet() &&
                   exec::affinitySupported()) {
  if (options_.num_workers <= 0) {
    throw std::invalid_argument("SolverEngine: num_workers must be > 0");
  }
  if (options_.max_batch <= 0) {
    throw std::invalid_argument("SolverEngine: max_batch must be > 0");
  }
  if (options_.team_size < 0) {
    throw std::invalid_argument("SolverEngine: team_size must be >= 0");
  }
  if (options_.elastic_min_team < 1) {
    throw std::invalid_argument("SolverEngine: elastic_min_team must be >= 1");
  }
  if (options_.target_p95 < 0.0) {
    throw std::invalid_argument("SolverEngine: target_p95 must be >= 0");
  }
  if (options_.core_budget < 0) {
    throw std::invalid_argument("SolverEngine: core_budget must be >= 0");
  }
  if (options_.start_paused) queue_.pause();
  workers_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

SolverEngine::~SolverEngine() { shutdown(); }

int SolverEngine::seedTeam(const exec::TriangularSolver& solver) {
  const int base = baseTeam(solver);
  const int min_team = std::min(options_.elastic_min_team, base);
  if (min_team >= base) return base;

  // Lease the probe's team from the shared budget like any batch would:
  // registering a solver while the engine is serving must not
  // oversubscribe the machine (the never-oversubscribe invariant), and a
  // throttled grant simply anchors the model at the granted width.
  CoreBudget::Lease cores(budget_, base, min_team);
  const int probe_team = cores.granted();
  // Probe with the storage and policy the engine will actually serve, on
  // a fresh context (registration must not race the built-in default
  // context). The untimed warmup pays the one-time costs — fold-plan /
  // slab build, OpenMP team spinup, cold matrix — so the timed pass
  // measures the steady-state solve; a cold probe would overshoot and
  // silently disable the cold start.
  const core::FoldPolicy policy = solver.options().fold_policy;
  const exec::StorageKind storage =
      options_.storage.value_or(solver.options().storage);
  const auto n = static_cast<std::size_t>(solver.numRows());
  std::vector<double> b(n, 1.0);
  std::vector<double> x(n, 0.0);
  auto ctx = solver.createContext();
  solver.solve(b, x, *ctx, probe_team, policy, storage);
  const auto t0 = std::chrono::steady_clock::now();
  solver.solve(b, x, *ctx, probe_team, policy, storage);
  const double probe =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Scale the probe to other teams by the schedule's folded compute
  // makespan ratio — the analyze-time cost model — and keep halving from
  // the base while the estimate still fits in half the target (headroom
  // for queueing and batching on top of pure compute). Estimates grow
  // monotonically as the team shrinks, so stop at the first violation.
  const auto probe_makespan = static_cast<double>(
      core::foldedMakespanAt(solver.schedule(), probe_team, policy));
  if (probe_makespan <= 0.0) return base;
  const auto estimate = [&](int t) {
    return probe *
           static_cast<double>(
               core::foldedMakespanAt(solver.schedule(), t, policy)) /
           probe_makespan;
  };
  if (estimate(base) > 0.5 * options_.target_p95) return base;
  int chosen = base;
  for (int t = base / 2; t >= min_team; t /= 2) {
    if (estimate(t) > 0.5 * options_.target_p95) break;
    chosen = t;
  }
  return chosen;
}

SolverId SolverEngine::registerSolver(
    std::shared_ptr<const exec::TriangularSolver> solver) {
  if (!solver) {
    throw std::invalid_argument("SolverEngine::registerSolver: null solver");
  }
  auto reg = std::make_unique<Registered>();
  reg->contexts = std::make_unique<ContextPool>(*solver);
  reg->solver = std::move(solver);
  if (options_.elastic && options_.target_p95 > 0.0) {
    // Cold-start the SLO controller: without this every solver's first
    // window is served at the base width even when the target is generous
    // enough for a much narrower (higher-concurrency) team.
    const int seed = seedTeam(*reg->solver);
    if (seed > 0 && seed < baseTeam(*reg->solver)) {
      reg->seeded_team = seed;
      reg->elastic_team.store(seed, std::memory_order_relaxed);
    }
  }
  std::lock_guard<std::mutex> lock(solvers_mu_);
  solvers_.push_back(std::move(reg));
  return static_cast<SolverId>(solvers_.size() - 1);
}

SolverEngine::Registered& SolverEngine::registered(SolverId id) const {
  std::lock_guard<std::mutex> lock(solvers_mu_);
  if (static_cast<std::size_t>(id) >= solvers_.size()) {
    throw std::invalid_argument("SolverEngine: unknown solver id");
  }
  return *solvers_[static_cast<std::size_t>(id)];
}

std::future<std::vector<double>> SolverEngine::enqueue(SolverId id,
                                                       std::vector<double> b,
                                                       sts::index_t nrhs) {
  Registered& reg = registered(id);
  const auto n = static_cast<std::size_t>(reg.solver->numRows());
  if (nrhs <= 0 || b.size() != n * static_cast<std::size_t>(nrhs)) {
    throw std::invalid_argument("SolverEngine::submit: rhs size mismatch");
  }
  SolveRequest request;
  request.solver = id;
  request.nrhs = nrhs;
  request.b = std::move(b);
  request.submitted = std::chrono::steady_clock::now();
  const auto submitted = request.submitted;
  auto future = request.promise.get_future();

  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (!queue_.push(std::move(request))) {
    noteRetired(1);  // plain fetch_sub here could strand a drain() waiter
    throw std::runtime_error("SolverEngine: submit after shutdown");
  }
  // Stats count accepted submissions only, hence after the push. A worker
  // may finish the request before this runs; the counters are monotonic
  // and `submitted` was captured pre-push, so nothing skews.
  {
    std::lock_guard<std::mutex> lock(reg.stats_mu);
    reg.requests += 1;
    reg.rhs_submitted += static_cast<std::uint64_t>(nrhs);
    if (!reg.saw_submit) {
      reg.first_submit = submitted;
      reg.saw_submit = true;
    }
  }
  return future;
}

std::future<std::vector<double>> SolverEngine::submit(SolverId id,
                                                      std::vector<double> b) {
  return enqueue(id, std::move(b), 1);
}

std::future<std::vector<double>> SolverEngine::submitMulti(
    SolverId id, std::vector<double> b, sts::index_t nrhs) {
  return enqueue(id, std::move(b), nrhs);
}

void SolverEngine::pause() { queue_.pause(); }

void SolverEngine::resume() { queue_.resume(); }

void SolverEngine::drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [&] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

void SolverEngine::shutdown() {
  if (stopped_.exchange(true)) return;
  queue_.close();  // close ignores pause, so queued work still drains
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void SolverEngine::workerLoop() {
  for (;;) {
    std::size_t backlog = 0;
    // The pre-pop depth (read under the queue lock) drives the adaptive
    // coalescing cap: a deep queue justifies a bigger batch exactly when
    // this worker commits to one.
    auto batch = queue_.popBatch(
        [this](std::size_t depth) { return effectiveBatchCap(depth); },
        options_.coalesce, &backlog);
    if (batch.empty()) return;  // closed and drained
    executeBatch(batch, backlog);
    noteRetired(static_cast<std::int64_t>(batch.size()));
  }
}

int SolverEngine::baseTeam(const exec::TriangularSolver& solver) const {
  return options_.team_size > 0
             ? std::min(options_.team_size, solver.numThreads())
             : solver.defaultTeam();
}

std::size_t SolverEngine::deepThreshold() const {
  return options_.elastic_deep_queue > 0 ? options_.elastic_deep_queue
                                         : workers_.size();
}

sts::index_t SolverEngine::effectiveBatchCap(std::size_t depth) const {
  if (!options_.elastic || !options_.adaptive_batch) {
    return options_.max_batch;
  }
  const std::size_t deep = deepThreshold();
  if (depth >= 2 * deep) return 2 * options_.max_batch;
  if (depth >= deep) return options_.max_batch + (options_.max_batch + 1) / 2;
  return options_.max_batch;
}

int SolverEngine::chooseTeam(const Registered& reg,
                             std::size_t backlog) const {
  const int base = baseTeam(*reg.solver);
  if (!options_.elastic) return base;
  // min_team is raised first, then capped by base: a min_team above the
  // base width cannot widen the team past it.
  const int min_team = std::min(options_.elastic_min_team, base);

  if (options_.target_p95 > 0.0) {
    // SLO mode: the per-solver controller owns the choice; 0 = not yet
    // initialized, meaning the base width.
    const int current = reg.elastic_team.load(std::memory_order_relaxed);
    return current > 0 ? std::clamp(current, min_team, base) : base;
  }

  // Depth-only mode (PR 2): deep backlog divides the base across workers.
  if (backlog < deepThreshold()) return base;
  const int workers = static_cast<int>(workers_.size());
  const int shrunk = (base + workers - 1) / workers;
  return std::min(std::max(shrunk, min_team), base);
}

void SolverEngine::updateController(Registered& reg, int base,
                                    std::size_t backlog) {
  const int min_team = std::min(options_.elastic_min_team, base);
  int current = reg.elastic_team.load(std::memory_order_relaxed);
  if (current <= 0) current = base;

  // p95 over the last kSloWindow completions (the ring may hold far more;
  // a long-lived server must react to the current regime, not its past).
  const std::size_t have = reg.latency_samples.size();
  const std::size_t take = std::min(have, kSloWindow);
  if (take == 0) return;
  std::vector<double> window(take);
  for (std::size_t i = 0; i < take; ++i) {
    // latency_next is one past the newest sample; while the ring is still
    // filling the newest sits at have - 1.
    const std::size_t pos =
        have < kMaxLatencySamples
            ? have - take + i
            : (reg.latency_next + kMaxLatencySamples - take + i) %
                  kMaxLatencySamples;
    window[i] = reg.latency_samples[pos];
  }
  const double p95 = harness::quantile(window, 0.95);

  int next = current;
  if (p95 > options_.target_p95) {
    // Violating: spend cores on latency — grow toward the base width.
    next = std::min(base, current * 2);
  } else if (backlog >= deepThreshold()) {
    // Under target with backlog: spend cores on concurrency instead.
    next = std::max(min_team, current / 2);
  }
  reg.elastic_team.store(next, std::memory_order_relaxed);
}

void SolverEngine::noteRetired(std::int64_t count) {
  const auto prev = in_flight_.fetch_sub(count, std::memory_order_acq_rel);
  if (prev == count) {
    std::lock_guard<std::mutex> lock(drain_mu_);
    drain_cv_.notify_all();
  }
}

void SolverEngine::executeBatch(std::vector<SolveRequest>& batch,
                                std::size_t backlog) {
  Registered& reg = registered(batch.front().solver);
  const exec::TriangularSolver& solver = *reg.solver;
  const auto n = static_cast<std::size_t>(solver.numRows());
  const std::size_t k = batch.size();
  const int base_team = baseTeam(solver);  // shallow-queue reference
  const int desired = chooseTeam(reg, backlog);
  // Draw the actual team from the shared budget: the grant — not the
  // desire — is the executed width, so concurrent batches can never
  // oversubscribe the machine in aggregate. Folding keeps any granted
  // width bitwise-lossless.
  CoreBudget::Lease cores(budget_, desired,
                          std::min(options_.elastic_min_team, desired));
  const int team = cores.granted();
  // Arm pinning when the lease names concrete cores: the team members pin
  // themselves to the leased ids inside the solve region, so this batch
  // cannot overlap any concurrent batch's cores (the leases are disjoint)
  // and its folded ranks keep a stable core for the whole batch.
  const bool pin_batch = pin_enabled_ && !cores.cores().empty();
  // The engine-wide storage override wins over the solver's own default;
  // either way the layout is invisible in the results (bitwise contract).
  const exec::StorageKind storage =
      options_.storage.value_or(solver.options().storage);
  const core::FoldPolicy fold_policy = solver.options().fold_policy;
  std::uint64_t pinned_threads = 0;
  std::uint64_t migrated_threads = 0;

  std::vector<std::vector<double>> results;
  std::exception_ptr error;
  const auto t0 = std::chrono::steady_clock::now();
  sts::index_t total_rhs = 0;
  try {
    auto lease = reg.contexts->acquire();
    if (pin_batch) {
      lease.context().setPinnedCores(
          {cores.cores().begin(), cores.cores().end()});
    }
    if (k == 1) {
      SolveRequest& request = batch.front();
      total_rhs = request.nrhs;
      std::vector<double> x(request.b.size());
      if (request.nrhs == 1) {
        solver.solve(request.b, x, lease.context(), team, fold_policy,
                     storage);
      } else {
        solver.solveMultiRhs(request.b, x, request.nrhs, lease.context(),
                             team, fold_policy, storage);
      }
      results.push_back(std::move(x));
    } else {
      // Coalesced batch: k single-RHS requests become the k columns of one
      // row-major n x k SpTRSM — one schedule traversal for all of them.
      total_rhs = static_cast<sts::index_t>(k);
      std::vector<double> b_packed(n * k);
      std::vector<double> x_packed(n * k);
      for (std::size_t j = 0; j < k; ++j) {
        const auto& b = batch[j].b;
        for (std::size_t i = 0; i < n; ++i) b_packed[i * k + j] = b[i];
      }
      solver.solveMultiRhs(b_packed, x_packed,
                           static_cast<sts::index_t>(k), lease.context(),
                           team, fold_policy, storage);
      results.resize(k);
      for (std::size_t j = 0; j < k; ++j) {
        auto& x = results[j];
        x.resize(n);
        for (std::size_t i = 0; i < n; ++i) x[i] = x_packed[i * k + j];
      }
    }
    // Read the pin outcome before the context returns to the pool (the
    // pool clears pin state on release so placements never leak).
    pinned_threads = lease.context().pinnedThreads();
    migrated_threads = lease.context().migratedThreads();
  } catch (...) {
    error = std::current_exception();
  }
  const auto t1 = std::chrono::steady_clock::now();

  for (std::size_t j = 0; j < k; ++j) {
    if (error) {
      batch[j].promise.set_exception(error);
    } else {
      batch[j].promise.set_value(std::move(results[j]));
    }
  }

  std::lock_guard<std::mutex> lock(reg.stats_mu);
  reg.batches += 1;
  reg.team_size_accum += static_cast<std::uint64_t>(team);
  if (team < base_team) reg.shrunk_batches += 1;
  if (team < desired) reg.budget_throttled_batches += 1;
  if (static_cast<sts::index_t>(k) > options_.max_batch) {
    reg.expanded_batches += 1;
  }
  // A pinned batch is one that actually RAN pinned: pins that all failed
  // (or a solve that threw) must not inflate the counter, or the stats
  // invariant pinned_threads >= pinned_batches breaks.
  if (pin_batch && !error && pinned_threads > 0) reg.pinned_batches += 1;
  reg.pinned_threads += pinned_threads;
  reg.migrated_threads += migrated_threads;
  if (!error && storage == exec::StorageKind::kSlab) reg.slab_batches += 1;
  reg.busy_seconds += std::chrono::duration<double>(t1 - t0).count();
  reg.last_complete = t1;
  reg.saw_complete = true;
  if (error) {
    reg.batches_failed += 1;
  } else {
    reg.rhs_solved += static_cast<std::uint64_t>(total_rhs);
    if (k > 1) reg.coalesced_rhs += static_cast<std::uint64_t>(k);
  }
  for (std::size_t j = 0; j < k; ++j) {
    const double latency =
        std::chrono::duration<double>(t1 - batch[j].submitted).count();
    if (reg.latency_samples.size() < kMaxLatencySamples) {
      reg.latency_samples.push_back(latency);
    } else {
      reg.latency_samples[reg.latency_next] = latency;
    }
    reg.latency_next = (reg.latency_next + 1) % kMaxLatencySamples;
  }
  if (options_.elastic && options_.target_p95 > 0.0) {
    updateController(reg, base_team, backlog);
  }
}

SolverServingStats SolverEngine::stats(SolverId id) const {
  Registered& reg = registered(id);
  SolverServingStats out;
  std::vector<double> samples;
  {
    // stats_mu also serializes the submit and batch-completion hot paths,
    // so only O(1) field reads and a flat memcpy of the latency ring happen
    // under it; the O(n log n) quantile sort runs on the snapshot outside.
    std::lock_guard<std::mutex> lock(reg.stats_mu);
    out.requests = reg.requests;
    out.rhs_submitted = reg.rhs_submitted;
    out.batches = reg.batches;
    out.batches_failed = reg.batches_failed;
    out.rhs_solved = reg.rhs_solved;
    out.coalesced_rhs = reg.coalesced_rhs;
    out.shrunk_batches = reg.shrunk_batches;
    out.budget_throttled_batches = reg.budget_throttled_batches;
    out.expanded_batches = reg.expanded_batches;
    out.pinned_batches = reg.pinned_batches;
    out.pinned_threads = reg.pinned_threads;
    out.migrated_threads = reg.migrated_threads;
    out.slab_batches = reg.slab_batches;
    out.seeded_team = reg.seeded_team;
    out.busy_seconds = reg.busy_seconds;
    if (reg.batches > 0) {
      out.mean_team_size = static_cast<double>(reg.team_size_accum) /
                           static_cast<double>(reg.batches);
    }
    if (reg.batches > reg.batches_failed) {
      // Mean realized batch size over *successful* batches only —
      // rhs_solved excludes failed batches, so the populations must match.
      out.mean_batch_rhs =
          static_cast<double>(reg.rhs_solved) /
          static_cast<double>(reg.batches - reg.batches_failed);
    }
    samples = reg.latency_samples;
    if (reg.saw_submit && reg.saw_complete) {
      const double window =
          std::chrono::duration<double>(reg.last_complete - reg.first_submit)
              .count();
      if (window > 0.0) {
        out.throughput_rhs_per_second =
            static_cast<double>(reg.rhs_solved) / window;
      }
    }
  }
  if (!samples.empty()) {
    out.latency_p50_seconds = harness::quantile(samples, 0.5);
    out.latency_p95_seconds = harness::quantile(samples, 0.95);
  }
  return out;
}

const exec::TriangularSolver& SolverEngine::solver(SolverId id) const {
  return *registered(id).solver;
}

}  // namespace sts::engine
