#include "engine/solver_engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "base/sync.hpp"
#include "exec/affinity.hpp"
#include "fault/failpoint.hpp"
#include "harness/stats.hpp"
#include "obs/trace.hpp"

namespace sts::engine {

namespace {
/// Relative p95 error below which the SLO controller holds: without a
/// deadband a width sitting exactly at the target would dither one step
/// up and down every window.
constexpr double kSloDeadband = 0.1;
/// Proportional gain: widths move by round(gain * |err| * current) per
/// decision (at least 1), so big violations converge in a step or two and
/// near-target errors creep instead of overshooting.
constexpr double kSloGain = 0.5;

std::string solverMetric(SolverId id, const char* name) {
  return "sts.solver" + std::to_string(id) + "." + name;
}
}  // namespace

int sloStep(double p95, double target, int current, int base, int min_team,
            bool deep_backlog) {
  const double err = (p95 - target) / target;
  // An unreachable target (err in the millions) must saturate, not
  // overflow: any step of at least base - min_team spans the whole lattice.
  const auto step_of = [&](double magnitude) {
    const double raw = kSloGain * magnitude * current;
    const double cap = static_cast<double>(base - min_team + 1);
    return std::max(1, static_cast<int>(std::lround(std::min(raw, cap))));
  };
  int next = current;
  if (err > kSloDeadband) {
    // Violating: spend cores on latency, proportionally to how badly.
    next = current + step_of(err);
  } else if (err < -kSloDeadband && deep_backlog) {
    // Under target with backlog: spend cores on concurrency instead.
    next = current - step_of(-err);
  }
  return std::clamp(next, min_team, base);
}

CoreBudget SolverEngine::makeBudget(const EngineOptions& options) {
  std::vector<int> ids = options.core_set;
  if (ids.empty() && options.pin_threads) {
    // Auto-detect: the CPUs this process may use become the core universe.
    // Empty on platforms without affinity support — counting mode below.
    ids = exec::systemCoreSet();
  }
  if (!ids.empty()) {
    if (options.core_budget > 0 &&
        static_cast<int>(ids.size()) > options.core_budget) {
      // Both knobs set: the budget caps how much of the set is usable.
      std::sort(ids.begin(), ids.end());
      ids.resize(static_cast<std::size_t>(options.core_budget));
    }
    return CoreBudget(std::move(ids));
  }
  return CoreBudget(options.core_budget);
}

SolverEngine::SolverEngine(EngineOptions options)
    : options_(std::move(options)),
      queue_(options_.max_queue_depth),
      budget_(makeBudget(options_)),
      pin_enabled_(options_.pin_threads && budget_.hasCoreSet() &&
                   exec::affinitySupported()) {
  if (options_.num_workers <= 0) {
    throw std::invalid_argument("SolverEngine: num_workers must be > 0");
  }
  if (options_.max_batch <= 0) {
    throw std::invalid_argument("SolverEngine: max_batch must be > 0");
  }
  if (options_.team_size < 0) {
    throw std::invalid_argument("SolverEngine: team_size must be >= 0");
  }
  if (options_.elastic_min_team < 1) {
    throw std::invalid_argument("SolverEngine: elastic_min_team must be >= 1");
  }
  if (options_.target_p95 < 0.0) {
    throw std::invalid_argument("SolverEngine: target_p95 must be >= 0");
  }
  if (options_.core_budget < 0) {
    throw std::invalid_argument("SolverEngine: core_budget must be >= 0");
  }
  if (options_.stale_supersteps < 0) {
    throw std::invalid_argument("SolverEngine: stale_supersteps must be >= 0");
  }
  if (options_.stale_tolerance < 0.0) {
    throw std::invalid_argument("SolverEngine: stale_tolerance must be >= 0");
  }
  if (options_.stale_max_refine < 0) {
    throw std::invalid_argument("SolverEngine: stale_max_refine must be >= 0");
  }
  if (options_.overload_control && options_.overload_target_delay <= 0.0) {
    throw std::invalid_argument(
        "SolverEngine: overload_target_delay must be > 0");
  }
  if (options_.overload_hysteresis < 0.0) {
    throw std::invalid_argument(
        "SolverEngine: overload_hysteresis must be >= 0");
  }
  if (options_.overload_max_rung < 1) {
    throw std::invalid_argument("SolverEngine: overload_max_rung must be >= 1");
  }
  if (options_.overload_tolerance_growth < 1.0) {
    throw std::invalid_argument(
        "SolverEngine: overload_tolerance_growth must be >= 1");
  }
  // Engine-wide lifecycle instruments exist whether or not the ladder
  // runs: admitted/rejected/expired count the bounded-queue and deadline
  // machinery too, and the batch-seconds histogram doubles as the
  // controller's service-rate model.
  batch_seconds_hist_ = &metrics_.histogram("sts.engine.batch_seconds");
  admitted_counter_ = &metrics_.counter("sts.engine.admitted");
  degraded_counter_ = &metrics_.counter("sts.engine.degraded");
  rejected_counter_ = &metrics_.counter("sts.engine.rejected");
  expired_counter_ = &metrics_.counter("sts.engine.expired");
  overload_steps_counter_ = &metrics_.counter("sts.engine.overload_steps");
  if (options_.overload_control) {
    overload_ = std::make_unique<OverloadController>(
        options_.overload_target_delay, options_.overload_hysteresis,
        options_.overload_max_rung);
  }
  if (options_.start_paused) queue_.pause();
  workers_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

SolverEngine::~SolverEngine() { shutdown(); }

int SolverEngine::seedTeam(const exec::TriangularSolver& solver) {
  const int base = baseTeam(solver);
  const int min_team = std::min(options_.elastic_min_team, base);
  if (min_team >= base) return base;

  // Lease the probe's team from the shared budget like any batch would:
  // registering a solver while the engine is serving must not
  // oversubscribe the machine (the never-oversubscribe invariant), and a
  // throttled grant simply anchors the model at the granted width.
  CoreBudget::Lease cores(budget_, base, min_team);
  const int probe_team = cores.granted();
  // Probe with the storage and policy the engine will actually serve, on
  // a fresh context (registration must not race the built-in default
  // context). The untimed warmup pays the one-time costs — fold-plan /
  // slab build, OpenMP team spinup, cold matrix — so the timed pass
  // measures the steady-state solve; a cold probe would overshoot and
  // silently disable the cold start.
  const core::FoldPolicy policy = solver.options().fold_policy;
  const exec::StorageKind storage =
      options_.storage.value_or(solver.options().storage);
  const auto n = static_cast<std::size_t>(solver.numRows());
  std::vector<double> b(n, 1.0);
  std::vector<double> x(n, 0.0);
  auto ctx = solver.createContext();
  STS_TRACE_SPAN1("plan", "seed_probe", "team", probe_team);
  solver.solve(b, x, *ctx, probe_team, policy, storage);
  const auto t0 = std::chrono::steady_clock::now();
  solver.solve(b, x, *ctx, probe_team, policy, storage);
  const double probe =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Scale the probe to other teams by the schedule's folded compute
  // makespan ratio — the analyze-time cost model — and keep halving from
  // the base while the estimate still fits in half the target (headroom
  // for queueing and batching on top of pure compute). Estimates grow
  // monotonically as the team shrinks, so stop at the first violation.
  const auto probe_makespan = static_cast<double>(
      core::foldedMakespanAt(solver.schedule(), probe_team, policy));
  if (probe_makespan <= 0.0) return base;
  const auto estimate = [&](int t) {
    return probe *
           static_cast<double>(
               core::foldedMakespanAt(solver.schedule(), t, policy)) /
           probe_makespan;
  };
  if (estimate(base) > 0.5 * options_.target_p95) return base;
  int chosen = base;
  for (int t = base / 2; t >= min_team; t /= 2) {
    if (estimate(t) > 0.5 * options_.target_p95) break;
    chosen = t;
  }
  return chosen;
}

SolverId SolverEngine::registerSolver(
    std::shared_ptr<const exec::TriangularSolver> solver) {
  if (!solver) {
    throw std::invalid_argument("SolverEngine::registerSolver: null solver");
  }
  auto reg = std::make_unique<Registered>();
  reg->contexts = std::make_unique<ContextPool>(*solver);
  reg->solver = std::move(solver);
  if (options_.elastic && options_.target_p95 > 0.0) {
    // Cold-start the SLO controller: without this every solver's first
    // window is served at the base width even when the target is generous
    // enough for a much narrower (higher-concurrency) team.
    const int seed = seedTeam(*reg->solver);
    if (seed > 0 && seed < baseTeam(*reg->solver)) {
      reg->seeded_team = seed;
      reg->elastic_team.store(seed, std::memory_order_relaxed);
    }
  }
  base::MutexLock lock(solvers_mu_);
  const auto id = static_cast<SolverId>(solvers_.size());
  // Registry-backed instruments, named per solver id. Created before the
  // solver is published, so workers never observe null instrument
  // pointers.
  reg->latency_hist = &metrics_.histogram(solverMetric(id, "latency_seconds"));
  reg->requests_counter = &metrics_.counter(solverMetric(id, "requests"));
  reg->rhs_solved_counter = &metrics_.counter(solverMetric(id, "rhs_solved"));
  reg->batches_counter = &metrics_.counter(solverMetric(id, "batches"));
  reg->slo_steps_counter = &metrics_.counter(solverMetric(id, "slo_steps"));
  reg->refine_hist =
      &metrics_.histogram(solverMetric(id, "refine_iterations"));
  reg->ssp_fallbacks_counter =
      &metrics_.counter(solverMetric(id, "ssp_fallbacks"));
  solvers_.push_back(std::move(reg));
  return id;
}

SolverEngine::Registered& SolverEngine::registered(SolverId id) const {
  base::MutexLock lock(solvers_mu_);
  if (static_cast<std::size_t>(id) >= solvers_.size()) {
    throw std::invalid_argument("SolverEngine: unknown solver id");
  }
  return *solvers_[static_cast<std::size_t>(id)];
}

SolveRequest SolverEngine::buildRequest(SolverId id, std::vector<double> b,
                                        sts::index_t nrhs,
                                        const SubmitOptions& opts,
                                        Registered** reg_out) {
  Registered& reg = registered(id);
  const auto n = static_cast<std::size_t>(reg.solver->numRows());
  if (nrhs <= 0 || b.size() != n * static_cast<std::size_t>(nrhs)) {
    throw std::invalid_argument("SolverEngine::submit: rhs size mismatch");
  }
  if (opts.deadline_seconds < 0.0 || opts.max_queue_wait_seconds < 0.0) {
    throw std::invalid_argument("SolverEngine::submit: negative deadline");
  }
  SolveRequest request;
  request.solver = id;
  request.nrhs = nrhs;
  request.b = std::move(b);
  request.submitted = std::chrono::steady_clock::now();
  request.priority = opts.priority;
  // The two budgets collapse into one absolute lazy-expiry point (the
  // queue sweeps on expires_at only); 0 disables a budget.
  const auto budget = [&](double seconds) {
    return request.submitted +
           std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(seconds));
  };
  if (opts.deadline_seconds > 0.0) {
    request.expires_at = budget(opts.deadline_seconds);
  }
  if (opts.max_queue_wait_seconds > 0.0) {
    request.expires_at =
        std::min(request.expires_at, budget(opts.max_queue_wait_seconds));
  }
  *reg_out = &reg;
  return request;
}

void SolverEngine::rejectRequest(SolveRequest&& request, Registered& reg,
                                 const char* why) {
  STS_TRACE_INSTANT("engine", "rejected", "solver",
                    static_cast<std::uint64_t>(request.solver));
  rejected_counter_->inc();
  {
    base::MutexLock lock(reg.stats_mu);
    reg.rejected_requests += 1;
  }
  request.fail(std::make_exception_ptr(EngineError(
      EngineErrorCode::kRejected,
      std::string("SolverEngine: request rejected (") + why + ")")));
  noteRetired(1);
}

void SolverEngine::dispatch(SolveRequest&& request, Registered& reg) {
  const SolverId id = request.solver;
  const sts::index_t nrhs = request.nrhs;
  const auto submitted = request.submitted;
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  // Ladder-top admission control: at the reject rung only latency-class
  // work is still admitted — shedding requests is the last resort, after
  // precision shedding (the rungs below) stopped being enough.
  if (overload_ && request.priority == RequestPriority::kThroughput &&
      overload_->rung() >= overload_->maxRung()) {
    rejectRequest(std::move(request), reg, "overload ladder at top rung");
    return;
  }
  switch (queue_.push(std::move(request))) {
    case RequestQueue::PushResult::kClosed:
      // The caller still holds the future, but submit() propagates this
      // throw instead of returning it — the legacy shutdown contract.
      noteRetired(1);  // plain fetch_sub here could strand a drain() waiter
      throw EngineError(EngineErrorCode::kShutdown,
                        "SolverEngine: submit after shutdown");
    case RequestQueue::PushResult::kFull:
      // push leaves the request untouched on kFull, so it is still ours
      // to fail — bounded queues reject instead of queueing unboundedly.
      rejectRequest(std::move(request), reg, "queue full");
      return;
    case RequestQueue::PushResult::kAccepted:
      break;
  }
  STS_TRACE_INSTANT("engine", "submit", "solver",
                    static_cast<std::uint64_t>(id), "nrhs",
                    static_cast<std::uint64_t>(nrhs));
  admitted_counter_->inc();
  reg.requests_counter->inc();
  // Stats count accepted submissions only, hence after the push. A worker
  // may finish the request before this runs; the counters are monotonic
  // and `submitted` was captured pre-push, so nothing skews.
  {
    base::MutexLock lock(reg.stats_mu);
    reg.requests += 1;
    reg.rhs_submitted += static_cast<std::uint64_t>(nrhs);
    if (!reg.saw_submit) {
      reg.first_submit = submitted;
      reg.saw_submit = true;
    }
  }
  // The submit path feeds the ladder too: under a stalled or saturated
  // worker pool, batch completions (the other feed) may be rare exactly
  // when pressure is building.
  if (overload_) overloadUpdate(std::chrono::steady_clock::now());
}

std::future<std::vector<double>> SolverEngine::submit(SolverId id,
                                                      std::vector<double> b) {
  Registered* reg = nullptr;
  SolveRequest request = buildRequest(id, std::move(b), 1, {}, &reg);
  auto future = request.promise.get_future();
  dispatch(std::move(request), *reg);
  return future;
}

std::future<std::vector<double>> SolverEngine::submitMulti(
    SolverId id, std::vector<double> b, sts::index_t nrhs) {
  Registered* reg = nullptr;
  SolveRequest request = buildRequest(id, std::move(b), nrhs, {}, &reg);
  auto future = request.promise.get_future();
  dispatch(std::move(request), *reg);
  return future;
}

std::future<SolveResponse> SolverEngine::submit(
    SolverId id, std::vector<double> b, const SubmitOptions& submit_options) {
  return submitMulti(id, std::move(b), 1, submit_options);
}

std::future<SolveResponse> SolverEngine::submitMulti(
    SolverId id, std::vector<double> b, sts::index_t nrhs,
    const SubmitOptions& submit_options) {
  Registered* reg = nullptr;
  SolveRequest request = buildRequest(id, std::move(b), nrhs, submit_options,
                                      &reg);
  request.extended = true;
  auto future = request.promise_ex.get_future();
  dispatch(std::move(request), *reg);
  return future;
}

void SolverEngine::pause() { queue_.pause(); }

void SolverEngine::resume() { queue_.resume(); }

void SolverEngine::drain() {
  base::MutexLock lock(drain_mu_);
  // Explicit wait loop (not a predicate lambda) per the base/sync.hpp
  // discipline; the predicate itself reads only the atomic in_flight_.
  while (in_flight_.load(std::memory_order_acquire) != 0) {
    drain_cv_.wait(lock.native());
  }
}

void SolverEngine::shutdown() {
  if (stopped_.exchange(true)) return;
  queue_.close();  // close ignores pause, so queued work still drains
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void SolverEngine::stop() {
  queue_.close();
  // Fail-fast the backlog BEFORE joining: a paused engine's workers are
  // parked in popBatch and will wake from close() to an empty queue.
  // Requests a worker pops concurrently simply execute — each request
  // goes exactly one way.
  auto queued = queue_.drainAll();
  for (auto& request : queued) {
    Registered& reg = registered(request.solver);
    {
      base::MutexLock lock(reg.stats_mu);
      reg.rejected_requests += 1;
    }
    rejected_counter_->inc();
    request.fail(std::make_exception_ptr(
        EngineError(EngineErrorCode::kShutdown,
                    "SolverEngine: stopped before dispatch")));
  }
  if (!queued.empty()) noteRetired(static_cast<std::int64_t>(queued.size()));
  if (stopped_.exchange(true)) return;
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void SolverEngine::failExpired(std::vector<SolveRequest>& expired) {
  for (auto& request : expired) {
    Registered& reg = registered(request.solver);
    STS_TRACE_INSTANT("engine", "expired", "solver",
                      static_cast<std::uint64_t>(request.solver));
    expired_counter_->inc();
    {
      base::MutexLock lock(reg.stats_mu);
      reg.expired_requests += 1;
    }
    request.fail(std::make_exception_ptr(
        EngineError(EngineErrorCode::kExpired,
                    "SolverEngine: deadline expired before dispatch")));
  }
  noteRetired(static_cast<std::int64_t>(expired.size()));
}

void SolverEngine::workerLoop() {
  for (;;) {
    std::size_t backlog = 0;
    std::vector<SolveRequest> expired;
    // The pre-pop depth (read under the queue lock) drives the adaptive
    // coalescing cap: a deep queue justifies a bigger batch exactly when
    // this worker commits to one.
    auto batch = queue_.popBatch(
        [this](std::size_t depth) { return effectiveBatchCap(depth); },
        options_.coalesce, &backlog, &expired);
    // Stalled-worker failpoint (delay/stall actions only: a throw here
    // would escape the thread function). Sits between pop and execute so
    // a stall holds a COMMITTED batch — the regime where queue depth
    // stops moving but the head age keeps growing.
    STS_FAILPOINT("engine.worker_pop");
    if (!expired.empty()) failExpired(expired);
    if (batch.empty()) {
      if (!expired.empty()) continue;  // only dead work this pop
      return;                          // closed and drained
    }
    executeBatch(batch, backlog);
    noteRetired(static_cast<std::int64_t>(batch.size()));
  }
}

double SolverEngine::estQueueDelay(
    std::chrono::steady_clock::time_point now) const {
  const double p50 = batch_p50_.load(std::memory_order_relaxed);
  const double service =
      p50 * static_cast<double>(queue_.size()) /
      static_cast<double>(workers_.empty() ? 1 : workers_.size());
  // max, not sum: the head wait already contains queueing history, the
  // depth model already contains the head — either alone underestimates
  // in a different regime (cold histogram vs. stalled worker).
  return std::max(service, queue_.oldestWaitSeconds(now));
}

void SolverEngine::overloadUpdate(std::chrono::steady_clock::time_point now) {
  const OverloadController::Step step = overload_->update(estQueueDelay(now));
  if (!step.moved()) return;
  overload_steps_counter_->inc();
  STS_TRACE_INSTANT("engine", "overload_step", "from",
                    static_cast<std::uint64_t>(step.from), "to",
                    static_cast<std::uint64_t>(step.to));
}

int SolverEngine::baseTeam(const exec::TriangularSolver& solver) const {
  return options_.team_size > 0
             ? std::min(options_.team_size, solver.numThreads())
             : solver.defaultTeam();
}

std::size_t SolverEngine::deepThreshold() const {
  return options_.elastic_deep_queue > 0 ? options_.elastic_deep_queue
                                         : workers_.size();
}

sts::index_t SolverEngine::effectiveBatchCap(std::size_t depth) const {
  if (!options_.elastic || !options_.adaptive_batch) {
    return options_.max_batch;
  }
  const std::size_t deep = deepThreshold();
  if (depth >= 2 * deep) return 2 * options_.max_batch;
  if (depth >= deep) return options_.max_batch + (options_.max_batch + 1) / 2;
  return options_.max_batch;
}

int SolverEngine::chooseTeam(const Registered& reg,
                             std::size_t backlog) const {
  const int base = baseTeam(*reg.solver);
  if (!options_.elastic) return base;
  // min_team is raised first, then capped by base: a min_team above the
  // base width cannot widen the team past it.
  const int min_team = std::min(options_.elastic_min_team, base);

  if (options_.target_p95 > 0.0) {
    // SLO mode: the per-solver controller owns the choice; 0 = not yet
    // initialized, meaning the base width.
    const int current = reg.elastic_team.load(std::memory_order_relaxed);
    return current > 0 ? std::clamp(current, min_team, base) : base;
  }

  // Depth-only mode (PR 2): deep backlog divides the base across workers.
  if (backlog < deepThreshold()) return base;
  const int workers = static_cast<int>(workers_.size());
  const int shrunk = (base + workers - 1) / workers;
  return std::min(std::max(shrunk, min_team), base);
}

void SolverEngine::updateController(Registered& reg, int base,
                                    std::size_t backlog) {
  const int min_team = std::min(options_.elastic_min_team, base);
  int current = reg.elastic_team.load(std::memory_order_relaxed);
  if (current <= 0) current = base;

  // p95 over the controller's sliding window only: a long-lived server
  // must react to the current regime, not its whole history (which is
  // what the cumulative registry histogram records). The ring fills
  // in-order from 0, so the valid prefix is simply min(count, kSize);
  // quantiles are order-blind.
  const SloWindow& w = reg.slo_window;
  const std::size_t take = std::min(w.count, SloWindow::kSize);
  if (take == 0) return;
  std::vector<double> window(w.samples.begin(),
                             w.samples.begin() + static_cast<long>(take));
  const double p95 = harness::quantile(window, 0.95);

  const int next = sloStep(p95, options_.target_p95, current, base, min_team,
                           backlog >= deepThreshold());
  if (next != current) {
    // An actuation, not a hold: count it and leave a trace breadcrumb so
    // a Perfetto timeline shows exactly when and how far the controller
    // moved this solver's width.
    reg.slo_steps += 1;
    reg.slo_steps_counter->inc();
    STS_TRACE_INSTANT("engine", "slo_step", "from",
                      static_cast<std::uint64_t>(current), "to",
                      static_cast<std::uint64_t>(next));
  }
  reg.elastic_team.store(next, std::memory_order_relaxed);
}

void SolverEngine::noteRetired(std::int64_t count) {
  const auto prev = in_flight_.fetch_sub(count, std::memory_order_acq_rel);
  if (prev == count) {
    base::MutexLock lock(drain_mu_);
    drain_cv_.notify_all();
  }
}

void SolverEngine::executeBatch(std::vector<SolveRequest>& batch,
                                std::size_t backlog) {
  Registered& reg = registered(batch.front().solver);
  const exec::TriangularSolver& solver = *reg.solver;
  const auto n = static_cast<std::size_t>(solver.numRows());
  const std::size_t k = batch.size();
  const int base_team = baseTeam(solver);  // shallow-queue reference
  const int desired = chooseTeam(reg, backlog);
#if STS_TRACING
  // Close each request's queue-wait span (submit -> this worker committing
  // to it) and mark the coalescing decision, before the lease can block.
  {
    const std::uint64_t popped_ns = obs::nowNanos();
    for (const SolveRequest& request : batch) {
      STS_TRACE_SPAN_AT("engine", "queue_wait", obs::toNanos(request.submitted),
                        popped_ns, "solver",
                        static_cast<std::uint64_t>(request.solver));
    }
    STS_TRACE_INSTANT("engine", "coalesce", "rhs",
                      static_cast<std::uint64_t>(k), "backlog",
                      static_cast<std::uint64_t>(backlog));
  }
  const std::uint64_t lease_begin = obs::nowNanos();
#endif
  // Draw the actual team from the shared budget: the grant — not the
  // desire — is the executed width, so concurrent batches can never
  // oversubscribe the machine in aggregate. Folding keeps any granted
  // width bitwise-lossless.
  CoreBudget::Lease cores(budget_, desired,
                          std::min(options_.elastic_min_team, desired));
  const int team = cores.granted();
#if STS_TRACING
  // The lease span is where budget contention shows up: a batch blocked on
  // exhausted cores spends its time here, not in solve.
  STS_TRACE_SPAN_AT("engine", "lease", lease_begin, obs::nowNanos(), "desired",
                    static_cast<std::uint64_t>(desired), "granted",
                    static_cast<std::uint64_t>(team));
#endif
  // Arm pinning when the lease names concrete cores: the team members pin
  // themselves to the leased ids inside the solve region, so this batch
  // cannot overlap any concurrent batch's cores (the leases are disjoint)
  // and its folded ranks keep a stable core for the whole batch.
  const bool pin_batch = pin_enabled_ && !cores.cores().empty();
  // The engine-wide storage override wins over the solver's own default;
  // either way the layout is invisible in the results (bitwise contract).
  const exec::StorageKind storage =
      options_.storage.value_or(solver.options().storage);
  const core::FoldPolicy fold_policy = solver.options().fold_policy;
  std::uint64_t pinned_threads = 0;
  std::uint64_t migrated_threads = 0;
  bool tiled_batch = false;
  double pack_elapsed = 0.0;
  double unpack_elapsed = 0.0;
  // Ladder read: one relaxed load per batch, clamped below the reject
  // rung (the top rung gates admission, not execution). Precision shed
  // (rung > 0) forces the bounded-stale path on a kExact engine too, with
  // staleness raised by the rung and tolerance relaxed by growth^rung — a
  // kBoundedStale engine degrades FROM its configured staleness.
  const int rung =
      overload_ ? std::min(overload_->rung(), options_.overload_max_rung - 1)
                : 0;
  const bool shed = rung > 0;
  // Bounded-stale tier: route through the SSP executor with the engine's
  // staleness/tolerance knobs; what the refinement loop did feeds the
  // serving stats below.
  const bool bounded_stale =
      options_.tier == ServiceTier::kBoundedStale || shed;
  exec::SspOptions ssp_opts;
  ssp_opts.staleness = (options_.tier == ServiceTier::kBoundedStale
                            ? options_.stale_supersteps
                            : 0) +
                       static_cast<sts::index_t>(rung);
  ssp_opts.tolerance =
      options_.stale_tolerance *
      std::pow(options_.overload_tolerance_growth, static_cast<double>(rung));
  ssp_opts.max_refinements = options_.stale_max_refine;
  exec::SspResult ssp_result;

  std::vector<std::vector<double>> results;
  std::exception_ptr error;
  // Per-batch attribution sink: the executor threads' StepTracers flush
  // their compute/wait nanoseconds here (EngineOptions::trace); aggregated
  // into reg.trace_rows below. Stack-local — the pool clears the context's
  // sink pointer on release, so it cannot dangle past this frame.
  obs::SolveTrace batch_trace;
  const auto t0 = std::chrono::steady_clock::now();
  sts::index_t total_rhs = 0;
  try {
    // Batch-failure failpoint: an armed `fail` action throws InjectedFault
    // here, exercising the promise error path end to end (every request
    // in the batch resolves exceptionally, stats count a failed batch).
    STS_FAILPOINT("engine.batch_execute");
    auto lease = reg.contexts->acquire();
    if (pin_batch) {
      lease.context().setPinnedCores(
          {cores.cores().begin(), cores.cores().end()});
    }
    if (options_.trace) lease.context().setTrace(&batch_trace);
    if (k == 1) {
      SolveRequest& request = batch.front();
      total_rhs = request.nrhs;
      std::vector<double> x(request.b.size());
      {
        STS_TRACE_SPAN1("engine", "solve", "team", team);
        if (bounded_stale) {
          ssp_result = request.nrhs == 1
                           ? solver.solveBoundedStale(request.b, x, ssp_opts,
                                                      lease.context(), team,
                                                      fold_policy, storage)
                           : solver.solveBoundedStaleMultiRhs(
                                 request.b, x, request.nrhs, ssp_opts,
                                 lease.context(), team, fold_policy, storage);
        } else if (request.nrhs == 1) {
          solver.solve(request.b, x, lease.context(), team, fold_policy,
                       storage);
        } else if (options_.tiled) {
          // A lone multi-RHS request still gains the tiled layout (the
          // solver fuses its permute and pack passes internally).
          tiled_batch = true;
          solver.solveMultiRhsTiled(request.b, x, request.nrhs,
                                    lease.context(), team, fold_policy,
                                    storage);
        } else {
          solver.solveMultiRhs(request.b, x, request.nrhs, lease.context(),
                               team, fold_policy, storage);
        }
      }
      results.push_back(std::move(x));
    } else if (options_.tiled && !bounded_stale) {
      // Coalesced batch, tiled layout: the k request vectors are packed
      // DIRECTLY into the solver's cache-sized column tiles — permutation
      // fused into the pack, no intermediate row-major staging matrix —
      // solved via the zero-copy solveTiles entry, then unpacked per tile
      // into the per-request results.
      total_rhs = static_cast<sts::index_t>(k);
      tiled_batch = true;
      const exec::TileLayout layout =
          solver.tileLayout(static_cast<sts::index_t>(k));
      const auto perm = solver.permutation();
      const bool permuted = solver.isPermuted();
      std::vector<double> b_tiled(n * k);
      std::vector<double> x_tiled(n * k);
      {
        STS_TRACE_SPAN1("engine", "pack", "rhs", k);
        const auto p0 = std::chrono::steady_clock::now();
        for (std::size_t j = 0; j < k; ++j) {
          const auto& b = batch[j].b;
          const auto t = layout.tileOfCol(static_cast<sts::index_t>(j));
          const auto c = static_cast<std::size_t>(
              layout.colInTile(static_cast<sts::index_t>(j)));
          const auto w = static_cast<std::size_t>(layout.tileWidth(t));
          double* dst = b_tiled.data() + layout.tileOffset(t);
          for (std::size_t i = 0; i < n; ++i) {
            const auto row = permuted ? static_cast<std::size_t>(perm[i]) : i;
            dst[i * w + c] = b[row];
          }
        }
        pack_elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          p0)
                .count();
      }
      {
        STS_TRACE_SPAN1("engine", "solve", "team", team);
        solver.solveTiles(b_tiled, x_tiled, layout, lease.context(), team,
                          fold_policy, storage);
      }
      {
        STS_TRACE_SPAN1("engine", "unpack", "rhs", k);
        const auto u0 = std::chrono::steady_clock::now();
        results.resize(k);
        for (std::size_t j = 0; j < k; ++j) {
          auto& x = results[j];
          x.resize(n);
          const auto t = layout.tileOfCol(static_cast<sts::index_t>(j));
          const auto c = static_cast<std::size_t>(
              layout.colInTile(static_cast<sts::index_t>(j)));
          const auto w = static_cast<std::size_t>(layout.tileWidth(t));
          const double* src = x_tiled.data() + layout.tileOffset(t);
          for (std::size_t i = 0; i < n; ++i) {
            const auto row = permuted ? static_cast<std::size_t>(perm[i]) : i;
            x[row] = src[i * w + c];
          }
        }
        unpack_elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          u0)
                .count();
      }
    } else {
      // Coalesced batch: k single-RHS requests become the k columns of one
      // row-major n x k SpTRSM — one schedule traversal for all of them.
      total_rhs = static_cast<sts::index_t>(k);
      std::vector<double> b_packed(n * k);
      std::vector<double> x_packed(n * k);
      {
        STS_TRACE_SPAN1("engine", "pack", "rhs", k);
        const auto p0 = std::chrono::steady_clock::now();
        for (std::size_t j = 0; j < k; ++j) {
          const auto& b = batch[j].b;
          for (std::size_t i = 0; i < n; ++i) b_packed[i * k + j] = b[i];
        }
        pack_elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          p0)
                .count();
      }
      {
        STS_TRACE_SPAN1("engine", "solve", "team", team);
        if (bounded_stale) {
          // Bounded-stale batches stay row-major: the SSP multi-RHS
          // kernels read whole dropped entries per row, which the column
          // tiling would split across sweeps.
          ssp_result = solver.solveBoundedStaleMultiRhs(
              b_packed, x_packed, static_cast<sts::index_t>(k), ssp_opts,
              lease.context(), team, fold_policy, storage);
        } else {
          solver.solveMultiRhs(b_packed, x_packed,
                               static_cast<sts::index_t>(k), lease.context(),
                               team, fold_policy, storage);
        }
      }
      STS_TRACE_SPAN1("engine", "unpack", "rhs", k);
      const auto u0 = std::chrono::steady_clock::now();
      results.resize(k);
      for (std::size_t j = 0; j < k; ++j) {
        auto& x = results[j];
        x.resize(n);
        for (std::size_t i = 0; i < n; ++i) x[i] = x_packed[i * k + j];
      }
      unpack_elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - u0)
              .count();
    }
    // Read the pin outcome before the context returns to the pool (the
    // pool clears pin state on release so placements never leak).
    pinned_threads = lease.context().pinnedThreads();
    migrated_threads = lease.context().migratedThreads();
  } catch (...) {
    error = std::current_exception();
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double batch_seconds = std::chrono::duration<double>(t1 - t0).count();
  STS_TRACE_INSTANT("engine", "batch_done", "rhs",
                    static_cast<std::uint64_t>(total_rhs), "team",
                    static_cast<std::uint64_t>(team));
  // Refresh the controller's service-rate model and take one ladder step
  // off the post-batch queue state — BEFORE the promises resolve, so a
  // client reacting to its future already sees the stepped-down rung.
  batch_seconds_hist_->record(batch_seconds);
  batch_p50_.store(batch_seconds_hist_->quantile(0.5),
                   std::memory_order_relaxed);
  if (overload_) overloadUpdate(t1);

  // How (whether) this batch was degraded, stamped on every response the
  // extended futures carry — precision shedding is visible, never silent.
  DegradeInfo degrade;
  degrade.tier =
      bounded_stale ? ServiceTier::kBoundedStale : ServiceTier::kExact;
  degrade.staleness = bounded_stale ? ssp_opts.staleness : 0;
  degrade.rung = rung;
  degrade.residual = bounded_stale ? ssp_result.residual : 0.0;
  degrade.tolerance = bounded_stale ? ssp_opts.tolerance : 0.0;
  degrade.degraded = shed;
  for (std::size_t j = 0; j < k; ++j) {
    if (error) {
      batch[j].fail(error);
    } else {
      batch[j].resolve(std::move(results[j]), degrade);
    }
  }

  base::MutexLock lock(reg.stats_mu);
  reg.batches += 1;
  reg.batches_counter->inc();
  reg.team_size_accum += static_cast<std::uint64_t>(team);
  if (team < base_team) reg.shrunk_batches += 1;
  if (team < desired) reg.budget_throttled_batches += 1;
  if (static_cast<sts::index_t>(k) > options_.max_batch) {
    reg.expanded_batches += 1;
  }
  // A pinned batch is one that actually RAN pinned: pins that all failed
  // (or a solve that threw) must not inflate the counter, or the stats
  // invariant pinned_threads >= pinned_batches breaks.
  if (pin_batch && !error && pinned_threads > 0) reg.pinned_batches += 1;
  reg.pinned_threads += pinned_threads;
  reg.migrated_threads += migrated_threads;
  if (!error && storage == exec::StorageKind::kSlab) reg.slab_batches += 1;
  if (!error && tiled_batch) reg.tiled_batches += 1;
  if (!error && shed) {
    reg.degraded_batches += 1;
    degraded_counter_->add(static_cast<std::uint64_t>(k));
  }
  if (!error && bounded_stale) {
    reg.ssp_batches += 1;
    reg.refine_iterations += static_cast<std::uint64_t>(ssp_result.refinements);
    reg.last_residual = ssp_result.residual;
    reg.refine_hist->record(static_cast<double>(ssp_result.refinements));
    if (ssp_result.fell_back) {
      reg.ssp_fallbacks += 1;
      reg.ssp_fallbacks_counter->inc();
    }
  }
  reg.busy_seconds += batch_seconds;
  reg.pack_seconds += pack_elapsed;
  reg.unpack_seconds += unpack_elapsed;
  reg.last_complete = t1;
  reg.saw_complete = true;
  if (error) {
    reg.batches_failed += 1;
  } else {
    reg.rhs_solved += static_cast<std::uint64_t>(total_rhs);
    reg.rhs_solved_counter->add(static_cast<std::uint64_t>(total_rhs));
    if (k > 1) reg.coalesced_rhs += static_cast<std::uint64_t>(k);
  }
  // Fold the batch's compute/wait attribution into its (team, storage)
  // summary row. Relaxed loads: the executor threads flushed before the
  // solve call returned, and this thread performed that call. Compiled
  // out with the StepTracer bodies: an STS_TRACING=OFF build would only
  // ever record all-zero rows, so traceSummary() stays empty instead.
#if STS_TRACING
  if (options_.trace && !error) {
    TraceAccum& row =
        reg.trace_rows[{team, static_cast<int>(storage)}];
    row.batches += 1;
    row.thread_steps +=
        batch_trace.thread_steps.load(std::memory_order_relaxed);
    row.compute_ns += batch_trace.compute_ns.load(std::memory_order_relaxed);
    row.wait_ns += batch_trace.wait_ns.load(std::memory_order_relaxed);
    row.max_wait_ns =
        std::max(row.max_wait_ns,
                 batch_trace.max_wait_ns.load(std::memory_order_relaxed));
    row.pack_seconds += pack_elapsed;
    row.unpack_seconds += unpack_elapsed;
  }
#endif
  for (std::size_t j = 0; j < k; ++j) {
    const double latency =
        std::chrono::duration<double>(t1 - batch[j].submitted).count();
    // Quantiles: the cumulative registry histogram. Controller: the
    // sliding window ring (fills in-order from 0, overwrites oldest).
    reg.latency_hist->record(latency);
    SloWindow& w = reg.slo_window;
    w.samples[w.next] = latency;
    w.next = (w.next + 1) % SloWindow::kSize;
    w.count += 1;
  }
  if (options_.elastic && options_.target_p95 > 0.0) {
    updateController(reg, base_team, backlog);
  }
}

SolverServingStats SolverEngine::stats(SolverId id) const {
  Registered& reg = registered(id);
  SolverServingStats out;
  {
    // stats_mu also serializes the submit and batch-completion hot paths,
    // so only O(1) field reads happen under it. The latency quantiles come
    // from the registry histogram — O(buckets), no sample copy at all
    // (prior PRs copied and sorted a 64Ki-sample ring here).
    base::MutexLock lock(reg.stats_mu);
    out.requests = reg.requests;
    out.rhs_submitted = reg.rhs_submitted;
    out.batches = reg.batches;
    out.batches_failed = reg.batches_failed;
    out.rhs_solved = reg.rhs_solved;
    out.coalesced_rhs = reg.coalesced_rhs;
    out.shrunk_batches = reg.shrunk_batches;
    out.budget_throttled_batches = reg.budget_throttled_batches;
    out.expanded_batches = reg.expanded_batches;
    out.pinned_batches = reg.pinned_batches;
    out.pinned_threads = reg.pinned_threads;
    out.migrated_threads = reg.migrated_threads;
    out.slab_batches = reg.slab_batches;
    out.tiled_batches = reg.tiled_batches;
    out.seeded_team = reg.seeded_team;
    out.slo_steps = reg.slo_steps;
    out.ssp_batches = reg.ssp_batches;
    out.refine_iterations = reg.refine_iterations;
    out.ssp_fallbacks = reg.ssp_fallbacks;
    out.last_residual = reg.last_residual;
    out.rejected_requests = reg.rejected_requests;
    out.expired_requests = reg.expired_requests;
    out.degraded_batches = reg.degraded_batches;
    out.busy_seconds = reg.busy_seconds;
    out.pack_seconds = reg.pack_seconds;
    out.unpack_seconds = reg.unpack_seconds;
    if (reg.batches > 0) {
      out.mean_team_size = static_cast<double>(reg.team_size_accum) /
                           static_cast<double>(reg.batches);
    }
    if (reg.batches > reg.batches_failed) {
      // Mean realized batch size over *successful* batches only —
      // rhs_solved excludes failed batches, so the populations must match.
      out.mean_batch_rhs =
          static_cast<double>(reg.rhs_solved) /
          static_cast<double>(reg.batches - reg.batches_failed);
    }
    if (reg.saw_submit && reg.saw_complete) {
      const double window =
          std::chrono::duration<double>(reg.last_complete - reg.first_submit)
              .count();
      if (window > 0.0) {
        out.throughput_rhs_per_second =
            static_cast<double>(reg.rhs_solved) / window;
      }
    }
  }
  if (reg.latency_hist->count() > 0) {
    out.latency_p50_seconds = reg.latency_hist->quantile(0.5);
    out.latency_p95_seconds = reg.latency_hist->quantile(0.95);
  }
  return out;
}

std::vector<TraceSummaryRow> SolverEngine::traceSummary(SolverId id) const {
  Registered& reg = registered(id);
  std::vector<TraceSummaryRow> out;
  base::MutexLock lock(reg.stats_mu);
  out.reserve(reg.trace_rows.size());
  for (const auto& [key, accum] : reg.trace_rows) {
    TraceSummaryRow row;
    row.team = key.first;
    row.storage = static_cast<exec::StorageKind>(key.second);
    row.batches = accum.batches;
    row.thread_steps = accum.thread_steps;
    row.compute_seconds = static_cast<double>(accum.compute_ns) * 1e-9;
    row.wait_seconds = static_cast<double>(accum.wait_ns) * 1e-9;
    row.max_wait_seconds = static_cast<double>(accum.max_wait_ns) * 1e-9;
    row.pack_seconds = accum.pack_seconds;
    row.unpack_seconds = accum.unpack_seconds;
    const double total = row.compute_seconds + row.wait_seconds;
    row.wait_fraction = total > 0.0 ? row.wait_seconds / total : 0.0;
    out.push_back(row);
  }
  return out;  // std::map iteration: already sorted by (team, storage)
}

const exec::TriangularSolver& SolverEngine::solver(SolverId id) const {
  return *registered(id).solver;
}

}  // namespace sts::engine
