#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/storage.hpp"
#include "sparse/types.hpp"

/// \file types.hpp
/// Shared vocabulary of the serving subsystem: solver handles, engine
/// configuration, the internal request record, and the per-solver serving
/// statistics snapshot.

namespace sts::engine {

/// Handle returned by SolverEngine::registerSolver; indexes are dense and
/// never recycled for the engine's lifetime.
using SolverId = std::uint32_t;

/// Latency/accuracy service tier of every batch the engine executes.
///
/// kExact runs the exact executors: results are bitwise-deterministic
/// solutions of T x = b — the contract direct solves need. kBoundedStale
/// runs the SSP executor (exec/ssp.hpp): sweeps barrier only every
/// `stale_supersteps + 1` supersteps and residual-checked refinement
/// restores ||b - T x||_inf <= `stale_tolerance` (exact fallback past
/// `stale_max_refine` sweeps) — the contract preconditioner applications
/// need (examples/iccg_preconditioner), where the surrounding Krylov
/// iteration already absorbs a bounded residual. With stale_supersteps ==
/// 0 the tier degenerates to the exact walk bitwise.
enum class ServiceTier {
  kExact,
  kBoundedStale,
};

inline const char* serviceTierName(ServiceTier tier) {
  return tier == ServiceTier::kExact ? "exact" : "bounded-stale";
}

/// Scheduling class of a submission (SubmitOptions::priority).
///
/// kLatency requests are interactive traffic: they jump the queue ahead of
/// throughput work, are never coalesced behind a throughput batch, and —
/// under admission control — are the last class the overload ladder
/// rejects. kThroughput (the default, and the class of every legacy
/// submit() call) is bulk work that tolerates queueing: it ages into
/// batches under latency pressure (the starvation bump) and is shed first
/// when the engine saturates.
enum class RequestPriority {
  kThroughput,
  kLatency,
};

inline const char* requestPriorityName(RequestPriority priority) {
  return priority == RequestPriority::kLatency ? "latency" : "throughput";
}

/// Per-submission lifecycle knobs (the extended submit()/submitMulti()
/// overloads; the legacy overloads behave as all-defaults). Durations are
/// relative to the submit call; 0 disables the respective deadline.
struct SubmitOptions {
  RequestPriority priority = RequestPriority::kThroughput;
  /// End-to-end budget: a request not yet COMMITTED to a batch when this
  /// expires is lazily dropped at the next queue pop and its future
  /// resolves with EngineError{kExpired}. 0 = no deadline. (Once a worker
  /// commits a batch it always finishes it — the executor is not
  /// preemptible — so expiry is an admission-side contract.)
  double deadline_seconds = 0.0;
  /// Queue-wait-only budget, tighter than `deadline_seconds` for requests
  /// that would rather fail fast than serve a stale answer. 0 = none.
  double max_queue_wait_seconds = 0.0;
};

/// Why a request's future was resolved exceptionally (EngineError::code).
enum class EngineErrorCode {
  kRejected,  ///< admission control refused it (queue full / ladder top)
  kExpired,   ///< deadline or max_queue_wait elapsed while queued
  kShutdown,  ///< the engine stopped before the request could run
};

inline const char* engineErrorCodeName(EngineErrorCode code) {
  switch (code) {
    case EngineErrorCode::kRejected: return "rejected";
    case EngineErrorCode::kExpired: return "expired";
    case EngineErrorCode::kShutdown: return "shutdown";
  }
  return "unknown";
}

/// The typed error every non-completed request resolves with — futures
/// NEVER dangle unresolved, whatever happens to the engine (the lifecycle
/// contract, docs/ROBUSTNESS.md). Derives from std::runtime_error so
/// pre-existing catch sites keep working.
class EngineError : public std::runtime_error {
 public:
  EngineError(EngineErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  EngineErrorCode code() const { return code_; }

 private:
  EngineErrorCode code_;
};

/// How (whether) the overload ladder degraded one response — attached to
/// every SolveResponse so clients can see the precision they were served
/// (precision-shedding is visible, never silent).
struct DegradeInfo {
  /// The tier the batch actually ran (kBoundedStale when the ladder was
  /// engaged, even on a kExact-configured engine).
  ServiceTier tier = ServiceTier::kExact;
  /// Effective SSP staleness of the batch (0 on the exact tier).
  sts::index_t staleness = 0;
  /// The ladder rung at execution: 0 = idle (configured behavior),
  /// 1..overload_max_rung-1 = bounded-stale precision shedding.
  int rung = 0;
  /// Final ||b - T x||_inf of the refinement loop (0 on exact solves).
  double residual = 0.0;
  /// The tolerance the refinement was held to (0 on exact solves).
  double tolerance = 0.0;
  /// Convenience: rung > 0, i.e. this response was degraded by overload
  /// rather than by the engine's configured tier.
  bool degraded = false;
};

/// The extended-submit result: the solution plus its degradation record.
struct SolveResponse {
  std::vector<double> x;
  DegradeInfo degrade;
};

/// ## How the adaptive options interact
///
/// `fold_policy` / `storage` (exec::SolverOptions), `target_p95`,
/// `core_budget`, `core_set`, and `pin_threads` compose; each owns one
/// decision:
///
/// | Option                 | Decides                 | Interaction |
/// |------------------------|-------------------------|-------------|
/// | `elastic`              | whether team sizes adapt at all | master switch; `team_size` is the base width it adapts from |
/// | `target_p95`           | HOW the team size is chosen | 0: depth-only rule (deep queue divides base across workers); >0: per-solver SLO controller (grow on p95 violation, shrink under slack + backlog), cold-started from the analyze-time cost model (`seeded_team`). Requires `elastic`. |
/// | `core_budget`          | HOW MANY cores all batches may hold in aggregate | the chosen (desired) team is capped by the grant; grants below desire count as `budget_throttled_batches`. 0 = unlimited. |
/// | `core_set`             | WHICH cores back the budget | non-empty switches CoreBudget to core-set mode: grants are explicit disjoint CPU ids; `core_budget` > 0 additionally truncates the set to its first `core_budget` ids |
/// | `pin_threads`          | WHERE the granted team executes | pins each team member to one leased id (auto-detects `core_set` from the process mask when empty); placement only — results stay bitwise identical |
/// | `fold_policy` (solver) | HOW ranks map onto the granted width | kModulo / kBinPack; any width from the rules above executes losslessly |
/// | `storage` (engine or solver) | WHAT memory layout the hot loop walks | engine `storage` overrides each solver's `SolverOptions::storage` when set; kSlab streams per-(team, policy) thread-local packed records, kSharedCsr walks the analyzed CSR. Layout only — results stay bitwise identical |
/// | `tiled`                | HOW multi-RHS batches are laid out | on (default): coalesced batches pack straight into the solver's cache-sized column tiles (exec/tile.hpp) and run the tiled executor path — register-blocked CSR kernels, L2-resident RHS. off: the row-major solveMultiRhs path. Layout only — results stay bitwise identical; composes with every row above (`storage` picks the matrix side, `tiled` the RHS side) |
/// | `tier`                 | WHICH numerical contract batches satisfy | kExact (default): bitwise-deterministic direct solves. kBoundedStale: SSP sweeps with `stale_supersteps` relaxed barriers + residual-checked refinement to `stale_tolerance` (cap `stale_max_refine`, then exact fallback). Composes with every row above — elasticity, budget, pinning, and storage apply unchanged; `tiled` applies to the exact tier only (bounded-stale batches run the row-major SSP path). Refinement counts/residuals land in SolverServingStats and the metrics registry |
/// | `max_queue_depth`      | HOW MUCH backlog the queue may hold | 0 (default): unbounded (every accepted submission queues). >0: submissions beyond the bound resolve their future with `EngineError{kRejected}` — bounded memory and bounded queue delay instead of queue collapse. Composes with every row above; rejection happens before any adaptive machinery sees the request |
/// | `overload_control`     | WHETHER the degradation ladder runs | off (default): the configured `tier` serves every batch, nothing is rejected by pressure. on: an `OverloadController` (hysteresis like the SLO controller) estimates queue delay from depth x the registry's batch-latency histogram (and the oldest queued wait) and walks exact -> bounded-stale precision shedding (staleness/tolerance raised per rung, surfaced per-response in `DegradeInfo`) -> reject new throughput-class work at the top rung. Composes with `tier`: a kBoundedStale engine degrades FROM its configured staleness. Every transition is a trace instant + registry counters (`sts.engine.admitted/degraded/rejected/expired`) |
/// | `trace`                | WHETHER batches attribute compute vs. wait | on (default): every batch arms a per-solve obs::SolveTrace so `traceSummary()` aggregates per-superstep compute/wait per (team, storage); executor threads batch the accounting locally and flush once per region. off: attribution idle (executors see a null sink — one branch per call site). Independent of the process-wide obs::TraceSession (Perfetto spans), which any thread can start regardless. Orthogonal to all rows above — tracing never changes results (bitwise) |
///
/// Pipeline per batch: elastic policy picks a DESIRED width → CoreBudget
/// grants an actual width (and, in core-set mode, which cores) →
/// `fold_policy` folds the schedule onto that width → `storage` picks the
/// matrix layout the folded plan walks → `pin_threads` nails each team
/// member to its leased core. Every stage is bitwise-lossless, so all the
/// options can be toggled freely in production.
struct EngineOptions {
  /// Persistent dispatcher threads executing batches. Each concurrent
  /// batch additionally spins up the solver's own OpenMP team, so the
  /// total thread footprint is num_workers * solver num_threads.
  int num_workers = 2;
  /// Maximum right-hand sides coalesced into one solveMultiRhs call. The
  /// batch amortizes every superstep barrier across its columns (the
  /// Table 7.7 block-parallel effect applied to serving).
  sts::index_t max_batch = 8;
  /// Coalesce compatible queued single-RHS requests into batches. When
  /// false every request executes alone (useful to force per-request
  /// concurrency in stress tests).
  bool coalesce = true;
  /// Start with dispatch paused; submissions queue up until resume().
  /// Lets benchmarks and tests stage a backlog deterministically.
  bool start_paused = false;

  /// Per-batch OpenMP team size (clamped to the solver's analyzed width).
  /// 0 = the solver's defaultTeam(). Without `elastic` this pins every
  /// batch (a benchmarking knob); with `elastic` it sets the base width
  /// the policy shrinks from under load.
  int team_size = 0;
  /// Load-adaptive team sizing: a deep queue trades per-solve parallelism
  /// for cross-solve concurrency — batches run on shrunk teams (the base
  /// width divided across the workers) so more of them execute at once; a
  /// shallow queue keeps full-width solves for minimum latency. Schedule
  /// folding makes every team choice bitwise-lossless. With `target_p95`
  /// set the depth-only rule is replaced by the SLO-driven controller.
  bool elastic = false;
  /// Smallest team the elastic policy may choose (>= 1; values above the
  /// base width are capped by it).
  int elastic_min_team = 1;
  /// Queue depth (requests still pending at batch pop) at or above which
  /// the elastic policy shrinks teams. 0 = num_workers.
  std::size_t elastic_deep_queue = 0;
  /// Per-solver p95 latency target in seconds for the SLO-driven elastic
  /// controller (requires `elastic`; 0 keeps the depth-only policy). The
  /// controller watches a sliding window of recent request latencies per
  /// solver: while the window p95 violates the target it grows teams
  /// toward the base width (spend cores on latency); while it is under
  /// target AND the queue is deep it shrinks them toward
  /// `elastic_min_team` (spend cores on cross-solve concurrency instead).
  double target_p95 = 0.0;
  /// Aggregate core budget shared by ALL workers and solvers: the sum of
  /// concurrently granted per-batch team sizes never exceeds it, so
  /// concurrent batches cannot oversubscribe the machine no matter how
  /// many workers or solvers are active. Workers lease cores from the
  /// shared CoreBudget before each batch (blocking when exhausted) and run
  /// on exactly the granted width. 0 = unlimited (PR 2 behavior).
  int core_budget = 0;
  /// Explicit logical CPU ids backing the core budget. Non-empty switches
  /// engine::CoreBudget into core-set mode: every batch's lease names
  /// concrete, mutually disjoint CPU ids instead of an anonymous count
  /// (ids must be unique and >= 0; `core_budget` > 0 truncates the set to
  /// its first `core_budget` ids). Empty with `pin_threads` set: the set
  /// is auto-detected from the process affinity mask (sched_getaffinity).
  /// Empty without `pin_threads`: counting mode (PR 3 behavior).
  std::vector<int> core_set = {};
  /// Pin each batch's OpenMP team members to the batch's leased core ids
  /// (one stable core per member, exec::ScopedPin inside the solve region,
  /// previous mask restored on exit) so concurrent batches run on
  /// non-overlapping cores and folded ranks stop migrating across caches.
  /// Requires a core set (explicit or auto-detected) and platform affinity
  /// support (STS_HAS_AFFINITY); silently runs unpinned otherwise — the
  /// portable fallback. Placement only: results are bitwise identical to
  /// unpinned solves. Pin outcomes are reported in SolverServingStats.
  bool pin_threads = false;
  /// Matrix layout override for every batch the engine executes: unset
  /// (default) uses each solver's own SolverOptions::storage; kSlab forces
  /// the thread-local packed-record walk (exec/storage.hpp), kSharedCsr
  /// forces the shared-CSR walk. Purely a layout choice — batch results
  /// are bitwise identical either way; batches served from slabs are
  /// counted in SolverServingStats::slab_batches.
  std::optional<sts::exec::StorageKind> storage = std::nullopt;
  /// Couple the coalescing budget to the elastic policy: while the queue
  /// is deep (teams shrink) the effective batch cap rises toward
  /// 2 * max_batch — deeper amortization exactly when backlog can feed
  /// it — and a shallow queue restores `max_batch`. Active only with
  /// `elastic`; off by default because it doubles the per-batch staging
  /// memory and coalesced-request latency envelope `max_batch` implies.
  bool adaptive_batch = false;
  /// Execute multi-RHS batches through the tiled path: requests are packed
  /// DIRECTLY into the solver's cache-sized column tiles (exec/tile.hpp,
  /// permutation fused into the pack — no intermediate row-major staging)
  /// and solved via TriangularSolver::solveTiles, then unpacked per tile
  /// into the per-request result vectors. Single-RHS batches are unaffected
  /// (one column is its own tile). Pure layout choice — bitwise identical
  /// results; tiled batches count in SolverServingStats::tiled_batches and
  /// the pack/unpack passes in pack_seconds / unpack_seconds.
  bool tiled = true;
  /// The numerical contract every batch satisfies (see ServiceTier): the
  /// exact executors, or the bounded-stale SSP path with the three
  /// `stale_*` knobs below. A per-engine choice — register the same
  /// analyzed solver with two engines to serve both tiers.
  ServiceTier tier = ServiceTier::kExact;
  /// kBoundedStale only: supersteps a stale read may lag (SSP chunk width
  /// is stale_supersteps + 1; 0 = exact walk, bitwise).
  sts::index_t stale_supersteps = 1;
  /// kBoundedStale only: absolute bound on ||b - T x||_inf the refinement
  /// loop must reach.
  double stale_tolerance = 1e-8;
  /// kBoundedStale only: refinement sweeps before the exact fallback.
  int stale_max_refine = 20;
  /// Bound on queued (not yet popped) requests; pushes beyond it resolve
  /// the future with EngineError{kRejected}. 0 = unbounded (legacy).
  std::size_t max_queue_depth = 0;
  /// Master switch of the admission-control + degradation ladder (see the
  /// option table row above). Off by default: the ladder never moves and
  /// nothing is rejected by pressure.
  bool overload_control = false;
  /// Ladder rung r is appropriate while the estimated queue delay sits in
  /// [r, r+1) x this target (seconds). Smaller = the ladder engages
  /// earlier. Must be > 0 when `overload_control` is set.
  double overload_target_delay = 0.05;
  /// Hysteresis band on the way DOWN the ladder (in target-delay units):
  /// the rung only steps down once pressure clears the current rung by
  /// this margin, so the ladder cannot dither at a rung boundary — the
  /// same asymmetry as the SLO controller's deadband.
  double overload_hysteresis = 0.5;
  /// Top of the ladder: rungs 1..overload_max_rung-1 shed precision
  /// (bounded-stale with staleness raised by the rung); at the top rung
  /// new throughput-class submissions are rejected (latency-class work is
  /// still admitted). Must be >= 1.
  int overload_max_rung = 3;
  /// Tolerance multiplier per ladder rung: rung r serves at
  /// stale_tolerance x growth^r. The default 1.0 keeps the configured
  /// tolerance at every rung (the refinement loop simply works harder), so
  /// degraded residuals always stay <= stale_tolerance — raise it only
  /// when refinement itself is the bottleneck under overload.
  double overload_tolerance_growth = 1.0;
  /// Arm per-batch compute-vs-wait attribution (obs::SolveTrace on the
  /// leased context): `traceSummary()` then reports per-superstep compute
  /// and barrier/p2p-wait time per (team, storage) combination. The cost
  /// is one branch per superstep per executor thread plus two atomic adds
  /// per thread per batch — on by default. Off makes executors see a null
  /// sink. Orthogonal to the process-wide obs::TraceSession; disabling
  /// `trace` does not stop session spans, and neither changes results.
  bool trace = true;
};

/// One queued solve. `b` is row-major n x nrhs in the ORIGINAL row
/// ordering; the fulfilled future carries x in the same layout. Exactly
/// one of the two promises is armed: the legacy vector promise for the
/// plain submit() overloads, the SolveResponse promise (extended == true)
/// for the SubmitOptions overloads — either way the engine resolves it
/// exactly once (value, or a typed EngineError / solve exception).
struct SolveRequest {
  SolverId solver = 0;
  sts::index_t nrhs = 1;
  std::vector<double> b;
  std::promise<std::vector<double>> promise;
  std::chrono::steady_clock::time_point submitted{};
  RequestPriority priority = RequestPriority::kThroughput;
  /// Absolute lazy-expiry point: min over the submission's deadline and
  /// max-queue-wait budgets (time_point::max() = never). A request still
  /// queued past this resolves with EngineError{kExpired} at the next pop.
  std::chrono::steady_clock::time_point expires_at =
      std::chrono::steady_clock::time_point::max();
  bool extended = false;
  std::promise<SolveResponse> promise_ex;

  /// Resolve whichever promise is armed with a success value.
  void resolve(std::vector<double>&& x, const DegradeInfo& degrade) {
    if (extended) {
      promise_ex.set_value(SolveResponse{std::move(x), degrade});
    } else {
      promise.set_value(std::move(x));
    }
  }
  /// Resolve whichever promise is armed with an exception.
  void fail(std::exception_ptr error) {
    if (extended) {
      promise_ex.set_exception(std::move(error));
    } else {
      promise.set_exception(std::move(error));
    }
  }
};

/// Per-solver serving statistics (SolverEngine::stats snapshot).
struct SolverServingStats {
  std::uint64_t requests = 0;        ///< submissions accepted
  std::uint64_t rhs_submitted = 0;   ///< total RHS columns submitted
  std::uint64_t batches = 0;         ///< executor invocations
  std::uint64_t batches_failed = 0;  ///< invocations that threw
  std::uint64_t rhs_solved = 0;      ///< total RHS columns completed
  double mean_batch_rhs = 0.0;       ///< rhs_solved / successful batches
  std::uint64_t coalesced_rhs = 0;   ///< RHS solved in multi-request batches
  double busy_seconds = 0.0;         ///< summed batch execution time
  /// Batches executed on a team smaller than the elastic base width (the
  /// adaptive policies shrink, and a CoreBudget grant below the base also
  /// counts; a fixed team_size without contention is the base itself).
  std::uint64_t shrunk_batches = 0;
  double mean_team_size = 0.0;       ///< average OpenMP team per batch
  /// Batches whose CoreBudget grant came back smaller than the desired
  /// team (budget contention; 0 when core_budget is unlimited).
  std::uint64_t budget_throttled_batches = 0;
  /// Batches popped beyond max_batch columns by the adaptive coalescing
  /// cap (EngineOptions::adaptive_batch under a deep queue).
  std::uint64_t expanded_batches = 0;
  /// Batches executed with their OpenMP team pinned to the leased core set
  /// (EngineOptions::pin_threads with affinity support; 0 otherwise).
  std::uint64_t pinned_batches = 0;
  /// Team members successfully pinned to a leased core, summed over
  /// pinned batches.
  std::uint64_t pinned_threads = 0;
  /// Pinned members found executing OUTSIDE their batch's leased set when
  /// the pin was taken — OS migrations the pin corrected (the locality
  /// leak of unpinned elastic serving, made visible).
  std::uint64_t migrated_threads = 0;
  /// Batches executed on the slab (thread-local packed) storage layout —
  /// EngineOptions::storage override or the solver's own default.
  std::uint64_t slab_batches = 0;
  /// Multi-RHS batches executed through the tiled layout
  /// (EngineOptions::tiled): packed straight into column tiles and solved
  /// via solveTiles.
  std::uint64_t tiled_batches = 0;
  /// Summed wall time spent packing request vectors into the batch layout
  /// (row-major or tiled) before the solve, per solver.
  double pack_seconds = 0.0;
  /// Summed wall time spent unpacking the solved batch back into
  /// per-request result vectors.
  double unpack_seconds = 0.0;
  /// The SLO controller's cold-start team: seeded at registerSolver time
  /// from the analyze-time cost model (a probe solve scaled by folded
  /// makespan ratios) so the first window is not blindly served at the
  /// base width when the target leaves room to shrink. 0 = unseeded (no
  /// SLO target, or the model kept the base width).
  int seeded_team = 0;
  /// SLO controller actuations: decisions that actually CHANGED the team
  /// width (holds — at the base, inside the deadband, or under slack with
  /// a shallow queue — do not count). Each actuation is also emitted as an
  /// `slo_step` trace instant when a TraceSession is active.
  std::uint64_t slo_steps = 0;
  /// Batches served through the bounded-stale tier (EngineOptions::tier ==
  /// ServiceTier::kBoundedStale; 0 on exact-tier engines).
  std::uint64_t ssp_batches = 0;
  /// Refinement sweeps summed over bounded-stale batches (also a registry
  /// histogram, `sts.solver<id>.refine_iterations`); 0 sweeps means the
  /// first SSP sweep already met the tolerance — the staleness-0 bitwise
  /// regime always lands here.
  std::uint64_t refine_iterations = 0;
  /// Bounded-stale batches whose refinement cap fired the exact fallback.
  std::uint64_t ssp_fallbacks = 0;
  /// Final ||b - T x||_inf of the most recent bounded-stale batch.
  double last_residual = 0.0;
  /// Submissions refused by admission control (bounded queue full, or the
  /// overload ladder at its top rung for throughput-class work). Their
  /// futures resolved with EngineError{kRejected}.
  std::uint64_t rejected_requests = 0;
  /// Requests lazily dropped at queue pop because their deadline or
  /// max-queue-wait budget elapsed (EngineError{kExpired}).
  std::uint64_t expired_requests = 0;
  /// Batches served at an overload-ladder rung > 0 (precision shed:
  /// bounded-stale with raised staleness; DegradeInfo on every response).
  std::uint64_t degraded_batches = 0;
  /// Latency quantiles over every completion, from the registry's
  /// log-bucketed histogram (<= ~9% relative bucket error — see
  /// obs/registry.hpp; prior PRs computed them exactly over a 64Ki-sample
  /// window).
  double latency_p50_seconds = 0.0;  ///< request submit -> completion
  double latency_p95_seconds = 0.0;
  /// rhs_solved / (last completion - first submission); 0 until the first
  /// batch completes.
  double throughput_rhs_per_second = 0.0;
};

/// One (team, storage) attribution row of SolverEngine::traceSummary():
/// where that configuration's batches spent their executor time, split
/// into per-superstep compute and synchronization wait (BSP barrier
/// crossings + P2P dependency spins) as measured by the per-thread
/// StepTracers. Wait fraction is the paper's Table 7.2 axis — barrier
/// overhead share — observable on production solves.
struct TraceSummaryRow {
  int team = 0;  ///< granted OpenMP team width of these batches
  sts::exec::StorageKind storage = sts::exec::StorageKind::kSharedCsr;
  std::uint64_t batches = 0;       ///< batches aggregated into this row
  std::uint64_t thread_steps = 0;  ///< (superstep, thread) pairs executed
  double compute_seconds = 0.0;    ///< summed per-thread compute time
  double wait_seconds = 0.0;       ///< summed barrier/p2p wait time
  /// Engine-side RHS staging cost of these batches (the pack into the
  /// batch layout and the unpack back into per-request vectors) — the copy
  /// overhead the tiled direct-pack path exists to shrink.
  double pack_seconds = 0.0;
  double unpack_seconds = 0.0;
  /// Longest single barrier/p2p wait any thread saw (straggler signal).
  double max_wait_seconds = 0.0;
  /// wait / (compute + wait); 0 when nothing was measured.
  double wait_fraction = 0.0;
};

}  // namespace sts::engine
