#include "baselines/hdagg.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "dag/wavefronts.hpp"

namespace sts::baselines {

namespace {

using dag::weight_t;

/// Union-find over the vertices of the current window, with epoch-stamped
/// lazy initialization so windows can restart in O(1). Union by weight,
/// no path compression (find is O(log n) by the weight-balancing rank).
class WindowUnionFind {
 public:
  explicit WindowUnionFind(const Dag& dag)
      : dag_(dag),
        parent_(static_cast<size_t>(dag.numVertices())),
        weight_(static_cast<size_t>(dag.numVertices())),
        stamp_(static_cast<size_t>(dag.numVertices()), 0) {}

  void newWindow() { ++epoch_; }

  void init(index_t v) {
    parent_[static_cast<size_t>(v)] = v;
    weight_[static_cast<size_t>(v)] = dag_.weight(v);
    stamp_[static_cast<size_t>(v)] = epoch_;
  }

  bool inWindow(index_t v) const {
    return stamp_[static_cast<size_t>(v)] == epoch_;
  }

  index_t find(index_t v) const {
    while (parent_[static_cast<size_t>(v)] != v) {
      v = parent_[static_cast<size_t>(v)];
    }
    return v;
  }

  void unite(index_t a, index_t b) {
    index_t ra = find(a);
    index_t rb = find(b);
    if (ra == rb) return;
    if (weight_[static_cast<size_t>(ra)] < weight_[static_cast<size_t>(rb)]) {
      std::swap(ra, rb);
    }
    parent_[static_cast<size_t>(rb)] = ra;
    weight_[static_cast<size_t>(ra)] += weight_[static_cast<size_t>(rb)];
  }

  weight_t rootWeight(index_t root) const {
    return weight_[static_cast<size_t>(root)];
  }

 private:
  const Dag& dag_;
  std::vector<index_t> parent_;
  std::vector<weight_t> weight_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
};

/// LPT packing of component weights onto cores; returns max core load and
/// fills `core_of_root`.
weight_t lptPack(const std::vector<std::pair<weight_t, index_t>>& components,
                 int num_cores, std::vector<int>* core_of_root_out,
                 std::vector<index_t>* roots_out) {
  // components: (weight, root), to be sorted descending by weight.
  using Slot = std::pair<weight_t, int>;  // (load, core)
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> loads;
  for (int p = 0; p < num_cores; ++p) loads.emplace(0, p);
  weight_t max_load = 0;
  for (const auto& [w, root] : components) {
    auto [load, p] = loads.top();
    loads.pop();
    load += w;
    loads.emplace(load, p);
    max_load = std::max(max_load, load);
    if (core_of_root_out) {
      core_of_root_out->push_back(p);
      roots_out->push_back(root);
    }
  }
  return max_load;
}

Schedule hdaggOnDag(const Dag& dag, const HdaggOptions& opts) {
  const index_t n = dag.numVertices();
  const dag::Wavefronts wf = dag::computeWavefronts(dag);

  std::vector<int> core(static_cast<size_t>(n), 0);
  std::vector<index_t> superstep(static_cast<size_t>(n), 0);

  WindowUnionFind uf(dag);
  std::vector<index_t> window_vertices;
  std::vector<int> good_core(static_cast<size_t>(n), 0);  // last good packing
  std::vector<std::pair<weight_t, index_t>> components;
  std::vector<int> core_of_root;
  std::vector<index_t> roots;

  index_t current_superstep = 0;
  index_t a = 0;  // first level of the current window
  while (a < wf.num_levels) {
    uf.newWindow();
    window_vertices.clear();
    index_t b = a;
    while (b < wf.num_levels) {
      // Tentatively add level b.
      const auto level_verts = wf.levelVertices(b);
      for (const index_t v : level_verts) uf.init(v);
      for (const index_t v : level_verts) {
        for (const index_t u : dag.parents(v)) {
          if (uf.inWindow(u)) uf.unite(v, u);
        }
      }
      for (const index_t v : level_verts) window_vertices.push_back(v);

      // Pack the window's components.
      components.clear();
      weight_t total = 0;
      for (const index_t v : window_vertices) {
        if (uf.find(v) == v) {
          components.emplace_back(uf.rootWeight(v), v);
          total += uf.rootWeight(v);
        }
      }
      std::sort(components.begin(), components.end(),
                [](const auto& x, const auto& y) { return x.first > y.first; });
      core_of_root.clear();
      roots.clear();
      const weight_t max_load =
          lptPack(components, opts.num_cores, &core_of_root, &roots);
      const double ideal =
          static_cast<double>(total) / static_cast<double>(opts.num_cores);
      const bool balanced =
          static_cast<double>(max_load) <= opts.imbalance_theta * ideal ||
          b == a;  // a single wavefront is always accepted
      if (!balanced) {
        // Roll the window back to [a, b): drop level b's vertices.
        window_vertices.resize(window_vertices.size() - level_verts.size());
        break;
      }
      // Record the packing as the last good assignment: mark the core on
      // each root, then propagate to members via find(). Roots can change
      // as levels merge, so all window vertices are refreshed.
      for (size_t c = 0; c < roots.size(); ++c) {
        good_core[static_cast<size_t>(roots[c])] = core_of_root[c];
      }
      for (const index_t v : window_vertices) {
        good_core[static_cast<size_t>(v)] =
            good_core[static_cast<size_t>(uf.find(v))];
      }
      ++b;
    }
    // Emit [a, b) using the last good packing. b == a cannot happen: the
    // single-level window is always accepted, so b >= a+1.
    for (const index_t v : window_vertices) {
      core[static_cast<size_t>(v)] = good_core[static_cast<size_t>(v)];
      superstep[static_cast<size_t>(v)] = current_superstep;
    }
    ++current_superstep;
    a = b;
  }
  return Schedule::fromAssignment(dag, opts.num_cores, core, superstep);
}

}  // namespace

Schedule hdaggSchedule(const Dag& dag, const HdaggOptions& opts) {
  if (dag.numVertices() == 0) {
    return Schedule(0, opts.num_cores, 0, {}, {}, {},
                    std::vector<sts::offset_t>{0});
  }
  if (!opts.coarsen) return hdaggOnDag(dag, opts);
  const core::Partition partition = core::funnelPartition(dag, opts.funnel);
  const Dag coarse = core::coarsen(dag, partition);
  const Schedule coarse_schedule = hdaggOnDag(coarse, opts);
  return core::pullBackSchedule(dag, partition, coarse_schedule);
}

}  // namespace sts::baselines
