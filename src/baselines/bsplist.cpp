#include "baselines/bsplist.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace sts::baselines {

std::vector<index_t> computeBottomLevels(const Dag& dag) {
  const index_t n = dag.numVertices();
  std::vector<index_t> bottom(static_cast<size_t>(n), 1);
  std::vector<index_t> outdeg(static_cast<size_t>(n));
  std::vector<index_t> queue;
  for (index_t v = 0; v < n; ++v) {
    outdeg[static_cast<size_t>(v)] = dag.outDegree(v);
    if (outdeg[static_cast<size_t>(v)] == 0) queue.push_back(v);
  }
  size_t head = 0;
  while (head < queue.size()) {
    const index_t v = queue[head++];
    for (const index_t u : dag.parents(v)) {
      bottom[static_cast<size_t>(u)] =
          std::max(bottom[static_cast<size_t>(u)],
                   static_cast<index_t>(bottom[static_cast<size_t>(v)] + 1));
      if (--outdeg[static_cast<size_t>(u)] == 0) queue.push_back(u);
    }
  }
  if (head != static_cast<size_t>(n)) {
    throw std::logic_error("computeBottomLevels: graph contains a cycle");
  }
  return bottom;
}

Schedule bspListSchedule(const Dag& dag, const BspListOptions& opts) {
  const index_t n = dag.numVertices();
  if (opts.num_cores <= 0) {
    throw std::invalid_argument("bspListSchedule: num_cores must be positive");
  }
  const std::vector<index_t> bottom = computeBottomLevels(dag);

  std::vector<int> core(static_cast<size_t>(n), 0);
  std::vector<index_t> superstep(static_cast<size_t>(n), 0);
  std::vector<index_t> parents_left(static_cast<size_t>(n));
  std::vector<index_t> ready;
  for (index_t v = 0; v < n; ++v) {
    parents_left[static_cast<size_t>(v)] = dag.inDegree(v);
    if (parents_left[static_cast<size_t>(v)] == 0) ready.push_back(v);
  }

  using Slot = std::pair<dag::weight_t, int>;  // (load, core)
  std::vector<index_t> next_ready;
  index_t s = 0;
  index_t scheduled = 0;
  while (!ready.empty()) {
    // Critical-path priority: deeper bottom level first, then smaller ID.
    std::sort(ready.begin(), ready.end(), [&bottom](index_t a, index_t b) {
      const index_t ba = bottom[static_cast<size_t>(a)];
      const index_t bb = bottom[static_cast<size_t>(b)];
      return ba != bb ? ba > bb : a < b;
    });
    std::priority_queue<Slot, std::vector<Slot>, std::greater<>> loads;
    for (int p = 0; p < opts.num_cores; ++p) loads.emplace(0, p);
    next_ready.clear();
    for (const index_t v : ready) {
      auto [load, p] = loads.top();
      loads.pop();
      loads.emplace(load + dag.weight(v), p);
      core[static_cast<size_t>(v)] = p;
      superstep[static_cast<size_t>(v)] = s;
      ++scheduled;
      for (const index_t u : dag.children(v)) {
        if (--parents_left[static_cast<size_t>(u)] == 0) {
          next_ready.push_back(u);
        }
      }
    }
    ready.swap(next_ready);
    ++s;
  }
  if (scheduled != n) {
    throw std::logic_error("bspListSchedule: graph contains a cycle");
  }
  return Schedule::fromAssignment(dag, opts.num_cores, core, superstep);
}

}  // namespace sts::baselines
