#pragma once

#include "core/schedule.hpp"
#include "dag/dag.hpp"

/// \file wavefront.hpp
/// The classic wavefront (level-set) scheduler [AS89, Sal90]: every
/// wavefront becomes one superstep; within a wavefront the vertices are
/// split into contiguous, weight-balanced chunks, one per core. This is
/// the reference point for the paper's barrier-reduction metric
/// (Table 7.2 counts barriers relative to #wavefronts).

namespace sts::baselines {

using core::Schedule;
using dag::Dag;
using sts::index_t;

struct WavefrontOptions {
  int num_cores = 2;
};

Schedule wavefrontSchedule(const Dag& dag, const WavefrontOptions& opts = {});

/// Splits `vertices` (with weights from `dag`) into `num_cores` contiguous
/// chunks with near-equal weight; returns chunk boundaries
/// (num_cores+1 entries). Shared by the wavefront and SpMP schedulers.
std::vector<size_t> balancedContiguousChunks(const Dag& dag,
                                             std::span<const index_t> vertices,
                                             int num_cores);

}  // namespace sts::baselines
