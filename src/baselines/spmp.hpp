#pragma once

#include "core/schedule.hpp"
#include "dag/dag.hpp"
#include "dag/transitive.hpp"

/// \file spmp.hpp
/// Reimplementation of the SpMP scheduler [PSSD14]: level sets with a
/// weight-balanced contiguous partition of each level across cores, plus an
/// approximate transitive reduction that sparsifies the dependencies the
/// asynchronous executor must wait on. SpMP executes *asynchronously*
/// (point-to-point synchronization, exec/p2p.hpp): a core may run ahead
/// into the next level as soon as its own dependencies are satisfied, which
/// is why the reduced DAG is part of the result.
///
/// Divergence note (DESIGN.md §4): the original SpMP library adds x86
/// intrinsics and NUMA-aware data placement; those are out of scope here
/// (the paper itself omits SpMP on ARM because the implementation is
/// x86-specific).

namespace sts::baselines {

using core::Schedule;
using dag::Dag;
using sts::index_t;

struct SpmpOptions {
  int num_cores = 2;
  /// Apply the "remove long edges in triangles" pass [PSSD14 §2.3].
  bool transitive_reduction = true;
  dag::TransitiveReductionOptions reduction = {};
};

struct SpmpResult {
  /// Level-set schedule (one superstep per wavefront). Used as-is by the
  /// barrier executor; the P2P executor uses it only for the per-core
  /// vertex order.
  Schedule schedule;
  /// DAG after transitive reduction: the P2P executor spin-waits only on
  /// these edges.
  Dag reduced_dag;
  sts::offset_t removed_edges = 0;
};

SpmpResult spmpSchedule(const Dag& dag, const SpmpOptions& opts = {});

}  // namespace sts::baselines
