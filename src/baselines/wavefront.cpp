#include "baselines/wavefront.hpp"

#include "dag/wavefronts.hpp"

namespace sts::baselines {

std::vector<size_t> balancedContiguousChunks(const Dag& dag,
                                             std::span<const index_t> vertices,
                                             int num_cores) {
  using dag::weight_t;
  weight_t total = 0;
  for (const index_t v : vertices) total += dag.weight(v);

  std::vector<size_t> bounds(static_cast<size_t>(num_cores) + 1,
                             vertices.size());
  bounds[0] = 0;
  weight_t prefix = 0;
  int next_cut = 1;
  for (size_t i = 0; i < vertices.size() && next_cut < num_cores; ++i) {
    prefix += dag.weight(vertices[i]);
    while (next_cut < num_cores &&
           prefix >= (total * next_cut) / num_cores) {
      bounds[static_cast<size_t>(next_cut++)] = i + 1;
    }
  }
  return bounds;
}

Schedule wavefrontSchedule(const Dag& dag, const WavefrontOptions& opts) {
  const dag::Wavefronts wf = dag::computeWavefronts(dag);
  const index_t n = dag.numVertices();
  std::vector<int> core(static_cast<size_t>(n), 0);
  std::vector<index_t> superstep(static_cast<size_t>(n), 0);
  for (index_t l = 0; l < wf.num_levels; ++l) {
    const auto verts = wf.levelVertices(l);
    const auto bounds = balancedContiguousChunks(dag, verts, opts.num_cores);
    for (int p = 0; p < opts.num_cores; ++p) {
      for (size_t i = bounds[static_cast<size_t>(p)];
           i < bounds[static_cast<size_t>(p) + 1]; ++i) {
        core[static_cast<size_t>(verts[i])] = p;
        superstep[static_cast<size_t>(verts[i])] = l;
      }
    }
  }
  return Schedule::fromAssignment(dag, opts.num_cores, core, superstep);
}

}  // namespace sts::baselines
