#pragma once

#include "core/schedule.hpp"
#include "dag/dag.hpp"

/// \file bsplist.hpp
/// A BSP list scheduler in the spirit of BSPg [PAKY24] (App. C.1 baseline):
/// each superstep takes the currently-ready vertices, orders them by
/// bottom-level priority (longest path to a sink, descending — the classic
/// critical-path list-scheduling priority), and assigns them to the
/// least-loaded core; a barrier follows. Unlike GrowLocal it neither grows
/// supersteps adaptively nor preserves ID locality, which is exactly the
/// gap the paper measures (8.31x geo-mean, §C.1).

namespace sts::baselines {

using core::Schedule;
using dag::Dag;
using sts::index_t;

struct BspListOptions {
  int num_cores = 2;
};

Schedule bspListSchedule(const Dag& dag, const BspListOptions& opts = {});

/// Bottom levels: length (in vertices) of the longest path from v to any
/// sink, so sinks have bottom level 1. Exposed for tests.
std::vector<index_t> computeBottomLevels(const Dag& dag);

}  // namespace sts::baselines
