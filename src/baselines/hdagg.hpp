#pragma once

#include "core/coarsen.hpp"
#include "core/schedule.hpp"
#include "dag/dag.hpp"

/// \file hdagg.hpp
/// Reimplementation of the HDagg scheduler [ZCL+22]: glue consecutive
/// wavefronts into one superstep for as long as the connected components of
/// the glued window can be packed onto the cores with a balanced workload;
/// then assign whole components to cores (avoiding intra-superstep
/// cross-core edges by construction). HDagg also coarsens the DAG before
/// scheduling; we use the paper's Funnel coarsener, which generalizes
/// HDagg's tree grouping (every in-tree is an in-funnel, §4.2).
///
/// Divergence note (DESIGN.md §4): [ZCL+22] does not fully specify its
/// internal cost thresholds; we use an explicit imbalance bound θ —
/// a window is balanced iff LPT packing of its components achieves
/// max-load ≤ θ · (total/cores). Single-wavefront windows are always
/// accepted so the scheduler cannot get stuck.

namespace sts::baselines {

using core::Schedule;
using dag::Dag;
using sts::index_t;

struct HdaggOptions {
  int num_cores = 2;
  /// Imbalance tolerance θ for accepting a glued window.
  double imbalance_theta = 1.15;
  /// Optionally coarsen with funnels before scheduling. Default OFF: with
  /// the paper's own Funnel coarsener the baseline becomes far stronger
  /// than published HDagg (whose tree aggregation leaves barrier counts at
  /// 1.1-2.4x of the wavefront count, Table 7.2), which would misrepresent
  /// the comparison. Enable to study an HDagg+Funnel hybrid.
  bool coarsen = false;
  core::FunnelOptions funnel;
};

Schedule hdaggSchedule(const Dag& dag, const HdaggOptions& opts = {});

}  // namespace sts::baselines
