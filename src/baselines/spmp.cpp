#include "baselines/spmp.hpp"

#include "baselines/wavefront.hpp"
#include "dag/wavefronts.hpp"

namespace sts::baselines {

SpmpResult spmpSchedule(const Dag& dag, const SpmpOptions& opts) {
  SpmpResult result;
  if (opts.transitive_reduction) {
    auto reduction = dag::approximateTransitiveReduction(dag, opts.reduction);
    result.reduced_dag = std::move(reduction.dag);
    result.removed_edges = reduction.removed_edges;
  } else {
    result.reduced_dag = dag;
  }
  // The level partition itself is the wavefront schedule: contiguous
  // weight-balanced chunks preserve the input ordering's locality, as SpMP
  // does.
  result.schedule =
      wavefrontSchedule(dag, WavefrontOptions{.num_cores = opts.num_cores});
  return result;
}

}  // namespace sts::baselines
