#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace sts::obs {

namespace detail {
std::atomic<bool> g_trace_on{false};
std::atomic<std::uint64_t> g_trace_generation{0};
}  // namespace detail

namespace {

std::size_t roundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// The single active session. Guarded by g_session_mu; the hot path never
/// touches it (it checks g_trace_on and a thread-local generation).
base::Mutex g_session_mu;
std::shared_ptr<TraceSession> g_session  // NOLINT: intentional global
    STS_GUARDED_BY(g_session_mu);

/// Per-thread cache of (session generation -> ring). The shared_ptr keeps
/// the ring alive even if the session is stopped and dropped while this
/// thread still holds a raw pointer between emits.
struct ThreadRingCache {
  std::uint64_t generation = 0;
  std::shared_ptr<TraceRing> ring;
  int tid = -1;
};

ThreadRingCache& threadCache() {
  thread_local ThreadRingCache cache;
  return cache;
}

}  // namespace

// ---------------------------------------------------------------- TraceRing

TraceRing::TraceRing(std::size_t capacity) {
  const std::size_t cap = roundUpPow2(std::max<std::size_t>(capacity, 2));
  slots_.resize(cap);
  mask_ = cap - 1;
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  const std::uint64_t total = emitted();
  const std::size_t cap = capacity();
  const std::uint64_t retained = std::min<std::uint64_t>(total, cap);
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(retained));
  for (std::uint64_t i = total - retained; i < total; ++i) {
    out.push_back(slots_[static_cast<std::size_t>(i) & mask_]);
  }
  return out;
}

// ------------------------------------------------------------- TraceSession

TraceSession::TraceSession(TraceSessionOptions options)
    : options_(options), epoch_ns_(nowNanos()) {
  if (const char* cap = std::getenv("STS_TRACE_RING_CAP")) {
    const long v = std::atol(cap);
    if (v > 0) options_.ring_capacity = static_cast<std::size_t>(v);
  }
}

TraceSession::~TraceSession() { stop(); }

std::shared_ptr<TraceSession> TraceSession::start(TraceSessionOptions options) {
  base::MutexLock lock(g_session_mu);
  if (g_session != nullptr && !g_session->stopped()) return g_session;
  g_session = std::shared_ptr<TraceSession>(new TraceSession(options));
  // Invalidate every thread's cached ring, then open the collection gate.
  detail::g_trace_generation.fetch_add(1, std::memory_order_release);
  detail::g_trace_on.store(true, std::memory_order_release);
  return g_session;
}

std::shared_ptr<TraceSession> TraceSession::current() {
  base::MutexLock lock(g_session_mu);
  return (g_session != nullptr && !g_session->stopped()) ? g_session : nullptr;
}

void TraceSession::stop() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
    return;
  }
  base::MutexLock lock(g_session_mu);
  if (g_session.get() == this) {
    detail::g_trace_on.store(false, std::memory_order_release);
  }
}

std::shared_ptr<TraceRing> TraceSession::registerCurrentThread(int* tid_out) {
  base::MutexLock lock(mu_);
  ThreadSlot slot;
  slot.ring = std::make_shared<TraceRing>(options_.ring_capacity);
  threads_.push_back(slot);
  *tid_out = static_cast<int>(threads_.size()) - 1;
  return threads_.back().ring;
}

void TraceSession::nameCurrentThread(const std::string& name) {
  ThreadRingCache& cache = threadCache();
  const std::uint64_t gen =
      detail::g_trace_generation.load(std::memory_order_acquire);
  if (cache.generation != gen || cache.ring == nullptr) {
    // Force registration so the name has a track to land on.
    if (traceRingSlowPath() == nullptr) return;
  }
  base::MutexLock lock(mu_);
  const std::size_t tid = static_cast<std::size_t>(threadCache().tid);
  if (tid < threads_.size()) threads_[tid].name = name;
}

std::size_t TraceSession::numThreads() const {
  base::MutexLock lock(mu_);
  return threads_.size();
}

std::uint64_t TraceSession::totalEvents() const {
  base::MutexLock lock(mu_);
  std::uint64_t total = 0;
  for (const ThreadSlot& t : threads_) {
    total += std::min<std::uint64_t>(t.ring->emitted(), t.ring->capacity());
  }
  return total;
}

std::uint64_t TraceSession::droppedEvents() const {
  base::MutexLock lock(mu_);
  std::uint64_t total = 0;
  for (const ThreadSlot& t : threads_) total += t.ring->dropped();
  return total;
}

namespace {

void appendJsonEscaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

/// trace_event ts/dur are doubles in microseconds; emit with nanosecond
/// precision (three decimals) so adjacent sub-microsecond supersteps stay
/// ordered in the viewer.
void appendMicros(std::string& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

}  // namespace

std::string TraceSession::toJson() const {
  base::MutexLock lock(mu_);
  std::string out;
  out.reserve(1 << 16);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  std::uint64_t dropped = 0;
  for (std::size_t tid = 0; tid < threads_.size(); ++tid) {
    const ThreadSlot& slot = threads_[tid];
    dropped += slot.ring->dropped();
    if (!slot.name.empty()) {
      if (!first) out += ',';
      first = false;
      out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
      out += std::to_string(tid);
      out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
      appendJsonEscaped(out, slot.name.c_str());
      out += "\"}}";
    }
    for (const TraceEvent& e : slot.ring->snapshot()) {
      if (!first) out += ',';
      first = false;
      out += "{\"ph\":\"";
      out += (e.kind == EventKind::kSpan) ? 'X' : 'i';
      out += "\",\"pid\":1,\"tid\":";
      out += std::to_string(tid);
      out += ",\"cat\":\"";
      appendJsonEscaped(out, e.cat);
      out += "\",\"name\":\"";
      appendJsonEscaped(out, e.name);
      out += "\",\"ts\":";
      appendMicros(out, e.ts_ns >= epoch_ns_ ? e.ts_ns - epoch_ns_ : 0);
      if (e.kind == EventKind::kSpan) {
        out += ",\"dur\":";
        appendMicros(out, e.dur_ns);
      } else {
        out += ",\"s\":\"t\"";
      }
      if (e.arg_key != nullptr || e.arg2_key != nullptr) {
        out += ",\"args\":{";
        bool first_arg = true;
        if (e.arg_key != nullptr) {
          out += '"';
          appendJsonEscaped(out, e.arg_key);
          out += "\":";
          out += std::to_string(e.arg_val);
          first_arg = false;
        }
        if (e.arg2_key != nullptr) {
          if (!first_arg) out += ',';
          out += '"';
          appendJsonEscaped(out, e.arg2_key);
          out += "\":";
          out += std::to_string(e.arg2_val);
        }
        out += '}';
      }
      out += '}';
    }
  }
  out += "],\"otherData\":{\"producer\":\"sts::obs\",\"dropped_events\":";
  out += std::to_string(dropped);
  out += ",\"threads\":";
  out += std::to_string(threads_.size());
  out += "}}";
  return out;
}

bool TraceSession::writeJson(const std::string& path) const {
  const std::string json = toJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = (std::fclose(f) == 0) && written == json.size();
  return ok;
}

// ------------------------------------------------------- emit fast path glue

TraceRing* traceRingSlowPath() {
  ThreadRingCache& cache = threadCache();
  const std::uint64_t gen =
      detail::g_trace_generation.load(std::memory_order_acquire);
  if (cache.generation == gen && cache.ring != nullptr) {
    return cache.ring.get();
  }
  // New session (or first emit from this thread): register under the
  // session lock. Off the solve hot loop — registration happens once per
  // (thread, session).
  std::shared_ptr<TraceSession> session = TraceSession::current();
  if (session == nullptr) return nullptr;
  cache.ring = session->registerCurrentThread(&cache.tid);
  cache.generation = gen;
  return cache.ring.get();
}

}  // namespace sts::obs
