#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/sync.hpp"

/// \file registry.hpp
/// Named-metric registry: counters, gauges and log-bucketed latency
/// histograms, with text and JSON exporters.
///
/// Instruments are allocated once through a `Registry` (name -> instrument,
/// creation is idempotent) and then updated lock-free: counters and gauges
/// are single atomics, histograms are a fixed array of per-bucket atomic
/// counters. Reads (exporters, `SolverEngine::stats()` snapshots) walk the
/// atomics without stopping writers, so a snapshot is per-instrument
/// consistent but not a cross-instrument atomic cut — fine for serving
/// telemetry, by design.
///
/// `Histogram` buckets are logarithmic with 8 sub-buckets per octave
/// (power of two), giving a worst-case relative quantile error of one
/// sub-bucket width, about 9%. That is the standard latency-telemetry
/// trade: fixed 2KiB footprint and O(1) record, any quantile on demand,
/// regardless of how many samples were recorded (the bespoke 64Ki-sample
/// ring this replaces forgot everything past its window).
///
/// There is a process-wide `Registry::global()` for app-level use; the
/// engine deliberately owns a private registry per instance so tests that
/// build and tear down many engines do not cross-contaminate names.

namespace sts::obs {

class Counter {
 public:
  void add(std::uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void inc() { add(1); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-bucketed histogram over positive doubles (latencies in seconds,
/// sizes, ...). 8 sub-buckets per octave across 2^-32 .. 2^31 (504 buckets
/// + 2 overflow ends); values below/above are clamped into the end
/// buckets. record() is two relaxed fetch_adds and a CAS-free sum update.
class Histogram {
 public:
  static constexpr int kSubBuckets = 8;        // per octave, power of two
  static constexpr int kMinExponent = -32;     // 2^-32 s ~ 0.23 ns
  static constexpr int kMaxExponent = 31;      // 2^31 s  ~ 68 years
  static constexpr int kNumBuckets =
      (kMaxExponent - kMinExponent) * kSubBuckets + 2;

  void record(double value) {
    count_.fetch_add(1, std::memory_order_relaxed);
    // Atomic double sum via CAS loop (no std::atomic<double>::fetch_add
    // until C++20 libstdc++ catches up on all targets we build on).
    double seen = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(seen, seen + value,
                                       std::memory_order_relaxed)) {
    }
    buckets_[bucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

  /// Quantile estimate (q in [0,1]): the upper bound of the bucket holding
  /// the q-th sample. Worst-case relative error = one sub-bucket width
  /// (2^(1/8)-1 ~ 9%). Returns 0 when empty.
  double quantile(double q) const;

  /// (upper_bound, count) for every non-empty bucket, ascending.
  std::vector<std::pair<double, std::uint64_t>> nonEmptyBuckets() const;

  /// Bucket index for a value: log2 octave + linear sub-bucket within it.
  static int bucketIndex(double value) {
    if (!(value > 0) || std::isnan(value)) return 0;
    int exp = 0;
    const double frac = std::frexp(value, &exp);  // frac in [0.5, 1)
    // Sub-bucket within the octave [2^(exp-1), 2^exp).
    const int sub = static_cast<int>((frac - 0.5) * 2 * kSubBuckets);
    const int idx = (exp - 1 - kMinExponent) * kSubBuckets +
                    std::min(sub, kSubBuckets - 1) + 1;
    if (idx < 1) return 0;
    if (idx > kNumBuckets - 2) return kNumBuckets - 1;
    return idx;
  }

  /// Upper bound of bucket `idx` (inclusive end of its value range).
  static double bucketUpperBound(int idx);

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
};

/// Name -> instrument map. counter()/gauge()/histogram() are idempotent
/// get-or-create (a mutex guards the map; the returned instruments are
/// updated lock-free). Instruments live as long as the registry.
class Registry {
 public:
  /// The process-wide registry (leaked singleton, safe at exit).
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// `name value` lines, sorted by name; histograms expand to
  /// `name_count`, `name_sum`, `name_p50/p95/p99`.
  std::string renderText() const;
  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":
  /// {name:{count,sum,mean,p50,p95,p99}}}.
  std::string renderJson() const;

 private:
  /// Guards the name->instrument maps only; the instruments themselves are
  /// updated lock-free (atomics), which is why they are *not* GUARDED_BY.
  mutable base::Mutex mu_;
  // std::map: stable iteration order for the exporters, pointer-stable
  // values (unique_ptr) so references survive rehash-free.
  std::map<std::string, std::unique_ptr<Counter>> counters_ STS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ STS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      STS_GUARDED_BY(mu_);
};

}  // namespace sts::obs
