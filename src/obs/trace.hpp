#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/sync.hpp"

/// \file trace.hpp
/// Solve-path tracing: who spent how long where, inside a real solve.
///
/// The engine makes layered runtime decisions — coalescing, fold-policy
/// team sizing, SLO controller steps, core leases and pins, CSR-vs-slab
/// storage — and this header is the substrate that makes every one of
/// them observable on production traffic:
///
///   * `TraceRing` — a per-thread, fixed-capacity ring of fixed-size
///     `TraceEvent` records. Single-writer (the owning thread), relaxed/
///     release atomic cursor, drop-oldest on overflow with the drop count
///     derivable from the cursor. Emitting is a bounded-cost store into
///     memory the thread owns: no locks, no allocation, no syscalls.
///   * `TraceSession` — the process-wide collection switch. While a
///     session is active every instrumented thread lazily registers one
///     ring; `stop()` freezes collection and `toJson()` drains the rings
///     into Chrome/Perfetto `trace_event` JSON (load the file in
///     `chrome://tracing` or https://ui.perfetto.dev).
///   * `STS_TRACE_*` macros — the instrumentation points. Compiled to
///     no-ops under `-DSTS_TRACING=OFF`; when compiled in but no session
///     is active they cost one relaxed atomic load and a branch.
///   * `SolveTrace` / `StepTracer` — the always-available (session or
///     not) per-solve compute-vs-wait attribution the engine aggregates
///     into `SolverEngine::traceSummary()`: each executor thread batches
///     its per-superstep compute and barrier/p2p-wait nanoseconds locally
///     and flushes them into the armed `SolveTrace` once per region.
///
/// ## Event taxonomy (docs/OBSERVABILITY.md has the full table)
///
/// Request lifecycle (category "engine"): `submit` → `queue_wait` →
/// `coalesce` → `lease` → `pack` → `solve` → `unpack` → `batch_done`,
/// plus `pin` instants (one per team member) and `slo_step` controller
/// decisions. Plan construction (category "plan"): `analyze`,
/// `fold_build`, `slab_build`, `seed_probe`. Hot loop (category "exec"):
/// per-superstep `compute` and `barrier_wait` spans per OpenMP thread;
/// `p2p_wait` spans for long cross-thread spins.
///
/// ## Threading contract
///
/// Rings are single-writer. `TraceSession::stop()` only flips the
/// collection switch; draining (`toJson`) must run at quiescence — after
/// in-flight solves completed — or late events may be torn/lost (they are
/// never UB for the writer, but the drained copy of a concurrently
/// overwritten slot is unspecified). The engine's `drain()` provides that
/// quiescence point naturally.

#ifndef STS_TRACING
#define STS_TRACING 1
#endif

namespace sts::obs {

/// Monotonic nanoseconds (steady_clock). All trace timestamps — including
/// ones derived from stored time_points, e.g. request submit times — must
/// come from this clock so spans from different threads align.
inline std::uint64_t nowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// steady_clock time_point -> the nowNanos() timescale.
inline std::uint64_t toNanos(std::chrono::steady_clock::time_point tp) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          tp.time_since_epoch())
          .count());
}

enum class EventKind : std::uint8_t {
  kSpan,     ///< complete span ("ph":"X"), ts + dur
  kInstant,  ///< thread-scoped instant ("ph":"i")
};

/// One fixed-size trace record. Name/category/arg-key strings MUST have
/// static storage duration (string literals): the ring stores the
/// pointers, not copies — that is what keeps emit allocation-free.
struct TraceEvent {
  std::uint64_t ts_ns = 0;   ///< begin, nowNanos() timescale
  std::uint64_t dur_ns = 0;  ///< span duration (0 for instants)
  const char* cat = "";      ///< static string: "engine", "exec", "plan"
  const char* name = "";     ///< static string: event taxonomy name
  const char* arg_key = nullptr;  ///< optional first numeric arg
  std::uint64_t arg_val = 0;
  const char* arg2_key = nullptr;  ///< optional second numeric arg
  std::uint64_t arg2_val = 0;
  EventKind kind = EventKind::kSpan;
};

/// Lock-free single-writer event ring. The writer stores into the slot at
/// `head & mask` then publishes the new head with release order; capacity
/// is rounded up to a power of two. Overflow overwrites the oldest slot
/// (drop-oldest) — `dropped()` reports how many events were lost that way.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Owning-thread only. Bounded cost: one 72-byte store + cursor bump.
  void emit(const TraceEvent& event) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    slots_[static_cast<std::size_t>(head) & mask_] = event;
    head_.store(head + 1, std::memory_order_release);
  }

  std::size_t capacity() const { return mask_ + 1; }
  /// Total events ever emitted (monotonic).
  std::uint64_t emitted() const {
    return head_.load(std::memory_order_acquire);
  }
  /// Events lost to drop-oldest overwrites.
  std::uint64_t dropped() const {
    const std::uint64_t total = emitted();
    return total > capacity() ? total - capacity() : 0;
  }

  /// The retained events, oldest first. Call at quiescence (see the
  /// threading contract above): a concurrent emit may tear the oldest
  /// retained slots.
  std::vector<TraceEvent> snapshot() const;

 private:
  std::vector<TraceEvent> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};
};

struct TraceSessionOptions {
  /// Events retained per thread (rounded up to a power of two). The env
  /// knob STS_TRACE_RING_CAP overrides when set to a positive integer.
  std::size_t ring_capacity = std::size_t{1} << 15;
};

/// The process-wide collection switch plus the drained output. At most
/// one session is active at a time (start() while active returns the
/// active session). Sessions are shared_ptr-held so late-draining callers
/// and the global registry can both keep them alive.
class TraceSession {
 public:
  /// Activates collection and returns the session (or the already-active
  /// one). Instrumented threads register rings lazily on first emit.
  static std::shared_ptr<TraceSession> start(TraceSessionOptions options = {});
  /// The active session, or nullptr.
  static std::shared_ptr<TraceSession> current();

  ~TraceSession();

  /// Freezes collection (macros go back to the one-branch idle path).
  /// Idempotent. Does not drain — call toJson()/writeJson() after.
  void stop();
  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  /// Chrome/Perfetto trace_event JSON: {"traceEvents":[...],
  /// "displayTimeUnit":"ms", ...metadata}. Timestamps are microseconds
  /// relative to session start. Call at quiescence.
  std::string toJson() const;
  /// toJson() to a file; returns false on I/O failure.
  bool writeJson(const std::string& path) const;

  /// Threads that registered a ring.
  std::size_t numThreads() const;
  /// Events currently retained / ever emitted / lost across all rings.
  std::uint64_t totalEvents() const;
  std::uint64_t droppedEvents() const;

  /// Renames the calling thread's track in the exported JSON (e.g.
  /// "engine worker 0"); no-op when the session is stopped and the
  /// thread never emitted.
  void nameCurrentThread(const std::string& name);

  std::uint64_t epochNanos() const { return epoch_ns_; }

 private:
  explicit TraceSession(TraceSessionOptions options);

  friend TraceRing* traceRingSlowPath();

  /// Registers (or re-finds) the calling thread's ring. Called from the
  /// emit slow path under the session mutex.
  std::shared_ptr<TraceRing> registerCurrentThread(int* tid_out);

  TraceSessionOptions options_;
  std::uint64_t epoch_ns_ = 0;
  std::atomic<bool> stopped_{false};

  struct ThreadSlot {
    std::shared_ptr<TraceRing> ring;
    std::string name;
  };
  mutable base::Mutex mu_;
  std::vector<ThreadSlot> threads_ STS_GUARDED_BY(mu_);
};

namespace detail {
/// Collection switch, read on every instrumentation point's fast path.
extern std::atomic<bool> g_trace_on;
/// Bumped on every session start; lets thread-local ring caches detect a
/// new session and re-register.
extern std::atomic<std::uint64_t> g_trace_generation;
}  // namespace detail

/// True while a TraceSession is collecting. One relaxed load.
inline bool tracingActive() {
  return detail::g_trace_on.load(std::memory_order_relaxed);
}

/// The calling thread's ring of the active session, or nullptr when idle.
/// Fast path: the active check plus one thread-local generation compare.
TraceRing* traceRingSlowPath();
inline TraceRing* currentTraceRing() {
  return tracingActive() ? traceRingSlowPath() : nullptr;
}

/// Emit helpers (no-ops when no session is active). String arguments must
/// be static-storage (literals).
inline void emitSpanAt(const char* cat, const char* name,
                       std::uint64_t begin_ns, std::uint64_t end_ns,
                       const char* arg_key = nullptr,
                       std::uint64_t arg_val = 0,
                       const char* arg2_key = nullptr,
                       std::uint64_t arg2_val = 0) {
  if (TraceRing* ring = currentTraceRing()) {
    ring->emit({begin_ns, end_ns > begin_ns ? end_ns - begin_ns : 0, cat,
                name, arg_key, arg_val, arg2_key, arg2_val,
                EventKind::kSpan});
  }
}

inline void emitInstant(const char* cat, const char* name,
                        const char* arg_key = nullptr,
                        std::uint64_t arg_val = 0,
                        const char* arg2_key = nullptr,
                        std::uint64_t arg2_val = 0) {
  if (TraceRing* ring = currentTraceRing()) {
    ring->emit({nowNanos(), 0, cat, name, arg_key, arg_val, arg2_key,
                arg2_val, EventKind::kInstant});
  }
}

/// RAII complete-span: samples the ring once at construction; when a
/// session is active, measures construction→destruction and emits one
/// kSpan event. Nested ScopedSpans nest correctly in the exported trace
/// (strict LIFO within a thread).
class ScopedSpan {
 public:
  ScopedSpan(const char* cat, const char* name, const char* arg_key = nullptr,
             std::uint64_t arg_val = 0)
      : cat_(cat), name_(name), arg_key_(arg_key), arg_val_(arg_val) {
    ring_ = currentTraceRing();
    if (ring_ != nullptr) t0_ = nowNanos();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach/overwrite the second numeric argument before destruction.
  void arg2(const char* key, std::uint64_t val) {
    arg2_key_ = key;
    arg2_val_ = val;
  }

  ~ScopedSpan() {
    if (ring_ != nullptr) {
      ring_->emit({t0_, nowNanos() - t0_, cat_, name_, arg_key_, arg_val_,
                   arg2_key_, arg2_val_, EventKind::kSpan});
    }
  }

 private:
  TraceRing* ring_ = nullptr;
  std::uint64_t t0_ = 0;
  const char* cat_;
  const char* name_;
  const char* arg_key_;
  std::uint64_t arg_val_;
  const char* arg2_key_ = nullptr;
  std::uint64_t arg2_val_ = 0;
};

/// Per-solve compute-vs-wait attribution sink. The engine arms one on the
/// batch's SolveContext; each executor thread's StepTracer flushes its
/// region-local accumulation here exactly once (hence atomics — one
/// contended add per thread per solve, nothing in the hot loop).
struct SolveTrace {
  std::atomic<std::uint64_t> compute_ns{0};
  std::atomic<std::uint64_t> wait_ns{0};
  /// (superstep, thread) pairs accumulated — BSP barrier crossings.
  std::atomic<std::uint64_t> thread_steps{0};
  /// Longest single barrier/p2p wait observed (straggler signal).
  std::atomic<std::uint64_t> max_wait_ns{0};

  void add(std::uint64_t compute, std::uint64_t wait, std::uint64_t steps,
           std::uint64_t max_wait) {
    compute_ns.fetch_add(compute, std::memory_order_relaxed);
    wait_ns.fetch_add(wait, std::memory_order_relaxed);
    thread_steps.fetch_add(steps, std::memory_order_relaxed);
    std::uint64_t seen = max_wait_ns.load(std::memory_order_relaxed);
    while (seen < max_wait && !max_wait_ns.compare_exchange_weak(
                                  seen, max_wait, std::memory_order_relaxed)) {
    }
  }
};

/// One per OpenMP thread per solve region: splits the region timeline into
/// per-superstep compute and wait segments, emitting ring spans when a
/// session is active and accumulating nanoseconds locally for the armed
/// SolveTrace (flushed in the destructor). Enabled iff a session is active
/// OR a sink is armed; otherwise every call is one branch on a cached
/// bool. Compiled to a true no-op under -DSTS_TRACING=OFF.
class StepTracer {
 public:
#if STS_TRACING
  explicit StepTracer(SolveTrace* sink)
      : ring_(currentTraceRing()),
        sink_(sink),
        enabled_(ring_ != nullptr || sink_ != nullptr) {
    if (enabled_) region_t0_ = t_ = nowNanos();
  }

  ~StepTracer() {
    if (enabled_ && sink_ != nullptr) {
      sink_->add(compute_ns_, wait_ns_, steps_, max_wait_ns_);
    }
  }

  /// BSP: the superstep's rows are computed; the barrier is next.
  void computeDone(std::uint64_t step) {
    if (!enabled_) return;
    const std::uint64_t now = nowNanos();
    if (ring_ != nullptr) {
      ring_->emit({t_, now - t_, "exec", "compute", "step", step, nullptr, 0,
                   EventKind::kSpan});
    }
    compute_ns_ += now - t_;
    steps_ += 1;
    t_ = now;
  }

  /// BSP: the superstep's barrier was crossed.
  void waitDone(std::uint64_t step) {
    if (!enabled_) return;
    const std::uint64_t now = nowNanos();
    const std::uint64_t w = now - t_;
    if (ring_ != nullptr) {
      ring_->emit({t_, w, "exec", "barrier_wait", "step", step, nullptr, 0,
                   EventKind::kSpan});
    }
    wait_ns_ += w;
    if (w > max_wait_ns_) max_wait_ns_ = w;
    t_ = now;
  }

  /// P2P: a cross-thread dependency spin is about to start.
  void spinBegin() {
    if (enabled_) spin_t0_ = nowNanos();
  }

  /// P2P: the spin resolved. Emits a p2p_wait span only for spins the
  /// trace can resolve (>= 1us) so dependency storms cannot flood the
  /// ring; the accumulators see every nanosecond either way.
  void spinEnd(std::uint64_t row) {
    if (!enabled_) return;
    const std::uint64_t now = nowNanos();
    const std::uint64_t w = now - spin_t0_;
    if (ring_ != nullptr && w >= 1000) {
      ring_->emit({spin_t0_, w, "exec", "p2p_wait", "row", row, nullptr, 0,
                   EventKind::kSpan});
    }
    wait_ns_ += w;
    if (w > max_wait_ns_) max_wait_ns_ = w;
  }

  /// P2P: region over; everything that was not a spin wait is compute.
  void finishP2p(std::uint64_t steps) {
    if (!enabled_) return;
    const std::uint64_t elapsed = nowNanos() - region_t0_;
    compute_ns_ += elapsed > wait_ns_ ? elapsed - wait_ns_ : 0;
    steps_ += steps;
  }

 private:
  TraceRing* ring_ = nullptr;
  SolveTrace* sink_ = nullptr;
  bool enabled_ = false;
  std::uint64_t region_t0_ = 0;
  std::uint64_t t_ = 0;
  std::uint64_t spin_t0_ = 0;
  std::uint64_t compute_ns_ = 0;
  std::uint64_t wait_ns_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t max_wait_ns_ = 0;
#else
  explicit StepTracer(SolveTrace*) {}
  void computeDone(std::uint64_t) {}
  void waitDone(std::uint64_t) {}
  void spinBegin() {}
  void spinEnd(std::uint64_t) {}
  void finishP2p(std::uint64_t) {}
#endif
};

}  // namespace sts::obs

// ------------------------------------------------------------------------
// Instrumentation macros. Under -DSTS_TRACING=OFF every macro (and its
// argument expressions) compiles away entirely.
#if STS_TRACING
#define STS_TRACE_CONCAT_INNER(a, b) a##b
#define STS_TRACE_CONCAT(a, b) STS_TRACE_CONCAT_INNER(a, b)
/// Complete span over the enclosing scope.
#define STS_TRACE_SPAN(cat, name) \
  ::sts::obs::ScopedSpan STS_TRACE_CONCAT(sts_trace_span_, __LINE__)(cat, name)
/// As above with one numeric argument (key must be a string literal).
#define STS_TRACE_SPAN1(cat, name, key, val)                             \
  ::sts::obs::ScopedSpan STS_TRACE_CONCAT(sts_trace_span_, __LINE__)(    \
      cat, name, key, static_cast<std::uint64_t>(val))
/// Span with explicit begin/end nanoseconds (queue waits).
#define STS_TRACE_SPAN_AT(...) ::sts::obs::emitSpanAt(__VA_ARGS__)
/// Thread-scoped instant event.
#define STS_TRACE_INSTANT(...) ::sts::obs::emitInstant(__VA_ARGS__)
#else
#define STS_TRACE_SPAN(cat, name) \
  do {                            \
  } while (0)
#define STS_TRACE_SPAN1(cat, name, key, val) \
  do {                                       \
  } while (0)
#define STS_TRACE_SPAN_AT(...) \
  do {                         \
  } while (0)
#define STS_TRACE_INSTANT(...) \
  do {                         \
  } while (0)
#endif
