#include "obs/registry.hpp"

#include <algorithm>
#include <cstdio>

#include "base/sync.hpp"

namespace sts::obs {

double Histogram::bucketUpperBound(int idx) {
  if (idx <= 0) return std::ldexp(1.0, kMinExponent);  // underflow end
  if (idx >= kNumBuckets - 1) return std::ldexp(1.0, kMaxExponent);
  const int octave = (idx - 1) / kSubBuckets;
  const int sub = (idx - 1) % kSubBuckets;
  // The sub-bucket covers frac in [0.5 + sub/16, 0.5 + (sub+1)/16) of the
  // octave [2^(kMinExponent+octave), 2^(kMinExponent+octave+1)).
  const double frac = 0.5 + static_cast<double>(sub + 1) /
                                (2 * kSubBuckets);
  return std::ldexp(frac, kMinExponent + octave + 1);
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the q-th order statistic, matching harness::quantile's
  // nearest-rank convention closely enough for telemetry.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n))));
  std::uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return bucketUpperBound(i);
  }
  return bucketUpperBound(kNumBuckets - 1);
}

std::vector<std::pair<double, std::uint64_t>> Histogram::nonEmptyBuckets()
    const {
  std::vector<std::pair<double, std::uint64_t>> out;
  for (int i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c != 0) out.emplace_back(bucketUpperBound(i), c);
  }
  return out;
}

Registry& Registry::global() {
  static Registry* g = new Registry();  // leaked: alive for exit-time users
  return *g;
}

Counter& Registry::counter(const std::string& name) {
  base::MutexLock lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  base::MutexLock lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  base::MutexLock lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

namespace {

std::string formatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string Registry::renderText() const {
  base::MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += name;
    out += ' ';
    out += std::to_string(c->value());
    out += '\n';
  }
  for (const auto& [name, g] : gauges_) {
    out += name;
    out += ' ';
    out += formatDouble(g->value());
    out += '\n';
  }
  for (const auto& [name, h] : histograms_) {
    out += name + "_count " + std::to_string(h->count()) + '\n';
    out += name + "_sum " + formatDouble(h->sum()) + '\n';
    out += name + "_p50 " + formatDouble(h->quantile(0.50)) + '\n';
    out += name + "_p95 " + formatDouble(h->quantile(0.95)) + '\n';
    out += name + "_p99 " + formatDouble(h->quantile(0.99)) + '\n';
  }
  return out;
}

std::string Registry::renderJson() const {
  base::MutexLock lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":" + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":" + formatDouble(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":{\"count\":" + std::to_string(h->count()) +
           ",\"sum\":" + formatDouble(h->sum()) +
           ",\"mean\":" + formatDouble(h->mean()) +
           ",\"p50\":" + formatDouble(h->quantile(0.50)) +
           ",\"p95\":" + formatDouble(h->quantile(0.95)) +
           ",\"p99\":" + formatDouble(h->quantile(0.99)) + '}';
  }
  out += "}}";
  return out;
}

}  // namespace sts::obs
