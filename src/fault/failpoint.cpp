#include "fault/failpoint.hpp"

#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

namespace sts::fault {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {

/// FNV-1a over the point name: folds the name into the trigger hash so
/// two points under one seed never share a schedule.
std::uint64_t nameHash(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

bool wouldTrigger(std::uint64_t seed, const std::string& name, int rank,
                  std::uint64_t hit_index, double probability) {
  if (probability >= 1.0) return true;
  if (probability <= 0.0) return false;
  const std::uint64_t h = splitmix64(
      seed ^ nameHash(name) ^
      (static_cast<std::uint64_t>(static_cast<unsigned>(rank)) << 48) ^
      hit_index);
  // Top 53 bits -> uniform double in [0, 1).
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return u < probability;
}

void Failpoint::fire(int rank) {
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (rank_filter_ >= 0 && rank != rank_filter_) return;
  const int slot =
      rank < 0 ? 0 : (rank >= kMaxRanks ? kMaxRanks - 1 : rank);
  const std::uint64_t hit_index = rank_hits_[static_cast<std::size_t>(slot)]
                                      .fetch_add(1, std::memory_order_relaxed);
  if (!wouldTrigger(seed_, name_, slot, hit_index, probability_)) return;
  if (limit_ > 0) {
    // The limit bounds TRIGGERS, not arrivals: claim a slot atomically so
    // concurrent ranks cannot overshoot, then disarm at the boundary.
    const std::uint64_t claimed =
        triggers_.fetch_add(1, std::memory_order_relaxed);
    if (claimed >= limit_) return;
    if (claimed + 1 == limit_) armed_.store(false, std::memory_order_relaxed);
  } else {
    triggers_.fetch_add(1, std::memory_order_relaxed);
  }
  switch (action_) {
    case FaultAction::kDelay:
      std::this_thread::sleep_for(std::chrono::microseconds(value_));
      break;
    case FaultAction::kStall:
      std::this_thread::sleep_for(std::chrono::milliseconds(value_));
      break;
    case FaultAction::kFail:
      throw InjectedFault(name_);
    case FaultAction::kBadAlloc:
      throw std::bad_alloc();
  }
}

void Failpoint::arm(FaultAction action, std::uint64_t value,
                    double probability, int rank_filter, std::uint64_t limit,
                    std::uint64_t seed) {
  action_ = action;
  value_ = value;
  probability_ = probability;
  rank_filter_ = rank_filter;
  limit_ = limit;
  seed_ = seed;
  hits_.store(0, std::memory_order_relaxed);
  triggers_.store(0, std::memory_order_relaxed);
  for (auto& h : rank_hits_) h.store(0, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_release);
}

void Failpoint::disarm() {
  armed_.store(false, std::memory_order_release);
  hits_.store(0, std::memory_order_relaxed);
  triggers_.store(0, std::memory_order_relaxed);
  for (auto& h : rank_hits_) h.store(0, std::memory_order_relaxed);
}

FailpointRegistry& FailpointRegistry::global() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

Failpoint& FailpointRegistry::failpoint(const std::string& name) {
  base::MutexLock lock(mu_);
  auto& slot = points_[name];
  if (!slot) slot = std::make_unique<Failpoint>(name);
  return *slot;
}

namespace {

struct Clause {
  std::string point;
  FaultAction action = FaultAction::kDelay;
  std::uint64_t value = 0;
  double probability = 1.0;
  int rank_filter = -1;
  std::uint64_t limit = 0;
};

[[noreturn]] void specError(const std::string& spec, const std::string& why) {
  throw std::invalid_argument("fault spec '" + spec + "': " + why);
}

Clause parseClause(const std::string& spec, const std::string& clause) {
  Clause out;
  const auto eq = clause.find('=');
  if (eq == std::string::npos || eq == 0) {
    specError(spec, "clause '" + clause + "' lacks point=action");
  }
  out.point = clause.substr(0, eq);

  // action[(value)] then ,key=value modifiers.
  std::size_t pos = eq + 1;
  const auto next_delim = clause.find_first_of(",(", pos);
  std::string action = clause.substr(pos, next_delim == std::string::npos
                                              ? std::string::npos
                                              : next_delim - pos);
  bool needs_value = false;
  if (action == "delay") {
    out.action = FaultAction::kDelay;
    needs_value = true;
  } else if (action == "stall") {
    out.action = FaultAction::kStall;
    needs_value = true;
  } else if (action == "fail") {
    out.action = FaultAction::kFail;
  } else if (action == "badalloc") {
    out.action = FaultAction::kBadAlloc;
  } else {
    specError(spec, "unknown action '" + action + "'");
  }
  pos = next_delim == std::string::npos ? clause.size() : next_delim;
  if (pos < clause.size() && clause[pos] == '(') {
    const auto close = clause.find(')', pos);
    if (close == std::string::npos) specError(spec, "unbalanced '('");
    out.value = std::strtoull(clause.substr(pos + 1, close - pos - 1).c_str(),
                              nullptr, 10);
    pos = close + 1;
  } else if (needs_value) {
    specError(spec, "action '" + action + "' needs a (value)");
  }
  while (pos < clause.size()) {
    if (clause[pos] != ',') specError(spec, "expected ',' before modifiers");
    ++pos;
    const auto mod_eq = clause.find('=', pos);
    if (mod_eq == std::string::npos) specError(spec, "modifier lacks '='");
    const std::string key = clause.substr(pos, mod_eq - pos);
    const auto mod_end = clause.find(',', mod_eq);
    const std::string value = clause.substr(
        mod_eq + 1,
        mod_end == std::string::npos ? std::string::npos : mod_end - mod_eq - 1);
    if (key == "p") {
      out.probability = std::strtod(value.c_str(), nullptr);
      if (out.probability < 0.0 || out.probability > 1.0) {
        specError(spec, "p must be in [0, 1]");
      }
    } else if (key == "rank") {
      out.rank_filter = static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (key == "limit") {
      out.limit = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      specError(spec, "unknown modifier '" + key + "'");
    }
    pos = mod_end == std::string::npos ? clause.size() : mod_end;
  }
  return out;
}

}  // namespace

void FailpointRegistry::configure(const std::string& spec,
                                  std::uint64_t seed) {
  // Parse everything first so a malformed trailing clause cannot leave the
  // registry half-armed.
  std::vector<Clause> clauses;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const auto end = spec.find(';', pos);
    const std::string clause = spec.substr(
        pos, end == std::string::npos ? std::string::npos : end - pos);
    if (!clause.empty()) clauses.push_back(parseClause(spec, clause));
    pos = end == std::string::npos ? spec.size() : end + 1;
  }
  for (const Clause& c : clauses) {
    failpoint(c.point).arm(c.action, c.value, c.probability, c.rank_filter,
                           c.limit, seed);
  }
}

bool FailpointRegistry::configureFromEnv() {
  const char* spec = std::getenv("STS_FAULT_SPEC");
  if (spec == nullptr || spec[0] == '\0') return false;
  const char* seed_env = std::getenv("STS_FAULT_SEED");
  const std::uint64_t seed =
      seed_env != nullptr ? std::strtoull(seed_env, nullptr, 10) : 0;
  configure(spec, seed);
  return true;
}

void FailpointRegistry::reset() {
  base::MutexLock lock(mu_);
  for (auto& [name, point] : points_) point->disarm();
}

std::uint64_t FailpointRegistry::hits(const std::string& name) const {
  base::MutexLock lock(mu_);
  const auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second->hits();
}

std::uint64_t FailpointRegistry::triggers(const std::string& name) const {
  base::MutexLock lock(mu_);
  const auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second->triggers();
}

}  // namespace sts::fault
