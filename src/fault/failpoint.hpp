#pragma once

#include <atomic>
#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>

#include "base/sync.hpp"

/// \file failpoint.hpp
/// Named, deterministic fault-injection points for the serving and
/// executor paths — the harness that PROVES the overload-resilience
/// contracts (docs/ROBUSTNESS.md) instead of asserting them: latency
/// spikes in worker loops, stalled supersteps, allocation failure in
/// slab/tile builds, queue stalls.
///
/// ## Compile-away contract (same pattern as STS_TRACING / STS_CHECKS)
///
/// The LIBRARY (registry, spec parser, Failpoint state) always compiles,
/// so tests and benches can link against it in every configuration. Only
/// the CALL SITES — the `STS_FAILPOINT` / `STS_FAILPOINT_RANK` macros
/// sprinkled through engine/ and exec/ — are conditional: under the
/// default `-DSTS_FAULTS=OFF` they expand to empty statements and the
/// solve paths build bit-identical to a tree without this file. Under
/// `-DSTS_FAULTS=ON` an idle (unarmed) failpoint costs one relaxed atomic
/// load and a predictable branch — the price the CI overhead gate bounds
/// at <= 2% on the engine throughput row.
///
/// ## Determinism contract
///
/// Whether a given arrival FIRES is a pure function of (seed, point name,
/// thread rank, per-rank arrival index): a splitmix64 hash of the four,
/// compared against the configured probability. No wall clock, no global
/// RNG — re-running the same build with the same spec and seed replays
/// the exact same fault schedule per thread rank, which is what makes
/// fault-run failures debuggable instead of heisenbugs.
///
/// ## Activation
///
/// Programmatic:  fault::FailpointRegistry::global().configure(spec);
/// Environment:   STS_FAULT_SPEC="<spec>" [STS_FAULT_SEED=<u64>], applied
///                by configureFromEnv() (benches call it at startup).
///
/// Spec grammar, semicolon-separated clauses:
///
///   point=action[(value)][,p=<prob>][,rank=<r>][,limit=<n>]
///
///   actions:  delay(us)   sleep `value` microseconds when fired
///             stall(ms)   sleep `value` milliseconds (a "stuck" step)
///             fail        throw fault::InjectedFault (std::runtime_error)
///             badalloc    throw std::bad_alloc
///   p:        firing probability per arrival (default 1.0)
///   rank:     only arrivals with this thread rank may fire (default: any)
///   limit:    at most `n` fires, then the point disarms itself
///
/// e.g. STS_FAULT_SPEC="exec.superstep=delay(200),p=0.05;engine.worker_pop=stall(50),rank=1,limit=3"
///
/// Throwing actions (`fail`, `badalloc`) are only safe at serial call
/// sites (engine worker loop, plan/slab builds) — an exception escaping an
/// OpenMP region terminates — so the executor-region hooks should only be
/// given `delay`/`stall` specs. The point catalog lives in
/// docs/ROBUSTNESS.md.

#ifndef STS_FAULTS
#define STS_FAULTS 0
#endif

namespace sts::fault {

/// Thrown by `fail`-action failpoints. Derives from std::runtime_error so
/// the engine's existing batch-failure path (promises resolved with the
/// exception) absorbs injected failures like real ones.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& point)
      : std::runtime_error("injected fault at failpoint '" + point + "'") {}
};

enum class FaultAction : std::uint8_t {
  kDelay,     ///< sleep value microseconds
  kStall,     ///< sleep value milliseconds
  kFail,      ///< throw InjectedFault
  kBadAlloc,  ///< throw std::bad_alloc
};

/// One named fault-injection point. Registered lazily by its first macro
/// hit or by configure(); the object is never destroyed while the process
/// serves (registry-owned), so macro call sites may cache a reference in
/// a function-local static.
class Failpoint {
 public:
  /// Ranks tracked with independent per-rank arrival counters; arrivals
  /// from wider teams fold into the last slot (still deterministic, just
  /// shared between the overflow ranks).
  static constexpr int kMaxRanks = 64;

  explicit Failpoint(std::string name) : name_(std::move(name)) {}

  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  /// The macro fast path: one relaxed load. True only while a spec clause
  /// targets this point.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// The macro slow path (armed points only): count the arrival, decide
  /// deterministically, perform the configured action. May throw
  /// (kFail/kBadAlloc) — call only where an exception is survivable.
  void fire(int rank);

  /// Arm with a parsed clause. Resets the arrival/trigger counters so a
  /// re-configure starts a fresh deterministic schedule.
  void arm(FaultAction action, std::uint64_t value, double probability,
           int rank_filter, std::uint64_t limit, std::uint64_t seed);
  /// Disarm and clear counters.
  void disarm();

  const std::string& name() const { return name_; }
  /// Total arrivals while armed (all ranks).
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  /// Arrivals that actually performed the action.
  std::uint64_t triggers() const {
    return triggers_.load(std::memory_order_relaxed);
  }

 private:
  const std::string name_;
  std::atomic<bool> armed_{false};

  /// Configuration; written by arm()/disarm() under the registry mutex,
  /// read by fire() after observing armed_. Plain members are safe here
  /// because arm() publishes them with the armed_ release store and tests
  /// never reconfigure concurrently with traffic (the documented usage).
  FaultAction action_ = FaultAction::kDelay;
  std::uint64_t value_ = 0;
  double probability_ = 1.0;
  int rank_filter_ = -1;  ///< -1 = any rank
  std::uint64_t limit_ = 0;  ///< 0 = unlimited
  std::uint64_t seed_ = 0;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> triggers_{0};
  /// Per-rank arrival indices — the deterministic coordinate.
  std::array<std::atomic<std::uint64_t>, kMaxRanks> rank_hits_{};
};

/// Name -> Failpoint map. failpoint() is idempotent get-or-create with
/// pointer-stable results (macro sites cache the reference). configure()
/// parses a spec string and arms the named points; reset() disarms all.
class FailpointRegistry {
 public:
  /// Process-wide registry (leaked singleton, safe at exit).
  static FailpointRegistry& global();

  /// Get-or-create; the returned reference lives as long as the process.
  Failpoint& failpoint(const std::string& name);

  /// Parse and apply a spec (grammar above). Throws std::invalid_argument
  /// on malformed input, leaving previously armed points untouched.
  /// `seed` feeds every clause's deterministic trigger hash.
  void configure(const std::string& spec, std::uint64_t seed = 0);

  /// configure(STS_FAULT_SPEC, STS_FAULT_SEED) when the spec variable is
  /// set and non-empty; returns true iff something was armed.
  bool configureFromEnv();

  /// Disarm every point (counters cleared). Registration survives.
  void reset();

  /// Diagnostic counters of a point, zero when it was never created.
  std::uint64_t hits(const std::string& name) const;
  std::uint64_t triggers(const std::string& name) const;

 private:
  mutable base::Mutex mu_;
  /// std::map: pointer-stable values via unique_ptr, stable iteration for
  /// reset(); mirrors obs::Registry.
  std::map<std::string, std::unique_ptr<Failpoint>> points_
      STS_GUARDED_BY(mu_);
};

/// splitmix64 — the deterministic trigger hash (public so tests can
/// replay the schedule decision for decision).
std::uint64_t splitmix64(std::uint64_t x);

/// The trigger decision fire() makes, as a pure function: does arrival
/// `hit_index` of `rank` at the point named `name` fire under
/// (seed, probability)? Exposed for the determinism tests.
bool wouldTrigger(std::uint64_t seed, const std::string& name, int rank,
                  std::uint64_t hit_index, double probability);

}  // namespace sts::fault

// ------------------------------------------------------------------------
// Call-site macros. Under -DSTS_FAULTS=OFF (default) they expand to empty
// statements — the solve paths build bit-identical to a failpoint-free
// tree. `point` must be a string literal; `rank` is the executor thread
// rank (0 at serial sites), evaluated only under STS_FAULTS=ON.
#if STS_FAULTS
#define STS_FAILPOINT_RANK(point, rank)                               \
  do {                                                                \
    static ::sts::fault::Failpoint& sts_failpoint_ref =               \
        ::sts::fault::FailpointRegistry::global().failpoint(point);   \
    if (sts_failpoint_ref.armed()) {                                  \
      sts_failpoint_ref.fire(static_cast<int>(rank));                 \
    }                                                                 \
  } while (0)
#else
#define STS_FAILPOINT_RANK(point, rank) \
  do {                                  \
  } while (0)
#endif
/// Serial-site shorthand (rank 0).
#define STS_FAILPOINT(point) STS_FAILPOINT_RANK(point, 0)
