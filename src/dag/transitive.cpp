#include "dag/transitive.hpp"

#include <vector>

namespace sts::dag {

TransitiveReductionResult approximateTransitiveReduction(
    const Dag& dag, const TransitiveReductionOptions& opts) {
  const index_t n = dag.numVertices();

  // parent_slot[u] = 1 + position of u in parents(v) while processing v.
  std::vector<offset_t> parent_slot(static_cast<size_t>(n), 0);
  std::vector<index_t> touched;

  std::vector<char> edge_removed;  // aligned with in-edge positions of v
  std::vector<Edge> kept;
  kept.reserve(static_cast<size_t>(dag.numEdges()));

  offset_t inspections = 0;
  offset_t removed = 0;
  bool exhausted = false;
  index_t resume_from = n;  // first vertex not fully processed

  for (index_t v = 0; v < n && !exhausted; ++v) {
    const auto pars = dag.parents(v);
    touched.clear();
    for (size_t k = 0; k < pars.size(); ++k) {
      parent_slot[static_cast<size_t>(pars[k])] = static_cast<offset_t>(k) + 1;
      touched.push_back(pars[k]);
    }
    edge_removed.assign(pars.size(), 0);
    // Edge (u, v) is redundant if some other parent w of v has u as parent:
    // then u -> w -> v is a two-step path.
    for (const index_t w : pars) {
      for (const index_t u : dag.parents(w)) {
        if (opts.max_inspections >= 0 && ++inspections > opts.max_inspections) {
          exhausted = true;
          break;
        }
        const offset_t slot = parent_slot[static_cast<size_t>(u)];
        if (slot > 0 && !edge_removed[static_cast<size_t>(slot - 1)]) {
          edge_removed[static_cast<size_t>(slot - 1)] = 1;
          ++removed;
        }
      }
      if (exhausted) break;
    }
    for (size_t k = 0; k < pars.size(); ++k) {
      if (!edge_removed[k]) kept.emplace_back(pars[k], v);
    }
    for (const index_t u : touched) parent_slot[static_cast<size_t>(u)] = 0;
    if (exhausted) resume_from = v + 1;
  }
  if (exhausted) {
    // Keep all remaining edges untouched: the reduction is only an
    // optimization and partial application is still sound.
    for (index_t v2 = resume_from; v2 < n; ++v2) {
      for (const index_t u : dag.parents(v2)) kept.emplace_back(u, v2);
    }
  }

  TransitiveReductionResult result{
      Dag::fromEdges(n, kept, dag.weights()), removed, exhausted};
  return result;
}

bool isReachable(const Dag& dag, index_t from, index_t to) {
  if (from == to) return true;
  std::vector<char> seen(static_cast<size_t>(dag.numVertices()), 0);
  std::vector<index_t> stack = {from};
  seen[static_cast<size_t>(from)] = 1;
  while (!stack.empty()) {
    const index_t v = stack.back();
    stack.pop_back();
    for (const index_t u : dag.children(v)) {
      if (u == to) return true;
      if (!seen[static_cast<size_t>(u)]) {
        seen[static_cast<size_t>(u)] = 1;
        stack.push_back(u);
      }
    }
  }
  return false;
}

}  // namespace sts::dag
