#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"

/// \file dag.hpp
/// The scheduling-problem representation (paper §2.2): a vertex-weighted
/// directed acyclic graph. For a lower triangular matrix L, vertex i is row
/// i, and there is an edge (j, i) iff L(i, j) != 0 with j < i. The weight
/// of vertex i is the number of stored entries in row i (the work of the
/// substitution step for x_i).

namespace sts::dag {

using sts::index_t;
using sts::offset_t;

/// Vertex work; sums of weights (superstep loads) use the same type.
using weight_t = std::int64_t;

/// Directed edge (parent, child).
using Edge = std::pair<index_t, index_t>;

/// Immutable DAG with both adjacency directions and per-vertex weights.
/// Neighbor lists are sorted ascending. Vertices are 0..n-1; edges may go in
/// any ID direction (coarse graphs are not ID-topological), except where a
/// function documents otherwise.
class Dag {
 public:
  Dag() = default;

  /// Builds from an edge list; duplicate edges are collapsed, self-loops
  /// rejected. `weights` must be empty (all 1) or size n; weights must be
  /// positive. Does NOT check acyclicity — call isAcyclic() when needed.
  static Dag fromEdges(index_t n, std::span<const Edge> edges,
                       std::span<const weight_t> weights = {});

  /// The forward-substitution DAG of a lower triangular matrix (Fig. 1.1).
  /// Weight of vertex i = max(1, nnz(row i)).
  static Dag fromLowerTriangular(const sparse::CsrMatrix& lower);

  /// Same construction for an upper triangular matrix (backward
  /// substitution): edge (j, i) iff U(i, j) != 0 with j > i. Runs on the
  /// reverse row order, so vertex k of the DAG is row n-1-k of U; callers
  /// that need the row mapping use `n-1-k`.
  static Dag fromUpperTriangular(const sparse::CsrMatrix& upper);

  index_t numVertices() const { return n_; }
  offset_t numEdges() const { return static_cast<offset_t>(out_adj_.size()); }

  std::span<const index_t> children(index_t v) const {
    return span(out_ptr_, out_adj_, v);
  }
  std::span<const index_t> parents(index_t v) const {
    return span(in_ptr_, in_adj_, v);
  }
  index_t outDegree(index_t v) const {
    return static_cast<index_t>(children(v).size());
  }
  index_t inDegree(index_t v) const {
    return static_cast<index_t>(parents(v).size());
  }
  weight_t weight(index_t v) const { return weight_[static_cast<size_t>(v)]; }
  std::span<const weight_t> weights() const { return weight_; }
  weight_t totalWeight() const { return total_weight_; }

  bool hasEdge(index_t parent, index_t child) const;

  /// Vertices with no parents / no children.
  std::vector<index_t> sources() const;
  std::vector<index_t> sinks() const;

  /// Kahn's algorithm; true iff a complete topological order exists.
  bool isAcyclic() const;

  /// Sub-DAG induced on the contiguous vertex range [lo, hi): keeps edges
  /// with both endpoints inside; vertex v maps to v - lo; weights preserved
  /// (block scheduling keeps full-row weights, §3.1).
  Dag rangeSubgraph(index_t lo, index_t hi) const;

  /// Structural invariants: mirrored adjacency, sorted lists, positive
  /// weights. Throws std::logic_error on violation.
  void validate() const;

  /// All edges as (parent, child) pairs, sorted by parent then child.
  std::vector<Edge> edgeList() const;

 private:
  static std::span<const index_t> span(const std::vector<offset_t>& ptr,
                                       const std::vector<index_t>& adj,
                                       index_t v) {
    return std::span<const index_t>(adj).subspan(
        static_cast<size_t>(ptr[static_cast<size_t>(v)]),
        static_cast<size_t>(ptr[static_cast<size_t>(v) + 1] -
                            ptr[static_cast<size_t>(v)]));
  }

  index_t n_ = 0;
  std::vector<offset_t> out_ptr_ = {0};
  std::vector<index_t> out_adj_;
  std::vector<offset_t> in_ptr_ = {0};
  std::vector<index_t> in_adj_;
  std::vector<weight_t> weight_;
  weight_t total_weight_ = 0;
};

}  // namespace sts::dag
