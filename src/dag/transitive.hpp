#pragma once

#include <vector>

#include "dag/dag.hpp"

/// \file transitive.hpp
/// Approximate transitive reduction: the "remove all long edges in
/// triangles" pass of SpMP [PSSD14 §2.3], used by both the SpMP baseline
/// and the Funnel coarsener (§4.2) to expose larger funnels. Removing a
/// transitive edge never changes the precedence relation, so every schedule
/// valid for the reduced DAG is valid for the original.

namespace sts::dag {

struct TransitiveReductionOptions {
  /// Upper bound on parent-of-parent inspections; the pass stops early once
  /// exhausted (the paper notes early termination is sound). Negative means
  /// unbounded. The default caps worst-case O(sum deg^2) blowup on dense-ish
  /// random matrices.
  offset_t max_inspections = 200'000'000;
};

struct TransitiveReductionResult {
  Dag dag;                 ///< same vertices/weights, redundant edges removed
  offset_t removed_edges;  ///< how many edges were dropped
  bool exhausted_budget;   ///< true if the inspection budget stopped the pass
};

/// Removes every edge (u, v) for which a length-2 path u -> w -> v exists
/// (checked exactly; only such edges are removed, so reachability is
/// preserved). Runs in O(sum_w deg-(w) * deg+(w)) inspections.
TransitiveReductionResult approximateTransitiveReduction(
    const Dag& dag, const TransitiveReductionOptions& opts = {});

/// Exact reachability u ->* v by BFS; O(E). Test helper for reduction
/// soundness on small graphs.
bool isReachable(const Dag& dag, index_t from, index_t to);

}  // namespace sts::dag
