#pragma once

#include <span>
#include <vector>

#include "dag/dag.hpp"

/// \file wavefronts.hpp
/// Level sets ("wavefronts", Fig. 1.1b): level(v) = 0 for sources, else
/// 1 + max over parents. The number of wavefronts equals the length of the
/// longest path, and n / #wavefronts is the paper's "average wavefront
/// size" parallelizability metric (§6.2).

namespace sts::dag {

struct Wavefronts {
  index_t num_levels = 0;
  std::vector<index_t> level;      ///< level of each vertex
  std::vector<offset_t> level_ptr; ///< boundaries into `vertices`
  std::vector<index_t> vertices;   ///< grouped by level, ascending ID inside

  std::span<const index_t> levelVertices(index_t l) const {
    return std::span<const index_t>(vertices).subspan(
        static_cast<size_t>(level_ptr[static_cast<size_t>(l)]),
        static_cast<size_t>(level_ptr[static_cast<size_t>(l) + 1] -
                            level_ptr[static_cast<size_t>(l)]));
  }

  index_t levelSize(index_t l) const {
    return static_cast<index_t>(levelVertices(l).size());
  }

  /// n / #levels; 0 for the empty DAG.
  double averageWavefrontSize() const;
};

/// Computes level sets with one Kahn-style sweep; throws std::logic_error
/// if the graph contains a cycle.
Wavefronts computeWavefronts(const Dag& dag);

/// Longest path length in vertices (== number of wavefronts).
index_t criticalPathLength(const Dag& dag);

}  // namespace sts::dag
