#include "dag/wavefronts.hpp"

#include <numeric>
#include <stdexcept>

namespace sts::dag {

double Wavefronts::averageWavefrontSize() const {
  if (num_levels == 0) return 0.0;
  return static_cast<double>(vertices.size()) /
         static_cast<double>(num_levels);
}

Wavefronts computeWavefronts(const Dag& dag) {
  const index_t n = dag.numVertices();
  Wavefronts w;
  w.level.assign(static_cast<size_t>(n), 0);

  std::vector<index_t> indeg(static_cast<size_t>(n));
  std::vector<index_t> queue;
  queue.reserve(static_cast<size_t>(n));
  for (index_t v = 0; v < n; ++v) {
    indeg[static_cast<size_t>(v)] = dag.inDegree(v);
    if (indeg[static_cast<size_t>(v)] == 0) queue.push_back(v);
  }
  size_t processed = 0;
  while (processed < queue.size()) {
    const index_t v = queue[processed++];
    const index_t lv = w.level[static_cast<size_t>(v)];
    for (const index_t u : dag.children(v)) {
      auto& lu = w.level[static_cast<size_t>(u)];
      lu = std::max(lu, static_cast<index_t>(lv + 1));
      if (--indeg[static_cast<size_t>(u)] == 0) queue.push_back(u);
    }
  }
  if (processed != static_cast<size_t>(n)) {
    throw std::logic_error("computeWavefronts: graph contains a cycle");
  }
  for (index_t v = 0; v < n; ++v) {
    w.num_levels = std::max(w.num_levels,
                            static_cast<index_t>(w.level[static_cast<size_t>(v)] + 1));
  }

  // Bucket vertices by level; iterating v ascending keeps each level sorted.
  w.level_ptr.assign(static_cast<size_t>(w.num_levels) + 1, 0);
  for (index_t v = 0; v < n; ++v) {
    ++w.level_ptr[static_cast<size_t>(w.level[static_cast<size_t>(v)]) + 1];
  }
  std::partial_sum(w.level_ptr.begin(), w.level_ptr.end(), w.level_ptr.begin());
  w.vertices.resize(static_cast<size_t>(n));
  std::vector<offset_t> cursor(w.level_ptr.begin(), w.level_ptr.end() - 1);
  for (index_t v = 0; v < n; ++v) {
    const auto l = static_cast<size_t>(w.level[static_cast<size_t>(v)]);
    w.vertices[static_cast<size_t>(cursor[l]++)] = v;
  }
  return w;
}

index_t criticalPathLength(const Dag& dag) {
  return computeWavefronts(dag).num_levels;
}

}  // namespace sts::dag
