#pragma once

#include <optional>
#include <span>
#include <vector>

#include "dag/dag.hpp"

/// \file toposort.hpp
/// Topological orderings (Kahn 1962) used by coarsening (Alg. 4.1 iterates
/// vertices in reverse topological order) and by validators.

namespace sts::dag {

/// Kahn topological order with a smallest-ID tie-break (deterministic).
/// Returns std::nullopt if the graph has a cycle.
std::optional<std::vector<index_t>> topologicalOrder(const Dag& dag);

/// order reversed; convenience for Alg. 4.1.
std::optional<std::vector<index_t>> reverseTopologicalOrder(const Dag& dag);

/// True iff `order` is a permutation of the vertices where every edge goes
/// from an earlier to a later position.
bool isTopologicalOrder(const Dag& dag, std::span<const index_t> order);

}  // namespace sts::dag
