#include "dag/toposort.hpp"

#include <algorithm>
#include <queue>

#include "sparse/permute.hpp"

namespace sts::dag {

std::optional<std::vector<index_t>> topologicalOrder(const Dag& dag) {
  const index_t n = dag.numVertices();
  std::vector<index_t> indeg(static_cast<size_t>(n));
  // Min-heap on vertex ID for a canonical order.
  std::priority_queue<index_t, std::vector<index_t>, std::greater<>> ready;
  for (index_t v = 0; v < n; ++v) {
    indeg[static_cast<size_t>(v)] = dag.inDegree(v);
    if (indeg[static_cast<size_t>(v)] == 0) ready.push(v);
  }
  std::vector<index_t> order;
  order.reserve(static_cast<size_t>(n));
  while (!ready.empty()) {
    const index_t v = ready.top();
    ready.pop();
    order.push_back(v);
    for (const index_t u : dag.children(v)) {
      if (--indeg[static_cast<size_t>(u)] == 0) ready.push(u);
    }
  }
  if (order.size() != static_cast<size_t>(n)) return std::nullopt;
  return order;
}

std::optional<std::vector<index_t>> reverseTopologicalOrder(const Dag& dag) {
  auto order = topologicalOrder(dag);
  if (order) std::reverse(order->begin(), order->end());
  return order;
}

bool isTopologicalOrder(const Dag& dag, std::span<const index_t> order) {
  const index_t n = dag.numVertices();
  if (static_cast<index_t>(order.size()) != n) return false;
  if (!sparse::isPermutation(order)) return false;
  std::vector<index_t> position(static_cast<size_t>(n));
  for (size_t i = 0; i < order.size(); ++i) {
    position[static_cast<size_t>(order[i])] = static_cast<index_t>(i);
  }
  for (index_t v = 0; v < n; ++v) {
    for (const index_t u : dag.children(v)) {
      if (position[static_cast<size_t>(v)] >= position[static_cast<size_t>(u)]) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace sts::dag
