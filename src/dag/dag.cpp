#include "dag/dag.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace sts::dag {

namespace {

/// Builds a CSR-style adjacency from (key, value) pairs with keys in [0, n).
/// Pairs must be pre-sorted and deduplicated by the caller.
void buildAdjacency(index_t n, std::span<const Edge> pairs,
                    bool key_is_parent, std::vector<offset_t>& ptr,
                    std::vector<index_t>& adj) {
  ptr.assign(static_cast<size_t>(n) + 1, 0);
  for (const auto& [u, v] : pairs) {
    const index_t key = key_is_parent ? u : v;
    ++ptr[static_cast<size_t>(key) + 1];
  }
  std::partial_sum(ptr.begin(), ptr.end(), ptr.begin());
  adj.resize(pairs.size());
  std::vector<offset_t> cursor(ptr.begin(), ptr.end() - 1);
  for (const auto& [u, v] : pairs) {
    const index_t key = key_is_parent ? u : v;
    const index_t value = key_is_parent ? v : u;
    adj[static_cast<size_t>(cursor[static_cast<size_t>(key)]++)] = value;
  }
  // Sort each neighborhood (stable layout for tests and determinism).
  for (index_t v = 0; v < n; ++v) {
    std::sort(adj.begin() + static_cast<std::ptrdiff_t>(ptr[static_cast<size_t>(v)]),
              adj.begin() + static_cast<std::ptrdiff_t>(ptr[static_cast<size_t>(v) + 1]));
  }
}

}  // namespace

Dag Dag::fromEdges(index_t n, std::span<const Edge> edges,
                   std::span<const weight_t> weights) {
  if (n < 0) throw std::invalid_argument("Dag::fromEdges: negative n");
  if (!weights.empty() && static_cast<index_t>(weights.size()) != n) {
    throw std::invalid_argument("Dag::fromEdges: weights size mismatch");
  }
  std::vector<Edge> sorted(edges.begin(), edges.end());
  for (const auto& [u, v] : sorted) {
    if (u < 0 || u >= n || v < 0 || v >= n) {
      throw std::invalid_argument("Dag::fromEdges: edge endpoint out of range");
    }
    if (u == v) throw std::invalid_argument("Dag::fromEdges: self-loop");
  }
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  Dag d;
  d.n_ = n;
  d.weight_ = weights.empty()
                  ? std::vector<weight_t>(static_cast<size_t>(n), 1)
                  : std::vector<weight_t>(weights.begin(), weights.end());
  for (const weight_t w : d.weight_) {
    if (w <= 0) throw std::invalid_argument("Dag::fromEdges: weight <= 0");
  }
  d.total_weight_ =
      std::accumulate(d.weight_.begin(), d.weight_.end(), weight_t{0});
  buildAdjacency(n, sorted, /*key_is_parent=*/true, d.out_ptr_, d.out_adj_);
  buildAdjacency(n, sorted, /*key_is_parent=*/false, d.in_ptr_, d.in_adj_);
  return d;
}

Dag Dag::fromLowerTriangular(const sparse::CsrMatrix& lower) {
  if (lower.rows() != lower.cols()) {
    throw std::invalid_argument("fromLowerTriangular: matrix must be square");
  }
  if (!lower.isLowerTriangular()) {
    throw std::invalid_argument("fromLowerTriangular: matrix is not lower triangular");
  }
  const index_t n = lower.rows();

  Dag d;
  d.n_ = n;
  d.weight_.resize(static_cast<size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    d.weight_[static_cast<size_t>(i)] =
        std::max<weight_t>(1, lower.rowNnz(i));
  }
  d.total_weight_ =
      std::accumulate(d.weight_.begin(), d.weight_.end(), weight_t{0});

  // Parents of i are exactly the off-diagonal columns of row i (sorted).
  d.in_ptr_.assign(static_cast<size_t>(n) + 1, 0);
  for (index_t i = 0; i < n; ++i) {
    offset_t cnt = 0;
    for (const index_t j : lower.rowCols(i)) cnt += (j < i) ? 1 : 0;
    d.in_ptr_[static_cast<size_t>(i) + 1] = cnt;
  }
  std::partial_sum(d.in_ptr_.begin(), d.in_ptr_.end(), d.in_ptr_.begin());
  d.in_adj_.resize(static_cast<size_t>(d.in_ptr_.back()));
  {
    offset_t k = 0;
    for (index_t i = 0; i < n; ++i) {
      for (const index_t j : lower.rowCols(i)) {
        if (j < i) d.in_adj_[static_cast<size_t>(k++)] = j;
      }
    }
  }
  // Children = transpose of parents; filling in increasing child order keeps
  // each child list sorted.
  d.out_ptr_.assign(static_cast<size_t>(n) + 1, 0);
  for (const index_t j : d.in_adj_) ++d.out_ptr_[static_cast<size_t>(j) + 1];
  std::partial_sum(d.out_ptr_.begin(), d.out_ptr_.end(), d.out_ptr_.begin());
  d.out_adj_.resize(d.in_adj_.size());
  {
    std::vector<offset_t> cursor(d.out_ptr_.begin(), d.out_ptr_.end() - 1);
    for (index_t i = 0; i < n; ++i) {
      for (offset_t k = d.in_ptr_[static_cast<size_t>(i)];
           k < d.in_ptr_[static_cast<size_t>(i) + 1]; ++k) {
        const auto j = static_cast<size_t>(d.in_adj_[static_cast<size_t>(k)]);
        d.out_adj_[static_cast<size_t>(cursor[j]++)] = i;
      }
    }
  }
  return d;
}

Dag Dag::fromUpperTriangular(const sparse::CsrMatrix& upper) {
  if (upper.rows() != upper.cols()) {
    throw std::invalid_argument("fromUpperTriangular: matrix must be square");
  }
  if (!upper.isUpperTriangular()) {
    throw std::invalid_argument("fromUpperTriangular: matrix is not upper triangular");
  }
  const index_t n = upper.rows();
  // Backward substitution runs rows n-1..0; relabel k = n-1-i so that the
  // DAG keeps the "edges ascend IDs" property of the forward case.
  std::vector<Edge> edges;
  std::vector<weight_t> weights(static_cast<size_t>(n), 1);
  for (index_t i = 0; i < n; ++i) {
    weights[static_cast<size_t>(n - 1 - i)] =
        std::max<weight_t>(1, upper.rowNnz(i));
    for (const index_t j : upper.rowCols(i)) {
      if (j > i) edges.emplace_back(n - 1 - j, n - 1 - i);
    }
  }
  return fromEdges(n, edges, weights);
}

bool Dag::hasEdge(index_t parent, index_t child) const {
  const auto kids = children(parent);
  return std::binary_search(kids.begin(), kids.end(), child);
}

std::vector<index_t> Dag::sources() const {
  std::vector<index_t> s;
  for (index_t v = 0; v < n_; ++v) {
    if (inDegree(v) == 0) s.push_back(v);
  }
  return s;
}

std::vector<index_t> Dag::sinks() const {
  std::vector<index_t> s;
  for (index_t v = 0; v < n_; ++v) {
    if (outDegree(v) == 0) s.push_back(v);
  }
  return s;
}

bool Dag::isAcyclic() const {
  std::vector<index_t> indeg(static_cast<size_t>(n_));
  std::vector<index_t> queue;
  for (index_t v = 0; v < n_; ++v) {
    indeg[static_cast<size_t>(v)] = inDegree(v);
    if (indeg[static_cast<size_t>(v)] == 0) queue.push_back(v);
  }
  size_t processed = 0;
  while (processed < queue.size()) {
    const index_t v = queue[processed++];
    for (const index_t u : children(v)) {
      if (--indeg[static_cast<size_t>(u)] == 0) queue.push_back(u);
    }
  }
  return processed == static_cast<size_t>(n_);
}

Dag Dag::rangeSubgraph(index_t lo, index_t hi) const {
  if (lo < 0 || hi < lo || hi > n_) {
    throw std::invalid_argument("rangeSubgraph: bad range");
  }
  const index_t m = hi - lo;
  std::vector<Edge> edges;
  for (index_t v = lo; v < hi; ++v) {
    for (const index_t u : parents(v)) {
      if (u >= lo && u < hi) edges.emplace_back(u - lo, v - lo);
    }
  }
  std::vector<weight_t> w(weight_.begin() + lo, weight_.begin() + hi);
  return fromEdges(m, edges, w);
}

void Dag::validate() const {
  if (out_ptr_.size() != static_cast<size_t>(n_) + 1 ||
      in_ptr_.size() != static_cast<size_t>(n_) + 1) {
    throw std::logic_error("Dag: pointer array size mismatch");
  }
  if (out_adj_.size() != in_adj_.size()) {
    throw std::logic_error("Dag: in/out edge count mismatch");
  }
  if (weight_.size() != static_cast<size_t>(n_)) {
    throw std::logic_error("Dag: weight size mismatch");
  }
  for (index_t v = 0; v < n_; ++v) {
    if (weight_[static_cast<size_t>(v)] <= 0) {
      throw std::logic_error("Dag: non-positive weight");
    }
    const auto kids = children(v);
    for (size_t k = 0; k < kids.size(); ++k) {
      if (kids[k] < 0 || kids[k] >= n_ || kids[k] == v) {
        throw std::logic_error("Dag: bad child");
      }
      if (k > 0 && kids[k] <= kids[k - 1]) {
        throw std::logic_error("Dag: children not strictly sorted");
      }
      const auto pars = parents(kids[k]);
      if (!std::binary_search(pars.begin(), pars.end(), v)) {
        throw std::logic_error("Dag: adjacency not mirrored");
      }
    }
  }
}

std::vector<Edge> Dag::edgeList() const {
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(numEdges()));
  for (index_t v = 0; v < n_; ++v) {
    for (const index_t u : children(v)) edges.emplace_back(v, u);
  }
  return edges;
}

}  // namespace sts::dag
