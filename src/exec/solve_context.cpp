#include "exec/solve_context.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "exec/affinity.hpp"
#include "obs/trace.hpp"

namespace sts::exec {

SolveContext::SolveContext(int num_threads, sts::index_t num_vertices)
    : num_threads_(num_threads), n_(num_vertices), barrier_(num_threads) {
  if (num_threads <= 0 || num_vertices < 0) {
    throw std::invalid_argument("SolveContext: bad shape");
  }
}

void SolveContext::requireShape(int num_threads, sts::index_t num_vertices,
                                const char* who) const {
  if (num_threads_ < num_threads || n_ != num_vertices) {
    throw std::invalid_argument(
        std::string(who) + ": context shape (" +
        std::to_string(num_threads_) + " threads, " + std::to_string(n_) +
        " rows) cannot host a solve of (" + std::to_string(num_threads) +
        " threads, " + std::to_string(num_vertices) + " rows)");
  }
}

void SolveContext::setPinnedCores(std::vector<int> cores) {
  pin_cores_ = std::move(cores);
  pinned_threads_.store(0, std::memory_order_relaxed);
  migrated_threads_.store(0, std::memory_order_relaxed);
}

void SolveContext::clearPinnedCores() { setPinnedCores({}); }

void SolveContext::notePin(const ScopedPin& pin) {
  // Emitted whether or not the pin took (ok=0 on the portable no-affinity
  // fallback) so a trace always shows the team fan-out, one instant per
  // member, even on hosts where placement is a no-op.
  STS_TRACE_INSTANT("engine", "pin", "ok", pin.pinned() ? 1 : 0, "cpu",
                    static_cast<std::uint64_t>(pin.cpu() < 0 ? 0 : pin.cpu()));
  if (!pin.pinned()) return;
  pinned_threads_.fetch_add(1, std::memory_order_relaxed);
  if (pin.migrated()) {
    migrated_threads_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::uint32_t SolveContext::beginP2pEpoch() {
  const auto n = static_cast<std::size_t>(n_);
  if (!done_) {
    done_ = std::make_unique<std::atomic<std::uint32_t>[]>(n);
    for (std::size_t v = 0; v < n; ++v) {
      done_[v].store(0, std::memory_order_relaxed);
    }
    epoch_ = 0;
  }
  if (++epoch_ == 0) {
    // Wraparound: a flag stamped `e` in a long-gone solve would otherwise
    // equal a reissued epoch `e` and release a waiter before the vertex is
    // computed. Clear the flags and skip epoch 0 (the "never computed"
    // value of a fresh array).
    for (std::size_t v = 0; v < n; ++v) {
      done_[v].store(0, std::memory_order_relaxed);
    }
    epoch_ = 1;
  }
  return epoch_;
}

std::span<double> SolveContext::bScratch(std::size_t size) {
  if (b_scratch_.size() < size) b_scratch_.resize(size);
  return std::span<double>(b_scratch_.data(), size);
}

std::span<double> SolveContext::xScratch(std::size_t size) {
  if (x_scratch_.size() < size) x_scratch_.resize(size);
  return std::span<double>(x_scratch_.data(), size);
}

std::span<double> SolveContext::sspScratch(std::size_t size) {
  if (ssp_scratch_.size() < size) ssp_scratch_.resize(size);
  return std::span<double>(ssp_scratch_.data(), size);
}

}  // namespace sts::exec
