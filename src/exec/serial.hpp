#pragma once

#include <span>

#include "sparse/csr.hpp"

/// \file serial.hpp
/// Reference serial forward-/backward-substitution kernels (Eq. 2.1). All
/// parallel executors in this module compute each row with the same CSR
/// entry order, so their results are bit-identical to these kernels (only
/// the *permuted* executor differs, by reordering within rows).

namespace sts::exec {

using sparse::CsrMatrix;
using sts::index_t;

/// x = L^{-1} b for lower triangular L with a full nonzero diagonal.
/// Requires the diagonal to be the last entry of each row (guaranteed by
/// CSR column ordering for a lower triangular matrix).
/// Throws std::invalid_argument on structural violations.
void solveLowerSerial(const CsrMatrix& lower, std::span<const double> b,
                      std::span<double> x);

/// x = U^{-1} b for upper triangular U with a full nonzero diagonal.
void solveUpperSerial(const CsrMatrix& upper, std::span<const double> b,
                      std::span<double> x);

/// Multi-RHS forward substitution (SpTRSM): X = L^{-1} B where B and X are
/// n x nrhs row-major (row i holds the nrhs values of unknown i — the
/// layout that keeps the per-row kernel streaming).
void solveLowerSerialMultiRhs(const CsrMatrix& lower,
                              std::span<const double> b, std::span<double> x,
                              index_t nrhs);

/// Validates the structural preconditions of the solvers once, so that the
/// hot path can skip them: square, lower (or upper) triangular, full
/// diagonal. Throws std::invalid_argument with a description on failure.
void requireSolvableLower(const CsrMatrix& lower);
void requireSolvableUpper(const CsrMatrix& upper);

}  // namespace sts::exec
