#pragma once

#include <span>
#include <vector>

#include "core/schedule.hpp"
#include "exec/elastic.hpp"
#include "exec/slab.hpp"
#include "exec/solve_context.hpp"
#include "exec/storage.hpp"
#include "sparse/csr.hpp"

/// \file ssp.hpp
/// Stale-synchronous-parallel (SSP) SpTRSV executor with residual-checked
/// iterative refinement — the bounded-staleness execution mode of the
/// source authors' elasticity follow-up paper ("Elasticity in Parallel
/// Sparse Triangular Solve", PAPERS.md), sitting beside the exact BSP and
/// P2P executors.
///
/// ## Execution model
///
/// The analyzed schedule's supersteps are chunked into blocks of
/// `staleness + 1`; one sweep barriers only at CHUNK boundaries instead of
/// superstep boundaries, cutting the synchronization count by a factor of
/// `staleness + 1`. Within a chunk a thread may need an operand x[j] that
/// another thread of the SAME chunk is still computing; the SSP kernels
/// (row_kernels.hpp, SspGuard) drop that term — deterministically, with no
/// cross-thread read of in-flight data — which is exactly reading the
/// previous refinement iterate's value for it (zero on the first sweep).
/// One sweep therefore applies M^{-1} exactly, where M is the lower
/// triangle with the same-chunk cross-thread entries N removed (L = M + N).
///
/// ## Refinement
///
/// solve() iterates the residual-checked splitting
///
///     x_{m+1} = x_m + M^{-1} (b - L x_m)        (== M^{-1} (b - N x_m))
///
/// until ||b - L x||_inf meets SspOptions::tolerance or the iteration cap
/// triggers the EXACT FALLBACK: one staleness-0 sweep, which is the BSP
/// schedule walk itself. M^{-1} N is strictly lower triangular, hence
/// nilpotent — in exact arithmetic the loop terminates in finitely many
/// steps, and every dropped operand enters one iteration late, i.e. at
/// most `staleness` supersteps stale.
///
/// ## Degeneracy contract (the differential anchor)
///
/// At staleness 0 the chunk is one superstep; a valid schedule has no
/// cross-thread same-superstep dependency, so the guard never fires, the
/// first sweep runs the exact kernels' arithmetic sequence verbatim, the
/// residual check passes with zero refinements, and the result is BITWISE
/// IDENTICAL to the BSP executor for every scheduler kind, team size, and
/// storage kind (tests/test_ssp.cpp, bench_ssp_staleness exit gate).
///
/// Reentrancy and elasticity follow bsp.hpp: the executor is immutable
/// after construction, per-solve state (barrier + SSP scratch) lives in
/// the SolveContext, and per-(team, policy) plans are cached like the BSP
/// fold plans. Both storages (shared CSR / slab) are supported.

namespace sts::exec {

using core::Schedule;
using sparse::CsrMatrix;
using sts::index_t;
using sts::offset_t;

/// Per-solve SSP knobs (a solve-time choice, like team and storage).
struct SspOptions {
  /// Supersteps a stale read may lag: chunk width is staleness + 1.
  /// 0 degenerates to the exact BSP walk (bitwise). Must be >= 0.
  index_t staleness = 1;
  /// Absolute convergence bound on ||b - L x||_inf.
  double tolerance = 1e-8;
  /// Refinement sweeps before the exact fallback kicks in.
  int max_refinements = 20;
};

/// What a bounded-stale solve did (the engine folds these into its
/// serving stats and metrics registry).
struct SspResult {
  int refinements = 0;      ///< correction sweeps beyond the first
  double residual = 0.0;    ///< final ||b - L x||_inf
  bool converged = false;   ///< final residual <= tolerance (incl. fallback)
  bool fell_back = false;   ///< iteration cap hit; exact sweep re-solved
};

class SspExecutor {
 public:
  /// From a validated schedule (the BSP/P2P analysis product): work lists
  /// are materialized per (superstep, core) group like BspExecutor's.
  SspExecutor(const CsrMatrix& lower, const Schedule& schedule);

  /// From explicit full-width work lists (the contiguous/reordered path
  /// hands over its group_ptr ranges via listsFromGroupPtr). `lists` must
  /// partition [0, lower.rows()) with num_supersteps boundaries per
  /// thread; checked builds enforce check::validateSspPlan.
  SspExecutor(const CsrMatrix& lower, index_t num_supersteps,
              detail::FoldedLists lists);

  /// Materializes contiguous (superstep, core) row ranges — the
  /// ContiguousBspExecutor's group_ptr encoding — as explicit work lists.
  static detail::FoldedLists listsFromGroupPtr(
      std::span<const offset_t> group_ptr, index_t num_supersteps,
      int num_cores);

  /// Bounded-stale x = L^{-1} b to opts.tolerance (refinement loop above).
  /// Shapes and team/policy/storage contracts match BspExecutor::solve;
  /// concurrent solves need distinct contexts.
  SspResult solve(std::span<const double> b, std::span<double> x,
                  const SspOptions& opts, SolveContext& ctx, int team,
                  core::FoldPolicy policy, StorageKind storage) const;

  /// Bounded-stale X = L^{-1} B, row-major n x nrhs; the residual bound
  /// holds per RHS column (the check reduces over all of them).
  SspResult solveMultiRhs(std::span<const double> b, std::span<double> x,
                          index_t nrhs, const SspOptions& opts,
                          SolveContext& ctx, int team,
                          core::FoldPolicy policy,
                          StorageKind storage) const;

  int numThreads() const { return num_threads_; }
  index_t numSupersteps() const { return num_supersteps_; }
  /// Chunk count (== barriers per sweep) at a given staleness.
  index_t numChunks(index_t staleness) const {
    return (num_supersteps_ + staleness) / (staleness + 1);
  }

 private:
  /// Per-(team, policy) execution plan: the folded work lists plus the
  /// row -> folded-thread owner map the SspGuard reads.
  struct SspPlan {
    detail::FoldedLists lists;
    std::vector<int> owner;
  };

  const SspPlan& plan(int team, core::FoldPolicy policy) const;
  const detail::SlabPlan& slabPlan(int team, core::FoldPolicy policy) const;

  /// One M^{-1} sweep of `rhs` into `x` (nrhs columns) at the given
  /// staleness; barriers at chunk boundaries only.
  void sweep(std::span<const double> rhs, std::span<double> x, index_t nrhs,
             index_t staleness, SolveContext& ctx, int team,
             core::FoldPolicy policy, StorageKind storage) const;

  /// x += e (skipped when `e` is empty), then r = rhs - L x; returns
  /// ||r||_inf. One parallel region, an internal barrier between the
  /// update and the residual read.
  double updateAndResidual(std::span<const double> rhs, std::span<double> x,
                           std::span<const double> e, std::span<double> r,
                           index_t nrhs, SolveContext& ctx, int team,
                           core::FoldPolicy policy) const;

  SspResult solveImpl(std::span<const double> b, std::span<double> x,
                      index_t nrhs, const SspOptions& opts, SolveContext& ctx,
                      int team, core::FoldPolicy policy,
                      StorageKind storage) const;

  const CsrMatrix& lower_;
  int num_threads_ = 0;
  index_t num_supersteps_ = 0;
  /// row -> superstep of the analyzed schedule (team-invariant: folding
  /// preserves supersteps).
  std::vector<index_t> row_step_;
  /// The full-width plan; also the shared team == numThreads() plan.
  SspPlan full_;
  /// Per-(superstep, rank) nnz loads (superstep-major); feeds kBinPack.
  std::vector<core::weight_t> rank_loads_;
  detail::TeamPlanCache<SspPlan> plans_;
  detail::TeamPlanCache<detail::SlabPlan> slabs_;
};

}  // namespace sts::exec
