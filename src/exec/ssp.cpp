#include "exec/ssp.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "check/check.hpp"
#include "exec/affinity.hpp"
#include "exec/row_kernels.hpp"
#include "exec/serial.hpp"
#include "fault/failpoint.hpp"
#include "obs/trace.hpp"

namespace sts::exec {

namespace {

/// Work lists materialized from a schedule's (superstep, core) groups —
/// the same loop BspExecutor's constructor runs.
detail::FoldedLists listsFromSchedule(const Schedule& schedule) {
  detail::FoldedLists lists;
  const int cores = schedule.numCores();
  const index_t steps = schedule.numSupersteps();
  lists.verts.resize(static_cast<size_t>(cores));
  lists.step_ptr.resize(static_cast<size_t>(cores));
  for (int t = 0; t < cores; ++t) {
    auto& verts = lists.verts[static_cast<size_t>(t)];
    auto& ptr = lists.step_ptr[static_cast<size_t>(t)];
    ptr.push_back(0);
    for (index_t s = 0; s < steps; ++s) {
      const auto group = schedule.group(s, t);
      verts.insert(verts.end(), group.begin(), group.end());
      ptr.push_back(static_cast<offset_t>(verts.size()));
    }
  }
  return lists;
}

/// The SSP chunk region for the slab walk: stream records superstep by
/// superstep, barrier only when a chunk boundary passes. The kernel
/// receives (record, chunk_begin superstep, thread).
template <typename NotePinFn, typename KernelFn>
void sspSlabChunkRegion(const detail::SlabPlan& plan, index_t steps,
                        index_t chunk, int team, std::span<const int> pin_set,
                        SpinBarrier& barrier, obs::SolveTrace* sink,
                        NotePinFn&& note_pin, KernelFn&& kernel) {
  const bool sync = team > 1;
  omp_set_dynamic(0);
#pragma omp parallel num_threads(team)
  {
    const int t = omp_get_thread_num();
    const ScopedPin pin(pin_set, t);
    note_pin(pin);
    obs::StepTracer tracer(sink);
    int sense = barrier.initialSense();
    index_t step = 0;
    index_t chunk_begin = 0;
    std::uint64_t chunk_idx = 0;
    detail::forEachSlabRecord(
        plan.threads[static_cast<size_t>(t)], steps,
        [&](const detail::SlabRecordView& rec) { kernel(rec, chunk_begin, t); },
        [&] {
          ++step;
          if (step % chunk == 0 || step == steps) {
            // Chunk-boundary latency-spike failpoint (delay actions only:
            // a throw escaping this omp region would terminate).
            STS_FAILPOINT_RANK("exec.ssp_chunk", t);
            tracer.computeDone(chunk_idx);
            if (sync) {
              barrier.wait(sense, team);
              tracer.waitDone(chunk_idx);
            }
            ++chunk_idx;
            chunk_begin = step;
          }
        });
  }
}

}  // namespace

SspExecutor::SspExecutor(const CsrMatrix& lower, const Schedule& schedule)
    : SspExecutor(lower, schedule.numSupersteps(),
                  listsFromSchedule(schedule)) {
  if (schedule.numVertices() != lower.rows()) {
    throw std::invalid_argument("SspExecutor: schedule/matrix size mismatch");
  }
}

SspExecutor::SspExecutor(const CsrMatrix& lower, index_t num_supersteps,
                         detail::FoldedLists lists)
    : lower_(lower),
      num_threads_(static_cast<int>(lists.verts.size())),
      num_supersteps_(num_supersteps) {
  requireSolvableLower(lower);
  if (num_threads_ <= 0 || num_supersteps_ <= 0 ||
      lists.step_ptr.size() != lists.verts.size()) {
    throw std::invalid_argument("SspExecutor: bad work lists");
  }
  size_t covered = 0;
  for (size_t t = 0; t < lists.verts.size(); ++t) {
    if (lists.step_ptr[t].size() !=
        static_cast<size_t>(num_supersteps_) + 1) {
      throw std::invalid_argument("SspExecutor: bad step boundaries");
    }
    covered += lists.verts[t].size();
  }
  if (covered != static_cast<size_t>(lower.rows())) {
    throw std::invalid_argument("SspExecutor: lists do not cover the matrix");
  }
  full_.lists = std::move(lists);
  full_.owner.assign(static_cast<size_t>(lower.rows()), 0);
  row_step_.assign(static_cast<size_t>(lower.rows()), 0);
  for (int t = 0; t < num_threads_; ++t) {
    const auto& verts = full_.lists.verts[static_cast<size_t>(t)];
    const auto& ptr = full_.lists.step_ptr[static_cast<size_t>(t)];
    for (index_t s = 0; s < num_supersteps_; ++s) {
      const auto begin = static_cast<size_t>(ptr[static_cast<size_t>(s)]);
      const auto end = static_cast<size_t>(ptr[static_cast<size_t>(s) + 1]);
      for (size_t k = begin; k < end; ++k) {
        full_.owner[static_cast<size_t>(verts[k])] = t;
        row_step_[static_cast<size_t>(verts[k])] = s;
      }
    }
  }
#if STS_CHECKS
  check::enforce(check::validateSspPlan(lower_, full_.lists, num_supersteps_),
                 "SspExecutor");
#endif
  rank_loads_ = detail::threadListLoads(
      full_.lists.verts, full_.lists.step_ptr, num_supersteps_,
      lower.rowPtr());
  plans_.init(num_threads_, &full_);
  slabs_.init(num_threads_);
}

detail::FoldedLists SspExecutor::listsFromGroupPtr(
    std::span<const offset_t> group_ptr, index_t num_supersteps,
    int num_cores) {
  detail::FoldedLists lists;
  lists.verts.resize(static_cast<size_t>(num_cores));
  lists.step_ptr.resize(static_cast<size_t>(num_cores));
  for (int t = 0; t < num_cores; ++t) {
    auto& verts = lists.verts[static_cast<size_t>(t)];
    auto& ptr = lists.step_ptr[static_cast<size_t>(t)];
    ptr.push_back(0);
    for (index_t s = 0; s < num_supersteps; ++s) {
      const size_t g = static_cast<size_t>(s) * static_cast<size_t>(num_cores) +
                       static_cast<size_t>(t);
      const auto lo = static_cast<index_t>(group_ptr[g]);
      const auto hi = static_cast<index_t>(group_ptr[g + 1]);
      for (index_t i = lo; i < hi; ++i) verts.push_back(i);
      ptr.push_back(static_cast<offset_t>(verts.size()));
    }
  }
  return lists;
}

const SspExecutor::SspPlan& SspExecutor::plan(int team,
                                              core::FoldPolicy policy) const {
  return plans_.get(team, policy, [this](int t, core::FoldPolicy pol) {
    STS_TRACE_SPAN1("plan", "ssp_fold_build", "team", t);
    const auto map =
        core::foldRankMap(num_supersteps_, num_threads_, t, pol, rank_loads_);
    SspPlan folded;
    folded.lists = detail::foldThreadLists(
        full_.lists.verts, full_.lists.step_ptr, num_supersteps_, t, map);
    folded.owner.assign(static_cast<size_t>(lower_.rows()), 0);
    for (size_t q = 0; q < folded.lists.verts.size(); ++q) {
      for (const index_t v : folded.lists.verts[q]) {
        folded.owner[static_cast<size_t>(v)] = static_cast<int>(q);
      }
    }
    return folded;
  });
}

const detail::SlabPlan& SspExecutor::slabPlan(int team,
                                              core::FoldPolicy policy) const {
  if (team == num_threads_) {
    // Policy-invariant at full width: one slab shared across policies.
    return slabs_.getPolicyShared(team, [this]([[maybe_unused]] int t) {
      STS_TRACE_SPAN1("plan", "slab_build", "team", t);
      return detail::buildSlabPlan(lower_, full_.lists);
    });
  }
  return slabs_.get(team, policy, [this](int t, core::FoldPolicy pol) {
    STS_TRACE_SPAN1("plan", "slab_build", "team", t);
    return detail::buildSlabPlan(lower_, plan(t, pol).lists);
  });
}

void SspExecutor::sweep(std::span<const double> rhs, std::span<double> x,
                        index_t nrhs, index_t staleness, SolveContext& ctx,
                        int team, core::FoldPolicy policy,
                        StorageKind storage) const {
  const SspPlan& exec_plan = plan(team, policy);
  const index_t chunk = staleness + 1;
  const index_t* row_step = row_step_.data();
  const int* owner = exec_plan.owner.data();
  const auto r = static_cast<size_t>(nrhs);

  if (storage == StorageKind::kSlab) {
    sspSlabChunkRegion(
        slabPlan(team, policy), num_supersteps_, chunk, team,
        ctx.pinnedCores(), ctx.barrier_, ctx.trace(),
        [&ctx](const ScopedPin& pin) { ctx.notePin(pin); },
        [&](const detail::SlabRecordView& rec, index_t chunk_begin, int t) {
          const detail::SspGuard guard{row_step, owner, chunk_begin, t};
          if (nrhs == 1) {
            detail::computeRowPackedSsp(rec.cols, rec.vals, rec.nnz, rec.diag,
                                        rhs, x, rec.row, guard);
          } else {
            detail::computeRowMultiPackedSsp(rec.cols, rec.vals, rec.nnz,
                                             rec.diag, rhs, x, rec.row, r,
                                             guard);
          }
        });
    return;
  }

  const auto row_ptr = lower_.rowPtr();
  const auto col_idx = lower_.colIdx();
  const auto values = lower_.values();
  const index_t steps = num_supersteps_;
  const bool sync = team > 1;
  const std::span<const int> pin_set = ctx.pinnedCores();
  SpinBarrier& barrier = ctx.barrier_;

  omp_set_dynamic(0);
#pragma omp parallel num_threads(team)
  {
    const int t = omp_get_thread_num();
    const ScopedPin pin(pin_set, t);
    ctx.notePin(pin);
    obs::StepTracer tracer(ctx.trace());
    int sense = barrier.initialSense();
    const auto& verts = exec_plan.lists.verts[static_cast<size_t>(t)];
    const auto& ptr = exec_plan.lists.step_ptr[static_cast<size_t>(t)];
    std::uint64_t chunk_idx = 0;
    for (index_t c0 = 0; c0 < steps; c0 += chunk) {
      const index_t c1 = std::min<index_t>(c0 + chunk, steps);
      const detail::SspGuard guard{row_step, owner, c0, t};
      for (index_t s = c0; s < c1; ++s) {
        const auto begin = static_cast<size_t>(ptr[static_cast<size_t>(s)]);
        const auto end = static_cast<size_t>(ptr[static_cast<size_t>(s) + 1]);
        for (size_t k = begin; k < end; ++k) {
          if (nrhs == 1) {
            detail::computeRowSsp(row_ptr, col_idx, values, rhs, x, verts[k],
                                  guard);
          } else {
            detail::computeRowMultiSsp(row_ptr, col_idx, values, rhs, x,
                                       verts[k], r, guard);
          }
        }
      }
      // Same chunk-boundary failpoint as the slab region (delay only).
      STS_FAILPOINT_RANK("exec.ssp_chunk", t);
      tracer.computeDone(chunk_idx);
      if (sync) {
        barrier.wait(sense, team);
        tracer.waitDone(chunk_idx);
      }
      ++chunk_idx;
    }
  }
}

double SspExecutor::updateAndResidual(std::span<const double> rhs,
                                      std::span<double> x,
                                      std::span<const double> e,
                                      std::span<double> r, index_t nrhs,
                                      SolveContext& ctx, int team,
                                      core::FoldPolicy policy) const {
  const SspPlan& exec_plan = plan(team, policy);
  const auto row_ptr = lower_.rowPtr();
  const auto col_idx = lower_.colIdx();
  const auto values = lower_.values();
  const bool sync = team > 1;
  const auto rr = static_cast<size_t>(nrhs);
  const std::span<const int> pin_set = ctx.pinnedCores();
  SpinBarrier& barrier = ctx.barrier_;
  // One padded slot per thread (8 doubles = a cache line apart).
  std::vector<double> partial(static_cast<size_t>(team) * 8, 0.0);

  omp_set_dynamic(0);
#pragma omp parallel num_threads(team)
  {
    const int t = omp_get_thread_num();
    const ScopedPin pin(pin_set, t);
    ctx.notePin(pin);
    obs::StepTracer tracer(ctx.trace());
    int sense = barrier.initialSense();
    const auto& verts = exec_plan.lists.verts[static_cast<size_t>(t)];
    if (!e.empty()) {
      // Phase 1: fold the correction into x (own rows only), then wait so
      // the residual phase reads a fully updated iterate.
      for (const index_t i : verts) {
        double* xi = x.data() + static_cast<size_t>(i) * rr;
        const double* ei = e.data() + static_cast<size_t>(i) * rr;
        for (size_t c = 0; c < rr; ++c) xi[c] += ei[c];
      }
      tracer.computeDone(0);
      if (sync) {
        barrier.wait(sense, team);
        tracer.waitDone(0);
      }
    }
    // Phase 2: r = rhs - L x over own rows (the diagonal entry included),
    // accumulating the thread-local infinity norm.
    double local = 0.0;
    for (const index_t i : verts) {
      const auto begin = static_cast<size_t>(row_ptr[static_cast<size_t>(i)]);
      const auto end =
          static_cast<size_t>(row_ptr[static_cast<size_t>(i) + 1]);
      const double* bi = rhs.data() + static_cast<size_t>(i) * rr;
      double* ri = r.data() + static_cast<size_t>(i) * rr;
      for (size_t c = 0; c < rr; ++c) ri[c] = bi[c];
      for (size_t k = begin; k < end; ++k) {
        const double a = values[k];
        const double* xj =
            x.data() + static_cast<size_t>(col_idx[k]) * rr;
        for (size_t c = 0; c < rr; ++c) ri[c] -= a * xj[c];
      }
      for (size_t c = 0; c < rr; ++c) {
        local = std::max(local, std::abs(ri[c]));
      }
    }
    partial[static_cast<size_t>(t) * 8] = local;
    tracer.computeDone(1);
  }
  double norm = 0.0;
  for (int t = 0; t < team; ++t) {
    norm = std::max(norm, partial[static_cast<size_t>(t) * 8]);
  }
  return norm;
}

SspResult SspExecutor::solveImpl(std::span<const double> b,
                                 std::span<double> x, index_t nrhs,
                                 const SspOptions& opts, SolveContext& ctx,
                                 int team, core::FoldPolicy policy,
                                 StorageKind storage) const {
  detail::requireVectorSizes(lower_, b, x, nrhs, "SspExecutor::solve");
  detail::requireTeamSize(team, num_threads_, "SspExecutor::solve");
  ctx.requireShape(team, lower_.rows(), "SspExecutor::solve");
  if (opts.staleness < 0) {
    throw std::invalid_argument("SspExecutor::solve: staleness must be >= 0");
  }
  if (opts.max_refinements < 0) {
    throw std::invalid_argument(
        "SspExecutor::solve: max_refinements must be >= 0");
  }
  const auto total =
      static_cast<size_t>(lower_.rows()) * static_cast<size_t>(nrhs);
  auto scratch = ctx.sspScratch(2 * total);
  const std::span<double> r = scratch.subspan(0, total);
  const std::span<double> e = scratch.subspan(total, total);

  SspResult result;
  sweep(b, x, nrhs, opts.staleness, ctx, team, policy, storage);
  result.residual = updateAndResidual(b, x, {}, r, nrhs, ctx, team, policy);
  while (result.residual > opts.tolerance &&
         result.refinements < opts.max_refinements) {
    sweep(r, e, nrhs, opts.staleness, ctx, team, policy, storage);
    ++result.refinements;
    result.residual = updateAndResidual(b, x, e, r, nrhs, ctx, team, policy);
  }
  result.converged = result.residual <= opts.tolerance;
  if (!result.converged) {
    // Iteration cap: re-solve exactly. A staleness-0 sweep IS the BSP
    // schedule walk, so the fallback result matches the exact executor
    // bitwise and its residual sits at the backward-stable level.
    sweep(b, x, nrhs, 0, ctx, team, policy, storage);
    result.fell_back = true;
    result.residual = updateAndResidual(b, x, {}, r, nrhs, ctx, team, policy);
    result.converged = result.residual <= opts.tolerance;
  }
  STS_TRACE_INSTANT("exec", "ssp_refine", "refinements",
                    static_cast<std::uint64_t>(result.refinements),
                    "fell_back", result.fell_back ? 1 : 0);
  return result;
}

SspResult SspExecutor::solve(std::span<const double> b, std::span<double> x,
                             const SspOptions& opts, SolveContext& ctx,
                             int team, core::FoldPolicy policy,
                             StorageKind storage) const {
  return solveImpl(b, x, 1, opts, ctx, team, policy, storage);
}

SspResult SspExecutor::solveMultiRhs(std::span<const double> b,
                                     std::span<double> x, index_t nrhs,
                                     const SspOptions& opts, SolveContext& ctx,
                                     int team, core::FoldPolicy policy,
                                     StorageKind storage) const {
  return solveImpl(b, x, nrhs, opts, ctx, team, policy, storage);
}

}  // namespace sts::exec
