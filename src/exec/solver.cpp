#include "exec/solver.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "baselines/bsplist.hpp"
#include "baselines/hdagg.hpp"
#include "baselines/wavefront.hpp"
#include "check/check.hpp"
#include "core/coarsen.hpp"
#include "exec/serial.hpp"
#include "obs/trace.hpp"
#include "sparse/permute.hpp"

namespace sts::exec {

std::string schedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kGrowLocal: return "GrowLocal";
    case SchedulerKind::kFunnelGrowLocal: return "Funnel+GL";
    case SchedulerKind::kWavefront: return "Wavefront";
    case SchedulerKind::kHdagg: return "HDagg";
    case SchedulerKind::kSpmp: return "SpMP";
    case SchedulerKind::kBspList: return "BSPg";
    case SchedulerKind::kSerial: return "Serial";
  }
  return "?";
}

TriangularSolver TriangularSolver::analyze(const CsrMatrix& matrix,
                                           const SolverOptions& options) {
  using Clock = std::chrono::high_resolution_clock;
  if (options.num_threads <= 0) {
    throw std::invalid_argument("TriangularSolver: num_threads must be > 0");
  }
  STS_TRACE_SPAN1("plan", "analyze", "rows",
                  static_cast<std::uint64_t>(matrix.rows()));
  TriangularSolver solver;
  solver.n_ = matrix.rows();
  solver.options_ = options;

  // Normalize to a lower triangular system.
  if (matrix.isLowerTriangular()) {
    solver.matrix_ = std::make_shared<const CsrMatrix>(matrix);
    solver.total_new_to_old_ = sparse::identityPermutation(matrix.rows());
  } else if (matrix.isUpperTriangular()) {
    std::vector<index_t> reversal(static_cast<size_t>(matrix.rows()));
    for (index_t i = 0; i < matrix.rows(); ++i) {
      reversal[static_cast<size_t>(i)] = matrix.rows() - 1 - i;
    }
    solver.matrix_ = std::make_shared<const CsrMatrix>(
        matrix.symmetricPermuted(reversal));
    solver.total_new_to_old_ = std::move(reversal);
    solver.permuted_ = true;
  } else {
    throw std::invalid_argument("TriangularSolver: matrix is not triangular");
  }
  requireSolvableLower(*solver.matrix_);

  const auto t0 = Clock::now();
  const dag::Dag dag = dag::Dag::fromLowerTriangular(*solver.matrix_);

  core::GrowLocalOptions gl = options.growlocal;
  gl.num_cores = options.num_threads;

  std::optional<baselines::SpmpResult> spmp;
  switch (options.scheduler) {
    case SchedulerKind::kGrowLocal:
      if (options.num_schedule_blocks > 1) {
        core::BlockScheduleOptions block;
        block.num_blocks = options.num_schedule_blocks;
        block.growlocal = gl;
        solver.schedule_ = core::blockGrowLocalSchedule(dag, block);
      } else {
        solver.schedule_ = core::growLocalSchedule(dag, gl);
      }
      break;
    case SchedulerKind::kFunnelGrowLocal:
      solver.schedule_ = core::funnelGrowLocalSchedule(dag, gl);
      break;
    case SchedulerKind::kWavefront:
      solver.schedule_ = baselines::wavefrontSchedule(
          dag, baselines::WavefrontOptions{.num_cores = options.num_threads});
      break;
    case SchedulerKind::kHdagg: {
      baselines::HdaggOptions ho;
      ho.num_cores = options.num_threads;
      solver.schedule_ = baselines::hdaggSchedule(dag, ho);
      break;
    }
    case SchedulerKind::kSpmp: {
      baselines::SpmpOptions so;
      so.num_cores = options.num_threads;
      spmp = baselines::spmpSchedule(dag, so);
      solver.schedule_ = spmp->schedule;
      break;
    }
    case SchedulerKind::kBspList:
      solver.schedule_ = baselines::bspListSchedule(
          dag, baselines::BspListOptions{.num_cores = options.num_threads});
      break;
    case SchedulerKind::kSerial:
      solver.schedule_ = core::Schedule::serial(dag);
      break;
  }

  if (options.validate) {
    const auto validation = core::validateSchedule(dag, solver.schedule_);
    if (!validation.ok) {
      throw std::logic_error("TriangularSolver: scheduler produced an "
                             "invalid schedule: " + validation.message);
    }
  }
#if STS_CHECKS
  // Checked builds audit every analysis, not just validate-opted ones, and
  // through the independent check:: re-derivation rather than the library's
  // own validator (check/check.hpp).
  check::enforce(check::validateSchedule(dag, solver.schedule_),
                 "TriangularSolver::analyze");
#endif

  const bool reorder = options.reorder &&
                       options.scheduler != SchedulerKind::kSpmp &&
                       options.scheduler != SchedulerKind::kSerial;
  if (reorder) {
    core::ReorderedProblem problem =
        core::reorderForLocality(*solver.matrix_, solver.schedule_);
    solver.total_new_to_old_ = sparse::composePermutations(
        solver.total_new_to_old_, problem.new_to_old);
    solver.permuted_ = true;
    solver.matrix_ =
        std::make_shared<const CsrMatrix>(std::move(problem.matrix));
    // The SSP executor shares the contiguous analysis product; materialize
    // its work lists before the group_ptr ranges are moved away.
    solver.ssp_ = std::make_unique<SspExecutor>(
        *solver.matrix_, problem.num_supersteps,
        SspExecutor::listsFromGroupPtr(problem.group_ptr,
                                       problem.num_supersteps,
                                       problem.num_cores));
    solver.contiguous_ = std::make_unique<ContiguousBspExecutor>(
        *solver.matrix_, problem.num_supersteps, problem.num_cores,
        std::move(problem.group_ptr));
    solver.exec_threads_ = solver.contiguous_->numThreads();
  } else if (options.scheduler == SchedulerKind::kSpmp) {
    solver.p2p_ = std::make_unique<P2pExecutor>(
        *solver.matrix_, solver.schedule_, spmp->reduced_dag);
    solver.ssp_ =
        std::make_unique<SspExecutor>(*solver.matrix_, solver.schedule_);
    solver.exec_threads_ = solver.p2p_->numThreads();
  } else {
    solver.bsp_ =
        std::make_unique<BspExecutor>(*solver.matrix_, solver.schedule_);
    solver.ssp_ =
        std::make_unique<SspExecutor>(*solver.matrix_, solver.schedule_);
    solver.exec_threads_ = solver.bsp_->numThreads();
  }
  solver.analysis_seconds_ =
      std::chrono::duration<double>(Clock::now() - t0).count();
  solver.stats_ = core::computeScheduleStats(dag, solver.schedule_,
                                             gl.sync_cost_l);

  // The lossless clamp: schedules keep their analyzed width (folding
  // re-targets them to any t <= numThreads() at solve time), but the
  // default execution team never exceeds the machine — oversubscribed
  // barrier waiters would otherwise yield-spin against absent cores.
  const auto hw = static_cast<int>(std::thread::hardware_concurrency());
  solver.default_team_ =
      hw > 0 ? std::min(solver.exec_threads_, hw) : solver.exec_threads_;

  solver.default_ctx_ = solver.createContext();
  return solver;
}

int TriangularSolver::clampTeam(int threads) const {
  if (threads < 1) {
    throw std::invalid_argument(
        "TriangularSolver: per-solve team size must be >= 1");
  }
  return std::min(threads, exec_threads_);
}

std::unique_ptr<SolveContext> TriangularSolver::createContext() const {
  return std::make_unique<SolveContext>(exec_threads_, n_);
}

void TriangularSolver::solve(std::span<const double> b, std::span<double> x,
                             SolveContext& ctx, int threads,
                             core::FoldPolicy policy,
                             StorageKind storage) const {
  if (static_cast<index_t>(b.size()) != n_ ||
      static_cast<index_t>(x.size()) != n_) {
    throw std::invalid_argument("TriangularSolver::solve: size mismatch");
  }
  if (!permuted_) {
    solvePermuted(b, x, ctx, threads, policy, storage);
    return;
  }
  const auto n = static_cast<size_t>(n_);
  auto b_perm = ctx.bScratch(n);
  auto x_perm = ctx.xScratch(n);
  for (size_t i = 0; i < n; ++i) {
    b_perm[i] = b[static_cast<size_t>(total_new_to_old_[i])];
  }
  solvePermuted(b_perm, x_perm, ctx, threads, policy, storage);
  for (size_t i = 0; i < n; ++i) {
    x[static_cast<size_t>(total_new_to_old_[i])] = x_perm[i];
  }
}

void TriangularSolver::solve(std::span<const double> b, std::span<double> x,
                             SolveContext& ctx, int threads,
                             core::FoldPolicy policy) const {
  solve(b, x, ctx, threads, policy, options_.storage);
}

void TriangularSolver::solve(std::span<const double> b, std::span<double> x,
                             SolveContext& ctx, int threads) const {
  solve(b, x, ctx, threads, options_.fold_policy);
}

void TriangularSolver::solve(std::span<const double> b, std::span<double> x,
                             SolveContext& ctx) const {
  solve(b, x, ctx, default_team_);
}

void TriangularSolver::solve(std::span<const double> b,
                             std::span<double> x) const {
  solve(b, x, defaultContext(), default_team_);
}

void TriangularSolver::solveMultiRhs(std::span<const double> b,
                                     std::span<double> x, index_t nrhs,
                                     SolveContext& ctx, int threads,
                                     core::FoldPolicy policy,
                                     StorageKind storage) const {
  const auto n = static_cast<size_t>(n_);
  if (nrhs <= 0 || b.size() != n * static_cast<size_t>(nrhs) ||
      x.size() != b.size()) {
    throw std::invalid_argument(
        "TriangularSolver::solveMultiRhs: size mismatch");
  }
  const int team = clampTeam(threads);
  const auto r = static_cast<size_t>(nrhs);
  std::span<const double> b_in = b;
  std::span<double> x_out = x;
  if (permuted_) {
    auto b_perm = ctx.bScratch(n * r);
    auto x_perm = ctx.xScratch(n * r);
    for (size_t i = 0; i < n; ++i) {
      const auto old = static_cast<size_t>(total_new_to_old_[i]);
      for (size_t c = 0; c < r; ++c) b_perm[i * r + c] = b[old * r + c];
    }
    b_in = b_perm;
    x_out = x_perm;
  }
  if (contiguous_) {
    contiguous_->solveMultiRhs(b_in, x_out, nrhs, ctx, team, policy, storage);
  } else if (p2p_) {
    p2p_->solveMultiRhs(b_in, x_out, nrhs, ctx, team, policy, storage);
  } else {
    bsp_->solveMultiRhs(b_in, x_out, nrhs, ctx, team, policy, storage);
  }
  if (permuted_) {
    for (size_t i = 0; i < n; ++i) {
      const auto old = static_cast<size_t>(total_new_to_old_[i]);
      for (size_t c = 0; c < r; ++c) x[old * r + c] = x_out[i * r + c];
    }
  }
}

void TriangularSolver::solveMultiRhs(std::span<const double> b,
                                     std::span<double> x, index_t nrhs,
                                     SolveContext& ctx, int threads,
                                     core::FoldPolicy policy) const {
  solveMultiRhs(b, x, nrhs, ctx, threads, policy, options_.storage);
}

void TriangularSolver::solveMultiRhs(std::span<const double> b,
                                     std::span<double> x, index_t nrhs,
                                     SolveContext& ctx, int threads) const {
  solveMultiRhs(b, x, nrhs, ctx, threads, options_.fold_policy);
}

void TriangularSolver::solveMultiRhs(std::span<const double> b,
                                     std::span<double> x, index_t nrhs,
                                     SolveContext& ctx) const {
  solveMultiRhs(b, x, nrhs, ctx, default_team_);
}

void TriangularSolver::solveMultiRhs(std::span<const double> b,
                                     std::span<double> x,
                                     index_t nrhs) const {
  solveMultiRhs(b, x, nrhs, defaultContext(), default_team_);
}

SspResult TriangularSolver::solveBoundedStale(std::span<const double> b,
                                              std::span<double> x,
                                              const SspOptions& opts,
                                              SolveContext& ctx, int threads,
                                              core::FoldPolicy policy,
                                              StorageKind storage) const {
  if (static_cast<index_t>(b.size()) != n_ ||
      static_cast<index_t>(x.size()) != n_) {
    throw std::invalid_argument(
        "TriangularSolver::solveBoundedStale: size mismatch");
  }
  const int team = clampTeam(threads);
  if (!permuted_) {
    return ssp_->solve(b, x, opts, ctx, team, policy, storage);
  }
  const auto n = static_cast<size_t>(n_);
  auto b_perm = ctx.bScratch(n);
  auto x_perm = ctx.xScratch(n);
  for (size_t i = 0; i < n; ++i) {
    b_perm[i] = b[static_cast<size_t>(total_new_to_old_[i])];
  }
  const SspResult result =
      ssp_->solve(b_perm, x_perm, opts, ctx, team, policy, storage);
  for (size_t i = 0; i < n; ++i) {
    x[static_cast<size_t>(total_new_to_old_[i])] = x_perm[i];
  }
  return result;
}

SspResult TriangularSolver::solveBoundedStale(std::span<const double> b,
                                              std::span<double> x,
                                              const SspOptions& opts,
                                              SolveContext& ctx) const {
  return solveBoundedStale(b, x, opts, ctx, default_team_,
                           options_.fold_policy, options_.storage);
}

SspResult TriangularSolver::solveBoundedStaleMultiRhs(
    std::span<const double> b, std::span<double> x, index_t nrhs,
    const SspOptions& opts, SolveContext& ctx, int threads,
    core::FoldPolicy policy, StorageKind storage) const {
  const auto n = static_cast<size_t>(n_);
  if (nrhs <= 0 || b.size() != n * static_cast<size_t>(nrhs) ||
      x.size() != b.size()) {
    throw std::invalid_argument(
        "TriangularSolver::solveBoundedStaleMultiRhs: size mismatch");
  }
  const int team = clampTeam(threads);
  const auto r = static_cast<size_t>(nrhs);
  if (!permuted_) {
    return ssp_->solveMultiRhs(b, x, nrhs, opts, ctx, team, policy, storage);
  }
  auto b_perm = ctx.bScratch(n * r);
  auto x_perm = ctx.xScratch(n * r);
  for (size_t i = 0; i < n; ++i) {
    const auto old = static_cast<size_t>(total_new_to_old_[i]);
    for (size_t c = 0; c < r; ++c) b_perm[i * r + c] = b[old * r + c];
  }
  const SspResult result = ssp_->solveMultiRhs(b_perm, x_perm, nrhs, opts,
                                               ctx, team, policy, storage);
  for (size_t i = 0; i < n; ++i) {
    const auto old = static_cast<size_t>(total_new_to_old_[i]);
    for (size_t c = 0; c < r; ++c) x[old * r + c] = x_perm[i * r + c];
  }
  return result;
}

SspResult TriangularSolver::solveBoundedStaleMultiRhs(
    std::span<const double> b, std::span<double> x, index_t nrhs,
    const SspOptions& opts, SolveContext& ctx) const {
  return solveBoundedStaleMultiRhs(b, x, nrhs, opts, ctx, default_team_,
                                   options_.fold_policy, options_.storage);
}

TileLayout TriangularSolver::tileLayout(index_t nrhs,
                                        index_t tile_cols) const {
  const index_t width = tile_cols > 0        ? tile_cols
                        : options_.tile_cols > 0 ? options_.tile_cols
                                                 : pickTileCols(n_);
  return TileLayout(n_, nrhs, width);
}

void TriangularSolver::solveMultiRhsTiled(std::span<const double> b,
                                          std::span<double> x, index_t nrhs,
                                          SolveContext& ctx, int threads,
                                          core::FoldPolicy policy,
                                          StorageKind storage) const {
  const auto n = static_cast<size_t>(n_);
  if (nrhs <= 0 || b.size() != n * static_cast<size_t>(nrhs) ||
      x.size() != b.size()) {
    throw std::invalid_argument(
        "TriangularSolver::solveMultiRhsTiled: size mismatch");
  }
  const int team = clampTeam(threads);
  const TileLayout layout = tileLayout(nrhs);
  const auto r = static_cast<size_t>(nrhs);
  auto b_tiled = ctx.bScratch(n * r);
  auto x_tiled = ctx.xScratch(n * r);
  // Fused permute + pack: one pass builds each tile directly from the
  // original-order rows (identity permutation when not reordered).
  for (index_t t = 0; t < layout.numTiles(); ++t) {
    const auto w = static_cast<size_t>(layout.tileWidth(t));
    const auto c0 = static_cast<size_t>(layout.tileBegin(t));
    double* dst = b_tiled.data() + layout.tileOffset(t);
    for (size_t i = 0; i < n; ++i) {
      const auto row =
          permuted_ ? static_cast<size_t>(total_new_to_old_[i]) : i;
      const double* src = b.data() + row * r + c0;
      for (size_t c = 0; c < w; ++c) dst[i * w + c] = src[c];
    }
  }
  solveTiles(b_tiled, x_tiled, layout, ctx, team, policy, storage);
  // Fused unpack + unpermute.
  for (index_t t = 0; t < layout.numTiles(); ++t) {
    const auto w = static_cast<size_t>(layout.tileWidth(t));
    const auto c0 = static_cast<size_t>(layout.tileBegin(t));
    const double* src = x_tiled.data() + layout.tileOffset(t);
    for (size_t i = 0; i < n; ++i) {
      const auto row =
          permuted_ ? static_cast<size_t>(total_new_to_old_[i]) : i;
      double* dst = x.data() + row * r + c0;
      for (size_t c = 0; c < w; ++c) dst[c] = src[i * w + c];
    }
  }
}

void TriangularSolver::solveMultiRhsTiled(std::span<const double> b,
                                          std::span<double> x, index_t nrhs,
                                          SolveContext& ctx) const {
  solveMultiRhsTiled(b, x, nrhs, ctx, default_team_, options_.fold_policy,
                     options_.storage);
}

void TriangularSolver::solveTiles(std::span<const double> b_tiled,
                                  std::span<double> x_tiled,
                                  const TileLayout& layout, SolveContext& ctx,
                                  int threads, core::FoldPolicy policy,
                                  StorageKind storage) const {
  const int team = clampTeam(threads);
  if (contiguous_) {
    contiguous_->solveMultiRhsTiled(b_tiled, x_tiled, layout, ctx, team,
                                    policy, storage);
  } else if (p2p_) {
    p2p_->solveMultiRhsTiled(b_tiled, x_tiled, layout, ctx, team, policy,
                             storage);
  } else {
    bsp_->solveMultiRhsTiled(b_tiled, x_tiled, layout, ctx, team, policy,
                             storage);
  }
}

std::size_t TriangularSolver::storageBytesMoved(int threads,
                                                core::FoldPolicy policy,
                                                StorageKind storage) const {
  const int team = clampTeam(threads);
  if (contiguous_) return contiguous_->storageBytesMoved(team, policy, storage);
  if (p2p_) return p2p_->storageBytesMoved(team, policy, storage);
  return bsp_->storageBytesMoved(team, policy, storage);
}

void TriangularSolver::solvePermuted(std::span<const double> b,
                                     std::span<double> x, SolveContext& ctx,
                                     int threads, core::FoldPolicy policy,
                                     StorageKind storage) const {
  if (static_cast<index_t>(b.size()) != n_ ||
      static_cast<index_t>(x.size()) != n_) {
    throw std::invalid_argument(
        "TriangularSolver::solvePermuted: size mismatch");
  }
  const int team = clampTeam(threads);
  if (contiguous_) {
    contiguous_->solve(b, x, ctx, team, policy, storage);
  } else if (p2p_) {
    p2p_->solve(b, x, ctx, team, policy, storage);
  } else {
    bsp_->solve(b, x, ctx, team, policy, storage);
  }
}

void TriangularSolver::solvePermuted(std::span<const double> b,
                                     std::span<double> x, SolveContext& ctx,
                                     int threads,
                                     core::FoldPolicy policy) const {
  solvePermuted(b, x, ctx, threads, policy, options_.storage);
}

void TriangularSolver::solvePermuted(std::span<const double> b,
                                     std::span<double> x, SolveContext& ctx,
                                     int threads) const {
  solvePermuted(b, x, ctx, threads, options_.fold_policy);
}

void TriangularSolver::solvePermuted(std::span<const double> b,
                                     std::span<double> x,
                                     SolveContext& ctx) const {
  solvePermuted(b, x, ctx, default_team_);
}

void TriangularSolver::solvePermuted(std::span<const double> b,
                                     std::span<double> x) const {
  solvePermuted(b, x, defaultContext(), default_team_);
}

}  // namespace sts::exec
