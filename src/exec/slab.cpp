#include "exec/slab.hpp"

#include <algorithm>
#include <memory>

#include "check/check.hpp"
#include "fault/failpoint.hpp"

namespace sts::exec::detail {

AlignedBytes::AlignedBytes(std::size_t bytes) : size_(bytes) {
  // Manual over-allocation + align keeps the buffer portable (no
  // aligned-new / aligned_alloc availability games) and the aligned base
  // stable across moves.
  raw_ = std::make_unique<std::byte[]>(bytes + kSlabAlignment);
  void* p = raw_.get();
  std::size_t space = bytes + kSlabAlignment;
  base_ = static_cast<std::byte*>(std::align(kSlabAlignment, bytes, p, space));
}

SlabPlan buildSlabPlan(const sparse::CsrMatrix& lower,
                       const FoldedLists& lists) {
  // Allocation-failure failpoint: a serial call site (plans build before
  // any parallel region), so `fail`/`badalloc` actions may throw here and
  // surface through the caller's normal error path.
  STS_FAILPOINT("exec.slab_build");
  const auto row_ptr = lower.rowPtr();
  const auto col_idx = lower.colIdx();
  const auto values = lower.values();

  SlabPlan plan;
  plan.threads.resize(lists.verts.size());
  for (std::size_t t = 0; t < lists.verts.size(); ++t) {
    const auto& verts = lists.verts[t];
    SlabThread& slab = plan.threads[t];
    slab.step_ptr = lists.step_ptr[t];

    std::size_t total = 0;
    for (const sts::index_t v : verts) {
      const auto nnz = static_cast<std::size_t>(
          row_ptr[static_cast<std::size_t>(v) + 1] -
          row_ptr[static_cast<std::size_t>(v)] - 1);
      total += slabRecordBytes(nnz);
    }
    slab.bytes = AlignedBytes(total);

    std::byte* p = slab.bytes.data();
    for (const sts::index_t v : verts) {
      const auto begin =
          static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(v)]);
      const auto diag =
          static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(v) + 1]) -
          1;
      const auto nnz = diag - begin;
      const SlabRecordHeader header{static_cast<std::uint32_t>(v),
                                    static_cast<std::uint32_t>(nnz)};
      std::memcpy(p, &header, sizeof header);
      std::memcpy(p + sizeof header, &values[diag], sizeof(double));
      std::byte* cols = p + sizeof header + sizeof(double);
      const std::size_t cols_bytes = nnz * sizeof(sts::index_t);
      if (nnz > 0) std::memcpy(cols, &col_idx[begin], cols_bytes);
      // Zero the alignment pad so slabs are deterministic bytes (memcmp-
      // comparable) and never carry uninitialized memory.
      if (slabColsBytes(nnz) > cols_bytes) {
        std::memset(cols + cols_bytes, 0, slabColsBytes(nnz) - cols_bytes);
      }
      if (nnz > 0) {
        std::memcpy(cols + slabColsBytes(nnz), &values[begin],
                    nnz * sizeof(double));
      }
      p += slabRecordBytes(nnz);
    }
  }
#if STS_CHECKS
  check::enforce(check::validateSlabPlan(lower, lists, plan),
                 "buildSlabPlan");
#endif
  return plan;
}

}  // namespace sts::exec::detail
