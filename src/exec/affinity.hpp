#pragma once

#include <span>
#include <vector>

/// \file affinity.hpp
/// Thread-to-core placement for the solve path. The paper's schedules
/// assume each rank maps to a stable physical core; elastic serving broke
/// that assumption — folded teams are anonymous OpenMP threads the OS may
/// migrate across caches mid-burst. This header is the portable seam that
/// restores placement: query the logical CPUs the process may use, and pin
/// the calling thread to one of a leased core set for the duration of a
/// solve region (RAII, previous mask restored on exit).
///
/// Everything here degrades to a no-op when the platform lacks the Linux
/// affinity syscalls. The switch is `STS_HAS_AFFINITY`:
///   * auto-detected below (1 on Linux, 0 elsewhere) when the build does
///     not define it;
///   * forced off with `-DSTS_AFFINITY=OFF` at CMake configure time (which
///     compiles with STS_HAS_AFFINITY=0 — the portable-fallback CI job
///     keeps this path building).
/// Callers never need to guard: ScopedPin constructs as inactive, the
/// queries return empty/-1, and `affinitySupported()` reports which world
/// we are in so stats and benches can label their output.

#ifndef STS_HAS_AFFINITY
#if defined(__linux__)
#define STS_HAS_AFFINITY 1
#else
#define STS_HAS_AFFINITY 0
#endif
#endif

#if STS_HAS_AFFINITY
#include <pthread.h>
#include <sched.h>
#endif

namespace sts::exec {

/// True iff the build has real affinity syscalls (Linux with
/// STS_HAS_AFFINITY=1). When false every helper below is a documented
/// no-op: pins report unpinned, queries come back empty.
bool affinitySupported();

/// Logical CPU ids the PROCESS may run on, ascending (sched_getaffinity).
/// The default core universe for engine::CoreBudget's core-set mode when
/// EngineOptions::core_set is not given. Empty when unsupported.
std::vector<int> systemCoreSet();

/// Logical CPU ids the CALLING THREAD may run on, ascending
/// (pthread_getaffinity_np). Narrower than systemCoreSet() while a
/// ScopedPin is live. Empty when unsupported.
std::vector<int> threadAffinity();

/// Logical CPU the calling thread is executing on right now
/// (sched_getcpu), or -1 when unsupported.
int currentCpu();

/// Pins the calling thread to one CPU of a leased core set for the
/// lifetime of the object, restoring the thread's previous affinity mask
/// on destruction. Built for the executors' OpenMP regions: team member
/// `rank` pins itself to `cores[rank % cores.size()]`, so a team no wider
/// than its lease gets one stable core per member and a (deliberately)
/// oversubscribed team wraps around. Inactive — all queries false — when
/// `cores` is empty or affinity is unsupported; pin failures (EPERM,
/// offline CPU) are reported, not thrown, because a solve must never fail
/// over placement.
class ScopedPin {
 public:
  ScopedPin(std::span<const int> cores, int rank);
  ~ScopedPin();

  ScopedPin(const ScopedPin&) = delete;
  ScopedPin& operator=(const ScopedPin&) = delete;

  /// The thread is now bound to its target core.
  bool pinned() const { return pinned_; }
  /// The thread was executing OUTSIDE the leased set when the pin was
  /// taken — the OS had migrated it off the cores this batch leased (the
  /// cache-locality loss the pin exists to stop). Only meaningful when
  /// pinned().
  bool migrated() const { return migrated_; }
  /// The CPU this thread was bound to (-1 when inactive).
  int cpu() const { return cpu_; }

 private:
  bool pinned_ = false;
  bool migrated_ = false;
  int cpu_ = -1;
#if STS_HAS_AFFINITY
  cpu_set_t previous_{};
  bool have_previous_ = false;
#endif
};

}  // namespace sts::exec
