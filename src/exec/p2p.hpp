#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/schedule.hpp"
#include "dag/dag.hpp"
#include "exec/solve_context.hpp"
#include "sparse/csr.hpp"

/// \file p2p.hpp
/// Asynchronous point-to-point executor in the style of SpMP [PSSD14]:
/// no global barriers — each thread walks its own vertex list in level
/// order and spin-waits only on the cross-thread parents that survive the
/// approximate transitive reduction. Completion flags are epoch-stamped so
/// that repeated solves need no O(n) reset; on uint32 epoch wraparound the
/// SolveContext clears the flags so a stale stamp can never alias a fresh
/// epoch.
///
/// Reentrancy contract (see solve_context.hpp): the executor is immutable
/// after construction; the epoch counter and completion flags live in the
/// SolveContext, so concurrent solves with distinct contexts are safe. The
/// context-free overloads share a built-in context and remain
/// one-solve-at-a-time.

namespace sts::exec {

using core::Schedule;
using dag::Dag;
using sparse::CsrMatrix;
using sts::index_t;
using sts::offset_t;

class P2pExecutor {
 public:
  /// `schedule` provides the per-thread vertex order (its superstep
  /// structure is ignored at run time); `sync_dag` lists the dependency
  /// edges to wait on (typically the transitively reduced DAG; passing the
  /// full DAG is valid but waits on more edges).
  P2pExecutor(const CsrMatrix& lower, const Schedule& schedule,
              const Dag& sync_dag);

  /// x = L^{-1} b; `ctx` carries the epoch-stamped completion flags.
  /// Concurrent solves need distinct contexts.
  void solve(std::span<const double> b, std::span<double> x,
             SolveContext& ctx) const;
  void solve(std::span<const double> b, std::span<double> x) const;

  /// SpTRSM: X = L^{-1} B, both n x nrhs row-major; one completion-flag
  /// store per vertex regardless of nrhs.
  void solveMultiRhs(std::span<const double> b, std::span<double> x,
                     index_t nrhs, SolveContext& ctx) const;
  void solveMultiRhs(std::span<const double> b, std::span<double> x,
                     index_t nrhs) const;

  std::unique_ptr<SolveContext> createContext() const {
    return std::make_unique<SolveContext>(num_threads_, lower_.rows());
  }

  int numThreads() const { return num_threads_; }

  /// Total cross-thread dependencies the executor waits on (diagnostic:
  /// shows the sparsification effect of the transitive reduction).
  offset_t numCrossDependencies() const { return cross_deps_; }

 private:
  const CsrMatrix& lower_;
  int num_threads_ = 0;
  offset_t cross_deps_ = 0;

  /// Per-thread vertex execution order.
  std::vector<std::vector<index_t>> thread_verts_;
  /// wait_list of vertex v: cross-thread parents in the sync DAG, stored
  /// flat: wait_adj_[wait_ptr_[v] .. wait_ptr_[v+1]).
  std::vector<offset_t> wait_ptr_;
  std::vector<index_t> wait_adj_;

  mutable SolveContext default_ctx_;
};

}  // namespace sts::exec
