#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/schedule.hpp"
#include "dag/dag.hpp"
#include "exec/elastic.hpp"
#include "exec/slab.hpp"
#include "exec/solve_context.hpp"
#include "exec/storage.hpp"
#include "exec/tile.hpp"
#include "sparse/csr.hpp"

/// \file p2p.hpp
/// Asynchronous point-to-point executor in the style of SpMP [PSSD14]:
/// no global barriers — each thread walks its own vertex list in level
/// order and spin-waits only on the cross-thread parents that survive the
/// approximate transitive reduction. Completion flags are epoch-stamped so
/// that repeated solves need no O(n) reset; on uint32 epoch wraparound the
/// SolveContext clears the flags so a stale stamp can never alias a fresh
/// epoch.
///
/// Reentrancy contract (see solve_context.hpp): the executor is immutable
/// after construction; the epoch counter and completion flags live in the
/// SolveContext, so concurrent solves with distinct contexts are safe. The
/// context-free overloads share a built-in context and remain
/// one-solve-at-a-time.
///
/// Elasticity: the context-taking overloads accept a per-solve `team` size
/// and optionally a core::FoldPolicy; the vertex lists fold by the
/// policy's rank map (superstep-major order preserved) while the wait
/// lists stay fixed — a dependency whose source folds onto the waiter's
/// own thread is computed earlier in that thread's list, so its spin
/// resolves immediately. Deadlock freedom carries over for any
/// rank-granularity map because folded cross-thread parents still sit in
/// strictly earlier supersteps.

namespace sts::exec {

using core::Schedule;
using dag::Dag;
using sparse::CsrMatrix;
using sts::index_t;
using sts::offset_t;

class P2pExecutor {
 public:
  /// `schedule` provides the per-thread vertex order (its superstep
  /// structure is ignored at run time); `sync_dag` lists the dependency
  /// edges to wait on (typically the transitively reduced DAG; passing the
  /// full DAG is valid but waits on more edges).
  P2pExecutor(const CsrMatrix& lower, const Schedule& schedule,
              const Dag& sync_dag);

  /// x = L^{-1} b on a `team`-thread folded execution; `ctx` carries the
  /// epoch-stamped completion flags. `storage` selects the matrix walk:
  /// kSlab streams each thread's packed records (the wait lists stay
  /// keyed by the vertex id each record carries). Concurrent solves need
  /// distinct contexts. 1 <= team <= numThreads().
  void solve(std::span<const double> b, std::span<double> x,
             SolveContext& ctx, int team, core::FoldPolicy policy,
             StorageKind storage) const;
  void solve(std::span<const double> b, std::span<double> x,
             SolveContext& ctx, int team, core::FoldPolicy policy) const;
  void solve(std::span<const double> b, std::span<double> x,
             SolveContext& ctx, int team) const;
  void solve(std::span<const double> b, std::span<double> x,
             SolveContext& ctx) const;
  void solve(std::span<const double> b, std::span<double> x) const;

  /// SpTRSM: X = L^{-1} B, both n x nrhs row-major; one completion-flag
  /// store per vertex regardless of nrhs.
  void solveMultiRhs(std::span<const double> b, std::span<double> x,
                     index_t nrhs, SolveContext& ctx, int team,
                     core::FoldPolicy policy, StorageKind storage) const;
  void solveMultiRhs(std::span<const double> b, std::span<double> x,
                     index_t nrhs, SolveContext& ctx, int team,
                     core::FoldPolicy policy) const;
  void solveMultiRhs(std::span<const double> b, std::span<double> x,
                     index_t nrhs, SolveContext& ctx, int team) const;
  void solveMultiRhs(std::span<const double> b, std::span<double> x,
                     index_t nrhs, SolveContext& ctx) const;
  void solveMultiRhs(std::span<const double> b, std::span<double> x,
                     index_t nrhs) const;

  /// Tiled SpTRSM: B and X are packed as `layout` column tiles (tile.hpp).
  /// The completion flags are epoch-granular — they cannot express "row i
  /// done for tile t" — so the executor runs one full dependency-resolved
  /// pass per tile, each under a fresh epoch. That trades extra flag
  /// traffic for the cache-resident tile operand and the register-blocked
  /// CSR kernel; column tileBegin(t) + c of the unpacked result is bitwise
  /// equal to solveMultiRhs's column.
  void solveMultiRhsTiled(std::span<const double> b, std::span<double> x,
                          const TileLayout& layout, SolveContext& ctx,
                          int team, core::FoldPolicy policy,
                          StorageKind storage) const;

  /// Matrix bytes one full sweep of `storage` streams (builds the slab
  /// plan on demand); the plans' side of the roofline byte model. The
  /// tiled walk re-streams this once per tile AND per pass (the P2P tile
  /// loop is outermost).
  std::size_t storageBytesMoved(int team, core::FoldPolicy policy,
                                StorageKind storage) const;

  std::unique_ptr<SolveContext> createContext() const {
    return std::make_unique<SolveContext>(num_threads_, lower_.rows());
  }

  int numThreads() const { return num_threads_; }

  /// Total cross-thread dependencies the executor waits on (diagnostic:
  /// shows the sparsification effect of the transitive reduction).
  offset_t numCrossDependencies() const { return cross_deps_; }

 private:
  const detail::FoldedLists& foldedPlan(int team,
                                        core::FoldPolicy policy) const;
  /// Packed per-thread slab storage for (team, policy), cached beside the
  /// folded vertex lists.
  const detail::SlabPlan& slabPlan(int team, core::FoldPolicy policy) const;
  void solveSlab(std::span<const double> b, std::span<double> x,
                 SolveContext& ctx, int team, core::FoldPolicy policy) const;
  void solveMultiRhsSlab(std::span<const double> b, std::span<double> x,
                         index_t nrhs, SolveContext& ctx, int team,
                         core::FoldPolicy policy) const;
  /// One dependency-resolved shared-CSR pass over a single n x w tile
  /// under a fresh epoch (the register-blocked per-tile leg of
  /// solveMultiRhsTiled).
  void solveTileCsrPass(std::span<const double> b_tile,
                        std::span<double> x_tile, std::size_t w,
                        SolveContext& ctx, int team,
                        core::FoldPolicy policy) const;

  const CsrMatrix& lower_;
  int num_threads_ = 0;
  index_t num_supersteps_ = 0;
  offset_t cross_deps_ = 0;

  /// Full-width per-thread vertex execution order, with superstep
  /// boundaries kept so the lists can fold onto smaller teams
  /// (elastic.hpp); also the shared team == numThreads() plan.
  detail::FoldedLists full_;
  /// Per-(superstep, rank) nnz loads of `full_` for kBinPack rank maps.
  std::vector<core::weight_t> rank_loads_;
  /// wait_list of vertex v: cross-thread parents in the sync DAG, stored
  /// flat: wait_adj_[wait_ptr_[v] .. wait_ptr_[v+1]).
  std::vector<offset_t> wait_ptr_;
  std::vector<index_t> wait_adj_;
  detail::TeamPlanCache<detail::FoldedLists> folded_;
  detail::TeamPlanCache<detail::SlabPlan> slabs_;

  mutable SolveContext default_ctx_;
};

}  // namespace sts::exec
