#include "exec/affinity.hpp"

namespace sts::exec {

#if STS_HAS_AFFINITY

bool affinitySupported() { return true; }

namespace {

std::vector<int> maskToIds(const cpu_set_t& mask) {
  std::vector<int> ids;
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (CPU_ISSET(cpu, &mask)) ids.push_back(cpu);
  }
  return ids;
}

}  // namespace

std::vector<int> systemCoreSet() {
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) != 0) return {};
  return maskToIds(mask);
}

std::vector<int> threadAffinity() {
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (pthread_getaffinity_np(pthread_self(), sizeof(mask), &mask) != 0) {
    return {};
  }
  return maskToIds(mask);
}

int currentCpu() { return sched_getcpu(); }

ScopedPin::ScopedPin(std::span<const int> cores, int rank) {
  if (cores.empty() || rank < 0) return;
  const int target =
      cores[static_cast<std::size_t>(rank) % cores.size()];
  if (target < 0 || target >= CPU_SETSIZE) return;

  // Migration check before the pin: was the OS running this thread off the
  // leased set entirely? (Being on another core OF the set is load-balance
  // churn, not the cross-batch trampling the counter tracks.)
  const int now = sched_getcpu();
  if (now >= 0) {
    bool in_set = false;
    for (const int cpu : cores) in_set = in_set || (cpu == now);
    migrated_ = !in_set;
  }

  have_previous_ =
      pthread_getaffinity_np(pthread_self(), sizeof(previous_), &previous_) ==
      0;
  if (!have_previous_) {
    // Without the previous mask the destructor could not undo the pin,
    // and a persistent OpenMP pool thread would stay bound to one core
    // for every later (unpinned) solve. Refuse to pin instead.
    migrated_ = false;
    return;
  }
  cpu_set_t pin;
  CPU_ZERO(&pin);
  CPU_SET(target, &pin);
  if (pthread_setaffinity_np(pthread_self(), sizeof(pin), &pin) == 0) {
    pinned_ = true;
    cpu_ = target;
  } else {
    migrated_ = false;  // unpinned threads report nothing
  }
}

ScopedPin::~ScopedPin() {
  if (pinned_ && have_previous_) {
    pthread_setaffinity_np(pthread_self(), sizeof(previous_), &previous_);
  }
}

#else  // !STS_HAS_AFFINITY — the portable no-op fallback.

bool affinitySupported() { return false; }

std::vector<int> systemCoreSet() { return {}; }

std::vector<int> threadAffinity() { return {}; }

int currentCpu() { return -1; }

ScopedPin::ScopedPin(std::span<const int> cores, int rank) {
  (void)cores;
  (void)rank;
}

ScopedPin::~ScopedPin() = default;

#endif

}  // namespace sts::exec
