#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>

#include "baselines/spmp.hpp"
#include "core/block.hpp"
#include "core/growlocal.hpp"
#include "core/reorder.hpp"
#include "core/schedule.hpp"
#include "exec/bsp.hpp"
#include "exec/p2p.hpp"
#include "exec/solve_context.hpp"
#include "exec/ssp.hpp"
#include "exec/storage.hpp"
#include "sparse/csr.hpp"

/// \file solver.hpp
/// The downstream-user facade: analyze a triangular matrix once, then solve
/// with the same sparsity pattern many times (the SpTRSV use case the paper
/// targets — preconditioner applications, Gauss–Seidel sweeps, repeated
/// FEM solves, §1).
///
///   auto solver = sts::exec::TriangularSolver::analyze(L, options);
///   solver.solve(b, x);   // fast path, repeatable
///
/// Reentrancy contract (see solve_context.hpp): after analyze() the solver
/// is immutable; every solve entry point has a `const` overload taking a
/// SolveContext that carries all per-solve mutable state. N contexts from
/// createContext() permit N simultaneous solves on one analyzed solver —
/// the basis of the `engine::SolverEngine` serving subsystem:
///
///   auto ctx = solver.createContext();      // one per in-flight solve
///   solver.solve(b, x, *ctx);               // thread-safe across contexts
///
/// The context-free overloads run on a built-in default context and keep
/// the historical one-solve-at-a-time restriction.
///
/// ## Elasticity contract
///
/// The analyzed schedule is re-targetable: every context-taking solve also
/// accepts a per-solve team size `threads`, 1 <= threads <= numThreads(),
/// executing the schedule folded onto that many OpenMP threads
/// (Schedule::foldTo; folded work lists are cached per (team size, fold
/// policy) inside the executors). How ranks map onto the smaller team is a
/// core::FoldPolicy — SolverOptions::fold_policy sets the solver-wide
/// default (kModulo preserves historical behavior; kBinPack LPT-packs
/// whole ranks by per-superstep work, cutting folded imbalance), and every
/// team-taking overload has a sibling taking an explicit policy. Folding
/// is lossless under every policy — results are bitwise equal to the
/// full-width solve for every team size and scheduler kind. Overloads
/// without an explicit team run at defaultTeam(): numThreads() clamped to
/// the host's hardware concurrency, so analyzing for more threads than the
/// machine has no longer yield-spins barrier waiters against absent cores.
/// Values of `threads` above numThreads() clamp to numThreads(); values
/// below 1 throw std::invalid_argument.
///
/// ## Storage
///
/// Independently of team size and fold policy, every explicit solve
/// overload accepts a StorageKind selecting how the hot loop walks the
/// matrix: kSharedCsr (the analyzed CSR, row_ptr indirection) or kSlab
/// (per-thread packed record streams built per (team, policy) and cached
/// inside the executors — see storage.hpp / slab.hpp).
/// SolverOptions::storage sets the solver-wide default the overloads
/// without an explicit kind use. Storage is a pure layout choice: results
/// are bitwise identical under both kinds for every executor, team,
/// policy, and RHS count (tests/test_slab.cpp).
///
/// ## Affinity
///
/// Placement is a context property, not a solver one: arm a SolveContext
/// with a core set (SolveContext::setPinnedCores) and every solve on that
/// context pins OpenMP team member t to `cores[t % cores.size()]` for the
/// duration of the parallel region (no-op without platform support —
/// STS_HAS_AFFINITY). Pinning never changes results; the serving engine
/// uses it to keep concurrent batches on disjoint leased core sets (see
/// engine/core_budget.hpp and docs/ARCHITECTURE.md, contract 3).
///
/// Upper triangular inputs are normalized internally by the reversal
/// permutation (backward substitution is forward substitution on the
/// reversed system).

namespace sts::exec {

using core::Schedule;
using sparse::CsrMatrix;
using sts::index_t;

/// Which scheduling algorithm the analysis phase runs.
enum class SchedulerKind {
  kGrowLocal,        ///< the paper's contribution (§3)
  kFunnelGrowLocal,  ///< Funnel coarsening + GrowLocal (§4, §7.3)
  kWavefront,        ///< classic level sets [AS89]
  kHdagg,            ///< HDagg baseline [ZCL+22]
  kSpmp,             ///< SpMP baseline [PSSD14]; executes asynchronously
  kBspList,          ///< BSPg-style list scheduler [PAKY24]
  kSerial,           ///< no parallelism; reference configuration
};

std::string schedulerKindName(SchedulerKind kind);

struct SolverOptions {
  SchedulerKind scheduler = SchedulerKind::kGrowLocal;
  /// Width the schedule is analyzed for. May exceed the machine: execution
  /// clamps the *default* team to hardware_concurrency() (see
  /// TriangularSolver::defaultTeam) by folding, which is lossless, so an
  /// oversubscribed analysis no longer yield-spins barrier waiters against
  /// absent cores.
  int num_threads = 2;
  /// Apply the §5 locality reordering (recommended; GrowLocal's headline
  /// configuration). Ignored for kSpmp (which relies on the original
  /// ordering) and kSerial.
  bool reorder = true;
  /// Diagonal blocks scheduled in parallel during analysis (§3.1); 1
  /// disables block decomposition. Only applies to GrowLocal variants.
  int num_schedule_blocks = 1;
  core::GrowLocalOptions growlocal;
  /// Validate the schedule during analysis (O(V+E); cheap insurance).
  bool validate = true;
  /// Default rank map for elastic (folded-team) solves; overloads taking an
  /// explicit core::FoldPolicy override it per solve. kModulo keeps PR 2's
  /// p mod t fold; kBinPack packs ranks by per-superstep load.
  core::FoldPolicy fold_policy = core::FoldPolicy::kModulo;
  /// Default matrix layout of the solve hot path; overloads taking an
  /// explicit StorageKind override it per solve. kSharedCsr walks the
  /// analyzed CSR; kSlab streams per-thread packed row records (cached per
  /// (team, fold policy) like the folded plans — storage.hpp). Bitwise
  /// identical results either way.
  StorageKind storage = StorageKind::kSharedCsr;
  /// RHS column-tile width of the tiled multi-RHS path (tile.hpp); 0 sizes
  /// it automatically from the detected cache geometry (pickTileCols,
  /// overridable by STS_TILE_COLS). Explicit tileLayout() arguments
  /// override this per call. Tiling is a pure layout choice — results stay
  /// bitwise identical for every width.
  index_t tile_cols = 0;
};

/// The analyze-once product: an immutable bundle of (normalized matrix,
/// validated Schedule, executor with cached fold plans, permutation). All
/// solve entry points are `const`; everything a solve mutates lives in the
/// SolveContext it runs on. Move-constructible; executor references into
/// the matrix stay valid across moves (shared_ptr-held payloads).
class TriangularSolver {
 public:
  /// Runs the analysis phase: normalize to lower triangular, build the DAG,
  /// schedule, (optionally) reorder, and construct the executor.
  /// Throws std::invalid_argument for non-triangular or singular-diagonal
  /// inputs.
  static TriangularSolver analyze(const CsrMatrix& matrix,
                                  const SolverOptions& options = {});

  /// A fresh per-solve context shaped for this solver's executor. Each
  /// in-flight solve needs its own; contexts are reusable sequentially.
  std::unique_ptr<SolveContext> createContext() const;

  /// x = T^{-1} b in the ORIGINAL row ordering (permutations are internal).
  /// The context overload is safe to call concurrently with any other
  /// context-carrying solve on this instance. `threads` selects the
  /// per-solve team and `policy` the fold rank map (elasticity contract
  /// above); overloads without them run at defaultTeam() under
  /// options().fold_policy.
  void solve(std::span<const double> b, std::span<double> x,
             SolveContext& ctx, int threads, core::FoldPolicy policy,
             StorageKind storage) const;
  void solve(std::span<const double> b, std::span<double> x,
             SolveContext& ctx, int threads, core::FoldPolicy policy) const;
  void solve(std::span<const double> b, std::span<double> x,
             SolveContext& ctx, int threads) const;
  void solve(std::span<const double> b, std::span<double> x,
             SolveContext& ctx) const;
  /// Built-in-context convenience: one solve per instance at a time.
  void solve(std::span<const double> b, std::span<double> x) const;

  /// X = T^{-1} B for nrhs right-hand sides, b and x row-major n x nrhs in
  /// the ORIGINAL row ordering. One schedule traversal serves all nrhs
  /// solves, amortizing every barrier/flag crossing (Table 7.7's
  /// block-parallel idea); column c of X is bitwise equal to solve() on
  /// column c of B.
  void solveMultiRhs(std::span<const double> b, std::span<double> x,
                     index_t nrhs, SolveContext& ctx, int threads,
                     core::FoldPolicy policy, StorageKind storage) const;
  void solveMultiRhs(std::span<const double> b, std::span<double> x,
                     index_t nrhs, SolveContext& ctx, int threads,
                     core::FoldPolicy policy) const;
  void solveMultiRhs(std::span<const double> b, std::span<double> x,
                     index_t nrhs, SolveContext& ctx, int threads) const;
  void solveMultiRhs(std::span<const double> b, std::span<double> x,
                     index_t nrhs, SolveContext& ctx) const;
  void solveMultiRhs(std::span<const double> b, std::span<double> x,
                     index_t nrhs) const;

  /// Bounded-stale solve (exec/ssp.hpp): x = T^{-1} b via chunked-barrier
  /// SSP sweeps plus residual-checked refinement, to opts.tolerance or the
  /// exact fallback. Permutation handling, concurrency, elasticity, and
  /// storage contracts match solve(); opts.staleness == 0 is bitwise equal
  /// to solve() for every scheduler kind, team, and storage. Returns what
  /// the solve did (refinements, final residual, fallback) — the serving
  /// engine's bounded-stale tier folds these into its stats.
  SspResult solveBoundedStale(std::span<const double> b, std::span<double> x,
                              const SspOptions& opts, SolveContext& ctx,
                              int threads, core::FoldPolicy policy,
                              StorageKind storage) const;
  SspResult solveBoundedStale(std::span<const double> b, std::span<double> x,
                              const SspOptions& opts, SolveContext& ctx) const;

  /// Bounded-stale X = T^{-1} B, row-major n x nrhs like solveMultiRhs();
  /// the residual bound holds for every RHS column.
  SspResult solveBoundedStaleMultiRhs(std::span<const double> b,
                                      std::span<double> x, index_t nrhs,
                                      const SspOptions& opts, SolveContext& ctx,
                                      int threads, core::FoldPolicy policy,
                                      StorageKind storage) const;
  SspResult solveBoundedStaleMultiRhs(std::span<const double> b,
                                      std::span<double> x, index_t nrhs,
                                      const SspOptions& opts,
                                      SolveContext& ctx) const;

  /// Tiled SpTRSM: like solveMultiRhs (row-major n x nrhs in the ORIGINAL
  /// ordering, bitwise-identical columns) but the solve runs on the
  /// cache-sized column tiles of tileLayout(nrhs) — the permutation and the
  /// tile packing are fused into one pass each way, so tiling adds no
  /// traversal beyond what the permuted path already paid.
  void solveMultiRhsTiled(std::span<const double> b, std::span<double> x,
                          index_t nrhs, SolveContext& ctx, int threads,
                          core::FoldPolicy policy, StorageKind storage) const;
  void solveMultiRhsTiled(std::span<const double> b, std::span<double> x,
                          index_t nrhs, SolveContext& ctx) const;

  /// Tiled SpTRSM on PRE-TILED, PRE-PERMUTED buffers: b and x are packed as
  /// `layout` column tiles (layout.rows() == numRows()) in the INTERNAL row
  /// order. The zero-copy entry the serving engine packs coalesced batches
  /// into directly (solver_engine.cpp) — no intermediate row-major matrix.
  void solveTiles(std::span<const double> b_tiled, std::span<double> x_tiled,
                  const TileLayout& layout, SolveContext& ctx, int threads,
                  core::FoldPolicy policy, StorageKind storage) const;

  /// The tile partition an nrhs-column tiled solve uses: width from
  /// `tile_cols` if > 0, else options().tile_cols, else the cache-sized
  /// pickTileCols default.
  TileLayout tileLayout(index_t nrhs, index_t tile_cols = 0) const;

  /// Matrix bytes one full sweep of `storage` streams on a `threads`-wide
  /// team (builds the slab plan on demand); the plans' side of the
  /// tools/roofline.py byte model.
  std::size_t storageBytesMoved(int threads, core::FoldPolicy policy,
                                StorageKind storage) const;

  /// Solve with b and x in the solver's INTERNAL (schedule-permuted) row
  /// order: position i corresponds to original row permutation()[i].
  /// Workflows that keep their vectors in permuted space across many solves
  /// — as the paper's evaluation does (§5: "execute the SpTRSV computation
  /// on the permuted problem") — avoid the two O(n) vector permutations
  /// per solve() this way. Identical to solve() when no permutation was
  /// applied.
  void solvePermuted(std::span<const double> b, std::span<double> x,
                     SolveContext& ctx, int threads, core::FoldPolicy policy,
                     StorageKind storage) const;
  void solvePermuted(std::span<const double> b, std::span<double> x,
                     SolveContext& ctx, int threads,
                     core::FoldPolicy policy) const;
  void solvePermuted(std::span<const double> b, std::span<double> x,
                     SolveContext& ctx, int threads) const;
  void solvePermuted(std::span<const double> b, std::span<double> x,
                     SolveContext& ctx) const;
  void solvePermuted(std::span<const double> b, std::span<double> x) const;

  /// new_to_old map of the internal order (identity when not permuted).
  std::span<const index_t> permutation() const { return total_new_to_old_; }
  bool isPermuted() const { return permuted_; }

  index_t numRows() const { return n_; }
  /// Width the schedule was analyzed for (== schedule().numCores()); the
  /// maximum per-solve team size.
  int numThreads() const { return exec_threads_; }
  /// Effective team of the overloads without an explicit team size:
  /// numThreads() clamped to the host's hardware concurrency. Folding makes
  /// the clamp lossless (bitwise-identical results on the same schedule).
  int defaultTeam() const { return default_team_; }
  const SolverOptions& options() const { return options_; }
  const Schedule& schedule() const { return schedule_; }
  const core::ScheduleStats& stats() const { return stats_; }
  /// Wall-clock seconds spent in analyze() (scheduling + reordering);
  /// feeds the amortization-threshold experiments (Eq. 7.1).
  double analysisSeconds() const { return analysis_seconds_; }

 private:
  TriangularSolver() = default;

  SolveContext& defaultContext() const { return *default_ctx_; }
  /// Maps a caller-requested team to a valid executor team: values above
  /// numThreads() clamp down (lossless); values below 1 throw.
  int clampTeam(int threads) const;

  index_t n_ = 0;
  SolverOptions options_;
  Schedule schedule_;
  core::ScheduleStats stats_;
  double analysis_seconds_ = 0.0;
  /// Thread count of the constructed executor (== schedule_.numCores()).
  int exec_threads_ = 1;
  /// exec_threads_ clamped to hardware_concurrency(); see defaultTeam().
  int default_team_ = 1;

  /// Normalization: x solves the original system iff the permuted solve
  /// runs on *matrix_ with b permuted by total_new_to_old_.
  bool permuted_ = false;
  std::vector<index_t> total_new_to_old_;
  /// Heap-allocated so executor references stay valid across solver moves.
  std::shared_ptr<const CsrMatrix> matrix_;

  std::unique_ptr<BspExecutor> bsp_;
  std::unique_ptr<ContiguousBspExecutor> contiguous_;
  std::unique_ptr<P2pExecutor> p2p_;
  /// The bounded-stale executor, built for every scheduler kind from the
  /// same analysis product the exact executor runs (ssp.hpp).
  std::unique_ptr<SspExecutor> ssp_;

  /// Backs the context-free convenience overloads.
  std::unique_ptr<SolveContext> default_ctx_;
};

}  // namespace sts::exec
