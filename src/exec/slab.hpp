#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "exec/elastic.hpp"
#include "exec/storage.hpp"
#include "sparse/csr.hpp"

/// \file slab.hpp
/// Thread-local packed matrix storage for the solve hot path (the
/// StorageKind::kSlab layout — see storage.hpp for the contract).
///
/// The shared-CSR walk touches four scattered arrays per row (row_ptr,
/// col_idx, values, plus the work list) and interleaves every thread's
/// reads through the same cache lines. A slab plan removes both costs:
/// from a (team, fold-policy) execution plan, each thread's rows are
/// packed — in that thread's execution order — into a private,
/// cache-line-aligned byte slab of interleaved records
///
///   { row, nnz | diag | cols[nnz] (padded to 8) | vals[nnz] }
///
/// so the hot loop advances one pointer through memory it owns
/// exclusively, with the diagonal in the same cache line as the header
/// and zero row_ptr indirection. Slabs duplicate matrix data per plan by
/// design: the one-time build cost is cached per (team, policy) in the
/// executors' TeamPlanCache, amortizing across solves exactly like the
/// folded work lists (the paper's Table 7.6 amortization argument applied
/// to storage).
///
/// A slab stores the SAME off-diagonal cols/vals in the SAME (CSR) order
/// and the same diagonal as the shared matrix, so walking it executes the
/// identical arithmetic sequence per row — the bitwise-equality contract
/// of row_kernels.hpp carries over unchanged.

/// Software prefetch of the next slab record: the record stream is
/// perfectly sequential, so the walker can hide the latency of the next
/// header + diag line behind the current row's arithmetic.
#if defined(__GNUC__) || defined(__clang__)
#define STS_SLAB_PREFETCH(addr) __builtin_prefetch((addr), 0, 3)
#else
#define STS_SLAB_PREFETCH(addr) ((void)(addr))
#endif

namespace sts::exec::detail {

/// Slab base alignment: one x86 cache line (also a safe over-alignment
/// for every record field, which are laid out on 8-byte boundaries).
inline constexpr std::size_t kSlabAlignment = 64;

/// Leading 8 bytes of every record.
struct SlabRecordHeader {
  std::uint32_t row = 0;  ///< vertex this record solves
  std::uint32_t nnz = 0;  ///< off-diagonal entry count
};
static_assert(sizeof(SlabRecordHeader) == 8);

/// cols[nnz] rounded up to the next 8-byte boundary so vals stays aligned.
inline std::size_t slabColsBytes(std::size_t nnz) {
  return (nnz * sizeof(sts::index_t) + 7u) & ~std::size_t{7};
}

/// Total bytes of one record: header + diag + padded cols + vals.
inline std::size_t slabRecordBytes(std::size_t nnz) {
  return sizeof(SlabRecordHeader) + sizeof(double) + slabColsBytes(nnz) +
         nnz * sizeof(double);
}

/// Decoded record at `p` (which must be a record boundary inside a slab;
/// all fields are 8-byte aligned there, so the reinterpret_casts are
/// alignment-safe).
struct SlabRecordView {
  sts::index_t row = 0;
  std::size_t nnz = 0;
  double diag = 0.0;
  const sts::index_t* cols = nullptr;
  const double* vals = nullptr;
  const std::byte* next = nullptr;  ///< the following record boundary
};

inline SlabRecordView slabRecordAt(const std::byte* p) {
  SlabRecordHeader header;
  std::memcpy(&header, p, sizeof header);
  SlabRecordView view;
  view.row = static_cast<sts::index_t>(header.row);
  view.nnz = header.nnz;
  std::memcpy(&view.diag, p + sizeof header, sizeof(double));
  const std::byte* cols = p + sizeof header + sizeof(double);
  view.cols = reinterpret_cast<const sts::index_t*>(cols);
  view.vals = reinterpret_cast<const double*>(cols + slabColsBytes(view.nnz));
  view.next = cols + slabColsBytes(view.nnz) + view.nnz * sizeof(double);
  return view;
}

/// Owning byte buffer whose data() is kSlabAlignment-aligned. Movable;
/// the aligned base stays valid across moves (heap storage never
/// relocates).
class AlignedBytes {
 public:
  AlignedBytes() = default;
  explicit AlignedBytes(std::size_t bytes);

  AlignedBytes(AlignedBytes&&) = default;
  AlignedBytes& operator=(AlignedBytes&&) = default;

  std::byte* data() { return base_; }
  const std::byte* data() const { return base_; }
  std::size_t size() const { return size_; }

 private:
  std::unique_ptr<std::byte[]> raw_;
  std::byte* base_ = nullptr;
  std::size_t size_ = 0;
};

/// One thread's private storage: the packed record stream plus its
/// superstep boundaries (records of superstep s are numbers
/// [step_ptr[s], step_ptr[s+1]) in stream order — a copy of the folded
/// work list's boundaries, so BSP walkers know where to barrier).
struct SlabThread {
  AlignedBytes bytes;
  std::vector<sts::offset_t> step_ptr;
};

/// The per-(team, fold-policy) slab storage plan: thread t of the folded
/// execution streams threads[t]. Immutable once built; cached in a
/// TeamPlanCache beside the folded work lists.
struct SlabPlan {
  std::vector<SlabThread> threads;
};

/// Packs each thread's rows of `lists` — in execution order — into its
/// private slab. Row data comes from `lower`: off-diagonal cols/vals in
/// CSR (ascending-column) order, the diagonal from the row's last stored
/// entry, exactly the operands the shared-CSR kernels read.
SlabPlan buildSlabPlan(const sparse::CsrMatrix& lower,
                       const FoldedLists& lists);

/// THE slab walk, shared by every executor's slab path so the hot loop
/// cannot diverge between them (the same single-definition argument as
/// row_kernels.hpp): streams `slab` in record order, prefetching each
/// next record, calling `row(rec)` per record and `end_step()` after
/// each superstep's records (BSP passes its barrier wait; P2P, whose
/// walk ignores superstep boundaries, passes a no-op).
template <typename RowFn, typename EndStepFn>
inline void forEachSlabRecord(const SlabThread& slab, sts::index_t num_steps,
                              RowFn&& row, EndStepFn&& end_step) {
  const std::byte* p = slab.bytes.data();
  const auto& ptr = slab.step_ptr;
  for (sts::index_t s = 0; s < num_steps; ++s) {
    const auto count =
        static_cast<std::size_t>(ptr[static_cast<std::size_t>(s) + 1] -
                                 ptr[static_cast<std::size_t>(s)]);
    for (std::size_t k = 0; k < count; ++k) {
      const SlabRecordView rec = slabRecordAt(p);
      STS_SLAB_PREFETCH(rec.next);
      row(rec);
      p = rec.next;
    }
    end_step();
  }
}

/// The tiled slab walk: like forEachSlabRecord, but each superstep's
/// record run is replayed once per RHS column tile (`row(rec, tile)`)
/// before the superstep ends. The replay rewinds the stream pointer to
/// the superstep's first record, so the matrix bytes are re-streamed per
/// tile while the dense tile stays cache-resident — the tiling trade
/// (tile.hpp). Record order within a tile is identical to the untiled
/// walk, so the bitwise contract carries over per tile.
template <typename RowFn, typename EndStepFn>
inline void forEachSlabRecordTiled(const SlabThread& slab,
                                   sts::index_t num_steps,
                                   sts::index_t num_tiles, RowFn&& row,
                                   EndStepFn&& end_step) {
  const std::byte* p = slab.bytes.data();
  const auto& ptr = slab.step_ptr;
  for (sts::index_t s = 0; s < num_steps; ++s) {
    const auto count =
        static_cast<std::size_t>(ptr[static_cast<std::size_t>(s) + 1] -
                                 ptr[static_cast<std::size_t>(s)]);
    const std::byte* const step_begin = p;
    for (sts::index_t tile = 0; tile < num_tiles; ++tile) {
      p = step_begin;
      for (std::size_t k = 0; k < count; ++k) {
        const SlabRecordView rec = slabRecordAt(p);
        STS_SLAB_PREFETCH(rec.next);
        row(rec, tile);
        p = rec.next;
      }
    }
    end_step();
  }
}

/// Bytes one full sweep streams from the plan's record slabs (summed over
/// threads); the slab side of the bytesMoved() accounting tools/roofline.py
/// consumes. Tiled walks re-stream this once per tile.
inline std::size_t slabBytesMoved(const SlabPlan& plan) {
  std::size_t total = 0;
  for (const auto& thread : plan.threads) total += thread.bytes.size();
  return total;
}

}  // namespace sts::exec::detail
