#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "exec/spin_barrier.hpp"
#include "sparse/types.hpp"

/// \file solve_context.hpp
/// Per-solve mutable state, separated from the immutable analysis product.
///
/// ## Reentrancy contract
///
/// The analysis phase (schedule + executor + permuted matrix) is built once
/// and never mutated by a solve. Everything a solve *does* mutate — the
/// superstep SpinBarrier, the P2P epoch-stamped completion flags, and the
/// permutation scratch vectors — lives here. The contract is:
///
///   * One SolveContext supports ONE solve at a time.
///   * N contexts permit N simultaneous solves against the same executor /
///     TriangularSolver: `solver.solve(b, x, ctx)` is `const` and touches no
///     solver state outside `ctx`, `b`, and `x`.
///   * A context carries a (num_threads, num_vertices) shape: num_threads
///     is a *capacity* — any solve with a team of at most that many threads
///     may use the context (elastic solves fold a wide schedule onto a
///     smaller team; see Schedule::foldTo) — while num_vertices must match
///     the executor exactly. Executors reject insufficient contexts.
///   * Contexts are reusable across sequential solves (state resets are
///     O(1) amortized: the barrier is sense-reversing, the P2P flags are
///     epoch-stamped) and cheap to pool — `engine::SolverEngine` keeps a
///     free list of them per registered solver.
///   * A context may carry a PINNED CORE SET (setPinnedCores): while one is
///     set, OpenMP team member t of a solve on this context pins itself to
///     `cores[t % cores.size()]` for the duration of the parallel region
///     (exec::ScopedPin — previous mask restored on exit, no-op when the
///     platform lacks affinity support). Pinning is pure placement: results
///     stay bitwise identical to the unpinned solve. Setting or clearing
///     the pin set follows the same one-solve-at-a-time rule as the rest of
///     the context state.
///
/// The context-free `solve(b, x)` overloads run on a built-in default
/// context and therefore keep the historical one-solve-at-a-time
/// restriction; they exist so single-stream callers need no ceremony.
class SolveContextTestPeer;

namespace sts::obs {
struct SolveTrace;
}  // namespace sts::obs

namespace sts::exec {

class BspExecutor;
class ContiguousBspExecutor;
class P2pExecutor;
class ScopedPin;
class SspExecutor;
class TriangularSolver;

class SolveContext {
 public:
  /// Shape-compatible with executors built for up to `num_threads` cores
  /// over `num_vertices` rows. The barrier is ready immediately; the P2P
  /// flag array and the permutation scratch are allocated on first use.
  SolveContext(int num_threads, sts::index_t num_vertices);

  SolveContext(const SolveContext&) = delete;
  SolveContext& operator=(const SolveContext&) = delete;

  int numThreads() const { return num_threads_; }
  sts::index_t numVertices() const { return n_; }

  /// Epoch of the most recent P2P solve (0 before any). Diagnostic.
  std::uint32_t currentEpoch() const { return epoch_; }

  /// Arms pinning for subsequent solves on this context: team member t of
  /// each solve pins itself to `cores[t % cores.size()]` while the parallel
  /// region runs (engine batches pass their CoreBudget lease here). Resets
  /// the pin counters. Not to be called concurrently with a solve on this
  /// context.
  void setPinnedCores(std::vector<int> cores);
  /// Disarms pinning and resets the pin counters (the ContextPool does this
  /// on release so pooled contexts never leak a stale placement).
  void clearPinnedCores();
  /// The armed core set (empty = unpinned solves).
  std::span<const int> pinnedCores() const { return pin_cores_; }

  /// Team members successfully pinned since the last setPinnedCores /
  /// clearPinnedCores (0 when unsupported — the portable fallback).
  std::uint64_t pinnedThreads() const {
    return pinned_threads_.load(std::memory_order_relaxed);
  }
  /// Pinned members that were executing OUTSIDE the armed core set when
  /// their pin was taken — OS migrations the pin corrected.
  std::uint64_t migratedThreads() const {
    return migrated_threads_.load(std::memory_order_relaxed);
  }

  /// Arms per-superstep compute/wait attribution for subsequent solves on
  /// this context: every executor region flushes its StepTracer totals
  /// into `sink` (see obs/trace.hpp). nullptr disarms — the default, and
  /// what ContextPool restores on release so pooled contexts never report
  /// into a dead batch's sink. Same one-solve-at-a-time rule as the rest
  /// of the context state.
  void setTrace(sts::obs::SolveTrace* sink) { trace_ = sink; }
  sts::obs::SolveTrace* trace() const { return trace_; }

 private:
  friend class BspExecutor;
  friend class ContiguousBspExecutor;
  friend class P2pExecutor;
  friend class SspExecutor;
  friend class TriangularSolver;
  friend class ::SolveContextTestPeer;  ///< epoch-wraparound tests only

  /// Throws std::invalid_argument unless this context can host a solve of
  /// `num_threads` team members over `num_vertices` rows: the thread count
  /// is a capacity check (team <= numThreads()), the row count an exact
  /// match.
  void requireShape(int num_threads, sts::index_t num_vertices,
                    const char* who) const;

  /// Starts a P2P solve: allocates the flag array on first use and returns
  /// the fresh epoch. On uint32 wraparound the flags are cleared and the
  /// epoch restarts at 1, so a stale `done_[v]` can never alias a future
  /// epoch and release a waiter early.
  std::uint32_t beginP2pEpoch();

  /// Scratch sized to at least `size` doubles (grow-only).
  std::span<double> bScratch(std::size_t size);
  std::span<double> xScratch(std::size_t size);
  /// SSP residual/correction scratch — distinct from b/xScratch, which the
  /// solver-level permutation wrappers already occupy during a solve.
  std::span<double> sspScratch(std::size_t size);

  /// Executors report each team member's ScopedPin outcome here from
  /// inside the parallel region (hence the relaxed atomics).
  void notePin(const ScopedPin& pin);

  int num_threads_ = 0;
  sts::index_t n_ = 0;
  SpinBarrier barrier_;

  /// Armed core set for pinned solves; empty = no pinning.
  std::vector<int> pin_cores_;
  /// Armed attribution sink; nullptr = attribution off.
  sts::obs::SolveTrace* trace_ = nullptr;
  std::atomic<std::uint64_t> pinned_threads_{0};
  std::atomic<std::uint64_t> migrated_threads_{0};

  /// done_[v] == epoch_ means v is computed in the current P2P solve.
  std::unique_ptr<std::atomic<std::uint32_t>[]> done_;
  std::uint32_t epoch_ = 0;

  std::vector<double> b_scratch_;
  std::vector<double> x_scratch_;
  std::vector<double> ssp_scratch_;
};

}  // namespace sts::exec
