#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"

/// \file verify.hpp
/// Numerical verification helpers used by tests, examples and the
/// benchmark harness: residual and error norms for solve results.

namespace sts::exec {

using sparse::CsrMatrix;

/// ||A x - b||_inf.
double residualInf(const CsrMatrix& a, std::span<const double> x,
                   std::span<const double> b);

/// ||x - y||_inf.
double maxAbsDiff(std::span<const double> x, std::span<const double> y);

/// ||x - y||_inf / max(1, ||y||_inf): scale-aware comparison.
double relMaxAbsDiff(std::span<const double> x, std::span<const double> y);

/// Deterministic "interesting" solution vector (mixed signs/magnitudes)
/// for roundtrip tests: x_i in [-1, 1], never 0.
std::vector<double> referenceSolution(sts::index_t n, std::uint64_t seed);

}  // namespace sts::exec
