#pragma once

#include <span>
#include <vector>

#include "core/schedule.hpp"
#include "exec/spin_barrier.hpp"
#include "sparse/csr.hpp"

/// \file bsp.hpp
/// Barrier-synchronous SpTRSV executor: runs a validated Schedule with one
/// spin barrier per superstep boundary (the execution model of §2.2).
/// The per-thread work lists are precomputed at construction so that the
/// hot solve path touches only flat arrays. Executors are not reentrant:
/// one solve at a time per instance (the barrier state is shared).

namespace sts::exec {

using core::Schedule;
using sparse::CsrMatrix;
using sts::index_t;
using sts::offset_t;

class BspExecutor {
 public:
  /// `lower` must satisfy requireSolvableLower; `schedule` must be a valid
  /// schedule of the matrix's DAG (validateSchedule) — both are the
  /// caller's analysis-phase responsibility; the constructor re-checks the
  /// matrix but not the schedule (O(V·E) validation is opt-in).
  BspExecutor(const CsrMatrix& lower, const Schedule& schedule);

  /// x = L^{-1} b using `num_threads()` OpenMP threads.
  void solve(std::span<const double> b, std::span<double> x) const;

  /// SpTRSM: X = L^{-1} B, both n x nrhs row-major. The schedule is
  /// RHS-count agnostic — each vertex simply carries nrhs times the work.
  void solveMultiRhs(std::span<const double> b, std::span<double> x,
                     index_t nrhs) const;

  int numThreads() const { return num_threads_; }
  index_t numSupersteps() const { return num_supersteps_; }

 private:
  const CsrMatrix& lower_;
  int num_threads_ = 0;
  index_t num_supersteps_ = 0;
  /// Vertices of thread t across all supersteps, superstep-major:
  /// thread_verts_[t] with boundaries thread_step_ptr_[t][s].
  std::vector<std::vector<index_t>> thread_verts_;
  std::vector<std::vector<offset_t>> thread_step_ptr_;
  mutable SpinBarrier barrier_;
};

/// Executor for the reordered problem (§5): every (superstep, core) group
/// is a contiguous row range of the permuted matrix, so the work lists are
/// just range boundaries — the best-locality configuration.
class ContiguousBspExecutor {
 public:
  ContiguousBspExecutor(const CsrMatrix& permuted_lower,
                        index_t num_supersteps, int num_cores,
                        std::vector<offset_t> group_ptr);

  void solve(std::span<const double> b, std::span<double> x) const;

  int numThreads() const { return num_threads_; }
  index_t numSupersteps() const { return num_supersteps_; }

 private:
  const CsrMatrix& lower_;
  index_t num_supersteps_ = 0;
  int num_threads_ = 0;
  std::vector<offset_t> group_ptr_;
  mutable SpinBarrier barrier_;
};

}  // namespace sts::exec
