#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/schedule.hpp"
#include "exec/elastic.hpp"
#include "exec/slab.hpp"
#include "exec/solve_context.hpp"
#include "exec/storage.hpp"
#include "exec/tile.hpp"
#include "sparse/csr.hpp"

/// \file bsp.hpp
/// Barrier-synchronous SpTRSV executor: runs a validated Schedule with one
/// spin barrier per superstep boundary (the execution model of §2.2).
/// The per-thread work lists are precomputed at construction so that the
/// hot solve path touches only flat arrays.
///
/// Reentrancy contract (see solve_context.hpp): executors are immutable
/// after construction; the only per-solve mutable state is the superstep
/// barrier, which lives in the SolveContext. The context-taking overloads
/// are `const` and safe to call concurrently as long as every concurrent
/// solve uses its own context. The context-free overloads run on a shared
/// built-in context and therefore remain one-solve-at-a-time.
///
/// Elasticity: every context-taking overload accepts a per-solve `team`
/// size 1 <= team <= numThreads() and optionally a core::FoldPolicy
/// selecting the rank map (kModulo: p -> p mod team; kBinPack: LPT packing
/// of whole ranks by per-superstep nnz load — see elastic.hpp). Results
/// are bitwise equal to the full-width solve under every policy. Folded
/// plans are cached per (team size, policy) — construction cost is paid
/// once, concurrent solves at mixed team sizes and policies are safe.
///
/// Storage: the most-explicit overloads additionally take a StorageKind.
/// kSharedCsr walks the shared matrix through row_ptr/col_idx; kSlab
/// streams per-thread packed row records (slab.hpp) built lazily per
/// (team, policy) and cached beside the folded lists. Both layouts run
/// the identical arithmetic, so storage never changes results.

namespace sts::exec {

using core::Schedule;
using sparse::CsrMatrix;
using sts::index_t;
using sts::offset_t;

class BspExecutor {
 public:
  /// `lower` must satisfy requireSolvableLower; `schedule` must be a valid
  /// schedule of the matrix's DAG (validateSchedule) — both are the
  /// caller's analysis-phase responsibility; the constructor re-checks the
  /// matrix but not the schedule (O(V·E) validation is opt-in).
  BspExecutor(const CsrMatrix& lower, const Schedule& schedule);

  /// x = L^{-1} b on a `team`-thread OpenMP team (the schedule folded to
  /// `team` ranks under `policy`, walking the matrix through `storage`);
  /// `ctx` carries the superstep barrier. Concurrent solves need distinct
  /// contexts. Throws std::invalid_argument unless
  /// 1 <= team <= numThreads().
  void solve(std::span<const double> b, std::span<double> x,
             SolveContext& ctx, int team, core::FoldPolicy policy,
             StorageKind storage) const;
  void solve(std::span<const double> b, std::span<double> x,
             SolveContext& ctx, int team, core::FoldPolicy policy) const;
  void solve(std::span<const double> b, std::span<double> x,
             SolveContext& ctx, int team) const;
  /// Full-width team.
  void solve(std::span<const double> b, std::span<double> x,
             SolveContext& ctx) const;
  /// Convenience overload on the built-in context (one solve at a time).
  void solve(std::span<const double> b, std::span<double> x) const;

  /// SpTRSM: X = L^{-1} B, both n x nrhs row-major. The schedule is
  /// RHS-count agnostic — each vertex simply carries nrhs times the work,
  /// so the barrier cost is amortized across the nrhs solves.
  void solveMultiRhs(std::span<const double> b, std::span<double> x,
                     index_t nrhs, SolveContext& ctx, int team,
                     core::FoldPolicy policy, StorageKind storage) const;
  void solveMultiRhs(std::span<const double> b, std::span<double> x,
                     index_t nrhs, SolveContext& ctx, int team,
                     core::FoldPolicy policy) const;
  void solveMultiRhs(std::span<const double> b, std::span<double> x,
                     index_t nrhs, SolveContext& ctx, int team) const;
  void solveMultiRhs(std::span<const double> b, std::span<double> x,
                     index_t nrhs, SolveContext& ctx) const;
  void solveMultiRhs(std::span<const double> b, std::span<double> x,
                     index_t nrhs) const;

  /// Tiled SpTRSM: B and X are packed as `layout` column tiles (tile.hpp).
  /// One parallel region runs the per-superstep row loop once per tile —
  /// still one barrier per superstep regardless of tile count, and the CSR
  /// walk gains the register-blocked kernel (computeRowMultiTiled). Column
  /// tileBegin(t) + c of the unpacked result is bitwise equal to
  /// solveMultiRhs's column.
  void solveMultiRhsTiled(std::span<const double> b, std::span<double> x,
                          const TileLayout& layout, SolveContext& ctx,
                          int team, core::FoldPolicy policy,
                          StorageKind storage) const;

  /// Matrix bytes one full sweep of `storage` streams (builds the slab
  /// plan on demand); the plans' side of the roofline byte model.
  std::size_t storageBytesMoved(int team, core::FoldPolicy policy,
                                StorageKind storage) const;

  /// A fresh context shaped for this executor.
  std::unique_ptr<SolveContext> createContext() const {
    return std::make_unique<SolveContext>(num_threads_, lower_.rows());
  }

  int numThreads() const { return num_threads_; }
  index_t numSupersteps() const { return num_supersteps_; }

 private:
  /// The folded work lists for (team, policy), cached per key; team ==
  /// numThreads() shares the unfolded `full_` lists across policies.
  const detail::FoldedLists& foldedPlan(int team,
                                        core::FoldPolicy policy) const;
  /// The packed per-thread slab storage for (team, policy), built lazily
  /// from the folded lists and cached beside them.
  const detail::SlabPlan& slabPlan(int team, core::FoldPolicy policy) const;
  void solveSlab(std::span<const double> b, std::span<double> x,
                 SolveContext& ctx, int team, core::FoldPolicy policy) const;
  void solveMultiRhsSlab(std::span<const double> b, std::span<double> x,
                         index_t nrhs, SolveContext& ctx, int team,
                         core::FoldPolicy policy) const;
  void solveMultiRhsTiledSlab(std::span<const double> b, std::span<double> x,
                              const TileLayout& layout, SolveContext& ctx,
                              int team, core::FoldPolicy policy) const;

  const CsrMatrix& lower_;
  int num_threads_ = 0;
  index_t num_supersteps_ = 0;
  /// The full-width per-thread work lists (verts[t] with superstep
  /// boundaries step_ptr[t][s]); also the shared team == numThreads() plan.
  detail::FoldedLists full_;
  /// Per-(superstep, rank) nnz loads of `full_` (superstep-major); feeds
  /// the kBinPack rank maps.
  std::vector<core::weight_t> rank_loads_;
  detail::TeamPlanCache<detail::FoldedLists> folded_;
  detail::TeamPlanCache<detail::SlabPlan> slabs_;
  /// Backs the context-free overloads; mutable per-solve state only.
  mutable SolveContext default_ctx_;
};

/// Executor for the reordered problem (§5): every (superstep, core) group
/// is a contiguous row range of the permuted matrix, so the work lists are
/// just range boundaries — the best-locality configuration. Same
/// reentrancy contract as BspExecutor.
class ContiguousBspExecutor {
 public:
  ContiguousBspExecutor(const CsrMatrix& permuted_lower,
                        index_t num_supersteps, int num_cores,
                        std::vector<offset_t> group_ptr);

  /// Folded team solve: thread q executes the row ranges of every original
  /// rank the policy's rank map assigns to q, per superstep. The kSlab
  /// storage walk replaces the range walk by the same rows as packed
  /// records (identical order, identical results). 1 <= team <=
  /// numThreads().
  void solve(std::span<const double> b, std::span<double> x,
             SolveContext& ctx, int team, core::FoldPolicy policy,
             StorageKind storage) const;
  void solve(std::span<const double> b, std::span<double> x,
             SolveContext& ctx, int team, core::FoldPolicy policy) const;
  void solve(std::span<const double> b, std::span<double> x,
             SolveContext& ctx, int team) const;
  void solve(std::span<const double> b, std::span<double> x,
             SolveContext& ctx) const;
  void solve(std::span<const double> b, std::span<double> x) const;

  /// SpTRSM over the contiguous row ranges: X = L^{-1} B, n x nrhs
  /// row-major, one barrier per superstep regardless of nrhs.
  void solveMultiRhs(std::span<const double> b, std::span<double> x,
                     index_t nrhs, SolveContext& ctx, int team,
                     core::FoldPolicy policy, StorageKind storage) const;
  void solveMultiRhs(std::span<const double> b, std::span<double> x,
                     index_t nrhs, SolveContext& ctx, int team,
                     core::FoldPolicy policy) const;
  void solveMultiRhs(std::span<const double> b, std::span<double> x,
                     index_t nrhs, SolveContext& ctx, int team) const;
  void solveMultiRhs(std::span<const double> b, std::span<double> x,
                     index_t nrhs, SolveContext& ctx) const;
  void solveMultiRhs(std::span<const double> b, std::span<double> x,
                     index_t nrhs) const;

  /// Tiled SpTRSM over the contiguous row ranges: same contract as
  /// BspExecutor::solveMultiRhsTiled (one barrier per superstep, tile loop
  /// inside, bitwise per column).
  void solveMultiRhsTiled(std::span<const double> b, std::span<double> x,
                          const TileLayout& layout, SolveContext& ctx,
                          int team, core::FoldPolicy policy,
                          StorageKind storage) const;

  /// Matrix bytes one full sweep of `storage` streams (builds the slab
  /// plan on demand); the plans' side of the roofline byte model.
  std::size_t storageBytesMoved(int team, core::FoldPolicy policy,
                                StorageKind storage) const;

  std::unique_ptr<SolveContext> createContext() const {
    return std::make_unique<SolveContext>(num_threads_, lower_.rows());
  }

  int numThreads() const { return num_threads_; }
  index_t numSupersteps() const { return num_supersteps_; }

 private:
  /// Folded plan for team < numThreads(): folded thread q's superstep-s
  /// work is a short list of contiguous row runs (one per surviving
  /// original rank, adjacent runs merged). Must implement the same rank
  /// map and concatenation order as Schedule::foldWith / foldThreadLists —
  /// test_elastic pins the implementations to each other.
  struct FoldedRanges {
    /// Runs of group (s, q) are ranges[range_ptr[s * team + q] ..
    /// range_ptr[s * team + q + 1]).
    std::vector<offset_t> range_ptr;
    std::vector<std::pair<index_t, index_t>> ranges;  ///< [lo, hi) rows
  };
  const FoldedRanges& foldedPlan(int team, core::FoldPolicy policy) const;
  /// Slab storage for (team, policy): the row ranges materialized as
  /// per-thread packed record streams (identical row order).
  const detail::SlabPlan& slabPlan(int team, core::FoldPolicy policy) const;
  void solveSlab(std::span<const double> b, std::span<double> x,
                 SolveContext& ctx, int team, core::FoldPolicy policy) const;
  void solveMultiRhsSlab(std::span<const double> b, std::span<double> x,
                         index_t nrhs, SolveContext& ctx, int team,
                         core::FoldPolicy policy) const;
  void solveMultiRhsTiledSlab(std::span<const double> b, std::span<double> x,
                              const TileLayout& layout, SolveContext& ctx,
                              int team, core::FoldPolicy policy) const;

  const CsrMatrix& lower_;
  index_t num_supersteps_ = 0;
  int num_threads_ = 0;
  std::vector<offset_t> group_ptr_;
  /// Per-(superstep, rank) nnz loads of the row ranges (superstep-major);
  /// feeds the kBinPack rank maps.
  std::vector<core::weight_t> rank_loads_;
  detail::TeamPlanCache<FoldedRanges> folded_;
  detail::TeamPlanCache<detail::SlabPlan> slabs_;
  mutable SolveContext default_ctx_;
};

}  // namespace sts::exec
