#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/schedule.hpp"
#include "exec/solve_context.hpp"
#include "sparse/csr.hpp"

/// \file bsp.hpp
/// Barrier-synchronous SpTRSV executor: runs a validated Schedule with one
/// spin barrier per superstep boundary (the execution model of §2.2).
/// The per-thread work lists are precomputed at construction so that the
/// hot solve path touches only flat arrays.
///
/// Reentrancy contract (see solve_context.hpp): executors are immutable
/// after construction; the only per-solve mutable state is the superstep
/// barrier, which lives in the SolveContext. The context-taking overloads
/// are `const` and safe to call concurrently as long as every concurrent
/// solve uses its own context. The context-free overloads run on a shared
/// built-in context and therefore remain one-solve-at-a-time.

namespace sts::exec {

using core::Schedule;
using sparse::CsrMatrix;
using sts::index_t;
using sts::offset_t;

class BspExecutor {
 public:
  /// `lower` must satisfy requireSolvableLower; `schedule` must be a valid
  /// schedule of the matrix's DAG (validateSchedule) — both are the
  /// caller's analysis-phase responsibility; the constructor re-checks the
  /// matrix but not the schedule (O(V·E) validation is opt-in).
  BspExecutor(const CsrMatrix& lower, const Schedule& schedule);

  /// x = L^{-1} b using `num_threads()` OpenMP threads; `ctx` carries the
  /// superstep barrier. Concurrent solves need distinct contexts.
  void solve(std::span<const double> b, std::span<double> x,
             SolveContext& ctx) const;
  /// Convenience overload on the built-in context (one solve at a time).
  void solve(std::span<const double> b, std::span<double> x) const;

  /// SpTRSM: X = L^{-1} B, both n x nrhs row-major. The schedule is
  /// RHS-count agnostic — each vertex simply carries nrhs times the work,
  /// so the barrier cost is amortized across the nrhs solves.
  void solveMultiRhs(std::span<const double> b, std::span<double> x,
                     index_t nrhs, SolveContext& ctx) const;
  void solveMultiRhs(std::span<const double> b, std::span<double> x,
                     index_t nrhs) const;

  /// A fresh context shaped for this executor.
  std::unique_ptr<SolveContext> createContext() const {
    return std::make_unique<SolveContext>(num_threads_, lower_.rows());
  }

  int numThreads() const { return num_threads_; }
  index_t numSupersteps() const { return num_supersteps_; }

 private:
  const CsrMatrix& lower_;
  int num_threads_ = 0;
  index_t num_supersteps_ = 0;
  /// Vertices of thread t across all supersteps, superstep-major:
  /// thread_verts_[t] with boundaries thread_step_ptr_[t][s].
  std::vector<std::vector<index_t>> thread_verts_;
  std::vector<std::vector<offset_t>> thread_step_ptr_;
  /// Backs the context-free overloads; mutable per-solve state only.
  mutable SolveContext default_ctx_;
};

/// Executor for the reordered problem (§5): every (superstep, core) group
/// is a contiguous row range of the permuted matrix, so the work lists are
/// just range boundaries — the best-locality configuration. Same
/// reentrancy contract as BspExecutor.
class ContiguousBspExecutor {
 public:
  ContiguousBspExecutor(const CsrMatrix& permuted_lower,
                        index_t num_supersteps, int num_cores,
                        std::vector<offset_t> group_ptr);

  void solve(std::span<const double> b, std::span<double> x,
             SolveContext& ctx) const;
  void solve(std::span<const double> b, std::span<double> x) const;

  /// SpTRSM over the contiguous row ranges: X = L^{-1} B, n x nrhs
  /// row-major, one barrier per superstep regardless of nrhs.
  void solveMultiRhs(std::span<const double> b, std::span<double> x,
                     index_t nrhs, SolveContext& ctx) const;
  void solveMultiRhs(std::span<const double> b, std::span<double> x,
                     index_t nrhs) const;

  std::unique_ptr<SolveContext> createContext() const {
    return std::make_unique<SolveContext>(num_threads_, lower_.rows());
  }

  int numThreads() const { return num_threads_; }
  index_t numSupersteps() const { return num_supersteps_; }

 private:
  const CsrMatrix& lower_;
  index_t num_supersteps_ = 0;
  int num_threads_ = 0;
  std::vector<offset_t> group_ptr_;
  mutable SolveContext default_ctx_;
};

}  // namespace sts::exec
