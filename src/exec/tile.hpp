#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "sparse/types.hpp"

/// \file tile.hpp
/// Cache-aware column tiling of the multi-RHS right-hand-side/solution
/// matrix (the StorageKind-orthogonal RHS layout of the tiled solve path).
///
/// The untiled multi-RHS walk sweeps an n x nrhs row-major matrix: every
/// row kernel touches nrhs doubles of X per referenced column, so at wide
/// nrhs the working set of the x-vector traffic is nrhs full columns and
/// the hot loop turns DRAM-bound. A TileLayout partitions the RHS columns
/// into width-T tiles and stores each tile as its own contiguous n x w
/// row-major block (leading dimension w == the tile width), sized so one
/// b-tile plus one x-tile fit a per-thread share of L2 (pickTileCols;
/// overridable by STS_TILE_COLS). Executors then run their per-superstep
/// row loop once per tile — the matrix stream is re-read per tile, but the
/// dense operand stays cache-resident, which is the winning trade for
/// sparse x dense-block work (cf. the tiled-SpMM structure in related
/// work).
///
/// Bitwise contract: a tile is an independent n x w multi-RHS sub-problem
/// in exactly the layout the untiled kernels consume, and tiling never
/// splits or reorders a column's arithmetic — column c of a tiled solve is
/// bit-for-bit the column c of the untiled solve (tests/test_tiled.cpp
/// pins this for every executor, storage, team, and nrhs).

namespace sts::exec {

/// Host cache geometry, detected once from
/// /sys/devices/system/cpu/cpu0/cache (Linux sysfs); `detected` is false
/// when the hierarchy could not be read and the conservative defaults
/// below are in effect. Consumed by pickTileCols, bench_common's host
/// metadata, and tools/roofline.py.
struct CacheGeometry {
  std::size_t l1d_bytes = 32u * 1024u;
  std::size_t l2_bytes = 1024u * 1024u;
  std::size_t l3_bytes = 8u * 1024u * 1024u;
  std::size_t line_bytes = 64;
  /// CPUs sharing the level (from shared_cpu_list; 1 = private).
  int l1d_shared_cpus = 1;
  int l2_shared_cpus = 1;
  int l3_shared_cpus = 1;
  bool detected = false;
};

/// Fresh sysfs read (for tests); prefer cacheGeometry() on hot paths.
CacheGeometry detectCacheGeometry();

/// The process-wide geometry, detected on first use and cached.
const CacheGeometry& cacheGeometry();

/// The auto-sized tile width for an n-row solve: the widest T such that a
/// b-tile plus an x-tile (2 * n * T doubles) fit half of one thread's L2
/// share, clamped to [16, 128] and rounded down to a multiple of 8 (full
/// register blocks). STS_TILE_COLS overrides unconditionally (clamped to
/// >= 1). The TileLayout constructor caps the result at nrhs, so callers
/// never get more tiles than columns.
index_t pickTileCols(index_t rows);

/// Column-tile partition of an n x nrhs right-hand-side/solution matrix:
/// tile t covers columns [tileBegin(t), tileBegin(t) + tileWidth(t)) and
/// is stored as a contiguous row-major n x tileWidth(t) block at double
/// offset tileOffset(t). All tiles have width tileCols() except a
/// narrower tail; nrhs <= tileCols() degenerates to a single tile whose
/// packed form IS the row-major matrix (pack/unpack become copies).
class TileLayout {
 public:
  TileLayout() = default;
  TileLayout(index_t rows, index_t nrhs, index_t tile_cols)
      : rows_(rows), cols_(nrhs) {
    if (rows < 0 || nrhs <= 0 || tile_cols <= 0) {
      throw std::invalid_argument("TileLayout: rows must be >= 0, nrhs and "
                                  "tile_cols must be >= 1");
    }
    tile_cols_ = std::min(tile_cols, nrhs);
    num_tiles_ = (nrhs + tile_cols_ - 1) / tile_cols_;
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t tileCols() const { return tile_cols_; }
  index_t numTiles() const { return num_tiles_; }

  index_t tileBegin(index_t t) const { return t * tile_cols_; }
  index_t tileWidth(index_t t) const {
    return std::min(tile_cols_, cols_ - tileBegin(t));
  }
  index_t tileOfCol(index_t c) const { return c / tile_cols_; }
  index_t colInTile(index_t c) const { return c % tile_cols_; }

  /// Double offset of tile t inside a packed buffer. Tiles are stored in
  /// order, so the offset is rows * tileBegin(t) regardless of the tail.
  std::size_t tileOffset(index_t t) const {
    return static_cast<std::size_t>(rows_) *
           static_cast<std::size_t>(tileBegin(t));
  }
  std::size_t tileDoubles(index_t t) const {
    return static_cast<std::size_t>(rows_) *
           static_cast<std::size_t>(tileWidth(t));
  }
  /// Total doubles of a packed buffer (== rows * cols; tiling never pads).
  std::size_t totalDoubles() const {
    return static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_);
  }

  std::span<const double> tileSpan(std::span<const double> packed,
                                   index_t t) const {
    return packed.subspan(tileOffset(t), tileDoubles(t));
  }
  std::span<double> tileSpan(std::span<double> packed, index_t t) const {
    return packed.subspan(tileOffset(t), tileDoubles(t));
  }

  /// Row-major n x nrhs -> packed tiles. Both spans hold totalDoubles().
  void pack(std::span<const double> row_major, std::span<double> tiled) const {
    requireSizes(row_major.size(), tiled.size(), "TileLayout::pack");
    const auto n = static_cast<std::size_t>(rows_);
    const auto r = static_cast<std::size_t>(cols_);
    for (index_t t = 0; t < num_tiles_; ++t) {
      const auto w = static_cast<std::size_t>(tileWidth(t));
      const auto c0 = static_cast<std::size_t>(tileBegin(t));
      double* dst = tiled.data() + tileOffset(t);
      for (std::size_t i = 0; i < n; ++i) {
        const double* src = row_major.data() + i * r + c0;
        for (std::size_t c = 0; c < w; ++c) dst[i * w + c] = src[c];
      }
    }
  }

  /// Packed tiles -> row-major n x nrhs (the inverse of pack).
  void unpack(std::span<const double> tiled,
              std::span<double> row_major) const {
    requireSizes(tiled.size(), row_major.size(), "TileLayout::unpack");
    const auto n = static_cast<std::size_t>(rows_);
    const auto r = static_cast<std::size_t>(cols_);
    for (index_t t = 0; t < num_tiles_; ++t) {
      const auto w = static_cast<std::size_t>(tileWidth(t));
      const auto c0 = static_cast<std::size_t>(tileBegin(t));
      const double* src = tiled.data() + tileOffset(t);
      for (std::size_t i = 0; i < n; ++i) {
        double* dst = row_major.data() + i * r + c0;
        for (std::size_t c = 0; c < w; ++c) dst[c] = src[i * w + c];
      }
    }
  }

  /// Bytes one pack (or unpack) pass moves: a read plus a write of every
  /// RHS double. Feeds the roofline byte model beside the plans'
  /// bytesMoved() accounting.
  std::size_t bytesMoved() const {
    return 2 * totalDoubles() * sizeof(double);
  }

 private:
  void requireSizes(std::size_t a, std::size_t b, const char* who) const {
    if (a != totalDoubles() || b != totalDoubles()) {
      throw std::invalid_argument(std::string(who) + ": buffer size mismatch");
    }
  }

  index_t rows_ = 0;
  index_t cols_ = 1;
  index_t tile_cols_ = 1;
  index_t num_tiles_ = 1;
};

/// Precomputed per-tile views of a packed (B, X) pair, hoisted out of the
/// executors' hot loops (indexing by tile number instead of re-deriving
/// subspans per record).
struct TileViews {
  std::vector<std::span<const double>> b;
  std::vector<std::span<double>> x;
  std::vector<std::size_t> width;
};

inline TileViews makeTileViews(const TileLayout& layout,
                               std::span<const double> b,
                               std::span<double> x) {
  const auto ntiles = static_cast<std::size_t>(layout.numTiles());
  TileViews views;
  views.b.resize(ntiles);
  views.x.resize(ntiles);
  views.width.resize(ntiles);
  for (std::size_t k = 0; k < ntiles; ++k) {
    const auto t = static_cast<index_t>(k);
    views.b[k] = layout.tileSpan(b, t);
    views.x[k] = layout.tileSpan(x, t);
    views.width[k] = static_cast<std::size_t>(layout.tileWidth(t));
  }
  return views;
}

/// Throws unless the layout matches the solve's row count and both packed
/// buffers hold exactly totalDoubles().
inline void requireTileShapes(index_t rows, const TileLayout& layout,
                              std::span<const double> b,
                              std::span<const double> x, const char* who) {
  if (layout.rows() != rows || b.size() != layout.totalDoubles() ||
      x.size() != layout.totalDoubles()) {
    throw std::invalid_argument(std::string(who) +
                                ": tile layout/buffer mismatch");
  }
}

/// Bytes one full sweep of a shared-CSR walk streams from the matrix
/// arrays (row_ptr deltas + col_idx + values per stored entry); the CSR
/// side of the plans' bytesMoved() accounting. Tiled walks re-stream this
/// once per tile.
inline std::size_t csrBytesMoved(index_t rows, offset_t nnz) {
  return (static_cast<std::size_t>(rows) + 1) * sizeof(offset_t) +
         static_cast<std::size_t>(nnz) * (sizeof(index_t) + sizeof(double));
}

}  // namespace sts::exec
