#pragma once

#include <string>

/// \file storage.hpp
/// The matrix-storage knob of the solve hot path. Every executor can walk
/// the matrix through two layouts:
///
///   * kSharedCsr — the one CSR the solver was analyzed on, indexed
///     through row_ptr/col_idx per vertex (the historical layout; rows of
///     one thread's work list are scattered across the shared arrays).
///   * kSlab — a per-(team, fold-policy) THREAD-LOCAL repack: each
///     thread's rows, in execution order, packed into a private
///     cache-line-aligned slab of interleaved {row, nnz, diag, cols[],
///     vals[]} records (exec/slab.hpp). The hot loop streams its own
///     contiguous memory with zero row_ptr indirection and no cross-thread
///     sharing of matrix data; slabs are cached beside the folded work
///     lists so the one-time build amortizes across solves exactly like
///     plans do (the Table 7.6 argument applied to storage).
///
/// Storage is a pure layout choice: both walks execute the same rows in
/// the same order with the same operands, so results are bitwise
/// identical (tests/test_slab.cpp pins this for every executor kind x
/// team x fold policy x nrhs).

namespace sts::exec {

enum class StorageKind {
  kSharedCsr = 0,  ///< walk the shared CSR through row_ptr/col_idx
  kSlab = 1,       ///< stream per-thread packed row records
};

/// Number of StorageKind values (sizes per-storage caches and sweeps).
inline constexpr int kNumStorageKinds = 2;

inline std::string storageKindName(StorageKind storage) {
  switch (storage) {
    case StorageKind::kSharedCsr: return "shared-csr";
    case StorageKind::kSlab: return "slab";
  }
  return "?";
}

}  // namespace sts::exec
