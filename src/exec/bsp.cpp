#include "exec/bsp.hpp"

#include <omp.h>

#include <stdexcept>

#include "exec/row_kernels.hpp"
#include "exec/serial.hpp"

namespace sts::exec {

using detail::computeRow;
using detail::computeRowMulti;
using detail::requireVectorSizes;

BspExecutor::BspExecutor(const CsrMatrix& lower, const Schedule& schedule)
    : lower_(lower),
      num_threads_(schedule.numCores()),
      num_supersteps_(schedule.numSupersteps()),
      default_ctx_(schedule.numCores(), lower.rows()) {
  requireSolvableLower(lower);
  if (schedule.numVertices() != lower.rows()) {
    throw std::invalid_argument("BspExecutor: schedule/matrix size mismatch");
  }
  thread_verts_.resize(static_cast<size_t>(num_threads_));
  thread_step_ptr_.resize(static_cast<size_t>(num_threads_));
  for (int t = 0; t < num_threads_; ++t) {
    auto& verts = thread_verts_[static_cast<size_t>(t)];
    auto& ptr = thread_step_ptr_[static_cast<size_t>(t)];
    ptr.push_back(0);
    for (index_t s = 0; s < num_supersteps_; ++s) {
      const auto group = schedule.group(s, t);
      verts.insert(verts.end(), group.begin(), group.end());
      ptr.push_back(static_cast<offset_t>(verts.size()));
    }
  }
}

void BspExecutor::solve(std::span<const double> b, std::span<double> x,
                        SolveContext& ctx) const {
  requireVectorSizes(lower_, b, x, 1, "BspExecutor::solve");
  ctx.requireShape(num_threads_, lower_.rows(), "BspExecutor::solve");
  const auto row_ptr = lower_.rowPtr();
  const auto col_idx = lower_.colIdx();
  const auto values = lower_.values();
  const index_t steps = num_supersteps_;
  const bool sync = num_threads_ > 1;
  SpinBarrier& barrier = ctx.barrier_;

  omp_set_dynamic(0);
#pragma omp parallel num_threads(num_threads_)
  {
    const int t = omp_get_thread_num();
    int sense = barrier.initialSense();
    const auto& verts = thread_verts_[static_cast<size_t>(t)];
    const auto& ptr = thread_step_ptr_[static_cast<size_t>(t)];
    for (index_t s = 0; s < steps; ++s) {
      const auto begin = static_cast<size_t>(ptr[static_cast<size_t>(s)]);
      const auto end = static_cast<size_t>(ptr[static_cast<size_t>(s) + 1]);
      for (size_t k = begin; k < end; ++k) {
        computeRow(row_ptr, col_idx, values, b, x, verts[k]);
      }
      if (sync) barrier.wait(sense);
    }
  }
}

void BspExecutor::solve(std::span<const double> b, std::span<double> x) const {
  solve(b, x, default_ctx_);
}

void BspExecutor::solveMultiRhs(std::span<const double> b,
                                std::span<double> x, index_t nrhs,
                                SolveContext& ctx) const {
  requireVectorSizes(lower_, b, x, nrhs, "BspExecutor::solveMultiRhs");
  ctx.requireShape(num_threads_, lower_.rows(), "BspExecutor::solveMultiRhs");
  const auto row_ptr = lower_.rowPtr();
  const auto col_idx = lower_.colIdx();
  const auto values = lower_.values();
  const index_t steps = num_supersteps_;
  const bool sync = num_threads_ > 1;
  const auto r = static_cast<size_t>(nrhs);
  SpinBarrier& barrier = ctx.barrier_;

  omp_set_dynamic(0);
#pragma omp parallel num_threads(num_threads_)
  {
    const int t = omp_get_thread_num();
    int sense = barrier.initialSense();
    const auto& verts = thread_verts_[static_cast<size_t>(t)];
    const auto& ptr = thread_step_ptr_[static_cast<size_t>(t)];
    for (index_t s = 0; s < steps; ++s) {
      const auto begin = static_cast<size_t>(ptr[static_cast<size_t>(s)]);
      const auto end = static_cast<size_t>(ptr[static_cast<size_t>(s) + 1]);
      for (size_t k = begin; k < end; ++k) {
        computeRowMulti(row_ptr, col_idx, values, b, x, verts[k], r);
      }
      if (sync) barrier.wait(sense);
    }
  }
}

void BspExecutor::solveMultiRhs(std::span<const double> b,
                                std::span<double> x, index_t nrhs) const {
  solveMultiRhs(b, x, nrhs, default_ctx_);
}

ContiguousBspExecutor::ContiguousBspExecutor(const CsrMatrix& permuted_lower,
                                             index_t num_supersteps,
                                             int num_cores,
                                             std::vector<offset_t> group_ptr)
    : lower_(permuted_lower),
      num_supersteps_(num_supersteps),
      num_threads_(num_cores),
      group_ptr_(std::move(group_ptr)),
      default_ctx_(num_cores, permuted_lower.rows()) {
  requireSolvableLower(permuted_lower);
  const size_t groups = static_cast<size_t>(num_supersteps) *
                        static_cast<size_t>(num_cores);
  if (group_ptr_.size() != groups + 1 || group_ptr_.front() != 0 ||
      group_ptr_.back() != static_cast<offset_t>(permuted_lower.rows())) {
    throw std::invalid_argument("ContiguousBspExecutor: bad group_ptr");
  }
}

void ContiguousBspExecutor::solve(std::span<const double> b,
                                  std::span<double> x,
                                  SolveContext& ctx) const {
  requireVectorSizes(lower_, b, x, 1, "ContiguousBspExecutor::solve");
  ctx.requireShape(num_threads_, lower_.rows(),
                   "ContiguousBspExecutor::solve");
  const auto row_ptr = lower_.rowPtr();
  const auto col_idx = lower_.colIdx();
  const auto values = lower_.values();
  const index_t steps = num_supersteps_;
  const int cores = num_threads_;
  const bool sync = cores > 1;
  SpinBarrier& barrier = ctx.barrier_;

  omp_set_dynamic(0);
#pragma omp parallel num_threads(cores)
  {
    const int t = omp_get_thread_num();
    int sense = barrier.initialSense();
    for (index_t s = 0; s < steps; ++s) {
      const size_t g = static_cast<size_t>(s) * static_cast<size_t>(cores) +
                       static_cast<size_t>(t);
      const auto lo = static_cast<index_t>(group_ptr_[g]);
      const auto hi = static_cast<index_t>(group_ptr_[g + 1]);
      for (index_t i = lo; i < hi; ++i) {
        computeRow(row_ptr, col_idx, values, b, x, i);
      }
      if (sync) barrier.wait(sense);
    }
  }
}

void ContiguousBspExecutor::solve(std::span<const double> b,
                                  std::span<double> x) const {
  solve(b, x, default_ctx_);
}

void ContiguousBspExecutor::solveMultiRhs(std::span<const double> b,
                                          std::span<double> x, index_t nrhs,
                                          SolveContext& ctx) const {
  requireVectorSizes(lower_, b, x, nrhs,
                     "ContiguousBspExecutor::solveMultiRhs");
  ctx.requireShape(num_threads_, lower_.rows(),
                   "ContiguousBspExecutor::solveMultiRhs");
  const auto row_ptr = lower_.rowPtr();
  const auto col_idx = lower_.colIdx();
  const auto values = lower_.values();
  const index_t steps = num_supersteps_;
  const int cores = num_threads_;
  const bool sync = cores > 1;
  const auto r = static_cast<size_t>(nrhs);
  SpinBarrier& barrier = ctx.barrier_;

  omp_set_dynamic(0);
#pragma omp parallel num_threads(cores)
  {
    const int t = omp_get_thread_num();
    int sense = barrier.initialSense();
    for (index_t s = 0; s < steps; ++s) {
      const size_t g = static_cast<size_t>(s) * static_cast<size_t>(cores) +
                       static_cast<size_t>(t);
      const auto lo = static_cast<index_t>(group_ptr_[g]);
      const auto hi = static_cast<index_t>(group_ptr_[g + 1]);
      for (index_t i = lo; i < hi; ++i) {
        computeRowMulti(row_ptr, col_idx, values, b, x, i, r);
      }
      if (sync) barrier.wait(sense);
    }
  }
}

void ContiguousBspExecutor::solveMultiRhs(std::span<const double> b,
                                          std::span<double> x,
                                          index_t nrhs) const {
  solveMultiRhs(b, x, nrhs, default_ctx_);
}

}  // namespace sts::exec
