#include "exec/bsp.hpp"

#include <omp.h>

#include <stdexcept>

#include "exec/affinity.hpp"
#include "exec/row_kernels.hpp"
#include "exec/serial.hpp"
#include "fault/failpoint.hpp"
#include "obs/trace.hpp"

namespace sts::exec {

using detail::computeRow;
using detail::computeRowMulti;
using detail::requireVectorSizes;

namespace {

/// The one OpenMP region shape shared by every barrier-synchronous slab
/// walk (BspExecutor and ContiguousBspExecutor, single- and multi-RHS):
/// pin + note, then stream the thread's slab with a barrier after every
/// superstep. The per-record kernel is the only degree of freedom, so the
/// hot region cannot diverge between executors (the row_kernels.hpp
/// single-definition argument, applied to the region).
template <typename NotePinFn, typename KernelFn>
void slabSuperstepRegion(const detail::SlabPlan& plan, index_t steps,
                         int team, std::span<const int> pin_set,
                         SpinBarrier& barrier, obs::SolveTrace* sink,
                         NotePinFn&& note_pin, KernelFn&& kernel) {
  const bool sync = team > 1;
  omp_set_dynamic(0);
#pragma omp parallel num_threads(team)
  {
    const auto t = static_cast<size_t>(omp_get_thread_num());
    const ScopedPin pin(pin_set, static_cast<int>(t));
    note_pin(pin);
    obs::StepTracer tracer(sink);
    std::uint64_t step = 0;
    int sense = barrier.initialSense();
    detail::forEachSlabRecord(plan.threads[t], steps, kernel, [&] {
      // Superstep latency-spike failpoint (delay actions only: a throw
      // escaping this omp region would terminate). A rank-filtered delay
      // here models a straggler thread stretching every barrier.
      STS_FAILPOINT_RANK("exec.superstep", t);
      tracer.computeDone(step);
      if (sync) {
        barrier.wait(sense, team);
        tracer.waitDone(step);
      }
      ++step;
    });
  }
}

/// Tiled sibling of slabSuperstepRegion: each superstep's record run is
/// replayed once per RHS column tile (forEachSlabRecordTiled) before the
/// barrier, so the barrier count stays one per superstep regardless of
/// tile count. The kernel receives (record, tile index).
template <typename NotePinFn, typename KernelFn>
void slabSuperstepRegionTiled(const detail::SlabPlan& plan, index_t steps,
                              index_t tiles, int team,
                              std::span<const int> pin_set,
                              SpinBarrier& barrier, obs::SolveTrace* sink,
                              NotePinFn&& note_pin, KernelFn&& kernel) {
  const bool sync = team > 1;
  omp_set_dynamic(0);
#pragma omp parallel num_threads(team)
  {
    const auto t = static_cast<size_t>(omp_get_thread_num());
    const ScopedPin pin(pin_set, static_cast<int>(t));
    note_pin(pin);
    obs::StepTracer tracer(sink);
    std::uint64_t step = 0;
    int sense = barrier.initialSense();
    detail::forEachSlabRecordTiled(plan.threads[t], steps, tiles, kernel,
                                   [&] {
                                     tracer.computeDone(step);
                                     if (sync) {
                                       barrier.wait(sense, team);
                                       tracer.waitDone(step);
                                     }
                                     ++step;
                                   });
  }
}

}  // namespace

BspExecutor::BspExecutor(const CsrMatrix& lower, const Schedule& schedule)
    : lower_(lower),
      num_threads_(schedule.numCores()),
      num_supersteps_(schedule.numSupersteps()),
      default_ctx_(schedule.numCores(), lower.rows()) {
  requireSolvableLower(lower);
  if (schedule.numVertices() != lower.rows()) {
    throw std::invalid_argument("BspExecutor: schedule/matrix size mismatch");
  }
  full_.verts.resize(static_cast<size_t>(num_threads_));
  full_.step_ptr.resize(static_cast<size_t>(num_threads_));
  for (int t = 0; t < num_threads_; ++t) {
    auto& verts = full_.verts[static_cast<size_t>(t)];
    auto& ptr = full_.step_ptr[static_cast<size_t>(t)];
    ptr.push_back(0);
    for (index_t s = 0; s < num_supersteps_; ++s) {
      const auto group = schedule.group(s, t);
      verts.insert(verts.end(), group.begin(), group.end());
      ptr.push_back(static_cast<offset_t>(verts.size()));
    }
  }
  rank_loads_ = detail::threadListLoads(full_.verts, full_.step_ptr,
                                        num_supersteps_, lower.rowPtr());
  folded_.init(num_threads_, &full_);
  slabs_.init(num_threads_);
}

const detail::FoldedLists& BspExecutor::foldedPlan(
    int team, core::FoldPolicy policy) const {
  return folded_.get(team, policy, [this](int t, core::FoldPolicy p) {
    STS_TRACE_SPAN1("plan", "fold_build", "team", t);
    const auto map =
        core::foldRankMap(num_supersteps_, num_threads_, t, p, rank_loads_);
    return detail::foldThreadLists(full_.verts, full_.step_ptr,
                                   num_supersteps_, t, map);
  });
}

const detail::SlabPlan& BspExecutor::slabPlan(int team,
                                              core::FoldPolicy policy) const {
  if (team == num_threads_) {
    // The full-width plan is policy-invariant; build one slab and share
    // it across the policy slots instead of packing the matrix twice.
    return slabs_.getPolicyShared(team, [this]([[maybe_unused]] int t) {
      STS_TRACE_SPAN1("plan", "slab_build", "team", t);
      return detail::buildSlabPlan(lower_, full_);
    });
  }
  return slabs_.get(team, policy, [this](int t, core::FoldPolicy p) {
    STS_TRACE_SPAN1("plan", "slab_build", "team", t);
    return detail::buildSlabPlan(lower_, foldedPlan(t, p));
  });
}

void BspExecutor::solve(std::span<const double> b, std::span<double> x,
                        SolveContext& ctx, int team, core::FoldPolicy policy,
                        StorageKind storage) const {
  if (storage == StorageKind::kSlab) {
    solveSlab(b, x, ctx, team, policy);
    return;
  }
  solve(b, x, ctx, team, policy);
}

void BspExecutor::solveSlab(std::span<const double> b, std::span<double> x,
                            SolveContext& ctx, int team,
                            core::FoldPolicy policy) const {
  requireVectorSizes(lower_, b, x, 1, "BspExecutor::solve");
  detail::requireTeamSize(team, num_threads_, "BspExecutor::solve");
  ctx.requireShape(team, lower_.rows(), "BspExecutor::solve");
  slabSuperstepRegion(
      slabPlan(team, policy), num_supersteps_, team, ctx.pinnedCores(),
      ctx.barrier_, ctx.trace(),
      [&ctx](const ScopedPin& pin) { ctx.notePin(pin); },
      [&](const detail::SlabRecordView& rec) {
        detail::computeRowPacked(rec.cols, rec.vals, rec.nnz, rec.diag, b, x,
                                 rec.row);
      });
}

void BspExecutor::solve(std::span<const double> b, std::span<double> x,
                        SolveContext& ctx, int team,
                        core::FoldPolicy policy) const {
  requireVectorSizes(lower_, b, x, 1, "BspExecutor::solve");
  detail::requireTeamSize(team, num_threads_, "BspExecutor::solve");
  ctx.requireShape(team, lower_.rows(), "BspExecutor::solve");
  const detail::FoldedLists& plan = foldedPlan(team, policy);
  const auto row_ptr = lower_.rowPtr();
  const auto col_idx = lower_.colIdx();
  const auto values = lower_.values();
  const index_t steps = num_supersteps_;
  const bool sync = team > 1;
  const std::span<const int> pin_set = ctx.pinnedCores();
  SpinBarrier& barrier = ctx.barrier_;

  omp_set_dynamic(0);
#pragma omp parallel num_threads(team)
  {
    const auto t = static_cast<size_t>(omp_get_thread_num());
    const ScopedPin pin(pin_set, static_cast<int>(t));
    ctx.notePin(pin);
    obs::StepTracer tracer(ctx.trace());
    int sense = barrier.initialSense();
    const auto& verts = plan.verts[t];
    const auto& ptr = plan.step_ptr[t];
    for (index_t s = 0; s < steps; ++s) {
      const auto begin = static_cast<size_t>(ptr[static_cast<size_t>(s)]);
      const auto end = static_cast<size_t>(ptr[static_cast<size_t>(s) + 1]);
      for (size_t k = begin; k < end; ++k) {
        computeRow(row_ptr, col_idx, values, b, x, verts[k]);
      }
      // Same straggler failpoint as the slab region (delay actions only).
      STS_FAILPOINT_RANK("exec.superstep", t);
      tracer.computeDone(static_cast<std::uint64_t>(s));
      if (sync) {
        barrier.wait(sense, team);
        tracer.waitDone(static_cast<std::uint64_t>(s));
      }
    }
  }
}

void BspExecutor::solve(std::span<const double> b, std::span<double> x,
                        SolveContext& ctx, int team) const {
  solve(b, x, ctx, team, core::FoldPolicy::kModulo);
}

void BspExecutor::solve(std::span<const double> b, std::span<double> x,
                        SolveContext& ctx) const {
  solve(b, x, ctx, num_threads_, core::FoldPolicy::kModulo);
}

void BspExecutor::solve(std::span<const double> b, std::span<double> x) const {
  solve(b, x, default_ctx_, num_threads_, core::FoldPolicy::kModulo);
}

void BspExecutor::solveMultiRhs(std::span<const double> b,
                                std::span<double> x, index_t nrhs,
                                SolveContext& ctx, int team,
                                core::FoldPolicy policy,
                                StorageKind storage) const {
  if (storage == StorageKind::kSlab) {
    solveMultiRhsSlab(b, x, nrhs, ctx, team, policy);
    return;
  }
  solveMultiRhs(b, x, nrhs, ctx, team, policy);
}

void BspExecutor::solveMultiRhsSlab(std::span<const double> b,
                                    std::span<double> x, index_t nrhs,
                                    SolveContext& ctx, int team,
                                    core::FoldPolicy policy) const {
  requireVectorSizes(lower_, b, x, nrhs, "BspExecutor::solveMultiRhs");
  detail::requireTeamSize(team, num_threads_, "BspExecutor::solveMultiRhs");
  ctx.requireShape(team, lower_.rows(), "BspExecutor::solveMultiRhs");
  const auto r = static_cast<size_t>(nrhs);
  slabSuperstepRegion(
      slabPlan(team, policy), num_supersteps_, team, ctx.pinnedCores(),
      ctx.barrier_, ctx.trace(),
      [&ctx](const ScopedPin& pin) { ctx.notePin(pin); },
      [&](const detail::SlabRecordView& rec) {
        detail::computeRowMultiPacked(rec.cols, rec.vals, rec.nnz, rec.diag,
                                      b, x, rec.row, r);
      });
}

void BspExecutor::solveMultiRhs(std::span<const double> b,
                                std::span<double> x, index_t nrhs,
                                SolveContext& ctx, int team,
                                core::FoldPolicy policy) const {
  requireVectorSizes(lower_, b, x, nrhs, "BspExecutor::solveMultiRhs");
  detail::requireTeamSize(team, num_threads_, "BspExecutor::solveMultiRhs");
  ctx.requireShape(team, lower_.rows(), "BspExecutor::solveMultiRhs");
  const detail::FoldedLists& plan = foldedPlan(team, policy);
  const auto row_ptr = lower_.rowPtr();
  const auto col_idx = lower_.colIdx();
  const auto values = lower_.values();
  const index_t steps = num_supersteps_;
  const bool sync = team > 1;
  const auto r = static_cast<size_t>(nrhs);
  const std::span<const int> pin_set = ctx.pinnedCores();
  SpinBarrier& barrier = ctx.barrier_;

  omp_set_dynamic(0);
#pragma omp parallel num_threads(team)
  {
    const auto t = static_cast<size_t>(omp_get_thread_num());
    const ScopedPin pin(pin_set, static_cast<int>(t));
    ctx.notePin(pin);
    obs::StepTracer tracer(ctx.trace());
    int sense = barrier.initialSense();
    const auto& verts = plan.verts[t];
    const auto& ptr = plan.step_ptr[t];
    for (index_t s = 0; s < steps; ++s) {
      const auto begin = static_cast<size_t>(ptr[static_cast<size_t>(s)]);
      const auto end = static_cast<size_t>(ptr[static_cast<size_t>(s) + 1]);
      for (size_t k = begin; k < end; ++k) {
        computeRowMulti(row_ptr, col_idx, values, b, x, verts[k], r);
      }
      tracer.computeDone(static_cast<std::uint64_t>(s));
      if (sync) {
        barrier.wait(sense, team);
        tracer.waitDone(static_cast<std::uint64_t>(s));
      }
    }
  }
}

void BspExecutor::solveMultiRhsTiled(std::span<const double> b,
                                     std::span<double> x,
                                     const TileLayout& layout,
                                     SolveContext& ctx, int team,
                                     core::FoldPolicy policy,
                                     StorageKind storage) const {
  requireTileShapes(lower_.rows(), layout, b, x,
                    "BspExecutor::solveMultiRhsTiled");
  if (storage == StorageKind::kSlab) {
    solveMultiRhsTiledSlab(b, x, layout, ctx, team, policy);
    return;
  }
  detail::requireTeamSize(team, num_threads_,
                          "BspExecutor::solveMultiRhsTiled");
  ctx.requireShape(team, lower_.rows(), "BspExecutor::solveMultiRhsTiled");
  const detail::FoldedLists& plan = foldedPlan(team, policy);
  const auto row_ptr = lower_.rowPtr();
  const auto col_idx = lower_.colIdx();
  const auto values = lower_.values();
  const index_t steps = num_supersteps_;
  const bool sync = team > 1;
  const TileViews tiles = makeTileViews(layout, b, x);
  const std::size_t ntiles = tiles.width.size();
  const std::span<const int> pin_set = ctx.pinnedCores();
  SpinBarrier& barrier = ctx.barrier_;

  omp_set_dynamic(0);
#pragma omp parallel num_threads(team)
  {
    const auto t = static_cast<size_t>(omp_get_thread_num());
    const ScopedPin pin(pin_set, static_cast<int>(t));
    ctx.notePin(pin);
    obs::StepTracer tracer(ctx.trace());
    int sense = barrier.initialSense();
    const auto& verts = plan.verts[t];
    const auto& ptr = plan.step_ptr[t];
    for (index_t s = 0; s < steps; ++s) {
      const auto begin = static_cast<size_t>(ptr[static_cast<size_t>(s)]);
      const auto end = static_cast<size_t>(ptr[static_cast<size_t>(s) + 1]);
      for (std::size_t tk = 0; tk < ntiles; ++tk) {
        const auto bt = tiles.b[tk];
        const auto xt = tiles.x[tk];
        const auto w = tiles.width[tk];
        for (size_t k = begin; k < end; ++k) {
          detail::computeRowMultiTiled(row_ptr, col_idx, values, bt, xt,
                                       verts[k], w);
        }
      }
      tracer.computeDone(static_cast<std::uint64_t>(s));
      if (sync) {
        barrier.wait(sense, team);
        tracer.waitDone(static_cast<std::uint64_t>(s));
      }
    }
  }
}

void BspExecutor::solveMultiRhsTiledSlab(std::span<const double> b,
                                         std::span<double> x,
                                         const TileLayout& layout,
                                         SolveContext& ctx, int team,
                                         core::FoldPolicy policy) const {
  detail::requireTeamSize(team, num_threads_,
                          "BspExecutor::solveMultiRhsTiled");
  ctx.requireShape(team, lower_.rows(), "BspExecutor::solveMultiRhsTiled");
  const TileViews tiles = makeTileViews(layout, b, x);
  slabSuperstepRegionTiled(
      slabPlan(team, policy), num_supersteps_, layout.numTiles(), team,
      ctx.pinnedCores(), ctx.barrier_, ctx.trace(),
      [&ctx](const ScopedPin& pin) { ctx.notePin(pin); },
      [&](const detail::SlabRecordView& rec, index_t tile) {
        const auto tk = static_cast<std::size_t>(tile);
        detail::computeRowMultiPacked(rec.cols, rec.vals, rec.nnz, rec.diag,
                                      tiles.b[tk], tiles.x[tk], rec.row,
                                      tiles.width[tk]);
      });
}

std::size_t BspExecutor::storageBytesMoved(int team, core::FoldPolicy policy,
                                           StorageKind storage) const {
  if (storage == StorageKind::kSlab) {
    return detail::slabBytesMoved(slabPlan(team, policy));
  }
  return csrBytesMoved(lower_.rows(), lower_.nnz());
}

void BspExecutor::solveMultiRhs(std::span<const double> b,
                                std::span<double> x, index_t nrhs,
                                SolveContext& ctx, int team) const {
  solveMultiRhs(b, x, nrhs, ctx, team, core::FoldPolicy::kModulo);
}

void BspExecutor::solveMultiRhs(std::span<const double> b,
                                std::span<double> x, index_t nrhs,
                                SolveContext& ctx) const {
  solveMultiRhs(b, x, nrhs, ctx, num_threads_, core::FoldPolicy::kModulo);
}

void BspExecutor::solveMultiRhs(std::span<const double> b,
                                std::span<double> x, index_t nrhs) const {
  solveMultiRhs(b, x, nrhs, default_ctx_, num_threads_,
                core::FoldPolicy::kModulo);
}

ContiguousBspExecutor::ContiguousBspExecutor(const CsrMatrix& permuted_lower,
                                             index_t num_supersteps,
                                             int num_cores,
                                             std::vector<offset_t> group_ptr)
    : lower_(permuted_lower),
      num_supersteps_(num_supersteps),
      num_threads_(num_cores),
      group_ptr_(std::move(group_ptr)),
      default_ctx_(num_cores, permuted_lower.rows()) {
  requireSolvableLower(permuted_lower);
  const size_t groups = static_cast<size_t>(num_supersteps) *
                        static_cast<size_t>(num_cores);
  if (group_ptr_.size() != groups + 1 || group_ptr_.front() != 0 ||
      group_ptr_.back() != static_cast<offset_t>(permuted_lower.rows())) {
    throw std::invalid_argument("ContiguousBspExecutor: bad group_ptr");
  }
  // Group (s, p) covers a contiguous row range, so its load is one rowPtr
  // difference: the groups are already superstep-major in group_ptr_.
  const auto row_ptr = lower_.rowPtr();
  rank_loads_.resize(groups);
  for (size_t g = 0; g < groups; ++g) {
    const auto lo = static_cast<size_t>(group_ptr_[g]);
    const auto hi = static_cast<size_t>(group_ptr_[g + 1]);
    rank_loads_[g] = static_cast<core::weight_t>(row_ptr[hi] - row_ptr[lo]);
  }
  folded_.init(num_threads_);
  slabs_.init(num_threads_);
}

const detail::SlabPlan& ContiguousBspExecutor::slabPlan(
    int team, core::FoldPolicy policy) const {
  // Materialize the row ranges as explicit per-thread row lists (the
  // shape buildSlabPlan packs); the slab keeps the exact range walk
  // order, so results stay bitwise identical to the range path.
  const auto build = [this](int t, const FoldedRanges* plan) {
    STS_TRACE_SPAN1("plan", "slab_build", "team", t);
    detail::FoldedLists lists;
    lists.verts.resize(static_cast<size_t>(t));
    lists.step_ptr.resize(static_cast<size_t>(t));
    for (int q = 0; q < t; ++q) {
      auto& verts = lists.verts[static_cast<size_t>(q)];
      auto& ptr = lists.step_ptr[static_cast<size_t>(q)];
      ptr.push_back(0);
      for (index_t s = 0; s < num_supersteps_; ++s) {
        const size_t g = static_cast<size_t>(s) * static_cast<size_t>(t) +
                         static_cast<size_t>(q);
        if (plan == nullptr) {
          const auto lo = static_cast<index_t>(group_ptr_[g]);
          const auto hi = static_cast<index_t>(group_ptr_[g + 1]);
          for (index_t i = lo; i < hi; ++i) verts.push_back(i);
        } else {
          const auto begin = static_cast<size_t>(plan->range_ptr[g]);
          const auto end = static_cast<size_t>(plan->range_ptr[g + 1]);
          for (size_t k = begin; k < end; ++k) {
            const auto [lo, hi] = plan->ranges[k];
            for (index_t i = lo; i < hi; ++i) verts.push_back(i);
          }
        }
        ptr.push_back(static_cast<offset_t>(verts.size()));
      }
    }
    return detail::buildSlabPlan(lower_, lists);
  };
  if (team == num_threads_) {
    // Policy-invariant at full width: one slab shared across policies.
    return slabs_.getPolicyShared(
        team, [&](int t) { return build(t, nullptr); });
  }
  return slabs_.get(team, policy, [&](int t, core::FoldPolicy pol) {
    return build(t, &foldedPlan(t, pol));
  });
}

const ContiguousBspExecutor::FoldedRanges&
ContiguousBspExecutor::foldedPlan(int team, core::FoldPolicy policy) const {
  return folded_.get(team, policy, [this](int t, core::FoldPolicy pol) {
    STS_TRACE_SPAN1("plan", "fold_build", "team", t);
    const auto map =
        core::foldRankMap(num_supersteps_, num_threads_, t, pol, rank_loads_);
    // Inverted map: ranks of slot q in ascending order, so each superstep
    // is walked O(numThreads()) overall rather than O(t * numThreads()).
    std::vector<std::vector<int>> slot_ranks(static_cast<size_t>(t));
    for (int p = 0; p < num_threads_; ++p) {
      slot_ranks[static_cast<size_t>(map[static_cast<size_t>(p)])]
          .push_back(p);
    }
    FoldedRanges plan;
    plan.range_ptr.reserve(static_cast<size_t>(num_supersteps_) *
                               static_cast<size_t>(t) + 1);
    plan.range_ptr.push_back(0);
    for (index_t s = 0; s < num_supersteps_; ++s) {
      for (int q = 0; q < t; ++q) {
        for (const int p : slot_ranks[static_cast<size_t>(q)]) {
          const size_t g = static_cast<size_t>(s) *
                               static_cast<size_t>(num_threads_) +
                           static_cast<size_t>(p);
          const auto lo = static_cast<index_t>(group_ptr_[g]);
          const auto hi = static_cast<index_t>(group_ptr_[g + 1]);
          if (lo == hi) continue;
          if (!plan.ranges.empty() &&
              plan.range_ptr.back() !=
                  static_cast<offset_t>(plan.ranges.size()) &&
              plan.ranges.back().second == lo) {
            plan.ranges.back().second = hi;  // merge adjacent runs
          } else {
            plan.ranges.emplace_back(lo, hi);
          }
        }
        plan.range_ptr.push_back(static_cast<offset_t>(plan.ranges.size()));
      }
    }
    return plan;
  });
}

void ContiguousBspExecutor::solve(std::span<const double> b,
                                  std::span<double> x, SolveContext& ctx,
                                  int team, core::FoldPolicy policy,
                                  StorageKind storage) const {
  if (storage == StorageKind::kSlab) {
    solveSlab(b, x, ctx, team, policy);
    return;
  }
  solve(b, x, ctx, team, policy);
}

void ContiguousBspExecutor::solveSlab(std::span<const double> b,
                                      std::span<double> x, SolveContext& ctx,
                                      int team,
                                      core::FoldPolicy policy) const {
  requireVectorSizes(lower_, b, x, 1, "ContiguousBspExecutor::solve");
  detail::requireTeamSize(team, num_threads_, "ContiguousBspExecutor::solve");
  ctx.requireShape(team, lower_.rows(), "ContiguousBspExecutor::solve");
  slabSuperstepRegion(
      slabPlan(team, policy), num_supersteps_, team, ctx.pinnedCores(),
      ctx.barrier_, ctx.trace(),
      [&ctx](const ScopedPin& pin) { ctx.notePin(pin); },
      [&](const detail::SlabRecordView& rec) {
        detail::computeRowPacked(rec.cols, rec.vals, rec.nnz, rec.diag, b, x,
                                 rec.row);
      });
}

void ContiguousBspExecutor::solve(std::span<const double> b,
                                  std::span<double> x, SolveContext& ctx,
                                  int team, core::FoldPolicy policy) const {
  requireVectorSizes(lower_, b, x, 1, "ContiguousBspExecutor::solve");
  detail::requireTeamSize(team, num_threads_, "ContiguousBspExecutor::solve");
  ctx.requireShape(team, lower_.rows(), "ContiguousBspExecutor::solve");
  const auto row_ptr = lower_.rowPtr();
  const auto col_idx = lower_.colIdx();
  const auto values = lower_.values();
  const index_t steps = num_supersteps_;
  const bool sync = team > 1;
  const std::span<const int> pin_set = ctx.pinnedCores();
  SpinBarrier& barrier = ctx.barrier_;

  omp_set_dynamic(0);
  if (team == num_threads_) {
    const int cores = num_threads_;
#pragma omp parallel num_threads(cores)
    {
      const int t = omp_get_thread_num();
      const ScopedPin pin(pin_set, t);
      ctx.notePin(pin);
      obs::StepTracer tracer(ctx.trace());
      int sense = barrier.initialSense();
      for (index_t s = 0; s < steps; ++s) {
        const size_t g = static_cast<size_t>(s) * static_cast<size_t>(cores) +
                         static_cast<size_t>(t);
        const auto lo = static_cast<index_t>(group_ptr_[g]);
        const auto hi = static_cast<index_t>(group_ptr_[g + 1]);
        for (index_t i = lo; i < hi; ++i) {
          computeRow(row_ptr, col_idx, values, b, x, i);
        }
        // Superstep latency-spike failpoint (delay actions only; a throw
        // escaping this omp region would terminate the process).
        STS_FAILPOINT_RANK("exec.superstep", t);
        tracer.computeDone(static_cast<std::uint64_t>(s));
        if (sync) {
          barrier.wait(sense, team);
          tracer.waitDone(static_cast<std::uint64_t>(s));
        }
      }
    }
    return;
  }

  const FoldedRanges& plan = foldedPlan(team, policy);
#pragma omp parallel num_threads(team)
  {
    const int t = omp_get_thread_num();
    const ScopedPin pin(pin_set, t);
    ctx.notePin(pin);
    obs::StepTracer tracer(ctx.trace());
    int sense = barrier.initialSense();
    for (index_t s = 0; s < steps; ++s) {
      const size_t g = static_cast<size_t>(s) * static_cast<size_t>(team) +
                       static_cast<size_t>(t);
      const auto begin = static_cast<size_t>(plan.range_ptr[g]);
      const auto end = static_cast<size_t>(plan.range_ptr[g + 1]);
      for (size_t k = begin; k < end; ++k) {
        const auto [lo, hi] = plan.ranges[k];
        for (index_t i = lo; i < hi; ++i) {
          computeRow(row_ptr, col_idx, values, b, x, i);
        }
      }
      STS_FAILPOINT_RANK("exec.superstep", t);
      tracer.computeDone(static_cast<std::uint64_t>(s));
      if (sync) {
        barrier.wait(sense, team);
        tracer.waitDone(static_cast<std::uint64_t>(s));
      }
    }
  }
}

void ContiguousBspExecutor::solve(std::span<const double> b,
                                  std::span<double> x, SolveContext& ctx,
                                  int team) const {
  solve(b, x, ctx, team, core::FoldPolicy::kModulo);
}

void ContiguousBspExecutor::solve(std::span<const double> b,
                                  std::span<double> x,
                                  SolveContext& ctx) const {
  solve(b, x, ctx, num_threads_, core::FoldPolicy::kModulo);
}

void ContiguousBspExecutor::solve(std::span<const double> b,
                                  std::span<double> x) const {
  solve(b, x, default_ctx_, num_threads_, core::FoldPolicy::kModulo);
}

void ContiguousBspExecutor::solveMultiRhs(std::span<const double> b,
                                          std::span<double> x, index_t nrhs,
                                          SolveContext& ctx, int team,
                                          core::FoldPolicy policy,
                                          StorageKind storage) const {
  if (storage == StorageKind::kSlab) {
    solveMultiRhsSlab(b, x, nrhs, ctx, team, policy);
    return;
  }
  solveMultiRhs(b, x, nrhs, ctx, team, policy);
}

void ContiguousBspExecutor::solveMultiRhsSlab(std::span<const double> b,
                                              std::span<double> x,
                                              index_t nrhs, SolveContext& ctx,
                                              int team,
                                              core::FoldPolicy policy) const {
  requireVectorSizes(lower_, b, x, nrhs,
                     "ContiguousBspExecutor::solveMultiRhs");
  detail::requireTeamSize(team, num_threads_,
                          "ContiguousBspExecutor::solveMultiRhs");
  ctx.requireShape(team, lower_.rows(),
                   "ContiguousBspExecutor::solveMultiRhs");
  const auto r = static_cast<size_t>(nrhs);
  slabSuperstepRegion(
      slabPlan(team, policy), num_supersteps_, team, ctx.pinnedCores(),
      ctx.barrier_, ctx.trace(),
      [&ctx](const ScopedPin& pin) { ctx.notePin(pin); },
      [&](const detail::SlabRecordView& rec) {
        detail::computeRowMultiPacked(rec.cols, rec.vals, rec.nnz, rec.diag,
                                      b, x, rec.row, r);
      });
}

void ContiguousBspExecutor::solveMultiRhs(std::span<const double> b,
                                          std::span<double> x, index_t nrhs,
                                          SolveContext& ctx, int team,
                                          core::FoldPolicy policy) const {
  requireVectorSizes(lower_, b, x, nrhs,
                     "ContiguousBspExecutor::solveMultiRhs");
  detail::requireTeamSize(team, num_threads_,
                          "ContiguousBspExecutor::solveMultiRhs");
  ctx.requireShape(team, lower_.rows(),
                   "ContiguousBspExecutor::solveMultiRhs");
  const auto row_ptr = lower_.rowPtr();
  const auto col_idx = lower_.colIdx();
  const auto values = lower_.values();
  const index_t steps = num_supersteps_;
  const bool sync = team > 1;
  const auto r = static_cast<size_t>(nrhs);
  const std::span<const int> pin_set = ctx.pinnedCores();
  SpinBarrier& barrier = ctx.barrier_;

  omp_set_dynamic(0);
  if (team == num_threads_) {
    const int cores = num_threads_;
#pragma omp parallel num_threads(cores)
    {
      const int t = omp_get_thread_num();
      const ScopedPin pin(pin_set, t);
      ctx.notePin(pin);
      obs::StepTracer tracer(ctx.trace());
      int sense = barrier.initialSense();
      for (index_t s = 0; s < steps; ++s) {
        const size_t g = static_cast<size_t>(s) * static_cast<size_t>(cores) +
                         static_cast<size_t>(t);
        const auto lo = static_cast<index_t>(group_ptr_[g]);
        const auto hi = static_cast<index_t>(group_ptr_[g + 1]);
        for (index_t i = lo; i < hi; ++i) {
          computeRowMulti(row_ptr, col_idx, values, b, x, i, r);
        }
        tracer.computeDone(static_cast<std::uint64_t>(s));
        if (sync) {
          barrier.wait(sense, team);
          tracer.waitDone(static_cast<std::uint64_t>(s));
        }
      }
    }
    return;
  }

  const FoldedRanges& plan = foldedPlan(team, policy);
#pragma omp parallel num_threads(team)
  {
    const int t = omp_get_thread_num();
    const ScopedPin pin(pin_set, t);
    ctx.notePin(pin);
    obs::StepTracer tracer(ctx.trace());
    int sense = barrier.initialSense();
    for (index_t s = 0; s < steps; ++s) {
      const size_t g = static_cast<size_t>(s) * static_cast<size_t>(team) +
                       static_cast<size_t>(t);
      const auto begin = static_cast<size_t>(plan.range_ptr[g]);
      const auto end = static_cast<size_t>(plan.range_ptr[g + 1]);
      for (size_t k = begin; k < end; ++k) {
        const auto [lo, hi] = plan.ranges[k];
        for (index_t i = lo; i < hi; ++i) {
          computeRowMulti(row_ptr, col_idx, values, b, x, i, r);
        }
      }
      tracer.computeDone(static_cast<std::uint64_t>(s));
      if (sync) {
        barrier.wait(sense, team);
        tracer.waitDone(static_cast<std::uint64_t>(s));
      }
    }
  }
}

void ContiguousBspExecutor::solveMultiRhsTiled(std::span<const double> b,
                                               std::span<double> x,
                                               const TileLayout& layout,
                                               SolveContext& ctx, int team,
                                               core::FoldPolicy policy,
                                               StorageKind storage) const {
  requireTileShapes(lower_.rows(), layout, b, x,
                    "ContiguousBspExecutor::solveMultiRhsTiled");
  if (storage == StorageKind::kSlab) {
    solveMultiRhsTiledSlab(b, x, layout, ctx, team, policy);
    return;
  }
  detail::requireTeamSize(team, num_threads_,
                          "ContiguousBspExecutor::solveMultiRhsTiled");
  ctx.requireShape(team, lower_.rows(),
                   "ContiguousBspExecutor::solveMultiRhsTiled");
  const auto row_ptr = lower_.rowPtr();
  const auto col_idx = lower_.colIdx();
  const auto values = lower_.values();
  const index_t steps = num_supersteps_;
  const bool sync = team > 1;
  const TileViews tiles = makeTileViews(layout, b, x);
  const std::size_t ntiles = tiles.width.size();
  const std::span<const int> pin_set = ctx.pinnedCores();
  SpinBarrier& barrier = ctx.barrier_;

  omp_set_dynamic(0);
  if (team == num_threads_) {
    const int cores = num_threads_;
#pragma omp parallel num_threads(cores)
    {
      const int t = omp_get_thread_num();
      const ScopedPin pin(pin_set, t);
      ctx.notePin(pin);
      obs::StepTracer tracer(ctx.trace());
      int sense = barrier.initialSense();
      for (index_t s = 0; s < steps; ++s) {
        const size_t g = static_cast<size_t>(s) * static_cast<size_t>(cores) +
                         static_cast<size_t>(t);
        const auto lo = static_cast<index_t>(group_ptr_[g]);
        const auto hi = static_cast<index_t>(group_ptr_[g + 1]);
        for (std::size_t tk = 0; tk < ntiles; ++tk) {
          const auto bt = tiles.b[tk];
          const auto xt = tiles.x[tk];
          const auto w = tiles.width[tk];
          for (index_t i = lo; i < hi; ++i) {
            detail::computeRowMultiTiled(row_ptr, col_idx, values, bt, xt, i,
                                         w);
          }
        }
        tracer.computeDone(static_cast<std::uint64_t>(s));
        if (sync) {
          barrier.wait(sense, team);
          tracer.waitDone(static_cast<std::uint64_t>(s));
        }
      }
    }
    return;
  }

  const FoldedRanges& plan = foldedPlan(team, policy);
#pragma omp parallel num_threads(team)
  {
    const int t = omp_get_thread_num();
    const ScopedPin pin(pin_set, t);
    ctx.notePin(pin);
    obs::StepTracer tracer(ctx.trace());
    int sense = barrier.initialSense();
    for (index_t s = 0; s < steps; ++s) {
      const size_t g = static_cast<size_t>(s) * static_cast<size_t>(team) +
                       static_cast<size_t>(t);
      const auto begin = static_cast<size_t>(plan.range_ptr[g]);
      const auto end = static_cast<size_t>(plan.range_ptr[g + 1]);
      for (std::size_t tk = 0; tk < ntiles; ++tk) {
        const auto bt = tiles.b[tk];
        const auto xt = tiles.x[tk];
        const auto w = tiles.width[tk];
        for (size_t k = begin; k < end; ++k) {
          const auto [lo, hi] = plan.ranges[k];
          for (index_t i = lo; i < hi; ++i) {
            detail::computeRowMultiTiled(row_ptr, col_idx, values, bt, xt, i,
                                         w);
          }
        }
      }
      tracer.computeDone(static_cast<std::uint64_t>(s));
      if (sync) {
        barrier.wait(sense, team);
        tracer.waitDone(static_cast<std::uint64_t>(s));
      }
    }
  }
}

void ContiguousBspExecutor::solveMultiRhsTiledSlab(
    std::span<const double> b, std::span<double> x, const TileLayout& layout,
    SolveContext& ctx, int team, core::FoldPolicy policy) const {
  detail::requireTeamSize(team, num_threads_,
                          "ContiguousBspExecutor::solveMultiRhsTiled");
  ctx.requireShape(team, lower_.rows(),
                   "ContiguousBspExecutor::solveMultiRhsTiled");
  const TileViews tiles = makeTileViews(layout, b, x);
  slabSuperstepRegionTiled(
      slabPlan(team, policy), num_supersteps_, layout.numTiles(), team,
      ctx.pinnedCores(), ctx.barrier_, ctx.trace(),
      [&ctx](const ScopedPin& pin) { ctx.notePin(pin); },
      [&](const detail::SlabRecordView& rec, index_t tile) {
        const auto tk = static_cast<std::size_t>(tile);
        detail::computeRowMultiPacked(rec.cols, rec.vals, rec.nnz, rec.diag,
                                      tiles.b[tk], tiles.x[tk], rec.row,
                                      tiles.width[tk]);
      });
}

std::size_t ContiguousBspExecutor::storageBytesMoved(
    int team, core::FoldPolicy policy, StorageKind storage) const {
  if (storage == StorageKind::kSlab) {
    return detail::slabBytesMoved(slabPlan(team, policy));
  }
  return csrBytesMoved(lower_.rows(), lower_.nnz());
}

void ContiguousBspExecutor::solveMultiRhs(std::span<const double> b,
                                          std::span<double> x, index_t nrhs,
                                          SolveContext& ctx, int team) const {
  solveMultiRhs(b, x, nrhs, ctx, team, core::FoldPolicy::kModulo);
}

void ContiguousBspExecutor::solveMultiRhs(std::span<const double> b,
                                          std::span<double> x, index_t nrhs,
                                          SolveContext& ctx) const {
  solveMultiRhs(b, x, nrhs, ctx, num_threads_, core::FoldPolicy::kModulo);
}

void ContiguousBspExecutor::solveMultiRhs(std::span<const double> b,
                                          std::span<double> x,
                                          index_t nrhs) const {
  solveMultiRhs(b, x, nrhs, default_ctx_, num_threads_,
                core::FoldPolicy::kModulo);
}

}  // namespace sts::exec
