#include "exec/bsp.hpp"

#include <omp.h>

#include <stdexcept>

#include "exec/serial.hpp"

namespace sts::exec {

namespace {

/// One substitution step; the diagonal is the last entry of the row.
inline void computeRow(std::span<const offset_t> row_ptr,
                       std::span<const index_t> col_idx,
                       std::span<const double> values,
                       std::span<const double> b, std::span<double> x,
                       index_t i) {
  const auto begin = static_cast<size_t>(row_ptr[static_cast<size_t>(i)]);
  const auto diag = static_cast<size_t>(row_ptr[static_cast<size_t>(i) + 1]) - 1;
  double acc = b[static_cast<size_t>(i)];
  for (size_t k = begin; k < diag; ++k) {
    acc -= values[k] * x[static_cast<size_t>(col_idx[k])];
  }
  x[static_cast<size_t>(i)] = acc / values[diag];
}

}  // namespace

BspExecutor::BspExecutor(const CsrMatrix& lower, const Schedule& schedule)
    : lower_(lower),
      num_threads_(schedule.numCores()),
      num_supersteps_(schedule.numSupersteps()),
      barrier_(schedule.numCores()) {
  requireSolvableLower(lower);
  if (schedule.numVertices() != lower.rows()) {
    throw std::invalid_argument("BspExecutor: schedule/matrix size mismatch");
  }
  thread_verts_.resize(static_cast<size_t>(num_threads_));
  thread_step_ptr_.resize(static_cast<size_t>(num_threads_));
  for (int t = 0; t < num_threads_; ++t) {
    auto& verts = thread_verts_[static_cast<size_t>(t)];
    auto& ptr = thread_step_ptr_[static_cast<size_t>(t)];
    ptr.push_back(0);
    for (index_t s = 0; s < num_supersteps_; ++s) {
      const auto group = schedule.group(s, t);
      verts.insert(verts.end(), group.begin(), group.end());
      ptr.push_back(static_cast<offset_t>(verts.size()));
    }
  }
}

void BspExecutor::solve(std::span<const double> b, std::span<double> x) const {
  if (static_cast<index_t>(b.size()) != lower_.rows() ||
      static_cast<index_t>(x.size()) != lower_.rows()) {
    throw std::invalid_argument("BspExecutor::solve: vector size mismatch");
  }
  const auto row_ptr = lower_.rowPtr();
  const auto col_idx = lower_.colIdx();
  const auto values = lower_.values();
  const index_t steps = num_supersteps_;
  const bool sync = num_threads_ > 1;

  omp_set_dynamic(0);
#pragma omp parallel num_threads(num_threads_)
  {
    const int t = omp_get_thread_num();
    int sense = barrier_.initialSense();
    const auto& verts = thread_verts_[static_cast<size_t>(t)];
    const auto& ptr = thread_step_ptr_[static_cast<size_t>(t)];
    for (index_t s = 0; s < steps; ++s) {
      const auto begin = static_cast<size_t>(ptr[static_cast<size_t>(s)]);
      const auto end = static_cast<size_t>(ptr[static_cast<size_t>(s) + 1]);
      for (size_t k = begin; k < end; ++k) {
        computeRow(row_ptr, col_idx, values, b, x, verts[k]);
      }
      if (sync) barrier_.wait(sense);
    }
  }
}

void BspExecutor::solveMultiRhs(std::span<const double> b,
                                std::span<double> x, index_t nrhs) const {
  const auto n = static_cast<size_t>(lower_.rows());
  if (nrhs <= 0 || b.size() != n * static_cast<size_t>(nrhs) ||
      x.size() != b.size()) {
    throw std::invalid_argument("BspExecutor::solveMultiRhs: size mismatch");
  }
  const auto row_ptr = lower_.rowPtr();
  const auto col_idx = lower_.colIdx();
  const auto values = lower_.values();
  const index_t steps = num_supersteps_;
  const bool sync = num_threads_ > 1;
  const auto r = static_cast<size_t>(nrhs);

  omp_set_dynamic(0);
#pragma omp parallel num_threads(num_threads_)
  {
    const int t = omp_get_thread_num();
    int sense = barrier_.initialSense();
    const auto& verts = thread_verts_[static_cast<size_t>(t)];
    const auto& ptr = thread_step_ptr_[static_cast<size_t>(t)];
    for (index_t s = 0; s < steps; ++s) {
      const auto begin = static_cast<size_t>(ptr[static_cast<size_t>(s)]);
      const auto end = static_cast<size_t>(ptr[static_cast<size_t>(s) + 1]);
      for (size_t k = begin; k < end; ++k) {
        const auto i = static_cast<size_t>(verts[k]);
        const auto row_begin = static_cast<size_t>(row_ptr[i]);
        const auto diag = static_cast<size_t>(row_ptr[i + 1]) - 1;
        double* xi = x.data() + i * r;
        const double* bi = b.data() + i * r;
        for (size_t c = 0; c < r; ++c) xi[c] = bi[c];
        for (size_t e = row_begin; e < diag; ++e) {
          const double a = values[e];
          const double* xj = x.data() + static_cast<size_t>(col_idx[e]) * r;
          for (size_t c = 0; c < r; ++c) xi[c] -= a * xj[c];
        }
        const double d = values[diag];
        for (size_t c = 0; c < r; ++c) xi[c] /= d;
      }
      if (sync) barrier_.wait(sense);
    }
  }
}

ContiguousBspExecutor::ContiguousBspExecutor(const CsrMatrix& permuted_lower,
                                             index_t num_supersteps,
                                             int num_cores,
                                             std::vector<offset_t> group_ptr)
    : lower_(permuted_lower),
      num_supersteps_(num_supersteps),
      num_threads_(num_cores),
      group_ptr_(std::move(group_ptr)),
      barrier_(num_cores) {
  requireSolvableLower(permuted_lower);
  const size_t groups = static_cast<size_t>(num_supersteps) *
                        static_cast<size_t>(num_cores);
  if (group_ptr_.size() != groups + 1 || group_ptr_.front() != 0 ||
      group_ptr_.back() != static_cast<offset_t>(permuted_lower.rows())) {
    throw std::invalid_argument("ContiguousBspExecutor: bad group_ptr");
  }
}

void ContiguousBspExecutor::solve(std::span<const double> b,
                                  std::span<double> x) const {
  if (static_cast<index_t>(b.size()) != lower_.rows() ||
      static_cast<index_t>(x.size()) != lower_.rows()) {
    throw std::invalid_argument(
        "ContiguousBspExecutor::solve: vector size mismatch");
  }
  const auto row_ptr = lower_.rowPtr();
  const auto col_idx = lower_.colIdx();
  const auto values = lower_.values();
  const index_t steps = num_supersteps_;
  const int cores = num_threads_;
  const bool sync = cores > 1;

  omp_set_dynamic(0);
#pragma omp parallel num_threads(cores)
  {
    const int t = omp_get_thread_num();
    int sense = barrier_.initialSense();
    for (index_t s = 0; s < steps; ++s) {
      const size_t g = static_cast<size_t>(s) * static_cast<size_t>(cores) +
                       static_cast<size_t>(t);
      const auto lo = static_cast<index_t>(group_ptr_[g]);
      const auto hi = static_cast<index_t>(group_ptr_[g + 1]);
      for (index_t i = lo; i < hi; ++i) {
        computeRow(row_ptr, col_idx, values, b, x, i);
      }
      if (sync) barrier_.wait(sense);
    }
  }
}

}  // namespace sts::exec
