#pragma once

#include <atomic>
#include <thread>

/// \file spin_barrier.hpp
/// Sense-reversing spin barrier. `omp barrier` costs multiple microseconds
/// per crossing on small machines, which dominates SpTRSV solves at the
/// scale of this repository (the paper's hosts amortize the same cost over
/// 10-100x larger matrices). A spinning barrier crosses in ~100-300ns on a
/// 2-core host; a yield fallback keeps oversubscribed runs from starving.

namespace sts::exec {

class SpinBarrier {
 public:
  explicit SpinBarrier(int num_threads) : num_threads_(num_threads) {}

  /// The caller-thread's view of the current phase; initialize with
  /// initialSense() once per parallel region, then pass to every wait().
  int initialSense() const { return sense_.load(std::memory_order_relaxed); }

  /// Blocks until all num_threads threads arrive. Establishes
  /// happens-before between all pre-wait writes and all post-wait reads
  /// (the arrival counter is a single RMW chain released into `sense_`).
  void wait(int& local_sense) { wait(local_sense, num_threads_); }

  /// Same, for a team of `num_arrivals` <= the construction count. Elastic
  /// solves pass their per-solve team size; the construction count is only
  /// a capacity. All waiters of one phase must pass the same count, which
  /// the one-solve-per-context contract guarantees.
  void wait(int& local_sense, int num_arrivals) {
    const int next = 1 - local_sense;
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) ==
        num_arrivals - 1) {
      arrived_.store(0, std::memory_order_relaxed);
      sense_.store(next, std::memory_order_release);
    } else {
      int spins = 0;
      while (sense_.load(std::memory_order_acquire) != next) {
        if (++spins >= 4096) {
          std::this_thread::yield();  // oversubscription fallback
          spins = 0;
        }
      }
    }
    local_sense = next;
  }

 private:
  int num_threads_;
  std::atomic<int> arrived_{0};
  std::atomic<int> sense_{0};
};

}  // namespace sts::exec
