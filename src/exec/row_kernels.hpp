#pragma once

#include <span>
#include <stdexcept>
#include <string>

#include "sparse/csr.hpp"

/// \file row_kernels.hpp
/// The shared substitution kernels every executor runs per vertex, plus
/// the common vector-shape check. Single definition on purpose: the
/// solver's bitwise-equality contract (multi-RHS columns == independent
/// single-RHS solves, parallel == serial per row) holds because all
/// executors run literally this arithmetic sequence — a divergent copy
/// would break it silently.

namespace sts::exec::detail {

/// One substitution step; the diagonal is the last entry of the row.
inline void computeRow(std::span<const offset_t> row_ptr,
                       std::span<const index_t> col_idx,
                       std::span<const double> values,
                       std::span<const double> b, std::span<double> x,
                       index_t i) {
  const auto begin = static_cast<size_t>(row_ptr[static_cast<size_t>(i)]);
  const auto diag = static_cast<size_t>(row_ptr[static_cast<size_t>(i) + 1]) - 1;
  double acc = b[static_cast<size_t>(i)];
  for (size_t k = begin; k < diag; ++k) {
    acc -= values[k] * x[static_cast<size_t>(col_idx[k])];
  }
  x[static_cast<size_t>(i)] = acc / values[diag];
}

/// Multi-RHS substitution step: row i of X and B are contiguous length-r
/// blocks. Per RHS the arithmetic sequence is identical to computeRow, so
/// each column of the result is bitwise equal to a single-RHS solve.
inline void computeRowMulti(std::span<const offset_t> row_ptr,
                            std::span<const index_t> col_idx,
                            std::span<const double> values,
                            std::span<const double> b, std::span<double> x,
                            index_t i, size_t r) {
  const auto begin = static_cast<size_t>(row_ptr[static_cast<size_t>(i)]);
  const auto diag = static_cast<size_t>(row_ptr[static_cast<size_t>(i) + 1]) - 1;
  double* xi = x.data() + static_cast<size_t>(i) * r;
  const double* bi = b.data() + static_cast<size_t>(i) * r;
  for (size_t c = 0; c < r; ++c) xi[c] = bi[c];
  for (size_t e = begin; e < diag; ++e) {
    const double a = values[e];
    const double* xj = x.data() + static_cast<size_t>(col_idx[e]) * r;
    for (size_t c = 0; c < r; ++c) xi[c] -= a * xj[c];
  }
  const double d = values[diag];
  for (size_t c = 0; c < r; ++c) xi[c] /= d;
}

inline void requireVectorSizes(const sparse::CsrMatrix& lower,
                               std::span<const double> b,
                               std::span<double> x, index_t nrhs,
                               const char* who) {
  const auto n = static_cast<size_t>(lower.rows());
  if (nrhs <= 0 || b.size() != n * static_cast<size_t>(nrhs) ||
      x.size() != b.size()) {
    throw std::invalid_argument(std::string(who) + ": vector size mismatch");
  }
}

}  // namespace sts::exec::detail
